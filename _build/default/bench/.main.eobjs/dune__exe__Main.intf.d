bench/main.mli:
