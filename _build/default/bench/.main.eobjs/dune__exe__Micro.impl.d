bench/micro.ml: Analyze Array Bechamel Benchmark Glauber Hashtbl Inference Instance List Ls_core Ls_gibbs Ls_graph Ls_local Ls_rng Measure Printf Sequential_sampler Staged Table Test Time Toolkit
