(* Benchmark harness entry point.

   `dune exec bench/main.exe` prints every experiment table (E1-E10, the
   paper-shape reproduction indexed in DESIGN.md / EXPERIMENTS.md) followed
   by the Bechamel micro-benchmarks.  Pass experiment ids (e1 ... e10,
   micro) to run a subset. *)

let sections =
  [
    ("e1", Experiments.e1);
    ("e2", Experiments.e2);
    ("e3", Experiments.e3);
    ("e4", Experiments.e4);
    ("e5", Experiments.e5);
    ("e6", Experiments.e6);
    ("e7", Experiments.e7);
    ("e8", Experiments.e8);
    ("e9", Experiments.e9);
    ("e10", Experiments.e10);
    ("e11", Experiments.e11);
    ("decomp", Experiments.decomp_ablation);
    ("micro", Micro.run);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as ids) -> ids
    | _ -> List.map fst sections
  in
  print_endline
    "locsample benchmark harness -- reproduction of Feng & Yin, PODC 2018";
  List.iter
    (fun id ->
      match List.assoc_opt id sections with
      | Some run ->
          let t0 = Sys.time () in
          run ();
          Printf.printf "[%s finished in %.1fs cpu]\n%!" id (Sys.time () -. t0)
      | None ->
          Printf.eprintf "unknown section %S (known: %s)\n" id
            (String.concat ", " (List.map fst sections));
          exit 2)
    requested
