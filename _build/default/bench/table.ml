(* Minimal fixed-width ASCII table printer for the experiment harness. *)

let print ~title ?note ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let pad cell w = cell ^ String.make (w - String.length cell) ' ' in
  let render row =
    String.concat "  " (List.mapi (fun c cell -> pad cell (List.nth widths c)) row)
  in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  Printf.printf "\n== %s ==\n" title;
  (match note with Some n -> Printf.printf "%s\n" n | None -> ());
  print_endline (render header);
  print_endline rule;
  List.iter (fun row -> print_endline (render row)) rows

let f ?(digits = 4) x = Printf.sprintf "%.*f" digits x

let e x = Printf.sprintf "%.3e" x

let i = string_of_int
