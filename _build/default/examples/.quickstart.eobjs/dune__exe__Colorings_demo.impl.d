examples/colorings_demo.ml: Array Boosting Exact Format Inference Instance Local_sampler Ls_core Ls_dist Ls_gibbs Ls_graph Option Printf Reductions
