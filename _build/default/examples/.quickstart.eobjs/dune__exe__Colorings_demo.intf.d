examples/colorings_demo.mli:
