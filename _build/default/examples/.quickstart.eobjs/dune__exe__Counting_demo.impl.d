examples/counting_demo.ml: Counting Inference Instance List Ls_core Ls_gibbs Ls_graph Printf
