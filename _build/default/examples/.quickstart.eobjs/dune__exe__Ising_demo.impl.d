examples/ising_demo.ml: Array Glauber Inference Instance List Local_sampler Ls_core Ls_dist Ls_gibbs Ls_graph Ls_rng Option Printf
