examples/ising_demo.mli:
