examples/matchings_demo.ml: Array Float Inference Instance List Local_sampler Ls_core Ls_gibbs Ls_graph Ls_rng Option Printf
