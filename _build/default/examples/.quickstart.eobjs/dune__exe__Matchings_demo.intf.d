examples/matchings_demo.mli:
