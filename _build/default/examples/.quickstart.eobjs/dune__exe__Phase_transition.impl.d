examples/phase_transition.ml: List Ls_core Phase_transition Printf
