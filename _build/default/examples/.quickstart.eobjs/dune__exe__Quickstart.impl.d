examples/quickstart.ml: Array Exact Inference Instance Int64 Jvv List Local_sampler Ls_core Ls_dist Ls_gibbs Ls_graph Ls_local Option Printf Reductions String
