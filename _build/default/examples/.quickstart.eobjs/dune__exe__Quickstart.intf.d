examples/quickstart.mli:
