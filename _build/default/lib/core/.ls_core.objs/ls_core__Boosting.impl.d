lib/core/boosting.ml: Array Exact Inference Instance Ls_dist Ls_gibbs Ls_graph
