lib/core/boosting.mli: Inference Instance Ls_dist
