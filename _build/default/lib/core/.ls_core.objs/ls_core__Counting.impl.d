lib/core/counting.ml: Array Instance Ls_gibbs Ls_graph Reductions
