lib/core/counting.mli: Inference Instance Ls_graph
