lib/core/exact.ml: Array Instance Ls_gibbs Ls_graph
