lib/core/exact.mli: Instance Ls_dist
