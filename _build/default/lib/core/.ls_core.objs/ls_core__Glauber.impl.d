lib/core/glauber.ml: Array Instance List Ls_dist Ls_gibbs Ls_rng
