lib/core/glauber.mli: Instance Ls_rng
