lib/core/inference.ml: Array Exact Instance Ls_dist Ls_gibbs Ls_graph
