lib/core/inference.mli: Instance Ls_dist Ls_gibbs
