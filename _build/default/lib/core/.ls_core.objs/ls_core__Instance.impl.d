lib/core/instance.ml: Array List Ls_gibbs Ls_graph
