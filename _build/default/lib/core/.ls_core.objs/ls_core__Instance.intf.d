lib/core/instance.mli: Ls_gibbs Ls_graph
