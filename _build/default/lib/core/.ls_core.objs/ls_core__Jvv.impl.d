lib/core/jvv.ml: Array Float Inference Instance Int64 List Ls_dist Ls_gibbs Ls_graph Ls_local Ls_rng Option Sequential_sampler
