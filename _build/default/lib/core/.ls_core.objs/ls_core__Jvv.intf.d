lib/core/jvv.mli: Inference Instance Ls_local Ls_rng
