lib/core/local_sampler.ml: Array Inference Instance Ls_dist Ls_local Ls_rng
