lib/core/local_sampler.mli: Inference Instance Ls_local
