lib/core/phase_transition.ml: Array Exact Instance List Ls_dist Ls_gibbs Ls_graph
