lib/core/phase_transition.mli:
