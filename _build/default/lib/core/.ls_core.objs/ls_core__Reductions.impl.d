lib/core/reductions.ml: Array Inference Instance List Ls_dist Ls_gibbs Ls_rng Sequential_sampler
