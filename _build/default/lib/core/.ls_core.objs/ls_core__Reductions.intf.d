lib/core/reductions.mli: Inference Instance Ls_dist Ls_rng
