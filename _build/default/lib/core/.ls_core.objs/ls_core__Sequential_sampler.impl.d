lib/core/sequential_sampler.ml: Array Inference Instance List Ls_dist Ls_gibbs Ls_local
