lib/core/sequential_sampler.mli: Inference Instance Ls_rng
