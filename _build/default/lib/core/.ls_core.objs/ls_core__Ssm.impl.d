lib/core/ssm.ml: Array Exact Float Instance List Ls_dist Ls_gibbs Ls_graph Ls_rng
