lib/core/ssm.mli: Instance Ls_rng
