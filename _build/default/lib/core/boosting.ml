module Gibbs = Ls_gibbs
module Graph = Ls_graph.Graph
module Dist = Ls_dist.Dist

let boosted_marginal (aplus : Inference.oracle) ~t inst v =
  let q = Instance.q inst in
  if Instance.is_pinned inst v then Dist.point q inst.Instance.pinned.(v)
  else begin
    let g = Instance.graph inst in
    let ell = Instance.locality inst in
    let gamma = Inference.annulus inst ~v ~t in
    (* Pin the annulus vertex by vertex at the arg-max of A+'s marginal on
       the instance extended so far. *)
    let inst_m =
      Array.fold_left
        (fun acc u ->
          let mu_hat = aplus.Inference.infer acc u in
          Instance.pin acc u (Dist.argmax mu_hat))
        inst gamma
    in
    let ball = Graph.ball g v (t + ell) in
    match Exact.ball_marginal inst_m ~ball v with
    | Some d -> d
    | None ->
        (* Arg-max pinning produced an infeasible tau_m: A+'s error was too
           large for the boosting guarantee.  Surface it loudly. *)
        failwith "Boosting.boosted_marginal: infeasible annulus pinning"
  end

let boost (aplus : Inference.oracle) inst0 =
  let t = aplus.Inference.radius in
  let ell = Instance.locality inst0 in
  {
    Inference.radius = (2 * t) + ell;
    infer = (fun inst v -> boosted_marginal aplus ~t inst v);
  }
