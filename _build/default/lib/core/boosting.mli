(** The boosting lemma (Lemma 4.1): additive → multiplicative error.

    Given an approximate-inference oracle [A⁺] with small total-variation
    error, the algorithm [A×] at node [v]:

    + enumerates the annulus [Γ = B_{t+ℓ}(v) \ (B_t(v) ∪ Λ)] in id order
      [v₁ … v_m];
    + pins each [v_i] to the {e most likely} value under [A⁺] run on the
      instance extended so far (maximizing the marginal keeps every
      intermediate configuration feasible — the Claim inside Lemma 4.1);
    + returns the {e exact} ball marginal [μ^{τ_m}_v] on [B_{t+ℓ}(v)],
      well-defined by conditional independence (Proposition 2.1).

    The result has multiplicative error [ε] whenever [A⁺] has
    total-variation error [ε/(5qn)]; experiment E3 measures this. *)

val boost : Inference.oracle -> Instance.t -> Inference.oracle
(** [boost aplus inst0] is [A×]; its radius is [2t + ℓ] for
    [t = aplus.radius]. *)

val boosted_marginal :
  Inference.oracle -> t:int -> Instance.t -> int -> Ls_dist.Dist.t
(** One invocation of [A×] at a vertex, with an explicit ball parameter
    [t] (the annulus sits between [B_t] and [B_{t+ℓ}]). *)
