module Gibbs = Ls_gibbs
module Graph = Ls_graph.Graph

let log_z_exact inst =
  let spec = inst.Instance.spec in
  let tau = inst.Instance.pinned in
  if Gibbs.Chain_dp.supported spec then Gibbs.Chain_dp.log_partition spec tau
  else if
    Gibbs.Spec.as_pairwise spec <> None
    && Graph.is_forest (Gibbs.Spec.graph spec)
  then Gibbs.Forest_dp.log_partition spec tau
  else begin
    let z = Gibbs.Enumerate.partition spec tau in
    if z > 0. then log z else neg_infinity
  end

let log_z_local oracle inst =
  let order = Array.init (Instance.n inst) (fun i -> i) in
  Reductions.estimate_log_partition oracle inst ~order

let count_independent_sets g =
  exp (log_z_exact (Instance.unpinned (Gibbs.Models.hardcore g ~lambda:1.)))

let count_matchings g =
  if Graph.is_forest g then
    exp (Gibbs.Matching_dp.log_partition g ~lambda:1. ~pins:[])
  else begin
    let m = Gibbs.Matching.make g ~lambda:1. in
    exp (log_z_exact (Instance.unpinned m.Gibbs.Matching.spec))
  end

let count_proper_colorings g ~q =
  exp (log_z_exact (Instance.unpinned (Gibbs.Models.coloring g ~q)))

(* Closed forms. *)

let fib n =
  (* F_1 = F_2 = 1. *)
  let rec go i a b = if i >= n then b else go (i + 1) b (a +. b) in
  if n <= 0 then 0. else if n <= 2 then 1. else go 2 1. 1.

let closed_form_independent_sets_path n = fib (n + 2)

let closed_form_independent_sets_cycle n =
  if n < 3 then invalid_arg "Counting: cycle needs n >= 3";
  (* Lucas: L_n = F_{n-1} + F_{n+1}. *)
  fib (n - 1) +. fib (n + 1)

let closed_form_matchings_path n = fib (n + 1)

let closed_form_colorings_cycle ~n ~q =
  let qm1 = float_of_int (q - 1) in
  (qm1 ** float_of_int n) +. (if n mod 2 = 0 then qm1 else -.qm1)

let closed_form_colorings_tree ~n ~q =
  if n < 1 then invalid_arg "Counting: empty tree";
  float_of_int q *. (float_of_int (q - 1) ** float_of_int (n - 1))
