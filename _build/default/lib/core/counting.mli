(** Global counting — the classical face of the paper's inference problem.

    The paper studies inference (per-node marginals) as the local
    counterpart of counting because, for self-reducible problems, the
    global count decomposes through the chain rule into exactly those
    marginals (§1, citing Jerrum).  This module packages that link:

    - {!log_z_exact} dispatches to the fastest exact engine (transfer
      matrices on paths/cycles, forest DP on trees, monomer–dimer DP via
      {!Ls_gibbs.Matching_dp}, pruned enumeration otherwise);
    - {!log_z_local} is the distributed estimate: the chain rule evaluated
      with a {e local} inference oracle, so the global count is assembled
      from radius-[t] information only;
    - the [closed_form_*] values are textbook combinatorial identities
      (Lucas/Fibonacci/chromatic-polynomial) used by the tests and the
      counting example to validate the engines end to end. *)

val log_z_exact : Instance.t -> float
(** [ln Z(τ)]; [neg_infinity] when infeasible.  Engine dispatch is
    exactness-preserving; the enumeration fallback is exponential, so keep
    general graphs small. *)

val log_z_local : Inference.oracle -> Instance.t -> float
(** Chain-rule estimate using the oracle's marginals along the identity
    order ({!Reductions.estimate_log_partition}); error ≤ n·ε for
    per-site multiplicative error ε. *)

val count_independent_sets : Ls_graph.Graph.t -> float
(** Number of independent sets (hardcore λ=1 partition function). *)

val count_matchings : Ls_graph.Graph.t -> float
(** Number of matchings (monomer–dimer λ=1; exact DP on forests, line-graph
    dispatch otherwise). *)

val count_proper_colorings : Ls_graph.Graph.t -> q:int -> float

(** {1 Closed forms (for validation)} *)

val closed_form_independent_sets_cycle : int -> float
(** Lucas number [L_n]: independent sets of the cycle [C_n] ([n ≥ 3]). *)

val closed_form_independent_sets_path : int -> float
(** Fibonacci [F_{n+2}]: independent sets of the path [P_n]. *)

val closed_form_matchings_path : int -> float
(** The [n]-vertex path has [F_{n+1}] matchings, with the standard
    indexing [F_1 = F_2 = 1] (e.g. [P_3] has [F_4 = 3]). *)

val closed_form_colorings_cycle : n:int -> q:int -> float
(** Chromatic polynomial of the cycle: [(q−1)^n + (−1)^n (q−1)]. *)

val closed_form_colorings_tree : n:int -> q:int -> float
(** [q · (q−1)^{n−1}] for any tree on [n ≥ 1] vertices. *)
