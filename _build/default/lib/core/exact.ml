module Gibbs = Ls_gibbs
module Graph = Ls_graph.Graph

let whole_graph_ball inst =
  Array.init (Instance.n inst) (fun v -> v)

let ball_marginal inst ~ball v =
  if Gibbs.Forest_dp.supported inst.Instance.spec ~ball then
    Gibbs.Forest_dp.ball_marginal inst.Instance.spec ~ball inst.Instance.pinned v
  else Gibbs.Enumerate.ball_marginal inst.Instance.spec ~ball inst.Instance.pinned v

let marginal inst v =
  (* Whole-graph queries admit one more exact engine than ball queries:
     the transfer-matrix DP for paths and cycles. *)
  if Gibbs.Chain_dp.supported inst.Instance.spec then
    Gibbs.Chain_dp.marginal inst.Instance.spec inst.Instance.pinned v
  else ball_marginal inst ~ball:(whole_graph_ball inst) v

let joint inst = Gibbs.Enumerate.distribution inst.Instance.spec inst.Instance.pinned

let partition inst = Gibbs.Enumerate.partition inst.Instance.spec inst.Instance.pinned
