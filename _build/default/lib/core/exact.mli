(** Exact-marginal dispatcher.

    Routes marginal queries to the fastest exact engine: the forest dynamic
    program of {!Ls_gibbs.Forest_dp} when the relevant induced subgraph is a
    forest and the spec is pairwise, falling back to pruned enumeration
    otherwise.  Both engines compute the same quantity (property-tested), so
    callers get exactness regardless of the route — the ablation bench
    measures the speed difference. *)

val marginal : Instance.t -> int -> Ls_dist.Dist.t option
(** Exact conditional marginal [μ^τ_v] on the whole graph. *)

val ball_marginal : Instance.t -> ball:int array -> int -> Ls_dist.Dist.t option
(** Exact marginal of the ball-restricted measure [w_B] (§4.1, §5). *)

val joint : Instance.t -> (int array * float) list
(** Full conditional distribution [μ^τ] by enumeration (tiny instances). *)

val partition : Instance.t -> float
(** [Z(τ)] by enumeration. *)
