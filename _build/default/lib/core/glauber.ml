module Gibbs = Ls_gibbs
module Dist = Ls_dist.Dist
module Rng = Ls_rng.Rng

type state = { config : int array; inst : Instance.t; free : int array }

let free_of inst = Array.of_list (Instance.free_vertices inst)

let init inst =
  match Gibbs.Admissible.greedy_extension inst.Instance.spec inst.Instance.pinned with
  | Some config -> { config; inst; free = free_of inst }
  | None -> failwith "Glauber.init: greedy extension failed"

let init_from inst config =
  if Array.length config <> Instance.n inst then
    invalid_arg "Glauber.init_from: size mismatch";
  Array.iteri
    (fun v c ->
      if Instance.is_pinned inst v && inst.Instance.pinned.(v) <> c then
        invalid_arg "Glauber.init_from: configuration violates the pinning")
    config;
  { config = Array.copy config; inst; free = free_of inst }

let resample st rng v =
  let saved = st.config.(v) in
  st.config.(v) <- Gibbs.Config.unassigned;
  (match Gibbs.Spec.conditional st.inst.Instance.spec st.config v with
  | Some d -> st.config.(v) <- Dist.sample rng d
  | None -> st.config.(v) <- saved)

let step st rng =
  let k = Array.length st.free in
  if k > 0 then resample st rng st.free.(Rng.int rng k)

let sweep st rng =
  let order = Array.copy st.free in
  Rng.shuffle rng order;
  Array.iter (fun v -> resample st rng v) order

let run inst ~sweeps ~rng =
  let st = init inst in
  for _i = 1 to sweeps do
    sweep st rng
  done;
  Array.copy st.config

let sample_many inst ~sweeps ~thin ~count ~rng =
  let st = init inst in
  for _i = 1 to sweeps do
    sweep st rng
  done;
  let samples = ref [] in
  for _i = 1 to count do
    for _j = 1 to thin do
      sweep st rng
    done;
    samples := Array.copy st.config :: !samples
  done;
  List.rev !samples
