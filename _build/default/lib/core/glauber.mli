(** Glauber dynamics (single-site heat bath) — the global MCMC baseline.

    The classical sequential sampler the paper's LOCAL algorithms are
    measured against: start from any feasible configuration, repeatedly pick
    a free vertex and resample it from its conditional distribution given
    the rest.  It is {e not} a LOCAL algorithm (the site schedule is a
    global sequential resource), which is exactly the contrast the paper
    draws; the benches report its accuracy-per-work next to the distributed
    samplers.  Its stationary distribution is [μ^τ] whenever the chain is
    irreducible (e.g. locally admissible specs). *)

type state = {
  config : int array;  (** Current configuration (mutated in place). *)
  inst : Instance.t;
  free : int array;  (** Unpinned vertices. *)
}

val init : Instance.t -> state
(** Start from the greedy locally feasible extension of the pinning.
    Raises [Failure] when the greedy construction gets stuck. *)

val init_from : Instance.t -> int array -> state
(** Start from a given total configuration (must respect the pinning). *)

val step : state -> Ls_rng.Rng.t -> unit
(** One heat-bath update at a uniformly random free vertex. *)

val sweep : state -> Ls_rng.Rng.t -> unit
(** One update at every free vertex, in a fresh uniformly random order. *)

val run : Instance.t -> sweeps:int -> rng:Ls_rng.Rng.t -> int array
(** Burn-in [sweeps] sweeps from the greedy start; returns the final
    configuration. *)

val sample_many :
  Instance.t -> sweeps:int -> thin:int -> count:int -> rng:Ls_rng.Rng.t ->
  int array list
(** [count] samples from one chain: burn-in [sweeps], then record every
    [thin] sweeps. *)
