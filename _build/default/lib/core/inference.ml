module Gibbs = Ls_gibbs
module Graph = Ls_graph.Graph
module Dist = Ls_dist.Dist
module Config = Gibbs.Config

type oracle = { radius : int; infer : Instance.t -> int -> Dist.t }

let exact inst0 =
  let radius = Instance.n inst0 in
  let infer inst v =
    match Exact.marginal inst v with
    | Some d -> d
    | None -> failwith "Inference.exact: infeasible instance"
  in
  { radius; infer }

let annulus inst ~v ~t =
  let g = Instance.graph inst in
  let ell = Instance.locality inst in
  let d = Graph.bfs_distances g v in
  let acc = ref [] in
  for u = Graph.n g - 1 downto 0 do
    if d.(u) > t && d.(u) <= t + ell && not (Instance.is_pinned inst u) then
      acc := u :: !acc
  done;
  Array.of_list !acc

let locally_feasible_extension inst ~vertices =
  let spec = inst.Instance.spec in
  let q = Gibbs.Spec.q spec in
  let sigma = Array.copy inst.Instance.pinned in
  let k = Array.length vertices in
  (* Oblivious pass first; full backtracking only if it gets stuck, so the
     common (locally admissible) case costs O(k·q) feasibility checks. *)
  let rec oblivious i =
    if i = k then true
    else begin
      let v = vertices.(i) in
      let rec first c =
        if c = q then false
        else begin
          sigma.(v) <- c;
          if Gibbs.Spec.locally_feasible spec sigma then true
          else begin
            sigma.(v) <- Config.unassigned;
            first (c + 1)
          end
        end
      in
      first 0 && oblivious (i + 1)
    end
  in
  if oblivious 0 then Some sigma
  else begin
    Array.iter (fun v -> sigma.(v) <- Config.unassigned) vertices;
    let rec backtrack i =
      if i = k then true
      else begin
        let v = vertices.(i) in
        let rec try_value c =
          if c = q then false
          else begin
            sigma.(v) <- c;
            if Gibbs.Spec.locally_feasible spec sigma && backtrack (i + 1) then
              true
            else begin
              sigma.(v) <- Config.unassigned;
              try_value (c + 1)
            end
          end
        in
        try_value 0
      end
    in
    if backtrack 0 then Some sigma else None
  end

let ssm_infer ~t inst v =
  let q = Instance.q inst in
  if Instance.is_pinned inst v then Dist.point q inst.Instance.pinned.(v)
  else begin
    let g = Instance.graph inst in
    let ell = Instance.locality inst in
    let ball = Graph.ball g v (t + ell) in
    let gamma = annulus inst ~v ~t in
    let pinned =
      match locally_feasible_extension inst ~vertices:gamma with
      | Some sigma -> sigma
      | None -> inst.Instance.pinned
    in
    let inst' = Instance.create inst.Instance.spec ~pinned in
    match Exact.ball_marginal inst' ~ball v with
    | Some d -> d
    | None -> (
        (* The locally feasible extension was not feasible for the ball
           measure (the spec is not locally admissible here).  Search for
           any annulus assignment giving a usable ball measure; as a last
           resort answer uniform — failures of this branch are visible in
           the E5/E8 error curves. *)
        let found = ref None in
        let rec search i inst_acc =
          if !found <> None then ()
          else if i = Array.length gamma then begin
            match Exact.ball_marginal inst_acc ~ball v with
            | Some d -> found := Some d
            | None -> ()
          end
          else
            for c = 0 to q - 1 do
              if !found = None then
                let u = gamma.(i) in
                let pinned' = Config.extend inst_acc.Instance.pinned u c in
                if Gibbs.Spec.locally_feasible inst.Instance.spec pinned' then
                  search (i + 1)
                    (Instance.create inst.Instance.spec ~pinned:pinned')
            done
        in
        search 0 inst;
        match !found with Some d -> d | None -> Dist.uniform q)
  end

let ssm_oracle ~t inst0 =
  let ell = Instance.locality inst0 in
  { radius = t + (2 * ell); infer = (fun inst v -> ssm_infer ~t inst v) }

let saw_oracle ~depth inst0 =
  if not (Gibbs.Saw.supported inst0.Instance.spec) then
    invalid_arg "Inference.saw_oracle: binary pairwise spec required";
  let infer inst v =
    match Gibbs.Saw.marginal ~depth inst.Instance.spec inst.Instance.pinned v with
    | Some d -> d
    | None -> Dist.uniform (Instance.q inst)
  in
  { radius = depth; infer }
