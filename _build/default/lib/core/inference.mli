(** Approximate inference in the LOCAL model.

    An {!oracle} packages a marginal estimator with its LOCAL time
    complexity [radius]: calling [infer inst v] must only depend on the
    radius-[radius] ball around [v] — the invariant the reductions of §3–4
    rely on (two instances agreeing on that ball receive identical
    answers).  The constructors here provide:

    - {!exact}: the whole-graph exact marginal (radius = diameter), the
      ground-truth oracle used to isolate reduction error in experiments;
    - {!ssm_oracle}: the Theorem 5.1 algorithm for locally admissible local
      Gibbs distributions — gather [B_{t+ℓ}(v)], extend [τ] to a locally
      feasible configuration [τ'] on the annulus
      [Γ = B_{t+ℓ}(v) \ (B_t(v) ∪ Λ)], and return the ball marginal
      [μ^{τ'}_v] computed from [w_B].  Its total-variation error is the SSM
      rate [δ_n(t)] — measured empirically in experiment E5. *)

type oracle = {
  radius : int;
      (** LOCAL time complexity: [infer inst v] reads only
          [B_radius(v)]. *)
  infer : Instance.t -> int -> Ls_dist.Dist.t;
      (** Marginal estimate [μ̂^τ_v]; a point mass when [v] is pinned. *)
}

val exact : Instance.t -> oracle
(** Radius = graph diameter; exact [μ^τ_v].  Raises [Failure] on infeasible
    instances. *)

val ssm_oracle : t:int -> Instance.t -> oracle
(** The Theorem 5.1 construction with ball parameter [t]; its radius is
    [t + 2ℓ] where [ℓ] is the spec's locality. *)

val ssm_infer : t:int -> Instance.t -> int -> Ls_dist.Dist.t
(** One-shot version of {!ssm_oracle}. *)

val saw_oracle : depth:int -> Instance.t -> oracle
(** Weitz's self-avoiding-walk tree algorithm ({!Ls_gibbs.Saw}) packaged
    as an inference oracle — only for binary pairwise specs (hardcore,
    Ising, 2-spin).  A depth-[d] walk sees exactly [B_d(v)], so the
    radius is [depth].  Its error, like {!ssm_oracle}'s, is governed by
    the SSM rate; its cost is [O(Δ^depth)] independent of ball volume,
    making it the better engine on high-degree graphs.  On infeasible
    views it answers uniform (certifiably visible in the error curves,
    matching {!ssm_oracle}'s fallback). *)

val annulus : Instance.t -> v:int -> t:int -> int array
(** [Γ = B_{t+ℓ}(v) \ (B_t(v) ∪ Λ)], sorted by id — exposed for the
    boosting construction (Lemma 4.1) which pins the same annulus. *)

val locally_feasible_extension :
  Instance.t -> vertices:int array -> Ls_gibbs.Config.t option
(** Extend the instance pinning to the given vertices so the result stays
    locally feasible, committing vertices in id order (the sequential local
    oblivious procedure of Remark 2.3).  Falls back to limited backtracking
    if the oblivious pass gets stuck; [None] if no extension exists. *)
