module Spec = Ls_gibbs.Spec
module Config = Ls_gibbs.Config
module Graph = Ls_graph.Graph

type t = { spec : Spec.t; pinned : Config.t }

let create spec ~pinned =
  if Array.length pinned <> Graph.n (Spec.graph spec) then
    invalid_arg "Instance.create: pinning size mismatch";
  if not (Config.values_in_range pinned (Spec.q spec)) then
    invalid_arg "Instance.create: pinned value out of alphabet";
  { spec; pinned = Array.copy pinned }

let unpinned spec =
  { spec; pinned = Config.empty (Graph.n (Spec.graph spec)) }

let of_pins spec pins =
  create spec ~pinned:(Config.of_pinning (Graph.n (Spec.graph spec)) pins)

let n i = Graph.n (Spec.graph i.spec)
let q i = Spec.q i.spec
let graph i = Spec.graph i.spec
let locality i = Spec.locality i.spec

let pin i v c = { i with pinned = Config.extend i.pinned v c }

let pin_all i pins = List.fold_left (fun acc (v, c) -> pin acc v c) i pins

let is_pinned i v = Config.is_assigned i.pinned v

let free_vertices i =
  List.filter (fun v -> not (is_pinned i v)) (List.init (n i) (fun v -> v))

let is_feasible i = Ls_gibbs.Enumerate.feasible i.spec i.pinned
