(** Instances for distributed sampling/counting (Definition 2.2).

    An instance is [(G, x, τ)]: a labeled graph specifying a Gibbs
    distribution [μ], plus a feasible configuration [τ ∈ Σ^Λ] pinning an
    arbitrary subset of variables.  The target distribution is the
    conditional [μ^τ].  Carrying [τ] explicitly is what enforces
    self-reducibility: pinning more vertices yields another valid
    instance. *)

type t = { spec : Ls_gibbs.Spec.t; pinned : Ls_gibbs.Config.t }

val create : Ls_gibbs.Spec.t -> pinned:Ls_gibbs.Config.t -> t
(** Does not verify feasibility (that costs an enumeration); use
    {!is_feasible} in tests. *)

val unpinned : Ls_gibbs.Spec.t -> t
(** Instance with [Λ = ∅]. *)

val of_pins : Ls_gibbs.Spec.t -> (int * int) list -> t

val n : t -> int
val q : t -> int
val graph : t -> Ls_graph.Graph.t
val locality : t -> int

val pin : t -> int -> int -> t
(** Self-reduction step: a new instance with one more pinned vertex. *)

val pin_all : t -> (int * int) list -> t

val is_pinned : t -> int -> bool

val free_vertices : t -> int list

val is_feasible : t -> bool
(** Exhaustive feasibility check ([Z(τ) > 0]); small instances only. *)
