module Rng = Ls_rng.Rng
module Dist = Ls_dist.Dist
module Scheduler = Ls_local.Scheduler

type result = {
  sigma : int array;
  failed : bool array;
  success : bool;
  rounds : int;
  stats : Scheduler.stats;
}

let sample (oracle : Inference.oracle) inst ~seed =
  let n = Instance.n inst in
  (* Independent randomness: stream 0 drives the decomposition, streams
     1..n drive the nodes — so failures are independent of the payload
     output, as Lemma 3.1 requires. *)
  let streams = Rng.streams seed (n + 1) in
  let decomposition_rng = streams.(0) in
  let node_rng v = streams.(v + 1) in
  let sigma = ref [||] in
  let run ~order =
    let current = ref inst in
    Array.iter
      (fun v ->
        if not (Instance.is_pinned !current v) then begin
          let mu_hat = oracle.Inference.infer !current v in
          let c = Dist.sample (node_rng v) mu_hat in
          current := Instance.pin !current v c
        end)
      order;
    sigma := Array.copy !current.Instance.pinned
  in
  let stats =
    Scheduler.compile ~graph:(Instance.graph inst)
      ~locality:oracle.Inference.radius ~rng:decomposition_rng ~run ()
  in
  {
    sigma = !sigma;
    failed = stats.Scheduler.failed;
    success = stats.Scheduler.failures = 0;
    rounds = stats.Scheduler.rounds;
    stats;
  }
