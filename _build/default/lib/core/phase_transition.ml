module Gibbs = Ls_gibbs
module Graph = Ls_graph.Graph
module Generators = Ls_graph.Generators
module Dist = Ls_dist.Dist

let critical_lambda ~branching =
  Gibbs.Models.hardcore_uniqueness_threshold (branching + 1)

let tree_root_influence ~branching ~depth ~lambda =
  let g = Generators.complete_tree ~branching ~depth in
  let spec = Gibbs.Models.hardcore g ~lambda in
  let dist_from_root = Graph.bfs_distances g 0 in
  let leaves = ref [] in
  for v = Graph.n g - 1 downto 0 do
    if dist_from_root.(v) = depth then leaves := v :: !leaves
  done;
  let marginal_with value =
    let pinned =
      Gibbs.Config.of_pinning (Graph.n g) (List.map (fun v -> (v, value)) !leaves)
    in
    let inst = Instance.create spec ~pinned in
    match Exact.marginal inst 0 with
    | Some d -> d
    | None -> failwith "Phase_transition.tree_root_influence: infeasible boundary"
  in
  Dist.tv (marginal_with 1) (marginal_with 0)

let influence_profile ~branching ~max_depth ~lambda =
  List.init max_depth (fun i ->
      let depth = i + 1 in
      (depth, tree_root_influence ~branching ~depth ~lambda))

let lambda_sweep ~branching ~depth ~lambdas =
  List.map
    (fun lambda -> (lambda, tree_root_influence ~branching ~depth ~lambda))
    lambdas
