(** The computational phase transition for distributed sampling (§5).

    For the hardcore model with fugacity [λ] on graphs of max degree [Δ]:

    - [λ < λ_c(Δ)] (uniqueness): SSM holds, so Theorem 5.1 + the JVV
      sampler give [O(log³ n)]-round exact sampling;
    - [λ > λ_c(Δ)] (non-uniqueness): boundary-to-center correlations do not
      decay (on the Δ-regular tree), which is the mechanism behind the
      [Ω(diam)] lower bound of Feng–Sun–Yin the paper invokes.

    These helpers quantify both sides on complete [b]-ary trees, where the
    exact forest DP makes deep instances cheap: {!tree_root_influence} is
    the exact total-variation influence of the worst boundary pair
    (all-occupied vs all-unoccupied leaves — the extremal pair for the
    monotone hardcore model) on the root marginal. *)

val tree_root_influence :
  branching:int -> depth:int -> lambda:float -> float
(** [d_TV(μ^{leaves=1}_root, μ^{leaves=0}_root)] on the complete
    [branching]-ary tree of the given depth, hardcore([λ]).  (Leaves all
    occupied is feasible there because leaves are pairwise non-adjacent.) *)

val influence_profile :
  branching:int -> max_depth:int -> lambda:float -> (int * float) list
(** [tree_root_influence] for each depth [1..max_depth]. *)

val lambda_sweep :
  branching:int -> depth:int -> lambdas:float list -> (float * float) list
(** Root influence at fixed depth across fugacities — the experiment that
    exhibits the transition at [λ_c(Δ)], [Δ = branching + 1]. *)

val critical_lambda : branching:int -> float
(** [λ_c(branching + 1)] — the tree uniqueness threshold for the complete
    [b]-ary tree (vertex degree [b + 1]). *)
