module Gibbs = Ls_gibbs
module Dist = Ls_dist.Dist
module Rng = Ls_rng.Rng

let marginal_of_chain_sampler oracle inst ~order v =
  let q = Instance.q inst in
  let weights = Array.make q 0. in
  List.iter
    (fun (sigma, p) -> weights.(sigma.(v)) <- weights.(sigma.(v)) +. p)
    (Sequential_sampler.output_distribution oracle inst ~order);
  Dist.of_weights weights

let monte_carlo_marginal ~sample ~q ~samples ~rng v =
  let counts = Array.make q 0. in
  let kept = ref 0 in
  for _i = 1 to samples do
    match sample rng with
    | Some sigma ->
        incr kept;
        counts.(sigma.(v)) <- counts.(sigma.(v)) +. 1.
    | None -> ()
  done;
  if !kept = 0 then None else Some (Dist.of_weights counts)

let log_partition_via_sampling ~sample inst ~order ~samples ~rng =
  let sigma =
    match Gibbs.Admissible.greedy_extension inst.Instance.spec inst.Instance.pinned with
    | Some sigma -> sigma
    | None -> failwith "Reductions.log_partition_via_sampling: no greedy completion"
  in
  let log_p = ref 0. in
  let current = ref inst in
  Array.iter
    (fun v ->
      if not (Instance.is_pinned !current v) then begin
        let hits = ref 0 and kept = ref 0 in
        for _i = 1 to samples do
          match sample !current rng with
          | Some y ->
              incr kept;
              if y.(v) = sigma.(v) then incr hits
          | None -> ()
        done;
        if !hits = 0 then
          failwith
            "Reductions.log_partition_via_sampling: zero marginal estimate \
             (increase samples)";
        log_p := !log_p +. log (float_of_int !hits /. float_of_int !kept);
        current := Instance.pin !current v sigma.(v)
      end)
    order;
  log (Gibbs.Spec.weight inst.Instance.spec sigma) -. !log_p

let estimate_log_partition (oracle : Inference.oracle) inst ~order =
  (* A feasible completion to evaluate the chain rule on: greedy local
     extension (exactness of the estimate does not depend on which sigma is
     chosen — only numerical conditioning does). *)
  let sigma =
    match Gibbs.Admissible.greedy_extension inst.Instance.spec inst.Instance.pinned with
    | Some sigma -> sigma
    | None -> failwith "Reductions.estimate_log_partition: no greedy completion"
  in
  let log_p = ref 0. in
  let current = ref inst in
  Array.iter
    (fun v ->
      if not (Instance.is_pinned !current v) then begin
        let mu_hat = oracle.Inference.infer !current v in
        let p = Dist.prob mu_hat sigma.(v) in
        if not (p > 0.) then
          failwith "Reductions.estimate_log_partition: zero marginal on completion";
        log_p := !log_p +. log p;
        current := Instance.pin !current v sigma.(v)
      end)
    order;
  log (Gibbs.Spec.weight inst.Instance.spec sigma) -. !log_p
