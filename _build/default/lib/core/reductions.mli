(** Sampling ⇒ inference (Theorem 3.4) and counting via self-reduction.

    The paper reconstructs the marginal of a sampler's output at [v] by
    enumerating the random bits the sampler consumes — exact, but only
    meaningful for bit-level algorithms.  Our samplers consume real-valued
    randomness, so we expose both faces:

    - {!marginal_of_chain_sampler}: the {e exact} output marginal of the
      chain-rule sampler, obtained by enumerating its value choices
      (feasible because the sampler is the chain rule — this is the
      distribution [μ̃_v] of the theorem, computed exactly);
    - {!monte_carlo_marginal}: the estimator any black-box sampler admits,
      with the usual [O(√(q/m))] statistical error on top of the theorem's
      [δ + ε₀] bound.

    The global counting connection (§1): by self-reducibility the partition
    function decomposes through the chain rule,
    [Z(τ) = w(σ) / Π_i μ^{τ∧σ^{i-1}}_{v_i}(σ_{v_i})] for {e any} feasible
    completion [σ] — {!estimate_log_partition} evaluates this with
    approximate marginals, turning local inference into global counting. *)

val marginal_of_chain_sampler :
  Inference.oracle -> Instance.t -> order:int array -> int -> Ls_dist.Dist.t
(** Exact marginal at a vertex of the chain-rule sampler's output
    distribution (tiny instances: enumerates the sampler's choices). *)

val monte_carlo_marginal :
  sample:(Ls_rng.Rng.t -> int array option) ->
  q:int ->
  samples:int ->
  rng:Ls_rng.Rng.t ->
  int ->
  Ls_dist.Dist.t option
(** Estimate a marginal from repeated runs of a black-box sampler
    ([None] results — failed runs — are discarded, as the theorem's
    conditioning does).  Returns [None] if every run failed. *)

val log_partition_via_sampling :
  sample:(Instance.t -> Ls_rng.Rng.t -> int array option) ->
  Instance.t ->
  order:int array ->
  samples:int ->
  rng:Ls_rng.Rng.t ->
  float
(** Counting from a black-box sampler — the classical JVV direction: pick
    a feasible completion [σ], estimate each chain-rule marginal
    [μ^{τ∧σ^{i-1}}_{v_i}(σ_{v_i})] by calling the sampler [samples] times
    on the prefix-pinned instance, and return
    [ln Ẑ = ln w(σ) − Σ_i ln μ̂_i].  Failed sampler runs ([None]) are
    discarded.  Raises [Failure] when an estimated marginal is 0 (increase
    [samples]).  Cost: [O(n · samples)] sampler runs. *)

val estimate_log_partition :
  Inference.oracle -> Instance.t -> order:int array -> float
(** [ln Ẑ(τ)] via the chain rule along the given order, using the oracle's
    marginals and a greedily constructed feasible completion.  With exact
    marginals this equals [ln Z(τ)] exactly; with approximate marginals the
    error is at most [n·ε] for per-site multiplicative error [ε]. *)
