module Gibbs = Ls_gibbs
module Config = Gibbs.Config
module Dist = Ls_dist.Dist
module Slocal = Ls_local.Slocal

let check_order inst order =
  let n = Instance.n inst in
  if Array.length order <> n then
    invalid_arg "Sequential_sampler: order must list every vertex";
  let seen = Array.make n false in
  Array.iter
    (fun v ->
      if v < 0 || v >= n || seen.(v) then
        invalid_arg "Sequential_sampler: order is not a permutation";
      seen.(v) <- true)
    order

let sample (oracle : Inference.oracle) inst ~order ~rng =
  check_order inst order;
  let current = ref inst in
  Array.iter
    (fun v ->
      if not (Instance.is_pinned !current v) then begin
        let mu_hat = oracle.Inference.infer !current v in
        let c = Dist.sample rng mu_hat in
        current := Instance.pin !current v c
      end)
    order;
  Array.copy !current.Instance.pinned

let sample_slocal (oracle : Inference.oracle) inst ~order ~seed =
  check_order inst order;
  let g = Instance.graph inst in
  let rt =
    Slocal.create g ~seed ~init:(fun v ->
        if Instance.is_pinned inst v then Some inst.Instance.pinned.(v) else None)
  in
  let radius = oracle.Inference.radius in
  Slocal.run_pass rt ~order ~radius (fun ctx ->
      let v = Slocal.center ctx in
      match Slocal.read ctx v with
      | Some _ -> ()
      | None ->
          (* Rebuild the partially-sampled instance from the states within
             the locality radius: values sampled outside the radius cannot
             influence the oracle (its answers depend on B_radius(v) only),
             so this reconstruction is faithful. *)
          let pinned = Array.copy inst.Instance.pinned in
          for u = 0 to Slocal.n rt - 1 do
            if Slocal.dist ctx u <= radius then
              match Slocal.read ctx u with
              | Some c -> pinned.(u) <- c
              | None -> ()
          done;
          let inst' = Instance.create inst.Instance.spec ~pinned in
          let mu_hat = oracle.Inference.infer inst' v in
          let c = Dist.sample (Slocal.rng ctx) mu_hat in
          Slocal.write ctx v (Some c));
  let sigma =
    Array.map
      (function Some c -> c | None -> assert false)
      (Slocal.states rt)
  in
  (sigma, Slocal.single_pass_locality rt)

let output_distribution (oracle : Inference.oracle) inst ~order =
  check_order inst order;
  let acc = ref [] in
  let rec go i current p =
    if p <= 0. then ()
    else if i = Array.length order then
      acc := (Array.copy current.Instance.pinned, p) :: !acc
    else begin
      let v = order.(i) in
      if Instance.is_pinned current v then go (i + 1) current p
      else begin
        let mu_hat = oracle.Inference.infer current v in
        for c = 0 to Instance.q inst - 1 do
          let pc = Dist.prob mu_hat c in
          if pc > 0. then go (i + 1) (Instance.pin current v c) (p *. pc)
        done
      end
    end
  in
  go 0 inst 1.;
  List.rev !acc

let chain_rule_probability (oracle : Inference.oracle) inst ~order sigma =
  check_order inst order;
  if not (Config.is_total sigma) then
    invalid_arg "Sequential_sampler.chain_rule_probability: sigma not total";
  let p = ref 1. in
  let current = ref inst in
  Array.iter
    (fun v ->
      (* Once the probability hits 0 the remaining prefix instances may be
         infeasible; stop extending. *)
      if !p > 0. then
        if Instance.is_pinned !current v then begin
          if !current.Instance.pinned.(v) <> sigma.(v) then p := 0.
        end
        else begin
          let mu_hat = oracle.Inference.infer !current v in
          p := !p *. Dist.prob mu_hat sigma.(v);
          current := Instance.pin !current v sigma.(v)
        end)
    order;
  !p
