(** Chain-rule sampling from an inference oracle (Theorem 3.2, SLOCAL part).

    Scanning the nodes in an adversarial order, each free vertex draws its
    value from the oracle's marginal conditioned on everything sampled so
    far; pinned vertices copy [τ].  Run with a per-site oracle error
    [δ/n], the output distribution [μ̂] satisfies [d_TV(μ̂, μ^τ) ≤ δ]
    (coupling argument in the proof of Theorem 3.2).  The SLOCAL locality
    equals the oracle radius. *)

val sample :
  Inference.oracle ->
  Instance.t ->
  order:int array ->
  rng:Ls_rng.Rng.t ->
  int array
(** One sample.  [order] must enumerate every vertex exactly once. *)

val sample_slocal :
  Inference.oracle ->
  Instance.t ->
  order:int array ->
  seed:int64 ->
  int array * int
(** Same, executed on the locality-enforcing {!Ls_local.Slocal} runtime
    with per-node random streams; returns the sample and the certified
    SLOCAL locality. *)

val output_distribution :
  Inference.oracle -> Instance.t -> order:int array -> (int array * float) list
(** The {e exact} distribution [μ̂] of {!sample} (all random choices
    enumerated) — this is the quantity [μ̂τ] of Claim 4.5.  Exponential in
    the number of free vertices; tiny instances only. *)

val chain_rule_probability :
  Inference.oracle -> Instance.t -> order:int array -> int array -> float
(** [μ̂(σ) = Π_i μ̂^{τ ∧ σ^{i-1}}_{v_i}(σ_{v_i})] for a total [σ]
    consistent with the pinning — the quantity the JVV rejection step
    needs. *)
