module Gibbs = Ls_gibbs
module Graph = Ls_graph.Graph
module Dist = Ls_dist.Dist
module Rng = Ls_rng.Rng

type point = {
  distance : int;
  tv : float;
  mult : float;
  boundary_configs : int;
  exhaustive : bool;
}

let pin_sphere inst sphere values =
  let pins = Array.to_list (Array.mapi (fun i u -> (u, values.(i))) sphere) in
  List.fold_left
    (fun acc (u, c) ->
      match acc with
      | None -> None
      | Some inst' ->
          if Instance.is_pinned inst' u then
            if inst'.Instance.pinned.(u) = c then Some inst' else None
          else Some (Instance.pin inst' u c))
    (Some inst) pins

(* Marginal at v under a candidate boundary; None when the combined pinning
   is infeasible. *)
let marginal_under inst sphere values v =
  match pin_sphere inst sphere values with
  | None -> None
  | Some inst' -> Exact.marginal inst' v

let exhaustive_boundaries q k =
  (* All q^k value tuples. *)
  let rec go i acc =
    if i = k then List.rev_map (fun l -> Array.of_list (List.rev l)) acc
    else
      go (i + 1)
        (List.concat_map (fun prefix -> List.init q (fun c -> c :: prefix)) acc)
  in
  go 0 [ [] ]

(* One feasible boundary drawn from the true conditional distribution on
   the sphere (chain rule with exact marginals): guaranteed feasible. *)
let random_boundary ~rng inst sphere =
  let current = ref inst in
  let values = Array.make (Array.length sphere) 0 in
  try
    Array.iteri
      (fun i u ->
        if Instance.is_pinned !current u then
          values.(i) <- !current.Instance.pinned.(u)
        else begin
          match Exact.marginal !current u with
          | None -> raise Exit
          | Some m ->
              let c = Dist.sample rng m in
              values.(i) <- c;
              current := Instance.pin !current u c
        end)
      sphere;
    Some values
  with Exit -> None

let influence_at ?(max_exhaustive = 512) ?(samples = 64) ~rng inst ~v ~d =
  let g = Instance.graph inst in
  let q = Instance.q inst in
  let sphere =
    Array.of_list
      (List.filter
         (fun u -> not (Instance.is_pinned inst u))
         (Array.to_list (Graph.sphere g v d)))
  in
  let k = Array.length sphere in
  if k = 0 then { distance = d; tv = 0.; mult = 0.; boundary_configs = 0; exhaustive = true }
  else begin
    let total = float_of_int q ** float_of_int k in
    let exhaustive = total <= float_of_int max_exhaustive in
    let candidates =
      if exhaustive then exhaustive_boundaries q k
      else begin
        let constants = List.init q (fun c -> Array.make k c) in
        let sampled =
          List.filter_map
            (fun _ -> random_boundary ~rng inst sphere)
            (List.init samples (fun i -> i))
        in
        constants @ sampled
      end
    in
    let marginals =
      List.filter_map (fun values -> marginal_under inst sphere values v) candidates
    in
    let worst_tv = ref 0. and worst_mult = ref 0. in
    let arr = Array.of_list marginals in
    let kk = Array.length arr in
    for i = 0 to kk - 1 do
      for j = i + 1 to kk - 1 do
        worst_tv := max !worst_tv (Dist.tv arr.(i) arr.(j));
        worst_mult := max !worst_mult (Dist.mult_err arr.(i) arr.(j))
      done
    done;
    {
      distance = d;
      tv = !worst_tv;
      mult = !worst_mult;
      boundary_configs = kk;
      exhaustive;
    }
  end

let decay_curve ?max_exhaustive ?samples ~rng inst ~v ~max_d =
  let g = Instance.graph inst in
  let points = ref [] in
  for d = 1 to max_d do
    if Array.length (Graph.sphere g v d) > 0 then
      points := influence_at ?max_exhaustive ?samples ~rng inst ~v ~d :: !points
  done;
  List.rev !points

let fit_exponential_rate points =
  let usable =
    List.filter_map
      (fun p -> if p.tv > 0. then Some (float_of_int p.distance, log p.tv) else None)
      points
  in
  match usable with
  | [] | [ _ ] -> None
  | _ ->
      let n = float_of_int (List.length usable) in
      let sx = List.fold_left (fun a (x, _) -> a +. x) 0. usable in
      let sy = List.fold_left (fun a (_, y) -> a +. y) 0. usable in
      let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. usable in
      let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. usable in
      let denom = (n *. sxx) -. (sx *. sx) in
      if Float.abs denom < 1e-12 then None
      else
        let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
        Some (exp slope)
