(** Measuring strong spatial mixing (Definition 5.1).

    SSM with rate [δ_n(·)] demands [d_TV(μ^σ_v, μ^τ_v) ≤ δ_n(dist(v, D))]
    for every pair of feasible boundary configurations differing on [D].
    Theorem 5.1 makes this {e the} complexity measure of local inference,
    and Corollary 5.2 upgrades exponential decay in total variation to
    exponential decay in multiplicative error; these measurements drive
    experiments E5–E10.

    For a vertex [v] and a distance [d] we pin the sphere [S_d(v)] with
    every feasible boundary configuration (exhaustively when [q^{|S_d|}] is
    small, otherwise a random subset plus the constant configurations) and
    record the worst pairwise discrepancy of the induced marginals at
    [v]. *)

type point = {
  distance : int;
  tv : float;  (** Worst pairwise total variation distance at [v]. *)
  mult : float;  (** Worst pairwise multiplicative error (may be [infinity]). *)
  boundary_configs : int;  (** Feasible boundary configurations examined. *)
  exhaustive : bool;
}

val influence_at :
  ?max_exhaustive:int ->
  ?samples:int ->
  rng:Ls_rng.Rng.t ->
  Instance.t ->
  v:int ->
  d:int ->
  point
(** Worst-case boundary influence at one distance.  [max_exhaustive]
    (default 4096) bounds [q^{|S_d|}] for exhaustive boundary enumeration;
    beyond it, [samples] (default 64) random feasible boundaries are used
    together with the [q] constant boundaries. *)

val decay_curve :
  ?max_exhaustive:int ->
  ?samples:int ->
  rng:Ls_rng.Rng.t ->
  Instance.t ->
  v:int ->
  max_d:int ->
  point list
(** {!influence_at} for [d = 1 .. max_d] (skipping empty spheres). *)

val fit_exponential_rate : point list -> float option
(** Least-squares slope of [ln tv] against [d] over the points with
    [tv > 0], returned as the decay rate [α] ([tv ≈ C·α^d]); [None] when
    fewer than two usable points.  [α < 1] certifies exponential decay on
    the measured range. *)
