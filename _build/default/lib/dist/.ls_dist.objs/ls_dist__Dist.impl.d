lib/dist/dist.ml: Array Float Format Ls_rng
