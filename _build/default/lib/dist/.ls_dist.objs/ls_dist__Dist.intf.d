lib/dist/dist.mli: Format Ls_rng
