lib/dist/empirical.ml: Array Float Hashtbl List
