lib/dist/empirical.mli:
