type t = float array

let of_weights w =
  Array.iter
    (fun x ->
      if x < 0. || Float.is_nan x then
        invalid_arg "Dist.of_weights: negative or NaN weight")
    w;
  let total = Array.fold_left ( +. ) 0. w in
  if not (total > 0.) then invalid_arg "Dist.of_weights: weights sum to zero";
  Array.map (fun x -> x /. total) w

let make q f = of_weights (Array.init q f)

let uniform q =
  if q <= 0 then invalid_arg "Dist.uniform: q must be positive";
  Array.make q (1. /. float_of_int q)

let point q c =
  if c < 0 || c >= q then invalid_arg "Dist.point: value out of range";
  let a = Array.make q 0. in
  a.(c) <- 1.;
  a

let support_size mu =
  Array.fold_left (fun acc p -> if p > 0. then acc + 1 else acc) 0 mu

let size = Array.length

let prob mu c = mu.(c)

let tv mu nu =
  if Array.length mu <> Array.length nu then
    invalid_arg "Dist.tv: size mismatch";
  let acc = ref 0. in
  Array.iteri (fun i p -> acc := !acc +. Float.abs (p -. nu.(i))) mu;
  0.5 *. !acc

let mult_err mu nu =
  if Array.length mu <> Array.length nu then
    invalid_arg "Dist.mult_err: size mismatch";
  let worst = ref 0. in
  Array.iteri
    (fun i p ->
      let q = nu.(i) in
      let e =
        if p = 0. && q = 0. then 0.
        else if p = 0. || q = 0. then infinity
        else Float.abs (log p -. log q)
      in
      if e > !worst then worst := e)
    mu;
  !worst

let sample rng mu = Ls_rng.Rng.discrete rng (Array.copy mu)

let argmax mu =
  let best = ref 0 in
  Array.iteri (fun i p -> if p > mu.(!best) then best := i) mu;
  !best

let mix a mu nu =
  if a < 0. || a > 1. then invalid_arg "Dist.mix: coefficient out of [0,1]";
  if Array.length mu <> Array.length nu then
    invalid_arg "Dist.mix: size mismatch";
  Array.mapi (fun i p -> (a *. p) +. ((1. -. a) *. nu.(i))) mu

let is_normalized mu =
  Float.abs (Array.fold_left ( +. ) 0. mu -. 1.) < 1e-9

let pp fmt mu =
  Format.fprintf fmt "[";
  Array.iteri
    (fun i p ->
      if i > 0 then Format.fprintf fmt "; ";
      Format.fprintf fmt "%.4f" p)
    mu;
  Format.fprintf fmt "]"
