(** Finite probability distributions over the alphabet [0 .. q-1].

    These are the marginal distributions exchanged by the paper's inference
    algorithms: a vector [mu] with [mu.(c) = Pr(Y_v = c)].  The module also
    implements the two error measures the paper uses — total variation
    distance, and the multiplicative error [err(mu, nu) = max_c |ln mu(c) −
    ln nu(c)|] of eq. (2) (with the paper's convention [ln 0 − ln 0 = 0]). *)

type t = private float array
(** Normalized probability vector.  The representation is exposed read-only
    so callers can index [mu.(c)] directly. *)

val of_weights : float array -> t
(** Normalize a non-negative weight vector with positive sum. *)

val make : int -> (int -> float) -> t
(** [make q f] normalizes [\[| f 0; ...; f (q-1) |\]]. *)

val uniform : int -> t
(** Uniform distribution over [0..q-1]. *)

val point : int -> int -> t
(** [point q c]: Dirac mass at [c]. *)

val support_size : t -> int
val size : t -> int
(** Alphabet size [q]. *)

val prob : t -> int -> float

val tv : t -> t -> float
(** Total variation distance [1/2 · Σ_c |mu(c) − nu(c)|]. *)

val mult_err : t -> t -> float
(** Multiplicative error of eq. (2): [max_c |ln mu(c) − ln nu(c)|], where
    [ln 0 − ln 0 = 0] and a zero against a non-zero is [infinity]. *)

val sample : Ls_rng.Rng.t -> t -> int
(** Draw one value. *)

val argmax : t -> int
(** Most probable value (ties → smallest index), used by the boosting
    construction of Lemma 4.1 to pin annulus vertices. *)

val mix : float -> t -> t -> t
(** [mix a mu nu] is [a·mu + (1−a)·nu] (requires [0 ≤ a ≤ 1]). *)

val is_normalized : t -> bool
(** True when the entries sum to 1 within 1e-9. *)

val pp : Format.formatter -> t -> unit
