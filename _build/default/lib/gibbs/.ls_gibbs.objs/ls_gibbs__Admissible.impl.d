lib/gibbs/admissible.ml: Array Config Enumerate Ls_graph Spec
