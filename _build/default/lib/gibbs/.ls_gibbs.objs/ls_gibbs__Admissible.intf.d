lib/gibbs/admissible.mli: Config Spec
