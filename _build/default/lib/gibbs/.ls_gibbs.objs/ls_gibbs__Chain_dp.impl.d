lib/gibbs/chain_dp.ml: Array Config Float Hashtbl List Ls_dist Ls_graph Option Spec
