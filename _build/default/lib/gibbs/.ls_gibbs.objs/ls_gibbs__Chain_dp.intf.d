lib/gibbs/chain_dp.mli: Config Ls_dist Spec
