lib/gibbs/config.ml: Array Format List
