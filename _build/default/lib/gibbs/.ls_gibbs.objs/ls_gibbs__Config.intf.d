lib/gibbs/config.mli: Format
