lib/gibbs/enumerate.ml: Array Config List Ls_dist Ls_graph Spec
