lib/gibbs/enumerate.mli: Config Ls_dist Spec
