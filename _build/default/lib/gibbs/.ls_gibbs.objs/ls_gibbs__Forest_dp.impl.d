lib/gibbs/forest_dp.ml: Array Config Float Hashtbl List Ls_dist Ls_graph Queue Spec
