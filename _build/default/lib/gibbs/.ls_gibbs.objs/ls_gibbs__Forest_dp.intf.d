lib/gibbs/forest_dp.mli: Config Ls_dist Spec
