lib/gibbs/hypergraph_matching.ml: Array List Ls_graph Models Spec
