lib/gibbs/hypergraph_matching.mli: Ls_graph Spec
