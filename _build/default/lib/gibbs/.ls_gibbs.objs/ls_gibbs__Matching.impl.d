lib/gibbs/matching.ml: Array List Ls_graph Models Spec
