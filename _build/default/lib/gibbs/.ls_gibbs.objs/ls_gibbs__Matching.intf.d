lib/gibbs/matching.mli: Ls_graph Spec
