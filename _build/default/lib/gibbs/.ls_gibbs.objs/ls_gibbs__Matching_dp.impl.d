lib/gibbs/matching_dp.ml: Array Float Hashtbl List Ls_graph Queue
