lib/gibbs/matching_dp.mli: Ls_graph
