lib/gibbs/models.ml: Array List Ls_graph Spec
