lib/gibbs/models.mli: Ls_graph Spec
