lib/gibbs/saw.ml: Array Config Float Ls_dist Ls_graph Option Spec
