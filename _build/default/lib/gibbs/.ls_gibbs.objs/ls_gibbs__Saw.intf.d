lib/gibbs/saw.mli: Config Ls_dist Spec
