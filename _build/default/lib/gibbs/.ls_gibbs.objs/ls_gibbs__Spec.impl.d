lib/gibbs/spec.ml: Array Config List Ls_dist Ls_graph
