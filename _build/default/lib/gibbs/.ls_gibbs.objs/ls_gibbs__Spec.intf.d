lib/gibbs/spec.mli: Config Ls_dist Ls_graph
