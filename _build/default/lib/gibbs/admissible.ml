module Graph = Ls_graph.Graph

let rec enum_partial spec tau v stop =
  (* Enumerate partial configurations over vertices >= v; call [stop] on
     each; short-circuit when it returns Some. *)
  let n = Graph.n (Spec.graph spec) in
  if v = n then stop tau
  else
    let q = Spec.q spec in
    let rec try_value c =
      if c > q then None
      else begin
        tau.(v) <- (if c = q then Config.unassigned else c);
        match enum_partial spec tau (v + 1) stop with
        | Some _ as r ->
            tau.(v) <- Config.unassigned;
            r
        | None ->
            tau.(v) <- Config.unassigned;
            try_value (c + 1)
      end
    in
    try_value 0

let counterexample spec =
  let n = Graph.n (Spec.graph spec) in
  let tau = Config.empty n in
  enum_partial spec tau 0 (fun tau ->
      if Spec.locally_feasible spec tau && not (Enumerate.feasible spec tau)
      then Some (Array.copy tau)
      else None)

let is_locally_admissible spec = counterexample spec = None

let greedy_extension spec tau =
  let n = Graph.n (Spec.graph spec) in
  let q = Spec.q spec in
  let sigma = Array.copy tau in
  (* Strictly oblivious: commit to the first locally feasible value at each
     vertex, never backtrack. *)
  let rec first_value v c =
    if c = q then None
    else begin
      sigma.(v) <- c;
      if Spec.locally_feasible spec sigma then Some c
      else begin
        sigma.(v) <- Config.unassigned;
        first_value v (c + 1)
      end
    end
  in
  let rec fill v =
    if v = n then Some sigma
    else if Config.is_assigned sigma v then fill (v + 1)
    else
      match first_value v 0 with None -> None | Some _ -> fill (v + 1)
  in
  fill 0
