(** Local admissibility (Definition 2.5).

    A Gibbs distribution is locally admissible when every locally feasible
    partial configuration (one violating no fully-contained constraint) is
    globally feasible (extends to a positive-weight total configuration).
    This is property (⋆⋆) of the paper: it makes sequential local oblivious
    construction trivial and is the precondition of Theorem 5.1's converse
    direction and of Corollaries 5.2–5.3.

    The checks here are exhaustive and meant for validation on small
    instances, e.g. confirming that (Δ+1)-colorings are locally admissible
    while Δ-colorings are not. *)

val is_locally_admissible : Spec.t -> bool
(** Exhaustive check over all partial configurations — [O((q+1)^n)];
    only for tiny instances. *)

val counterexample : Spec.t -> Config.t option
(** A locally feasible but infeasible partial configuration, if any. *)

val greedy_extension : Spec.t -> Config.t -> Config.t option
(** Sequential local oblivious construction (Remark 2.3): extend [tau]
    vertex by vertex, each step choosing a value that keeps the
    configuration locally feasible.  Returns a total configuration, or
    [None] if some step has no locally feasible value.  For locally
    admissible specs this never fails on feasible [tau] and the result is
    feasible. *)
