module Graph = Ls_graph.Graph
module Dist = Ls_dist.Dist

let supported spec =
  Spec.as_pairwise spec <> None && Graph.max_degree (Spec.graph spec) <= 2

(* Walk a degree<=2 component starting at [start]: the vertex sequence and
   whether it closes into a cycle.  Cycle orders begin at [start]; path
   orders begin at an endpoint of the component. *)
let component_order g start =
  let rec endpoint u prev =
    let next =
      Array.fold_left
        (fun acc w -> if w <> prev then Some w else acc)
        None (Graph.neighbors g u)
    in
    match next with
    | None -> (u, false)
    | Some w -> if w = start then (u, true) else endpoint w u
  in
  match Graph.degree g start with
  | 0 -> ([ start ], false)
  | d ->
      let is_cycle =
        if d = 2 then snd (endpoint (Graph.neighbors g start).(0) start)
        else false
      in
      let rec collect u prev acc stop =
        let next =
          Array.fold_left
            (fun acc' w -> if w <> prev then Some w else acc')
            None (Graph.neighbors g u)
        in
        match next with
        | Some w when Some w <> stop -> collect w u (w :: acc) stop
        | _ -> List.rev acc
      in
      if is_cycle then
        (* start, then around the cycle until we would return to start. *)
        (collect (Graph.neighbors g start).(0) start
           [ (Graph.neighbors g start).(0); start ]
           (Some start),
         true)
      else begin
        let e =
          if d = 1 then start else fst (endpoint (Graph.neighbors g start).(0) start)
        in
        (collect e (-1) [ e ] None, false)
      end

let mat_vec m v q =
  Array.init q (fun i ->
      let acc = ref 0. in
      for j = 0 to q - 1 do
        acc := !acc +. (m.(i).(j) *. v.(j))
      done;
      !acc)

let vec_mat v m q =
  Array.init q (fun j ->
      let acc = ref 0. in
      for i = 0 to q - 1 do
        acc := !acc +. (v.(i) *. m.(i).(j))
      done;
      !acc)

let mat_mul a b q =
  Array.init q (fun i ->
      Array.init q (fun j ->
          let acc = ref 0. in
          for k = 0 to q - 1 do
            acc := !acc +. (a.(i).(k) *. b.(k).(j))
          done;
          !acc))

let rescale_vec v =
  let peak = Array.fold_left Float.max 0. v in
  if peak > 0. then (Array.map (fun x -> x /. peak) v, log peak) else (v, 0.)

let rescale_mat m =
  let peak = Array.fold_left (fun acc row -> Array.fold_left Float.max acc row) 0. m in
  if peak > 0. then (Array.map (Array.map (fun x -> x /. peak)) m, log peak)
  else (m, 0.)

let build spec tau =
  let pw = Option.get (Spec.as_pairwise spec) in
  let q = Spec.q spec in
  let diag u =
    Array.init q (fun c ->
        if Config.is_assigned tau u && tau.(u) <> c then 0.
        else pw.Spec.vertex_weight u c)
  in
  let edge u w =
    Array.init q (fun cu ->
        Array.init q (fun cw ->
            if u < w then pw.Spec.edge_weight u w cu cw
            else pw.Spec.edge_weight w u cw cu))
  in
  (q, diag, edge)

(* ln Z of one component together with the (unnormalized) marginal vector
   at [target] (which must lie in the component; for cycles it must be the
   first vertex of [order]). *)
let component_eval spec tau order is_cycle ~target =
  let q, diag, edge = build spec tau in
  match order with
  | [] -> invalid_arg "Chain_dp: empty component"
  | [ u ] ->
      let d = diag u in
      let z = Array.fold_left ( +. ) 0. d in
      if z > 0. then (log z, if target = Some u then Some d else None)
      else (neg_infinity, None)
  | first :: _ when is_cycle ->
      assert (target = None || target = Some first);
      (* M = D_0 E_0 D_1 E_1 ... D_{k-1} E_{k-1}; p(x) = M[x][x]. *)
      let rec go m logscale = function
        | [] -> (m, logscale)
        | u :: rest ->
            let next = match rest with [] -> first | w :: _ -> w in
            let d = diag u in
            let step =
              Array.init q (fun i ->
                  Array.init q (fun j -> d.(i) *. (edge u next).(i).(j)))
            in
            let m = mat_mul m step q in
            let m, s = rescale_mat m in
            go m (logscale +. s) rest
      in
      let identity =
        Array.init q (fun i -> Array.init q (fun j -> if i = j then 1. else 0.))
      in
      let m, logscale = go identity 0. order in
      let p = Array.init q (fun x -> m.(x).(x)) in
      let z = Array.fold_left ( +. ) 0. p in
      if z > 0. then (log z +. logscale, if target = None then None else Some p)
      else (neg_infinity, None)
  | _ ->
      (* Open chain: forward row vectors L_j = 1ᵀ D_0 E_0 ... E_{j-1} and
         backward column vectors R_j = E_j D_{j+1} ... D_{k-1} 1, so that
         p_j(x) = L_j(x) · D_j(x,x) · R_j(x). *)
      let vs = Array.of_list order in
      let k = Array.length vs in
      let left = Array.make k [||] in
      let log_left = ref 0. in
      let cur = ref (Array.make q 1.) in
      for j = 0 to k - 1 do
        left.(j) <- !cur;
        if j < k - 1 then begin
          let d = diag vs.(j) in
          let scaled = Array.mapi (fun c x -> x *. d.(c)) !cur in
          let next = vec_mat scaled (edge vs.(j) vs.(j + 1)) q in
          let next, s = rescale_vec next in
          log_left := !log_left +. s;
          cur := next
        end
      done;
      let right = Array.make k [||] in
      let cur = ref (Array.make q 1.) in
      for j = k - 1 downto 0 do
        right.(j) <- !cur;
        if j > 0 then begin
          let d = diag vs.(j) in
          let scaled = Array.mapi (fun c x -> x *. d.(c)) !cur in
          let next = mat_vec (edge vs.(j - 1) vs.(j)) scaled q in
          let next, _s = rescale_vec next in
          cur := next
        end
      done;
      let d_last = diag vs.(k - 1) in
      let z =
        Array.fold_left ( +. ) 0.
          (Array.mapi (fun c x -> x *. d_last.(c)) left.(k - 1))
      in
      if z <= 0. then (neg_infinity, None)
      else begin
        let log_z = log z +. !log_left in
        let marginal =
          match target with
          | None -> None
          | Some t ->
              let j = ref (-1) in
              Array.iteri (fun idx u -> if u = t then j := idx) vs;
              if !j < 0 then None
              else begin
                let d = diag vs.(!j) in
                let p =
                  Array.init q (fun x -> left.(!j).(x) *. d.(x) *. right.(!j).(x))
                in
                if Array.for_all (fun x -> x <= 0.) p then None else Some p
              end
        in
        (log_z, marginal)
      end

let check spec =
  if not (supported spec) then
    invalid_arg "Chain_dp: pairwise spec with max degree <= 2 required"

let component_representatives g =
  let comp = Graph.components g in
  let seen = Hashtbl.create 8 in
  let reps = ref [] in
  Array.iteri
    (fun v c ->
      if not (Hashtbl.mem seen c) then begin
        Hashtbl.replace seen c ();
        reps := v :: !reps
      end)
    comp;
  (comp, List.rev !reps)

let log_partition spec tau =
  check spec;
  let g = Spec.graph spec in
  let _, reps = component_representatives g in
  List.fold_left
    (fun acc start ->
      let order, is_cycle = component_order g start in
      let lz, _ = component_eval spec tau order is_cycle ~target:None in
      acc +. lz)
    0. reps

let marginal spec tau v =
  check spec;
  let g = Spec.graph spec in
  let q = Spec.q spec in
  let comp, reps = component_representatives g in
  let answer = ref None in
  try
    List.iter
      (fun start ->
        if comp.(start) = comp.(v) then begin
          (* Start the walk at v so cycle marginals land on the first
             position; for paths any order works, the target is located by
             index. *)
          let order, is_cycle = component_order g v in
          let lz, m = component_eval spec tau order is_cycle ~target:(Some v) in
          if lz = neg_infinity then raise Exit;
          match m with
          | Some p ->
              answer :=
                Some
                  (if Config.is_assigned tau v then Dist.point q tau.(v)
                   else Dist.of_weights p)
          | None -> raise Exit
        end
        else begin
          let order, is_cycle = component_order g start in
          let lz, _ = component_eval spec tau order is_cycle ~target:None in
          if lz = neg_infinity then raise Exit
        end)
      reps;
    !answer
  with Exit -> None
