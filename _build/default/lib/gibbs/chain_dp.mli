(** Exact transfer-matrix computations for pairwise specs on paths and
    cycles (max degree ≤ 2).

    Cycles are the one workload class the forest DP cannot touch, yet the
    paper's cycle experiments want exact whole-graph marginals at sizes far
    beyond enumeration.  A configuration weight along a cycle
    [u₀ u₁ … u_{k−1} u₀] factorizes into [q × q] transfer matrices, so

    [Z = tr(D₀ E₀ D₁ E₁ ⋯ D_{k−1} E_{k−1})]

    with [D_i] the (pin-filtered) vertex-weight diagonal and [E_i] the edge
    matrix, and the marginal at [u₀] is the normalized diagonal of the
    cyclic product.  Paths are the open-boundary analogue.  Everything is
    rescaled per step, so million-vertex chains are fine. *)

val supported : Spec.t -> bool
(** Pairwise spec and every vertex has degree ≤ 2. *)

val marginal : Spec.t -> Config.t -> int -> Ls_dist.Dist.t option
(** Exact conditional marginal [μ^τ_v]; [None] when [τ] is infeasible.
    Same contract as {!Enumerate.marginal}; requires {!supported}. *)

val log_partition : Spec.t -> Config.t -> float
(** [ln Z(τ)]; [neg_infinity] when infeasible.  Requires {!supported}. *)
