let unassigned = -1

type t = int array

let empty n = Array.make n unassigned

let of_pinning n pins =
  let tau = empty n in
  List.iter
    (fun (v, c) ->
      if v < 0 || v >= n then invalid_arg "Config.of_pinning: vertex out of range";
      if c < 0 then invalid_arg "Config.of_pinning: negative value";
      if tau.(v) <> unassigned && tau.(v) <> c then
        invalid_arg "Config.of_pinning: conflicting pinning";
      tau.(v) <- c)
    pins;
  tau

let is_assigned tau v = tau.(v) <> unassigned

let assigned_vertices tau =
  let acc = ref [] in
  for v = Array.length tau - 1 downto 0 do
    if tau.(v) <> unassigned then acc := v :: !acc
  done;
  !acc

let num_assigned tau =
  Array.fold_left (fun acc c -> if c <> unassigned then acc + 1 else acc) 0 tau

let is_total tau = Array.for_all (fun c -> c <> unassigned) tau

let extend tau v c =
  if tau.(v) <> unassigned then invalid_arg "Config.extend: vertex already assigned";
  let tau' = Array.copy tau in
  tau'.(v) <- c;
  tau'

let set tau v c = tau.(v) <- c

let restrict tau vs =
  let tau' = empty (Array.length tau) in
  Array.iter (fun v -> tau'.(v) <- tau.(v)) vs;
  tau'

let agree_on tau1 tau2 vs = Array.for_all (fun v -> tau1.(v) = tau2.(v)) vs

let diff_domain tau1 tau2 =
  if Array.length tau1 <> Array.length tau2 then
    invalid_arg "Config.diff_domain: size mismatch";
  let acc = ref [] in
  for v = Array.length tau1 - 1 downto 0 do
    if tau1.(v) <> tau2.(v) then acc := v :: !acc
  done;
  !acc

let values_in_range tau q =
  Array.for_all (fun c -> c = unassigned || (c >= 0 && c < q)) tau

let pp fmt tau =
  Format.fprintf fmt "[";
  Array.iteri
    (fun v c ->
      if v > 0 then Format.fprintf fmt ";";
      if c = unassigned then Format.fprintf fmt "·" else Format.fprintf fmt "%d" c)
    tau;
  Format.fprintf fmt "]"
