(** Partial configurations [τ ∈ Σ^Λ].

    A configuration assigns a value in [0..q-1] to each vertex of a subset
    [Λ ⊆ V]; unassigned vertices carry the sentinel {!unassigned}.  This is
    the [τ] of the paper's instances [(G, x, τ)] (Definition 2.2) and the
    partially-constructed samples of the chain-rule samplers. *)

val unassigned : int
(** The sentinel value [-1]. *)

type t = int array
(** [t.(v)] is the value at [v], or {!unassigned}. *)

val empty : int -> t
(** All-unassigned configuration on [n] vertices. *)

val of_pinning : int -> (int * int) list -> t
(** [of_pinning n [(v, c); ...]] pins each listed vertex; duplicates with
    conflicting values are rejected. *)

val is_assigned : t -> int -> bool

val assigned_vertices : t -> int list
(** Sorted list of the domain [Λ]. *)

val num_assigned : t -> int

val is_total : t -> bool
(** All vertices assigned. *)

val extend : t -> int -> int -> t
(** [extend tau v c] is a copy with [v ↦ c]; [v] must be unassigned. *)

val set : t -> int -> int -> unit
(** In-place assignment (overwrite allowed). *)

val restrict : t -> int array -> t
(** [restrict tau vs] keeps only the assignments on [vs]. *)

val agree_on : t -> t -> int array -> bool
(** Do two configurations coincide on every vertex of the set? *)

val diff_domain : t -> t -> int list
(** Vertices on which the two configurations differ (including
    assigned-vs-unassigned mismatches). *)

val values_in_range : t -> int -> bool
(** All assigned values lie in [0..q-1]. *)

val pp : Format.formatter -> t -> unit
