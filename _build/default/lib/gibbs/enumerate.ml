module Graph = Ls_graph.Graph
module Dist = Ls_dist.Dist

let fold_completions spec ~member tau ~init ~f =
  let n = Graph.n (Spec.graph spec) in
  let q = Spec.q spec in
  let factors = Spec.factors spec in
  let nf = Array.length factors in
  (* Track, per relevant factor, how many of its scope vertices are still
     unassigned; a factor becomes evaluable exactly when this hits 0. *)
  let relevant = Array.make nf false in
  let remaining = Array.make nf 0 in
  let scratch = Array.copy tau in
  Array.iteri
    (fun i fa ->
      if Array.for_all member fa.Spec.scope then begin
        relevant.(i) <- true;
        remaining.(i) <-
          Array.fold_left
            (fun acc v -> if scratch.(v) = Config.unassigned then acc + 1 else acc)
            0 fa.Spec.scope
      end)
    factors;
  (* Prefix weight: factors already fully assigned by tau. *)
  let prefix = ref 1. in
  Array.iteri
    (fun i _ ->
      if relevant.(i) && remaining.(i) = 0 then
        match Spec.factor_value spec i scratch with
        | Some w -> prefix := !prefix *. w
        | None -> assert false)
    factors;
  if !prefix <= 0. then init
  else begin
    let free = ref [] in
    for v = n - 1 downto 0 do
      if member v && scratch.(v) = Config.unassigned then free := v :: !free
    done;
    let free = Array.of_list !free in
    let k = Array.length free in
    let acc = ref init in
    let rec go idx w =
      if w <= 0. then ()
      else if idx = k then acc := f !acc scratch w
      else begin
        let v = free.(idx) in
        for c = 0 to q - 1 do
          scratch.(v) <- c;
          (* Multiply in the factors completed by this assignment. *)
          let dw = ref 1. in
          let touched = Spec.factors_of_vertex spec v in
          Array.iter
            (fun i ->
              if relevant.(i) then begin
                remaining.(i) <- remaining.(i) - 1;
                if remaining.(i) = 0 then
                  match Spec.factor_value spec i scratch with
                  | Some x -> dw := !dw *. x
                  | None -> assert false
              end)
            touched;
          go (idx + 1) (w *. !dw);
          Array.iter
            (fun i -> if relevant.(i) then remaining.(i) <- remaining.(i) + 1)
            touched;
          scratch.(v) <- Config.unassigned
        done
      end
    in
    go 0 !prefix;
    !acc
  end

let all_members _ = true

let partition spec tau =
  fold_completions spec ~member:all_members tau ~init:0. ~f:(fun acc _ w ->
      acc +. w)

let feasible spec tau = partition spec tau > 0.

let distribution spec tau =
  let support =
    fold_completions spec ~member:all_members tau ~init:[] ~f:(fun acc sigma w ->
        (Array.copy sigma, w) :: acc)
  in
  let z = List.fold_left (fun acc (_, w) -> acc +. w) 0. support in
  if not (z > 0.) then failwith "Enumerate.distribution: infeasible pinning";
  List.rev_map (fun (sigma, w) -> (sigma, w /. z)) support

let marginal spec tau v =
  let q = Spec.q spec in
  if Config.is_assigned tau v then
    if feasible spec tau then Some (Dist.point q tau.(v)) else None
  else begin
    let weights = Array.make q 0. in
    let (_ : unit) =
      fold_completions spec ~member:all_members tau ~init:() ~f:(fun () sigma w ->
          weights.(sigma.(v)) <- weights.(sigma.(v)) +. w)
    in
    if Array.for_all (fun w -> w <= 0.) weights then None
    else Some (Dist.of_weights weights)
  end

let ball_marginal spec ~ball tau v =
  if not (Array.exists (( = ) v) ball) then
    invalid_arg "Enumerate.ball_marginal: v not in ball";
  let n = Graph.n (Spec.graph spec) in
  let in_ball = Array.make n false in
  Array.iter (fun u -> in_ball.(u) <- true) ball;
  let member u = in_ball.(u) in
  let q = Spec.q spec in
  if Config.is_assigned tau v then Some (Dist.point q tau.(v))
  else begin
    let weights = Array.make q 0. in
    let (_ : unit) =
      fold_completions spec ~member tau ~init:() ~f:(fun () sigma w ->
          weights.(sigma.(v)) <- weights.(sigma.(v)) +. w)
    in
    if Array.for_all (fun w -> w <= 0.) weights then None
    else Some (Dist.of_weights weights)
  end

let ball_partition spec ~ball tau =
  let n = Graph.n (Spec.graph spec) in
  let in_ball = Array.make n false in
  Array.iter (fun u -> in_ball.(u) <- true) ball;
  fold_completions spec ~member:(fun u -> in_ball.(u)) tau ~init:0.
    ~f:(fun acc _ w -> acc +. w)

let count_feasible spec =
  let n = Graph.n (Spec.graph spec) in
  fold_completions spec ~member:all_members (Config.empty n) ~init:0
    ~f:(fun acc _ _ -> acc + 1)
