(** Exact computations by exhaustive enumeration (with pruning).

    These are the ground-truth engines: partition functions, joint
    distributions, conditional marginals, and the ball-restricted marginals
    [μ_v(c) = Σ_{σ ∈ C, σ_v = c} w_B(σ) / Σ_{σ ∈ C} w_B(σ)] that the
    paper's inference algorithms (§4.1, §5) compute inside a gathered ball.
    Cost is [O(q^{#free})]; callers keep the free region small (tiny whole
    instances for validation, radius-bounded balls in the algorithms). *)

val fold_completions :
  Spec.t ->
  member:(int -> bool) ->
  Config.t ->
  init:'a ->
  f:('a -> Config.t -> float -> 'a) ->
  'a
(** Enumerate all assignments [σ] to the member vertices that are consistent
    with [tau] on already-assigned members, and call [f acc σ w] with
    [w = w_B(σ) = Π_{(f,S) : S ⊆ B} f(σ_S)] for every [σ] of positive
    weight.  Zero-weight branches are pruned as soon as a completed factor
    vanishes.  The configuration passed to [f] is a scratch buffer — copy it
    if you keep it. *)

val partition : Spec.t -> Config.t -> float
(** [Z(τ) = Σ_{σ ⊇ τ} w(σ)] over total completions of [tau]. *)

val feasible : Spec.t -> Config.t -> bool
(** Is [tau] feasible w.r.t. [μ], i.e. [Z(τ) > 0]?  (Definition 2.2.) *)

val distribution : Spec.t -> Config.t -> (int array * float) list
(** The conditional joint distribution [μ^τ]: support configurations with
    their probabilities.  Raises [Failure] when [tau] is infeasible. *)

val marginal : Spec.t -> Config.t -> int -> Ls_dist.Dist.t option
(** Exact conditional marginal [μ^τ_v]; [None] when [tau] is infeasible.
    When [v] is assigned by [tau] this is the point mass at [τ_v]. *)

val ball_marginal :
  Spec.t -> ball:int array -> Config.t -> int -> Ls_dist.Dist.t option
(** Marginal of [v] in the ball-restricted measure [w_B] given the pinnings
    of [tau] inside the ball — the quantity computed locally by the
    algorithms of Lemma 4.1 and Theorem 5.1.  [v] must belong to [ball]. *)

val ball_partition : Spec.t -> ball:int array -> Config.t -> float
(** [Σ_{σ ∈ C} w_B(σ)] over assignments to the ball consistent with
    [tau]. *)

val count_feasible : Spec.t -> int
(** Number of feasible total configurations — [Z] for hard-constraint
    (Boolean-factor) specs. *)
