module Graph = Ls_graph.Graph
module Dist = Ls_dist.Dist

let supported spec ~ball =
  match Spec.as_pairwise spec with
  | None -> false
  | Some _ ->
      let sub, _ = Graph.induced (Spec.graph spec) ball in
      Graph.is_forest sub

(* Bottom-up sum-product over one tree component of [sub], rooted at local
   vertex [root].  Returns the unnormalized weight vector at the root:
   up.(root).(c) = Σ over assignments of the component with root = c of the
   product of vertex and edge weights, respecting the pinning [tau] (given
   on original ids, [orig] maps local -> original). *)
let component_weights ?logscale (pw : Spec.pairwise) q sub orig tau root =
  let nloc = Graph.n sub in
  let parent = Array.make nloc (-1) in
  let order = ref [] in
  let visited = Array.make nloc false in
  let queue = Queue.create () in
  visited.(root) <- true;
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order := u :: !order;
    Array.iter
      (fun w ->
        if not visited.(w) then begin
          visited.(w) <- true;
          parent.(w) <- u;
          Queue.add w queue
        end)
      (Graph.neighbors sub u)
  done;
  (* !order is reverse BFS: children come before parents. *)
  let up = Array.make nloc [||] in
  let edge_w a b ca cb =
    (* Evaluate the pairwise edge factor on original ids with the
       smaller-endpoint-first convention of Spec. *)
    if a < b then pw.Spec.edge_weight a b ca cb else pw.Spec.edge_weight b a cb ca
  in
  List.iter
    (fun u ->
      let ou = orig.(u) in
      let pinned = tau.(ou) in
      let w =
        Array.init q (fun c ->
            if pinned <> Config.unassigned && pinned <> c then 0.
            else begin
              let acc = ref (pw.Spec.vertex_weight ou c) in
              Array.iter
                (fun child ->
                  if parent.(child) = u then begin
                    let oc = orig.(child) in
                    let msg = ref 0. in
                    for cc = 0 to q - 1 do
                      msg := !msg +. (up.(child).(cc) *. edge_w oc ou cc c)
                    done;
                    acc := !acc *. !msg
                  end)
                (Graph.neighbors sub u);
              !acc
            end)
      in
      (* Rescale to dodge over/underflow on deep trees: marginals are
         invariant under positive scaling of a whole message. *)
      let peak = Array.fold_left Float.max 0. w in
      if peak > 0. then begin
        up.(u) <- Array.map (fun x -> x /. peak) w;
        match logscale with
        | Some acc -> acc := !acc +. log peak
        | None -> ()
      end
      else up.(u) <- w)
    !order;
  up.(root)

let ball_marginal spec ~ball tau v =
  match Spec.as_pairwise spec with
  | None -> invalid_arg "Forest_dp.ball_marginal: spec is not pairwise"
  | Some pw ->
      let q = Spec.q spec in
      if Config.is_assigned tau v then Some (Dist.point q tau.(v))
      else begin
        let sub, orig = Graph.induced (Spec.graph spec) ball in
        if not (Graph.is_forest sub) then
          invalid_arg "Forest_dp.ball_marginal: induced ball is not a forest";
        let nloc = Graph.n sub in
        let local_of_orig = Hashtbl.create (2 * nloc) in
        Array.iteri (fun i o -> Hashtbl.replace local_of_orig o i) orig;
        let vloc =
          match Hashtbl.find_opt local_of_orig v with
          | Some i -> i
          | None -> invalid_arg "Forest_dp.ball_marginal: v not in ball"
        in
        let comp = Graph.components sub in
        (* Other components contribute a constant factor; it cancels in the
           normalization unless it is zero, in which case the whole measure
           vanishes and the marginal is undefined. *)
        let seen_roots = Hashtbl.create 8 in
        let others_positive = ref true in
        for u = 0 to nloc - 1 do
          let c = comp.(u) in
          if c <> comp.(vloc) && not (Hashtbl.mem seen_roots c) then begin
            Hashtbl.replace seen_roots c ();
            let w = component_weights pw q sub orig tau u in
            if Array.for_all (fun x -> x <= 0.) w then others_positive := false
          end
        done;
        if not !others_positive then None
        else begin
          let weights = component_weights pw q sub orig tau vloc in
          if Array.for_all (fun x -> x <= 0.) weights then None
          else Some (Dist.of_weights weights)
        end
      end

let marginal spec tau v =
  let n = Graph.n (Spec.graph spec) in
  let ball = Array.init n (fun i -> i) in
  ball_marginal spec ~ball tau v

let log_partition spec tau =
  match Spec.as_pairwise spec with
  | None -> invalid_arg "Forest_dp.log_partition: spec is not pairwise"
  | Some pw ->
      let g = Spec.graph spec in
      if not (Graph.is_forest g) then
        invalid_arg "Forest_dp.log_partition: graph is not a forest";
      let n = Graph.n g in
      let orig = Array.init n (fun i -> i) in
      let comp = Graph.components g in
      let seen = Hashtbl.create 8 in
      let total = ref 0. in
      (try
         for u = 0 to n - 1 do
           if not (Hashtbl.mem seen comp.(u)) then begin
             Hashtbl.replace seen comp.(u) ();
             let logscale = ref 0. in
             let w = component_weights ~logscale pw (Spec.q spec) g orig tau u in
             let z = Array.fold_left ( +. ) 0. w in
             if z > 0. then total := !total +. log z +. !logscale
             else begin
               total := neg_infinity;
               raise Exit
             end
           end
         done
       with Exit -> ());
      !total
