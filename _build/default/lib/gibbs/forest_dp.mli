(** Exact marginals for pairwise specs on forests, by dynamic programming.

    When the subgraph induced by a gathered ball is a forest (always true on
    trees, and true on cycles for radii below half the girth), the
    ball-restricted marginal of {!Enumerate.ball_marginal} can be computed
    in [O(|B| · q²)] instead of [O(q^{|B|})] by bottom-up message passing.
    This is an exactness-preserving speedup — the two engines agree bit-for-
    bit up to floating-point rounding (property-tested) — and it is what
    makes the large-[n] round-complexity sweeps (E5–E9) feasible. *)

val supported : Spec.t -> ball:int array -> bool
(** True when the spec is pairwise and the induced ball is a forest. *)

val ball_marginal :
  Spec.t -> ball:int array -> Config.t -> int -> Ls_dist.Dist.t option
(** Same contract as {!Enumerate.ball_marginal}; requires {!supported}. *)

val marginal : Spec.t -> Config.t -> int -> Ls_dist.Dist.t option
(** Whole-graph marginal when the whole graph is a forest. *)

val log_partition : Spec.t -> Config.t -> float
(** [ln Z(τ)] for a pairwise spec on a forest; [neg_infinity] when [τ] is
    infeasible.  Rescaled per node, so deep trees are safe. *)
