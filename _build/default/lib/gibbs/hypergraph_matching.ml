module Hypergraph = Ls_graph.Hypergraph

type t = { spec : Spec.t; hypergraph : Hypergraph.t; lambda : float }

let make h ~lambda =
  let ig = Hypergraph.intersection_graph h in
  { spec = Models.hardcore ig ~lambda; hypergraph = h; lambda }

let uniqueness_threshold ~rank ~delta =
  if delta <= 2 || rank <= 1 then infinity
  else
    let d = float_of_int delta and r = float_of_int rank in
    ((d -. 1.) ** (d -. 1.)) /. ((r -. 1.) *. ((d -. 2.) ** d))

let matching_of_config _ sigma =
  let acc = ref [] in
  Array.iteri (fun i c -> if c = 1 then acc := i :: !acc) sigma;
  List.rev !acc

let is_matching hm sigma =
  let h = hm.hypergraph in
  let used = Array.make (Hypergraph.n h) false in
  try
    Array.iteri
      (fun i c ->
        if c = 1 then
          Array.iter
            (fun v ->
              if used.(v) then raise Exit;
              used.(v) <- true)
            (Hypergraph.hyperedge h i))
      sigma;
    true
  with Exit -> false
