(** Weighted hypergraph matchings, via intersection-graph duality.

    A matching of a hypergraph [H] with activity [λ] per hyperedge is the
    hardcore model with fugacity [λ] on the intersection graph of [H].
    Song–Yin–Zhao prove SSM up to [λ_c(r, Δ) = (Δ−1)^{Δ−1} /
    ((r−1)(Δ−2)^Δ)] where [r] is the rank and [Δ] the max vertex degree;
    the paper's application E10 samples up to that threshold. *)

type t = {
  spec : Spec.t;  (** Hardcore([λ]) on the intersection graph. *)
  hypergraph : Ls_graph.Hypergraph.t;
  lambda : float;
}

val make : Ls_graph.Hypergraph.t -> lambda:float -> t

val uniqueness_threshold : rank:int -> delta:int -> float
(** [λ_c(r, Δ)]; [infinity] when [Δ ≤ 2] or [r ≤ 1]. *)

val matching_of_config : t -> int array -> int list
(** Indices of selected hyperedges. *)

val is_matching : t -> int array -> bool
(** No two selected hyperedges intersect. *)
