module Line_graph = Ls_graph.Line_graph

type t = { spec : Spec.t; lg : Line_graph.t; lambda : float }

let make g ~lambda =
  let lg = Line_graph.make g in
  { spec = Models.hardcore lg.Line_graph.line ~lambda; lg; lambda }

let edge_in_matching m sigma u v =
  sigma.(Line_graph.vertex_of_edge m.lg u v) = 1

let matching_of_config m sigma =
  let acc = ref [] in
  Array.iteri
    (fun i c -> if c = 1 then acc := m.lg.Line_graph.edge_of_vertex.(i) :: !acc)
    sigma;
  List.rev !acc

let is_matching m sigma =
  let n = Ls_graph.Graph.n m.lg.Line_graph.base in
  let used = Array.make n false in
  try
    Array.iteri
      (fun i c ->
        if c = 1 then begin
          let u, v = m.lg.Line_graph.edge_of_vertex.(i) in
          if used.(u) || used.(v) then raise Exit;
          used.(u) <- true;
          used.(v) <- true
        end)
      sigma;
    true
  with Exit -> false

let size _ sigma = Array.fold_left (fun acc c -> acc + c) 0 sigma
