(** The monomer–dimer (weighted matchings) model, via line-graph duality.

    A matching of [G] with activity [λ] per edge is the hardcore model with
    fugacity [λ] on the line graph [L(G)]; the paper samples matchings in
    [O(√Δ log³ n)] rounds because the model has SSM at rate
    [1 − Ω(1/√Δ)] for every [λ] (Bayati–Gamarnik–Katz–Nair–Tetali).  The
    LOCAL simulation runs on [L(G)], whose distances are within ±1 of
    edge-to-edge distances in [G]. *)

type t = {
  spec : Spec.t;  (** Hardcore([λ]) on the line graph. *)
  lg : Ls_graph.Line_graph.t;
  lambda : float;
}

val make : Ls_graph.Graph.t -> lambda:float -> t

val edge_in_matching : t -> int array -> int -> int -> bool
(** [edge_in_matching m sigma u v]: does the (total) line-graph
    configuration [sigma] put base edge [{u,v}] in the matching? *)

val matching_of_config : t -> int array -> (int * int) list
(** Base edges selected by a line-graph configuration. *)

val is_matching : t -> int array -> bool
(** Validity check on the base graph: no two selected edges share an
    endpoint. *)

val size : t -> int array -> int
(** Number of selected edges. *)
