module Graph = Ls_graph.Graph

type constraint_ = In | Out

let edge_key u v = if u < v then (u, v) else (v, u)

let pin_table g pins =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (u, v, c) ->
      if not (Graph.mem_edge g u v) then
        invalid_arg "Matching_dp: pinned pair is not an edge";
      let key = edge_key u v in
      (match Hashtbl.find_opt tbl key with
      | Some c' when c' <> c -> invalid_arg "Matching_dp: conflicting pins"
      | _ -> ());
      Hashtbl.replace tbl key c)
    pins;
  tbl

(* Per-node DP values for the component rooted at [root]:
   free u  = weight of matchings of T_u with u unmatched (within T_u),
   matched u = weight with u matched inside T_u,
   both rescaled per node; the log of the accumulated rescaling is shared
   by free and matched so their ratio stays exact. *)
type node_values = { free : float; matched : float }

let component_dp g ~lambda ~pins root =
  let n = Graph.n g in
  let parent = Array.make n (-2) in
  let order = ref [] in
  let queue = Queue.create () in
  parent.(root) <- -1;
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order := u :: !order;
    Array.iter
      (fun w ->
        if parent.(w) = -2 then begin
          parent.(w) <- u;
          Queue.add w queue
        end)
      (Graph.neighbors g u)
  done;
  let values = Array.make n { free = 1.; matched = 0. } in
  let logscale = ref 0. in
  List.iter
    (fun u ->
      let children =
        List.filter
          (fun c -> parent.(c) = u)
          (Array.to_list (Graph.neighbors g u))
      in
      let status c = Hashtbl.find_opt pins (edge_key u c) in
      let skip c =
        match status c with
        | Some In -> 0.
        | _ -> values.(c).free +. values.(c).matched
      in
      let use c =
        match status c with Some Out -> 0. | _ -> lambda *. values.(c).free
      in
      let free = List.fold_left (fun acc c -> acc *. skip c) 1. children in
      let matched =
        List.fold_left
          (fun acc j ->
            let term =
              List.fold_left
                (fun t i -> t *. if i = j then use j else skip i)
                1. children
            in
            acc +. term)
          0. children
      in
      let peak = Float.max free matched in
      if peak > 0. then begin
        values.(u) <- { free = free /. peak; matched = matched /. peak };
        logscale := !logscale +. log peak
      end
      else values.(u) <- { free = 0.; matched = 0. })
    !order;
  (values, parent, !logscale)

let check_forest g =
  if not (Graph.is_forest g) then
    invalid_arg "Matching_dp: the graph must be a forest"

let component_roots g =
  let comp = Graph.components g in
  let seen = Hashtbl.create 8 in
  let roots = ref [] in
  Array.iteri
    (fun v c ->
      if not (Hashtbl.mem seen c) then begin
        Hashtbl.replace seen c ();
        roots := v :: !roots
      end)
    comp;
  List.rev !roots

let log_partition g ~lambda ~pins =
  check_forest g;
  let pins = pin_table g pins in
  List.fold_left
    (fun acc root ->
      let values, _, logscale = component_dp g ~lambda ~pins root in
      let z = values.(root).free +. values.(root).matched in
      if z > 0. then acc +. log z +. logscale else neg_infinity)
    0. (component_roots g)

let partition g ~lambda ~pins =
  let lz = log_partition g ~lambda ~pins in
  if lz = neg_infinity then 0. else exp lz

let edge_marginal g ~lambda ~pins (u, v) =
  check_forest g;
  if not (Graph.mem_edge g u v) then
    invalid_arg "Matching_dp.edge_marginal: not an edge";
  let pins = pin_table g pins in
  (* Every other component must still carry positive weight. *)
  let comp = Graph.components g in
  let feasible_elsewhere =
    List.for_all
      (fun root ->
        comp.(root) = comp.(u)
        ||
        let values, _, _ = component_dp g ~lambda ~pins root in
        values.(root).free +. values.(root).matched > 0.)
      (component_roots g)
  in
  if not feasible_elsewhere then None
  else begin
    (* Root the component at u so that v is a child of u; the marginal is
       the v-term of matched(u) over free(u) + matched(u) — the rescaling
       of the children cancels. *)
    let values, parent, _ = component_dp g ~lambda ~pins u in
    assert (parent.(v) = u);
    let children =
      List.filter (fun c -> parent.(c) = u) (Array.to_list (Graph.neighbors g u))
    in
    let status c = Hashtbl.find_opt pins (edge_key u c) in
    let skip c =
      match status c with
      | Some In -> 0.
      | _ -> values.(c).free +. values.(c).matched
    in
    let use c =
      match status c with Some Out -> 0. | _ -> lambda *. values.(c).free
    in
    let numerator =
      List.fold_left (fun t i -> t *. if i = v then use v else skip i) 1. children
    in
    (* Rebuild u's unscaled aggregates from the (commonly-scaled) children so
       the ratio is exact — values.(u) itself was rescaled by its own peak. *)
    let free_raw = List.fold_left (fun acc c -> acc *. skip c) 1. children in
    let matched_raw =
      List.fold_left
        (fun acc j ->
          acc
          +. List.fold_left
               (fun t i -> t *. if i = j then use j else skip i)
               1. children)
        0. children
    in
    let denominator = free_raw +. matched_raw in
    if denominator <= 0. then None else Some (numerator /. denominator)
  end
