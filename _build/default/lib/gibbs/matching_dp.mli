(** Exact monomer–dimer (matching) computations on forests.

    The matchings application (E7) needs edge-occupancy marginals on trees
    far too deep for enumeration, and the line-graph duality does not help
    there: line graphs of trees contain triangles, so {!Forest_dp} does not
    apply.  This module implements the classical matching recursion
    directly on the base forest: for a rooted subtree, [free] is the total
    weight of matchings leaving the root unmatched and [matched] the weight
    of those matching the root inside the subtree, with

    [free(u)  = Π_c (free(c) + matched(c))]
    [matched(u) = Σ_j λ_{u c_j} · free(c_j) · Π_{i≠j} (free(c_i) + matched(c_i))]

    Edge pinnings (forced in / forced out) implement the boundary
    conditions of the SSM measurements; messages are rescaled to stay in
    floating-point range on deep trees. *)

type constraint_ = In | Out

val log_partition :
  Ls_graph.Graph.t ->
  lambda:float ->
  pins:(int * int * constraint_) list ->
  float
(** [ln Σ_M λ^{|M|}] over matchings respecting the pins; [neg_infinity]
    when the pins are unsatisfiable (e.g. two adjacent edges forced [In]).
    The graph must be a forest.  Computed with per-node rescaling, so it is
    safe on deep trees. *)

val partition :
  Ls_graph.Graph.t ->
  lambda:float ->
  pins:(int * int * constraint_) list ->
  float
(** [exp (log_partition ...)]; overflows for very large forests — prefer
    {!log_partition} there. *)

val edge_marginal :
  Ls_graph.Graph.t ->
  lambda:float ->
  pins:(int * int * constraint_) list ->
  int * int ->
  float option
(** [Pr(e ∈ M)] under the constrained monomer–dimer distribution; [None]
    when the pins are unsatisfiable.  Exact (up to rounding), O(n·Δ). *)
