module Graph = Ls_graph.Graph

let weighted_independent_set g ~vertex_lambda =
  Spec.create_pairwise g ~q:2
    {
      Spec.vertex_weight = (fun v c -> if c = 1 then vertex_lambda v else 1.);
      edge_weight = (fun _ _ cu cv -> if cu = 1 && cv = 1 then 0. else 1.);
    }

let hardcore g ~lambda =
  if lambda < 0. then invalid_arg "Models.hardcore: negative fugacity";
  weighted_independent_set g ~vertex_lambda:(fun _ -> lambda)

let hardcore_uniqueness_threshold delta =
  if delta <= 2 then infinity
  else
    let d = float_of_int delta in
    ((d -. 1.) ** (d -. 1.)) /. ((d -. 2.) ** d)

let two_spin g ~beta ~gamma ~lambda =
  if beta < 0. || gamma < 0. || lambda < 0. then
    invalid_arg "Models.two_spin: negative parameter";
  Spec.create_pairwise g ~q:2
    {
      Spec.vertex_weight = (fun _ c -> if c = 1 then lambda else 1.);
      edge_weight =
        (fun _ _ cu cv ->
          match (cu, cv) with
          | 0, 0 -> beta
          | 1, 1 -> gamma
          | _ -> 1.);
    }

let is_antiferromagnetic ~beta ~gamma = beta *. gamma < 1.

let ising g ~beta ~field = two_spin g ~beta ~gamma:beta ~lambda:field

let ising_uniqueness_threshold delta =
  if delta <= 2 then 0.
  else float_of_int (delta - 2) /. float_of_int delta

let potts g ~q ~beta =
  if q < 1 then invalid_arg "Models.potts: need q >= 1";
  if beta < 0. then invalid_arg "Models.potts: negative interaction";
  Spec.create_pairwise g ~q
    {
      Spec.vertex_weight = (fun _ _ -> 1.);
      edge_weight = (fun _ _ cu cv -> if cu = cv then beta else 1.);
    }

let potts_uniqueness_threshold ~q ~delta =
  if q >= delta then 0.
  else float_of_int (delta - q) /. float_of_int delta

let coloring g ~q =
  if q < 1 then invalid_arg "Models.coloring: need q >= 1";
  Spec.create_pairwise g ~q
    {
      Spec.vertex_weight = (fun _ _ -> 1.);
      edge_weight = (fun _ _ cu cv -> if cu = cv then 0. else 1.);
    }

let list_coloring g ~q ~lists =
  if Array.length lists <> Graph.n g then
    invalid_arg "Models.list_coloring: one list per vertex required";
  let allowed =
    Array.map
      (fun l ->
        let a = Array.make q false in
        List.iter
          (fun c ->
            if c < 0 || c >= q then
              invalid_arg "Models.list_coloring: color out of range";
            a.(c) <- true)
          l;
        a)
      lists
  in
  Spec.create_pairwise g ~q
    {
      Spec.vertex_weight = (fun v c -> if allowed.(v).(c) then 1. else 0.);
      edge_weight = (fun _ _ cu cv -> if cu = cv then 0. else 1.);
    }

let coloring_alpha_star =
  (* Positive root of x = e^{1/x}, by fixed-point iteration. *)
  let rec go x i = if i = 0 then x else go (exp (1. /. x)) (i - 1) in
  go 1.8 200
