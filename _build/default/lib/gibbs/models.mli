(** The joint-distribution families from the paper's application section.

    Each constructor returns a pairwise {!Spec.t}; uniqueness thresholds are
    provided where the paper cites them:

    - hardcore (weighted independent sets) with fugacity [λ], uniqueness at
      [λ_c(Δ) = (Δ−1)^{Δ−1}/(Δ−2)^Δ] (Weitz);
    - anti-ferromagnetic 2-spin systems [(β, γ, λ)] and the Ising
      specialization, zero-field uniqueness at [β_c(Δ) = (Δ−2)/Δ];
    - proper [q]-colorings and list colorings, with the triangle-free bound
      [q ≥ α·Δ], [α > α* ≈ 1.7632] where [α* = e^{1/α*}] (Gamarnik–Katz–
      Misra). *)

val hardcore : Ls_graph.Graph.t -> lambda:float -> Spec.t
(** Hardcore model: [σ_v ∈ {0, 1}], weight [λ^{|σ|}] on independent sets;
    value 1 = occupied. *)

val hardcore_uniqueness_threshold : int -> float
(** [λ_c(Δ)]; [infinity] for [Δ ≤ 2]. *)

val two_spin :
  Ls_graph.Graph.t -> beta:float -> gamma:float -> lambda:float -> Spec.t
(** General 2-spin system: edge weight matrix [\[\[β, 1\], \[1, γ\]\]],
    external field [λ] on spin 1.  Anti-ferromagnetic iff [βγ < 1]. *)

val is_antiferromagnetic : beta:float -> gamma:float -> bool

val ising : Ls_graph.Graph.t -> beta:float -> field:float -> Spec.t
(** Ising: [two_spin ~beta ~gamma:beta ~lambda:field]; [β < 1] is
    anti-ferromagnetic. *)

val ising_uniqueness_threshold : int -> float
(** Zero-field anti-ferro Ising uniqueness: [β_c(Δ) = (Δ−2)/Δ]; uniqueness
    holds for [β > β_c].  Returns [0.] for [Δ ≤ 2]. *)

val potts : Ls_graph.Graph.t -> q:int -> beta:float -> Spec.t
(** [q]-state Potts model: edge weight [β] for equal neighboring spins and
    1 otherwise.  [β > 1] is ferromagnetic, [β < 1] anti-ferromagnetic;
    [β = 0] degenerates to proper [q]-colorings. *)

val potts_uniqueness_threshold : q:int -> delta:int -> float
(** Anti-ferromagnetic Potts uniqueness on the [Δ]-regular tree:
    [β_c = (Δ − q)/Δ] (0 when [q ≥ Δ]); uniqueness for [β > β_c]. *)

val coloring : Ls_graph.Graph.t -> q:int -> Spec.t
(** Uniform proper [q]-colorings. *)

val list_coloring : Ls_graph.Graph.t -> q:int -> lists:int list array -> Spec.t
(** Proper colorings where vertex [v] may only use colors in
    [lists.(v) ⊆ {0..q-1}]. *)

val coloring_alpha_star : float
(** [α* ≈ 1.7632], the positive root of [x = e^{1/x}]. *)

val weighted_independent_set :
  Ls_graph.Graph.t -> vertex_lambda:(int -> float) -> Spec.t
(** Non-uniform hardcore: per-vertex fugacities. *)
