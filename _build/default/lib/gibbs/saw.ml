module Graph = Ls_graph.Graph
module Dist = Ls_dist.Dist

let supported spec = Spec.q spec = 2 && Spec.as_pairwise spec <> None

(* Position of [w] in the sorted adjacency array of [u] — the local edge
   order used by the cycle-closing rule. *)
let edge_rank g u w =
  let a = Graph.neighbors g u in
  let rec bin lo hi =
    if lo >= hi then invalid_arg "Saw.edge_rank: not a neighbor"
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = w then mid else if a.(mid) < w then bin (mid + 1) hi else bin lo mid
  in
  bin 0 (Array.length a)

let marginal ~depth spec tau v =
  if not (supported spec) then
    invalid_arg "Saw.marginal: spec must be pairwise with a binary alphabet";
  let pw = Option.get (Spec.as_pairwise spec) in
  let g = Spec.graph spec in
  let n = Graph.n g in
  if depth < 0 then invalid_arg "Saw.marginal: negative depth";
  let vw u c = pw.Spec.vertex_weight u c in
  (* Edge matrix oriented from [u] to [w]: [a u w su sw]. *)
  let a u w su sw =
    if u < w then pw.Spec.edge_weight u w su sw else pw.Spec.edge_weight w u sw su
  in
  if Config.is_assigned tau v then Some (Dist.point 2 tau.(v))
  else begin
    let on_path = Array.make n false in
    let exit_rank = Array.make n (-1) in
    (* [pair u ~parent budget] = unnormalized (p0, p1) at the SAW-tree node
       for vertex [u], reached from [parent] (-1 at the root).  The walk
       may not reverse through its entry edge, so [parent] is skipped; in
       a simple graph no other edge leads back to it. *)
    let rec pair u ~parent budget =
      let p0 = ref (vw u 0) and p1 = ref (vw u 1) in
      if budget > 0 then begin
        on_path.(u) <- true;
        Array.iter
          (fun w ->
            if w <> parent && (!p0 > 0. || !p1 > 0.) then begin
              let m0, m1 =
                if Config.is_assigned tau w then
                  (* Conditioned leaf: a sigma_u-dependent constant. *)
                  let c = tau.(w) in
                  (a u w 0 c, a u w 1 c)
                else if on_path.(w) then begin
                  (* Cycle closure: a leaf pinned by Weitz's edge-order
                     rule at the revisited vertex [w]. *)
                  let closing = edge_rank g w u in
                  let pinned = if closing > exit_rank.(w) then 1 else 0 in
                  (a u w 0 pinned, a u w 1 pinned)
                end
                else begin
                  exit_rank.(u) <- edge_rank g u w;
                  let q0, q1 = pair w ~parent:u (budget - 1) in
                  ( (a u w 0 0 *. q0) +. (a u w 0 1 *. q1),
                    (a u w 1 0 *. q0) +. (a u w 1 1 *. q1) )
                end
              in
              p0 := !p0 *. m0;
              p1 := !p1 *. m1;
              (* Rescale to dodge under/overflow on deep recursions. *)
              let peak = Float.max !p0 !p1 in
              if peak > 0. && (peak > 1e150 || peak < 1e-150) then begin
                p0 := !p0 /. peak;
                p1 := !p1 /. peak
              end
            end)
          (Graph.neighbors g u);
        on_path.(u) <- false;
        exit_rank.(u) <- -1
      end;
      (* With the budget exhausted, [u] is a free leaf: vertex weight only
         (any fixed truncation works; the error is the SSM rate at the
         truncation distance). *)
      (!p0, !p1)
    in
    let p0, p1 = pair v ~parent:(-1) depth in
    if p0 <= 0. && p1 <= 0. then None else Some (Dist.of_weights [| p0; p1 |])
  end
