(** Weitz's self-avoiding-walk (SAW) tree algorithm for 2-spin systems.

    This is the machinery behind the strong-spatial-mixing results the
    paper consumes (Weitz for the hardcore model; Li–Lu–Yin for general
    anti-ferromagnetic 2-spin): the marginal of [v] in [G] equals the root
    marginal of the tree [T_SAW(G, v)] of self-avoiding walks from [v],
    where a walk closing a cycle at an already-visited vertex [u] becomes a
    {e pinned leaf} — occupied if the closing edge exceeds, in [u]'s local
    edge order, the edge through which the walk left [u], unoccupied
    otherwise.  Truncating the tree at depth [t] leaves an error bounded by
    the SSM rate at distance [t].

    This module implements the recursion for any pairwise spec with
    [q = 2] (hardcore, Ising, general 2-spin with arbitrary per-edge
    matrices), handling instance pinnings, truncation, and zero-weight
    edges by carrying marginals as unnormalized [(p₀, p₁)] pairs (no
    divisions by zero at hard constraints).  With [depth ≥ n] the result
    is the {e exact} marginal — property-tested against the enumeration
    engine, which validates the cycle-closing rule itself.

    Cost is the number of self-avoiding walks of length [≤ depth], i.e.
    [O(Δ^depth)] — an alternative inference engine whose work is bounded
    by degree and radius rather than by ball volume. *)

val supported : Spec.t -> bool
(** True for pairwise specs over a binary alphabet. *)

val marginal : depth:int -> Spec.t -> Config.t -> int -> Ls_dist.Dist.t option
(** Root marginal of the depth-truncated SAW tree.  Exact when
    [depth ≥ n]; [None] when every spin has weight 0 (infeasible
    pinning at the root's view).  Raises [Invalid_argument] when the spec
    is not a binary pairwise spec.

    To use it as a LOCAL inference oracle see
    [Ls_core.Inference.saw_oracle] (a walk of length [depth] sees exactly
    [B_depth(v)], so the oracle radius is [depth]). *)
