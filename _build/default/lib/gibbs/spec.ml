module Graph = Ls_graph.Graph
module Dist = Ls_dist.Dist

type factor = { scope : int array; table : int array -> float }

type pairwise = {
  vertex_weight : int -> int -> float;
  edge_weight : int -> int -> int -> int -> float;
}

type t = {
  graph : Graph.t;
  q : int;
  factors : factor array;
  factors_of_vertex : int array array;
  locality : int;
  pairwise : pairwise option;
}

let scope_diameter g scope =
  if Array.length scope <= 1 then 0
  else begin
    let worst = ref 0 in
    Array.iter
      (fun u ->
        let d = Graph.bfs_distances g u in
        Array.iter
          (fun v ->
            if d.(v) = max_int then
              invalid_arg "Spec.create: scope spans disconnected vertices";
            worst := max !worst d.(v))
          scope)
      scope;
    !worst
  end

let build graph ~q ~factors ~pairwise =
  if q < 1 then invalid_arg "Spec: alphabet must be non-empty";
  let factors = Array.of_list factors in
  let n = Graph.n graph in
  Array.iter
    (fun f ->
      Array.iteri
        (fun i v ->
          if v < 0 || v >= n then invalid_arg "Spec: scope vertex out of range";
          if i > 0 && f.scope.(i - 1) >= v then
            invalid_arg "Spec: scope must be sorted and distinct")
        f.scope;
      if Array.length f.scope = 0 then invalid_arg "Spec: empty scope")
    factors;
  let per_vertex = Array.make n [] in
  Array.iteri
    (fun i f ->
      Array.iter (fun v -> per_vertex.(v) <- i :: per_vertex.(v)) f.scope)
    factors;
  let factors_of_vertex = Array.map (fun l -> Array.of_list (List.rev l)) per_vertex in
  let locality =
    Array.fold_left (fun acc f -> max acc (scope_diameter graph f.scope)) 0 factors
  in
  { graph; q; factors; factors_of_vertex; locality; pairwise }

let create graph ~q ~factors = build graph ~q ~factors ~pairwise:None

let create_pairwise graph ~q pw =
  let vertex_factor v =
    { scope = [| v |]; table = (fun vals -> pw.vertex_weight v vals.(0)) }
  in
  let edge_factor u v =
    (* scope sorted, so vals.(0) belongs to the smaller endpoint. *)
    { scope = [| u; v |]; table = (fun vals -> pw.edge_weight u v vals.(0) vals.(1)) }
  in
  let factors = ref [] in
  for v = Graph.n graph - 1 downto 0 do
    factors := vertex_factor v :: !factors
  done;
  let edge_factors = ref [] in
  Graph.iter_edges graph (fun u v -> edge_factors := edge_factor u v :: !edge_factors);
  build graph ~q ~factors:(!factors @ !edge_factors) ~pairwise:(Some pw)

let graph s = s.graph
let q s = s.q
let locality s = s.locality
let factors s = s.factors
let factors_of_vertex s v = s.factors_of_vertex.(v)
let as_pairwise s = s.pairwise

let factor_value s i tau =
  let f = s.factors.(i) in
  let k = Array.length f.scope in
  let vals = Array.make k 0 in
  let rec fill j =
    if j = k then Some (f.table vals)
    else
      let c = tau.(f.scope.(j)) in
      if c = Config.unassigned then None
      else begin
        vals.(j) <- c;
        fill (j + 1)
      end
  in
  fill 0

let weight s tau =
  if not (Config.is_total tau) then
    invalid_arg "Spec.weight: configuration not total";
  let w = ref 1. in
  Array.iteri
    (fun i _ ->
      match factor_value s i tau with
      | Some x -> w := !w *. x
      | None -> assert false)
    s.factors;
  !w

let weight_in s ~member tau =
  let w = ref 1. in
  Array.iteri
    (fun i f ->
      if Array.for_all member f.scope then
        match factor_value s i tau with
        | Some x -> w := !w *. x
        | None -> invalid_arg "Spec.weight_in: unassigned vertex inside the set")
    s.factors;
  !w

let locally_feasible s tau =
  let ok = ref true in
  Array.iteri
    (fun i _ ->
      if !ok then
        match factor_value s i tau with
        | Some x -> if x <= 0. then ok := false
        | None -> ())
    s.factors;
  !ok

let conditional s tau v =
  let scratch = Array.copy tau in
  let weights =
    Array.init s.q (fun c ->
        scratch.(v) <- c;
        let w = ref 1. in
        Array.iter
          (fun i ->
            match factor_value s i scratch with
            | Some x -> w := !w *. x
            | None ->
                invalid_arg
                  "Spec.conditional: a scope containing v has another \
                   unassigned vertex")
          s.factors_of_vertex.(v);
        !w)
  in
  if Array.for_all (fun w -> w <= 0.) weights then None
  else Some (Dist.of_weights weights)
