(** Gibbs distributions [(G, Σ, F)] — Definition 2.3 of the paper.

    A specification is a graph, an alphabet size [q], and a collection of
    constraints (factors) [(f, S)] with scope [S ⊆ V] and non-negative table
    [f : Σ^S → R≥0].  The weight of a full configuration is
    [w(σ) = Π_{(f,S)} f(σ_S)], and the Gibbs distribution is [μ(σ) =
    w(σ)/Z].  A spec is {e local} (Definition 2.4) when every scope has
    bounded diameter in [G]; the constructor computes that locality [ℓ].

    Pairwise specs — one factor per vertex and one per edge — cover every
    model in the paper's application section and unlock the exact forest
    dynamic programming of {!Forest_dp}. *)

type factor = {
  scope : int array;  (** Sorted distinct vertices. *)
  table : int array -> float;
      (** Weight of an assignment to the scope, values listed in scope
          order.  Must be non-negative. *)
}

type pairwise = {
  vertex_weight : int -> int -> float;  (** [vertex_weight v c]. *)
  edge_weight : int -> int -> int -> int -> float;
      (** [edge_weight u v cu cv] with [u < v]. *)
}

type t

val create : Ls_graph.Graph.t -> q:int -> factors:factor list -> t
(** General constructor; computes locality as the max scope diameter. *)

val create_pairwise : Ls_graph.Graph.t -> q:int -> pairwise -> t
(** Pairwise constructor: materializes one vertex factor per vertex and one
    edge factor per edge; locality is 1. *)

val graph : t -> Ls_graph.Graph.t
val q : t -> int
val locality : t -> int
(** [ℓ = max_{(f,S)} diam_G(S)] (0 when all scopes are singletons). *)

val factors : t -> factor array
val factors_of_vertex : t -> int -> int array
(** Indices into {!factors} of the constraints whose scope contains [v]. *)

val as_pairwise : t -> pairwise option
(** The pairwise structure when the spec was built by
    {!create_pairwise}. *)

val factor_value : t -> int -> Config.t -> float option
(** [factor_value spec i tau] evaluates factor [i] when its scope is fully
    assigned under [tau]; [None] otherwise. *)

val weight : t -> Config.t -> float
(** [w(σ)] of a total configuration (eq. 1). *)

val weight_in : t -> member:(int -> bool) -> Config.t -> float
(** [w_B(σ) = Π_{(f,S) : S ⊆ B} f(σ_S)] — the ball-restricted weight used
    throughout §4–5.  Every vertex of [B] must be assigned. *)

val locally_feasible : t -> Config.t -> bool
(** Definition 2.5: no constraint with fully-assigned scope evaluates
    to 0. *)

val conditional : t -> Config.t -> int -> Ls_dist.Dist.t option
(** Heat-bath (Glauber) conditional of [v] given [tau] on the rest:
    [μ_v^{τ}(c) ∝ Π_{(f,S) ∋ v} f]; requires every other vertex of every
    scope containing [v] to be assigned.  [None] when every value has
    weight 0 (i.e. [tau] off-support). *)
