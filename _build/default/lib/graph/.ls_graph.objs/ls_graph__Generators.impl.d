lib/graph/generators.ml: Array Graph Hashtbl Int List Ls_rng Set
