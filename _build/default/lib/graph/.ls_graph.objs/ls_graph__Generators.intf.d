lib/graph/generators.mli: Graph Ls_rng
