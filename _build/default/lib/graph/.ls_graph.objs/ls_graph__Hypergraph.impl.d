lib/graph/hypergraph.ml: Array Graph List Ls_rng
