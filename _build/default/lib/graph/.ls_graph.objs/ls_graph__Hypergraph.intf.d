lib/graph/hypergraph.mli: Graph Ls_rng
