lib/graph/line_graph.ml: Array Graph Hashtbl
