lib/graph/line_graph.mli: Graph
