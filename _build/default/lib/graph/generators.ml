module Rng = Ls_rng.Rng

let empty n = Graph.create ~n ~edges:[]

let path n =
  let edges = List.init (max 0 (n - 1)) (fun i -> (i, i + 1)) in
  Graph.create ~n ~edges

let cycle n =
  if n < 3 then invalid_arg "Generators.cycle: need n >= 3";
  let edges = List.init n (fun i -> (i, (i + 1) mod n)) in
  Graph.create ~n ~edges

let complete n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.create ~n ~edges:!edges

let star n =
  let edges = List.init (max 0 (n - 1)) (fun i -> (0, i + 1)) in
  Graph.create ~n ~edges

let complete_bipartite a b =
  let edges = ref [] in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.create ~n:(a + b) ~edges:!edges

let grid rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Generators.grid: empty side";
  let id i j = (i * cols) + j in
  let edges = ref [] in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if j + 1 < cols then edges := (id i j, id i (j + 1)) :: !edges;
      if i + 1 < rows then edges := (id i j, id (i + 1) j) :: !edges
    done
  done;
  Graph.create ~n:(rows * cols) ~edges:!edges

let torus rows cols =
  if rows < 3 || cols < 3 then invalid_arg "Generators.torus: sides must be >= 3";
  let id i j = (i * cols) + j in
  let edges = ref [] in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      edges := (id i j, id i ((j + 1) mod cols)) :: !edges;
      edges := (id i j, id ((i + 1) mod rows) j) :: !edges
    done
  done;
  Graph.create ~n:(rows * cols) ~edges:!edges

let hypercube d =
  if d < 0 then invalid_arg "Generators.hypercube: negative dimension";
  let n = 1 lsl d in
  let edges = ref [] in
  for v = 0 to n - 1 do
    for bit = 0 to d - 1 do
      let u = v lxor (1 lsl bit) in
      if u > v then edges := (v, u) :: !edges
    done
  done;
  Graph.create ~n ~edges:!edges

let complete_tree ~branching ~depth =
  if branching < 1 then invalid_arg "Generators.complete_tree: branching >= 1";
  if depth < 0 then invalid_arg "Generators.complete_tree: negative depth";
  (* BFS numbering: node count per level is branching^level. *)
  let edges = ref [] in
  let next = ref 1 in
  let frontier = ref [ 0 ] in
  for _level = 1 to depth do
    let new_frontier = ref [] in
    List.iter
      (fun parent ->
        for _child = 1 to branching do
          let c = !next in
          incr next;
          edges := (parent, c) :: !edges;
          new_frontier := c :: !new_frontier
        done)
      !frontier;
    frontier := List.rev !new_frontier
  done;
  Graph.create ~n:!next ~edges:!edges

let erdos_renyi rng ~n ~p =
  if p < 0. || p > 1. then invalid_arg "Generators.erdos_renyi: p out of [0,1]";
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.bernoulli rng p then edges := (u, v) :: !edges
    done
  done;
  Graph.create ~n ~edges:!edges

let random_tree rng n =
  if n < 1 then invalid_arg "Generators.random_tree: need n >= 1";
  if n <= 2 then path n
  else begin
    (* Decode a uniform Prüfer sequence of length n-2. *)
    let prufer = Array.init (n - 2) (fun _ -> Rng.int rng n) in
    let deg = Array.make n 1 in
    Array.iter (fun v -> deg.(v) <- deg.(v) + 1) prufer;
    let module Iset = Set.Make (Int) in
    let leaves = ref Iset.empty in
    for v = 0 to n - 1 do
      if deg.(v) = 1 then leaves := Iset.add v !leaves
    done;
    let edges = ref [] in
    Array.iter
      (fun v ->
        let leaf = Iset.min_elt !leaves in
        leaves := Iset.remove leaf !leaves;
        edges := (leaf, v) :: !edges;
        deg.(v) <- deg.(v) - 1;
        if deg.(v) = 1 then leaves := Iset.add v !leaves)
      prufer;
    (match Iset.elements !leaves with
    | [ a; b ] -> edges := (a, b) :: !edges
    | _ -> assert false);
    Graph.create ~n ~edges:!edges
  end

let random_regular rng ~n ~d =
  if d < 0 || d >= n then invalid_arg "Generators.random_regular: need 0 <= d < n";
  if n * d mod 2 <> 0 then
    invalid_arg "Generators.random_regular: n*d must be even";
  if d = 0 then empty n
  else begin
    (* Configuration model: pair up n*d stubs uniformly; restart whenever a
       self-loop or duplicate edge appears.  For the small d used in the
       experiments the expected number of restarts is O(e^{d^2/4}). *)
    let stubs = Array.init (n * d) (fun i -> i / d) in
    let rec attempt tries =
      if tries > 10_000 then
        failwith "Generators.random_regular: too many restarts";
      Rng.shuffle rng stubs;
      let seen = Hashtbl.create (n * d) in
      let ok = ref true in
      let edges = ref [] in
      let i = ref 0 in
      while !ok && !i < n * d do
        let u = stubs.(!i) and v = stubs.(!i + 1) in
        let key = if u < v then (u, v) else (v, u) in
        if u = v || Hashtbl.mem seen key then ok := false
        else begin
          Hashtbl.replace seen key ();
          edges := key :: !edges
        end;
        i := !i + 2
      done;
      if !ok then Graph.create ~n ~edges:!edges else attempt (tries + 1)
    in
    attempt 0
  end

let random_bipartite_regular rng ~n ~d =
  if n < 1 then invalid_arg "Generators.random_bipartite_regular: n >= 1";
  if d < 0 || d > n then
    invalid_arg "Generators.random_bipartite_regular: need 0 <= d <= n";
  let rec attempt tries =
    if tries > 10_000 then
      failwith "Generators.random_bipartite_regular: too many restarts";
    let seen = Hashtbl.create (n * d) in
    let edges = ref [] in
    let ok = ref true in
    for _round = 1 to d do
      let pi = Rng.permutation rng n in
      Array.iteri
        (fun left right_off ->
          let right = n + right_off in
          if Hashtbl.mem seen (left, right) then ok := false
          else begin
            Hashtbl.replace seen (left, right) ();
            edges := (left, right) :: !edges
          end)
        pi
    done;
    if !ok then Graph.create ~n:(2 * n) ~edges:!edges else attempt (tries + 1)
  in
  attempt 0
