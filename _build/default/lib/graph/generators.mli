(** Graph families used as workloads by the experiments.

    Deterministic families (paths, cycles, grids, tori, trees, hypercubes)
    and random families (Erdős–Rényi, random regular via the configuration
    model, uniform random trees via Prüfer sequences).  Random generators
    take an explicit {!Ls_rng.Rng.t} so every experiment is reproducible. *)

val empty : int -> Graph.t
(** [n] isolated vertices. *)

val path : int -> Graph.t
(** Path [0 - 1 - ... - (n-1)]. *)

val cycle : int -> Graph.t
(** Cycle on [n ≥ 3] vertices. *)

val complete : int -> Graph.t

val star : int -> Graph.t
(** Vertex 0 joined to [1..n-1]. *)

val complete_bipartite : int -> int -> Graph.t
(** [K_{a,b}]: parts [0..a-1] and [a..a+b-1]. *)

val grid : int -> int -> Graph.t
(** [rows × cols] grid; vertex [(i,j)] has index [i·cols + j]. *)

val torus : int -> int -> Graph.t
(** Grid with wrap-around edges; both sides must be [≥ 3] to stay simple. *)

val hypercube : int -> Graph.t
(** [d]-dimensional hypercube on [2^d] vertices. *)

val complete_tree : branching:int -> depth:int -> Graph.t
(** Rooted complete [branching]-ary tree (root = 0, BFS numbering); every
    internal vertex has exactly [branching] children. *)

val erdos_renyi : Ls_rng.Rng.t -> n:int -> p:float -> Graph.t
(** G(n, p). *)

val random_tree : Ls_rng.Rng.t -> int -> Graph.t
(** Uniform labelled tree via a random Prüfer sequence ([n ≥ 1]). *)

val random_regular : Ls_rng.Rng.t -> n:int -> d:int -> Graph.t
(** Random [d]-regular simple graph by the configuration model with
    restart-on-collision; requires [n·d] even and [d < n]. *)

val random_bipartite_regular : Ls_rng.Rng.t -> n:int -> d:int -> Graph.t
(** Bipartite graph on parts of size [n] where both sides are [d]-regular
    (union of [d] random perfect matchings; multi-edges retried). *)
