type t = { n : int; adj : int array array; m : int }

module Edge_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let normalize_edge u v = if u < v then (u, v) else (v, u)

let create ~n ~edges =
  if n < 0 then invalid_arg "Graph.create: negative vertex count";
  let set =
    List.fold_left
      (fun acc (u, v) ->
        if u < 0 || u >= n || v < 0 || v >= n then
          invalid_arg "Graph.create: endpoint out of range";
        if u = v then invalid_arg "Graph.create: self-loop";
        Edge_set.add (normalize_edge u v) acc)
      Edge_set.empty edges
  in
  let deg = Array.make n 0 in
  Edge_set.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    set;
  let adj = Array.init n (fun v -> Array.make deg.(v) 0) in
  let fill = Array.make n 0 in
  Edge_set.iter
    (fun (u, v) ->
      adj.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    set;
  Array.iter (fun a -> Array.sort compare a) adj;
  { n; adj; m = Edge_set.cardinal set }

let n g = g.n

let m g = g.m

let neighbors g v = g.adj.(v)

let degree g v = Array.length g.adj.(v)

let max_degree g =
  Array.fold_left (fun acc a -> max acc (Array.length a)) 0 g.adj

let mem_edge g u v =
  let a = g.adj.(u) in
  let rec bin lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = v then true
      else if a.(mid) < v then bin (mid + 1) hi
      else bin lo mid
  in
  bin 0 (Array.length a)

let iter_edges g f =
  for u = 0 to g.n - 1 do
    Array.iter (fun v -> if u < v then f u v) g.adj.(u)
  done

let edges g =
  let acc = ref [] in
  iter_edges g (fun u v -> acc := (u, v) :: !acc);
  List.rev !acc

let distances_from_set g sources =
  let dist = Array.make g.n max_int in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if dist.(s) = max_int then begin
        dist.(s) <- 0;
        Queue.add s queue
      end)
    sources;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      g.adj.(u)
  done;
  dist

let bfs_distances g v = distances_from_set g [ v ]

let dist g u v = (bfs_distances g u).(v)

let ball g v r =
  let d = bfs_distances g v in
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    if d.(u) <= r then acc := u :: !acc
  done;
  Array.of_list !acc

let sphere g v r =
  let d = bfs_distances g v in
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    if d.(u) = r then acc := u :: !acc
  done;
  Array.of_list !acc

let eccentricity g v =
  let d = bfs_distances g v in
  Array.fold_left (fun acc x -> if x = max_int then acc else max acc x) 0 d

let connected g =
  if g.n = 0 then true
  else
    let d = bfs_distances g 0 in
    Array.for_all (fun x -> x <> max_int) d

let diameter g =
  if g.n <= 1 then 0
  else if not (connected g) then max_int
  else
    let best = ref 0 in
    for v = 0 to g.n - 1 do
      best := max !best (eccentricity g v)
    done;
    !best

let components g =
  let comp = Array.make g.n (-1) in
  let next = ref 0 in
  for v = 0 to g.n - 1 do
    if comp.(v) = -1 then begin
      let id = !next in
      incr next;
      let queue = Queue.create () in
      comp.(v) <- id;
      Queue.add v queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Array.iter
          (fun w ->
            if comp.(w) = -1 then begin
              comp.(w) <- id;
              Queue.add w queue
            end)
          g.adj.(u)
      done
    end
  done;
  comp

let induced g vs =
  let vs = Array.copy vs in
  Array.sort compare vs;
  let k = Array.length vs in
  for i = 1 to k - 1 do
    if vs.(i) = vs.(i - 1) then invalid_arg "Graph.induced: duplicate vertex"
  done;
  let index = Hashtbl.create (2 * k) in
  Array.iteri (fun i v -> Hashtbl.replace index v i) vs;
  let edges = ref [] in
  Array.iteri
    (fun i v ->
      Array.iter
        (fun u ->
          if u > v then
            match Hashtbl.find_opt index u with
            | Some j -> edges := (i, j) :: !edges
            | None -> ())
        g.adj.(v))
    vs;
  (create ~n:k ~edges:!edges, vs)

let power g k =
  if k < 1 then invalid_arg "Graph.power: exponent must be >= 1";
  let edges = ref [] in
  for v = 0 to g.n - 1 do
    let d = bfs_distances g v in
    for u = v + 1 to g.n - 1 do
      if d.(u) <= k then edges := (v, u) :: !edges
    done
  done;
  create ~n:g.n ~edges:!edges

let is_triangle_free g =
  try
    iter_edges g (fun u v ->
        Array.iter (fun w -> if w <> u && mem_edge g u w then raise Exit) g.adj.(v));
    true
  with Exit -> false

let is_forest g =
  (* A graph is a forest iff every component has |E| = |V| - 1, i.e.
     m = n - #components. *)
  let comp = components g in
  let k = Array.fold_left (fun acc c -> max acc (c + 1)) 0 comp in
  g.m = g.n - k

let complement g =
  let edges = ref [] in
  for u = 0 to g.n - 1 do
    for v = u + 1 to g.n - 1 do
      if not (mem_edge g u v) then edges := (u, v) :: !edges
    done
  done;
  create ~n:g.n ~edges:!edges

let union g1 g2 =
  if g1.n <> g2.n then invalid_arg "Graph.union: vertex count mismatch";
  create ~n:g1.n ~edges:(edges g1 @ edges g2)

let pp fmt g =
  Format.fprintf fmt "graph(n=%d, m=%d)" g.n g.m
