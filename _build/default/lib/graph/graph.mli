(** Simple undirected graphs.

    Vertices are [0 .. n-1].  The representation is adjacency arrays with
    sorted neighbor lists, built once from an edge list; all algorithms in
    the repository treat graphs as immutable.  This module provides the
    graph-theoretic vocabulary of the paper: distances [dist_G(u,v)], balls
    [B_r(v)], power graphs [G^k] (used by the network decomposition of
    Lemma 3.1), induced subgraphs (used by ball enumeration), and the
    structural predicates the applications need (max degree, triangle-
    freeness, forest test). *)

type t

val create : n:int -> edges:(int * int) list -> t
(** Build a simple graph: self-loops rejected, duplicate edges collapsed,
    endpoints must lie in [0..n-1]. *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of edges. *)

val edges : t -> (int * int) list
(** Edge list with [u < v], sorted. *)

val neighbors : t -> int -> int array
(** Sorted neighbor array.  Do not mutate. *)

val degree : t -> int -> int

val max_degree : t -> int

val mem_edge : t -> int -> int -> bool
(** Adjacency test in O(log degree). *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** Iterate each undirected edge once, as [u < v]. *)

val bfs_distances : t -> int -> int array
(** [bfs_distances g v] gives [dist_G(v, u)] for all [u]; unreachable
    vertices get [max_int]. *)

val distances_from_set : t -> int list -> int array
(** Multi-source BFS: [dist_G(u, S)] for every [u]. *)

val dist : t -> int -> int -> int
(** Pairwise distance ([max_int] when disconnected). *)

val ball : t -> int -> int -> int array
(** [ball g v r] is [B_r(v) = { u | dist(u,v) ≤ r }], sorted. *)

val sphere : t -> int -> int -> int array
(** [sphere g v r = { u | dist(u,v) = r }], sorted. *)

val eccentricity : t -> int -> int
(** Max distance from a vertex to any reachable vertex. *)

val diameter : t -> int
(** Max eccentricity over all vertices ([0] for [n ≤ 1]); [max_int] if the
    graph is disconnected. *)

val connected : t -> bool

val components : t -> int array
(** Component id per vertex, ids are [0..k-1] in order of discovery. *)

val induced : t -> int array -> t * int array
(** [induced g vs] is the subgraph induced by the vertex set [vs]
    (duplicates rejected) together with the map from new indices to
    original vertex ids (i.e. [vs] itself, sorted). *)

val power : t -> int -> t
(** [power g k] is [G^k]: [u ~ v] iff [1 ≤ dist_G(u,v) ≤ k]. *)

val is_triangle_free : t -> bool

val is_forest : t -> bool

val complement : t -> t

val union : t -> t -> t
(** Union of edge sets; both graphs must have the same vertex count. *)

val pp : Format.formatter -> t -> unit
