module Rng = Ls_rng.Rng

type t = { n : int; hyperedges : int array array }

let create ~n ~hyperedges =
  let hyperedges =
    Array.of_list
      (List.map
         (fun he ->
           if he = [] then invalid_arg "Hypergraph.create: empty hyperedge";
           let a = Array.of_list he in
           Array.sort compare a;
           Array.iteri
             (fun i v ->
               if v < 0 || v >= n then
                 invalid_arg "Hypergraph.create: vertex out of range";
               if i > 0 && a.(i - 1) = v then
                 invalid_arg "Hypergraph.create: duplicate vertex in hyperedge")
             a;
           a)
         hyperedges)
  in
  { n; hyperedges }

let n h = h.n

let num_hyperedges h = Array.length h.hyperedges

let hyperedge h i = h.hyperedges.(i)

let rank h =
  Array.fold_left (fun acc e -> max acc (Array.length e)) 0 h.hyperedges

let vertex_degree h v =
  Array.fold_left
    (fun acc e -> if Array.exists (( = ) v) e then acc + 1 else acc)
    0 h.hyperedges

let max_vertex_degree h =
  let deg = Array.make h.n 0 in
  Array.iter (fun e -> Array.iter (fun v -> deg.(v) <- deg.(v) + 1) e) h.hyperedges;
  Array.fold_left max 0 deg

let intersection_graph h =
  let k = Array.length h.hyperedges in
  (* Bucket hyperedges by vertex, then join all pairs within a bucket. *)
  let buckets = Array.make h.n [] in
  Array.iteri
    (fun i e -> Array.iter (fun v -> buckets.(v) <- i :: buckets.(v)) e)
    h.hyperedges;
  let edges = ref [] in
  Array.iter
    (fun bucket ->
      let a = Array.of_list bucket in
      let d = Array.length a in
      for i = 0 to d - 1 do
        for j = i + 1 to d - 1 do
          edges := (a.(i), a.(j)) :: !edges
        done
      done)
    buckets;
  Graph.create ~n:k ~edges:!edges

let random_linear rng ~n ~k ~rank =
  if rank > n then invalid_arg "Hypergraph.random_linear: rank > n";
  if rank < 1 then invalid_arg "Hypergraph.random_linear: rank < 1";
  let chosen = ref [] in
  let shares_two e1 e2 =
    let common = ref 0 in
    Array.iter (fun v -> if Array.exists (( = ) v) e2 then incr common) e1;
    !common >= 2
  in
  let sample_subset () =
    let pool = Rng.permutation rng n in
    Array.sub pool 0 rank
  in
  let tries = ref 0 in
  while List.length !chosen < k do
    incr tries;
    if !tries > 100_000 then
      failwith "Hypergraph.random_linear: could not place hyperedges";
    let e = sample_subset () in
    Array.sort compare e;
    let clash =
      List.exists (fun e' -> e = e' || shares_two e e') !chosen
    in
    if not clash then chosen := e :: !chosen
  done;
  { n; hyperedges = Array.of_list (List.rev !chosen) }
