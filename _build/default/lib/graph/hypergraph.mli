(** Hypergraphs and the intersection-graph duality for hypergraph matchings.

    A matching of a hypergraph [H] is a set of pairwise-disjoint hyperedges,
    i.e. an independent set of the {e intersection graph} whose vertices are
    the hyperedges of [H] and whose edges join intersecting hyperedges.  The
    weighted-hypergraph-matching application of the paper (§5) is the
    hardcore model on that intersection graph; the duality preserves
    distances up to constants.  The rank [r] of [H] (max hyperedge size) and
    the max vertex degree [Δ] control the uniqueness threshold
    [λ_c(r, Δ)]. *)

type t

val create : n:int -> hyperedges:int list list -> t
(** [n] vertices; each hyperedge is a non-empty list of distinct vertices
    in [0..n-1]. *)

val n : t -> int
(** Number of vertices. *)

val num_hyperedges : t -> int

val hyperedge : t -> int -> int array
(** Vertices of hyperedge [i], sorted. *)

val rank : t -> int
(** Max hyperedge size (0 when there are no hyperedges). *)

val vertex_degree : t -> int -> int
(** Number of hyperedges containing a vertex. *)

val max_vertex_degree : t -> int

val intersection_graph : t -> Graph.t
(** Vertices = hyperedges of [t]; edges join hyperedges sharing a vertex. *)

val random_linear : Ls_rng.Rng.t -> n:int -> k:int -> rank:int -> t
(** [random_linear rng ~n ~k ~rank] samples [k] hyperedges of size [rank],
    each a uniform vertex subset, retrying any hyperedge that shares [≥ 2]
    vertices with an existing one (so the result is a {e linear}
    hypergraph).  Requires [rank ≤ n]. *)
