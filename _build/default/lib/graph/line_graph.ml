type t = {
  line : Graph.t;
  base : Graph.t;
  edge_of_vertex : (int * int) array;
}

let make base =
  let edge_of_vertex = Array.of_list (Graph.edges base) in
  let k = Array.length edge_of_vertex in
  let index = Hashtbl.create (2 * k) in
  Array.iteri (fun i e -> Hashtbl.replace index e i) edge_of_vertex;
  let line_edges = ref [] in
  (* Two edges of the base are adjacent in L(G) iff they share an endpoint:
     enumerate, per base vertex, all pairs of incident edges. *)
  for v = 0 to Graph.n base - 1 do
    let inc =
      Array.map
        (fun u -> Hashtbl.find index (if v < u then (v, u) else (u, v)))
        (Graph.neighbors base v)
    in
    let d = Array.length inc in
    for i = 0 to d - 1 do
      for j = i + 1 to d - 1 do
        line_edges := (inc.(i), inc.(j)) :: !line_edges
      done
    done
  done;
  { line = Graph.create ~n:k ~edges:!line_edges; base; edge_of_vertex }

let vertex_of_edge lg u v =
  let key = if u < v then (u, v) else (v, u) in
  let k = Array.length lg.edge_of_vertex in
  let rec search i =
    if i >= k then raise Not_found
    else if lg.edge_of_vertex.(i) = key then i
    else search (i + 1)
  in
  search 0
