(** Line graphs, the duality behind matching distributions.

    A matching of [G] is exactly an independent set of the line graph
    [L(G)], so the monomer–dimer model on [G] equals the hardcore model on
    [L(G)].  The paper (§5, applications) uses this duality and notes that it
    preserves distances up to a constant factor; [dist_{L(G)}(e, f)] differs
    from the [G]-distance between the edges [e, f] by at most 1.  This module
    builds [L(G)] together with the edge↔vertex correspondence. *)

type t = {
  line : Graph.t;  (** The line graph: one vertex per edge of the base. *)
  base : Graph.t;  (** The original graph. *)
  edge_of_vertex : (int * int) array;
      (** [edge_of_vertex.(i)] is the base edge (u, v), u < v, represented
          by line-graph vertex [i]. *)
}

val make : Graph.t -> t

val vertex_of_edge : t -> int -> int -> int
(** [vertex_of_edge lg u v] is the line-graph vertex for base edge
    [{u,v}]; raises [Not_found] if absent. *)
