lib/local/decomposition.ml: Array Hashtbl List Logs Ls_graph Ls_rng Option
