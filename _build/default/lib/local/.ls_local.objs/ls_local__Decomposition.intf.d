lib/local/decomposition.mli: Ls_graph Ls_rng
