lib/local/network.ml: Array Hashtbl Int List Ls_graph Ls_rng Map Queue
