lib/local/network.mli: Hashtbl Ls_graph Ls_rng
