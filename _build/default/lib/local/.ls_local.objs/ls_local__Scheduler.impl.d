lib/local/scheduler.ml: Array Decomposition List Logs Ls_graph
