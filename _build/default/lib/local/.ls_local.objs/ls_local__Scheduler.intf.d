lib/local/scheduler.mli: Ls_graph Ls_rng
