lib/local/slocal.ml: Array List Ls_graph Ls_rng Printf
