lib/local/slocal.mli: Ls_graph Ls_rng
