module Graph = Ls_graph.Graph
module Rng = Ls_rng.Rng

let src = Logs.Src.create "locsample.decomposition" ~doc:"Linial-Saks network decomposition"

module Log = (val Logs.src_log src : Logs.LOG)

type cluster = { center : int; color : int; members : int array; radius : int }

type t = {
  clusters : cluster array;
  cluster_of : int array;
  color_of : int array;
  num_colors : int;
  failed : bool array;
  radius_cap : int;
  phase_cap : int;
}

let log2_ceil n =
  let rec go acc p = if p >= n then acc else go (acc + 1) (2 * p) in
  go 0 1

let default_radius_cap n = (2 * log2_ceil (max 2 n)) + 2
let default_phase_cap n = (4 * log2_ceil (max 2 n)) + 4

let linial_saks ?radius_cap ?phase_cap g rng =
  let n = Graph.n g in
  let radius_cap = Option.value radius_cap ~default:(default_radius_cap n) in
  let phase_cap = Option.value phase_cap ~default:(default_phase_cap n) in
  let cluster_of = Array.make n (-1) in
  let color_of = Array.make n (-1) in
  let clusters = ref [] in
  let num_clusters = ref 0 in
  let unclustered v = cluster_of.(v) = -1 in
  let phases_used = ref 0 in
  let phase = ref 0 in
  while !phase < phase_cap && Array.exists (fun c -> c = -1) cluster_of do
    incr phases_used;
    (* Draw truncated geometric radii for the still-unclustered vertices. *)
    let radii = Array.make n (-1) in
    for v = 0 to n - 1 do
      if unclustered v then radii.(v) <- min (Rng.geometric rng 0.5) radius_cap
    done;
    (* Candidate election: per vertex, the best (r_u, u) with d(u,v) <= r_u
       among unclustered u.  BFS from each candidate center u up to r_u. *)
    let best_key = Array.make n (-1, -1) in
    let best_dist = Array.make n max_int in
    for u = 0 to n - 1 do
      if unclustered u then begin
        let key = (radii.(u), u) in
        let d = Graph.bfs_distances g u in
        for v = 0 to n - 1 do
          if unclustered v && d.(v) <= radii.(u) && key > best_key.(v) then begin
            best_key.(v) <- key;
            best_dist.(v) <- d.(v)
          end
        done
      end
    done;
    (* Strict-interior vertices join their winner's cluster this phase. *)
    let members_of = Hashtbl.create 16 in
    for v = 0 to n - 1 do
      if unclustered v then begin
        let r_u, u = best_key.(v) in
        if u >= 0 && best_dist.(v) < r_u then begin
          let prev = try Hashtbl.find members_of u with Not_found -> [] in
          Hashtbl.replace members_of u ((v, best_dist.(v)) :: prev)
        end
      end
    done;
    Hashtbl.iter
      (fun u members ->
        let id = !num_clusters in
        incr num_clusters;
        let vs = Array.of_list (List.map fst members) in
        Array.sort compare vs;
        let radius = List.fold_left (fun acc (_, d) -> max acc d) 0 members in
        Array.iter
          (fun v ->
            cluster_of.(v) <- id;
            color_of.(v) <- !phase)
          vs;
        clusters := { center = u; color = !phase; members = vs; radius } :: !clusters)
      members_of;
    incr phase
  done;
  let failed = Array.map (fun c -> c = -1) cluster_of in
  Log.debug (fun m ->
      m "linial-saks: n=%d phases=%d clusters=%d failed=%d (caps: radius=%d phases=%d)"
        n !phases_used !num_clusters
        (Array.fold_left (fun a f -> if f then a + 1 else a) 0 failed)
        radius_cap phase_cap);
  {
    clusters = Array.of_list (List.rev !clusters);
    cluster_of;
    color_of;
    num_colors = !phases_used;
    failed;
    radius_cap;
    phase_cap;
  }

let is_valid g d =
  let n = Graph.n g in
  let ok = ref true in
  (* Membership consistency. *)
  let seen = Array.make n false in
  Array.iteri
    (fun idx cl ->
      Array.iter
        (fun v ->
          if seen.(v) then ok := false;
          seen.(v) <- true;
          if d.cluster_of.(v) <> idx then ok := false;
          if d.color_of.(v) <> cl.color then ok := false)
        cl.members;
      if cl.radius > d.radius_cap then ok := false;
      (* Weak-diameter check: member distances to the center. *)
      let dists = Graph.bfs_distances g cl.center in
      Array.iter (fun v -> if dists.(v) > cl.radius then ok := false) cl.members)
    d.clusters;
  for v = 0 to n - 1 do
    if d.failed.(v) then begin
      if seen.(v) then ok := false
    end
    else if not seen.(v) then ok := false
  done;
  (* Same-color clusters must be non-adjacent. *)
  Graph.iter_edges g (fun u v ->
      let cu = d.cluster_of.(u) and cv = d.cluster_of.(v) in
      if cu >= 0 && cv >= 0 && cu <> cv && d.color_of.(u) = d.color_of.(v) then
        ok := false);
  !ok

let max_radius_of_color d color =
  Array.fold_left
    (fun acc cl -> if cl.color = color then max acc cl.radius else acc)
    0 d.clusters
