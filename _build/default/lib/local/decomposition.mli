(** Randomized [(O(log n), O(log n))] network decomposition (Linial–Saks).

    A [(C, D)] decomposition partitions (most of) the vertices into
    clusters of weak diameter [≤ D], colored with [C] colors so that
    same-colored clusters are non-adjacent.  Lemma 3.1 compiles SLOCAL
    algorithms to LOCAL by computing such a decomposition on the power
    graph [G^{r+1}] and scheduling color classes sequentially.

    This is the classic construction: per phase, every still-unclustered
    vertex [u] draws a truncated geometric radius [r_u]; vertex [v] elects
    the candidate [u] (with [dist(u,v) ≤ r_u]) maximizing [(r_u, id_u)]
    and joins its cluster iff [dist(u,v) < r_u] (strict interior).  Clusters
    formed in one phase are pairwise non-adjacent; each phase clusters every
    vertex with probability [≥ 1/2], so [O(log n)] phases suffice whp.
    Truncation makes the algorithm terminate in a fixed number of rounds at
    the price of {e locally certifiable failures}: vertices still
    unclustered when the phase budget runs out are flagged, exactly the
    [F''] failures of Lemma 3.1 with [Σ_v E\[F''_v\] = O(1/n²)] for the
    default budgets. *)

type cluster = {
  center : int;
  color : int;  (** Phase that formed the cluster. *)
  members : int array;  (** Sorted; may exclude the center itself. *)
  radius : int;  (** Max member distance to center (weak, in the host graph). *)
}

type t = {
  clusters : cluster array;
  cluster_of : int array;  (** Cluster index per vertex; [-1] = failed. *)
  color_of : int array;  (** Color per vertex; [-1] = failed. *)
  num_colors : int;
  failed : bool array;
  radius_cap : int;
  phase_cap : int;
}

val default_radius_cap : int -> int
(** [⌈2·log₂ n⌉ + 2] — makes a truncation event [n^{-2}]-unlikely. *)

val default_phase_cap : int -> int
(** [⌈4·log₂ n⌉ + 4]. *)

val linial_saks :
  ?radius_cap:int -> ?phase_cap:int -> Ls_graph.Graph.t -> Ls_rng.Rng.t -> t

val is_valid : Ls_graph.Graph.t -> t -> bool
(** Check the invariants: every non-failed vertex is in exactly one
    cluster, member radii are within the cap, and same-color clusters are
    non-adjacent in the host graph. *)

val max_radius_of_color : t -> int -> int
(** Largest cluster radius within one color class (0 if the class is
    empty). *)
