module Graph = Ls_graph.Graph
module Rng = Ls_rng.Rng

type 'input t = {
  graph : Graph.t;
  inputs : 'input array;
  rngs : Rng.t array;
  mutable rounds : int;
  mutable bits : int;
}

let create graph ~inputs ~seed =
  if Array.length inputs <> Graph.n graph then
    invalid_arg "Network.create: one input per vertex required";
  { graph; inputs; rngs = Rng.streams seed (Graph.n graph); rounds = 0; bits = 0 }

let graph t = t.graph
let input t v = t.inputs.(v)
let rng t v = t.rngs.(v)
let rounds t = t.rounds

let charge t r =
  if r < 0 then invalid_arg "Network.charge: negative rounds";
  t.rounds <- t.rounds + r

let reset_rounds t = t.rounds <- 0

let bits t = t.bits

type 'input view = {
  center : int;
  radius : int;
  vertices : int array;
  subgraph : Graph.t;
  local_of_orig : (int, int) Hashtbl.t;
  view_inputs : 'input array;
  center_local : int;
  dist_center : int array;
}

let view_of_ball t ~v ~radius ~ball ~dist =
  let subgraph, vertices = Graph.induced t.graph ball in
  let local_of_orig = Hashtbl.create (2 * Array.length vertices) in
  Array.iteri (fun i o -> Hashtbl.replace local_of_orig o i) vertices;
  {
    center = v;
    radius;
    vertices;
    subgraph;
    local_of_orig;
    view_inputs = Array.map (fun o -> t.inputs.(o)) vertices;
    center_local = Hashtbl.find local_of_orig v;
    dist_center = Array.map (fun o -> dist.(o)) vertices;
  }

let gather t ~v ~radius =
  if radius < 0 then invalid_arg "Network.gather: negative radius";
  let dist = Graph.bfs_distances t.graph v in
  let ball = Graph.ball t.graph v radius in
  view_of_ball t ~v ~radius ~ball ~dist

let in_view view orig = Hashtbl.mem view.local_of_orig orig

let local view orig = Hashtbl.find view.local_of_orig orig

let run_broadcast t ~rounds ?size ~init ~emit ~merge () =
  let n = Graph.n t.graph in
  let states = Array.init n init in
  for _round = 1 to rounds do
    (* All sends use this round's pre-merge states: synchronous semantics. *)
    let outgoing = Array.mapi (fun v s -> emit v s) states in
    (match size with
    | None -> ()
    | Some size ->
        for v = 0 to n - 1 do
          t.bits <- t.bits + (Graph.degree t.graph v * size outgoing.(v))
        done);
    for v = 0 to n - 1 do
      let inbox =
        Array.to_list (Array.map (fun u -> outgoing.(u)) (Graph.neighbors t.graph v))
      in
      states.(v) <- merge v states.(v) inbox
    done
  done;
  charge t rounds;
  states

(* Flooding state: everything a node has learned — for each known original
   vertex, its input and its full neighbor list. *)
module Imap = Map.Make (Int)

let flood_views t ~radius =
  let n = Graph.n t.graph in
  let record v = (t.inputs.(v), Array.to_list (Graph.neighbors t.graph v)) in
  (* Message size: 64 bits per id (the vertex and each of its neighbors);
     inputs are not counted, being of caller-chosen type. *)
  let size m =
    Imap.fold (fun _ (_, nbrs) acc -> acc + (64 * (1 + List.length nbrs))) m 0
  in
  let states =
    run_broadcast t ~rounds:radius ~size
      ~init:(fun v -> Imap.singleton v (record v))
      ~emit:(fun _ s -> s)
      ~merge:(fun _ s inbox ->
        List.fold_left
          (fun acc m -> Imap.union (fun _ a _ -> Some a) acc m)
          s inbox)
      ()
  in
  Array.init n (fun v ->
      let known = states.(v) in
      (* Distances from the flooded adjacency data only. *)
      let ids = Array.of_list (List.map fst (Imap.bindings known)) in
      let dist = Hashtbl.create (2 * Array.length ids) in
      let queue = Queue.create () in
      Hashtbl.replace dist v 0;
      Queue.add v queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        let d = Hashtbl.find dist u in
        if d < radius then
          match Imap.find_opt u known with
          | None -> ()
          | Some (_, nbrs) ->
              List.iter
                (fun w ->
                  if Imap.mem w known && not (Hashtbl.mem dist w) then begin
                    Hashtbl.replace dist w (d + 1);
                    Queue.add w queue
                  end)
                nbrs
      done;
      (* The ball is exactly the vertices reached within [radius]; flooding
         may also have leaked ids at distance radius+... no: a record takes
         dist(u,v) rounds to arrive, so everything known is within radius. *)
      let ball =
        Array.of_list
          (List.filter (fun u -> Hashtbl.mem dist u) (List.map fst (Imap.bindings known)))
      in
      let dist_arr = Array.make n max_int in
      Hashtbl.iter (fun u d -> dist_arr.(u) <- d) dist;
      view_of_ball t ~v ~radius ~ball ~dist:dist_arr)
