(** The LOCAL model runtime.

    A network is a graph whose nodes each own a unique id, a private input,
    and an independent random stream (exactly the initial knowledge granted
    by the LOCAL model, §2).  Algorithms access the network through
    {!gather}: in [t] communication rounds a node learns precisely its
    radius-[t] ball — topology, inputs, ids — which is the information-
    theoretic characterization of the model.  The runtime meters cost in
    rounds: {!charge} accumulates the cost of a parallel step (all nodes
    acting at once cost the maximum radius used, not the sum).

    For fidelity, {!run_broadcast} executes genuine synchronous message
    passing; {!flood_views} implements ball-collection on top of it, and the
    test suite checks it reconstructs the same views as {!gather}. *)

type 'input t

val create : Ls_graph.Graph.t -> inputs:'input array -> seed:int64 -> 'input t
(** One input per vertex; node [v]'s random stream is derived from [seed]
    and [v]. *)

val graph : _ t -> Ls_graph.Graph.t
val input : 'i t -> int -> 'i
val rng : _ t -> int -> Ls_rng.Rng.t
(** Node [v]'s private stream (the same object on every call). *)

(** {1 Round accounting} *)

val rounds : _ t -> int
(** Total rounds charged so far. *)

val charge : _ t -> int -> unit
(** Charge the cost of one parallel phase in which every node communicated
    up to the given radius. *)

val reset_rounds : _ t -> unit

val bits : _ t -> int
(** Total message bits sent so far over all {!run_broadcast} calls whose
    [size] callback was provided.  The paper leaves CONGEST-style bounded
    messages as an open problem (§6); this meter quantifies how far the
    simulated algorithms are from that regime. *)

(** {1 Local views} *)

type 'input view = {
  center : int;  (** Original id of the gathering node. *)
  radius : int;
  vertices : int array;  (** Original ids of [B_radius(center)], sorted. *)
  subgraph : Ls_graph.Graph.t;  (** Induced subgraph on local ids. *)
  local_of_orig : (int, int) Hashtbl.t;
  view_inputs : 'input array;  (** Indexed by local id. *)
  center_local : int;
  dist_center : int array;  (** Graph distance from center, by local id. *)
}

val gather : 'i t -> v:int -> radius:int -> 'i view
(** The view of node [v] after [radius] rounds.  Does {e not} charge
    rounds — callers charge once per parallel phase via {!charge}. *)

val in_view : _ view -> int -> bool
(** Is an original vertex id inside the view? *)

val local : _ view -> int -> int
(** Local id of an original vertex; raises [Not_found] outside the view. *)

(** {1 Genuine synchronous message passing} *)

val run_broadcast :
  'i t ->
  rounds:int ->
  ?size:('m -> int) ->
  init:(int -> 's) ->
  emit:(int -> 's -> 'm) ->
  merge:(int -> 's -> 'm list -> 's) ->
  unit ->
  's array
(** Execute [rounds] synchronous rounds: each round, every node [v]
    broadcasts [emit v state] to all neighbors, then folds the received
    messages (in neighbor order) with [merge].  Charges [rounds] rounds;
    when [size] is given, each message's bit count is charged per
    receiving edge endpoint (see {!bits}). *)

val flood_views : 'i t -> radius:int -> 'i view array
(** Build every node's radius-[t] view using only {!run_broadcast} — the
    executable proof that [gather] grants no more information than [t]
    rounds of real communication. *)
