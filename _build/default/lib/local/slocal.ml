module Graph = Ls_graph.Graph
module Rng = Ls_rng.Rng

type 's t = {
  graph : Graph.t;
  states : 's array;
  rngs : Rng.t array;
  mutable current_pass_radius : int;
  mutable closed_passes : int list;  (* reversed *)
}

let create graph ~seed ~init =
  {
    graph;
    states = Array.init (Graph.n graph) init;
    rngs = Rng.streams seed (Graph.n graph);
    current_pass_radius = 0;
    closed_passes = [];
  }

let graph t = t.graph
let n t = Graph.n t.graph
let state t v = t.states.(v)
let states t = Array.copy t.states

type 's ctx = {
  runtime : 's t;
  v : int;
  radius : int;
  distances : int array;
}

let center ctx = ctx.v
let rng ctx = ctx.runtime.rngs.(ctx.v)

let check ctx u op =
  if ctx.distances.(u) > ctx.radius then
    invalid_arg
      (Printf.sprintf "Slocal.%s: node %d is at distance %d > radius %d from %d"
         op u
         (if ctx.distances.(u) = max_int then -1 else ctx.distances.(u))
         ctx.radius ctx.v)

let read ctx u =
  check ctx u "read";
  ctx.runtime.states.(u)

let write ctx u s =
  check ctx u "write";
  ctx.runtime.states.(u) <- s

let dist ctx u = ctx.distances.(u)

let process t ~v ~radius f =
  if radius < 0 then invalid_arg "Slocal.process: negative radius";
  t.current_pass_radius <- max t.current_pass_radius radius;
  let ctx = { runtime = t; v; radius; distances = Graph.bfs_distances t.graph v } in
  f ctx

let new_pass t =
  t.closed_passes <- t.current_pass_radius :: t.closed_passes;
  t.current_pass_radius <- 0

let run_pass t ~order ~radius f =
  Array.iter (fun v -> process t ~v ~radius (fun ctx -> f ctx)) order;
  new_pass t

let pass_localities t =
  let closed = List.rev t.closed_passes in
  if t.current_pass_radius > 0 then closed @ [ t.current_pass_radius ] else closed

let single_pass_locality t =
  match pass_localities t with
  | [] -> 0
  | r1 :: rest -> r1 + (2 * List.fold_left ( + ) 0 rest)
