(** The SLOCAL model runtime (Ghaffari–Kuhn–Maus, restated in §3).

    An SLOCAL algorithm scans the nodes in an adversarial order; when
    processing node [v] it reads the states of nodes within some radius
    [r_v], performs unbounded computation, and updates states.  This runtime
    {e enforces} locality: every read or write outside the radius declared
    for the current step raises, so an algorithm that runs to completion has
    certified its locality.  The runtime records, per pass, the maximum
    radius used, and converts multi-pass / nearby-write algorithms to the
    single-pass locality bound of Lemma 4.4:
    [r₁ + 2·Σ_{i≥2} r_i], with writes at distance [w] folded into the
    pass radius ([r + w], Observation 2.1 of GKM). *)

type 's t

val create : Ls_graph.Graph.t -> seed:int64 -> init:(int -> 's) -> 's t

val graph : _ t -> Ls_graph.Graph.t
val n : _ t -> int

val state : 's t -> int -> 's
(** Unrestricted read, for inspecting results {e after} the run. *)

val states : 's t -> 's array

(** {1 Processing steps} *)

type 's ctx
(** Capability handed to the algorithm while it processes one node. *)

val center : _ ctx -> int
val rng : _ ctx -> Ls_rng.Rng.t
(** The processed node's private stream. *)

val read : 's ctx -> int -> 's
(** Read a state within the declared radius (else [Invalid_argument]). *)

val write : 's ctx -> int -> 's -> unit
(** Write a state within the declared radius (else [Invalid_argument]). *)

val dist : _ ctx -> int -> int
(** Distance from the processed node. *)

val process : 's t -> v:int -> radius:int -> ('s ctx -> 'a) -> 'a
(** Execute one step at node [v] with locality budget [radius]. *)

val run_pass : 's t -> order:int array -> radius:int -> ('s ctx -> unit) -> unit
(** Process every node of [order] once with the same locality budget, then
    close the pass (see {!new_pass}). *)

(** {1 Locality accounting} *)

val new_pass : _ t -> unit
(** Close the current pass; subsequent steps count toward the next one. *)

val pass_localities : _ t -> int list
(** Max radius used in each completed-or-current pass, oldest first. *)

val single_pass_locality : _ t -> int
(** Lemma 4.4 bound for the equivalent single-pass SLOCAL algorithm:
    [r₁ + 2·Σ_{i≥2} r_i]. *)
