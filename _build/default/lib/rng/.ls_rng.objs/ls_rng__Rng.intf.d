lib/rng/rng.mli:
