lib/rng/splitmix.mli:
