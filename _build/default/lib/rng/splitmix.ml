type t = { mutable state : int64; gamma : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* The mix functions of SplitMix64 (variant 13 of Stafford's MurmurHash3
   finalizer study). *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let mix_gamma z =
  let z = Int64.(mul (logxor z (shift_right_logical z 33)) 0xFF51AFD7ED558CCDL) in
  let z = Int64.(mul (logxor z (shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L) in
  let z = Int64.logor z 1L in
  (* Ensure the gamma has enough bit transitions to be a good increment. *)
  let n = Int64.(logxor z (shift_right_logical z 1)) in
  let popcount x =
    let c = ref 0 in
    for i = 0 to 63 do
      if Int64.(logand (shift_right_logical x i) 1L) = 1L then incr c
    done;
    !c
  in
  if popcount n < 24 then Int64.logxor z 0xAAAAAAAAAAAAAAAAL else z

let create seed = { state = seed; gamma = golden_gamma }

let copy g = { state = g.state; gamma = g.gamma }

let next_raw g =
  g.state <- Int64.add g.state g.gamma;
  g.state

let next_int64 g = mix64 (next_raw g)

let split g =
  let s = next_raw g in
  let s' = next_raw g in
  { state = mix64 s; gamma = mix_gamma s' }

let bits62 g = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2)

let float g =
  let x = Int64.to_float (Int64.shift_right_logical (next_int64 g) 11) in
  x *. 0x1.0p-53

let int g bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  (* Rejection sampling over the top multiple of [bound] below 2^62. *)
  let limit = 0x3FFFFFFFFFFFFFFF / bound * bound in
  let rec loop () =
    let x = bits62 g in
    if x < limit then x mod bound else loop ()
  in
  loop ()

let bool g = Int64.(logand (next_int64 g) 1L) = 1L
