test/test_counting.ml: Alcotest Counting Float Inference Instance List Ls_core Ls_gibbs Ls_graph Ls_rng Printf QCheck QCheck_alcotest
