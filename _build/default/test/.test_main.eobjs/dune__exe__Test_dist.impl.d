test/test_dist.ml: Alcotest Array Float Gen List Ls_dist Ls_rng QCheck QCheck_alcotest
