test/test_engines.ml: Alcotest Array Exact Float Inference Instance List Ls_core Ls_dist Ls_gibbs Ls_graph Ls_rng Option QCheck QCheck_alcotest Sequential_sampler
