test/test_gibbs.ml: Alcotest Array Float List Ls_dist Ls_gibbs Ls_graph Ls_rng Option QCheck QCheck_alcotest
