test/test_graph.ml: Alcotest Array Float List Ls_graph Ls_rng QCheck QCheck_alcotest
