test/test_inference.ml: Alcotest Array Boosting Exact Float Inference Instance List Ls_core Ls_dist Ls_gibbs Ls_graph Ls_rng Option QCheck QCheck_alcotest Reductions
