test/test_jvv.ml: Alcotest Array Exact Float Inference Instance Int64 Jvv List Ls_core Ls_dist Ls_gibbs Ls_graph Ls_local Ls_rng QCheck QCheck_alcotest Sequential_sampler
