test/test_local.ml: Alcotest Array List Ls_graph Ls_local Ls_rng QCheck QCheck_alcotest
