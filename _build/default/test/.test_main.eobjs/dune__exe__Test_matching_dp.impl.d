test/test_matching_dp.ml: Alcotest Array Float List Ls_dist Ls_gibbs Ls_graph Ls_rng Option QCheck QCheck_alcotest
