test/test_rng.ml: Alcotest Array Float Gen Hashtbl List Ls_rng QCheck QCheck_alcotest
