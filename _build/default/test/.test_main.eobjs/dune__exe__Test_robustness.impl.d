test/test_robustness.ml: Alcotest Array Boosting Exact Float Glauber Inference Instance Jvv List Ls_core Ls_dist Ls_gibbs Ls_graph Ls_rng Option Sequential_sampler
