test/test_ssm.ml: Alcotest Exact Float Inference Instance List Ls_core Ls_dist Ls_gibbs Ls_graph Ls_rng Option Phase_transition QCheck QCheck_alcotest Ssm
