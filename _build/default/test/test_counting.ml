(* Counting tests: the exact engines against closed-form combinatorial
   identities, and the local (chain-rule) counting of the paper against
   the exact values. *)

module Graph = Ls_graph.Graph
module Generators = Ls_graph.Generators
module Rng = Ls_rng.Rng
module Models = Ls_gibbs.Models

open Ls_core

let checkb = Alcotest.check Alcotest.bool

let close ?(rel = 1e-9) a b = Float.abs (a -. b) <= rel *. Float.max 1. (Float.abs b)

let test_independent_sets_closed_forms () =
  (* Paths: Fibonacci.  Cycles: Lucas.  Large n exercises the DP engines,
     small n the closed forms themselves. *)
  List.iter
    (fun n ->
      checkb
        (Printf.sprintf "path %d" n)
        true
        (close
           (Counting.count_independent_sets (Generators.path n))
           (Counting.closed_form_independent_sets_path n)))
    [ 1; 2; 3; 5; 10; 30; 60 ];
  List.iter
    (fun n ->
      checkb
        (Printf.sprintf "cycle %d" n)
        true
        (close
           (Counting.count_independent_sets (Generators.cycle n))
           (Counting.closed_form_independent_sets_cycle n)))
    [ 3; 4; 5; 8; 20; 50 ]

let test_matchings_closed_forms () =
  List.iter
    (fun n ->
      checkb
        (Printf.sprintf "matchings path %d" n)
        true
        (close
           (Counting.count_matchings (Generators.path n))
           (Counting.closed_form_matchings_path n)))
    [ 1; 2; 3; 4; 6; 10; 25 ];
  (* Matchings of C_n = Lucas number L_n. *)
  List.iter
    (fun n ->
      checkb
        (Printf.sprintf "matchings cycle %d" n)
        true
        (close
           (Counting.count_matchings (Generators.cycle n))
           (Counting.closed_form_independent_sets_cycle n)))
    [ 3; 4; 5; 7 ]

let test_colorings_closed_forms () =
  List.iter
    (fun (n, q) ->
      checkb
        (Printf.sprintf "colorings C%d q=%d" n q)
        true
        (close
           (Counting.count_proper_colorings (Generators.cycle n) ~q)
           (Counting.closed_form_colorings_cycle ~n ~q)))
    [ (3, 3); (4, 3); (5, 4); (12, 3); (40, 5) ];
  let rng = Rng.create 91L in
  for _trial = 1 to 10 do
    let n = 2 + Rng.int rng 30 in
    let g = Generators.random_tree rng n in
    let q = 2 + Rng.int rng 4 in
    checkb "colorings of random trees" true
      (close
         (Counting.count_proper_colorings g ~q)
         (Counting.closed_form_colorings_tree ~n ~q))
  done

let test_star_independent_sets () =
  (* Star K_{1,k}: 2^k + 1 independent sets. *)
  List.iter
    (fun k ->
      checkb "star" true
        (close
           (Counting.count_independent_sets (Generators.star (k + 1)))
           ((2. ** float_of_int k) +. 1.)))
    [ 1; 3; 5; 10 ]

let test_log_z_exact_infeasible () =
  let spec = Models.hardcore (Generators.path 2) ~lambda:1. in
  let inst = Instance.of_pins spec [ (0, 1); (1, 1) ] in
  checkb "infeasible" true (Counting.log_z_exact inst = neg_infinity)

let test_local_counting_tracks_exact () =
  (* The paper's point: global counts assembled from radius-t marginals.
     Error shrinks with the oracle radius. *)
  let inst = Instance.unpinned (Models.hardcore (Generators.cycle 20) ~lambda:1.) in
  let truth = Counting.log_z_exact inst in
  let err t =
    Float.abs (Counting.log_z_local (Inference.ssm_oracle ~t inst) inst -. truth)
  in
  let e1 = err 1 and e3 = err 3 and e6 = err 6 in
  checkb "decreasing" true (e6 <= e3 && e3 <= e1);
  checkb "accurate at t=6" true (e6 < 0.01);
  (* Relative accuracy statement: the count itself, not just its log. *)
  checkb "count within 1%" true
    (close ~rel:0.01
       (exp (Counting.log_z_local (Inference.ssm_oracle ~t:6 inst) inst))
       (Counting.closed_form_independent_sets_cycle 20))

let test_conditional_counting () =
  (* Self-reducibility: Z(tau) for a pinned instance. *)
  let spec = Models.hardcore (Generators.cycle 6) ~lambda:1. in
  let inst = Instance.of_pins spec [ (0, 1) ] in
  (* Pinning v0 occupied forces both neighbors out: remaining free path of
     3 vertices (2,3,4) -> F_5 = 5 independent sets. *)
  checkb "conditional count" true (close (exp (Counting.log_z_exact inst)) 5.)

let qcheck_engines_agree_on_log_z =
  QCheck.Test.make ~name:"logZ: chain/forest/enumeration engines agree" ~count:40
    QCheck.(pair small_int (int_range 2 8))
    (fun (seed, n) ->
      let rng = Rng.of_int seed in
      let shape = Rng.int rng 3 in
      let g =
        match shape with
        | 0 -> Generators.path n
        | 1 -> if n >= 3 then Generators.cycle n else Generators.path n
        | _ -> Generators.random_tree rng n
      in
      let lambda = 0.3 +. Rng.float rng in
      let inst = Instance.unpinned (Models.hardcore g ~lambda) in
      let fast = Counting.log_z_exact inst in
      let slow = log (Ls_gibbs.Enumerate.partition inst.Instance.spec inst.Instance.pinned) in
      Float.abs (fast -. slow) < 1e-9)

let suite =
  [
    Alcotest.test_case "independent sets: Fibonacci/Lucas" `Quick
      test_independent_sets_closed_forms;
    Alcotest.test_case "matchings: Fibonacci/Lucas" `Quick test_matchings_closed_forms;
    Alcotest.test_case "colorings: chromatic polynomials" `Quick
      test_colorings_closed_forms;
    Alcotest.test_case "star independent sets" `Quick test_star_independent_sets;
    Alcotest.test_case "infeasible logZ" `Quick test_log_z_exact_infeasible;
    Alcotest.test_case "local counting tracks exact" `Quick
      test_local_counting_tracks_exact;
    Alcotest.test_case "conditional counting" `Quick test_conditional_counting;
    QCheck_alcotest.to_alcotest qcheck_engines_agree_on_log_z;
  ]
