(* Tests for the additional exact/approximate inference engines: the
   transfer-matrix DP on paths/cycles (Chain_dp) and Weitz's SAW-tree
   algorithm (Saw).  Both are validated against brute-force enumeration —
   for the SAW tree this in particular certifies the cycle-closing rule. *)

module Graph = Ls_graph.Graph
module Generators = Ls_graph.Generators
module Dist = Ls_dist.Dist
module Rng = Ls_rng.Rng
module Config = Ls_gibbs.Config
module Spec = Ls_gibbs.Spec
module Models = Ls_gibbs.Models
module Enumerate = Ls_gibbs.Enumerate
module Chain_dp = Ls_gibbs.Chain_dp
module Saw = Ls_gibbs.Saw

open Ls_core

let checkb = Alcotest.check Alcotest.bool

let random_two_spin rng g =
  Models.two_spin g ~beta:(Rng.float rng *. 2.) ~gamma:(Rng.float rng *. 2.)
    ~lambda:(0.1 +. (Rng.float rng *. 2.))

let random_pinning rng n q =
  let tau = Config.empty n in
  for v = 0 to n - 1 do
    if Rng.bernoulli rng 0.25 then tau.(v) <- Rng.int rng q
  done;
  tau

let agree msg a b =
  match (a, b) with
  | None, None -> ()
  | Some da, Some db -> checkb msg true (Dist.tv da db < 1e-9)
  | Some _, None | None, Some _ -> Alcotest.fail (msg ^ ": feasibility disagreement")

(* --- Chain_dp --- *)

let test_chain_supported () =
  checkb "cycle" true (Chain_dp.supported (Models.hardcore (Generators.cycle 5) ~lambda:1.));
  checkb "path" true (Chain_dp.supported (Models.coloring (Generators.path 4) ~q:3));
  checkb "star rejected" false
    (Chain_dp.supported (Models.hardcore (Generators.star 5) ~lambda:1.))

let test_chain_vs_enumeration_cycles () =
  let rng = Rng.create 71L in
  for _trial = 1 to 25 do
    let n = 3 + Rng.int rng 8 in
    let g = Generators.cycle n in
    let spec =
      if Rng.bool rng then random_two_spin rng g else Models.coloring g ~q:3
    in
    let q = Spec.q spec in
    let tau = random_pinning rng n q in
    for v = 0 to n - 1 do
      agree "cycle marginal" (Chain_dp.marginal spec tau v)
        (Enumerate.marginal spec tau v)
    done
  done

let test_chain_vs_enumeration_paths () =
  let rng = Rng.create 72L in
  for _trial = 1 to 25 do
    let n = 1 + Rng.int rng 8 in
    let g = Generators.path n in
    let spec =
      if Rng.bool rng then random_two_spin rng g else Models.coloring g ~q:3
    in
    let q = Spec.q spec in
    let tau = random_pinning rng n q in
    for v = 0 to n - 1 do
      agree "path marginal" (Chain_dp.marginal spec tau v)
        (Enumerate.marginal spec tau v)
    done
  done

let test_chain_log_partition () =
  let rng = Rng.create 73L in
  for _trial = 1 to 20 do
    let n = 3 + Rng.int rng 7 in
    let g = if Rng.bool rng then Generators.cycle n else Generators.path n in
    let spec = random_two_spin rng g in
    let tau = random_pinning rng n 2 in
    let z = Enumerate.partition spec tau in
    let lz = Chain_dp.log_partition spec tau in
    if z > 0. then
      checkb "logZ agrees" true (Float.abs (lz -. log z) < 1e-9)
    else checkb "infeasible logZ" true (lz = neg_infinity)
  done

let test_chain_disconnected () =
  (* Cycle + isolated path in one graph. *)
  let g = Graph.create ~n:8 ~edges:[ (0, 1); (1, 2); (2, 0); (4, 5); (5, 6) ] in
  let spec = Models.hardcore g ~lambda:1.3 in
  let tau = Config.of_pinning 8 [ (5, 1) ] in
  for v = 0 to 7 do
    agree "mixed components" (Chain_dp.marginal spec tau v)
      (Enumerate.marginal spec tau v)
  done;
  (* Infeasible pinning in a far component must kill every marginal. *)
  let bad = Config.of_pinning 8 [ (4, 1); (5, 1) ] in
  checkb "far infeasibility" true (Chain_dp.marginal spec bad 0 = None)

let test_chain_large_cycle_stable () =
  let n = 2000 in
  let spec = Models.hardcore (Generators.cycle n) ~lambda:1. in
  let tau = Config.empty n in
  let d = Option.get (Chain_dp.marginal spec tau 0) in
  checkb "normalized" true (Dist.is_normalized d);
  (* On an unpinned cycle every vertex has the same marginal; the
     occupation probability tends to the infinite-path value
     (1 - 1/sqrt(5))/2 ~ 0.2764 for lambda = 1. *)
  let d' = Option.get (Chain_dp.marginal spec tau (n / 2)) in
  checkb "translation invariant" true (Dist.tv d d' < 1e-12);
  checkb "thermodynamic limit" true
    (Float.abs (Dist.prob d 1 -. ((1. -. (1. /. sqrt 5.)) /. 2.)) < 1e-3);
  let lz = Chain_dp.log_partition spec tau in
  checkb "logZ finite and linear in n" true
    (Float.is_finite lz && lz > 0.4 *. float_of_int n && lz < 0.5 *. float_of_int n)

let test_exact_dispatcher_uses_chain () =
  (* Exact.marginal on a 60-cycle must terminate fast (enumeration would
     take ~2^60 steps) and agree with a deep ssm ball estimate. *)
  let inst = Instance.unpinned (Models.hardcore (Generators.cycle 60) ~lambda:1.) in
  let d = Option.get (Exact.marginal inst 0) in
  let approx = Inference.ssm_infer ~t:25 inst 0 in
  checkb "chain engine plugged in" true (Dist.tv d approx < 1e-6)

(* --- Saw --- *)

let test_saw_supported () =
  checkb "hardcore yes" true (Saw.supported (Models.hardcore (Generators.cycle 4) ~lambda:1.));
  checkb "coloring q=3 no" false (Saw.supported (Models.coloring (Generators.cycle 4) ~q:3))

let test_saw_exact_on_trees () =
  let rng = Rng.create 81L in
  for _trial = 1 to 25 do
    let n = 2 + Rng.int rng 8 in
    let g = Generators.random_tree rng n in
    let spec = random_two_spin rng g in
    let tau = random_pinning rng n 2 in
    for v = 0 to n - 1 do
      agree "saw on tree" (Saw.marginal ~depth:n spec tau v)
        (Enumerate.marginal spec tau v)
    done
  done

let test_saw_exact_on_cycles () =
  (* The cycle-closing rule at work: exactness on graphs with cycles. *)
  let rng = Rng.create 82L in
  for _trial = 1 to 25 do
    let n = 3 + Rng.int rng 6 in
    let g = Generators.cycle n in
    let spec =
      if Rng.bool rng then Models.hardcore g ~lambda:(0.3 +. Rng.float rng)
      else random_two_spin rng g
    in
    let tau = random_pinning rng n 2 in
    if Enumerate.feasible spec tau then
      for v = 0 to n - 1 do
        agree "saw on cycle" (Saw.marginal ~depth:(n + 1) spec tau v)
          (Enumerate.marginal spec tau v)
      done
  done

let test_saw_exact_on_dense_graphs () =
  (* The SAW tree computes conditional marginals of a FEASIBLE instance
     (Definition 2.2 demands tau feasible): constraints between two pinned
     vertices are never walked, so infeasible pinnings are out of its
     contract — skip them, as the paper's model does. *)
  let rng = Rng.create 83L in
  for _trial = 1 to 15 do
    let n = 4 + Rng.int rng 4 in
    let g = Generators.erdos_renyi rng ~n ~p:0.5 in
    let spec = Models.hardcore g ~lambda:(0.3 +. Rng.float rng) in
    let tau = random_pinning rng n 2 in
    if Enumerate.feasible spec tau then
      for v = 0 to n - 1 do
        agree "saw on ER graph" (Saw.marginal ~depth:(n + 1) spec tau v)
          (Enumerate.marginal spec tau v)
      done
  done

let test_saw_complete_graph () =
  (* K5: heavily cyclic, the sharpest test of the ordering rule. *)
  let g = Generators.complete 5 in
  let spec = Models.hardcore g ~lambda:0.9 in
  let tau = Config.empty 5 in
  for v = 0 to 4 do
    agree "saw on K5" (Saw.marginal ~depth:6 spec tau v) (Enumerate.marginal spec tau v)
  done

let test_saw_truncation_error_decays () =
  let n = 18 in
  let spec = Models.hardcore (Generators.cycle n) ~lambda:1. in
  let tau = Config.empty n in
  let exact = Option.get (Chain_dp.marginal spec tau 0) in
  let err depth = Dist.tv (Option.get (Saw.marginal ~depth spec tau 0)) exact in
  let e2 = err 2 and e4 = err 4 and e8 = err 8 in
  checkb "monotone-ish decay" true (e8 <= e4 && e4 <= e2);
  checkb "deep truncation accurate" true (e8 < 1e-3)

let test_saw_pinned_root_and_infeasible () =
  let spec = Models.hardcore (Generators.path 3) ~lambda:1. in
  let tau = Config.of_pinning 3 [ (1, 1) ] in
  let d = Option.get (Saw.marginal ~depth:3 spec tau 1) in
  checkb "pinned root point mass" true (Dist.prob d 1 = 1.);
  let d0 = Option.get (Saw.marginal ~depth:3 spec tau 0) in
  checkb "forced out by pinned neighbor" true (Dist.prob d0 0 = 1.);
  (* Infeasible: hard field forbidding both values. *)
  let dead =
    Spec.create_pairwise (Generators.path 2) ~q:2
      {
        Spec.vertex_weight = (fun v _ -> if v = 0 then 0. else 1.);
        edge_weight = (fun _ _ _ _ -> 1.);
      }
  in
  checkb "all-zero root" true (Saw.marginal ~depth:2 dead (Config.empty 2) 0 = None)

let test_saw_oracle_in_pipeline () =
  (* Drive the chain-rule sampler with the SAW oracle and check the output
     law symbolically. *)
  let inst = Instance.unpinned (Models.hardcore (Generators.cycle 7) ~lambda:1.2) in
  let oracle = Inference.saw_oracle ~depth:8 inst in
  let out =
    Sequential_sampler.output_distribution oracle inst
      ~order:(Array.init 7 (fun i -> i))
  in
  let exact = Exact.joint inst in
  let tv =
    0.5
    *. List.fold_left
         (fun acc (sigma, p) ->
           let p' = try List.assoc sigma out with Not_found -> 0. in
           acc +. Float.abs (p -. p'))
         0. exact
  in
  checkb "saw-driven sampler is exact at full depth" true (tv < 1e-9)

let qcheck_saw_matches_enumeration =
  QCheck.Test.make ~name:"SAW tree = enumeration on random graphs (full depth)"
    ~count:30
    QCheck.(pair small_int (int_range 3 7))
    (fun (seed, n) ->
      let rng = Rng.of_int seed in
      let g = Generators.erdos_renyi rng ~n ~p:0.45 in
      let spec = random_two_spin rng g in
      let tau = random_pinning rng n 2 in
      QCheck.assume (Enumerate.feasible spec tau);
      List.for_all
        (fun v ->
          match (Saw.marginal ~depth:(n + 1) spec tau v, Enumerate.marginal spec tau v) with
          | None, None -> true
          | Some a, Some b -> Dist.tv a b < 1e-9
          | _ -> false)
        (List.init n (fun v -> v)))

let qcheck_chain_matches_enumeration =
  QCheck.Test.make ~name:"Chain DP = enumeration on cycles" ~count:30
    QCheck.(pair small_int (int_range 3 9))
    (fun (seed, n) ->
      let rng = Rng.of_int seed in
      let g = Generators.cycle n in
      let spec = random_two_spin rng g in
      let tau = random_pinning rng n 2 in
      List.for_all
        (fun v ->
          match (Chain_dp.marginal spec tau v, Enumerate.marginal spec tau v) with
          | None, None -> true
          | Some a, Some b -> Dist.tv a b < 1e-9
          | _ -> false)
        (List.init n (fun v -> v)))

let suite =
  [
    Alcotest.test_case "chain supported" `Quick test_chain_supported;
    Alcotest.test_case "chain vs enumeration (cycles)" `Quick
      test_chain_vs_enumeration_cycles;
    Alcotest.test_case "chain vs enumeration (paths)" `Quick
      test_chain_vs_enumeration_paths;
    Alcotest.test_case "chain log partition" `Quick test_chain_log_partition;
    Alcotest.test_case "chain disconnected" `Quick test_chain_disconnected;
    Alcotest.test_case "chain large cycle" `Quick test_chain_large_cycle_stable;
    Alcotest.test_case "exact dispatcher uses chain" `Quick
      test_exact_dispatcher_uses_chain;
    Alcotest.test_case "saw supported" `Quick test_saw_supported;
    Alcotest.test_case "saw exact on trees" `Quick test_saw_exact_on_trees;
    Alcotest.test_case "saw exact on cycles" `Quick test_saw_exact_on_cycles;
    Alcotest.test_case "saw exact on dense graphs" `Quick test_saw_exact_on_dense_graphs;
    Alcotest.test_case "saw on K5" `Quick test_saw_complete_graph;
    Alcotest.test_case "saw truncation decay" `Quick test_saw_truncation_error_decays;
    Alcotest.test_case "saw pinning and infeasibility" `Quick
      test_saw_pinned_root_and_infeasible;
    Alcotest.test_case "saw oracle drives the sampler" `Quick test_saw_oracle_in_pipeline;
    QCheck_alcotest.to_alcotest qcheck_saw_matches_enumeration;
    QCheck_alcotest.to_alcotest qcheck_chain_matches_enumeration;
  ]
