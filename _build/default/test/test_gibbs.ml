(* Tests for Gibbs specs, models, exact engines and local admissibility. *)

module Graph = Ls_graph.Graph
module Generators = Ls_graph.Generators
module Dist = Ls_dist.Dist
module Rng = Ls_rng.Rng
module Config = Ls_gibbs.Config
module Spec = Ls_gibbs.Spec
module Models = Ls_gibbs.Models
module Enumerate = Ls_gibbs.Enumerate
module Forest_dp = Ls_gibbs.Forest_dp
module Admissible = Ls_gibbs.Admissible
module Matching = Ls_gibbs.Matching
module Hypergraph = Ls_graph.Hypergraph
module Hypergraph_matching = Ls_gibbs.Hypergraph_matching

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

(* --- configurations --- *)

let test_config () =
  let tau = Config.of_pinning 4 [ (1, 2); (3, 0) ] in
  checkb "assigned" true (Config.is_assigned tau 1);
  checkb "unassigned" false (Config.is_assigned tau 0);
  checki "num assigned" 2 (Config.num_assigned tau);
  Alcotest.check (Alcotest.list Alcotest.int) "domain" [ 1; 3 ]
    (Config.assigned_vertices tau);
  let tau' = Config.extend tau 0 1 in
  checki "extended" 1 tau'.(0);
  checkb "original untouched" false (Config.is_assigned tau 0);
  Alcotest.check_raises "re-extend"
    (Invalid_argument "Config.extend: vertex already assigned") (fun () ->
      ignore (Config.extend tau 1 0))

let test_config_conflict () =
  Alcotest.check_raises "conflict"
    (Invalid_argument "Config.of_pinning: conflicting pinning") (fun () ->
      ignore (Config.of_pinning 3 [ (0, 1); (0, 2) ]))

let test_config_diff () =
  let a = Config.of_pinning 4 [ (0, 1); (1, 1) ] in
  let b = Config.of_pinning 4 [ (0, 1); (2, 0) ] in
  Alcotest.check (Alcotest.list Alcotest.int) "diff" [ 1; 2 ]
    (Config.diff_domain a b)

(* --- counting known values --- *)

let count_configs spec = Enumerate.count_feasible spec

let test_hardcore_counts () =
  (* Independent sets: P2 -> 3, P3 -> 5, C5 -> 11 (Lucas number). *)
  checki "P2" 3 (count_configs (Models.hardcore (Generators.path 2) ~lambda:1.));
  checki "P3" 5 (count_configs (Models.hardcore (Generators.path 3) ~lambda:1.));
  checki "C5" 11 (count_configs (Models.hardcore (Generators.cycle 5) ~lambda:1.))

let test_hardcore_partition () =
  (* P2: Z = 1 + 2λ. *)
  let spec = Models.hardcore (Generators.path 2) ~lambda:0.7 in
  checkf "Z" (1. +. (2. *. 0.7)) (Enumerate.partition spec (Config.empty 2));
  (* P3: Z = 1 + 3λ + λ². *)
  let spec3 = Models.hardcore (Generators.path 3) ~lambda:2. in
  checkf "Z3" (1. +. 6. +. 4.) (Enumerate.partition spec3 (Config.empty 3))

let test_coloring_counts () =
  (* Triangle with 3 colors: 3! = 6; C4 with 3 colors: 2^4 + 2 = 18. *)
  checki "K3 q=3" 6 (count_configs (Models.coloring (Generators.cycle 3) ~q:3));
  checki "C4 q=3" 18 (count_configs (Models.coloring (Generators.cycle 4) ~q:3));
  checki "P3 q=2" 2 (count_configs (Models.coloring (Generators.path 3) ~q:2))

let test_matching_counts () =
  (* Matchings: P3 has 3, C4 has 7 (empty, 4 single edges, 2 opposite pairs). *)
  let m3 = Matching.make (Generators.path 3) ~lambda:1. in
  checki "P3 matchings" 3 (count_configs m3.Matching.spec);
  let c4 = Matching.make (Generators.cycle 4) ~lambda:1. in
  checki "C4 matchings" 7 (count_configs c4.Matching.spec)

let test_matching_validity () =
  let m = Matching.make (Generators.cycle 4) ~lambda:1. in
  List.iter
    (fun (sigma, _) ->
      checkb "every feasible config is a matching" true (Matching.is_matching m sigma))
    (Enumerate.distribution m.Matching.spec
       (Config.empty (Graph.n m.Matching.lg.Ls_graph.Line_graph.line)))

let test_ising_partition () =
  (* Single edge Ising, no field: Z = 2β + 2. *)
  let spec = Models.ising (Generators.path 2) ~beta:0.4 ~field:1. in
  checkf "Z" (2. +. (2. *. 0.4)) (Enumerate.partition spec (Config.empty 2))

let test_hypergraph_matching_counts () =
  (* Two disjoint hyperedges: matchings = all subsets = 4.
     Two intersecting: 3. *)
  let h1 = Hypergraph.create ~n:6 ~hyperedges:[ [ 0; 1; 2 ]; [ 3; 4; 5 ] ] in
  let hm1 = Hypergraph_matching.make h1 ~lambda:1. in
  checki "disjoint" 4 (count_configs hm1.Hypergraph_matching.spec);
  let h2 = Hypergraph.create ~n:5 ~hyperedges:[ [ 0; 1; 2 ]; [ 2; 3; 4 ] ] in
  let hm2 = Hypergraph_matching.make h2 ~lambda:1. in
  checki "intersecting" 3 (count_configs hm2.Hypergraph_matching.spec)

let test_potts () =
  (* Single edge: Z = q*beta + q(q-1). *)
  let spec = Models.potts (Generators.path 2) ~q:3 ~beta:2. in
  checkf "Z" ((3. *. 2.) +. 6.) (Enumerate.partition spec (Config.empty 2));
  (* beta = 0 degenerates to proper colorings. *)
  let p0 = Models.potts (Generators.cycle 4) ~q:3 ~beta:0. in
  checki "beta=0 = colorings" 18 (count_configs p0);
  (* Thresholds. *)
  checkf "potts threshold" (2. /. 5.) (Models.potts_uniqueness_threshold ~q:3 ~delta:5);
  checkf "q >= delta" 0. (Models.potts_uniqueness_threshold ~q:5 ~delta:4)

let qcheck_greedy_never_fails_when_admissible =
  (* Remark 2.3: for locally admissible specs the sequential local
     oblivious construction always completes from a feasible pinning. *)
  QCheck.Test.make ~name:"greedy extension completes on hardcore (admissible)"
    ~count:50
    QCheck.(pair small_int (int_range 2 8))
    (fun (seed, n) ->
      let rng = Rng.of_int seed in
      let g = Generators.erdos_renyi rng ~n ~p:0.4 in
      let spec = Models.hardcore g ~lambda:(0.2 +. Rng.float rng) in
      let tau = Config.empty n in
      for v = 0 to n - 1 do
        if Rng.bernoulli rng 0.3 then tau.(v) <- Rng.int rng 2
      done;
      (not (Enumerate.feasible spec tau))
      ||
      match Admissible.greedy_extension spec tau with
      | None -> false
      | Some sigma -> Spec.weight spec sigma > 0.)

(* --- thresholds --- *)

let test_thresholds () =
  checkf "hardcore D=3" 4. (Models.hardcore_uniqueness_threshold 3);
  checkf "hardcore D=4" (27. /. 16.) (Models.hardcore_uniqueness_threshold 4);
  checkb "D=2 infinite" true (Models.hardcore_uniqueness_threshold 2 = infinity);
  checkf "ising D=4" 0.5 (Models.ising_uniqueness_threshold 4);
  checkb "alpha* root" true
    (Float.abs (Models.coloring_alpha_star -. exp (1. /. Models.coloring_alpha_star))
    < 1e-9);
  checkb "alpha* value" true (Float.abs (Models.coloring_alpha_star -. 1.7632) < 1e-3);
  (* Rank-2 hypergraph matching threshold degenerates to the hardcore one. *)
  checkf "rank 2 = hardcore"
    (Models.hardcore_uniqueness_threshold 4)
    (Hypergraph_matching.uniqueness_threshold ~rank:2 ~delta:4)

(* --- marginals --- *)

let test_marginal_path2 () =
  (* P2 hardcore λ: μ_0(1) = λ(1) / (1+2λ) — occupied mass at 0 is λ·1
     (neighbor must be empty). *)
  let lambda = 0.9 in
  let spec = Models.hardcore (Generators.path 2) ~lambda in
  match Enumerate.marginal spec (Config.empty 2) 0 with
  | None -> Alcotest.fail "feasible"
  | Some d -> checkf "occupied mass" (lambda /. (1. +. (2. *. lambda))) (Dist.prob d 1)

let test_marginal_conditional () =
  (* Pinning a neighbor occupied forces v empty in hardcore. *)
  let spec = Models.hardcore (Generators.path 3) ~lambda:1. in
  let tau = Config.of_pinning 3 [ (1, 1) ] in
  (match Enumerate.marginal spec tau 0 with
  | None -> Alcotest.fail "feasible"
  | Some d -> checkf "forced empty" 1. (Dist.prob d 0));
  match Enumerate.marginal spec tau 1 with
  | None -> Alcotest.fail "feasible"
  | Some d -> checkf "pinned is point mass" 1. (Dist.prob d 1)

let test_marginal_infeasible () =
  let spec = Models.hardcore (Generators.path 2) ~lambda:1. in
  let tau = Config.of_pinning 2 [ (0, 1); (1, 1) ] in
  checkb "infeasible" true (Enumerate.marginal spec tau 0 = None);
  checkb "partition zero" true (Enumerate.partition spec tau = 0.)

let test_distribution_sums_to_one () =
  let spec = Models.coloring (Generators.cycle 4) ~q:3 in
  let dist = Enumerate.distribution spec (Config.empty 4) in
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0. dist in
  checkf "sums to 1" 1. total;
  checki "support size" 18 (List.length dist)

let test_ball_marginal_matches_conditional_independence () =
  (* If the pinning separates the ball from the rest, the ball marginal is
     the true marginal (Proposition 2.1). *)
  let g = Generators.path 5 in
  let spec = Models.hardcore g ~lambda:1.3 in
  let tau = Config.of_pinning 5 [ (3, 0) ] in
  let ball = [| 0; 1; 2; 3 |] in
  let ball_m = Option.get (Enumerate.ball_marginal spec ~ball tau 1) in
  let full_m = Option.get (Enumerate.marginal spec tau 1) in
  checkb "separator makes ball exact" true (Dist.tv ball_m full_m < 1e-12)

(* --- conditional (Glauber kernel) --- *)

let test_conditional_matches_enumeration () =
  let g = Generators.cycle 4 in
  let spec = Models.coloring g ~q:3 in
  let sigma = Config.of_pinning 4 [ (1, 0); (2, 1); (3, 2) ] in
  let cond = Option.get (Spec.conditional spec sigma 0) in
  (* Enumerate with everything else pinned. *)
  let exact = Option.get (Enumerate.marginal spec sigma 0) in
  checkb "glauber conditional = conditional marginal" true (Dist.tv cond exact < 1e-12)

let test_conditional_infeasible () =
  let spec = Models.coloring (Generators.path 2) ~q:1 in
  let sigma = Config.of_pinning 2 [ (1, 0) ] in
  checkb "no valid color" true (Spec.conditional spec sigma 0 = None)

(* --- spec utilities --- *)

let test_weight_and_locality () =
  let g = Generators.path 3 in
  let spec = Models.hardcore g ~lambda:2. in
  checki "pairwise locality" 1 (Spec.locality spec);
  let sigma = Config.of_pinning 3 [ (0, 1); (1, 0); (2, 1) ] in
  checkf "weight λ²" 4. (Spec.weight spec sigma);
  let bad = Config.of_pinning 3 [ (0, 1); (1, 1); (2, 0) ] in
  checkf "violating weight 0" 0. (Spec.weight spec bad)

let test_weight_in () =
  let g = Generators.path 3 in
  let spec = Models.hardcore g ~lambda:2. in
  let sigma = Config.of_pinning 3 [ (0, 1); (1, 0) ] in
  (* Factors inside {0,1}: vertex 0, vertex 1, edge 01. *)
  let w = Spec.weight_in spec ~member:(fun v -> v <= 1) sigma in
  checkf "w_B" 2. w

let test_locally_feasible () =
  let spec = Models.hardcore (Generators.path 3) ~lambda:1. in
  let ok = Config.of_pinning 3 [ (0, 1); (2, 1) ] in
  checkb "non-adjacent occupied ok" true (Spec.locally_feasible spec ok);
  let bad = Config.of_pinning 3 [ (0, 1); (1, 1) ] in
  checkb "adjacent occupied bad" false (Spec.locally_feasible spec bad)

(* --- forest DP vs enumeration --- *)

let random_two_spin rng g =
  let beta = Rng.float rng *. 2. in
  let gamma = Rng.float rng *. 2. in
  let lambda = 0.1 +. (Rng.float rng *. 2.) in
  Models.two_spin g ~beta ~gamma ~lambda

let test_forest_dp_matches_enumeration_trees () =
  let rng = Rng.create 51L in
  for _trial = 1 to 40 do
    let n = 2 + Rng.int rng 8 in
    let g = Generators.random_tree rng n in
    let spec = random_two_spin rng g in
    (* Random pinning of a few vertices. *)
    let tau = Config.empty n in
    for v = 0 to n - 1 do
      if Rng.bernoulli rng 0.3 then tau.(v) <- Rng.int rng 2
    done;
    for v = 0 to n - 1 do
      let e = Enumerate.marginal spec tau v in
      let f = Forest_dp.marginal spec tau v in
      match (e, f) with
      | None, None -> ()
      | Some de, Some df ->
          checkb "engines agree" true (Dist.tv de df < 1e-9)
      | _ -> Alcotest.fail "feasibility disagreement"
    done
  done

let test_forest_dp_ball_on_cycle () =
  (* Balls of radius < n/2 on a cycle induce paths: DP applies and matches
     enumeration. *)
  let rng = Rng.create 52L in
  let g = Generators.cycle 9 in
  let spec = Models.hardcore g ~lambda:1.5 in
  for _trial = 1 to 20 do
    let v = Rng.int rng 9 in
    let ball = Graph.ball g v 3 in
    checkb "supported" true (Forest_dp.supported spec ~ball);
    let tau = Config.empty 9 in
    if Rng.bernoulli rng 0.5 then tau.((v + 3) mod 9) <- Rng.int rng 2;
    let e = Option.get (Enumerate.ball_marginal spec ~ball tau v) in
    let f = Option.get (Forest_dp.ball_marginal spec ~ball tau v) in
    checkb "ball engines agree" true (Dist.tv e f < 1e-9)
  done

let test_forest_dp_disconnected () =
  (* A pinned-empty far component must not disturb the marginal; an
     infeasible far component must kill it. *)
  let g = Graph.create ~n:4 ~edges:[ (0, 1); (2, 3) ] in
  let spec = Models.hardcore g ~lambda:1. in
  let tau = Config.of_pinning 4 [ (2, 1); (3, 1) ] in
  checkb "infeasible elsewhere" true (Forest_dp.marginal spec tau 0 = None);
  checkb "matches enumeration" true (Enumerate.marginal spec tau 0 = None)

(* --- local admissibility --- *)

let test_hardcore_admissible () =
  checkb "hardcore is locally admissible" true
    (Admissible.is_locally_admissible (Models.hardcore (Generators.cycle 4) ~lambda:1.))

let test_coloring_admissibility_threshold () =
  let p3 = Generators.path 3 in
  checkb "3 colors on a path: admissible" true
    (Admissible.is_locally_admissible (Models.coloring p3 ~q:3));
  (* 2 colors on a path: pin the endpoints with equal colors — locally
     feasible but globally infeasible (parity). *)
  checkb "2 colors on a path: not admissible" false
    (Admissible.is_locally_admissible (Models.coloring p3 ~q:2));
  match Admissible.counterexample (Models.coloring p3 ~q:2) with
  | None -> Alcotest.fail "expected counterexample"
  | Some tau ->
      checkb "locally feasible" true (Spec.locally_feasible (Models.coloring p3 ~q:2) tau);
      checkb "infeasible" false (Enumerate.feasible (Models.coloring p3 ~q:2) tau)

let test_greedy_extension () =
  let spec = Models.coloring (Generators.cycle 5) ~q:3 in
  let tau = Config.of_pinning 5 [ (0, 0) ] in
  (match Admissible.greedy_extension spec tau with
  | None -> Alcotest.fail "greedy should succeed"
  | Some sigma ->
      checkb "total" true (Config.is_total sigma);
      checkb "feasible" true (Spec.weight spec sigma > 0.));
  (* Greedy cannot fix a 2-coloring parity trap: endpoints of a 2-path
     pinned to different colors leave no color for the middle vertex. *)
  let spec2 = Models.coloring (Generators.path 3) ~q:2 in
  let trap = Config.of_pinning 3 [ (0, 0); (2, 1) ] in
  checkb "greedy stuck" true (Admissible.greedy_extension spec2 trap = None)

(* --- property tests --- *)

let qcheck_partition_additivity =
  QCheck.Test.make ~name:"Z(tau) = Σ_c Z(tau ∧ v=c)" ~count:60
    QCheck.(pair small_int (int_range 2 6))
    (fun (seed, n) ->
      let rng = Rng.of_int seed in
      let g = Generators.random_tree rng n in
      let spec = random_two_spin rng g in
      let tau = Config.empty n in
      let v = Rng.int rng n in
      let z = Enumerate.partition spec tau in
      let z' =
        List.fold_left
          (fun acc c -> acc +. Enumerate.partition spec (Config.extend tau v c))
          0. (List.init 2 (fun c -> c))
      in
      Float.abs (z -. z') <= 1e-9 *. Float.max 1. z)

let qcheck_marginal_chain_rule =
  QCheck.Test.make ~name:"μ(σ) = Π chain-rule marginals" ~count:40
    QCheck.(pair small_int (int_range 2 5))
    (fun (seed, n) ->
      let rng = Rng.of_int seed in
      let g = Generators.erdos_renyi rng ~n ~p:0.5 in
      let spec = random_two_spin rng g in
      let dist = Enumerate.distribution spec (Config.empty n) in
      List.for_all
        (fun (sigma, p) ->
          let prod = ref 1. in
          let tau = Config.empty n in
          for v = 0 to n - 1 do
            (match Enumerate.marginal spec tau v with
            | Some m -> prod := !prod *. Dist.prob m sigma.(v)
            | None -> prod := 0.);
            tau.(v) <- sigma.(v)
          done;
          Float.abs (p -. !prod) < 1e-9)
        dist)

let qcheck_forest_dp_equiv =
  QCheck.Test.make ~name:"forest DP ≡ enumeration on random trees" ~count:40
    QCheck.(pair small_int (int_range 2 7))
    (fun (seed, n) ->
      let rng = Rng.of_int seed in
      let g = Generators.random_tree rng n in
      let spec = random_two_spin rng g in
      let tau = Config.empty n in
      if n > 1 && Rng.bernoulli rng 0.5 then tau.(Rng.int rng n) <- Rng.int rng 2;
      List.for_all
        (fun v ->
          match (Enumerate.marginal spec tau v, Forest_dp.marginal spec tau v) with
          | None, None -> true
          | Some a, Some b -> Dist.tv a b < 1e-9
          | _ -> false)
        (List.init n (fun v -> v)))

let suite =
  [
    Alcotest.test_case "config basics" `Quick test_config;
    Alcotest.test_case "config conflicts" `Quick test_config_conflict;
    Alcotest.test_case "config diff" `Quick test_config_diff;
    Alcotest.test_case "hardcore counts" `Quick test_hardcore_counts;
    Alcotest.test_case "hardcore partition" `Quick test_hardcore_partition;
    Alcotest.test_case "coloring counts" `Quick test_coloring_counts;
    Alcotest.test_case "matching counts" `Quick test_matching_counts;
    Alcotest.test_case "matching validity" `Quick test_matching_validity;
    Alcotest.test_case "ising partition" `Quick test_ising_partition;
    Alcotest.test_case "potts model" `Quick test_potts;
    QCheck_alcotest.to_alcotest qcheck_greedy_never_fails_when_admissible;
    Alcotest.test_case "hypergraph matching counts" `Quick test_hypergraph_matching_counts;
    Alcotest.test_case "uniqueness thresholds" `Quick test_thresholds;
    Alcotest.test_case "marginal on P2" `Quick test_marginal_path2;
    Alcotest.test_case "conditional marginal" `Quick test_marginal_conditional;
    Alcotest.test_case "infeasible pinning" `Quick test_marginal_infeasible;
    Alcotest.test_case "distribution normalized" `Quick test_distribution_sums_to_one;
    Alcotest.test_case "ball marginal + separator" `Quick
      test_ball_marginal_matches_conditional_independence;
    Alcotest.test_case "glauber conditional" `Quick test_conditional_matches_enumeration;
    Alcotest.test_case "conditional infeasible" `Quick test_conditional_infeasible;
    Alcotest.test_case "weight and locality" `Quick test_weight_and_locality;
    Alcotest.test_case "ball-restricted weight" `Quick test_weight_in;
    Alcotest.test_case "local feasibility" `Quick test_locally_feasible;
    Alcotest.test_case "forest DP = enumeration (trees)" `Quick
      test_forest_dp_matches_enumeration_trees;
    Alcotest.test_case "forest DP on cycle balls" `Quick test_forest_dp_ball_on_cycle;
    Alcotest.test_case "forest DP disconnected" `Quick test_forest_dp_disconnected;
    Alcotest.test_case "hardcore admissible" `Quick test_hardcore_admissible;
    Alcotest.test_case "coloring admissibility" `Quick
      test_coloring_admissibility_threshold;
    Alcotest.test_case "greedy extension" `Quick test_greedy_extension;
    QCheck_alcotest.to_alcotest qcheck_partition_additivity;
    QCheck_alcotest.to_alcotest qcheck_marginal_chain_rule;
    QCheck_alcotest.to_alcotest qcheck_forest_dp_equiv;
  ]
