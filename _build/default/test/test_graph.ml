(* Tests for graphs, generators, line graphs and hypergraphs. *)

module Graph = Ls_graph.Graph
module Generators = Ls_graph.Generators
module Line_graph = Ls_graph.Line_graph
module Hypergraph = Ls_graph.Hypergraph
module Rng = Ls_rng.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_create_basic () =
  let g = Graph.create ~n:4 ~edges:[ (0, 1); (1, 2); (1, 2); (2, 1) ] in
  checki "n" 4 (Graph.n g);
  checki "duplicates collapsed" 2 (Graph.m g);
  checkb "edge" true (Graph.mem_edge g 0 1);
  checkb "symmetric" true (Graph.mem_edge g 1 0);
  checkb "non-edge" false (Graph.mem_edge g 0 3)

let test_create_invalid () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.create: self-loop")
    (fun () -> ignore (Graph.create ~n:2 ~edges:[ (1, 1) ]));
  Alcotest.check_raises "range" (Invalid_argument "Graph.create: endpoint out of range")
    (fun () -> ignore (Graph.create ~n:2 ~edges:[ (0, 2) ]))

let test_path () =
  let g = Generators.path 5 in
  checki "m" 4 (Graph.m g);
  checki "deg end" 1 (Graph.degree g 0);
  checki "deg mid" 2 (Graph.degree g 2);
  checki "diameter" 4 (Graph.diameter g);
  checki "dist" 3 (Graph.dist g 0 3);
  checkb "forest" true (Graph.is_forest g);
  checkb "connected" true (Graph.connected g)

let test_cycle () =
  let g = Generators.cycle 6 in
  checki "m" 6 (Graph.m g);
  checki "max degree" 2 (Graph.max_degree g);
  checki "diameter" 3 (Graph.diameter g);
  checki "dist wraps" 1 (Graph.dist g 0 5);
  checkb "not forest" false (Graph.is_forest g);
  checkb "triangle-free" true (Graph.is_triangle_free g)

let test_triangle () =
  let g = Generators.cycle 3 in
  checkb "has triangle" false (Graph.is_triangle_free g)

let test_complete () =
  let g = Generators.complete 5 in
  checki "m" 10 (Graph.m g);
  checki "diameter" 1 (Graph.diameter g);
  checkb "not triangle free" false (Graph.is_triangle_free g)

let test_grid_torus () =
  let g = Generators.grid 3 4 in
  checki "n" 12 (Graph.n g);
  checki "m" ((3 * 3) + (2 * 4)) (Graph.m g);
  checki "corner degree" 2 (Graph.degree g 0);
  let t = Generators.torus 3 4 in
  checki "torus regular" 4 (Graph.max_degree t);
  Array.iter (fun v -> checki "4-regular" 4 (Graph.degree t v))
    (Array.init (Graph.n t) (fun i -> i))

let test_star_bipartite () =
  let s = Generators.star 6 in
  checki "hub degree" 5 (Graph.degree s 0);
  checki "diameter" 2 (Graph.diameter s);
  let kb = Generators.complete_bipartite 2 3 in
  checki "m" 6 (Graph.m kb);
  checkb "triangle-free" true (Graph.is_triangle_free kb)

let test_hypercube () =
  let g = Generators.hypercube 4 in
  checki "n" 16 (Graph.n g);
  checki "regular" 4 (Graph.max_degree g);
  checki "diameter" 4 (Graph.diameter g)

let test_complete_tree () =
  let g = Generators.complete_tree ~branching:3 ~depth:2 in
  checki "n" 13 (Graph.n g);
  checkb "forest" true (Graph.is_forest g);
  checki "root degree" 3 (Graph.degree g 0);
  checki "depth = eccentricity of root" 2 (Graph.eccentricity g 0)

let test_ball_sphere () =
  let g = Generators.path 7 in
  Alcotest.check (Alcotest.array Alcotest.int) "ball" [| 1; 2; 3; 4; 5 |]
    (Graph.ball g 3 2);
  Alcotest.check (Alcotest.array Alcotest.int) "sphere" [| 1; 5 |]
    (Graph.sphere g 3 2);
  Alcotest.check (Alcotest.array Alcotest.int) "radius 0" [| 3 |] (Graph.ball g 3 0)

let test_distances_from_set () =
  let g = Generators.path 5 in
  let d = Graph.distances_from_set g [ 0; 4 ] in
  Alcotest.check (Alcotest.array Alcotest.int) "multi-source" [| 0; 1; 2; 1; 0 |] d

let test_induced () =
  let g = Generators.cycle 6 in
  let sub, orig = Graph.induced g [| 0; 1; 2; 4 |] in
  checki "n" 4 (Graph.n sub);
  checki "m" 2 (Graph.m sub);
  Alcotest.check (Alcotest.array Alcotest.int) "orig map" [| 0; 1; 2; 4 |] orig;
  checkb "0-1 kept" true (Graph.mem_edge sub 0 1);
  checkb "4 isolated" true (Graph.degree sub 3 = 0)

let test_power () =
  let g = Generators.path 5 in
  let g2 = Graph.power g 2 in
  checkb "dist-2 edge" true (Graph.mem_edge g2 0 2);
  checkb "no dist-3 edge" false (Graph.mem_edge g2 0 3);
  checki "m of P5^2" 7 (Graph.m g2)

let test_components () =
  let g = Graph.create ~n:5 ~edges:[ (0, 1); (3, 4) ] in
  let comp = Graph.components g in
  checkb "0~1" true (comp.(0) = comp.(1));
  checkb "3~4" true (comp.(3) = comp.(4));
  checkb "0!~3" true (comp.(0) <> comp.(3));
  checkb "disconnected" false (Graph.connected g);
  checki "diameter of disconnected" max_int (Graph.diameter g)

let test_complement_union () =
  let g = Generators.path 3 in
  let c = Graph.complement g in
  checki "complement m" 1 (Graph.m c);
  checkb "0-2" true (Graph.mem_edge c 0 2);
  let u = Graph.union g c in
  checki "union is complete" 3 (Graph.m u)

let test_erdos_renyi () =
  let rng = Rng.create 4L in
  let g = Generators.erdos_renyi rng ~n:50 ~p:0.5 in
  let expected = 0.5 *. float_of_int (50 * 49 / 2) in
  checkb "edge count plausible" true
    (Float.abs (float_of_int (Graph.m g) -. expected) < 120.);
  let g0 = Generators.erdos_renyi rng ~n:20 ~p:0. in
  checki "p=0" 0 (Graph.m g0);
  let g1 = Generators.erdos_renyi rng ~n:20 ~p:1. in
  checki "p=1" 190 (Graph.m g1)

let test_random_tree () =
  let rng = Rng.create 8L in
  for n = 1 to 20 do
    let g = Generators.random_tree rng n in
    checki "n" n (Graph.n g);
    checki "edges" (max 0 (n - 1)) (Graph.m g);
    checkb "forest" true (Graph.is_forest g);
    checkb "connected" true (Graph.connected g)
  done

let test_random_regular () =
  let rng = Rng.create 15L in
  List.iter
    (fun (n, d) ->
      let g = Generators.random_regular rng ~n ~d in
      checki "n" n (Graph.n g);
      for v = 0 to n - 1 do
        checki "degree" d (Graph.degree g v)
      done)
    [ (10, 3); (12, 4); (8, 2); (6, 5) ]

let test_random_regular_invalid () =
  let rng = Rng.create 1L in
  Alcotest.check_raises "odd nd"
    (Invalid_argument "Generators.random_regular: n*d must be even") (fun () ->
      ignore (Generators.random_regular rng ~n:5 ~d:3))

let test_random_bipartite_regular () =
  let rng = Rng.create 77L in
  let g = Generators.random_bipartite_regular rng ~n:8 ~d:3 in
  checki "n" 16 (Graph.n g);
  for v = 0 to 15 do
    checki "degree" 3 (Graph.degree g v)
  done;
  (* Bipartite: all edges cross the parts. *)
  Graph.iter_edges g (fun u v -> checkb "crossing" true ((u < 8) <> (v < 8)))

let test_line_graph_path () =
  let lg = Line_graph.make (Generators.path 4) in
  checki "3 edges -> 3 vertices" 3 (Graph.n lg.Line_graph.line);
  checki "line of path is path" 2 (Graph.m lg.Line_graph.line);
  checki "vertex of edge" 0 (Line_graph.vertex_of_edge lg 1 0)

let test_line_graph_star () =
  let lg = Line_graph.make (Generators.star 5) in
  (* Line graph of a star is a complete graph. *)
  checki "K4" 6 (Graph.m lg.Line_graph.line)

let test_line_graph_cycle () =
  let lg = Line_graph.make (Generators.cycle 5) in
  checki "line of C5 is C5" 5 (Graph.m lg.Line_graph.line);
  checki "5 vertices" 5 (Graph.n lg.Line_graph.line)

let test_hypergraph_basic () =
  let h = Hypergraph.create ~n:6 ~hyperedges:[ [ 0; 1; 2 ]; [ 2; 3; 4 ]; [ 4; 5; 0 ] ] in
  checki "rank" 3 (Hypergraph.rank h);
  checki "deg of 2" 2 (Hypergraph.vertex_degree h 2);
  checki "max degree" 2 (Hypergraph.max_vertex_degree h);
  let ig = Hypergraph.intersection_graph h in
  checki "intersection graph is a triangle" 3 (Graph.m ig)

let test_hypergraph_invalid () =
  Alcotest.check_raises "dup vertex"
    (Invalid_argument "Hypergraph.create: duplicate vertex in hyperedge")
    (fun () -> ignore (Hypergraph.create ~n:3 ~hyperedges:[ [ 0; 0 ] ]))

let test_random_linear_hypergraph () =
  let rng = Rng.create 33L in
  let h = Hypergraph.random_linear rng ~n:30 ~k:10 ~rank:3 in
  checki "k hyperedges" 10 (Hypergraph.num_hyperedges h);
  checki "rank" 3 (Hypergraph.rank h);
  (* Linearity: any two hyperedges share at most one vertex. *)
  for i = 0 to 9 do
    for j = i + 1 to 9 do
      let ei = Hypergraph.hyperedge h i and ej = Hypergraph.hyperedge h j in
      let common =
        Array.fold_left
          (fun acc v -> if Array.exists (( = ) v) ej then acc + 1 else acc)
          0 ei
      in
      checkb "linear" true (common <= 1)
    done
  done

let qcheck_bfs_triangle_inequality =
  QCheck.Test.make ~name:"graph distances satisfy the triangle inequality"
    ~count:100
    QCheck.(pair small_int (int_range 4 12))
    (fun (seed, n) ->
      let rng = Rng.of_int seed in
      let g = Generators.erdos_renyi rng ~n ~p:0.4 in
      let ok = ref true in
      for u = 0 to n - 1 do
        let du = Graph.bfs_distances g u in
        for v = 0 to n - 1 do
          let dv = Graph.bfs_distances g v in
          for w = 0 to n - 1 do
            if du.(v) < max_int && dv.(w) < max_int then
              if du.(w) > du.(v) + dv.(w) then ok := false
          done
        done
      done;
      !ok)

let qcheck_power_distances =
  QCheck.Test.make ~name:"G^k edges are exactly the distance<=k pairs" ~count:60
    QCheck.(triple small_int (int_range 3 10) (int_range 1 3))
    (fun (seed, n, k) ->
      let rng = Rng.of_int seed in
      let g = Generators.erdos_renyi rng ~n ~p:0.3 in
      let gk = Graph.power g k in
      let ok = ref true in
      for u = 0 to n - 1 do
        let d = Graph.bfs_distances g u in
        for v = 0 to n - 1 do
          if u <> v then
            let expected = d.(v) <= k in
            if Graph.mem_edge gk u v <> expected then ok := false
        done
      done;
      !ok)

let qcheck_line_graph_degrees =
  QCheck.Test.make ~name:"line-graph degree = deg(u)+deg(v)-2" ~count:80
    QCheck.(pair small_int (int_range 4 10))
    (fun (seed, n) ->
      let rng = Rng.of_int seed in
      let g = Generators.erdos_renyi rng ~n ~p:0.5 in
      QCheck.assume (Graph.m g > 0);
      let lg = Line_graph.make g in
      let ok = ref true in
      Array.iteri
        (fun i (u, v) ->
          let expected = Graph.degree g u + Graph.degree g v - 2 in
          if Graph.degree lg.Line_graph.line i <> expected then ok := false)
        lg.Line_graph.edge_of_vertex;
      !ok)

let suite =
  [
    Alcotest.test_case "create basics" `Quick test_create_basic;
    Alcotest.test_case "create invalid" `Quick test_create_invalid;
    Alcotest.test_case "path" `Quick test_path;
    Alcotest.test_case "cycle" `Quick test_cycle;
    Alcotest.test_case "triangle" `Quick test_triangle;
    Alcotest.test_case "complete" `Quick test_complete;
    Alcotest.test_case "grid and torus" `Quick test_grid_torus;
    Alcotest.test_case "star and bipartite" `Quick test_star_bipartite;
    Alcotest.test_case "hypercube" `Quick test_hypercube;
    Alcotest.test_case "complete tree" `Quick test_complete_tree;
    Alcotest.test_case "ball and sphere" `Quick test_ball_sphere;
    Alcotest.test_case "multi-source BFS" `Quick test_distances_from_set;
    Alcotest.test_case "induced subgraph" `Quick test_induced;
    Alcotest.test_case "power graph" `Quick test_power;
    Alcotest.test_case "components" `Quick test_components;
    Alcotest.test_case "complement and union" `Quick test_complement_union;
    Alcotest.test_case "erdos-renyi" `Quick test_erdos_renyi;
    Alcotest.test_case "random tree (Prufer)" `Quick test_random_tree;
    Alcotest.test_case "random regular" `Quick test_random_regular;
    Alcotest.test_case "random regular invalid" `Quick test_random_regular_invalid;
    Alcotest.test_case "random bipartite regular" `Quick test_random_bipartite_regular;
    Alcotest.test_case "line graph of path" `Quick test_line_graph_path;
    Alcotest.test_case "line graph of star" `Quick test_line_graph_star;
    Alcotest.test_case "line graph of cycle" `Quick test_line_graph_cycle;
    Alcotest.test_case "hypergraph basics" `Quick test_hypergraph_basic;
    Alcotest.test_case "hypergraph invalid" `Quick test_hypergraph_invalid;
    Alcotest.test_case "random linear hypergraph" `Quick test_random_linear_hypergraph;
    QCheck_alcotest.to_alcotest qcheck_bfs_triangle_inequality;
    QCheck_alcotest.to_alcotest qcheck_power_distances;
    QCheck_alcotest.to_alcotest qcheck_line_graph_degrees;
  ]
