(* Tests for approximate inference (Theorem 5.1 algorithm), the boosting
   lemma (Lemma 4.1), and the counting reduction. *)

module Graph = Ls_graph.Graph
module Generators = Ls_graph.Generators
module Dist = Ls_dist.Dist
module Rng = Ls_rng.Rng
module Config = Ls_gibbs.Config
module Models = Ls_gibbs.Models
module Enumerate = Ls_gibbs.Enumerate

open Ls_core

let checkb = Alcotest.check Alcotest.bool
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

let hardcore_cycle n lambda = Instance.unpinned (Models.hardcore (Generators.cycle n) ~lambda)

(* --- instance --- *)

let test_instance_basics () =
  let inst = hardcore_cycle 5 1. in
  Alcotest.check Alcotest.int "n" 5 (Instance.n inst);
  Alcotest.check Alcotest.int "q" 2 (Instance.q inst);
  checkb "feasible" true (Instance.is_feasible inst);
  let inst' = Instance.pin inst 0 1 in
  checkb "pinned" true (Instance.is_pinned inst' 0);
  checkb "original untouched" false (Instance.is_pinned inst 0);
  Alcotest.check (Alcotest.list Alcotest.int) "free" [ 1; 2; 3; 4 ]
    (Instance.free_vertices inst')

let test_exact_dispatcher_agrees () =
  (* The dispatcher must match raw enumeration on a non-forest graph too. *)
  let g = Generators.cycle 6 in
  let inst = Instance.unpinned (Models.hardcore g ~lambda:1.2) in
  for v = 0 to 5 do
    let a = Option.get (Exact.marginal inst v) in
    let b = Option.get (Enumerate.marginal inst.Instance.spec inst.Instance.pinned v) in
    checkb "dispatcher = enumeration" true (Dist.tv a b < 1e-12)
  done

(* --- exact oracle --- *)

let test_exact_oracle () =
  let inst = hardcore_cycle 6 0.8 in
  let oracle = Inference.exact inst in
  let m = oracle.Inference.infer inst 0 in
  let e = Option.get (Exact.marginal inst 0) in
  checkb "oracle = exact" true (Dist.tv m e < 1e-12)

(* --- annulus and extensions --- *)

let test_annulus () =
  let inst = hardcore_cycle 9 1. in
  (* locality 1, t=2: annulus = sphere at distance 3. *)
  let gamma = Inference.annulus inst ~v:0 ~t:2 in
  Alcotest.check (Alcotest.array Alcotest.int) "annulus" [| 3; 6 |] gamma

let test_annulus_excludes_pinned () =
  let inst = Instance.pin (hardcore_cycle 9 1.) 3 0 in
  let gamma = Inference.annulus inst ~v:0 ~t:2 in
  Alcotest.check (Alcotest.array Alcotest.int) "pinned excluded" [| 6 |] gamma

let test_locally_feasible_extension () =
  let inst = Instance.pin (hardcore_cycle 6 1.) 0 1 in
  match Inference.locally_feasible_extension inst ~vertices:[| 1; 2; 3 |] with
  | None -> Alcotest.fail "extension must exist"
  | Some sigma ->
      checkb "keeps pin" true (sigma.(0) = 1);
      checkb "locally feasible" true
        (Ls_gibbs.Spec.locally_feasible inst.Instance.spec sigma);
      checkb "extends all" true
        (List.for_all (fun v -> sigma.(v) <> Config.unassigned) [ 1; 2; 3 ])

let test_extension_needs_backtracking () =
  (* 2-coloring of a path with both endpoints pinned compatibly: the
     oblivious pass may pick a dead end; backtracking must recover. *)
  let g = Generators.path 4 in
  let spec = Models.coloring g ~q:2 in
  let inst = Instance.of_pins spec [ (0, 0); (3, 1) ] in
  match Inference.locally_feasible_extension inst ~vertices:[| 2; 1 |] with
  | None -> Alcotest.fail "a proper 2-coloring exists"
  | Some sigma ->
      checkb "proper" true (Ls_gibbs.Spec.weight spec sigma > 0.)

(* --- SSM inference (Theorem 5.1 algorithm) --- *)

let test_ssm_inference_error_decreases () =
  (* On a hardcore cycle below uniqueness, error must shrink with t. *)
  let inst = hardcore_cycle 12 0.8 in
  let exact = Option.get (Exact.marginal inst 0) in
  let err t = Dist.tv (Inference.ssm_infer ~t inst 0) exact in
  let e1 = err 1 and e3 = err 3 and e5 = err 5 in
  checkb "t=1 imperfect but sane" true (e1 < 0.5);
  checkb "decreasing" true (e3 <= e1 +. 1e-12 && e5 <= e3 +. 1e-12);
  checkb "t=5 accurate" true (e5 < 0.01)

let test_ssm_inference_pinned_vertex () =
  let inst = Instance.pin (hardcore_cycle 8 1.) 2 1 in
  let d = Inference.ssm_infer ~t:2 inst 2 in
  checkf "point mass at pin" 1. (Dist.prob d 1)

let test_ssm_inference_respects_pins () =
  (* Pinning a neighbor occupied forces the vertex out, at any radius. *)
  let inst = Instance.pin (hardcore_cycle 8 1.) 1 1 in
  let d = Inference.ssm_infer ~t:2 inst 0 in
  checkf "forced out" 1. (Dist.prob d 0)

let test_ssm_inference_radius_property () =
  (* Oracle answers must be identical on two instances agreeing within the
     oracle radius — the locality contract the reductions rely on. *)
  let n = 14 in
  let g = Generators.cycle n in
  let spec = Models.hardcore g ~lambda:1. in
  let t = 2 in
  let oracle = Inference.ssm_oracle ~t (Instance.unpinned spec) in
  let r = oracle.Inference.radius in
  checkb "radius covers t + 2l" true (r = t + 2);
  (* Pin a vertex beyond the radius from v=0 in two different ways. *)
  let far = r + 1 in
  let a = Instance.of_pins spec [ (far, 0) ] in
  let b = Instance.of_pins spec [ (far, 1) ] in
  let da = oracle.Inference.infer a 0 and db = oracle.Inference.infer b 0 in
  checkb "identical beyond radius" true (Dist.tv da db < 1e-15)

let test_ssm_inference_on_colorings () =
  let g = Generators.cycle 10 in
  let inst = Instance.unpinned (Models.coloring g ~q:4) in
  let exact = Option.get (Exact.marginal inst 0) in
  let approx = Inference.ssm_infer ~t:4 inst 0 in
  checkb "colorings inference accurate" true (Dist.tv approx exact < 0.01)

let test_ssm_inference_tree () =
  let g = Generators.complete_tree ~branching:2 ~depth:4 in
  let inst = Instance.unpinned (Models.hardcore g ~lambda:0.5) in
  let exact = Option.get (Exact.marginal inst 0) in
  let approx = Inference.ssm_infer ~t:3 inst 0 in
  checkb "tree inference accurate" true (Dist.tv approx exact < 0.02)

(* --- boosting (Lemma 4.1) --- *)

let test_boosting_multiplicative_error () =
  let inst = hardcore_cycle 12 0.8 in
  let aplus = Inference.ssm_oracle ~t:3 inst in
  let boosted = Boosting.boost aplus inst in
  let exact = Option.get (Exact.marginal inst 0) in
  let d = boosted.Inference.infer inst 0 in
  checkb "finite multiplicative error" true (Dist.mult_err d exact < 0.05);
  checkb "radius is 2t + l" true (boosted.Inference.radius = (2 * aplus.Inference.radius) + 1)

let test_boosting_beats_plain_on_mult_error () =
  (* Boosting exists because additive-good inference can still have huge
     multiplicative error near zero-probability values; at equal ball
     budget the boosted answer's mult error must be comparable or better. *)
  let inst = Instance.pin (hardcore_cycle 12 1.5) 1 1 in
  let exact = Option.get (Exact.marginal inst 0) in
  let aplus = Inference.ssm_oracle ~t:2 inst in
  let boosted = Boosting.boost aplus inst in
  let mb = Dist.mult_err (boosted.Inference.infer inst 0) exact in
  checkb "boosted mult err small" true (mb < 0.1);
  (* Zero-probability values must be reproduced exactly (err convention). *)
  checkf "zero stays zero" 0. (Dist.prob (boosted.Inference.infer inst 0) 1)

let test_boosting_with_exact_oracle_is_exact () =
  let inst = hardcore_cycle 8 1. in
  let boosted = Boosting.boost (Inference.exact inst) inst in
  let exact = Option.get (Exact.marginal inst 3) in
  checkb "exact in, exact out" true (Dist.tv (boosted.Inference.infer inst 3) exact < 1e-9)

(* --- counting via self-reduction --- *)

let test_log_partition_exact_oracle () =
  let inst = hardcore_cycle 7 1.3 in
  let oracle = Inference.exact inst in
  let order = Array.init 7 (fun i -> i) in
  let est = Reductions.estimate_log_partition oracle inst ~order in
  let truth = log (Exact.partition inst) in
  checkb "exact oracle gives exact logZ" true (Float.abs (est -. truth) < 1e-9)

let test_log_partition_ssm_oracle () =
  let inst = hardcore_cycle 10 0.8 in
  let oracle = Inference.ssm_oracle ~t:4 inst in
  let order = Array.init 10 (fun i -> i) in
  let est = Reductions.estimate_log_partition oracle inst ~order in
  let truth = log (Exact.partition inst) in
  checkb "approximate logZ close" true (Float.abs (est -. truth) < 0.05)

let test_log_partition_pinned () =
  let inst = Instance.pin (hardcore_cycle 6 1.) 0 1 in
  let oracle = Inference.exact inst in
  let order = Array.init 6 (fun i -> i) in
  let est = Reductions.estimate_log_partition oracle inst ~order in
  let truth = log (Exact.partition inst) in
  checkb "conditional partition" true (Float.abs (est -. truth) < 1e-9)

let qcheck_ssm_oracle_valid_distribution =
  QCheck.Test.make ~name:"SSM oracle always returns a distribution" ~count:40
    QCheck.(triple small_int (int_range 4 10) (int_range 1 3))
    (fun (seed, n, t) ->
      let rng = Rng.of_int seed in
      let g = Generators.random_tree rng n in
      let lambda = 0.3 +. Rng.float rng in
      let inst = Instance.unpinned (Models.hardcore g ~lambda) in
      let d = Inference.ssm_infer ~t inst (Rng.int rng n) in
      Dist.is_normalized d)

let suite =
  [
    Alcotest.test_case "instance basics" `Quick test_instance_basics;
    Alcotest.test_case "exact dispatcher" `Quick test_exact_dispatcher_agrees;
    Alcotest.test_case "exact oracle" `Quick test_exact_oracle;
    Alcotest.test_case "annulus" `Quick test_annulus;
    Alcotest.test_case "annulus excludes pinned" `Quick test_annulus_excludes_pinned;
    Alcotest.test_case "locally feasible extension" `Quick test_locally_feasible_extension;
    Alcotest.test_case "extension backtracking" `Quick test_extension_needs_backtracking;
    Alcotest.test_case "ssm inference error decreases" `Quick
      test_ssm_inference_error_decreases;
    Alcotest.test_case "ssm inference pinned" `Quick test_ssm_inference_pinned_vertex;
    Alcotest.test_case "ssm inference respects pins" `Quick
      test_ssm_inference_respects_pins;
    Alcotest.test_case "oracle radius contract" `Quick test_ssm_inference_radius_property;
    Alcotest.test_case "ssm inference colorings" `Quick test_ssm_inference_on_colorings;
    Alcotest.test_case "ssm inference tree" `Quick test_ssm_inference_tree;
    Alcotest.test_case "boosting mult error" `Quick test_boosting_multiplicative_error;
    Alcotest.test_case "boosting near-zero values" `Quick
      test_boosting_beats_plain_on_mult_error;
    Alcotest.test_case "boosting exact fixpoint" `Quick
      test_boosting_with_exact_oracle_is_exact;
    Alcotest.test_case "logZ exact oracle" `Quick test_log_partition_exact_oracle;
    Alcotest.test_case "logZ ssm oracle" `Quick test_log_partition_ssm_oracle;
    Alcotest.test_case "logZ pinned" `Quick test_log_partition_pinned;
    QCheck_alcotest.to_alcotest qcheck_ssm_oracle_valid_distribution;
  ]
