(* Tests for the distributed JVV exact sampler (Theorem 4.2 / Prop. 4.3).

   The sharpest checks here are symbolic: [Jvv.output_distribution] replays
   the deterministic rejection pass on every possible chain-rule sample and
   returns the exact conditional law of the output, which Lemma 4.8 says
   must equal the target mu^tau whenever no acceptance probability clamps. *)

module Generators = Ls_graph.Generators
module Dist = Ls_dist.Dist
module Empirical = Ls_dist.Empirical
module Rng = Ls_rng.Rng
module Models = Ls_gibbs.Models

open Ls_core

let checkb = Alcotest.check Alcotest.bool
let ident_order n = Array.init n (fun i -> i)

let hardcore_inst n lambda =
  Instance.unpinned (Models.hardcore (Generators.cycle n) ~lambda)

let tv_vs_exact conditional exact =
  let lookup sigma l = try List.assoc sigma l with Not_found -> 0. in
  0.5
  *. (List.fold_left
        (fun acc (sigma, p) -> acc +. Float.abs (p -. lookup sigma conditional))
        0. exact
     +. List.fold_left
          (fun acc (sigma, p) ->
            if List.mem_assoc sigma exact then acc else acc +. p)
          0. conditional)

let test_exact_oracle_never_rejects () =
  (* With exact marginals and epsilon = 0 the acceptance ratio telescopes
     to exactly 1: no rejection, no clamping, output = chain-rule = exact. *)
  let inst = hardcore_inst 6 1.2 in
  let oracle = Inference.exact inst in
  let rng = Rng.create 1L in
  for _i = 1 to 50 do
    let r = Jvv.run oracle ~epsilon:0. inst ~order:(ident_order 6) ~rng in
    checkb "success" true r.Jvv.success;
    checkb "no clamps" true (r.Jvv.clamped = 0);
    checkb "acceptance exactly 1" true (Float.abs (r.Jvv.acceptance_product -. 1.) < 1e-6);
    checkb "feasible" true (Ls_gibbs.Spec.weight inst.Instance.spec r.Jvv.y > 0.)
  done

let test_ground_state_feasible () =
  let inst = hardcore_inst 8 1. in
  let oracle = Inference.ssm_oracle ~t:2 inst in
  let r = Jvv.run oracle ~epsilon:0.01 inst ~order:(ident_order 8) ~rng:(Rng.create 2L) in
  checkb "ground feasible" true (Ls_gibbs.Spec.weight inst.Instance.spec r.Jvv.ground > 0.)

let test_symbolic_exactness_exact_oracle () =
  let inst = hardcore_inst 6 1.7 in
  let oracle = Inference.exact inst in
  let out = Jvv.output_distribution oracle ~epsilon:1e-6 inst ~order:(ident_order 6) in
  checkb "no clamps" true (out.Jvv.total_clamps = 0);
  checkb "success probability high" true (out.Jvv.success_probability > 0.9);
  checkb "conditional law is exactly mu^tau" true
    (tv_vs_exact out.Jvv.conditional (Exact.joint inst) < 1e-9)

let test_symbolic_exactness_coarse_oracle () =
  (* The whole point of Theorem 4.2: even a visibly biased approximate
     inference oracle yields an EXACTLY correct conditional law, as long as
     the slack absorbs the error (no clamps). *)
  let inst = Instance.unpinned (Models.hardcore (Generators.cycle 9) ~lambda:2.5) in
  let oracle = Inference.ssm_oracle ~t:1 inst in
  let order = ident_order 9 in
  (* First certify that the raw chain-rule output is measurably biased. *)
  let mu_hat = Sequential_sampler.output_distribution oracle inst ~order in
  let raw_bias = tv_vs_exact mu_hat (Exact.joint inst) in
  checkb "raw chain rule is biased" true (raw_bias > 1e-3);
  (* Now the rejection-corrected law. *)
  let out = Jvv.output_distribution oracle ~epsilon:0.1 inst ~order in
  checkb "no clamps at this slack" true (out.Jvv.total_clamps = 0);
  checkb "conditional law exact despite oracle bias" true
    (tv_vs_exact out.Jvv.conditional (Exact.joint inst) < 1e-9);
  checkb "rejection pays in success probability" true
    (out.Jvv.success_probability < 0.9)

let test_symbolic_exactness_colorings () =
  (* q = 3 on C4 has weak spatial mixing only; give the oracle a radius
     covering the cycle so its error, and hence the needed slack, is tiny. *)
  let inst = Instance.unpinned (Models.coloring (Generators.cycle 4) ~q:3) in
  let oracle = Inference.ssm_oracle ~t:2 inst in
  let out = Jvv.output_distribution oracle ~epsilon:1e-6 inst ~order:(ident_order 4) in
  checkb "no clamps" true (out.Jvv.total_clamps = 0);
  checkb "success probability high" true (out.Jvv.success_probability > 0.9);
  checkb "uniform over proper colorings" true
    (tv_vs_exact out.Jvv.conditional (Exact.joint inst) < 1e-9)

let test_symbolic_exactness_matchings () =
  let m = Ls_gibbs.Matching.make (Generators.cycle 5) ~lambda:1.3 in
  let inst = Instance.unpinned m.Ls_gibbs.Matching.spec in
  let oracle = Inference.ssm_oracle ~t:2 inst in
  let out = Jvv.output_distribution oracle ~epsilon:1e-6 inst ~order:(ident_order 5) in
  checkb "no clamps" true (out.Jvv.total_clamps = 0);
  checkb "law over matchings exact" true
    (tv_vs_exact out.Jvv.conditional (Exact.joint inst) < 1e-9);
  List.iter
    (fun (sigma, _) ->
      checkb "support is matchings" true (Ls_gibbs.Matching.is_matching m sigma))
    out.Jvv.conditional

let test_symbolic_exactness_pinned () =
  let inst =
    Instance.of_pins (Models.hardcore (Generators.cycle 6) ~lambda:1.) [ (0, 1) ]
  in
  let oracle = Inference.ssm_oracle ~t:1 inst in
  let out = Jvv.output_distribution oracle ~epsilon:0.05 inst ~order:(ident_order 6) in
  checkb "no clamps" true (out.Jvv.total_clamps = 0);
  checkb "conditional target hit" true
    (tv_vs_exact out.Jvv.conditional (Exact.joint inst) < 1e-9);
  List.iter
    (fun (sigma, _) -> checkb "pin in support" true (sigma.(0) = 1))
    out.Jvv.conditional

let test_adaptive_slack_improves_success () =
  (* Ablation: window-sized slack keeps exactness and raises the success
     probability.  On a path, windows near the endpoints are strictly
     smaller than n, so the improvement is strict. *)
  let inst = Instance.unpinned (Models.hardcore (Generators.path 12) ~lambda:1.) in
  let oracle = Inference.ssm_oracle ~t:1 inst in
  let order = ident_order 12 in
  let epsilon = 0.2 in
  let plain = Jvv.output_distribution oracle ~epsilon inst ~order in
  let adaptive = Jvv.output_distribution oracle ~epsilon ~adaptive:true inst ~order in
  checkb "plain no clamps" true (plain.Jvv.total_clamps = 0);
  checkb "adaptive no clamps" true (adaptive.Jvv.total_clamps = 0);
  checkb "plain exact" true (tv_vs_exact plain.Jvv.conditional (Exact.joint inst) < 1e-9);
  checkb "adaptive exact" true
    (tv_vs_exact adaptive.Jvv.conditional (Exact.joint inst) < 1e-9);
  checkb "adaptive succeeds strictly more" true
    (adaptive.Jvv.success_probability > plain.Jvv.success_probability)

let test_success_probability_telescopes () =
  (* With an exact oracle the acceptance products telescope so that
     Pr(success) = slack^k exactly, k the number of free vertices —
     a sharp closed-form invariant of the rejection scheme. *)
  let inst =
    Instance.of_pins (Models.hardcore (Generators.cycle 6) ~lambda:1.4) [ (2, 0) ]
  in
  let oracle = Inference.exact inst in
  let epsilon = 0.003 in
  let k = List.length (Instance.free_vertices inst) in
  let out = Jvv.output_distribution oracle ~epsilon inst ~order:(ident_order 6) in
  let predicted = exp (-3. *. 6. *. epsilon *. float_of_int k) in
  checkb "success = slack^k" true
    (Float.abs (out.Jvv.success_probability -. predicted) < 1e-9)

let test_monte_carlo_agrees_with_symbolic () =
  (* Cross-check the sampling path against the symbolic law. *)
  let inst = hardcore_inst 5 1. in
  let oracle = Inference.exact inst in
  let order = ident_order 5 in
  let rng = Rng.create 3L in
  let emp = Empirical.create () in
  let successes = ref 0 in
  let runs = 20_000 in
  for _i = 1 to runs do
    let r = Jvv.run oracle ~epsilon:1e-6 inst ~order ~rng in
    if r.Jvv.success then begin
      incr successes;
      Empirical.add emp r.Jvv.y
    end
  done;
  let out = Jvv.output_distribution oracle ~epsilon:1e-6 inst ~order in
  checkb "empirical success rate near symbolic" true
    (Float.abs
       ((float_of_int !successes /. float_of_int runs)
       -. out.Jvv.success_probability)
    < 0.02);
  checkb "empirical law near symbolic" true
    (Empirical.tv_against emp out.Jvv.conditional < 0.02)

let test_certified_localities () =
  (* The locality-enforcing run must complete (thereby PROVING the claimed
     per-pass localities t, t, 3t+l) and report them. *)
  let inst = hardcore_inst 8 1. in
  let oracle = Inference.ssm_oracle ~t:1 inst in
  let t = oracle.Inference.radius in
  let c =
    Jvv.run_certified oracle ~epsilon:0.05 inst ~order:(ident_order 8) ~seed:5L
  in
  Alcotest.check (Alcotest.list Alcotest.int) "pass localities"
    [ t; t; (3 * t) + 1 ]
    (List.filter (fun r -> r > 0) c.Jvv.pass_localities);
  checkb "single-pass bound 9t+2l" true
    (c.Jvv.certified_locality = (9 * t) + 2);
  checkb "feasible output" true
    (Ls_gibbs.Spec.weight inst.Instance.spec c.Jvv.result.Jvv.y > 0.)

let test_certified_exactness () =
  (* Conditioned on success, the certified run follows the target too:
     empirical check with an exact oracle (no rejections, no clamps). *)
  let inst = hardcore_inst 5 1.3 in
  let oracle = Inference.exact inst in
  let emp = Empirical.create () in
  let runs = 8_000 in
  let successes = ref 0 in
  for i = 1 to runs do
    let c =
      Jvv.run_certified oracle ~epsilon:1e-9 inst ~order:(ident_order 5)
        ~seed:(Int64.of_int i)
    in
    checkb "no clamps" true (c.Jvv.result.Jvv.clamped = 0);
    if c.Jvv.result.Jvv.success then begin
      incr successes;
      Empirical.add emp c.Jvv.result.Jvv.y
    end
  done;
  checkb "near-certain success" true (!successes > runs - 10);
  checkb "conditional law correct" true
    (Empirical.tv_against emp (Exact.joint inst) < 0.03)

let test_run_local_compiles () =
  let inst = hardcore_inst 8 1. in
  let oracle = Inference.ssm_oracle ~t:1 inst in
  let r, stats = Jvv.run_local oracle ~epsilon:0.05 inst ~seed:17L in
  checkb "rounds charged" true (stats.Ls_local.Scheduler.rounds > 0);
  checkb "feasible output" true (Ls_gibbs.Spec.weight inst.Instance.spec r.Jvv.y > 0.)

let test_run_local_certified () =
  (* End-to-end: scheduler ordering + locality-enforced passes. *)
  let inst = hardcore_inst 8 1. in
  let oracle = Inference.ssm_oracle ~t:1 inst in
  let t = oracle.Inference.radius in
  let c, stats = Jvv.run_local_certified oracle ~epsilon:0.05 inst ~seed:19L in
  checkb "rounds charged" true (stats.Ls_local.Scheduler.rounds > 0);
  checkb "certified 9t+2l" true (c.Jvv.certified_locality = (9 * t) + 2);
  checkb "feasible output" true
    (Ls_gibbs.Spec.weight inst.Instance.spec c.Jvv.result.Jvv.y > 0.)

let test_theory_epsilon () =
  let inst = hardcore_inst 10 1. in
  checkb "1/n^3" true (Float.abs (Jvv.theory_epsilon inst -. 1e-3) < 1e-12)

let test_acceptance_bounds () =
  let inst = hardcore_inst 6 1. in
  let oracle = Inference.exact inst in
  let epsilon = 0.01 in
  let rng = Rng.create 19L in
  let r = Jvv.run oracle ~epsilon inst ~order:(ident_order 6) ~rng in
  let lower = exp (-5. *. 6. *. 6. *. epsilon) in
  checkb "acceptance product lower bound" true (r.Jvv.acceptance_product >= lower -. 1e-12);
  checkb "acceptance product at most 1" true (r.Jvv.acceptance_product <= 1. +. 1e-12)

let qcheck_jvv_outputs_feasible =
  QCheck.Test.make ~name:"JVV outputs are always feasible configurations" ~count:25
    QCheck.(pair small_int (int_range 4 8))
    (fun (seed, n) ->
      let rng = Rng.of_int seed in
      let g = Generators.random_tree rng n in
      let inst = Instance.unpinned (Models.hardcore g ~lambda:(0.5 +. Rng.float rng)) in
      let oracle = Inference.ssm_oracle ~t:2 inst in
      let r = Jvv.run oracle ~epsilon:0.05 inst ~order:(Rng.permutation rng n) ~rng in
      Ls_gibbs.Spec.weight inst.Instance.spec r.Jvv.y > 0.
      && Ls_gibbs.Spec.weight inst.Instance.spec r.Jvv.ground > 0.)

let qcheck_symbolic_exactness_random_trees =
  QCheck.Test.make ~name:"symbolic JVV law = mu^tau on random trees" ~count:12
    QCheck.(pair small_int (int_range 3 6))
    (fun (seed, n) ->
      let rng = Rng.of_int seed in
      let g = Generators.random_tree rng n in
      let inst = Instance.unpinned (Models.hardcore g ~lambda:(0.5 +. Rng.float rng)) in
      let oracle = Inference.ssm_oracle ~t:1 inst in
      let out =
        Jvv.output_distribution oracle ~epsilon:0.1 inst ~order:(ident_order n)
      in
      out.Jvv.total_clamps > 0
      || tv_vs_exact out.Jvv.conditional (Exact.joint inst) < 1e-9)

let suite =
  [
    Alcotest.test_case "exact oracle never rejects" `Quick test_exact_oracle_never_rejects;
    Alcotest.test_case "ground state feasible" `Quick test_ground_state_feasible;
    Alcotest.test_case "symbolic exactness (exact oracle)" `Quick
      test_symbolic_exactness_exact_oracle;
    Alcotest.test_case "symbolic exactness (coarse oracle)" `Slow
      test_symbolic_exactness_coarse_oracle;
    Alcotest.test_case "symbolic exactness (colorings)" `Quick
      test_symbolic_exactness_colorings;
    Alcotest.test_case "symbolic exactness (matchings)" `Quick
      test_symbolic_exactness_matchings;
    Alcotest.test_case "symbolic exactness (pinned)" `Quick
      test_symbolic_exactness_pinned;
    Alcotest.test_case "adaptive slack ablation" `Quick
      test_adaptive_slack_improves_success;
    Alcotest.test_case "success probability telescopes" `Quick
      test_success_probability_telescopes;
    Alcotest.test_case "monte carlo vs symbolic" `Slow
      test_monte_carlo_agrees_with_symbolic;
    Alcotest.test_case "certified localities" `Quick test_certified_localities;
    Alcotest.test_case "certified exactness" `Slow test_certified_exactness;
    Alcotest.test_case "LOCAL compilation" `Quick test_run_local_compiles;
    Alcotest.test_case "LOCAL compilation (certified)" `Quick test_run_local_certified;
    Alcotest.test_case "theory epsilon" `Quick test_theory_epsilon;
    Alcotest.test_case "acceptance bounds" `Quick test_acceptance_bounds;
    QCheck_alcotest.to_alcotest qcheck_jvv_outputs_feasible;
    QCheck_alcotest.to_alcotest qcheck_symbolic_exactness_random_trees;
  ]
