(* Tests for the monomer-dimer DP on forests, validated against the
   line-graph + enumeration route. *)

module Graph = Ls_graph.Graph
module Generators = Ls_graph.Generators
module Rng = Ls_rng.Rng
module Config = Ls_gibbs.Config
module Enumerate = Ls_gibbs.Enumerate
module Matching = Ls_gibbs.Matching
module Matching_dp = Ls_gibbs.Matching_dp
module Line_graph = Ls_graph.Line_graph

let checkb = Alcotest.check Alcotest.bool
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

let test_partition_known_values () =
  (* P3 (2 edges): matchings {}, {e1}, {e2}: Z = 1 + 2λ. *)
  let lambda = 1.5 in
  checkf "P3" (1. +. (2. *. lambda))
    (Matching_dp.partition (Generators.path 3) ~lambda ~pins:[]);
  (* Star K_{1,3}: Z = 1 + 3λ. *)
  checkf "star" (1. +. (3. *. lambda))
    (Matching_dp.partition (Generators.star 4) ~lambda ~pins:[]);
  (* P4: Z = 1 + 3λ + λ². *)
  checkf "P4" (1. +. (3. *. lambda) +. (lambda *. lambda))
    (Matching_dp.partition (Generators.path 4) ~lambda ~pins:[])

let test_partition_with_pins () =
  let g = Generators.path 4 in
  let lambda = 2. in
  (* Force the middle edge in: only the matching {middle}: weight λ. *)
  checkf "middle in" lambda
    (Matching_dp.partition g ~lambda ~pins:[ (1, 2, Matching_dp.In) ]);
  (* Force the middle edge out: matchings over the two end edges: (1+λ)². *)
  checkf "middle out"
    ((1. +. lambda) ** 2.)
    (Matching_dp.partition g ~lambda ~pins:[ (1, 2, Matching_dp.Out) ]);
  (* Two adjacent edges forced in: impossible. *)
  checkf "conflict" 0.
    (Matching_dp.partition g ~lambda
       ~pins:[ (0, 1, Matching_dp.In); (1, 2, Matching_dp.In) ])

let test_conflicting_pins_rejected () =
  let g = Generators.path 3 in
  Alcotest.check_raises "conflict" (Invalid_argument "Matching_dp: conflicting pins")
    (fun () ->
      ignore
        (Matching_dp.partition g ~lambda:1.
           ~pins:[ (0, 1, Matching_dp.In); (1, 0, Matching_dp.Out) ]))

let test_requires_forest () =
  Alcotest.check_raises "cycle rejected"
    (Invalid_argument "Matching_dp: the graph must be a forest") (fun () ->
      ignore (Matching_dp.partition (Generators.cycle 4) ~lambda:1. ~pins:[]))

let test_edge_marginal_p3 () =
  (* P3, λ: Pr(e1 in M) = λ / (1 + 2λ). *)
  let lambda = 0.8 in
  let m =
    Option.get
      (Matching_dp.edge_marginal (Generators.path 3) ~lambda ~pins:[] (0, 1))
  in
  checkf "P3 edge" (lambda /. (1. +. (2. *. lambda))) m

let test_edge_marginal_vs_line_graph_enumeration () =
  (* Cross-engine check: DP on the base tree vs hardcore enumeration on the
     line graph, with random in/out pins. *)
  let rng = Rng.create 61L in
  for _trial = 1 to 30 do
    let n = 3 + Rng.int rng 6 in
    let g = Generators.random_tree rng n in
    let lambda = 0.3 +. (Rng.float rng *. 2.) in
    let m = Matching.make g ~lambda in
    let lg = m.Matching.lg in
    let k = Array.length lg.Line_graph.edge_of_vertex in
    if k > 0 then begin
      (* Random pins on some edges. *)
      let tau = Config.empty k in
      let pins = ref [] in
      Array.iteri
        (fun i (u, v) ->
          if Rng.bernoulli rng 0.25 then begin
            let forced_in = Rng.bernoulli rng 0.3 in
            tau.(i) <- (if forced_in then 1 else 0);
            pins :=
              (u, v, if forced_in then Matching_dp.In else Matching_dp.Out)
              :: !pins
          end)
        lg.Line_graph.edge_of_vertex;
      let e_idx = Rng.int rng k in
      let u, v = lg.Line_graph.edge_of_vertex.(e_idx) in
      let dp = Matching_dp.edge_marginal g ~lambda ~pins:!pins (u, v) in
      let enum =
        match Enumerate.marginal m.Matching.spec tau e_idx with
        | Some d -> Some (Ls_dist.Dist.prob d 1)
        | None -> None
      in
      match (dp, enum) with
      | None, None -> ()
      | Some a, Some b -> checkb "engines agree" true (Float.abs (a -. b) < 1e-9)
      | Some _, None | None, Some _ -> Alcotest.fail "feasibility disagreement"
    end
  done

let test_log_partition_vs_enumeration () =
  let rng = Rng.create 62L in
  for _trial = 1 to 20 do
    let n = 2 + Rng.int rng 6 in
    let g = Generators.random_tree rng n in
    let lambda = 0.5 +. Rng.float rng in
    let m = Matching.make g ~lambda in
    let k = Graph.n m.Matching.lg.Line_graph.line in
    let z_enum = Enumerate.partition m.Matching.spec (Config.empty k) in
    let z_dp = Matching_dp.partition g ~lambda ~pins:[] in
    checkb "partitions agree" true
      (Float.abs (z_enum -. z_dp) < 1e-9 *. Float.max 1. z_enum)
  done

let test_deep_tree_no_overflow () =
  let g = Generators.complete_tree ~branching:2 ~depth:14 in
  let lz = Matching_dp.log_partition g ~lambda:1. ~pins:[] in
  checkb "finite on deep trees" true (Float.is_finite lz && lz > 0.);
  let m = Option.get (Matching_dp.edge_marginal g ~lambda:1. ~pins:[] (0, 1)) in
  checkb "marginal in (0,1)" true (m > 0. && m < 1.)

let qcheck_marginals_sum =
  QCheck.Test.make ~name:"edge marginals sum to expected matching size" ~count:25
    QCheck.(pair small_int (int_range 3 8))
    (fun (seed, n) ->
      let rng = Rng.of_int seed in
      let g = Generators.random_tree rng n in
      let lambda = 0.5 +. Rng.float rng in
      (* Σ_e Pr(e in M) = E|M|; compare with enumeration over the line
         graph hardcore model. *)
      let m = Matching.make g ~lambda in
      let lg = m.Matching.lg in
      let k = Graph.n lg.Line_graph.line in
      let sum_dp =
        Array.fold_left
          (fun acc (u, v) ->
            acc +. Option.get (Matching_dp.edge_marginal g ~lambda ~pins:[] (u, v)))
          0. lg.Line_graph.edge_of_vertex
      in
      let expected_size =
        List.fold_left
          (fun acc (sigma, p) ->
            acc +. (p *. float_of_int (Array.fold_left ( + ) 0 sigma)))
          0.
          (Enumerate.distribution m.Matching.spec (Config.empty k))
      in
      Float.abs (sum_dp -. expected_size) < 1e-9)

let suite =
  [
    Alcotest.test_case "known partition values" `Quick test_partition_known_values;
    Alcotest.test_case "partition with pins" `Quick test_partition_with_pins;
    Alcotest.test_case "conflicting pins" `Quick test_conflicting_pins_rejected;
    Alcotest.test_case "forest required" `Quick test_requires_forest;
    Alcotest.test_case "edge marginal P3" `Quick test_edge_marginal_p3;
    Alcotest.test_case "DP vs line-graph enumeration" `Quick
      test_edge_marginal_vs_line_graph_enumeration;
    Alcotest.test_case "log partition vs enumeration" `Quick
      test_log_partition_vs_enumeration;
    Alcotest.test_case "deep tree stability" `Quick test_deep_tree_no_overflow;
    QCheck_alcotest.to_alcotest qcheck_marginals_sum;
  ]
