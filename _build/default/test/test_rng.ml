(* Tests for the SplitMix64 generator and the sampling primitives. *)

module Rng = Ls_rng.Rng
module Splitmix = Ls_rng.Splitmix

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool

let test_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _i = 1 to 100 do
    check (Alcotest.float 0.) "same stream" (Rng.float a) (Rng.float b)
  done

let test_seeds_differ () =
  let a = Rng.create 1L and b = Rng.create 2L in
  let same = ref 0 in
  for _i = 1 to 64 do
    if Rng.float a = Rng.float b then incr same
  done;
  checkb "different seeds diverge" true (!same < 4)

let test_float_range () =
  let r = Rng.create 7L in
  for _i = 1 to 10_000 do
    let x = Rng.float r in
    checkb "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_float_mean () =
  let r = Rng.create 11L in
  let n = 100_000 in
  let sum = ref 0. in
  for _i = 1 to n do
    sum := !sum +. Rng.float r
  done;
  let mean = !sum /. float_of_int n in
  checkb "mean near 1/2" true (Float.abs (mean -. 0.5) < 0.01)

let test_int_range_and_uniformity () =
  let r = Rng.create 3L in
  let bound = 7 in
  let counts = Array.make bound 0 in
  let n = 70_000 in
  for _i = 1 to n do
    let x = Rng.int r bound in
    checkb "in range" true (x >= 0 && x < bound);
    counts.(x) <- counts.(x) + 1
  done;
  Array.iter
    (fun c ->
      let f = float_of_int c /. float_of_int n in
      checkb "roughly uniform" true (Float.abs (f -. (1. /. 7.)) < 0.01))
    counts

let test_int_invalid () =
  let r = Rng.create 5L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Splitmix.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_split_independence () =
  (* Parent and child streams should be decorrelated: crude correlation
     test on signs. *)
  let parent = Rng.create 123L in
  let child = Rng.split parent in
  let agree = ref 0 in
  let n = 10_000 in
  for _i = 1 to n do
    let a = Rng.float parent > 0.5 and b = Rng.float child > 0.5 in
    if a = b then incr agree
  done;
  let f = float_of_int !agree /. float_of_int n in
  checkb "sign agreement near 1/2" true (Float.abs (f -. 0.5) < 0.03)

let test_streams_distinct () =
  let streams = Rng.streams 99L 16 in
  let firsts = Array.map (fun s -> Rng.float s) streams in
  Array.iteri
    (fun i x ->
      Array.iteri (fun j y -> if i < j then checkb "distinct" true (x <> y)) firsts)
    firsts

let test_streams_reproducible () =
  let a = Rng.streams 5L 4 and b = Rng.streams 5L 4 in
  Array.iteri
    (fun i s -> check (Alcotest.float 0.) "same" (Rng.float s) (Rng.float b.(i)))
    a

let test_bernoulli () =
  let r = Rng.create 17L in
  let n = 50_000 in
  let hits = ref 0 in
  for _i = 1 to n do
    if Rng.bernoulli r 0.3 then incr hits
  done;
  let f = float_of_int !hits /. float_of_int n in
  checkb "p=0.3" true (Float.abs (f -. 0.3) < 0.01)

let test_geometric_mean () =
  let r = Rng.create 19L in
  let n = 50_000 in
  let sum = ref 0 in
  for _i = 1 to n do
    sum := !sum + Rng.geometric r 0.5
  done;
  (* Mean of Geometric(1/2) on {0,1,...} is 1. *)
  let mean = float_of_int !sum /. float_of_int n in
  checkb "mean near 1" true (Float.abs (mean -. 1.) < 0.05)

let test_geometric_p1 () =
  let r = Rng.create 23L in
  for _i = 1 to 100 do
    check Alcotest.int "always 0" 0 (Rng.geometric r 1.)
  done

let test_exponential_mean () =
  let r = Rng.create 29L in
  let n = 50_000 in
  let sum = ref 0. in
  for _i = 1 to n do
    sum := !sum +. Rng.exponential r 2.
  done;
  let mean = !sum /. float_of_int n in
  checkb "mean near 1/2" true (Float.abs (mean -. 0.5) < 0.02)

let test_discrete () =
  let r = Rng.create 31L in
  let w = [| 1.; 2.; 1. |] in
  let counts = Array.make 3 0 in
  let n = 40_000 in
  for _i = 1 to n do
    let x = Rng.discrete r w in
    counts.(x) <- counts.(x) + 1
  done;
  let f i = float_of_int counts.(i) /. float_of_int n in
  checkb "w0" true (Float.abs (f 0 -. 0.25) < 0.01);
  checkb "w1" true (Float.abs (f 1 -. 0.5) < 0.01);
  checkb "w2" true (Float.abs (f 2 -. 0.25) < 0.01)

let test_discrete_zero_weight () =
  let r = Rng.create 37L in
  let w = [| 0.; 1.; 0. |] in
  for _i = 1 to 200 do
    check Alcotest.int "only index 1" 1 (Rng.discrete r w)
  done

let test_permutation () =
  let r = Rng.create 41L in
  for _i = 1 to 50 do
    let p = Rng.permutation r 10 in
    let sorted = Array.copy p in
    Array.sort compare sorted;
    check (Alcotest.array Alcotest.int) "is permutation"
      (Array.init 10 (fun i -> i))
      sorted
  done

let test_shuffle_uniformity () =
  (* All 6 permutations of 3 elements roughly equally likely. *)
  let r = Rng.create 43L in
  let counts = Hashtbl.create 6 in
  let n = 60_000 in
  for _i = 1 to n do
    let a = [| 0; 1; 2 |] in
    Rng.shuffle r a;
    let key = (a.(0) * 100) + (a.(1) * 10) + a.(2) in
    Hashtbl.replace counts key (1 + try Hashtbl.find counts key with Not_found -> 0)
  done;
  check Alcotest.int "six permutations" 6 (Hashtbl.length counts);
  Hashtbl.iter
    (fun _ c ->
      let f = float_of_int c /. float_of_int n in
      checkb "near 1/6" true (Float.abs (f -. (1. /. 6.)) < 0.01))
    counts

let test_splitmix_mix64_nonzero () =
  (* Known weakness check: mixing must not fix zero. *)
  let g = Splitmix.create 0L in
  checkb "zero seed produces output" true (Splitmix.next_int64 g <> 0L)

let qcheck_int_bounds =
  QCheck.Test.make ~name:"Rng.int always within bound" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Rng.of_int seed in
      let x = Rng.int r bound in
      x >= 0 && x < bound)

let qcheck_discrete_support =
  QCheck.Test.make ~name:"Rng.discrete only picks positive-weight indices"
    ~count:300
    QCheck.(pair small_int (list_of_size (Gen.int_range 1 8) (float_range 0. 10.)))
    (fun (seed, ws) ->
      QCheck.assume (List.exists (fun w -> w > 0.) ws);
      let r = Rng.of_int seed in
      let w = Array.of_list ws in
      let i = Rng.discrete r w in
      w.(i) > 0.)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "float mean" `Quick test_float_mean;
    Alcotest.test_case "int range and uniformity" `Quick test_int_range_and_uniformity;
    Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "streams distinct" `Quick test_streams_distinct;
    Alcotest.test_case "streams reproducible" `Quick test_streams_reproducible;
    Alcotest.test_case "bernoulli" `Quick test_bernoulli;
    Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
    Alcotest.test_case "geometric p=1" `Quick test_geometric_p1;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "discrete frequencies" `Quick test_discrete;
    Alcotest.test_case "discrete zero weight" `Quick test_discrete_zero_weight;
    Alcotest.test_case "permutation" `Quick test_permutation;
    Alcotest.test_case "shuffle uniformity" `Quick test_shuffle_uniformity;
    Alcotest.test_case "splitmix zero seed" `Quick test_splitmix_mix64_nonzero;
    QCheck_alcotest.to_alcotest qcheck_int_bounds;
    QCheck_alcotest.to_alcotest qcheck_discrete_support;
  ]
