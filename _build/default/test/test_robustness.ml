(* Failure injection: feed the reductions a deliberately lying inference
   oracle and check that the guarantees degrade exactly the way the
   theorems say — gradually for the chain-rule sampler (Theorem 3.2's
   n·delta coupling bound), and loudly for JVV (clamps flag the moment the
   slack stops covering the oracle error, instead of silent bias). *)

module Generators = Ls_graph.Generators
module Dist = Ls_dist.Dist
module Models = Ls_gibbs.Models

open Ls_core

let checkb = Alcotest.check Alcotest.bool
let ident_order n = Array.init n (fun i -> i)

(* An oracle with a controlled, deterministic, SUPPORT-PRESERVING lie:
   nonzero probabilities get tilted by (1 ± delta) and renormalized, so the
   per-site TV error is at most delta but the chain rule never steps onto
   an infeasible value.  Radius n keeps its locality contract honest. *)
let lying_oracle ~delta inst0 =
  let exact = Inference.exact inst0 in
  {
    Inference.radius = exact.Inference.radius;
    infer =
      (fun inst v ->
        let d = exact.Inference.infer inst v in
        if Instance.is_pinned inst v then d
        else
          Dist.make (Dist.size d) (fun c ->
              let tilt = if c mod 2 = 0 then 1. +. delta else 1. -. delta in
              Dist.prob d c *. tilt));
  }

let tv_support a b =
  let lookup sigma l = try List.assoc sigma l with Not_found -> 0. in
  0.5
  *. (List.fold_left (fun acc (s, p) -> acc +. Float.abs (p -. lookup s a)) 0. b
     +. List.fold_left
          (fun acc (s, p) -> if List.mem_assoc s b then acc else acc +. p)
          0. a)

let test_sampler_degrades_linearly () =
  let n = 6 in
  let inst = Instance.unpinned (Models.hardcore (Generators.cycle n) ~lambda:1.) in
  let exact = Exact.joint inst in
  let out delta =
    tv_support
      (Sequential_sampler.output_distribution (lying_oracle ~delta inst) inst
         ~order:(ident_order n))
      exact
  in
  let e0 = out 0. and e1 = out 0.02 and e2 = out 0.08 in
  checkb "no lie, no error" true (e0 < 1e-12);
  checkb "monotone in the lie" true (e1 < e2);
  (* The Theorem 3.2 coupling bound: output TV <= n * per-site TV.  The
     per-site TV of the mixture is at most delta. *)
  checkb "within n*delta" true (e1 <= (float_of_int n *. 0.02) +. 1e-9);
  checkb "within n*delta (larger lie)" true (e2 <= (float_of_int n *. 0.08) +. 1e-9)

let test_jvv_clamps_flag_insufficient_slack () =
  let n = 6 in
  let inst = Instance.unpinned (Models.hardcore (Generators.cycle n) ~lambda:1.) in
  let delta = 0.1 in
  let oracle = lying_oracle ~delta inst in
  let order = ident_order n in
  (* Slack far below the lie: clamps must fire, and the certificate of
     exactness (zero clamps) is correctly withheld. *)
  let tight = Jvv.output_distribution oracle ~epsilon:1e-4 inst ~order in
  checkb "clamps detected" true (tight.Jvv.total_clamps > 0);
  (* Slack above the lie: no clamps, and exactness returns despite the
     biased oracle — the whole point of Theorem 4.2. *)
  let generous = Jvv.output_distribution oracle ~epsilon:0.12 inst ~order in
  checkb "no clamps with generous slack" true (generous.Jvv.total_clamps = 0);
  checkb "exact despite the lie" true
    (tv_support generous.Jvv.conditional (Exact.joint inst) < 1e-9)

let test_boosting_survives_small_lies () =
  (* Lemma 4.1 tolerates additive error eps/(5qn): a small lie must still
     produce finite multiplicative error; zero-probability values exactly. *)
  let inst =
    Instance.of_pins (Models.hardcore (Generators.cycle 8) ~lambda:1.) [ (1, 1) ]
  in
  let oracle = lying_oracle ~delta:0.005 inst in
  let exact = Option.get (Exact.marginal inst 0) in
  let boosted = Boosting.boost oracle inst in
  let b = boosted.Inference.infer inst 0 in
  checkb "finite multiplicative error" true (Dist.mult_err b exact < 0.05);
  checkb "hard zero preserved" true (Dist.prob b 1 = 0.)

let test_glauber_vs_biased_sampler () =
  (* Sanity for the baseline comparisons: the (unbiased) Glauber chain beats
     a chain-rule sampler driven by a lying oracle, given enough sweeps. *)
  let n = 5 in
  let inst = Instance.unpinned (Models.hardcore (Generators.path n) ~lambda:1.) in
  let exact = Exact.joint inst in
  let biased =
    tv_support
      (Sequential_sampler.output_distribution (lying_oracle ~delta:0.15 inst) inst
         ~order:(ident_order n))
      exact
  in
  let rng = Ls_rng.Rng.create 3L in
  let emp = Ls_dist.Empirical.create () in
  List.iter (Ls_dist.Empirical.add emp)
    (Glauber.sample_many inst ~sweeps:50 ~thin:5 ~count:20_000 ~rng);
  let glauber_err = Ls_dist.Empirical.tv_against emp exact in
  checkb "biased sampler measurably off" true (biased > 0.05);
  checkb "glauber below the biased sampler" true (glauber_err < biased)

let suite =
  [
    Alcotest.test_case "sampler degrades linearly" `Quick test_sampler_degrades_linearly;
    Alcotest.test_case "JVV clamps flag bad slack" `Quick
      test_jvv_clamps_flag_insufficient_slack;
    Alcotest.test_case "boosting survives small lies" `Quick
      test_boosting_survives_small_lies;
    Alcotest.test_case "glauber vs biased sampler" `Slow test_glauber_vs_biased_sampler;
  ]
