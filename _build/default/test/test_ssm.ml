(* Tests for strong spatial mixing measurement (Definition 5.1) and the
   computational phase transition (Section 5). *)

module Generators = Ls_graph.Generators
module Rng = Ls_rng.Rng
module Models = Ls_gibbs.Models

open Ls_core

let checkb = Alcotest.check Alcotest.bool

let test_influence_zero_when_independent () =
  (* Hardcore with lambda on an edgeless graph: boundary cannot matter. *)
  let g = Generators.empty 5 in
  let inst = Instance.unpinned (Models.hardcore g ~lambda:1.) in
  let rng = Rng.create 1L in
  let p = Ssm.influence_at ~rng inst ~v:0 ~d:1 in
  checkb "no sphere, no influence" true (p.Ssm.tv = 0.)

let test_hardcore_cycle_decay () =
  let inst = Instance.unpinned (Models.hardcore (Generators.cycle 14) ~lambda:0.8) in
  let rng = Rng.create 2L in
  let curve = Ssm.decay_curve ~rng inst ~v:0 ~max_d:6 in
  (* Influence decreases with distance and is small by d = 6. *)
  let tvs = List.map (fun p -> p.Ssm.tv) curve in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a +. 1e-12 >= b && decreasing rest
    | _ -> true
  in
  checkb "monotone decay" true (decreasing tvs);
  checkb "decays to small" true (List.nth tvs (List.length tvs - 1) < 0.02);
  checkb "positive at distance 1" true (List.hd tvs > 0.01)

let test_fit_rate_below_one_in_uniqueness () =
  let inst = Instance.unpinned (Models.hardcore (Generators.cycle 16) ~lambda:0.8) in
  let rng = Rng.create 3L in
  let curve = Ssm.decay_curve ~rng inst ~v:0 ~max_d:7 in
  match Ssm.fit_exponential_rate curve with
  | None -> Alcotest.fail "expected a fit"
  | Some alpha -> checkb "exponential decay rate < 1" true (alpha < 0.9)

let test_mult_error_decay_cor52 () =
  (* Corollary 5.2: TV decay and multiplicative-error decay go together for
     locally admissible local Gibbs distributions. *)
  let inst = Instance.unpinned (Models.hardcore (Generators.cycle 14) ~lambda:0.8) in
  let rng = Rng.create 4L in
  let p2 = Ssm.influence_at ~rng inst ~v:0 ~d:2 in
  let p6 = Ssm.influence_at ~rng inst ~v:0 ~d:6 in
  checkb "mult error finite" true (p2.Ssm.mult < infinity);
  checkb "mult error decays too" true (p6.Ssm.mult < p2.Ssm.mult /. 4.)

let test_exhaustive_flag () =
  let inst = Instance.unpinned (Models.hardcore (Generators.cycle 10) ~lambda:1.) in
  let rng = Rng.create 5L in
  let p = Ssm.influence_at ~rng inst ~v:0 ~d:2 in
  (* Sphere has 2 vertices, q=2 -> 4 candidate boundaries, 3 feasible-or-so:
     must be exhaustive. *)
  checkb "exhaustive" true p.Ssm.exhaustive;
  checkb "several boundaries" true (p.Ssm.boundary_configs >= 3)

let test_sampled_mode () =
  (* Force sampling with a tiny exhaustive cap; sampled influence is still
     a lower bound on the worst case, and must be positive at distance 1. *)
  let inst = Instance.unpinned (Models.hardcore (Generators.cycle 12) ~lambda:1.5) in
  let rng = Rng.create 6L in
  let p = Ssm.influence_at ~max_exhaustive:1 ~samples:16 ~rng inst ~v:0 ~d:1 in
  checkb "not exhaustive" true (not p.Ssm.exhaustive);
  checkb "positive influence" true (p.Ssm.tv > 0.)

let test_coloring_ssm () =
  (* q = 4 >= alpha* * Delta on a cycle (Delta = 2): SSM holds. *)
  let inst = Instance.unpinned (Models.coloring (Generators.cycle 12) ~q:4) in
  let rng = Rng.create 7L in
  let p1 = Ssm.influence_at ~rng inst ~v:0 ~d:1 in
  let p4 = Ssm.influence_at ~rng inst ~v:0 ~d:4 in
  checkb "decays" true (p4.Ssm.tv < p1.Ssm.tv /. 4.)

(* --- the phase transition (E6) --- *)

let test_critical_lambda () =
  checkb "b=2 => Delta=3 => lambda_c=4" true
    (Float.abs (Phase_transition.critical_lambda ~branching:2 -. 4.) < 1e-9)

let test_tree_influence_subcritical_decays () =
  let lambda = 0.5 (* << 4 = lambda_c for branching 2 *) in
  let i3 = Phase_transition.tree_root_influence ~branching:2 ~depth:3 ~lambda in
  let i8 = Phase_transition.tree_root_influence ~branching:2 ~depth:8 ~lambda in
  checkb "decays with depth" true (i8 < i3 /. 4.);
  checkb "small deep influence" true (i8 < 0.01)

let test_tree_influence_supercritical_persists () =
  let lambda = 8.0 (* > 4 = lambda_c *) in
  let i3 = Phase_transition.tree_root_influence ~branching:2 ~depth:3 ~lambda in
  let i9 = Phase_transition.tree_root_influence ~branching:2 ~depth:9 ~lambda in
  checkb "long-range correlation persists" true (i9 > 0.05);
  checkb "no fast decay" true (i9 > i3 /. 3.)

let test_lambda_sweep_shape () =
  (* Influence at fixed depth increases across the threshold. *)
  let pts =
    Phase_transition.lambda_sweep ~branching:2 ~depth:6
      ~lambdas:[ 0.5; 2.0; 4.0; 8.0; 16.0 ]
  in
  let influences = List.map snd pts in
  (match (influences, List.rev influences) with
  | low :: _, high :: _ -> checkb "transition visible" true (high > 10. *. low)
  | _ -> Alcotest.fail "sweep empty");
  List.iter
    (fun (_, i) -> checkb "in range" true (i >= 0. && i <= 1.))
    pts

let test_influence_profile_length () =
  let profile = Phase_transition.influence_profile ~branching:2 ~max_depth:4 ~lambda:1. in
  Alcotest.check Alcotest.int "4 depths" 4 (List.length profile);
  List.iteri
    (fun i (d, _) -> Alcotest.check Alcotest.int "depth ids" (i + 1) d)
    profile

let test_theorem51_radius_tracks_ssm () =
  (* Theorem 5.1: inference error at radius t is bounded by the SSM rate at
     distance t; check it pointwise on a cycle below uniqueness. *)
  let inst = Instance.unpinned (Models.hardcore (Generators.cycle 16) ~lambda:0.8) in
  let rng = Rng.create 8L in
  let exact = Option.get (Exact.marginal inst 0) in
  List.iter
    (fun t ->
      let approx = Inference.ssm_infer ~t inst 0 in
      let inference_err = Ls_dist.Dist.tv approx exact in
      let ssm = Ssm.influence_at ~rng inst ~v:0 ~d:t in
      checkb "inference error <= SSM influence + slack" true
        (inference_err <= ssm.Ssm.tv +. 0.02))
    [ 1; 2; 3; 4 ]

let test_theorem51_forward_direction () =
  (* Inference => SSM (the forward direction of Theorem 5.1, made
     executable): any oracle of radius < d answers identically on two
     instances that differ only on the distance-d sphere, so its worst
     error over the pair is at least half their marginal discrepancy. *)
  let g = Generators.cycle 12 in
  let spec = Models.hardcore g ~lambda:2. in
  let d = 3 in
  let pin c = Instance.of_pins spec [ (d, c); (12 - d, c) ] in
  let inst1 = pin 1 and inst0 = pin 0 in
  let m1 = Option.get (Exact.marginal inst1 0) in
  let m0 = Option.get (Exact.marginal inst0 0) in
  let discrepancy = Ls_dist.Dist.tv m1 m0 in
  checkb "boundary matters" true (discrepancy > 0.05);
  (* A radius-2 oracle (< d): Weitz tree truncated at depth 2. *)
  let oracle = Inference.saw_oracle ~depth:(d - 1) inst1 in
  let a1 = oracle.Inference.infer inst1 0 in
  let a0 = oracle.Inference.infer inst0 0 in
  checkb "radius < d => identical answers" true (Ls_dist.Dist.tv a1 a0 < 1e-12);
  let worst_error =
    Float.max (Ls_dist.Dist.tv a1 m1) (Ls_dist.Dist.tv a0 m0)
  in
  checkb "oracle error >= SSM/2" true (worst_error >= (discrepancy /. 2.) -. 1e-9)

let qcheck_influence_bounded =
  QCheck.Test.make ~name:"SSM influence lies in [0,1]" ~count:25
    QCheck.(triple small_int (int_range 4 10) (int_range 1 3))
    (fun (seed, n, d) ->
      let rng = Rng.of_int seed in
      let g = Generators.random_tree rng n in
      let inst = Instance.unpinned (Models.hardcore g ~lambda:(0.5 +. Rng.float rng)) in
      let p = Ssm.influence_at ~rng inst ~v:0 ~d in
      p.Ssm.tv >= 0. && p.Ssm.tv <= 1.)

let suite =
  [
    Alcotest.test_case "no sphere, no influence" `Quick test_influence_zero_when_independent;
    Alcotest.test_case "hardcore cycle decay" `Quick test_hardcore_cycle_decay;
    Alcotest.test_case "fitted rate < 1" `Quick test_fit_rate_below_one_in_uniqueness;
    Alcotest.test_case "multiplicative decay (Cor 5.2)" `Quick test_mult_error_decay_cor52;
    Alcotest.test_case "exhaustive flag" `Quick test_exhaustive_flag;
    Alcotest.test_case "sampled mode" `Quick test_sampled_mode;
    Alcotest.test_case "coloring SSM" `Quick test_coloring_ssm;
    Alcotest.test_case "critical lambda" `Quick test_critical_lambda;
    Alcotest.test_case "subcritical decay" `Quick test_tree_influence_subcritical_decays;
    Alcotest.test_case "supercritical persistence" `Quick
      test_tree_influence_supercritical_persists;
    Alcotest.test_case "lambda sweep" `Quick test_lambda_sweep_shape;
    Alcotest.test_case "influence profile" `Quick test_influence_profile_length;
    Alcotest.test_case "Theorem 5.1 pointwise" `Quick test_theorem51_radius_tracks_ssm;
    Alcotest.test_case "Theorem 5.1 forward direction" `Quick
      test_theorem51_forward_direction;
    QCheck_alcotest.to_alcotest qcheck_influence_bounded;
  ]
