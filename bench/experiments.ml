(* The paper-reproduction harness: one section per experiment E1-E10 of
   DESIGN.md.  Each prints the series the corresponding theorem predicts;
   EXPERIMENTS.md records claim-vs-measurement.

   All row sweeps and Monte-Carlo trial loops fan out over the
   deterministic domain-parallel engine (Ls_par.Par): rows/trials are
   computed in parallel under the engine's seed-splitting contract and
   printed sequentially afterwards, so stdout is bit-for-bit identical at
   every LOCSAMPLE_DOMAINS setting. *)

module Graph = Ls_graph.Graph
module Generators = Ls_graph.Generators
module Hypergraph = Ls_graph.Hypergraph
module Dist = Ls_dist.Dist
module Empirical = Ls_dist.Empirical
module Rng = Ls_rng.Rng
module Par = Ls_par.Par
module Config = Ls_gibbs.Config
module Models = Ls_gibbs.Models
module Matching = Ls_gibbs.Matching
module Matching_dp = Ls_gibbs.Matching_dp
module Hypergraph_matching = Ls_gibbs.Hypergraph_matching
module Scheduler = Ls_local.Scheduler
open Ls_core

let ident_order n = Array.init n (fun i -> i)

let tv_support a b =
  let lookup sigma l = try List.assoc sigma l with Not_found -> 0. in
  0.5
  *. (List.fold_left (fun acc (s, p) -> acc +. Float.abs (p -. lookup s a)) 0. b
     +. List.fold_left
          (fun acc (s, p) -> if List.mem_assoc s b then acc else acc +. p)
          0. a)

let log2 x = log x /. log 2.

(* ------------------------------------------------------------------ *)
(* E1 — Theorem 3.2: approximate inference => approximate sampling.    *)
(* ------------------------------------------------------------------ *)

let e1 () =
  (* Part A: symbolic total-variation error of the chain-rule sampler
     driven by the SSM inference oracle at ball radius t, against the exact
     joint distribution.  Paper shape: output TV <= n * per-site error,
     and the per-site error is the SSM rate, so the output error decays
     geometrically in t. *)
  let n = 10 in
  let inst = Instance.unpinned (Models.hardcore (Generators.cycle n) ~lambda:1.) in
  let exact = Exact.joint inst in
  let rows =
    Par.map_seeded ~seed:7L
      (fun t rng ->
        let oracle = Inference.ssm_oracle ~t inst in
        let out = Sequential_sampler.output_distribution oracle inst ~order:(ident_order n) in
        let tv = tv_support out exact in
        let site = (Ssm.influence_at ~rng inst ~v:0 ~d:t).Ssm.tv in
        [ Table.i t; Table.e site; Table.e (float_of_int n *. site); Table.e tv ])
      [ 1; 2; 3; 4 ]
  in
  Table.print ~title:"E1a  inference => sampling (hardcore C10, lambda=1)"
    ~note:
      "Output TV of the chain-rule sampler vs oracle radius t; the paper's\n\
       coupling bound is n * (per-site error), per-site error = SSM rate."
    ~header:[ "t"; "site_err"; "n*site_err"; "output_tv" ]
    rows;
  (* Part B: LOCAL compilation round complexity, O(r log^2 n). *)
  let rows =
    Par.map_list
      (fun n ->
        let inst = Instance.unpinned (Models.hardcore (Generators.cycle n) ~lambda:1.) in
        let oracle = Inference.ssm_oracle ~t:2 inst in
        let r = Local_sampler.sample oracle inst ~seed:(Int64.of_int (100 + n)) in
        let s = r.Local_sampler.stats in
        let fn = float_of_int n in
        let normalized =
          float_of_int r.Local_sampler.rounds
          /. (float_of_int oracle.Inference.radius *. log2 fn *. log2 fn)
        in
        [
          Table.i n;
          Table.i r.Local_sampler.rounds;
          Table.i s.Scheduler.colors;
          Table.i s.Scheduler.clusters;
          Table.i s.Scheduler.failures;
          Table.f ~digits:2 normalized;
        ])
      [ 16; 32; 64; 128; 256 ]
  in
  Table.print ~title:"E1b  LOCAL rounds of the compiled sampler (hardcore cycles)"
    ~note:
      "Theorem 3.2 predicts O(r log^2 n) rounds; the last column\n\
       (rounds / (r log^2 n)) should stay bounded as n grows."
    ~header:[ "n"; "rounds"; "colors"; "clusters"; "failures"; "rounds/(r*log^2 n)" ]
    rows

(* ------------------------------------------------------------------ *)
(* E2 — Theorem 3.4: approximate sampling => approximate inference.    *)
(* ------------------------------------------------------------------ *)

let e2 () =
  let n = 8 in
  let inst = Instance.unpinned (Models.hardcore (Generators.cycle n) ~lambda:1.) in
  let oracle = Inference.ssm_oracle ~t:2 inst in
  let order = ident_order n in
  let exact_marginal v = Option.get (Exact.marginal inst v) in
  (* Exact reconstruction (the paper's enumeration of the sampler's
     randomness, realized symbolically). *)
  let worst_exact =
    List.fold_left
      (fun acc v ->
        Float.max acc
          (Dist.tv (Reductions.marginal_of_chain_sampler oracle inst ~order v)
             (exact_marginal v)))
      0.
      (List.init n (fun v -> v))
  in
  (* Monte-Carlo reconstruction from black-box sampler runs: draw the
     sampler outputs in parallel (one seed-split stream per run), then
     read every vertex marginal off the same empirical multiset. *)
  let mc samples =
    let emp =
      Empirical.collect ~n:samples ~seed:31L (fun rng ->
          Sequential_sampler.sample oracle inst ~order ~rng)
    in
    List.fold_left
      (fun acc v ->
        Float.max acc
          (Dist.tv
             (Dist.of_weights (Empirical.marginal emp ~v ~q:2))
             (exact_marginal v)))
      0.
      (List.init n (fun v -> v))
  in
  let rows =
    [ "exact reconstruction"; "500 samples"; "2000 samples"; "8000 samples" ]
    |> List.mapi (fun i label ->
           let err =
             match i with
             | 0 -> worst_exact
             | 1 -> mc 500
             | 2 -> mc 2000
             | _ -> mc 8000
           in
           [ label; Table.e err ])
  in
  Table.print ~title:"E2  sampling => inference (hardcore C8, t=2 oracle)"
    ~note:
      "Worst per-vertex marginal TV of the reconstructed inference.  The\n\
       theorem bounds the exact reconstruction by the sampler error delta\n\
       (+ failure mass); Monte Carlo adds the usual statistical noise."
    ~header:[ "reconstruction"; "worst marginal TV" ]
    rows

(* ------------------------------------------------------------------ *)
(* E3 — Lemma 4.1: boosting additive error to multiplicative error.    *)
(* ------------------------------------------------------------------ *)

let e3 () =
  let n = 12 in
  let inst =
    Instance.of_pins (Models.hardcore (Generators.cycle n) ~lambda:1.5) [ (6, 1) ]
  in
  let exact = Option.get (Exact.marginal inst 0) in
  let rows =
    Par.map_list
      (fun t ->
        let aplus = Inference.ssm_oracle ~t inst in
        let boosted = Boosting.boost aplus inst in
        let plain = aplus.Inference.infer inst 0 in
        let b = boosted.Inference.infer inst 0 in
        [
          Table.i t;
          Table.e (Dist.tv plain exact);
          Table.e (Dist.mult_err plain exact);
          Table.e (Dist.tv b exact);
          Table.e (Dist.mult_err b exact);
          Table.i boosted.Inference.radius;
        ])
      [ 1; 2; 3 ]
  in
  Table.print ~title:"E3  boosting lemma (hardcore C12, lambda=1.5, pinned v6=1)"
    ~note:
      "The boosted algorithm A* spends 2t+l radius but converts additive\n\
       (TV) accuracy into multiplicative accuracy (err = max |ln ratio|)."
    ~header:[ "t"; "tv_plain"; "mult_plain"; "tv_boosted"; "mult_boosted"; "radius_boosted" ]
    rows

(* ------------------------------------------------------------------ *)
(* E4 — Theorem 4.2: the distributed JVV exact sampler.                *)
(* ------------------------------------------------------------------ *)

let e4 () =
  (* Part A: slack sweep with a deliberately coarse oracle.  Paper shape:
     once the slack absorbs the oracle error (no clamps), the conditional
     law is exact; more slack only costs success probability. *)
  let n = 9 in
  let inst = Instance.unpinned (Models.hardcore (Generators.cycle n) ~lambda:2.5) in
  let oracle = Inference.ssm_oracle ~t:1 inst in
  let order = ident_order n in
  let exact = Exact.joint inst in
  let raw = Sequential_sampler.output_distribution oracle inst ~order in
  Printf.printf "\nE4: raw chain-rule bias of the t=1 oracle on C9: TV = %s\n"
    (Table.e (tv_support raw exact));
  let rows =
    Par.map_list
      (fun epsilon ->
        let out = Jvv.output_distribution oracle ~epsilon inst ~order in
        [
          Table.f ~digits:3 epsilon;
          Table.i out.Jvv.total_clamps;
          Table.e out.Jvv.success_probability;
          Table.e (tv_support out.Jvv.conditional exact);
        ])
      [ 0.01; 0.05; 0.1; 0.2 ]
  in
  Table.print ~title:"E4a  JVV slack sweep (hardcore C9, lambda=2.5, t=1 oracle)"
    ~note:
      "cond_TV collapses to ~0 exactly when clamps reach 0: rejection\n\
       sampling buys exactness, paying with success probability."
    ~header:[ "epsilon"; "clamps"; "success_prob"; "cond_TV" ]
    rows;
  (* Part B: success probability across n at the paper's error budget,
     with an oracle radius covering the instance (the regime Theorem 4.2
     assumes: oracle error below 1/n^3). *)
  let rows =
    Par.map_list
      (fun n ->
        let inst = Instance.unpinned (Models.hardcore (Generators.cycle n) ~lambda:1.) in
        let oracle = Inference.ssm_oracle ~t:(n / 2) inst in
        let epsilon = Jvv.theory_epsilon inst in
        let out = Jvv.output_distribution oracle ~epsilon inst ~order:(ident_order n) in
        [
          Table.i n;
          Table.e epsilon;
          Table.i out.Jvv.total_clamps;
          Table.f ~digits:4 out.Jvv.success_probability;
          Table.f ~digits:4 (float_of_int n *. (1. -. out.Jvv.success_probability));
          Table.e (tv_support out.Jvv.conditional (Exact.joint inst));
        ])
      [ 6; 8; 10; 12 ]
  in
  Table.print ~title:"E4b  JVV success probability at epsilon = 1/n^3 (hardcore cycles)"
    ~note:
      "Theorem 4.2: failure probability O(1/n), i.e. n*(1-success) bounded;\n\
       conditional law exact (cond_TV ~ 0)."
    ~header:[ "n"; "epsilon"; "clamps"; "success_prob"; "n*(1-succ)"; "cond_TV" ]
    rows;
  (* Part C: ablation — adaptive (window-sized) slack vs the paper's n-sized
     slack, same exactness, better success probability. *)
  let inst = Instance.unpinned (Models.hardcore (Generators.path 12) ~lambda:1.) in
  let oracle = Inference.ssm_oracle ~t:1 inst in
  let order = ident_order 12 in
  let rows =
    Par.map_list
      (fun (label, adaptive) ->
        let out = Jvv.output_distribution oracle ~epsilon:0.2 ~adaptive inst ~order in
        [
          label;
          Table.i out.Jvv.total_clamps;
          Table.e out.Jvv.success_probability;
          Table.e (tv_support out.Jvv.conditional (Exact.joint inst));
        ])
      [ ("paper slack e^{-3n*eps}", false); ("window slack e^{-3|W|*eps}", true) ]
  in
  Table.print ~title:"E4c  slack ablation (hardcore P12, t=1 oracle, eps=0.2)"
    ~header:[ "variant"; "clamps"; "success_prob"; "cond_TV" ]
    rows

(* ------------------------------------------------------------------ *)
(* E5 — Theorem 5.1: inference error tracks strong spatial mixing.     *)
(* ------------------------------------------------------------------ *)

let e5 () =
  (* The transfer-matrix engine makes whole-graph exact marginals cheap on
     cycles, so this sweep runs at n = 64 and distances up to 10. *)
  let n = 64 in
  List.iter
    (fun lambda ->
      let inst = Instance.unpinned (Models.hardcore (Generators.cycle n) ~lambda) in
      let exact = Option.get (Exact.marginal inst 0) in
      let rows =
        Par.map_seeded ~seed:5L
          (fun d rng ->
            let ssm = (Ssm.influence_at ~rng inst ~v:0 ~d).Ssm.tv in
            let inf_err = Dist.tv (Inference.ssm_infer ~t:d inst 0) exact in
            [ Table.i d; Table.e ssm; Table.e inf_err ])
          [ 1; 2; 3; 4; 6; 8; 10 ]
      in
      let curve = Ssm.decay_curve ~rng:(Rng.create 5L) inst ~v:0 ~max_d:8 in
      let rate =
        match Ssm.fit_exponential_rate curve with
        | Some a -> Table.f ~digits:3 a
        | None -> "n/a"
      in
      Table.print
        ~title:
          (Printf.sprintf "E5  SSM vs inference error (hardcore C%d, lambda=%.1f)" n lambda)
        ~note:(Printf.sprintf "Fitted SSM decay rate alpha = %s (per unit distance)." rate)
        ~header:[ "d"; "SSM_tv(d)"; "inference_err(t=d)" ]
        rows)
    [ 0.5; 1.0; 2.0 ];
  (* Engine ablation: the Theorem 5.1 ball algorithm vs Weitz's SAW tree
     at matched information radius. *)
  let inst = Instance.unpinned (Models.hardcore (Generators.cycle n) ~lambda:1.) in
  let exact = Option.get (Exact.marginal inst 0) in
  let rows =
    Par.map_list
      (fun t ->
        let ball = Dist.tv (Inference.ssm_infer ~t inst 0) exact in
        let saw_oracle = Inference.saw_oracle ~depth:t inst in
        let saw = Dist.tv (saw_oracle.Inference.infer inst 0) exact in
        [ Table.i t; Table.e ball; Table.e saw ])
      [ 1; 2; 3; 4; 6; 8 ]
  in
  Table.print ~title:"E5b  inference engine ablation (hardcore C64, lambda=1)"
    ~note:
      "Two implementations of the same oracle contract: annulus-pinned\n\
       ball marginals (Thm 5.1) vs the truncated SAW tree (Weitz).  On a\n\
       cycle the SAW tree IS the annulus-pinned path, so the errors agree\n\
       exactly — a cross-engine consistency check; costs diverge on high-\n\
       degree graphs (ball volume vs Delta^t), see the micro-benches."
    ~header:[ "t"; "err(ball alg)"; "err(SAW tree)" ]
    rows

(* ------------------------------------------------------------------ *)
(* E6 — the computational phase transition (hardcore model).           *)
(* ------------------------------------------------------------------ *)

let e6 () =
  let branching = 2 in
  let lambda_c = Phase_transition.critical_lambda ~branching in
  Printf.printf "\nE6: hardcore on the complete binary tree; lambda_c(Delta=3) = %.3f\n"
    lambda_c;
  let lambdas = [ 1.0; 2.0; 4.0; 8.0; 16.0 ] in
  let rows =
    Par.map_list
      (fun depth ->
        Table.i depth
        :: List.map
             (fun lambda ->
               Table.f ~digits:4
                 (Phase_transition.tree_root_influence ~branching ~depth ~lambda))
             lambdas)
      [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
  in
  Table.print ~title:"E6a  boundary-to-root influence vs depth (rows) and lambda (cols)"
    ~note:
      "Below lambda_c = 4 the influence decays to 0 (uniqueness -> SSM ->\n\
       O(log^3 n) exact sampling); above it persists (the long-range\n\
       correlation behind the Omega(diam) lower bound of [FSY17])."
    ~header:("depth" :: List.map (fun l -> Printf.sprintf "lambda=%.0f" l) lambdas)
    rows;
  let depth = 8 in
  let rows =
    Par.map_list
      (fun ratio ->
        let lambda = ratio *. lambda_c in
        let infl = Phase_transition.tree_root_influence ~branching ~depth ~lambda in
        let deep = Phase_transition.tree_root_influence ~branching ~depth:(depth + 2) ~lambda in
        let status = if ratio < 1. then "uniqueness" else "non-uniqueness" in
        [
          Table.f ~digits:2 ratio;
          Table.f ~digits:3 lambda;
          Table.f ~digits:5 infl;
          Table.f ~digits:5 deep;
          status;
        ])
      [ 0.25; 0.5; 0.75; 1.0; 1.5; 2.0; 4.0 ]
  in
  Table.print ~title:"E6b  influence at depth 8 and 10 across the threshold"
    ~header:[ "lambda/lambda_c"; "lambda"; "influence@8"; "influence@10"; "regime" ]
    rows

(* ------------------------------------------------------------------ *)
(* E7 — matchings: SSM rate 1 - Omega(1/sqrt(Delta)).                  *)
(* ------------------------------------------------------------------ *)

let e7 () =
  (* On the complete (Delta-1)-ary tree, pin the level-d edges all-Out vs a
     maximal valid In set and watch the root edge occupancy. *)
  let influence ~branching ~depth d =
    let g = Generators.complete_tree ~branching ~depth in
    let dist0 = Graph.bfs_distances g 0 in
    let level_edges k =
      List.filter (fun (u, v) -> min dist0.(u) dist0.(v) = k - 1) (Graph.edges g)
    in
    let boundary = level_edges d in
    let all_out = List.map (fun (u, v) -> (u, v, Matching_dp.Out)) boundary in
    (* One In edge per parent: pick the lowest-id child of each parent. *)
    let seen = Hashtbl.create 16 in
    let max_in =
      List.filter_map
        (fun (u, v) ->
          let parent = if dist0.(u) < dist0.(v) then u else v in
          if Hashtbl.mem seen parent then None
          else begin
            Hashtbl.replace seen parent ();
            Some (u, v, Matching_dp.In)
          end)
        boundary
    in
    let root_edge = (0, (Graph.neighbors g 0).(0)) in
    let p pins = Option.get (Matching_dp.edge_marginal g ~lambda:1. ~pins root_edge) in
    Float.abs (p all_out -. p max_in)
  in
  let rows =
    Par.map_list
      (fun delta ->
        let branching = delta - 1 in
        let depth = if branching <= 3 then 7 else 6 in
        let pts =
          List.map
            (fun d -> (float_of_int d, influence ~branching ~depth d))
            [ 2; 3; 4; 5 ]
        in
        (* Least-squares slope of ln(influence) vs d. *)
        let usable = List.filter (fun (_, y) -> y > 0.) pts in
        let n = float_of_int (List.length usable) in
        let sx = List.fold_left (fun a (x, _) -> a +. x) 0. usable in
        let sy = List.fold_left (fun a (_, y) -> a +. log y) 0. usable in
        let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. usable in
        let sxy = List.fold_left (fun a (x, y) -> a +. (x *. log y)) 0. usable in
        let slope = ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx)) in
        let alpha = exp slope in
        [
          Table.i delta;
          Table.f ~digits:4 (influence ~branching ~depth 3);
          Table.f ~digits:4 alpha;
          Table.f ~digits:3 (-.log alpha *. sqrt (float_of_int delta));
        ])
      [ 2; 3; 4; 5; 6 ]
  in
  Table.print ~title:"E7  monomer-dimer SSM rate vs max degree (complete trees, lambda=1)"
    ~note:
      "Paper (via [BGKNT07]): decay rate alpha = 1 - Omega(1/sqrt(Delta)),\n\
       i.e. sqrt(Delta) * (-ln alpha) should stay bounded away from 0 and\n\
       roughly constant => O(sqrt(Delta) log^3 n)-round exact sampling."
    ~header:[ "Delta"; "influence@3"; "alpha (fit)"; "sqrt(Delta)*(-ln alpha)" ]
    rows

(* ------------------------------------------------------------------ *)
(* E8 — colorings of triangle-free graphs, q >= alpha* Delta.          *)
(* ------------------------------------------------------------------ *)

let e8 () =
  let branching = 2 in
  let depth = 6 in
  let g = Generators.complete_tree ~branching ~depth in
  let dist0 = Graph.bfs_distances g 0 in
  let delta = Graph.max_degree g in
  Printf.printf
    "\nE8: colorings of the complete binary tree (Delta=%d, triangle-free);\n\
     alpha* = %.4f so the paper's bound asks q >= %.2f\n"
    delta Models.coloring_alpha_star
    (Models.coloring_alpha_star *. float_of_int delta);
  let influence q d =
    let spec = Models.coloring g ~q in
    let boundary = List.filter (fun v -> dist0.(v) = d) (List.init (Graph.n g) (fun v -> v)) in
    let marginal c =
      let inst =
        Instance.create spec
          ~pinned:(Config.of_pinning (Graph.n g) (List.map (fun v -> (v, c)) boundary))
      in
      Exact.marginal inst 0
    in
    match (marginal 0, marginal 1) with
    | Some a, Some b -> Dist.tv a b
    | _ -> nan
  in
  let rows =
    Par.map_list
      (fun q ->
        let i3 = influence q 3 in
        let i6 = influence q 6 in
        let verdict =
          if float_of_int q >= Models.coloring_alpha_star *. float_of_int delta then
            "q >= alpha*Delta"
          else "below bound"
        in
        [ Table.i q; Table.f ~digits:5 i3; Table.f ~digits:5 i6; verdict ])
      [ 3; 4; 5; 6; 7 ]
  in
  Table.print ~title:"E8  boundary influence on the root color (depth-6 binary tree)"
    ~note:
      "Influence of recoloring the whole depth-d level. Decay strengthens\n\
       with q; q=3 on leaves freezes the parity-like correlations.\n\
       (On trees the true uniqueness threshold is q = Delta + 1; the\n\
       alpha* Delta bound is what the paper cites for all triangle-free\n\
       graphs.)"
    ~header:[ "q"; "influence@3"; "influence@6"; "regime" ]
    rows

(* ------------------------------------------------------------------ *)
(* E9 — anti-ferromagnetic Ising in the uniqueness regime.             *)
(* ------------------------------------------------------------------ *)

let e9 () =
  let branching = 2 in
  let depth = 8 in
  let g = Generators.complete_tree ~branching ~depth in
  let dist0 = Graph.bfs_distances g 0 in
  let leaves =
    List.filter (fun v -> dist0.(v) = depth) (List.init (Graph.n g) (fun v -> v))
  in
  let delta = Graph.max_degree g in
  let beta_c = Models.ising_uniqueness_threshold delta in
  Printf.printf "\nE9: anti-ferro Ising on the depth-8 binary tree; beta_c(Delta=%d) = %.4f\n"
    delta beta_c;
  let influence beta =
    let spec = Models.ising g ~beta ~field:1. in
    let marginal c =
      let inst =
        Instance.create spec
          ~pinned:(Config.of_pinning (Graph.n g) (List.map (fun v -> (v, c)) leaves))
      in
      Option.get (Exact.marginal inst 0)
    in
    Dist.tv (marginal 0) (marginal 1)
  in
  let rows =
    Par.map_list
      (fun beta ->
        let regime = if beta > beta_c then "uniqueness" else "non-uniqueness" in
        [ Table.f ~digits:3 beta; Table.f ~digits:5 (influence beta); regime ])
      [ 0.05; 0.15; 0.25; beta_c; 0.45; 0.6; 0.8 ]
  in
  Table.print ~title:"E9  leaf-to-root influence of the anti-ferro Ising model"
    ~note:"Decay (-> O(log^3 n) sampling) for beta > beta_c; persistence below."
    ~header:[ "beta"; "influence@8"; "regime" ]
    rows;
  (* Anti-ferromagnetic Potts across its tree threshold
     beta_c = (Delta - q)/Delta: same dichotomy, q-state alphabet. *)
  let branching = 4 in
  let depth = 6 in
  let g = Generators.complete_tree ~branching ~depth in
  let dist0 = Graph.bfs_distances g 0 in
  let leaves =
    List.filter (fun v -> dist0.(v) = depth) (List.init (Graph.n g) (fun v -> v))
  in
  let q = 3 in
  let delta = Graph.max_degree g in
  let beta_c = Models.potts_uniqueness_threshold ~q ~delta in
  let influence beta =
    let spec = Models.potts g ~q ~beta in
    let marginal c =
      let inst =
        Instance.create spec
          ~pinned:
            (Config.of_pinning (Graph.n g) (List.map (fun v -> (v, c)) leaves))
      in
      Option.get (Exact.marginal inst 0)
    in
    Dist.tv (marginal 0) (marginal 1)
  in
  let rows =
    Par.map_list
      (fun beta ->
        let regime = if beta > beta_c then "uniqueness" else "non-uniqueness" in
        [ Table.f ~digits:3 beta; Table.f ~digits:5 (influence beta); regime ])
      [ 0.05; 0.2; beta_c; 0.6; 0.9 ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "E9b  anti-ferro Potts q=%d on the %d-ary tree (Delta=%d, beta_c=%.2f)"
         q branching delta beta_c)
    ~header:[ "beta"; "influence@6"; "regime" ]
    rows;
  (* JVV exactness on an Ising cycle inside uniqueness. *)
  let inst = Instance.unpinned (Models.ising (Generators.cycle 8) ~beta:0.6 ~field:1.) in
  let oracle = Inference.ssm_oracle ~t:2 inst in
  let out = Jvv.output_distribution oracle ~epsilon:0.01 inst ~order:(ident_order 8) in
  Printf.printf
    "E9: JVV on Ising C8 (beta=0.6): success=%.4f clamps=%d cond_TV=%s\n"
    out.Jvv.success_probability out.Jvv.total_clamps
    (Table.e (tv_support out.Jvv.conditional (Exact.joint inst)))

(* ------------------------------------------------------------------ *)
(* E10 — weighted hypergraph matchings up to lambda_c(r, Delta).       *)
(* ------------------------------------------------------------------ *)

let e10 () =
  (* A "loose cycle": 3-uniform hyperedges e_i = {2i, 2i+1, 2i+2 mod 2k},
     consecutive hyperedges sharing one vertex, so the intersection graph
     is the cycle C_k — long enough to watch the decay over distances. *)
  let k = 14 in
  let h =
    Hypergraph.create ~n:(2 * k)
      ~hyperedges:
        (List.init k (fun i -> [ 2 * i; (2 * i) + 1; ((2 * i) + 2) mod (2 * k) ]))
  in
  let rank = Hypergraph.rank h in
  (* Reference threshold at Delta = 3, the smallest degree where lambda_c is
     finite (the loose cycle itself has Delta = 2, hence always unique). *)
  let lambda_c = Hypergraph_matching.uniqueness_threshold ~rank ~delta:3 in
  Printf.printf
    "\nE10: loose-cycle 3-uniform hypergraph, %d hyperedges (intersection graph\n\
     = C%d); reference lambda_c(r=%d, Delta=3) = %.4f\n"
    k k rank lambda_c;
  let rows =
    Par.map_seeded ~seed:101L
      (fun ratio rng ->
        let lambda = ratio *. lambda_c in
        let hm = Hypergraph_matching.make h ~lambda in
        let inst = Instance.unpinned hm.Hypergraph_matching.spec in
        let p d = (Ssm.influence_at ~rng inst ~v:0 ~d).Ssm.tv in
        [
          Table.f ~digits:2 ratio;
          Table.f ~digits:4 lambda;
          Table.f ~digits:5 (p 1);
          Table.f ~digits:5 (p 2);
          Table.f ~digits:5 (p 3);
          Table.f ~digits:5 (p 5);
        ])
      [ 0.5; 1.0; 2.0; 8.0 ]
  in
  Table.print
    ~title:"E10  SSM influence on the hypergraph-matching intersection graph"
    ~note:
      "Influence at duality distance d from a hyperedge; decays in d,\n\
       faster at smaller lambda."
    ~header:[ "lambda/lambda_c"; "lambda"; "infl@1"; "infl@2"; "infl@3"; "infl@5" ]
    rows;
  (* Exact sampling sanity on a small hypergraph. *)
  let h_small =
    Hypergraph.create ~n:9
      ~hyperedges:[ [ 0; 1; 2 ]; [ 2; 3; 4 ]; [ 4; 5; 6 ]; [ 6; 7; 8 ]; [ 8; 0; 1 ] ]
  in
  let hm = Hypergraph_matching.make h_small ~lambda:0.8 in
  let inst = Instance.unpinned hm.Hypergraph_matching.spec in
  let oracle = Inference.ssm_oracle ~t:2 inst in
  let out =
    Jvv.output_distribution oracle ~epsilon:0.01 inst
      ~order:(ident_order (Instance.n inst))
  in
  Printf.printf
    "E10: JVV over hypergraph matchings (5 hyperedges): success=%.4f clamps=%d cond_TV=%s\n"
    out.Jvv.success_probability out.Jvv.total_clamps
    (Table.e (tv_support out.Jvv.conditional (Exact.joint inst)))

(* ------------------------------------------------------------------ *)
(* E11 — end-to-end round complexity of exact sampling (Cor. 5.3).     *)
(* ------------------------------------------------------------------ *)

let e11 () =
  (* Corollary 5.3: SSM at rate alpha gives exact sampling in
     O(1/(1-alpha) log^3 n) rounds.  We measure each factor of the
     pipeline on hardcore cycles at lambda = 1 (uniqueness):
       - alpha: fitted SSM rate (E5);
       - t*(n): the radius at which the inference error drops below the
         Theorem 4.2 budget 1/(5 q n^4), i.e. ln(5qn^4)/ln(1/alpha);
       - the JVV locality 9 t* + 2l (Lemma 4.4);
       - the LOCAL rounds actually charged by the Lemma 3.1 scheduler at
         that locality (decomposition + chromatic simulation).
     The last column, rounds / ln^3 n, should stay bounded. *)
  let lambda = 1. in
  let alpha =
    let inst = Instance.unpinned (Models.hardcore (Generators.cycle 64) ~lambda) in
    let rng = Rng.create 3L in
    match Ssm.fit_exponential_rate (Ssm.decay_curve ~rng inst ~v:0 ~max_d:8) with
    | Some a -> a
    | None -> 0.5
  in
  Printf.printf "\nE11: measured SSM rate alpha = %.3f at lambda = %.1f\n" alpha lambda;
  let rows =
    Par.map_list
      (fun n ->
        let fn = float_of_int n in
        let budget = 5. *. 2. *. (fn ** 4.) in
        let t_star =
          int_of_float (Float.ceil (log budget /. log (1. /. alpha)))
        in
        let locality = (9 * t_star) + 2 in
        let g = Generators.cycle n in
        let stats =
          Scheduler.compile ~graph:g ~locality
            ~rng:(Rng.create (Int64.of_int (7 * n)))
            ~run:(fun ~order:_ -> ())
            ()
        in
        let log3 = log fn ** 3. in
        [
          Table.i n;
          Table.i t_star;
          Table.i locality;
          Table.i stats.Scheduler.colors;
          Table.i stats.Scheduler.rounds;
          Table.i stats.Scheduler.failures;
          Table.f ~digits:1 (float_of_int stats.Scheduler.rounds /. log3);
        ])
      [ 32; 64; 128; 256; 512 ]
  in
  Table.print
    ~title:"E11  exact-sampling round complexity (hardcore cycles, lambda=1)"
    ~note:
      "t* = inference radius for the 1/(5qn^4) error budget; locality =\n\
       9t*+2l (the certified JVV single-pass bound); rounds = what the\n\
       Lemma 3.1 scheduler charges at that locality.  Paper shape:\n\
       rounds = O(log^3 n), i.e. the last column stays bounded."
    ~header:[ "n"; "t*"; "locality"; "colors"; "rounds"; "failures"; "rounds/ln^3 n" ]
    rows

(* ------------------------------------------------------------------ *)
(* Ablation: decomposition truncation budgets vs certifiable failures. *)
(* ------------------------------------------------------------------ *)

let decomp_ablation () =
  (* Lemma 3.1 truncates the Linial-Saks construction to keep the round
     count deterministic, paying with locally certifiable failures F''.
     Sweep the phase budget and measure the failure mass and the rounds
     the scheduler would charge. *)
  let module Decomposition = Ls_local.Decomposition in
  let g = Generators.cycle 96 in
  let trials = 40 in
  let rows =
    List.map
      (fun phase_cap ->
        (* Same seed for every phase_cap: common random numbers across the
           sweep, so rows differ only through the budget. *)
        let per_trial =
          Par.run_trials ~n:trials ~seed:1000L (fun rng ->
              let d = Decomposition.linial_saks ~phase_cap g rng in
              ( Array.fold_left (fun a f -> if f then a + 1 else a) 0
                  d.Decomposition.failed,
                d.Decomposition.num_colors,
                Array.fold_left
                  (fun a c -> max a c.Decomposition.radius)
                  0 d.Decomposition.clusters ))
        in
        let failures, colors, radius =
          Array.fold_left
            (fun (f, c, r) (f', c', r') -> (f + f', c + c', max r r'))
            (0, 0, 0) per_trial
        in
        let per_run = float_of_int failures /. float_of_int trials in
        [
          Table.i phase_cap;
          Table.f ~digits:2 per_run;
          Table.f ~digits:4 (per_run /. 96.);
          Table.f ~digits:1 (float_of_int colors /. float_of_int trials);
          Table.i radius;
        ])
      [ 1; 2; 3; 4; 6; Decomposition.default_phase_cap 96 ]
  in
  Table.print
    ~title:"Ablation  Linial-Saks phase budget vs certifiable failures (C96)"
    ~note:
      "Each phase clusters a vertex with probability >= 1/2, so the\n\
       failure mass decays geometrically in the budget; the default cap\n\
       (last row) makes failures vanishing, matching Lemma 3.1's O(1/n^2)."
    ~header:[ "phase_cap"; "failed/run"; "failure rate"; "avg colors"; "max radius" ]
    rows

(* ------------------------------------------------------------------ *)
(* E12 — fault injection: success probability and output TV vs drop    *)
(* rate for the three samplers, under retry/backoff supervision.       *)
(* ------------------------------------------------------------------ *)

(* Overridable from bench/main.exe's --fault-rate / --crash-rate /
   --retry-budget flags; defaults reproduce the table in EXPERIMENTS.md. *)
let e12_rates = ref [ 0.; 0.01; 0.02; 0.05; 0.1; 0.15 ]
let e12_crash_rate = ref 0.01
let e12_retry_budget = ref 3
let e12_max_delay = ref 1
let e12_corrupt_rate = ref 0.
let e12_profile : string option ref = ref None

(* --async MODE from the bench driver: the supervised runs in E12/E13
   flood over the event-driven executor instead of lockstep rounds.  A
   fresh config is built per trial so its mutable stats stay trial-local
   and the tables remain domain-invariant.  In synchronizer mode stdout
   is byte-identical to the synchronous run — the CI determinism diff
   leans on exactly that. *)
let async_mode : string option ref = ref None

let async_cfg () =
  Option.map
    (fun name ->
      Ls_local.Async.make ~mode:(Ls_local.Async.mode_of_string name) ())
    !async_mode

let e12 () =
  let module Faults = Ls_local.Faults in
  let module Resilient = Ls_local.Resilient in
  let module Network = Ls_local.Network in
  let n = 8 in
  let g = Generators.cycle n in
  let inst = Instance.unpinned (Models.hardcore g ~lambda:1.) in
  let oracle = Inference.ssm_oracle ~t:2 inst in
  let exact = Exact.joint inst in
  let epsilon = Jvv.theory_epsilon inst in
  let order = ident_order n in
  let trials = 200 in
  let crash = !e12_crash_rate in
  let policy = Resilient.policy ~retry_budget:!e12_retry_budget () in
  (* The fault seed is the experiment's reproducibility handle: the whole
     table is a pure function of it (and the trial seed), at any domain
     count.  LOCSAMPLE_FAULT_SEED overrides it, like LOCSAMPLE_DOMAINS
     overrides the domain count. *)
  let fault_seed =
    match Sys.getenv_opt "LOCSAMPLE_FAULT_SEED" with
    | Some s -> (try Int64.of_string s with Failure _ -> 2026L)
    | None -> 2026L
  in
  let t = oracle.Inference.radius in
  let rows =
    List.map
      (fun drop ->
        (* One closure computes all three series per trial, each from its
           own payload draw; the per-trial fault plan is seeded from the
           global fault seed XOR a draw from the trial's stream, so it is
           domain-invariant and changes wholesale with LOCSAMPLE_FAULT_SEED. *)
        let per_trial =
          Par.run_trials ~n:trials ~seed:1200L (fun rng ->
              let fseed =
                Int64.logxor
                  (Ls_rng.Splitmix.mix64 fault_seed)
                  (Rng.bits64 rng)
              in
              (* Same preset-merge rule as bin/locsample: the profile fills
                 the fields no flag overrode; the swept drop and the
                 --crash-rate value always win for their own fields. *)
              let pr =
                match !e12_profile with
                | Some name -> Faults.preset name
                | None -> Faults.zero_preset
              in
              let over flag dflt preset = if flag <> dflt then flag else preset in
              let faults =
                Faults.make ~seed:fseed ~drop
                  ~duplicate:pr.Faults.pr_duplicate ~delay:pr.Faults.pr_delay
                  ~max_delay:(over !e12_max_delay 1 pr.Faults.pr_max_delay)
                  ~crash ~recovery:pr.Faults.pr_recovery
                  ~recovery_delay:pr.Faults.pr_recovery_delay
                  ~corrupt:(over !e12_corrupt_rate 0. pr.Faults.pr_corrupt)
                  ~partitions:pr.Faults.pr_partitions
                  ~bursts:pr.Faults.pr_bursts ()
              in
              (* Series 1: unsupervised chain rule over faulty gathering —
                 every node floods its radius-t ball once; any crashed or
                 view-incomplete node sinks the whole run.  The baseline the
                 supervision is measured against. *)
              let chain =
                let net =
                  Network.create ~faults g ~inputs:(Array.make n ())
                    ~seed:(Rng.bits64 rng)
                in
                let views = Network.flood_views net ~radius:t in
                let ok =
                  Array.for_all
                    (fun view -> Network.view_is_complete net view)
                    views
                  && not
                       (Array.exists
                          (fun v -> Network.crashed net v)
                          (Array.init n (fun v -> v)))
                in
                let rng' = Rng.create (Rng.bits64 rng) in
                let sigma =
                  Sequential_sampler.sample oracle inst ~order ~rng:rng'
                in
                (ok, sigma)
              in
              let async = async_cfg () in
              let resilient =
                let r =
                  Local_sampler.sample_resilient oracle ~policy ~faults ?async
                    inst ~seed:(Rng.bits64 rng)
                in
                (r.Local_sampler.success, r.Local_sampler.sigma)
              in
              let jvv =
                let s =
                  Jvv.run_local_resilient oracle ~epsilon ~policy ~faults
                    ?async inst ~seed:(Rng.bits64 rng)
                in
                (s.Jvv.sresult.Jvv.success, s.Jvv.sresult.Jvv.y)
              in
              (chain, resilient, jvv))
        in
        let series pick =
          let emp = Empirical.create () in
          Array.iter
            (fun trial ->
              let ok, sigma = pick trial in
              if ok then Empirical.add emp sigma)
            per_trial;
          let succ =
            float_of_int (Empirical.total emp) /. float_of_int trials
          in
          let tv =
            if Empirical.total emp = 0 then nan
            else Empirical.tv_against emp exact
          in
          (succ, tv)
        in
        let s1, tv1 = series (fun (c, _, _) -> c) in
        let s2, tv2 = series (fun (_, r, _) -> r) in
        let s3, tv3 = series (fun (_, _, j) -> j) in
        [
          Table.f ~digits:3 drop;
          Table.f ~digits:3 s1;
          Table.f ~digits:3 tv1;
          Table.f ~digits:3 s2;
          Table.f ~digits:3 tv2;
          Table.f ~digits:3 s3;
          Table.f ~digits:3 tv3;
        ])
      !e12_rates
  in
  Table.print
    ~title:
      (Printf.sprintf
         "E12  fault injection (hardcore C8; crash=%g, retry budget %d, \
          fault seed %Ld, %d trials%s)"
         crash policy.Resilient.retry_budget fault_seed trials
         (match !e12_profile with
         | Some name -> ", profile " ^ name
         | None -> ""))
    ~note:
      "Message-drop sweep on the flooded LOCAL runtime.  chain = one-shot\n\
       chain-rule sampling over faulty ball collection (no retries);\n\
       resilient = the compiled sampler under retry/backoff supervision;\n\
       jvv = the exact sampler likewise supervised.  Success probabilities\n\
       fall with the drop rate; the TV of the successful runs moves only\n\
       through sample-count noise (fewer successes => noisier estimate):\n\
       faults cost availability, not correctness (Las Vegas)."
    ~header:[ "drop"; "chain_ok"; "chain_tv"; "res_ok"; "res_tv"; "jvv_ok"; "jvv_tv" ]
    rows

(* ------------------------------------------------------------------ *)
(* E13 — crash-recovery vs crash-stop: availability under partitions   *)
(* and node recovery, paired at equal crash rates and retry budgets.   *)
(* ------------------------------------------------------------------ *)

(* Overridable grid, like e12's rate list. *)
let e13_plens = ref [ 2; 4; 6 ]
let e13_rdelays = ref [ 1; 4 ]

let e13 () =
  let module Faults = Ls_local.Faults in
  let module Resilient = Ls_local.Resilient in
  let n = 8 in
  let g = Generators.cycle n in
  let inst = Instance.unpinned (Models.hardcore g ~lambda:1.) in
  let oracle = Inference.ssm_oracle ~t:2 inst in
  let exact = Exact.joint inst in
  let trials = 200 in
  let crash = 0.25 and crash_horizon = 12 in
  let policy = Resilient.policy ~retry_budget:!e12_retry_budget () in
  let fault_seed =
    match Sys.getenv_opt "LOCSAMPLE_FAULT_SEED" with
    | Some s -> (try Int64.of_string s with Failure _ -> 2026L)
    | None -> 2026L
  in
  let rows =
    List.concat_map
      (fun plen ->
        List.map
          (fun rdelay ->
            let per_trial =
              Par.run_trials ~n:trials ~seed:1300L (fun rng ->
                  let fseed =
                    Int64.logxor
                      (Ls_rng.Splitmix.mix64 fault_seed)
                      (Rng.bits64 rng)
                  in
                  (* Both plans share fseed, so the same nodes crash at the
                     same rounds and the partition cuts the same sides; the
                     payload seed is shared too.  The only difference left
                     is whether a crashed node comes back — a paired
                     comparison of crash-stop vs crash-recovery. *)
                  let partitions = [ (2, 2 + plen, 2) ] in
                  let stop_plan =
                    Faults.make ~seed:fseed ~crash ~crash_horizon ~partitions
                      ()
                  in
                  let rec_plan =
                    Faults.make ~seed:fseed ~crash ~crash_horizon ~recovery:1.
                      ~recovery_delay:rdelay ~partitions ()
                  in
                  let pseed = Rng.bits64 rng in
                  let run faults =
                    let async = async_cfg () in
                    let r =
                      Local_sampler.sample_resilient oracle ~policy ~faults
                        ?async inst ~seed:pseed
                    in
                    ( r.Local_sampler.success,
                      r.Local_sampler.sigma,
                      r.Local_sampler.rounds )
                  in
                  (run stop_plan, run rec_plan))
            in
            let series pick =
              let emp = Empirical.create () in
              let rounds = ref 0 in
              Array.iter
                (fun trial ->
                  let ok, sigma, r = pick trial in
                  rounds := !rounds + r;
                  if ok then Empirical.add emp sigma)
                per_trial;
              let succ =
                float_of_int (Empirical.total emp) /. float_of_int trials
              in
              let tv =
                if Empirical.total emp = 0 then nan
                else Empirical.tv_against emp exact
              in
              (succ, tv, float_of_int !rounds /. float_of_int trials)
            in
            let stop_ok, stop_tv, stop_r = series fst in
            let rec_ok, rec_tv, rec_r = series snd in
            [
              Table.i plen;
              Table.i rdelay;
              Table.f ~digits:3 stop_ok;
              Table.f ~digits:3 stop_tv;
              Table.f ~digits:3 rec_ok;
              Table.f ~digits:3 rec_tv;
              Table.f ~digits:1 stop_r;
              Table.f ~digits:1 rec_r;
            ])
          !e13_rdelays)
      !e13_plens
  in
  Table.print
    ~title:
      (Printf.sprintf
         "E13  crash-recovery vs crash-stop (hardcore C8; crash=%g by round \
          %d, retry budget %d, fault seed %Ld, %d trials)"
         crash crash_horizon policy.Resilient.retry_budget fault_seed trials)
    ~note:
      "Partition-length x recovery-delay sweep on the supervised sampler.\n\
       Each trial runs both plans from the same fault seed and payload\n\
       seed, so the same nodes crash at the same rounds and the partition\n\
       cuts the same sides; the only difference is whether crashed nodes\n\
       come back (restoring their checkpoint, missed rounds charged as\n\
       catch-up).  Recovery dominates crash-stop availability at every\n\
       grid point under equal retry budgets; the TV of successful runs\n\
       moves only through sample-count noise (fewer successes => noisier\n\
       estimate): faults cost availability, never correctness.  Round\n\
       columns average over all trials, catch-up charges included —\n\
       recovery still ends up cheaper because attempts stop retrying\n\
       (and stop paying backoff) once the crashed nodes return."
    ~header:
      [
        "plen"; "rdelay"; "stop_ok"; "stop_tv"; "rec_ok"; "rec_tv"; "stop_r";
        "rec_r";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E14 — the asynchronous executor: synchronizer vs adaptive timeouts  *)
(* across the delay-law x clock-skew grid.                             *)
(* ------------------------------------------------------------------ *)

let e14_trials = ref 150

let e14 () =
  let module Faults = Ls_local.Faults in
  let module Resilient = Ls_local.Resilient in
  let module Async = Ls_local.Async in
  let n = 8 in
  let g = Generators.cycle n in
  let inst = Instance.unpinned (Models.hardcore g ~lambda:1.) in
  let oracle = Inference.ssm_oracle ~t:2 inst in
  let exact = Exact.joint inst in
  let trials = !e14_trials in
  let drop = 0.08 and delay = 0.25 and max_delay = 2 and reorder = 0.1 in
  let policy = Resilient.policy ~retry_budget:!e12_retry_budget () in
  let fault_seed =
    match Sys.getenv_opt "LOCSAMPLE_FAULT_SEED" with
    | Some s -> (try Int64.of_string s with Failure _ -> 2026L)
    | None -> 2026L
  in
  let rows =
    List.concat_map
      (fun law ->
        List.map
          (fun skew ->
            let per_trial =
              Par.run_trials ~n:trials ~seed:1400L (fun rng ->
                  let fseed =
                    Int64.logxor
                      (Ls_rng.Splitmix.mix64 fault_seed)
                      (Rng.bits64 rng)
                  in
                  let faults =
                    Faults.make ~seed:fseed ~drop ~delay ~max_delay ~law ~skew
                      ~reorder ()
                  in
                  (* All three executors run the identical trial: same fault
                     plan, same payload seed.  Whatever differs is the
                     executor's doing alone. *)
                  let pseed = Rng.bits64 rng in
                  let run async =
                    let r =
                      Local_sampler.sample_resilient oracle ~policy ~faults
                        ?async inst ~seed:pseed
                    in
                    ( r.Local_sampler.success,
                      r.Local_sampler.sigma,
                      r.Local_sampler.rounds )
                  in
                  let sync = run None in
                  let syn_cfg = Async.make () in
                  let syn = run (Some syn_cfg) in
                  let ad_cfg = Async.make ~mode:Async.Adaptive () in
                  let ad = run (Some ad_cfg) in
                  let s_syn = Async.stats syn_cfg in
                  let s_ad = Async.stats ad_cfg in
                  ( sync,
                    syn,
                    ad,
                    ( s_syn.Async.control_msgs,
                      s_ad.Async.control_msgs,
                      s_ad.Async.retransmits,
                      s_ad.Async.gave_up ) ))
            in
            let series pick =
              let emp = Empirical.create () in
              let rounds = ref 0 in
              Array.iter
                (fun trial ->
                  let ok, sigma, r = pick trial in
                  rounds := !rounds + r;
                  if ok then Empirical.add emp sigma)
                per_trial;
              let succ =
                float_of_int (Empirical.total emp) /. float_of_int trials
              in
              let tv =
                if Empirical.total emp = 0 then nan
                else Empirical.tv_against emp exact
              in
              (succ, tv, float_of_int !rounds /. float_of_int trials)
            in
            let sync_ok, _sync_tv, sync_r = series (fun (s, _, _, _) -> s) in
            let ad_ok, ad_tv, ad_r = series (fun (_, _, a, _) -> a) in
            (* Bit-identity, per trial: the synchronizer's (success, sample,
               rounds) triple must equal the synchronous executor's. *)
            let ident =
              Array.for_all (fun (s, y, _, _) -> s = y) per_trial
            in
            let mean pick =
              float_of_int
                (Array.fold_left
                   (fun acc (_, _, _, c) -> acc + pick c)
                   0 per_trial)
              /. float_of_int trials
            in
            let ctl_syn = mean (fun (a, _, _, _) -> a) in
            let ctl_ad = mean (fun (_, b, _, _) -> b) in
            let rtx_ad = mean (fun (_, _, c, _) -> c) in
            let gup_ad = mean (fun (_, _, _, d) -> d) in
            [
              Faults.law_name law;
              Table.f ~digits:2 skew;
              (if ident then "yes" else "NO");
              Table.f ~digits:3 sync_ok;
              Table.f ~digits:3 ad_ok;
              Table.f ~digits:3 ad_tv;
              Table.f ~digits:1 sync_r;
              Table.f ~digits:1 ad_r;
              Table.f ~digits:1 ctl_syn;
              Table.f ~digits:1 ctl_ad;
              Table.f ~digits:1 rtx_ad;
              Table.f ~digits:1 gup_ad;
            ])
          [ 0.; 0.5 ])
      [ Faults.Uniform; Faults.Exponential; Faults.Heavy ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "E14  async executors: synchronizer vs adaptive (hardcore C8; \
          drop=%g delay=%g(max %d) reorder=%g, retry budget %d, fault seed \
          %Ld, %d trials)"
         drop delay max_delay reorder policy.Resilient.retry_budget fault_seed
         trials)
    ~note:
      "Delay-law x clock-skew grid; every trial runs the SAME fault plan\n\
       and payload seed through three executors.  ident = the\n\
       alpha-synchronizer's (success, sample, rounds) triples are\n\
       bit-identical to the synchronous executor's over all trials —\n\
       asynchrony, delay tails and skew are invisible by construction.\n\
       The adaptive executor instead pays timeouts and retransmissions\n\
       (ctl/rtx columns, per-trial averages) and may give up on a slow\n\
       neighbor (gup), surfacing as an incomplete view and a retry —\n\
       so its ok rate differs while ad_tv stays flat modulo sample\n\
       noise: timing faults cost availability, never correctness.\n\
       Synchronizer control traffic (acks + safes) is the price of\n\
       determinism; rounds match the sync executor exactly."
    ~header:
      [
        "law"; "skew"; "ident"; "ok_sync"; "ok_adpt"; "tv_adpt"; "r_sync";
        "r_adpt"; "ctl_syn"; "ctl_adpt"; "rtx"; "giveup";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E15 — mergeable sketch aggregation: count-min width/depth sweep vs  *)
(* an exact histogram at 10^6 trials, plus the memory-vs-N table.      *)
(* ------------------------------------------------------------------ *)

let e15_grid = ref [ (64, 2); (256, 3); (1024, 4); (4096, 5) ]
let e15_k = ref 64
let e15_trials = ref 1_000_000

let e15 () =
  let module Sketched = Empirical.Sketched in
  let n = 10 in
  let inst =
    Instance.unpinned (Models.hardcore (Generators.cycle n) ~lambda:1.)
  in
  let exact = Exact.joint inst in
  let support = Array.of_list (List.map fst exact) in
  let probs = Array.of_list (List.map snd exact) in
  let sample rng = support.(Rng.discrete rng probs) in
  let trials = !e15_trials in
  let seed = 1500L in
  (* One exact streaming histogram is the referee for every grid row:
     same trials, same seed-split streams, O(support) memory. *)
  let referee = Empirical.collect_streaming ~chunk:65536 ~n:trials ~seed sample in
  let tv_exact = Empirical.tv_against referee exact in
  let rows =
    List.map
      (fun (w, d) ->
        let sk =
          Sketched.collect ~chunk:65536 ~width:w ~depth:d ~k:!e15_k ~n:trials
            ~seed sample
        in
        let eps = Sketched.epsilon sk and delta = Sketched.delta sk in
        let bound =
          int_of_float (ceil (eps *. float_of_int (Sketched.total sk)))
        in
        let under = ref 0 and viol = ref 0 and maxerr = ref 0 in
        Array.iter
          (fun sigma ->
            let err = Sketched.count sk sigma - Empirical.count referee sigma in
            if err < 0 then incr under;
            if err > bound then incr viol;
            if err > !maxerr then maxerr := err)
          support;
        let nkeys = Array.length support in
        let viol_frac = float_of_int !viol /. float_of_int nkeys in
        let ok = !under = 0 && viol_frac <= delta in
        let tv_sk = Sketched.tv_against sk exact in
        [
          Table.i w;
          Table.i d;
          Table.e eps;
          Table.i bound;
          Table.i !under;
          Table.i !maxerr;
          Table.f ~digits:4 viol_frac;
          Table.e delta;
          (if ok then "yes" else "NO");
          Table.e tv_exact;
          Table.e tv_sk;
          Table.e (Float.abs (tv_sk -. tv_exact));
          Table.f ~digits:1 (Sketched.distinct_estimate sk);
          Table.i (String.length (Sketched.serialize sk));
          Sketched.digest sk;
        ])
      !e15_grid
  in
  Table.print
    ~title:
      (Printf.sprintf
         "E15  count-min / bottom-k sketch vs exact histogram (hardcore C10, \
          %d trials, k=%d, seed %Ld)"
         trials !e15_k seed)
    ~note:
      (Printf.sprintf
         "Width/depth sweep of the mergeable sketch pair against an exact\n\
          streaming histogram over the same seed-split trial streams.\n\
          under counts CMS underestimates (the hard invariant: must be 0);\n\
          maxerr is the worst overestimate across all %d support keys and\n\
          must exceed eps*N (column bound) on at most a delta fraction\n\
          (viol <= delta => ok).  tv_sk is the support-restricted TV of\n\
          the sketch, drift its gap to the exact histogram's TV.  kmv is\n\
          the bottom-k distinct estimate (true distinct: %d; k=%d\n\
          saturates, exercising the estimator).  bytes is the serialized\n\
          sketch size — fixed by (w,d,k), independent of trial count —\n\
          and digest is what the CI domain-determinism diff compares."
         (Array.length support) (Array.length support) !e15_k)
    ~header:
      [
        "w"; "d"; "eps"; "bound"; "under"; "maxerr"; "viol"; "delta"; "ok";
        "tv_exact"; "tv_sk"; "drift"; "kmv"; "bytes"; "digest";
      ]
    rows;
  (* Part B: memory accounting.  The sketch's footprint is pinned by
     (w, d, k); only the exact histogram grows with the stream. *)
  let w, d = (1024, 4) in
  let rows_b =
    List.map
      (fun nt ->
        let sk =
          Sketched.collect ~chunk:65536 ~width:w ~depth:d ~k:!e15_k ~n:nt ~seed
            sample
        in
        let emp = Empirical.collect_streaming ~chunk:65536 ~n:nt ~seed sample in
        [
          Table.i nt;
          Table.i (Sketched.total sk);
          Table.i (String.length (Sketched.serialize sk));
          Table.i (Empirical.distinct emp);
          Table.f ~digits:1 (Sketched.distinct_estimate sk);
          Sketched.digest sk;
        ])
      [ 10_000; 100_000; trials ]
  in
  Table.print
    ~title:
      (Printf.sprintf "E15b  sketch memory vs trial count (w=%d d=%d k=%d)" w d
         !e15_k)
    ~note:
      "bytes stays constant while N grows 100x: sketch memory is a\n\
       function of (w, d, k) alone.  distinct/kmv track the true support\n\
       size as the stream saturates it."
    ~header:[ "N"; "total"; "bytes"; "distinct"; "kmv"; "digest" ]
    rows_b

(* ------------------------------------------------------------------ *)
(* E16 — sharded multi-process execution (Ls_shard): bit-identity of   *)
(* the sharded sweep against the in-process engine, and kill -9        *)
(* recovery with restart accounting.                                   *)
(* ------------------------------------------------------------------ *)

let e16_trials = ref 48
let e16_shards = ref [ 1; 2; 4 ]

let e16 () =
  let module Faults = Ls_local.Faults in
  let module Resilient = Ls_local.Resilient in
  let module Exec = Ls_shard.Exec in
  let module Sweep = Ls_shard.Sweep in
  let module Supervisor = Ls_shard.Supervisor in
  let module Metrics = Ls_obs.Metrics in
  (* Worker processes are forked, and the runtime refuses Unix.fork once
     a domain has ever been created — probe with a no-op child so a
     multi-core full-harness run degrades into a deterministic skip line
     instead of an exception. *)
  let fork_ok =
    Par.quiesce ();
    match Unix.fork () with
    | 0 -> Unix._exit 0
    | pid ->
        ignore (Unix.waitpid [] pid);
        true
    | exception Failure _ -> false
  in
  if not fork_ok then
    print_endline
      "E16  sharded execution: skipped (domains already created; run \
       section e16 alone or with --domains 1)"
  else begin
    let n = 6 in
    let inst =
      Instance.unpinned (Models.hardcore (Generators.cycle n) ~lambda:1.)
    in
    let oracle = Inference.ssm_oracle ~t:2 inst in
    let policy = Resilient.policy ~retry_budget:3 () in
    let trials = !e16_trials in
    let seed = 1600L in
    let profiles =
      [
        ("none", fun _rng -> Faults.none);
        ( "flaky",
          fun rng ->
            Faults.make ~seed:(Rng.bits64 rng) ~drop:0.05 ~duplicate:0.04
              ~delay:0.15 ~max_delay:2 ~crash:0.08 ~recovery:0.8
              ~recovery_delay:2 ~corrupt:0.02
              ~partitions:[ (1, 3, 2) ]
              () );
      ]
    in
    let trial faults_of rng =
      let faults = faults_of rng in
      let r =
        Local_sampler.sample_resilient oracle ~policy ~faults inst
          ~seed:(Rng.bits64 rng)
      in
      (r.Local_sampler.success, r.Local_sampler.sigma, r.Local_sampler.rounds)
    in
    let digest results =
      Printf.sprintf "%016Lx"
        (Ls_shard.Frame.digest64 (Marshal.to_string results []))
    in
    let summarize results =
      let succ = ref 0 and rounds = ref 0 in
      Array.iter
        (fun (ok, _, r) ->
          if ok then incr succ;
          rounds := !rounds + r)
        results;
      (!succ, !rounds)
    in
    let ckpt_dir tag =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "locsample-e16-%s-%d" tag (Unix.getpid ()))
    in
    let rm_rf d =
      if Sys.file_exists d then begin
        Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
        Unix.rmdir d
      end
    in
    let was_metrics = Metrics.enabled () in
    Metrics.set_enabled true;
    Fun.protect ~finally:(fun () -> Metrics.set_enabled was_metrics)
    @@ fun () ->
    (* Part A: identity grid.  The in-process engine pinned to one domain
       is the referee; every (profile, shards) cell must reproduce its
       result array byte-for-byte.  Wall-clock goes to stderr, keeping
       stdout diffable across shard counts. *)
    let rows =
      List.concat_map
        (fun (pname, faults_of) ->
          let referee, _ =
            Par.run_trials_timed ~domains:1 ~n:trials ~seed (trial faults_of)
          in
          let succ, rounds = summarize referee in
          List.map
            (fun shards ->
              let dir = ckpt_dir (Printf.sprintf "a-%s-%d" pname shards) in
              let t0 = Unix.gettimeofday () in
              let got, _ =
                Sweep.run_trials_timed
                  (Exec.config ~shards ~dir ())
                  ~n:trials ~seed (trial faults_of)
              in
              rm_rf dir;
              Printf.eprintf "[e16 %s shards=%d: %.2fs wall]\n%!" pname shards
                (Unix.gettimeofday () -. t0);
              [
                pname;
                Table.i shards;
                Table.i trials;
                Table.i succ;
                Table.i rounds;
                digest got;
                (if got = referee then "yes" else "NO");
              ])
            !e16_shards)
        profiles
    in
    Table.print
      ~title:
        (Printf.sprintf
           "E16  sharded sweep vs in-process engine (hardcore C%d, %d \
            trials, seed %Ld)"
           n trials seed)
      ~note:
        "Each row runs the same resilient-sampling sweep across K worker\n\
         OS processes (Ls_shard.Sweep) and byte-compares the result array\n\
         against the single-domain in-process referee.  succ/rounds\n\
         summarize the referee; digest is the sharded run's — identical\n\
         digests across every K (and profile-matched rows of the CI's\n\
         sharded diff) are the determinism contract.  identical is the\n\
         full structural comparison, not just the digest."
      ~header:[ "profile"; "K"; "trials"; "succ"; "rounds"; "digest"; "ident" ]
      rows;
    (* Part B: kill -9 recovery.  Workers are killed (or hung) for real at
       fixed trial coordinates; the supervisor restarts them from their
       checkpoints and the sweep must still land byte-identical on the
       referee.  Restart counts come from the metrics deltas. *)
    let _, flaky = List.nth profiles 1 in
    let referee, _ =
      Par.run_trials_timed ~domains:1 ~n:trials ~seed (trial flaky)
    in
    let kill_policy =
      { Supervisor.default_policy with hang_timeout_ms = 500; hang_probes = 2 }
    in
    let rows_b =
      List.map
        (fun spec ->
          let kills =
            match Exec.parse_kill_specs spec with
            | Ok ks -> ks
            | Error msg -> failwith msg
          in
          let dir = ckpt_dir "b" in
          let before = Metrics.snapshot () in
          let t0 = Unix.gettimeofday () in
          let got, _ =
            Sweep.run_trials_timed
              (Exec.config ~shards:2 ~kills ~policy:kill_policy ~dir ())
              ~n:trials ~seed (trial flaky)
          in
          rm_rf dir;
          Printf.eprintf "[e16 kill %s: %.2fs wall]\n%!" spec
            (Unix.gettimeofday () -. t0);
          let after = Metrics.snapshot () in
          [
            spec;
            Table.i 2;
            Table.i (after.Metrics.shard_spawns - before.Metrics.shard_spawns);
            Table.i
              (after.Metrics.shard_restarts - before.Metrics.shard_restarts);
            digest got;
            (if got = referee then "yes" else "NO");
          ])
        [ "0:0:4:0"; "0:0:4:0,0:0:8:1"; "1:0:30:0:hang" ]
    in
    Table.print
      ~title:"E16b  kill -9 recovery (flaky profile, 2 shards)"
      ~note:
        "SHARD:PHASE:TRIAL[:INCARNATION][:hang] specs, executed for real\n\
         (SIGKILL to self at the trial boundary; hang sleeps until the\n\
         supervisor's liveness probes SIGKILL it).  spawns counts worker\n\
         forks, restarts the supervisor's re-forks after each kill; the\n\
         digest must equal the undisturbed flaky rows above — recovery is\n\
         observable only in the lifecycle columns."
      ~header:[ "kill"; "K"; "spawns"; "restarts"; "digest"; "ident" ]
      rows_b
  end

(* ------------------------------------------------------------------ *)
(* E17 — the serving daemon (Ls_serve): batch coalescing and cache     *)
(* effectiveness in-process (deterministic), then request latency,     *)
(* throughput and admission control against a live daemon.             *)
(* ------------------------------------------------------------------ *)

let e17_requests = ref 96

(* The same deterministic mixed workload the CLI's `locsample query`
   generates: sample/infer/count over a handful of small instances, with
   request seeds drawn from a 4-seed pool so repeats hit the plan cache. *)
let e17_stream ~seed ~n =
  let module Protocol = Ls_serve.Protocol in
  let rng = Rng.create seed in
  let graphs = [| "cycle:24"; "path:16"; "grid:3x4"; "tree:2x3" |] in
  let models = [| "hardcore:0.8"; "ising:0.3"; "coloring:5" |] in
  let seed_pool = Array.init 4 (fun _ -> Rng.bits64 rng) in
  let pick arr = arr.(Rng.int rng (Array.length arr)) in
  List.init n (fun i ->
      let draw = Rng.int rng 10 in
      let op =
        if draw < 6 then Protocol.Sample
        else if draw < 8 then Protocol.Infer
        else Protocol.Count
      in
      {
        Protocol.id = i;
        op;
        seed = pick seed_pool;
        graph = pick graphs;
        model = pick models;
        t = 1;
        engine = "ball";
        trials = (match op with Protocol.Sample -> 1 + Rng.int rng 4 | _ -> 1);
        vertex = Rng.int rng 8;
        deadline_ms = 0;
      })

let e17 () =
  let module Protocol = Ls_serve.Protocol in
  let module Engine = Ls_serve.Engine in
  let module Server = Ls_serve.Server in
  let module Client = Ls_serve.Client in
  let module Metrics = Ls_obs.Metrics in
  let n = !e17_requests in
  let stream = e17_stream ~seed:1700L ~n in
  (* The daemon parts run the server IN THIS PROCESS (so its cache-hit and
     rejection counters flow through Ls_obs here) and fork the load
     clients — which must happen before anything creates a domain, the
     same constraint E16 probes for. *)
  let fork_ok =
    Par.quiesce ();
    match Unix.fork () with
    | 0 -> Unix._exit 0
    | pid ->
        ignore (Unix.waitpid [] pid);
        true
    | exception Failure _ -> false
  in
  let sock tag =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "locsample-e17-%s-%d.sock" tag (Unix.getpid ()))
  in
  let addr_b = Server.Unix_path (sock "b") in
  let addr_c = Server.Unix_path (sock "c") in
  (* Client B: the mixed stream, pipeline 8, per-window latency.  Clients
     write measurements to stderr only — stdout belongs to the parent. *)
  let fork_client_b () =
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
        (match Client.connect_retry ~attempts:600 ~delay_ms:100 addr_b with
        | Error msg ->
            Printf.eprintf "[e17 client b: connect failed: %s]\n%!" msg;
            Unix._exit 1
        | Ok c ->
            let reqs = Array.of_list stream in
            let lat = Array.make n 0. in
            let pipeline = 8 in
            let i = ref 0 in
            let failed = ref false in
            while !i < n do
              let k = min pipeline (n - !i) in
              let t0 = Unix.gettimeofday () in
              for j = !i to !i + k - 1 do
                Client.send c reqs.(j)
              done;
              for _ = 1 to k do
                match Client.recv c with
                | Error msg ->
                    Printf.eprintf "[e17 client b: recv failed: %s]\n%!" msg;
                    failed := true;
                    i := n
                | Ok resp ->
                    let idx = resp.Protocol.rid in
                    if idx >= 0 && idx < n then
                      lat.(idx) <- Unix.gettimeofday () -. t0
              done;
              i := !i + k
            done;
            Client.close c;
            if !failed then Unix._exit 1;
            Array.sort compare lat;
            let pct p = lat.(min (n - 1) (int_of_float (p *. float_of_int n))) in
            Printf.eprintf "[e17 daemon: p50 %.1f ms, p99 %.1f ms]\n%!"
              (1000. *. pct 0.5) (1000. *. pct 0.99);
            Unix._exit 0)
    | pid -> pid
  in
  (* Client C: a 32-deep burst into a queue bound of 2 — the admission
     smoke.  Overload verdicts are counted by the parent's Ls_obs
     metrics; the client only checks every request is answered. *)
  let burst = 32 in
  let fork_client_c () =
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
        (match Client.connect_retry ~attempts:1200 ~delay_ms:100 addr_c with
        | Error msg ->
            Printf.eprintf "[e17 client c: connect failed: %s]\n%!" msg;
            Unix._exit 1
        | Ok c ->
            let reqs =
              List.init burst (fun i ->
                  {
                    Protocol.id = i;
                    op = Protocol.Sample;
                    seed = 17L;
                    graph = "cycle:24";
                    model = "hardcore:0.8";
                    t = 1;
                    engine = "ball";
                    trials = 2;
                    vertex = 0;
                    deadline_ms = 0;
                  })
            in
            List.iter (fun r -> Client.send c r) reqs;
            let ok = ref 0 in
            for _ = 1 to burst do
              match Client.recv c with Ok _ -> incr ok | Error _ -> ()
            done;
            Client.close c;
            Unix._exit (if !ok = burst then 0 else 1))
    | pid -> pid
  in
  (* Fork both load clients NOW, before part A touches the engine: once
     the pool has created a domain the runtime refuses Unix.fork for the
     rest of the process.  The clients retry connecting for minutes, so
     they simply wait out part A. *)
  let clients =
    if fork_ok then Some (fork_client_b (), fork_client_c ()) else None
  in
  let was_metrics = Metrics.enabled () in
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled was_metrics)
  @@ fun () ->
  (* Part A — in-process engine, fixed batch sizes: every column is a
     pure function of the request stream (the batching the daemon applies
     depends on arrival timing, so it is measured in part B instead). *)
  let rows_a =
    List.map
      (fun batch_size ->
        let e = Engine.create () in
        let before = Metrics.snapshot () in
        let t0 = Unix.gettimeofday () in
        let rec go = function
          | [] -> ()
          | reqs ->
              let k = min batch_size (List.length reqs) in
              let batch = List.filteri (fun i _ -> i < k) reqs in
              let rest = List.filteri (fun i _ -> i >= k) reqs in
              ignore (Engine.submit_batch e batch);
              go rest
        in
        go stream;
        let wall = Unix.gettimeofday () -. t0 in
        Printf.eprintf "[e17 batch=%d: %.2fs wall, %.0f req/s]\n%!" batch_size
          wall
          (float_of_int n /. Float.max wall 1e-9);
        let after = Metrics.snapshot () in
        let d f = f after - f before in
        let hits = d (fun m -> m.Metrics.serve_cache_hits) in
        let misses = d (fun m -> m.Metrics.serve_cache_misses) in
        [
          Table.i batch_size;
          Table.i (d (fun m -> m.Metrics.serve_requests));
          Table.i (d (fun m -> m.Metrics.serve_batches));
          Table.i (d (fun m -> m.Metrics.serve_coalesced));
          Table.i hits;
          Table.i misses;
          Table.f ~digits:3
            (float_of_int hits /. Float.max (float_of_int (hits + misses)) 1.);
        ])
      [ 1; 8; 32 ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "E17  serving engine: batching and cache effect (%d-request mixed \
          stream, seed 1700)"
         n)
    ~note:
      "The same request stream submitted through Ls_serve.Engine at fixed\n\
       batch sizes.  Larger batches coalesce same-instance requests onto\n\
       one compiled model and share one parallel fan-out; the plan/instance\n\
       LRUs absorb the 4-seed request pool.  Counters flow through\n\
       Ls_obs.Metrics; every column is a pure function of the stream, so\n\
       this table is domain-count invariant."
    ~header:[ "batch"; "req"; "batches"; "coalesced"; "hits"; "miss"; "hitrate" ]
    rows_a;
  (* Parts B and C need the forked clients. *)
  match clients with
  | None ->
      print_endline
        "E17b serving daemon: skipped (domains already created; run section \
         e17 alone)"
  | Some (pid_b, pid_c) ->
    (* Part B — live daemon, ample queue: latency/throughput measured by
       the client (stderr); the daemon's own counters land here because
       the server loop runs in this process. *)
    let before = Metrics.snapshot () in
    let t0 = Unix.gettimeofday () in
    let stats_b =
      Server.run
        ~cfg:
          (Server.config ~address:addr_b ~queue_bound:64 ~batch_max:32
             ~max_requests:n ())
        ()
    in
    let wall_b = Unix.gettimeofday () -. t0 in
    Printf.eprintf "[e17 daemon: %.2fs wall, %.0f req/s, %d batches]\n%!"
      wall_b
      (float_of_int n /. Float.max wall_b 1e-9)
      stats_b.Protocol.st_batches;
    let after = Metrics.snapshot () in
    let hits = after.Metrics.serve_cache_hits - before.Metrics.serve_cache_hits in
    let misses =
      after.Metrics.serve_cache_misses - before.Metrics.serve_cache_misses
    in
    (* Part C — tiny queue, deep burst: admission control must reject. *)
    let before_c = Metrics.snapshot () in
    let stats_c =
      Server.run
        ~cfg:
          (Server.config ~address:addr_c ~queue_bound:2 ~batch_max:2
             ~max_requests:burst ())
        ()
    in
    let after_c = Metrics.snapshot () in
    let rejected_obs =
      after_c.Metrics.serve_rejections - before_c.Metrics.serve_rejections
    in
    Printf.eprintf "[e17 admission: %d/%d rejected (queue bound 2)]\n%!"
      stats_c.Protocol.st_rejected burst;
    (match Unix.waitpid [] pid_b with
    | _, Unix.WEXITED 0 -> ()
    | _ -> Printf.eprintf "[e17 client b: nonzero exit]\n%!");
    (match Unix.waitpid [] pid_c with
    | _, Unix.WEXITED 0 -> ()
    | _ -> Printf.eprintf "[e17 client c: nonzero exit]\n%!");
    Table.print
      ~title:"E17b  live daemon (unix socket, forked load clients)"
      ~note:
        "One daemon per row, serving in this process so its counters flow\n\
         through Ls_obs.Metrics.  `mixed` answers the part-A stream from a\n\
         pipelining client (p50/p99/throughput on stderr — they are\n\
         measurements); `burst` pushes 32 requests into a queue bound of 2\n\
         and must see Overloaded verdicts.  Batching columns depend on\n\
         arrival timing, so only the admission verdict columns are\n\
         deterministic here."
      ~header:[ "phase"; "req"; "answered"; "rejected"; "hits"; "miss"; "ok" ]
      [
        [
          "mixed";
          Table.i n;
          Table.i stats_b.Protocol.st_requests;
          Table.i stats_b.Protocol.st_rejected;
          Table.i hits;
          Table.i misses;
          (if stats_b.Protocol.st_rejected = 0 then "yes" else "NO");
        ];
        [
          "burst";
          Table.i burst;
          Table.i stats_c.Protocol.st_requests;
          Table.i stats_c.Protocol.st_rejected;
          Table.i
            (after_c.Metrics.serve_cache_hits - before_c.Metrics.serve_cache_hits);
          Table.i
            (after_c.Metrics.serve_cache_misses
            - before_c.Metrics.serve_cache_misses);
          (if rejected_obs >= 1 && rejected_obs = stats_c.Protocol.st_rejected
           then "yes"
           else "NO");
        ];
      ]

(* ------------------------------------------------------------------ *)
(* E18 — crash-tolerant serving: a supervised daemon kill -9ed at      *)
(* different points of a burst.  The resilient client must finish the  *)
(* burst with a transcript byte-identical to the unkilled row, and the *)
(* replacement worker must warm-start from the cache snapshot.         *)
(* ------------------------------------------------------------------ *)

let e18_requests = ref 64

let e18 () =
  let module Protocol = Ls_serve.Protocol in
  let module Server = Ls_serve.Server in
  let module Client = Ls_serve.Client in
  let n = !e18_requests in
  let fork_ok =
    Par.quiesce ();
    match Unix.fork () with
    | 0 -> Unix._exit 0
    | pid ->
        ignore (Unix.waitpid [] pid);
        true
    | exception Failure _ -> false
  in
  if not fork_ok then
    print_endline
      "E18 crash-tolerant serving: skipped (domains already created; run \
       section e18 alone)"
  else begin
    (* Worker kills reset client connections mid-write. *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ());
    let reqs = Array.of_list (e17_stream ~seed:1800L ~n) in
    let tmp tag =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "locsample-e18-%s-%d" tag (Unix.getpid ()))
    in
    let enc rid body = Protocol.encode_response { Protocol.rid; body } in
    (* One grid row: fork a supervised daemon (fresh state dir), run the
       burst as a reconnect/resend client, kill -9 the worker after
       [kill_after] harvested responses, finish, pull stats, SIGTERM. *)
    let run_row kill_after =
      let dir = tmp (Printf.sprintf "state-k%d" kill_after) in
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let sock = tmp (Printf.sprintf "k%d.sock" kill_after) in
      let pid_file = tmp (Printf.sprintf "k%d.pid" kill_after) in
      flush stdout;
      flush stderr;
      Par.quiesce ();
      let dpid =
        match Unix.fork () with
        | 0 ->
            (try
               let cfg =
                 Server.config ~address:(Server.Unix_path sock)
                   ~queue_bound:64 ~batch_max:8 ~snapshot_every:2
                   ~state_dir:dir ()
               in
               ignore (Server.run_supervised ~cfg ~worker_pid_file:pid_file ());
               Unix._exit 0
             with _ -> Unix._exit 3)
        | pid -> pid
      in
      let fresh () =
        match Client.connect_retry ~attempts:600 ~delay_ms:10
                (Server.Unix_path sock)
        with
        | Ok c -> c
        | Error msg -> failwith ("e18: " ^ msg)
      in
      let c = ref (fresh ()) in
      let bodies = Array.make n "" in
      let done_ = Array.make n false in
      let answered = ref 0 in
      let killed = ref false in
      let maybe_kill () =
        if (not !killed) && kill_after > 0 && !answered >= kill_after then begin
          killed := true;
          let ic = open_in pid_file in
          let wpid = int_of_string (String.trim (input_line ic)) in
          close_in ic;
          try Unix.kill wpid Sys.sigkill with Unix.Unix_error _ -> ()
        end
      in
      let t0 = Unix.gettimeofday () in
      let pipeline = 4 in
      let i = ref 0 in
      while !i < n do
        let k = min pipeline (n - !i) in
        let send_missing () =
          try
            for j = !i to !i + k - 1 do
              if not done_.(j) then Client.send !c reqs.(j)
            done
          with Unix.Unix_error _ -> ()
        in
        let missing () =
          let m = ref 0 in
          for j = !i to !i + k - 1 do
            if not done_.(j) then incr m
          done;
          !m
        in
        send_missing ();
        while missing () > 0 do
          match Client.recv !c with
          | Error _ ->
              Client.close !c;
              c := fresh ();
              send_missing ()
          | Ok resp ->
              let idx = resp.Protocol.rid in
              if idx >= 0 && idx < n && not done_.(idx) then begin
                done_.(idx) <- true;
                bodies.(idx) <- enc idx resp.Protocol.body;
                incr answered;
                maybe_kill ()
              end
        done;
        i := !i + k
      done;
      let wall = Unix.gettimeofday () -. t0 in
      let stats =
        let sreq =
          {
            Protocol.id = n;
            op = Protocol.Stats;
            seed = 0L;
            graph = "-";
            model = "-";
            t = 0;
            engine = "-";
            trials = 1;
            vertex = 0;
            deadline_ms = 0;
          }
        in
        match Client.call !c sreq with
        | Ok { Protocol.body = Protocol.Stats_r st; _ } -> Some st
        | _ -> None
      in
      Client.close !c;
      (try Unix.kill dpid Sys.sigterm with Unix.Unix_error _ -> ());
      let drained =
        match Unix.waitpid [] dpid with
        | _, Unix.WEXITED 0 -> true
        | _ -> false
        | exception Unix.Unix_error _ -> false
      in
      (try Unix.unlink pid_file with Unix.Unix_error _ -> ());
      Printf.eprintf "[e18 kill@%d: %.2fs wall, %.0f req/s]\n%!" kill_after
        wall
        (float_of_int n /. Float.max wall 1e-9);
      (bodies, stats, wall, drained)
    in
    let kills = [ 0; n / 4; n / 2 ] in
    let rows = List.map (fun k -> (k, run_row k)) kills in
    let reference =
      match rows with (_, (bodies, _, _, _)) :: _ -> bodies | [] -> [||]
    in
    Table.print
      ~title:
        (Printf.sprintf
           "E18  crash-tolerant serving: kill -9 vs drain (%d-request burst, \
            supervised daemon, snapshot every 2 batches)"
           n)
      ~note:
        "One supervised daemon per row, kill -9ed at the given response\n\
         count (0 = never).  The parent holds the listener, so the client's\n\
         reconnect/resend loop finishes every burst; `identical` checks the\n\
         response bytes against the unkilled row (response bodies are pure\n\
         functions of request bytes), `snap_hits` counts cache hits served\n\
         from the replacement worker's warm-start snapshot, and `drain`\n\
         checks SIGTERM still exits 0 after the chaos.  Wall time is a\n\
         measurement (stderr); every other column is deterministic."
      ~header:
        [ "kill@"; "req"; "restarts"; "snap_hits"; "drain"; "identical" ]
      (List.map
         (fun (k, (bodies, stats, _wall, drained)) ->
           let restarts, snap_hits =
             match stats with
             | Some st ->
                 ( Table.i st.Protocol.st_restarts,
                   Table.i st.Protocol.st_snapshot_hits )
             | None -> ("?", "?")
           in
           [
             Table.i k;
             Table.i n;
             restarts;
             snap_hits;
             (if drained then "yes" else "NO");
             (if k = 0 then "ref"
              else if bodies = reference then "yes"
              else "NO");
           ])
         rows)
  end

(* ------------------------------------------------------------------ *)
(* E19 — resource-exhaustion tolerance: one daemon per row under a     *)
(* deterministic syscall fault schedule targeting a single subsystem   *)
(* (disk ENOSPC, accept EMFILE/ENFILE, transparent EINTR/short         *)
(* writes, or all at once).  The burst must complete with bytes        *)
(* identical to the fault-free row, degraded entries must pair with    *)
(* exits in the daemon's trace, and health must read ok again once     *)
(* the schedule's budget silences it.                                  *)
(* ------------------------------------------------------------------ *)

let e19_requests = ref 64

let e19 () =
  let module Protocol = Ls_serve.Protocol in
  let module Server = Ls_serve.Server in
  let module Client = Ls_serve.Client in
  let module Sysfault = Ls_chaos.Sysfault in
  let module Trace = Ls_obs.Trace in
  let n = !e19_requests in
  let fork_ok =
    Par.quiesce ();
    match Unix.fork () with
    | 0 -> Unix._exit 0
    | pid ->
        ignore (Unix.waitpid [] pid);
        true
    | exception Failure _ -> false
  in
  if not fork_ok then
    print_endline
      "E19 resource-exhaustion tolerance: skipped (domains already created; \
       run section e19 alone)"
  else begin
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ());
    let reqs = Array.of_list (e17_stream ~seed:1900L ~n) in
    let tmp tag =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "locsample-e19-%s-%d" tag (Unix.getpid ()))
    in
    let enc rid body = Protocol.encode_response { Protocol.rid; body } in
    let count_substring hay needle =
      let nh = String.length hay and nn = String.length needle in
      if nn = 0 then 0
      else begin
        let k = ref 0 in
        for i = 0 to nh - nn do
          if String.sub hay i nn = needle then incr k
        done;
        !k
      end
    in
    (* One row: fork a daemon with the row's syscall schedule installed
       (plus a file trace and an aggressive snapshot cadence), run the
       burst as a reconnect/resend client, probe health once the budget
       has silenced the schedule, SIGTERM, then judge the trace. *)
    let run_row tag spec =
      let dir = tmp (Printf.sprintf "state-%s" tag) in
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let sock = tmp (tag ^ ".sock") in
      let trace_path = Filename.concat dir "trace.jsonl" in
      flush stdout;
      flush stderr;
      Par.quiesce ();
      let dpid =
        match Unix.fork () with
        | 0 ->
            (try
               let t = Trace.make ~path:trace_path () in
               Trace.install t;
               if not (Sysfault.is_quiet spec) then Sysfault.install spec;
               let cfg =
                 Server.config ~address:(Server.Unix_path sock)
                   ~queue_bound:64 ~batch_max:8 ~snapshot_every:2
                   ~state_dir:dir ()
               in
               ignore (Server.run ~cfg ());
               Trace.close t;
               Unix._exit 0
             with _ -> Unix._exit 3)
        | pid -> pid
      in
      let fresh () =
        match
          Client.connect_retry ~attempts:600 ~delay_ms:10
            (Server.Unix_path sock)
        with
        | Ok c -> c
        | Error msg -> failwith ("e19: " ^ msg)
      in
      let c = ref (fresh ()) in
      let bodies = Array.make n "" in
      let done_ = Array.make n false in
      let t0 = Unix.gettimeofday () in
      let pipeline = 4 in
      let i = ref 0 in
      while !i < n do
        let k = min pipeline (n - !i) in
        let send_missing () =
          try
            for j = !i to !i + k - 1 do
              if not done_.(j) then Client.send !c reqs.(j)
            done
          with Unix.Unix_error _ -> ()
        in
        let missing () =
          let m = ref 0 in
          for j = !i to !i + k - 1 do
            if not done_.(j) then incr m
          done;
          !m
        in
        send_missing ();
        while missing () > 0 do
          match Client.recv !c with
          | Error _ ->
              Client.close !c;
              c := fresh ();
              send_missing ()
          | Ok resp ->
              let idx = resp.Protocol.rid in
              if idx >= 0 && idx < n && not done_.(idx) then begin
                done_.(idx) <- true;
                bodies.(idx) <- enc idx resp.Protocol.body
              end
        done;
        i := !i + k
      done;
      let wall = Unix.gettimeofday () -. t0 in
      (* Health probe on a fresh connection: by now the burst has burned
         well past the schedule's budget, so a correct daemon has cleared
         every degraded mode it can clear without new work (the accept
         mark clears on this very connection's accept). *)
      Client.close !c;
      let hc = fresh () in
      let health_end =
        let hreq =
          {
            Protocol.id = n;
            op = Protocol.Health;
            seed = 0L;
            graph = "-";
            model = "-";
            t = 0;
            engine = "-";
            trials = 1;
            vertex = 0;
            deadline_ms = 0;
          }
        in
        match Client.call hc hreq with
        | Ok { Protocol.body = Protocol.Health_r { reasons = [] }; _ } -> "ok"
        | Ok { Protocol.body = Protocol.Health_r { reasons }; _ } ->
            Printf.sprintf "degraded:%d" (List.length reasons)
        | _ -> "?"
      in
      Client.close hc;
      (try Unix.kill dpid Sys.sigterm with Unix.Unix_error _ -> ());
      let drained =
        match Unix.waitpid [] dpid with
        | _, Unix.WEXITED 0 -> true
        | _ -> false
        | exception Unix.Unix_error _ -> false
      in
      let trace =
        match open_in trace_path with
        | ic ->
            let len = in_channel_length ic in
            let s = really_input_string ic len in
            close_in ic;
            s
        | exception Sys_error _ -> ""
      in
      let enters = count_substring trace {|"ev":"degraded_enter"|} in
      let exits = count_substring trace {|"ev":"degraded_exit"|} in
      Printf.eprintf "[e19 %s: %.2fs wall, %.0f req/s]\n%!" tag wall
        (float_of_int n /. Float.max wall 1e-9);
      (bodies, health_end, drained, enters, exits)
    in
    let budget = 100 in
    let rows =
      [
        ("none", Sysfault.quiet 19L);
        ( "disk",
          {
            (Sysfault.quiet 19L) with
            Sysfault.write_fail = 0.8;
            rename_fail = 0.8;
            open_fail = 0.8;
            ops_budget = budget;
          } );
        ( "accept",
          {
            (Sysfault.quiet 19L) with
            Sysfault.accept_fail = 0.6;
            ops_budget = budget;
          } );
        ( "transparent",
          {
            (Sysfault.quiet 19L) with
            Sysfault.eintr = 0.5;
            short_write = 0.5;
            ops_budget = budget;
          } );
        ( "mixed",
          {
            (Sysfault.quiet 19L) with
            Sysfault.write_fail = 0.6;
            rename_fail = 0.6;
            open_fail = 0.6;
            eintr = 0.3;
            short_write = 0.3;
            accept_fail = 0.3;
            ops_budget = budget;
          } );
      ]
    in
    let results = List.map (fun (tag, spec) -> (tag, run_row tag spec)) rows in
    let reference =
      match results with (_, (bodies, _, _, _, _)) :: _ -> bodies | [] -> [||]
    in
    Table.print
      ~title:
        (Printf.sprintf
           "E19  resource-exhaustion tolerance: syscall faults by subsystem \
            (%d-request burst, budget %d consultations)"
           n budget)
      ~note:
        "One daemon per row under a deterministic syscall fault schedule\n\
         (seed 19) aimed at one subsystem: ENOSPC on snapshot/checkpoint\n\
         disk IO, EMFILE/ENFILE on accept, transparent EINTR/short-write\n\
         storms, or all at once.  `identical` checks the response bytes\n\
         against the fault-free row — resource faults may cost snapshots\n\
         and connections, never answers.  `enters`/`exits` count degraded\n\
         transitions in the daemon's trace (they must pair by clean\n\
         shutdown), `health` is the Health op's verdict after the\n\
         schedule's budget silenced it, and `drain` checks SIGTERM still\n\
         exits 0."
      ~header:[ "faults"; "req"; "identical"; "enters"; "exits"; "paired";
                "health"; "drain" ]
      (List.map
         (fun (tag, (bodies, health_end, drained, enters, exits)) ->
           [
             tag;
             Table.i n;
             (if tag = "none" then "ref"
              else if bodies = reference then "yes"
              else "NO");
             Table.i enters;
             Table.i exits;
             (if enters = exits then "yes" else "NO");
             health_end;
             (if drained then "yes" else "NO");
           ])
         results)
  end

let run_all () =
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ();
  e7 ();
  e8 ();
  e9 ();
  e10 ();
  e11 ();
  e12 ();
  e13 ();
  e14 ();
  e15 ();
  e16 ();
  e17 ();
  e18 ();
  e19 ();
  decomp_ablation ()
