(* Benchmark harness entry point.

   `dune exec bench/main.exe` prints every experiment table (E1-E19, the
   paper-shape reproduction indexed in DESIGN.md / EXPERIMENTS.md) followed
   by the Bechamel micro-benchmarks.  Pass experiment ids (e1 ... e19,
   micro) to run a subset; `--domains K` pins the parallel engine's domain
   count (default: LOCSAMPLE_DOMAINS or the core count).

   Tables go to stdout; timing lines go to stderr, so stdout is bit-for-bit
   identical at every domain count and can be diffed to check the engine's
   determinism contract.  `--trace FILE` records the runtime's event
   stream as JSONL (deterministic modulo the leading "ts" field — strip it
   and the file diffs clean across domain counts too); `--metrics` prints
   an aggregate counter table after each section. *)

let sections =
  [
    ("e1", Experiments.e1);
    ("e2", Experiments.e2);
    ("e3", Experiments.e3);
    ("e4", Experiments.e4);
    ("e5", Experiments.e5);
    ("e6", Experiments.e6);
    ("e7", Experiments.e7);
    ("e8", Experiments.e8);
    ("e9", Experiments.e9);
    ("e10", Experiments.e10);
    ("e11", Experiments.e11);
    ("e12", Experiments.e12);
    ("e13", Experiments.e13);
    ("e14", Experiments.e14);
    ("e15", Experiments.e15);
    ("e16", Experiments.e16);
    ("e17", Experiments.e17);
    ("e18", Experiments.e18);
    ("e19", Experiments.e19);
    ("decomp", Experiments.decomp_ablation);
    ("micro", Micro.run);
  ]

let usage () =
  Printf.eprintf
    "usage: main.exe [--domains K] [--fault-rate P] [--crash-rate P] \
     [--retry-budget R] [--max-delay K] [--corrupt-rate P] \
     [--fault-profile lossy|flaky|partitioned] \
     [--async synchronizer|adaptive] [--sketch W,D] [--sketch-k K] \
     [--trace FILE] [--metrics] [section ...]\n\
     (known sections: %s)\n"
    (String.concat ", " (List.map fst sections));
  exit 2

let metrics_on = ref false

let parse_args argv =
  (* Each flag also accepts --flag=VALUE, like --domains. *)
  let split_eq prefix arg =
    let p = prefix ^ "=" in
    let lp = String.length p in
    if String.length arg > lp && String.sub arg 0 lp = p then
      Some (String.sub arg lp (String.length arg - lp))
    else None
  in
  let rec go acc = function
    | [] -> List.rev acc
    | "--domains" :: k :: rest -> set_domains k; go acc rest
    | "--fault-rate" :: p :: rest -> set_fault_rate p; go acc rest
    | "--crash-rate" :: p :: rest -> set_crash_rate p; go acc rest
    | "--retry-budget" :: r :: rest -> set_retry_budget r; go acc rest
    | "--max-delay" :: k :: rest -> set_max_delay k; go acc rest
    | "--corrupt-rate" :: p :: rest -> set_corrupt_rate p; go acc rest
    | "--fault-profile" :: name :: rest -> set_fault_profile name; go acc rest
    | "--async" :: mode :: rest -> set_async mode; go acc rest
    | "--sketch" :: wd :: rest -> set_sketch wd; go acc rest
    | "--sketch-k" :: k :: rest -> set_sketch_k k; go acc rest
    | "--trace" :: f :: rest -> set_trace f; go acc rest
    | "--metrics" :: rest ->
        metrics_on := true;
        Ls_obs.Metrics.set_enabled true;
        go acc rest
    | "--help" :: _ -> usage ()
    | arg :: rest ->
        let eq_flags =
          [
            ("--domains", set_domains);
            ("--fault-rate", set_fault_rate);
            ("--crash-rate", set_crash_rate);
            ("--retry-budget", set_retry_budget);
            ("--max-delay", set_max_delay);
            ("--corrupt-rate", set_corrupt_rate);
            ("--fault-profile", set_fault_profile);
            ("--async", set_async);
            ("--sketch", set_sketch);
            ("--sketch-k", set_sketch_k);
            ("--trace", set_trace);
          ]
        in
        let rec try_eq = function
          | [] -> go (arg :: acc) rest
          | (p, set) :: more -> (
              match split_eq p arg with
              | Some v -> set v; go acc rest
              | None -> try_eq more)
        in
        try_eq eq_flags
  and set_domains k =
    match int_of_string_opt k with
    | Some k when k >= 1 -> Ls_par.Par.set_domains k
    | _ ->
        Printf.eprintf "--domains expects an integer >= 1, got %S\n" k;
        exit 2
  and set_fault_rate p =
    match float_of_string_opt p with
    | Some x when x >= 0. && x <= 1. -> Experiments.e12_rates := [ x ]
    | _ ->
        Printf.eprintf "--fault-rate expects a probability in [0,1], got %S\n" p;
        exit 2
  and set_crash_rate p =
    match float_of_string_opt p with
    | Some x when x >= 0. && x <= 1. -> Experiments.e12_crash_rate := x
    | _ ->
        Printf.eprintf "--crash-rate expects a probability in [0,1], got %S\n" p;
        exit 2
  and set_retry_budget r =
    match int_of_string_opt r with
    | Some x when x >= 0 -> Experiments.e12_retry_budget := x
    | _ ->
        Printf.eprintf "--retry-budget expects an integer >= 0, got %S\n" r;
        exit 2
  and set_max_delay k =
    (* Validation lives in Faults.make, so the error text matches the
       locsample CLI's exactly. *)
    match int_of_string_opt k with
    | Some x -> (
        try
          ignore (Ls_local.Faults.make ~max_delay:x ());
          Experiments.e12_max_delay := x
        with Invalid_argument msg -> Printf.eprintf "%s\n" msg; exit 2)
    | None ->
        Printf.eprintf "--max-delay expects an integer >= 1, got %S\n" k;
        exit 2
  and set_corrupt_rate p =
    match float_of_string_opt p with
    | Some x -> (
        try
          ignore (Ls_local.Faults.make ~corrupt:x ());
          Experiments.e12_corrupt_rate := x
        with Invalid_argument msg -> Printf.eprintf "%s\n" msg; exit 2)
    | None ->
        Printf.eprintf "--corrupt-rate expects a probability in [0,1], got %S\n"
          p;
        exit 2
  and set_fault_profile name =
    (try ignore (Ls_local.Faults.preset name)
     with Invalid_argument msg -> Printf.eprintf "%s\n" msg; exit 2);
    Experiments.e12_profile := Some name
  and set_async mode =
    (* Validation lives in Async.mode_of_string, so the error text matches
       the locsample CLI's exactly.  E12/E13's supervised runs then flood
       over the event-driven executor; in synchronizer mode stdout stays
       byte-identical to the synchronous run. *)
    (try ignore (Ls_local.Async.mode_of_string mode)
     with Invalid_argument msg -> Printf.eprintf "%s\n" msg; exit 2);
    Experiments.async_mode := Some mode
  and set_sketch wd =
    (* Pin E15's grid to a single width,depth point.  Validation lives in
       Cms.create, so the error text matches the locsample CLI's. *)
    let parts = String.split_on_char ',' wd in
    match List.map int_of_string_opt parts with
    | [ Some w; Some d ] -> (
        try
          ignore (Ls_sketch.Cms.create ~width:w ~depth:d ~seed:0L);
          Experiments.e15_grid := [ (w, d) ]
        with Invalid_argument msg -> Printf.eprintf "%s\n" msg; exit 2)
    | _ ->
        Printf.eprintf "--sketch expects WIDTH,DEPTH (two integers), got %S\n"
          wd;
        exit 2
  and set_sketch_k k =
    match int_of_string_opt k with
    | Some x -> (
        try
          ignore (Ls_sketch.Bottomk.create ~k:x ~seed:0L);
          Experiments.e15_k := x
        with Invalid_argument msg -> Printf.eprintf "%s\n" msg; exit 2)
    | None ->
        Printf.eprintf "--sketch-k expects an integer >= 1, got %S\n" k;
        exit 2
  and set_trace f =
    let t = Ls_obs.Trace.make ~path:f () in
    Ls_obs.Trace.install t;
    at_exit (fun () -> Ls_obs.Trace.close t)
  in
  go [] (List.tl (Array.to_list argv))

let () =
  (* Same env contract as bin/locsample: malformed LOCSAMPLE_* values are
     named errors at startup, not backtraces from the first parallel call. *)
  List.iter
    (fun check ->
      match check () with
      | Ok () -> ()
      | Error msg -> Printf.eprintf "%s\n" msg; exit 2)
    [ Ls_par.Par.env_check; Ls_shard.Ckpt.env_check ];
  let requested =
    match parse_args Sys.argv with [] -> List.map fst sections | ids -> ids
  in
  print_endline
    "locsample benchmark harness -- reproduction of Feng & Yin, PODC 2018";
  List.iter
    (fun id ->
      match List.assoc_opt id sections with
      | Some run ->
          let w0 = Unix.gettimeofday () and t0 = Sys.time () in
          run ();
          if !metrics_on then begin
            (* Per-section counters, reset between sections so each row
               stands alone. *)
            Printf.printf "[%s] " id;
            Ls_obs.Metrics.print stdout (Ls_obs.Metrics.snapshot ());
            Ls_obs.Metrics.reset ()
          end;
          Printf.printf "%!";
          Printf.eprintf "[%s finished in %.1fs wall, %.1fs cpu, %d domains]\n%!"
            id
            (Unix.gettimeofday () -. w0)
            (Sys.time () -. t0)
            (Ls_par.Par.domains ())
      | None ->
          Printf.eprintf "unknown section %S (known: %s)\n" id
            (String.concat ", " (List.map fst sections));
          exit 2)
    requested
