(* Bechamel timing benches for the core primitives, including the
   engine and scheduling ablations called out in DESIGN.md. *)

open Bechamel
module Graph = Ls_graph.Graph
module Generators = Ls_graph.Generators
module Line_graph = Ls_graph.Line_graph
module Rng = Ls_rng.Rng
module Config = Ls_gibbs.Config
module Models = Ls_gibbs.Models
module Enumerate = Ls_gibbs.Enumerate
module Forest_dp = Ls_gibbs.Forest_dp
module Matching_dp = Ls_gibbs.Matching_dp
module Decomposition = Ls_local.Decomposition
module Par = Ls_par.Par
open Ls_core

let tests () =
  (* Shared inputs, allocated once. *)
  let cycle64 = Generators.cycle 64 in
  let hardcore64 = Models.hardcore cycle64 ~lambda:1. in
  let inst64 = Instance.unpinned hardcore64 in
  let ball9 = Graph.ball cycle64 0 4 in
  let empty64 = Config.empty 64 in
  let tree10 = Generators.complete_tree ~branching:2 ~depth:10 in
  let reg_graph =
    Generators.random_regular (Rng.create 1L) ~n:64 ~d:4
  in
  let glauber_inst = Instance.unpinned (Models.hardcore cycle64 ~lambda:1.) in
  let glauber_state = Glauber.init glauber_inst in
  let glauber_rng = Rng.create 2L in
  let decomposition_rng = Rng.create 3L in
  let oracle = Inference.ssm_oracle ~t:2 inst64 in
  [
    (* Ablation 1: enumeration vs forest DP on the same radius-4 ball. *)
    Test.make ~name:"ball_marginal/enumeration"
      (Staged.stage (fun () ->
           ignore (Enumerate.ball_marginal hardcore64 ~ball:ball9 empty64 0)));
    Test.make ~name:"ball_marginal/forest_dp"
      (Staged.stage (fun () ->
           ignore (Forest_dp.ball_marginal hardcore64 ~ball:ball9 empty64 0)));
    Test.make ~name:"ssm_infer/t=2 (C64 hardcore)"
      (Staged.stage (fun () -> ignore (Inference.ssm_infer ~t:2 inst64 0)));
    Test.make ~name:"chain_dp/exact marginal (C64)"
      (Staged.stage (fun () ->
           ignore (Ls_gibbs.Chain_dp.marginal hardcore64 empty64 0)));
    (* SAW tree on a 4-regular graph: a radius-3 ball there has ~50
       vertices, so the enumeration engine cannot even enter this row. *)
    Test.make ~name:"saw/depth=3 (4-regular n=64 hardcore)"
      (Staged.stage
         (let spec4 = Models.hardcore reg_graph ~lambda:0.5 in
          let tau = Config.empty 64 in
          fun () -> ignore (Ls_gibbs.Saw.marginal ~depth:3 spec4 tau 0)));
    Test.make ~name:"oracle.infer via ssm_oracle"
      (Staged.stage (fun () -> ignore (oracle.Inference.infer inst64 17)));
    Test.make ~name:"glauber/sweep (C64)"
      (Staged.stage (fun () -> Glauber.sweep glauber_state glauber_rng));
    Test.make ~name:"decomposition/linial_saks (C64)"
      (Staged.stage (fun () ->
           ignore (Decomposition.linial_saks cycle64 decomposition_rng)));
    Test.make ~name:"line_graph/make (4-regular n=64)"
      (Staged.stage (fun () -> ignore (Line_graph.make reg_graph)));
    Test.make ~name:"matching_dp/edge_marginal (tree depth 10)"
      (Staged.stage (fun () ->
           ignore (Matching_dp.edge_marginal tree10 ~lambda:1. ~pins:[] (0, 1))));
    Test.make ~name:"graph/power^3 (C64)"
      (Staged.stage (fun () -> ignore (Graph.power cycle64 3)));
    Test.make ~name:"sequential_sample (C64, t=2 oracle)"
      (Staged.stage (fun () ->
           ignore
             (Sequential_sampler.sample oracle inst64
                ~order:(Array.init 64 (fun i -> i))
                ~rng:glauber_rng)));
    (* Parallel-engine ablation: the same 32-trial Glauber workload run
       through the engine at 1 domain vs the configured domain count.
       The gap is the engine's speedup (or, on one core, its overhead). *)
    Test.make ~name:"par/32 glauber sweeps, domains=1"
      (Staged.stage (fun () ->
           ignore
             (Par.run_trials ~domains:1 ~n:32 ~seed:11L (fun rng ->
                  let st = Glauber.init glauber_inst in
                  for _ = 1 to 4 do
                    Glauber.sweep st rng
                  done))));
    Test.make ~name:(Printf.sprintf "par/32 glauber sweeps, domains=%d" (Par.domains ()))
      (Staged.stage (fun () ->
           ignore
             (Par.run_trials ~n:32 ~seed:11L (fun rng ->
                  let st = Glauber.init glauber_inst in
                  for _ = 1 to 4 do
                    Glauber.sweep st rng
                  done))));
  ]

let run () =
  let grouped = Test.make_grouped ~name:"locsample" (tests ()) in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let clock = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ clock ] grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> x
        | _ -> nan
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with Some r -> r | None -> nan
      in
      rows := (name, ns, r2) :: !rows)
    results;
  let rows =
    List.sort compare !rows
    |> List.map (fun (name, ns, r2) ->
           [
             name;
             Printf.sprintf "%12.1f" ns;
             Printf.sprintf "%8.2f" (ns /. 1e6);
             Printf.sprintf "%.4f" r2;
           ])
  in
  Table.print ~title:"Micro-benchmarks (Bechamel, monotonic clock)"
    ~note:"One row per primitive; time per call estimated by OLS on run count."
    ~header:[ "benchmark"; "ns/run"; "ms/run"; "r^2" ]
    rows
