(* Command-line interface to the locsample library.

   Subcommands:
     sample  — draw a configuration in the LOCAL model (chain-rule or JVV)
     infer   — approximate marginal inference at a vertex
     ssm     — measure the strong-spatial-mixing decay curve
     phase   — hardcore phase-transition scan on complete trees
     count   — estimate ln Z via local inference and self-reduction

   Graphs are described as "cycle:24", "path:16", "grid:4x6", "tree:2x5"
   (branching x depth), "regular:16x3" (n x degree, random),
   "tree-rand:20" (uniform random tree).  Models as "hardcore:LAMBDA",
   "ising:BETA[:FIELD]", "potts:Q:BETA", "coloring:Q", "matching:LAMBDA"
   (hardcore on the line graph).  Inference runs either the Theorem 5.1
   ball algorithm (--engine ball) or Weitz's SAW tree (--engine saw);
   --verbosity debug traces the decomposition and the scheduler. *)

module Graph = Ls_graph.Graph
module Generators = Ls_graph.Generators
module Dist = Ls_dist.Dist
module Empirical = Ls_dist.Empirical
module Rng = Ls_rng.Rng
module Par = Ls_par.Par
module Models = Ls_gibbs.Models
module Matching = Ls_gibbs.Matching
module Faults = Ls_local.Faults
module Resilient = Ls_local.Resilient
module Shard = Ls_shard.Exec
module Sweep = Ls_shard.Sweep
module Engine = Ls_serve.Engine
module Server = Ls_serve.Server
module Client = Ls_serve.Client
module Protocol = Ls_serve.Protocol
open Ls_core

(* Spec parsing lives in the serving engine (Ls_serve.Engine) so the
   daemon and the CLI reject exactly the same values with the same words;
   here an [Error] becomes the CLI's named-error exit-2 contract. *)

let die msg : 'a =
  Printf.eprintf "locsample: %s\n" msg;
  exit 2

let or_die = function Ok v -> v | Error msg -> die msg

let make_instance ~graph ~model ~seed =
  let rng = Rng.create (Int64.of_int seed) in
  let g = or_die (Engine.parse_graph rng graph) in
  let m = or_die (Engine.parse_model g model) in
  (g, m, Instance.unpinned m.Engine.spec)

let make_oracle ~engine ~t inst = or_die (Engine.make_oracle ~engine ~t inst)

(* Flag validation funnels through the library constructors so the CLI and
   the API reject exactly the same values; the rejection path mirrors
   --domains: named message on stderr, exit 2.

   --fault-profile names a preset bundle; explicit flags override the
   preset field they correspond to (a flag left at its default defers to
   the preset, and invalid explicit values still reach Faults.make, which
   rejects them by name). *)
let faults_of_flags ~seed ~fault_rate ~crash_rate ~max_delay ~corrupt_rate
    ~skew ~delay_law ~profile =
  try
    let p =
      match profile with
      | Some name -> Faults.preset name
      | None -> Faults.zero_preset
    in
    let over flag dflt preset = if flag <> dflt then flag else preset in
    Faults.make ~seed
      ~drop:(over fault_rate 0. p.Faults.pr_drop)
      ~duplicate:p.Faults.pr_duplicate ~delay:p.Faults.pr_delay
      ~max_delay:(over max_delay 1 p.Faults.pr_max_delay)
      ~crash:(over crash_rate 0. p.Faults.pr_crash)
      ~recovery:p.Faults.pr_recovery ~recovery_delay:p.Faults.pr_recovery_delay
      ~corrupt:(over corrupt_rate 0. p.Faults.pr_corrupt)
      ~partitions:p.Faults.pr_partitions ~bursts:p.Faults.pr_bursts
      ~law:(Faults.law_of_string delay_law)
      ~skew ()
  with Invalid_argument msg ->
    Printf.eprintf "locsample: %s\n" msg;
    exit 2

let policy_of_flags ~retry_budget =
  try Resilient.policy ~retry_budget ()
  with Invalid_argument msg ->
    Printf.eprintf "locsample: %s\n" msg;
    exit 2

(* The event-driven executor, when --async asks for it; flag validation
   funnels through Async.make/mode_of_string like everything else. *)
let async_of_flags ~async_mode ~timeout_base =
  match async_mode with
  | None -> None
  | Some name -> (
      try
        Some
          (Ls_local.Async.make
             ~mode:(Ls_local.Async.mode_of_string name)
             ~timeout_base ())
      with Invalid_argument msg ->
        Printf.eprintf "locsample: %s\n" msg;
        exit 2)

(* --- commands ------------------------------------------------------- *)

let sample_many ~m ~inst ~oracle ~exact_jvv ~epsilon ~seed ~faults ~policy
    ~async ~sketch ~sketch_k ~shard_cfg trials =
  let order = Array.init (Instance.n inst) (fun i -> i) in
  let faulty = not (Faults.is_none faults) || async <> None in
  if faulty then
    Printf.printf "fault plan per trial: %s, retry budget %d%s\n"
      (Faults.describe faults) policy.Resilient.retry_budget
      (match async with
      | None -> ""
      | Some cfg ->
          Printf.sprintf ", %s executor"
            (Ls_local.Async.mode_name (Ls_local.Async.mode cfg)));
  let run_one =
    if faulty then begin
      let epsilon =
        match epsilon with Some e -> e | None -> Jvv.theory_epsilon inst
      in
      (* Per-trial fault plan: the same schedule shape reseeded from the
         trial's own stream, so the sweep stays bit-identical across
         domain counts. *)
      fun rng ->
        let fseed = Rng.bits64 rng in
        let sseed = Rng.bits64 rng in
        let faults = Faults.reseed faults ~seed:fseed in
        if exact_jvv then
          let s =
            Jvv.run_local_resilient oracle ~epsilon ~policy ~faults ?async inst
              ~seed:sseed
          in
          (s.Jvv.sresult.Jvv.success, s.Jvv.sresult.Jvv.y)
        else
          let r =
            Local_sampler.sample_resilient oracle ~policy ~faults ?async inst
              ~seed:sseed
          in
          (r.Local_sampler.success, r.Local_sampler.sigma)
    end
    else if exact_jvv then begin
      let epsilon =
        match epsilon with Some e -> e | None -> Jvv.theory_epsilon inst
      in
      fun rng ->
        let r = Jvv.run oracle ~epsilon inst ~order ~rng in
        (r.Jvv.success, r.Jvv.y)
    end
    else
      fun rng ->
        let r = Local_sampler.sample oracle inst ~seed:(Rng.bits64 rng) in
        (r.Local_sampler.success, r.Local_sampler.sigma)
  in
  let results, timing =
    match shard_cfg with
    | Some cfg ->
        (* Sharded sweep: the same trial partition semantics, across
           worker OS processes with kill -9 recovery. *)
        Sweep.run_trials_timed cfg ~n:trials ~seed:(Int64.of_int seed) run_one
    | None -> Par.run_trials_timed ~n:trials ~seed:(Int64.of_int seed) run_one
  in
  let emp = Empirical.create () in
  Array.iter (fun (ok, y) -> if ok then Empirical.add emp y) results;
  let successes = Empirical.total emp in
  Printf.printf "%d/%d trials succeeded; %d distinct configurations\n"
    successes trials (Empirical.distinct emp);
  (match sketch with
  | None -> ()
  | Some (width, depth) ->
      (* Sketch hash seed derived from the sampling seed through the
         mixer, so the sketch family is pinned by --seed alone. *)
      let hseed = Ls_rng.Splitmix.mix64 (Int64.of_int (seed + 2)) in
      let sk =
        Empirical.Sketched.create ~width ~depth ~k:sketch_k ~seed:hseed ()
      in
      Array.iter
        (fun (ok, y) -> if ok then Empirical.Sketched.add sk y)
        results;
      Printf.printf
        "sketch(w=%d,d=%d,k=%d): ~%.1f distinct (exact %d), eps=%.2e \
         delta=%.2e, %d bytes, digest %s\n"
        width depth sketch_k
        (Empirical.Sketched.distinct_estimate sk)
        (Empirical.distinct emp)
        (Empirical.Sketched.epsilon sk)
        (Empirical.Sketched.delta sk)
        (String.length (Empirical.Sketched.serialize sk))
        (Empirical.Sketched.digest sk));
  (* Timing is a measurement, not an output: stderr, so stdout diffs clean
     across domain counts. *)
  Printf.eprintf "[%.3fs wall on %d %s, %.0f trials/s]\n" timing.Par.wall
    timing.Par.domains
    (if Option.is_some shard_cfg then "shard(s)" else "domain(s)")
    (float_of_int trials /. Float.max timing.Par.wall 1e-9);
  (if successes > 0 then
     let states =
       float_of_int (Instance.q inst) ** float_of_int (Instance.n inst)
     in
     if states <= 4096. then
       Printf.printf "empirical TV vs exact joint (successes only): %.4f\n"
         (Empirical.tv_against emp (Exact.joint inst)));
  (if successes > 0 then
     let sigma = snd (Option.get (Array.find_opt fst results)) in
     Printf.printf "first successful sample: %s\n" (m.Engine.render sigma));
  0

let sample graph model t seed engine exact_jvv epsilon trials fault_rate
    crash_rate max_delay corrupt_rate skew delay_law async_mode timeout_base
    profile retry_budget sketch sketch_k shards shard_kill =
  let policy = policy_of_flags ~retry_budget in
  (* Sharded multi-process execution: validate up front, mirroring
     --domains.  Fork-based workers require no sibling domains, so
     --shards pins the domain pool to 1; the event-driven executor is
     in-process by construction, so --shards + --async is rejected. *)
  let shard_cfg =
    match shards with
    | None ->
        if shard_kill <> "" then begin
          Printf.eprintf "locsample: --shard-kill requires --shards\n";
          exit 2
        end;
        None
    | Some k ->
        if k < 1 then begin
          Printf.eprintf "locsample: --shards expects an integer >= 1, got %d\n"
            k;
          exit 2
        end;
        if async_mode <> None then begin
          Printf.eprintf
            "locsample: --shards is synchronous-only (drop --async)\n";
          exit 2
        end;
        let kills =
          match Shard.parse_kill_specs shard_kill with
          | Ok ks -> ks
          | Error msg ->
              Printf.eprintf "locsample: %s\n" msg;
              exit 2
        in
        Par.set_domains 1;
        Some (Shard.config ~shards:k ~kills ())
  in
  (* Validate the sketch dimensions up front, even when --trials is 1 and
     the sketch would never be built. *)
  (match sketch with
  | None -> ()
  | Some (width, depth) -> (
      try
        ignore (Empirical.Sketched.create ~width ~depth ~k:sketch_k ~seed:0L ())
      with Invalid_argument msg ->
        Printf.eprintf "locsample: %s\n" msg;
        exit 2));
  (* Validate the flags up front even when they are all zero. *)
  let faults =
    faults_of_flags ~seed:(Int64.of_int (seed + 1)) ~fault_rate ~crash_rate
      ~max_delay ~corrupt_rate ~skew ~delay_law ~profile
  in
  let async = async_of_flags ~async_mode ~timeout_base in
  (* --async alone (timing-only plan) still runs the supervised network
     path: the executor needs a network to flood over. *)
  let faulty = not (Faults.is_none faults) || async <> None in
  let g, m, inst = make_instance ~graph ~model ~seed in
  Printf.printf "graph: %d vertices, %d edges; model: %s\n" (Graph.n g) (Graph.m g)
    m.Engine.describe;
  let oracle = make_oracle ~engine ~t inst in
  (* Single runs shard the broadcast phases themselves (the transport
     hook); sweeps shard the trial range instead, so the transport stays
     uninstalled there (workers run the in-process executor). *)
  (match shard_cfg with
  | Some cfg when trials <= 1 ->
      Shard.install cfg;
      at_exit Shard.uninstall
  | _ -> ());
  if trials > 1 then
    sample_many ~m ~inst ~oracle ~exact_jvv ~epsilon ~seed ~faults ~policy
      ~async ~sketch ~sketch_k ~shard_cfg trials
  else if faulty then begin
    if exact_jvv then begin
      let epsilon =
        match epsilon with Some e -> e | None -> Jvv.theory_epsilon inst
      in
      let s =
        Jvv.run_local_resilient oracle ~epsilon ~policy ~faults ?async inst
          ~seed:(Int64.of_int seed)
      in
      Printf.printf "JVV exact sampler under %s\n" (Faults.describe faults);
      Printf.printf "  %s; %s; %d total rounds\n"
        (if s.Jvv.sresult.Jvv.success then "success"
         else "DEGRADED (partial sample)")
        (Resilient.describe s.Jvv.resilience)
        s.Jvv.total_rounds;
      Printf.printf "sample: %s\n" (m.Engine.render s.Jvv.sresult.Jvv.y)
    end
    else begin
      let r =
        Local_sampler.sample_resilient oracle ~policy ~faults ?async inst
          ~seed:(Int64.of_int seed)
      in
      Printf.printf "chain-rule sampler under %s\n" (Faults.describe faults);
      Printf.printf "  %s; %s; %d total rounds\n"
        (if r.Local_sampler.success then "success"
         else "degraded (partial sample)")
        (Resilient.describe (Option.get r.Local_sampler.resilience))
        r.Local_sampler.rounds;
      Printf.printf "sample: %s\n" (m.Engine.render r.Local_sampler.sigma)
    end;
    0
  end
  else begin
  if exact_jvv then begin
    let epsilon =
      match epsilon with Some e -> e | None -> Jvv.theory_epsilon inst
    in
    let result, stats =
      Jvv.run_local oracle ~epsilon inst ~seed:(Int64.of_int seed)
    in
    Printf.printf "JVV exact sampler: %s (%d clamps), %d LOCAL rounds\n"
      (if result.Jvv.success then "success" else "LOCAL FAILURE (retry with another seed)")
      result.Jvv.clamped stats.Ls_local.Scheduler.rounds;
    Printf.printf "sample: %s\n" (m.Engine.render result.Jvv.y)
  end
  else begin
    let result = Local_sampler.sample oracle inst ~seed:(Int64.of_int seed) in
    Printf.printf "chain-rule sampler: %s, %d LOCAL rounds (%d colors)\n"
      (if result.Local_sampler.success then "success" else "partial failure")
      result.Local_sampler.rounds
      result.Local_sampler.stats.Ls_local.Scheduler.colors;
    Printf.printf "sample: %s\n" (m.Engine.render result.Local_sampler.sigma)
  end;
  0
  end

let infer graph model t seed engine vertex boosted =
  let g, m, inst = make_instance ~graph ~model ~seed in
  if vertex < 0 || vertex >= Graph.n g then die "vertex out of range";
  Printf.printf "graph: %d vertices; model: %s\n" (Graph.n g) m.Engine.describe;
  let oracle = make_oracle ~engine ~t inst in
  let oracle = if boosted then Boosting.boost oracle inst else oracle in
  let d = oracle.Inference.infer inst vertex in
  Printf.printf "marginal at %d (radius %d%s): %s\n" vertex oracle.Inference.radius
    (if boosted then ", boosted" else "")
    (Format.asprintf "%a" Dist.pp d);
  0

let ssm graph model seed max_d =
  let g, m, inst = make_instance ~graph ~model ~seed in
  Printf.printf "graph: %d vertices; model: %s\n" (Graph.n g) m.Engine.describe;
  let rng = Rng.create (Int64.of_int (seed + 1)) in
  let curve = Ssm.decay_curve ~rng inst ~v:0 ~max_d in
  Printf.printf "%-4s %-12s %-12s %s\n" "d" "tv" "mult_err" "boundaries";
  List.iter
    (fun p ->
      Printf.printf "%-4d %-12.6f %-12.6f %d%s\n" p.Ssm.distance p.Ssm.tv
        (if p.Ssm.mult = infinity then nan else p.Ssm.mult)
        p.Ssm.boundary_configs
        (if p.Ssm.exhaustive then "" else " (sampled)"))
    curve;
  (match Ssm.fit_exponential_rate curve with
  | Some alpha -> Printf.printf "fitted decay rate alpha = %.4f\n" alpha
  | None -> print_endline "no fit (influence vanished)");
  0

let phase branching depth lambdas =
  let lambda_c = Phase_transition.critical_lambda ~branching in
  Printf.printf "lambda_c(Delta=%d) = %.4f\n" (branching + 1) lambda_c;
  List.iter
    (fun lambda ->
      let i = Phase_transition.tree_root_influence ~branching ~depth ~lambda in
      Printf.printf "lambda=%-8.3f influence@%d = %.6f  [%s]\n" lambda depth i
        (if lambda < lambda_c then "uniqueness" else "non-uniqueness"))
    lambdas;
  0

let count graph model t seed =
  let g, m, inst = make_instance ~graph ~model ~seed in
  Printf.printf "graph: %d vertices; model: %s\n" (Graph.n g) m.Engine.describe;
  let oracle = Inference.ssm_oracle ~t inst in
  let order = Array.init (Instance.n inst) (fun i -> i) in
  let log_z = Reductions.estimate_log_partition oracle inst ~order in
  Printf.printf "ln Z ~ %.6f   (Z ~ %.6e)\n" log_z (exp log_z);
  0

let chaos seed schedules trials async_mode max_delay corrupt_rate profile
    partitions shards reproducer_path =
  let overrides =
    {
      Ls_chaos.Chaos.o_async = async_mode;
      o_max_delay = max_delay;
      o_corrupt = corrupt_rate;
      o_profile = profile;
      o_partitions = partitions;
      o_shards = shards;
    }
  in
  let summary =
    try
      Ls_chaos.Chaos.run ~overrides ~schedules ~trials
        ~seed:(Int64.of_int seed) ()
    with Invalid_argument msg ->
      Printf.eprintf "locsample: %s\n" msg;
      exit 2
  in
  if Ls_chaos.Chaos.ok summary then begin
    Printf.printf
      "chaos: %d schedule(s) x %d trial(s) from seed %d — all invariants held\n"
      schedules trials seed;
    0
  end
  else begin
    let text = Ls_chaos.Chaos.reproducer summary in
    print_string text;
    let oc = open_out reproducer_path in
    output_string oc text;
    close_out oc;
    Printf.printf "reproducer written to %s\n" reproducer_path;
    1
  end

(* --- serve / query ---------------------------------------------------- *)

let parse_listen = function
  | None -> Server.default_address ()
  | Some s -> or_die (Server.parse_address s)

let render_stats (st : Protocol.stats) =
  Printf.sprintf
    "requests=%d batches=%d coalesced=%d hits=%d misses=%d evictions=%d \
     rejected=%d expired=%d snapshot_hits=%d restarts=%d max_queue=%d \
     domains=%d"
    st.Protocol.st_requests st.Protocol.st_batches st.Protocol.st_coalesced
    st.Protocol.st_cache_hits st.Protocol.st_cache_misses
    st.Protocol.st_evictions st.Protocol.st_rejected st.Protocol.st_expired
    st.Protocol.st_snapshot_hits st.Protocol.st_restarts
    st.Protocol.st_max_queue st.Protocol.st_domains

let serve listen queue_bound batch_max cache plan_cache max_vertices
    max_requests send_timeout state_dir snapshot_every supervised
    worker_pid_file sysfault =
  (* --sysfault overrides LOCSAMPLE_SYSFAULT (already installed by
     setup_log when set): same parser, same words on rejection. *)
  (match sysfault with
  | None -> ()
  | Some s -> (
      match Ls_chaos.Sysfault.of_string s with
      | Ok spec ->
          if Ls_chaos.Sysfault.is_quiet spec then Ls_chaos.Sysfault.uninstall ()
          else Ls_chaos.Sysfault.install spec
      | Error msg -> die msg));
  let cfg =
    try
      Server.config ~address:(parse_listen listen) ?queue_bound ?batch_max
        ?instance_cache:cache ?plan_cache ?max_vertices ?max_requests
        ?send_timeout ?state_dir ?snapshot_every ()
    with Invalid_argument msg -> die msg
  in
  let on_ready () =
    Printf.printf "serving on %s (queue %d, batch %d, cache %d/%d)%s\n%!"
      (Server.address_to_string cfg.Server.address)
      cfg.Server.queue_bound cfg.Server.batch_max cfg.Server.instance_cache
      cfg.Server.plan_cache
      (if supervised then ", supervised" else "")
  in
  let st =
    if supervised then (
      try Server.run_supervised ~cfg ~on_ready ?worker_pid_file ()
      with Ls_shard.Supervisor.Failed (_, msg) ->
        (* Restart budget spent: a runtime failure, not a usage error. *)
        Printf.eprintf "locsample: serve: %s\n" msg;
        exit 1)
    else Server.run ~cfg ~on_ready ()
  in
  Printf.printf "served %d request(s) in %d batch(es): %s\n"
    st.Protocol.st_requests st.Protocol.st_batches (render_stats st);
  0

(* Deterministic transcript rendering: every float at full precision, so
   the file byte-diffs clean across --domains counts (the CI smoke job
   relies on this). *)
let render_body (b : Protocol.body) =
  match b with
  | Protocol.Sample_r { trials; successes; distinct; first } ->
      Printf.sprintf "sample trials=%d successes=%d distinct=%d first=[%s]"
        trials successes distinct
        (String.concat "," (List.map string_of_int (Array.to_list first)))
  | Protocol.Infer_r { probs } ->
      Printf.sprintf "infer probs=[%s]"
        (String.concat ","
           (List.map (Printf.sprintf "%.17g") (Array.to_list probs)))
  | Protocol.Count_r { log_z } -> Printf.sprintf "count log_z=%.17g" log_z
  | Protocol.Stats_r st -> "stats " ^ render_stats st
  | Protocol.Health_r { reasons } -> (
      match reasons with
      | [] -> "health ok"
      | l ->
          Printf.sprintf "health degraded(%s)"
            (String.concat ";" (List.map (fun (s, r) -> s ^ "=" ^ r) l)))
  | Protocol.Error_r { code; message } ->
      Printf.sprintf "error %s: %s" (Protocol.err_name code) message

(* The query stream is a pure function of (--seed, --requests): a mixed
   op workload over a handful of small instances, with request seeds
   drawn from a 4-seed pool so repeated (instance, seed) pairs recur and
   exercise the plan cache. *)
let gen_requests ~seed ?(deadline_ms = 0) ~n () =
  let rng = Rng.create (Int64.of_int seed) in
  let graphs = [| "cycle:24"; "path:16"; "grid:3x4"; "tree:2x3" |] in
  let models = [| "hardcore:0.8"; "ising:0.3"; "coloring:5" |] in
  let seed_pool = Array.init 4 (fun _ -> Rng.bits64 rng) in
  let pick arr = arr.(Rng.int rng (Array.length arr)) in
  List.init n (fun i ->
      let op_draw = Rng.int rng 10 in
      let op =
        if op_draw < 6 then Protocol.Sample
        else if op_draw < 8 then Protocol.Infer
        else Protocol.Count
      in
      let trials =
        match op with Protocol.Sample -> 1 + Rng.int rng 4 | _ -> 1
      in
      {
        Protocol.id = i;
        op;
        seed = pick seed_pool;
        graph = pick graphs;
        model = pick models;
        t = 1;
        engine = "ball";
        trials;
        vertex = Rng.int rng 8;
        deadline_ms;
      })

let query connect requests pipeline seed transcript stats_flag deadline_ms
    kill_after worker_pid_file =
  if requests < 1 then die "--requests expects an integer >= 1";
  if pipeline < 1 then die "--pipeline expects an integer >= 1";
  if deadline_ms < 0 then die "--deadline-ms expects an integer >= 0";
  if kill_after < 0 then die "--kill-after expects an integer >= 0";
  if kill_after > 0 && worker_pid_file = None then
    die "--kill-after needs --worker-pid-file to aim at";
  let address = parse_listen connect in
  (* Chaos resets and worker kills make EPIPE on send a normal event. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let fresh_conn () =
    match Client.connect_retry address with Ok c -> c | Error msg -> die msg
  in
  let c = ref (fresh_conn ()) in
  let reqs =
    Array.of_list (gen_requests ~seed ~deadline_ms ~n:requests ())
  in
  let n = Array.length reqs in
  let responses = Array.make n None in
  let lat = Array.make n 0. in
  let answered = ref 0 in
  (* --kill-after: after harvesting that many responses, kill -9 the
     supervised worker named by its pid file — the deterministic
     mid-burst crash the CI restart smoke drives.  The client itself
     survives the kill through the reconnect/resend loop below. *)
  let killed = ref false in
  let maybe_kill () =
    if (not !killed) && kill_after > 0 && !answered >= kill_after then begin
      killed := true;
      match worker_pid_file with
      | None -> ()
      | Some path -> (
          match
            let ic = open_in path in
            let pid = int_of_string (String.trim (input_line ic)) in
            close_in ic;
            pid
          with
          | pid -> (
              try Unix.kill pid Sys.sigkill
              with Unix.Unix_error _ ->
                die (Printf.sprintf "--kill-after: cannot kill pid %d" pid))
          | exception _ ->
              die (Printf.sprintf "--kill-after: cannot read a pid from %s" path))
    end
  in
  let reconnects = ref 0 in
  let reconnect () =
    incr reconnects;
    if !reconnects > 100 then
      die "daemon connection failed after 100 reconnects";
    (try Client.close !c with Unix.Unix_error _ -> ());
    c := fresh_conn ()
  in
  (* Pipelined windows: push K requests, then read K responses.  The
     server answers Overloaded verdicts during its socket drain and
     everything else after the batch runs, so responses can arrive out of
     request order — the correlation id routes each one home.  A broken
     connection (worker killed, daemon restarting) is survived by
     reconnecting and resending the window's unanswered requests:
     response bodies are pure functions of request bytes, so replayed
     answers keep the transcript byte-identical. *)
  let i = ref 0 in
  while !i < n do
    let k = min pipeline (n - !i) in
    let t0 = Unix.gettimeofday () in
    let send_missing () =
      try
        for j = !i to !i + k - 1 do
          if responses.(j) = None then Client.send !c reqs.(j)
        done
      with Unix.Unix_error _ -> ()
      (* a dead connection surfaces as a recv error below *)
    in
    let missing () =
      let m = ref 0 in
      for j = !i to !i + k - 1 do
        if responses.(j) = None then incr m
      done;
      !m
    in
    send_missing ();
    while missing () > 0 do
      match Client.recv !c with
      | Error _ ->
          reconnect ();
          send_missing ()
      | Ok resp ->
          let idx = resp.Protocol.rid in
          if idx < 0 || idx >= n then
            die (Printf.sprintf "response id %d out of range" idx);
          if responses.(idx) = None then begin
            responses.(idx) <- Some resp;
            lat.(idx) <- Unix.gettimeofday () -. t0;
            incr answered;
            maybe_kill ()
          end
    done;
    i := !i + k
  done;
  let c = !c in
  (match transcript with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Array.iteri
        (fun idx -> function
          | Some resp ->
              Printf.fprintf oc "%d %s\n" idx (render_body resp.Protocol.body)
          | None -> Printf.fprintf oc "%d MISSING\n" idx)
        responses;
      close_out oc);
  let count p = Array.fold_left (fun acc r -> if p r then acc + 1 else acc) 0 responses in
  let overloaded =
    count (function
      | Some { Protocol.body = Protocol.Error_r { code = Protocol.Overloaded; _ }; _ } ->
          true
      | _ -> false)
  in
  let errors =
    count (function
      | Some { Protocol.body = Protocol.Error_r _; _ } -> true
      | _ -> false)
  in
  (* Latency is a measurement, not an output: stderr, like the sweep
     timing line, so stdout and the transcript stay deterministic. *)
  let sorted = Array.copy lat in
  Array.sort compare sorted;
  let pct p = sorted.(min (n - 1) (int_of_float (p *. float_of_int n))) in
  Printf.eprintf
    "[%d request(s): %d ok, %d overloaded, %d other error; p50 %.1f ms, p99 \
     %.1f ms]\n"
    n (n - errors) overloaded (errors - overloaded)
    (1000. *. pct 0.5) (1000. *. pct 0.99);
  (if stats_flag then begin
     let sreq =
       {
         Protocol.id = n;
         op = Protocol.Stats;
         seed = 0L;
         graph = "-";
         model = "-";
         t = 0;
         engine = "-";
         trials = 1;
         vertex = 0;
         deadline_ms = 0;
       }
     in
     (match Client.call c sreq with
     | Error msg ->
         Client.close c;
         die msg
     | Ok resp -> print_endline (render_body resp.Protocol.body));
     (* Health rides along with --stats: operators watching counters want
        to know about degraded modes in the same glance. *)
     let hreq = { sreq with Protocol.id = n + 1; op = Protocol.Health } in
     match Client.call c hreq with
     | Error msg ->
         Client.close c;
         die msg
     | Ok resp -> print_endline (render_body resp.Protocol.body)
   end);
  Client.close c;
  0

(* `locsample health`: one Health request, one line, and an exit code CI
   can branch on — 0 healthy, 1 degraded (usage/connection errors keep
   the CLI's exit-2 contract). *)
let health connect =
  let address = parse_listen connect in
  let c =
    match Client.connect_retry address with Ok c -> c | Error msg -> die msg
  in
  let req =
    {
      Protocol.id = 0;
      op = Protocol.Health;
      seed = 0L;
      graph = "-";
      model = "-";
      t = 0;
      engine = "-";
      trials = 1;
      vertex = 0;
      deadline_ms = 0;
    }
  in
  match Client.call c req with
  | Error msg ->
      Client.close c;
      die msg
  | Ok resp -> (
      Client.close c;
      print_endline (render_body resp.Protocol.body);
      match resp.Protocol.body with
      | Protocol.Health_r { reasons = [] } -> 0
      | Protocol.Health_r _ -> 1
      | _ -> die "unexpected response to a health request")

(* The serve chaos harness: like `locsample chaos`, exit 1 + reproducer
   file on any violation; a baseline that cannot run at all is exit 1
   with a named error (broken environment, nothing to shrink). *)
let serve_chaos seed schedules requests reproducer_path no_sysfault =
  let summary =
    try
      Ls_chaos.Serve_chaos.run ~schedules ~requests
        ~sysfault:(not no_sysfault) ~seed:(Int64.of_int seed) ()
    with
    | Invalid_argument msg -> die msg
    | Failure msg ->
        Printf.eprintf "locsample: %s\n" msg;
        exit 1
  in
  if Ls_chaos.Serve_chaos.ok summary then begin
    Printf.printf
      "serve-chaos: %d schedule(s) x %d request(s) from seed %d — all \
       invariants held\n"
      schedules requests seed;
    0
  end
  else begin
    let text = Ls_chaos.Serve_chaos.reproducer summary in
    print_string text;
    let oc = open_out reproducer_path in
    output_string oc text;
    close_out oc;
    Printf.printf "reproducer written to %s\n" reproducer_path;
    1
  end

(* --- cmdliner wiring -------------------------------------------------- *)

open Cmdliner

(* Validate every LOCSAMPLE_* environment variable up front, before any
   subcommand runs.  Without this, a malformed LOCSAMPLE_DOMAINS only
   surfaces at the first parallel call deep inside a subcommand — as an
   Invalid_argument backtrace instead of the CLI's named-error exit-2
   contract. *)
let env_checks =
  [ Par.env_check; Ls_shard.Ckpt.env_check; Ls_serve.Server.env_check;
    Ls_chaos.Sysfault.env_check ]

let validate_env () =
  List.iter
    (fun check ->
      match check () with
      | Ok () -> ()
      | Error msg ->
          Printf.eprintf "locsample: %s\n" msg;
          exit 2)
    env_checks

let setup_log style_renderer level domains trace metrics =
  validate_env ();
  (* Validated above, so this cannot raise; quiet or unset is a no-op. *)
  Ls_chaos.Sysfault.install_from_env ();
  Fmt_tty.setup_std_outputs ?style_renderer ();
  Logs.set_level level;
  Logs.set_reporter (Logs_fmt.reporter ());
  Option.iter
    (fun k ->
      if k < 1 then begin
        Printf.eprintf "locsample: --domains expects an integer >= 1, got %d\n" k;
        exit 2
      end;
      Par.set_domains k)
    domains;
  Option.iter
    (fun path ->
      let t = Ls_obs.Trace.make ~path () in
      Ls_obs.Trace.install t;
      at_exit (fun () -> Ls_obs.Trace.close t))
    trace;
  if metrics then begin
    Ls_obs.Metrics.set_enabled true;
    at_exit (fun () ->
        Ls_obs.Metrics.print stdout (Ls_obs.Metrics.snapshot ()))
  end

let domains_arg =
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"K"
       ~doc:"Domain count for the parallel trial engine (default: the \
             LOCSAMPLE_DOMAINS environment variable, else the core count). \
             Results are identical for every value; only speed changes.")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
       ~doc:"Record the runtime's structured event stream (broadcast \
             phases, applied fault verdicts, crashes, retry supervision, \
             decompositions, parallel batches) to $(docv) as JSON lines. \
             Deterministic modulo the leading \"ts\" field: strip it and \
             the file is byte-identical across --domains counts.")

let metrics_arg =
  Arg.(value & flag & info [ "metrics" ]
       ~doc:"Print an aggregate counter summary (phases, rounds, bits, \
             messages, fault verdicts, supervision, pool utilization) on \
             exit.")

let setup_log_term =
  Term.(const setup_log $ Fmt_cli.style_renderer () $ Logs_cli.level ()
        $ domains_arg $ trace_arg $ metrics_arg)

let graph_arg =
  Arg.(value & opt string "cycle:16" & info [ "g"; "graph" ] ~docv:"GRAPH"
       ~doc:"Graph: cycle:N, path:N, grid:RxC, tree:BxD, regular:NxD, tree-rand:N.")

let model_arg =
  Arg.(value & opt string "hardcore:1.0" & info [ "m"; "model" ] ~docv:"MODEL"
       ~doc:"Model: hardcore:L, ising:B[:F], coloring:Q, matching:L.")

let t_arg =
  Arg.(value & opt int 2 & info [ "t"; "radius" ] ~docv:"T"
       ~doc:"Ball radius of the inference oracle (Theorem 5.1 algorithm).")

let seed_arg =
  Arg.(value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let engine_arg =
  Arg.(value & opt string "ball" & info [ "engine" ] ~docv:"ENGINE"
       ~doc:"Inference engine: 'ball' (Theorem 5.1 annulus algorithm) or \
             'saw' (Weitz's self-avoiding-walk tree; binary models only).")

let sample_cmd =
  let jvv = Arg.(value & flag & info [ "exact"; "jvv" ] ~doc:"Use the exact JVV sampler.") in
  let eps =
    Arg.(value & opt (some float) None & info [ "epsilon" ] ~docv:"EPS"
         ~doc:"JVV slack parameter (default: 1/n^3).")
  in
  let trials =
    Arg.(value & opt int 1 & info [ "trials" ] ~docv:"N"
         ~doc:"Draw N samples through the parallel trial engine and report \
               aggregate statistics (success rate, distinct configurations, \
               throughput, and — on small state spaces — the empirical TV \
               against the exact joint distribution).")
  in
  let fault_rate =
    Arg.(value & opt float 0. & info [ "fault-rate" ] ~docv:"P"
         ~doc:"Per-(round, edge) message drop probability of the injected \
               fault plan (0 disables fault injection; the zero-fault plan \
               is bit-identical to the reliable runtime).")
  in
  let crash_rate =
    Arg.(value & opt float 0. & info [ "crash-rate" ] ~docv:"P"
         ~doc:"Per-node crash probability of the injected fault plan (a \
               crashed node is gone for good unless the plan grants it a \
               recovery — see --fault-profile flaky).")
  in
  let max_delay =
    Arg.(value & opt int 1 & info [ "max-delay" ] ~docv:"D"
         ~doc:"Upper bound (>= 1) on how many rounds a delayed copy can \
               arrive late.  Only meaningful when the plan has a nonzero \
               delay rate (e.g. via --fault-profile flaky).")
  in
  let corrupt_rate =
    Arg.(value & opt float 0. & info [ "corrupt-rate" ] ~docv:"P"
         ~doc:"Per-(round, edge, copy) payload corruption probability.  \
               Corrupted flood records are detected by an integrity digest \
               and quarantined — billed but never delivered — so corruption \
               costs availability, never correctness.")
  in
  let profile =
    Arg.(value & opt (some string) None & info [ "fault-profile" ] ~docv:"NAME"
         ~doc:"Named fault preset: 'lossy' (pure message loss), 'flaky' \
               (loss + duplication + delay + crash-recovery + corruption), \
               or 'partitioned' (a partition interval and a drop burst over \
               light loss).  Explicit flags override the preset field they \
               correspond to; everything funnels through the same \
               validation.")
  in
  let retry_budget =
    Arg.(value & opt int 3 & info [ "retry-budget" ] ~docv:"R"
         ~doc:"Max retries (with exponential backoff, charged to the round \
               meter) before a faulty run degrades to a partial sample.")
  in
  let skew =
    Arg.(value & opt float 0. & info [ "skew" ] ~docv:"S"
         ~doc:"Max extra per-node clock-rate factor (>= 0): a node's local \
               round costs 1 to 1+$(docv) virtual time units on the \
               asynchronous executor.  Timing-only — verdicts, outputs and \
               round charges are unaffected.")
  in
  let delay_law =
    Arg.(value & opt string "uniform" & info [ "delay-law" ] ~docv:"LAW"
         ~doc:"Virtual link-latency law of the asynchronous executor: \
               'uniform', 'exp'/'exponential', or 'heavy'/'pareto' — all \
               mean 1.0, so laws change delay tails, not average load.  \
               Timing-only, like --skew.")
  in
  let async_mode =
    Arg.(value & opt (some string) None & info [ "async" ] ~docv:"MODE"
         ~doc:"Flood over the event-driven executor instead of lockstep \
               rounds: 'synchronizer' (alpha-synchronizer; bit-identical \
               outputs, rounds and traces under any delay law or skew) or \
               'adaptive' (EWMA timeouts + capped retransmissions; a \
               misfired timeout degrades to a retry, never a wrong \
               sample).")
  in
  let timeout_base =
    Arg.(value & opt float 3.0 & info [ "timeout-base" ] ~docv:"T"
         ~doc:"Initial per-neighbor latency estimate of the adaptive \
               executor, in virtual time units (a fault-free link averages \
               1.0).  Lower values misfire more timeouts — costing retries, \
               never correctness.")
  in
  let sketch =
    Arg.(value & opt (some (pair ~sep:',' int int)) None
         & info [ "sketch" ] ~docv:"W,D"
         ~doc:"With --trials, also aggregate the successful samples into a \
               mergeable count-min + bottom-k sketch pair of width $(docv) \
               (eps = e/W, delta = exp(-D)) and print its distinct-count \
               estimate, serialized size and digest.  The sketch hash \
               family is derived from --seed, so the digest is \
               reproducible and --domains invariant.")
  in
  let sketch_k =
    Arg.(value & opt int 256 & info [ "sketch-k" ] ~docv:"K"
         ~doc:"Bottom-k capacity of the --sketch distinct-count estimator \
               (relative std error 1/sqrt(K-2)).")
  in
  let shards =
    Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"K"
         ~doc:"Run across $(docv) worker OS processes with kill -9 fault \
               tolerance: single runs shard the graph's broadcast phases \
               (deterministic inter-shard routing in virtual-time order), \
               --trials sweeps shard the trial range.  Output is \
               bit-identical for every value, including 1 and unsharded; \
               only the failure domain changes.  Synchronous executor \
               only (incompatible with --async); forces --domains 1.")
  in
  let shard_kill =
    Arg.(value & opt string "" & info [ "shard-kill" ] ~docv:"SPEC"
         ~doc:"Comma-separated fault injection for --shards: each spec is \
               SHARD:PHASE:ROUND[:INCARNATION][:hang] and SIGKILLs (or \
               hangs, to exercise liveness probes) that worker incarnation \
               at that coordinate.  The supervisor restarts it from its \
               last checkpoint; the run's output must be unchanged.")
  in
  Cmd.v (Cmd.info "sample" ~doc:"Sample a configuration in the LOCAL model")
    Term.(const (fun () a b c d e f g h i j k l m n o p q r s t u v -> sample a b c d e f g h i j k l m n o p q r s t u v) $ setup_log_term $ graph_arg $ model_arg $ t_arg $ seed_arg $ engine_arg $ jvv $ eps $ trials $ fault_rate $ crash_rate $ max_delay $ corrupt_rate $ skew $ delay_law $ async_mode $ timeout_base $ profile $ retry_budget $ sketch $ sketch_k $ shards $ shard_kill)

let infer_cmd =
  let vertex = Arg.(value & opt int 0 & info [ "vertex" ] ~docv:"V" ~doc:"Vertex.") in
  let boosted = Arg.(value & flag & info [ "boosted" ] ~doc:"Apply the Lemma 4.1 boosting.") in
  Cmd.v (Cmd.info "infer" ~doc:"Approximate marginal inference at a vertex")
    Term.(const (fun () a b c d e f g -> infer a b c d e f g) $ setup_log_term $ graph_arg $ model_arg $ t_arg $ seed_arg $ engine_arg $ vertex $ boosted)

let ssm_cmd =
  let max_d = Arg.(value & opt int 5 & info [ "max-d" ] ~docv:"D" ~doc:"Max distance.") in
  Cmd.v (Cmd.info "ssm" ~doc:"Measure strong spatial mixing")
    Term.(const (fun () a b c d -> ssm a b c d) $ setup_log_term $ graph_arg $ model_arg $ seed_arg $ max_d)

let phase_cmd =
  let branching = Arg.(value & opt int 2 & info [ "b"; "branching" ] ~docv:"B" ~doc:"Tree branching.") in
  let depth = Arg.(value & opt int 8 & info [ "d"; "depth" ] ~docv:"D" ~doc:"Tree depth.") in
  let lambdas =
    Arg.(value & opt (list float) [ 1.; 2.; 4.; 8. ] & info [ "lambdas" ] ~docv:"L,L,..."
         ~doc:"Fugacities to scan.")
  in
  Cmd.v (Cmd.info "phase" ~doc:"Hardcore phase-transition scan on complete trees")
    Term.(const (fun () a b c -> phase a b c) $ setup_log_term $ branching $ depth $ lambdas)

let count_cmd =
  Cmd.v (Cmd.info "count" ~doc:"Estimate ln Z via local inference (self-reduction)")
    Term.(const (fun () a b c d -> count a b c d) $ setup_log_term $ graph_arg $ model_arg $ t_arg $ seed_arg)

let chaos_cmd =
  let schedules =
    Arg.(value & opt int 10 & info [ "schedules" ] ~docv:"N"
         ~doc:"Random fault schedules to generate and check.")
  in
  let trials =
    Arg.(value & opt int 80 & info [ "chaos-trials" ] ~docv:"N"
         ~doc:"Sampling trials per schedule.")
  in
  let reproducer =
    Arg.(value & opt string "chaos-reproducer.txt" & info [ "reproducer" ]
         ~docv:"FILE"
         ~doc:"Where to write the shrunk reproducer on failure.")
  in
  let async_mode =
    Arg.(value & opt (some string) None & info [ "async" ] ~docv:"MODE"
         ~doc:"Run every trial batch over the event-driven executor: \
               'synchronizer' or 'adaptive'.  The sync-vs-async identity \
               invariant is checked either way.")
  in
  let max_delay =
    Arg.(value & opt (some int) None & info [ "max-delay" ] ~docv:"D"
         ~doc:"Force this delay bound onto every generated schedule.")
  in
  let corrupt_rate =
    Arg.(value & opt (some float) None & info [ "corrupt-rate" ] ~docv:"P"
         ~doc:"Force this corruption rate onto every generated schedule.")
  in
  let profile =
    Arg.(value & opt (some string) None & info [ "fault-profile" ] ~docv:"NAME"
         ~doc:"Replace every generated schedule's rates with this preset \
               ('lossy', 'flaky', 'partitioned') before the other override \
               flags apply — the same precedence as the sample command.")
  in
  let partition_conv =
    let parse s =
      match String.split_on_char ':' s with
      | [ a; u; k ] -> (
          try Ok (int_of_string a, int_of_string u, int_of_string k)
          with _ -> Error (`Msg "partition wants FROM:UNTIL:PARTS"))
      | _ -> Error (`Msg "partition wants FROM:UNTIL:PARTS")
    in
    let print ppf (a, u, k) = Format.fprintf ppf "%d:%d:%d" a u k in
    Arg.conv (parse, print)
  in
  let partitions =
    Arg.(value & opt_all partition_conv [] & info [ "partition" ]
         ~docv:"FROM:UNTIL:PARTS"
         ~doc:"Force this partition interval onto every generated schedule \
               (repeatable; replaces the generated intervals).")
  in
  let shards =
    Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"K"
         ~doc:"Additionally check the sharded invariants at $(docv) worker \
               processes per schedule: shard-identity (the multi-process \
               transport reproduces the in-process executor bit-for-bit) \
               and kill-recovery (a worker kill -9ed before its first \
               checkpoint recovers to the same verdicts, twice).  \
               Synchronous-only (incompatible with --async).")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Run the chaos harness: random fault schedules, an invariant \
             suite (zero-fault bit-identity, conservation at teardown, \
             domain-count determinism, sync-vs-async executor identity, \
             Las Vegas exactness), and greedy shrinking of failures to \
             minimal reproducers.  Exits 1 on any violation, after writing \
             the reproducer file — whose replay line carries every flag of \
             this command.")
    Term.(const (fun () a b c d e f g h i j -> chaos a b c d e f g h i j) $ setup_log_term $ seed_arg $ schedules $ trials $ async_mode $ max_delay $ corrupt_rate $ profile $ partitions $ shards $ reproducer)

let serve_cmd =
  let listen =
    Arg.(value & opt (some string) None & info [ "listen" ] ~docv:"ADDR"
         ~doc:"Listen address: unix:PATH, tcp:HOST:PORT, tcp:PORT \
               (localhost), or a bare unix socket path.  Default: \
               LOCSAMPLE_SERVE_SOCKET, else a socket under the system temp \
               dir.")
  in
  let queue_bound =
    Arg.(value & opt (some int) None & info [ "queue-bound" ] ~docv:"N"
         ~doc:"Admission bound: a request arriving while $(docv) requests \
               are queued is answered 'overloaded' immediately (default: \
               LOCSAMPLE_SERVE_QUEUE, else 64).")
  in
  let batch_max =
    Arg.(value & opt (some int) None & info [ "batch-max" ] ~docv:"N"
         ~doc:"Most requests executed per engine batch (default 32). \
               Same-instance requests in a batch coalesce onto one compiled \
               model and one parallel trial fan-out.")
  in
  let cache =
    Arg.(value & opt (some int) None & info [ "cache" ] ~docv:"N"
         ~doc:"LRU capacity for compiled instances (default: \
               LOCSAMPLE_SERVE_CACHE, else 64).")
  in
  let plan_cache =
    Arg.(value & opt (some int) None & info [ "plan-cache" ] ~docv:"N"
         ~doc:"LRU capacity for compiled Linial–Saks schedules (default \
               1024).")
  in
  let max_vertices =
    Arg.(value & opt (some int) None & info [ "max-vertices" ] ~docv:"N"
         ~doc:"Reject request graphs larger than $(docv) vertices (default \
               100000).")
  in
  let max_requests =
    Arg.(value & opt (some int) None & info [ "max-requests" ] ~docv:"N"
         ~doc:"Exit after answering $(docv) requests (deterministic \
               termination for tests and CI; default: serve until \
               SIGTERM/SIGINT).")
  in
  let send_timeout =
    Arg.(value & opt (some float) None & info [ "send-timeout" ] ~docv:"SECS"
         ~doc:"SO_SNDTIMEO on client sockets: a peer that keeps a response \
               write blocked this long is dropped rather than wedging the \
               loop (default: LOCSAMPLE_SERVE_SEND_TIMEOUT, else 10).")
  in
  let state_dir =
    Arg.(value & opt (some string) None & info [ "state-dir" ] ~docv:"DIR"
         ~doc:"Persist the engine caches to $(docv)/serve-cache.snap — a \
               self-validating tmp+rename snapshot written on drain and \
               every --snapshot-every batches, reloaded on boot (torn or \
               corrupt files read as absence).  Default: \
               LOCSAMPLE_SERVE_STATE, else no persistence.")
  in
  let snapshot_every =
    Arg.(value & opt (some int) None & info [ "snapshot-every" ] ~docv:"N"
         ~doc:"Snapshot cadence in executed batches (default 8); only \
               meaningful with --state-dir.")
  in
  let supervised =
    Arg.(value & flag & info [ "supervised" ]
         ~doc:"Fork the select loop as a worker under the shard \
               supervisor's restart-budget/backoff/hang-probe discipline.  \
               The parent holds the listening socket, so a crashed (even \
               kill -9ed) worker restarts without dropping it; with \
               --state-dir each incarnation warm-starts from the latest \
               cache snapshot.  SIGTERM still drains gracefully.")
  in
  let worker_pid_file =
    Arg.(value & opt (some string) None & info [ "worker-pid-file" ]
         ~docv:"FILE"
         ~doc:"With --supervised, publish the current worker's pid to \
               $(docv) (atomic rewrite on every respawn) so tests and CI \
               can aim kill -9 at the worker deterministically.")
  in
  let sysfault =
    Arg.(value & opt (some string) None & info [ "sysfault" ] ~docv:"SPEC"
         ~doc:"Install a deterministic syscall fault schedule before \
               serving: \
               seed=S,write=P,rename=P,open=P,short=P,eintr=P,accept=P,\
               fork=P,budget=N.  Disk faults (ENOSPC on checkpoint and pid \
               files) push the daemon into its degraded modes without ever \
               failing a response; budget=N silences the schedule after N \
               syscall consultations (0 = never).  Overrides \
               LOCSAMPLE_SYSFAULT.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the batched sampling-as-a-service daemon.  Responses are a \
             pure function of the request bytes (admission verdicts and \
             stats aside): a request carries its seed, so the same request \
             stream produces the same response bytes at any --domains \
             count.  Resource exhaustion (ENOSPC, EMFILE, fork EAGAIN) \
             degrades service — skipped snapshots, shed connections — \
             without killing it; `locsample health` reports the current \
             degraded modes.")
    Term.(const (fun () a b c d e f g h i j k l m ->
              serve a b c d e f g h i j k l m)
          $ setup_log_term $ listen $ queue_bound $ batch_max $ cache
          $ plan_cache $ max_vertices $ max_requests $ send_timeout
          $ state_dir $ snapshot_every $ supervised $ worker_pid_file
          $ sysfault)

let query_cmd =
  let connect =
    Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"ADDR"
         ~doc:"Daemon address (same syntax and default as serve --listen).")
  in
  let requests =
    Arg.(value & opt int 64 & info [ "requests" ] ~docv:"N"
         ~doc:"Requests to send: a deterministic mixed sample/infer/count \
               stream derived from --seed.")
  in
  let pipeline =
    Arg.(value & opt int 8 & info [ "pipeline" ] ~docv:"K"
         ~doc:"Pipeline depth: push $(docv) requests before reading their \
               responses.  Depths beyond the daemon's queue bound provoke \
               'overloaded' verdicts — the admission-control smoke test.")
  in
  let transcript =
    Arg.(value & opt (some string) None & info [ "transcript" ] ~docv:"FILE"
         ~doc:"Write one line per response to $(docv), ordered by request \
               id with full-precision floats — byte-identical across \
               daemon --domains counts when nothing is overloaded.")
  in
  let stats_flag =
    Arg.(value & flag & info [ "stats" ]
         ~doc:"Finish with a stats request and print the daemon's counters \
               (requests, batches, coalesced, cache hits/misses/evictions, \
               rejections, expiries, snapshot hits, restarts, queue \
               high-water, domains).")
  in
  let deadline_ms =
    Arg.(value & opt int 0 & info [ "deadline-ms" ] ~docv:"MS"
         ~doc:"Stamp every generated request with this queue deadline: a \
               request still queued after $(docv) ms is answered 'expired' \
               without executing (0 = no deadline).")
  in
  let kill_after =
    Arg.(value & opt int 0 & info [ "kill-after" ] ~docv:"K"
         ~doc:"After harvesting $(docv) responses, kill -9 the supervised \
               worker named by --worker-pid-file, then finish the burst \
               through the reconnect/resend loop (0 = disabled).  The \
               crash-tolerance smoke: the transcript must stay \
               byte-identical to an unkilled run.")
  in
  let worker_pid_file =
    Arg.(value & opt (some string) None & info [ "worker-pid-file" ]
         ~docv:"FILE"
         ~doc:"Where the daemon's --worker-pid-file publishes the worker \
               pid (required by --kill-after).")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Load-test a running serve daemon with a deterministic request \
             stream; report latency percentiles on stderr.  Survives \
             daemon restarts: a broken connection is reconnected (with \
             backoff) and the window's unanswered requests are resent.")
    Term.(const (fun () a b c d e f g h i -> query a b c d e f g h i)
          $ setup_log_term $ connect $ requests $ pipeline $ seed_arg
          $ transcript $ stats_flag $ deadline_ms $ kill_after
          $ worker_pid_file)

let serve_chaos_cmd =
  let schedules =
    Arg.(value & opt int 5 & info [ "schedules" ] ~docv:"N"
         ~doc:"Random proxy fault schedules to generate and check.")
  in
  let requests =
    Arg.(value & opt int 40 & info [ "requests" ] ~docv:"N"
         ~doc:"Requests per burst (the same deterministic stream as \
               query).")
  in
  let reproducer =
    Arg.(value & opt string "chaos-reproducer-serve.txt"
         & info [ "reproducer" ] ~docv:"FILE"
         ~doc:"Where to write the shrunk reproducer on failure.")
  in
  let no_sysfault =
    Arg.(value & flag & info [ "no-sysfault" ]
         ~doc:"Disable the syscall fault dimension (ENOSPC, EMFILE, EINTR, \
               short writes inside the daemon) and chaos-test through the \
               socket proxy alone.  The socket schedules are identical \
               either way, so a failure that vanishes under this flag is \
               localized to the syscall dimension.")
  in
  Cmd.v
    (Cmd.info "serve-chaos"
       ~doc:"Chaos-test the serving daemon through a deterministic socket \
             fault proxy (delay, truncation, corruption, resets, duplicate \
             frames) plus an in-daemon syscall fault schedule (ENOSPC, \
             EMFILE, EINTR, short writes), and check the serve invariants: \
             the daemon never crashes and drains cleanly on SIGTERM, \
             responses are never matched to the wrong request, every \
             accepted response is byte-identical to a fault-free run, and \
             every degraded-mode entry in the daemon's trace is paired \
             with its exit.  Failing schedules shrink to minimal \
             reproducers; exits 1 on any violation, after writing the \
             reproducer file.")
    Term.(const (fun () a b c d e -> serve_chaos a b c d e)
          $ setup_log_term $ seed_arg $ schedules $ requests $ reproducer
          $ no_sysfault)

let health_cmd =
  let connect =
    Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"ADDR"
         ~doc:"Daemon address (same syntax and default as serve --listen).")
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:"Ask a running serve daemon for its degraded-mode report.  \
             Prints 'health ok' or 'health degraded(subsystem=reason;...)' \
             — snapshot circuit-breaker open, checkpoint-free operation \
             after ENOSPC, connection shedding under EMFILE.  Exits 0 when \
             healthy, 1 when degraded, 2 on usage or connection errors.")
    Term.(const (fun () a -> health a) $ setup_log_term $ connect)

let main_cmd =
  Cmd.group
    (Cmd.info "locsample" ~version:"1.0.0"
       ~doc:"Local distributed sampling and counting (Feng & Yin, PODC 2018)")
    [ sample_cmd; infer_cmd; ssm_cmd; phase_cmd; count_cmd; chaos_cmd;
      serve_cmd; query_cmd; serve_chaos_cmd; health_cmd ]

let () = exit (Cmd.eval' main_cmd)
