(* List-colorings with pinned vertices: self-reducibility in action.

   We pin a few vertices of a complete binary tree to fixed colors
   (producing a list-coloring instance on the rest, exactly as Remark 2.2
   describes), sample the remaining colors in the LOCAL model, and use the
   boosting lemma to get multiplicatively accurate marginals.

   Run with:  dune exec examples/colorings_demo.exe *)

module Graph = Ls_graph.Graph
module Generators = Ls_graph.Generators
module Dist = Ls_dist.Dist
module Empirical = Ls_dist.Empirical
module Rng = Ls_rng.Rng
module Par = Ls_par.Par
module Models = Ls_gibbs.Models
open Ls_core

let color_name = [| "red"; "green"; "blue"; "yellow" |]

let () =
  let depth = 4 in
  let g = Generators.complete_tree ~branching:2 ~depth in
  let n = Graph.n g in
  let q = 4 in
  let spec = Models.coloring g ~q in
  (* Pin the root and the last leaf: the conditional distribution is a
     uniform list-coloring of the rest. *)
  let inst = Instance.of_pins spec [ (0, 0); (n - 1, 1) ] in
  Printf.printf
    "uniform %d-colorings of the depth-%d binary tree (%d vertices),\n\
     root pinned %s, last leaf pinned %s\n\n"
    q depth n color_name.(0) color_name.(1);

  (* LOCAL sampling. *)
  let oracle = Inference.ssm_oracle ~t:2 inst in
  let result = Local_sampler.sample oracle inst ~seed:3L in
  Printf.printf "sampled in %d LOCAL rounds (%s):\n" result.Local_sampler.rounds
    (if result.Local_sampler.success then "no failures" else "with local failures");
  let dist0 = Graph.bfs_distances g 0 in
  for level = 0 to depth do
    Printf.printf "  level %d: " level;
    for v = 0 to n - 1 do
      if dist0.(v) = level then
        Printf.printf "%s " color_name.(result.Local_sampler.sigma.(v))
    done;
    print_newline ()
  done;
  assert (Ls_gibbs.Spec.weight spec result.Local_sampler.sigma > 0.);

  (* Marginal inference at an internal vertex, plain vs boosted
     (Lemma 4.1). *)
  let v = 1 (* child of the root *) in
  let exact = Option.get (Exact.marginal inst v) in
  let aplus = Inference.ssm_oracle ~t:1 inst in
  let boosted = Boosting.boost aplus inst in
  let plain = aplus.Inference.infer inst v in
  let b = boosted.Inference.infer inst v in
  Printf.printf "\nmarginal color distribution at vertex %d:\n" v;
  Printf.printf "  exact:   %s\n" (Format.asprintf "%a" Dist.pp exact);
  (* An empirical check of the same marginal: 800 LOCAL sampler runs fanned
     out over the parallel trial engine (identical at any domain count). *)
  let emp =
    Empirical.collect ~n:800 ~seed:21L (fun rng ->
        (Local_sampler.sample oracle inst ~seed:(Rng.bits64 rng)).Local_sampler.sigma)
  in
  let freq = Empirical.marginal emp ~v ~q in
  Printf.printf "  800 parallel LOCAL samples: [%s]  tv=%.5f\n"
    (String.concat " " (List.map (Printf.sprintf "%.3f") (Array.to_list freq)))
    (Dist.tv (Dist.of_weights freq) exact);
  Printf.printf "  plain (t=1):          tv=%.5f  mult_err=%.5f\n"
    (Dist.tv plain exact) (Dist.mult_err plain exact);
  Printf.printf "  boosted (Lemma 4.1):  tv=%.5f  mult_err=%.5f\n" (Dist.tv b exact)
    (Dist.mult_err b exact);

  (* Counting: the number of proper colorings consistent with the pins,
     recovered from local marginals by the chain rule. *)
  let order = Array.init n (fun i -> i) in
  let log_z = Reductions.estimate_log_partition oracle inst ~order in
  (* The exact value via the same chain rule driven by exact (forest-DP)
     marginals — brute-force enumeration would be hopeless at q=4, n=31. *)
  let log_z_exact =
    Reductions.estimate_log_partition (Inference.exact inst) inst ~order
  in
  Printf.printf "\n#colorings consistent with pins: exp(%.4f) ~ %.3e (exact %.3e)\n"
    log_z (exp log_z) (exp log_z_exact)
