(* Counting with local information: the other half of the paper's title.

   Global counts decompose through the chain rule into the per-vertex
   marginals that the LOCAL inference algorithm computes (self-
   reducibility, §1).  We count independent sets, matchings and colorings
   three ways — closed-form combinatorics, the exact DP engines, and the
   paper's local inference — and watch the local estimate converge as the
   inference radius grows.

   Run with:  dune exec examples/counting_demo.exe *)

module Generators = Ls_graph.Generators
module Models = Ls_gibbs.Models
module Par = Ls_par.Par
open Ls_core

(* Radius sweeps are embarrassingly parallel: estimate every radius
   through the trial engine, print in order. *)
let local_estimates inst radii =
  Par.map_list
    (fun t -> (t, exp (Counting.log_z_local (Inference.ssm_oracle ~t inst) inst)))
    radii

let () =
  let n = 30 in
  Printf.printf "independent sets of C%d:\n" n;
  Printf.printf "  closed form (Lucas L_%d)   = %.0f\n" n
    (Counting.closed_form_independent_sets_cycle n);
  Printf.printf "  transfer-matrix engine     = %.0f\n"
    (Counting.count_independent_sets (Generators.cycle n));
  let inst = Instance.unpinned (Models.hardcore (Generators.cycle n) ~lambda:1.) in
  List.iter
    (fun (t, est) -> Printf.printf "  local inference, radius %d  = %.1f\n" t est)
    (local_estimates inst [ 1; 2; 4; 6; 8 ]);

  let n = 24 in
  Printf.printf "\nmatchings of P%d:\n" n;
  Printf.printf "  closed form (Fibonacci F_%d) = %.0f\n" (n + 1)
    (Counting.closed_form_matchings_path n);
  Printf.printf "  monomer-dimer DP             = %.0f\n"
    (Counting.count_matchings (Generators.path n));

  let n = 20 and q = 4 in
  Printf.printf "\nproper %d-colorings of C%d:\n" q n;
  Printf.printf "  chromatic polynomial       = %.0f\n"
    (Counting.closed_form_colorings_cycle ~n ~q);
  Printf.printf "  transfer-matrix engine     = %.0f\n"
    (Counting.count_proper_colorings (Generators.cycle n) ~q);
  let inst = Instance.unpinned (Models.coloring (Generators.cycle n) ~q) in
  List.iter
    (fun (t, est) -> Printf.printf "  local inference, radius %d  = %.1f\n" t est)
    (local_estimates inst [ 1; 2; 4 ]);

  (* Conditional counting: pinning is just another instance (Def. 2.2). *)
  let inst =
    Instance.of_pins (Models.hardcore (Generators.cycle 30) ~lambda:1.) [ (0, 1); (15, 1) ]
  in
  Printf.printf
    "\nindependent sets of C30 containing vertices 0 and 15: %.0f (exact)\n"
    (exp (Counting.log_z_exact inst))
