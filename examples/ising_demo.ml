(* Anti-ferromagnetic Ising on a high-degree random regular graph, where
   the SAW-tree inference engine (Weitz / Li-Lu-Yin — the machinery behind
   the paper's 2-spin application) earns its keep: a radius-3 ball of a
   4-regular graph has ~50 vertices, far beyond exact enumeration, while
   the self-avoiding-walk tree at depth 3 stays tiny.

   Run with:  dune exec examples/ising_demo.exe *)

module Graph = Ls_graph.Graph
module Generators = Ls_graph.Generators
module Dist = Ls_dist.Dist
module Rng = Ls_rng.Rng
module Par = Ls_par.Par
module Models = Ls_gibbs.Models
open Ls_core

let () =
  let rng = Rng.create 5L in
  let n = 40 in
  let g = Generators.random_regular rng ~n ~d:4 in
  let beta_c = Models.ising_uniqueness_threshold 4 in
  Printf.printf "random 4-regular graph, n=%d; Ising beta_c(4) = %.3f\n\n" n beta_c;
  List.iter
    (fun beta ->
      let spec = Models.ising g ~beta ~field:1.35 in
      let inst = Instance.unpinned spec in
      (* SAW-tree inference at vertex 0, increasing depth. *)
      let m depth = Ls_gibbs.Saw.marginal ~depth spec inst.Instance.pinned 0 in
      let p depth = Dist.prob (Option.get (m depth)) 1 in
      (* The reference: 8 independent Glauber chains, fanned out over the
         parallel trial engine (no exact engine fits here).  Each chain
         gets its own seed-split stream, so the estimate is identical at
         every domain count. *)
      let mc =
        let chains = 8 and count = 500 in
        let hits_per_chain =
          Par.run_trials ~n:chains
            ~seed:(Int64.of_int (int_of_float (beta *. 100.)))
            (fun rng ->
              List.fold_left
                (fun h sigma -> if sigma.(0) = 1 then h + 1 else h)
                0
                (Glauber.sample_many inst ~sweeps:300 ~thin:3 ~count ~rng))
        in
        float_of_int (Array.fold_left ( + ) 0 hits_per_chain)
        /. float_of_int (chains * count)
      in
      Printf.printf
        "beta=%.2f [%s]  Pr(s0=+): saw d=2 %.4f | d=3 %.4f | d=5 %.4f | glauber %.4f\n"
        beta
        (if beta > beta_c then "uniqueness" else "non-uniq. ")
        (p 2) (p 3) (p 5) mc)
    [ 0.8; 0.6; 0.4 ];

  (* Sampling in the LOCAL model with the SAW oracle. *)
  let spec = Models.ising g ~beta:0.7 ~field:1.35 in
  let inst = Instance.unpinned spec in
  let oracle = Inference.saw_oracle ~depth:4 inst in
  let result = Local_sampler.sample oracle inst ~seed:9L in
  let plus =
    Array.fold_left (fun a c -> a + c) 0 result.Local_sampler.sigma
  in
  Printf.printf
    "\nLOCAL sampling at beta=0.7 via the SAW oracle: %d rounds, %d/%d spins up\n"
    result.Local_sampler.rounds plus n
