(* Sampling matchings in the LOCAL model via line-graph duality: the
   monomer-dimer model on G is the hardcore model on L(G), which the paper
   samples exactly in O(sqrt(Delta) log^3 n) rounds thanks to the SSM of
   matchings at rate 1 - Omega(1/sqrt(Delta)).

   Run with:  dune exec examples/matchings_demo.exe *)

module Graph = Ls_graph.Graph
module Generators = Ls_graph.Generators
module Rng = Ls_rng.Rng
module Par = Ls_par.Par
module Matching = Ls_gibbs.Matching
module Matching_dp = Ls_gibbs.Matching_dp
open Ls_core

let () =
  (* A random 3-regular graph on 16 vertices. *)
  let rng = Rng.create 7L in
  let g = Generators.random_regular rng ~n:16 ~d:3 in
  Printf.printf "base graph: %d vertices, %d edges, 3-regular\n" (Graph.n g)
    (Graph.m g);
  let m = Matching.make g ~lambda:1.5 in
  let line_n = Graph.n m.Matching.lg.Ls_graph.Line_graph.line in
  Printf.printf "line graph: %d vertices (one per edge), max degree %d\n\n"
    line_n
    (Graph.max_degree m.Matching.lg.Ls_graph.Line_graph.line);

  (* LOCAL approximate sampling on the line graph. *)
  let inst = Instance.unpinned m.Matching.spec in
  (* Radius 1 keeps the gathered line-graph balls small enough for the
     enumeration engine (line graphs contain triangles, so the forest DP
     does not apply to them). *)
  let oracle = Inference.ssm_oracle ~t:1 inst in
  let result = Local_sampler.sample oracle inst ~seed:11L in
  let matching = Matching.matching_of_config m result.Local_sampler.sigma in
  Printf.printf "sampled matching (%d edges) in %d LOCAL rounds:\n"
    (List.length matching) result.Local_sampler.rounds;
  List.iter (fun (u, v) -> Printf.printf "  %d -- %d\n" u v) matching;
  assert (Matching.is_matching m result.Local_sampler.sigma);

  (* Average matching size over 32 independent LOCAL runs, fanned out over
     the parallel trial engine — every run is a valid matching, and the
     mean is identical at every domain count. *)
  let sizes =
    Par.run_trials ~n:32 ~seed:23L (fun rng ->
        let r = Local_sampler.sample oracle inst ~seed:(Rng.bits64 rng) in
        assert (Matching.is_matching m r.Local_sampler.sigma);
        List.length (Matching.matching_of_config m r.Local_sampler.sigma))
  in
  Printf.printf "mean matching size over %d parallel runs: %.2f edges\n"
    (Array.length sizes)
    (float_of_int (Array.fold_left ( + ) 0 sizes)
    /. float_of_int (Array.length sizes));

  (* Exact edge-occupancy marginals on a tree, with pinned boundary edges —
     the primitive behind the E7 experiment. *)
  let t = Generators.complete_tree ~branching:3 ~depth:5 in
  Printf.printf "\nmonomer-dimer on the complete 3-ary tree of depth 5:\n";
  let root_edge = (0, (Graph.neighbors t 0).(0)) in
  let p_free = Option.get (Matching_dp.edge_marginal t ~lambda:1. ~pins:[] root_edge) in
  Printf.printf "  Pr(root edge in M), free boundary:        %.6f\n" p_free;
  let far_edge = (Graph.n t - 1, (Graph.neighbors t (Graph.n t - 1)).(0)) in
  let fu, fv = far_edge in
  let p_pinned =
    Option.get
      (Matching_dp.edge_marginal t ~lambda:1.
         ~pins:[ (fu, fv, Matching_dp.In) ]
         root_edge)
  in
  Printf.printf "  Pr(root edge in M), one far leaf edge In: %.6f\n" p_pinned;
  Printf.printf "  influence of that distant pin:            %.2e\n"
    (Float.abs (p_free -. p_pinned))
