(* Observability demo: watching the LOCAL runtime work.

   A Trace.t records every broadcast phase, every fault verdict actually
   applied, every supervision attempt and every decomposition as typed
   events; Metrics keeps the aggregate counters.  Three scenes:

     1. a traced faulty flood — what the event stream looks like, and
        the delayed-copy carry-over across a phase boundary;
     2. supervised ball collection, watched through trace + metrics;
     3. a traced chain-rule sampler run (decomposition stats events).

   Run with:  dune exec examples/observability_demo.exe *)

module Generators = Ls_graph.Generators
module Rng = Ls_rng.Rng
module Network = Ls_local.Network
module Faults = Ls_local.Faults
module Resilient = Ls_local.Resilient
module Trace = Ls_obs.Trace
module Metrics = Ls_obs.Metrics
module Models = Ls_gibbs.Models
open Ls_core

let count_events pred trace =
  List.length (List.filter pred (Trace.events trace))

let () =
  Metrics.set_enabled true;

  (* --- Scene 1: a traced faulty flood -------------------------------- *)
  let n = 12 in
  let g = Generators.cycle n in
  let faults = Faults.make ~seed:5L ~drop:0.15 ~delay:0.4 ~max_delay:3 () in
  Printf.printf "scene 1: flooding C%d under %s\n" n (Faults.describe faults);
  let trace = Trace.make () in
  let net = Network.create ~faults ~trace g ~inputs:(Array.init n Fun.id) ~seed:1L in
  let _ = Network.flood_views net ~radius:2 in
  Printf.printf
    "  flood #1: %d events (%d drops, %d delays), %d copies parked past the \
     phase end\n"
    (Trace.total trace)
    (count_events (function Trace.Fault_drop _ -> true | _ -> false) trace)
    (count_events (function Trace.Fault_delay _ -> true | _ -> false) trace)
    (Network.pending_count net);
  (* The parked copies are not lost: the next flood on this network
     delivers them at their absolute due round. *)
  let _ = Network.flood_views net ~radius:2 in
  Printf.printf "  flood #2 ran; %d copies still in flight\n"
    (Network.pending_count net);
  List.iter
    (function
      | Trace.Phase_end { label; clock; rounds; bits; messages } ->
          Printf.printf
            "  phase %-16s clock=%d rounds=%d bits=%d messages=%d\n" label
            clock rounds bits messages
      | _ -> ())
    (Trace.events trace);

  (* --- Scene 2: supervised collection, watched ------------------------ *)
  Printf.printf "\nscene 2: supervised ball collection\n";
  let policy = Resilient.policy ~retry_budget:6 () in
  let _, _, report = Resilient.collect_views ~trace net ~policy ~radius:2 in
  Printf.printf "  %s\n" (Resilient.describe report);
  Printf.printf "  attempts traced: %d, backoffs traced: %d\n"
    (count_events (function Trace.Attempt _ -> true | _ -> false) trace)
    (count_events (function Trace.Backoff _ -> true | _ -> false) trace);

  (* --- Scene 3: a traced sampler run ---------------------------------- *)
  Printf.printf "\nscene 3: chain-rule sampler, decomposition traced\n";
  let inst = Instance.unpinned (Models.hardcore g ~lambda:1.0) in
  let oracle = Inference.ssm_oracle ~t:2 inst in
  let r = Local_sampler.sample oracle ~trace inst ~seed:3L in
  List.iter
    (function
      | Trace.Decomposition { colors; clusters; failures; rounds; _ } ->
          Printf.printf
            "  decomposition: %d colors, %d clusters, %d failures, %d rounds\n"
            colors clusters failures rounds
      | _ -> ())
    (Trace.events trace);
  Printf.printf "  sample ok=%b over %d rounds\n" r.Local_sampler.success
    r.Local_sampler.rounds;

  Printf.printf "\n";
  Metrics.print stdout (Metrics.snapshot ())
