(* The computational phase transition for distributed sampling (Section 5
   of the paper): sweep the hardcore fugacity across the tree uniqueness
   threshold and watch the boundary-to-root correlation switch from
   exponentially decaying (=> O(log^3 n)-round exact sampling) to
   persistent (=> the Omega(diam) lower bound applies).

   Run with:  dune exec examples/phase_transition.exe *)

module Par = Ls_par.Par
open Ls_core

let () =
  let branching = 2 in
  let lambda_c = Phase_transition.critical_lambda ~branching in
  Printf.printf
    "hardcore model on the complete binary tree: lambda_c(Delta=3) = %.3f\n\n"
    lambda_c;
  Printf.printf "%-16s %-12s %-12s %s\n" "lambda/lambda_c" "influence@6"
    "influence@10" "regime";
  (* Each ratio's two tree evaluations are independent: compute the sweep
     through the parallel trial engine, print in order afterwards. *)
  let rows =
    Par.map_list
      (fun ratio ->
        let lambda = ratio *. lambda_c in
        let i6 = Phase_transition.tree_root_influence ~branching ~depth:6 ~lambda in
        let i10 = Phase_transition.tree_root_influence ~branching ~depth:10 ~lambda in
        (ratio, i6, i10))
      [ 0.125; 0.25; 0.5; 0.75; 1.0; 1.5; 2.0; 4.0 ]
  in
  List.iter
    (fun (ratio, i6, i10) ->
      Printf.printf "%-16.2f %-12.5f %-12.5f %s\n" ratio i6 i10
        (if ratio < 1. then "uniqueness: correlations die out"
         else "non-uniqueness: long-range correlation"))
    rows;
  print_newline ();
  (* The influence profile at one subcritical and one supercritical
     fugacity, showing the decay-vs-plateau dichotomy depth by depth. *)
  let profiles =
    Par.map_list
      (fun lambda ->
        (lambda, Phase_transition.influence_profile ~branching ~max_depth:10 ~lambda))
      [ 0.5 *. lambda_c; 2. *. lambda_c ]
  in
  List.iter
    (fun (lambda, profile) ->
      Printf.printf "influence profile at lambda = %.1f:\n" lambda;
      List.iter
        (fun (d, i) -> Printf.printf "  depth %2d: %.6f\n" d i)
        profile)
    profiles
