(* Quickstart: sample weighted independent sets (hardcore model) in the
   LOCAL model — approximately on a 64-cycle (Theorem 3.2), then exactly
   with the distributed JVV sampler (Theorem 4.2) on a smaller instance.

   Run with:  dune exec examples/quickstart.exe *)

module Generators = Ls_graph.Generators
module Models = Ls_gibbs.Models
module Rng = Ls_rng.Rng
module Par = Ls_par.Par
open Ls_core

let () =
  (* --- Part 1: approximate sampling, Theorem 3.2 --------------------- *)
  let n = 64 in
  let lambda = 1.0 in
  let spec = Models.hardcore (Generators.cycle n) ~lambda in
  let inst = Instance.unpinned spec in
  (* The inference oracle is the Theorem 5.1 algorithm with ball radius 3;
     its per-site error is the SSM rate at distance 3 (about 1e-2 here). *)
  let oracle = Inference.ssm_oracle ~t:3 inst in
  let result = Local_sampler.sample oracle inst ~seed:42L in
  Printf.printf "C%d hardcore(%.1f): sampled in %d LOCAL rounds (%d colors, %d clusters)\n"
    n lambda result.Local_sampler.rounds result.Local_sampler.stats.Ls_local.Scheduler.colors
    result.Local_sampler.stats.Ls_local.Scheduler.clusters;
  let occupied =
    List.filter (fun v -> result.Local_sampler.sigma.(v) = 1) (List.init n (fun v -> v))
  in
  Printf.printf "independent set of %d vertices: %s...\n\n" (List.length occupied)
    (String.concat ", "
       (List.map string_of_int (List.filteri (fun i _ -> i < 12) occupied)));
  assert (Ls_gibbs.Spec.weight spec result.Local_sampler.sigma > 0.);

  (* --- Part 2: exact sampling via the distributed JVV sampler -------- *)
  let n = 12 in
  let spec = Models.hardcore (Generators.cycle n) ~lambda in
  let inst = Instance.unpinned spec in
  let oracle = Inference.ssm_oracle ~t:5 inst in
  let epsilon = Jvv.theory_epsilon inst (* the paper's 1/n^3 budget *) in
  (* The sampler is Las Vegas with locally certifiable failures: race 8
     independently seeded attempts through the parallel trial engine and
     keep the first success by index — the answer is the same at every
     domain count.  Conditioned on success the output is EXACTLY mu. *)
  let attempts = 8 in
  let results =
    Par.run_trials ~n:attempts ~seed:1L (fun rng ->
        fst (Jvv.run_local oracle ~epsilon inst ~seed:(Rng.bits64 rng)))
  in
  let result =
    match Array.find_opt (fun r -> r.Jvv.success) results with
    | Some r -> r
    | None -> failwith "all attempts failed; rerun with another seed"
  in
  let successes =
    Array.fold_left (fun a r -> if r.Jvv.success then a + 1 else a) 0 results
  in
  Printf.printf
    "C%d exact (JVV, epsilon=%.2e): %d/%d parallel attempts succeeded, %d clamp(s)\n"
    n epsilon successes attempts result.Jvv.clamped;
  let occupied =
    List.filter (fun v -> result.Jvv.y.(v) = 1) (List.init n (fun v -> v))
  in
  Printf.printf "exact sample: independent set {%s}\n"
    (String.concat ", " (List.map string_of_int occupied));

  (* --- Part 3: local inference (counting) ---------------------------- *)
  let approx = oracle.Inference.infer inst 0 in
  let exact = Option.get (Exact.marginal inst 0) in
  Printf.printf "Pr(v0 occupied): local inference %.6f vs exact %.6f\n"
    (Ls_dist.Dist.prob approx 1) (Ls_dist.Dist.prob exact 1);
  (* ... and global counting through the chain rule (self-reducibility). *)
  let log_z =
    Reductions.estimate_log_partition oracle inst ~order:(Array.init n (fun i -> i))
  in
  Printf.printf "ln Z estimated from local marginals: %.6f (exact %.6f)\n" log_z
    (log (Exact.partition inst))
