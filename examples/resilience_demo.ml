(* Resilience demo: the LOCAL samplers on an unreliable network.

   A deterministic fault plan (Ls_local.Faults) drops messages and
   crash-stops nodes; the retry/backoff supervisor (Ls_local.Resilient)
   recovers what a bounded budget can recover and reports — instead of
   hiding — what it cannot.  Three scenes:

     1. ball collection stalling under message loss, then recovering
        under supervision;
     2. the compiled chain-rule sampler degrading gracefully when no
        budget can save it;
     3. the JVV sampler staying EXACT under faults — drops cost
        availability, never correctness.

   Run with:  dune exec examples/resilience_demo.exe *)

module Generators = Ls_graph.Generators
module Graph = Ls_graph.Graph
module Models = Ls_gibbs.Models
module Rng = Ls_rng.Rng
module Network = Ls_local.Network
module Faults = Ls_local.Faults
module Resilient = Ls_local.Resilient
open Ls_core

let () =
  (* --- Scene 1: stalled ball collection, supervised ------------------- *)
  let n = 16 in
  let g = Generators.cycle n in
  let faults = Faults.make ~seed:7L ~drop:0.3 () in
  Printf.printf "scene 1: flooding C%d under %s\n" n (Faults.describe faults);
  let net = Network.create ~faults g ~inputs:(Array.make n ()) ~seed:1L in
  let bare = Network.flood_views net ~radius:2 in
  let stalled =
    Array.fold_left
      (fun a view -> if Network.view_is_complete net view then a else a + 1)
      0 bare
  in
  Printf.printf "  one unsupervised flood: %d/%d balls incomplete\n" stalled n;
  let policy = Resilient.policy ~retry_budget:6 () in
  let _, failed, report = Resilient.collect_views net ~policy ~radius:2 in
  Printf.printf "  supervised collection: %s; %d node(s) still failed\n"
    (Resilient.describe report)
    (Array.fold_left (fun a f -> if f then a + 1 else a) 0 failed);

  (* --- Scene 2: graceful degradation --------------------------------- *)
  let inst = Instance.unpinned (Models.hardcore g ~lambda:1.0) in
  let oracle = Inference.ssm_oracle ~t:2 inst in
  let blackout = Faults.make ~seed:9L ~drop:1.0 () in
  Printf.printf "\nscene 2: chain-rule sampler under a total blackout\n";
  let r =
    Local_sampler.sample_resilient oracle ~policy ~faults:blackout inst ~seed:2L
  in
  let report = Option.get r.Local_sampler.resilience in
  Printf.printf "  %s\n" (Resilient.describe report);
  Printf.printf "  partial sample still total (%d values), %d node(s) flagged, %d rounds charged\n"
    (Array.length r.Local_sampler.sigma)
    (Array.fold_left (fun a f -> if f then a + 1 else a) 0 r.Local_sampler.failed)
    r.Local_sampler.rounds;

  (* --- Scene 3: JVV stays exact under faults -------------------------- *)
  let n = 8 in
  let inst = Instance.unpinned (Models.hardcore (Generators.cycle n) ~lambda:1.0) in
  let oracle = Inference.ssm_oracle ~t:2 inst in
  let epsilon = Jvv.theory_epsilon inst in
  let faults = Faults.make ~seed:11L ~drop:0.05 ~crash:0.01 () in
  Printf.printf "\nscene 3: JVV on C%d under %s\n" n (Faults.describe faults);
  let s =
    Jvv.run_local_resilient oracle ~epsilon ~policy ~faults inst ~seed:3L
  in
  Printf.printf "  %s; %d total rounds\n"
    (Resilient.describe s.Jvv.resilience)
    s.Jvv.total_rounds;
  if s.Jvv.sresult.Jvv.success then begin
    let occupied =
      List.filter (fun v -> s.Jvv.sresult.Jvv.y.(v) = 1) (List.init n (fun v -> v))
    in
    Printf.printf
      "  exact sample despite the faults: independent set {%s}\n"
      (String.concat ", " (List.map string_of_int occupied));
    assert (Ls_gibbs.Spec.weight inst.Instance.spec s.Jvv.sresult.Jvv.y > 0.)
  end
  else
    Printf.printf
      "  degraded to a partial sample (correctness kept: no biased output is ever emitted)\n"
