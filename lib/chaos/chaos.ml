(* Chaos harness for the LOCAL runtime: generate random fault schedules
   from a seed, run the resilient sampler under each, check a suite of
   invariants that must hold under EVERY schedule, and shrink failing
   schedules to minimal reproducers.

   Everything here is a pure function of the harness seed: schedule
   generation, trial randomness and fault verdicts all derive from it, so
   a failure printed with its seed replays exactly — on any machine, at
   any domain count. *)

module Rng = Ls_rng.Rng
module Dist = Ls_dist.Dist
module Empirical = Ls_dist.Empirical
module Graph = Ls_graph.Graph
module Generators = Ls_graph.Generators
module Models = Ls_gibbs.Models
module Network = Ls_local.Network
module Faults = Ls_local.Faults
module Resilient = Ls_local.Resilient
module Async = Ls_local.Async
module Par = Ls_par.Par
module Exec = Ls_shard.Exec
open Ls_core

(* --- schedules -------------------------------------------------------- *)

type spec = {
  plan_seed : int64;
  drop : float;
  duplicate : float;
  delay : float;
  max_delay : int;
  crash : float;
  recovery : float;
  recovery_delay : int;
  corrupt : float;
  partitions : (int * int * int) list;
  bursts : (int * int * float) list;
  law : Faults.law;
  skew : float;
  reorder : float;
}

let quiet plan_seed =
  {
    plan_seed;
    drop = 0.;
    duplicate = 0.;
    delay = 0.;
    max_delay = 1;
    crash = 0.;
    recovery = 0.;
    recovery_delay = 1;
    corrupt = 0.;
    partitions = [];
    bursts = [];
    law = Faults.Uniform;
    skew = 0.;
    reorder = 0.;
  }

let to_faults s =
  Faults.make ~seed:s.plan_seed ~drop:s.drop ~duplicate:s.duplicate
    ~delay:s.delay ~max_delay:s.max_delay ~crash:s.crash ~recovery:s.recovery
    ~recovery_delay:s.recovery_delay ~corrupt:s.corrupt
    ~partitions:s.partitions ~bursts:s.bursts ~law:s.law ~skew:s.skew
    ~reorder:s.reorder ()

let describe s = Faults.describe (to_faults s)

(* Schedule generation: every dimension of the fault space is exercised
   with positive probability, at rates moderate enough that the workload
   keeps succeeding often (the exactness invariant needs successes). *)
let gen rng =
  let plan_seed = Rng.bits64 rng in
  let rate p hi = if Rng.bernoulli rng p then Rng.float rng *. hi else 0. in
  let drop = rate 0.7 0.12 in
  let duplicate = rate 0.4 0.1 in
  let delay = rate 0.5 0.3 in
  let max_delay = 1 + Rng.int rng 3 in
  let crash = rate 0.5 0.1 in
  let recovery = if Rng.bernoulli rng 0.6 then 0.5 +. (Rng.float rng *. 0.5) else 0. in
  let recovery_delay = 1 + Rng.int rng 6 in
  let corrupt = rate 0.4 0.05 in
  (* Timing dimensions: only the asynchronous executor consults them, so
     the sync-vs-async identity invariant gets exercised under every tail
     shape, not just the uniform one. *)
  let law =
    match Rng.int rng 3 with
    | 0 -> Faults.Uniform
    | 1 -> Faults.Exponential
    | _ -> Faults.Heavy
  in
  let skew = rate 0.4 0.5 in
  let reorder = rate 0.4 0.25 in
  let intervals k gen_one =
    List.init (Rng.int rng (k + 1)) (fun _ -> gen_one ())
  in
  let partitions =
    intervals 2 (fun () ->
        let a = Rng.int rng 8 in
        (a, a + 1 + Rng.int rng 5, 2 + Rng.int rng 2))
  in
  let bursts =
    intervals 2 (fun () ->
        let a = Rng.int rng 10 in
        (a, a + 1 + Rng.int rng 3, 0.3 +. (Rng.float rng *. 0.6)))
  in
  {
    plan_seed;
    drop;
    duplicate;
    delay;
    max_delay;
    crash;
    recovery;
    recovery_delay;
    corrupt;
    partitions;
    bursts;
    law;
    skew;
    reorder;
  }

(* --- overrides (the CLI flag surface, as data) ------------------------- *)

(* `locsample chaos` can force chosen dimensions onto every generated
   schedule — the same precedence story as the sample command's flags over
   --fault-profile — and the reproducer line carries them, so a replay is
   one copy-paste regardless of which flags produced the run. *)
type overrides = {
  o_async : string option;  (* executor mode name, None = synchronous *)
  o_max_delay : int option;
  o_corrupt : float option;
  o_profile : string option;
  o_partitions : (int * int * int) list;  (* [] = keep generated ones *)
  o_shards : int option;  (* run sharded invariants at this worker count *)
}

let no_overrides =
  {
    o_async = None;
    o_max_delay = None;
    o_corrupt = None;
    o_profile = None;
    o_partitions = [];
    o_shards = None;
  }

let apply_overrides o s =
  let s =
    match o.o_profile with
    | None -> s
    | Some name ->
        let p = Faults.preset name in
        {
          s with
          drop = p.Faults.pr_drop;
          duplicate = p.Faults.pr_duplicate;
          delay = p.Faults.pr_delay;
          max_delay = p.Faults.pr_max_delay;
          crash = p.Faults.pr_crash;
          recovery = p.Faults.pr_recovery;
          recovery_delay = p.Faults.pr_recovery_delay;
          corrupt = p.Faults.pr_corrupt;
          partitions = p.Faults.pr_partitions;
          bursts = p.Faults.pr_bursts;
        }
  in
  let s =
    match o.o_max_delay with None -> s | Some d -> { s with max_delay = d }
  in
  let s =
    match o.o_corrupt with None -> s | Some c -> { s with corrupt = c }
  in
  match o.o_partitions with [] -> s | ps -> { s with partitions = ps }

(* --- the workload ----------------------------------------------------- *)

(* Small enough for exact enumeration, large enough that partitions and
   crashes bite: the hardcore model on C6, sampled by the chain-rule
   sampler over the supervised message-passing layer. *)
let workload_n = 6

let workload_instance () =
  Instance.unpinned (Models.hardcore (Generators.cycle workload_n) ~lambda:1.)

let exact_joint = lazy (Exact.joint (workload_instance ()))

type violation = { invariant : string; detail : string }

let violation invariant fmt = Printf.ksprintf (fun detail -> { invariant; detail }) fmt

(* Wilson-Hilferty chi-square upper quantile at significance 0.001 (the
   same approximation the test suite's Test_statistics uses). *)
let chi_square_critical ~df =
  let d = float_of_int df in
  let z = 3.0902 in
  if df = 1 then 3.29053 *. 3.29053
  else if df = 2 then -2. *. log 0.001
  else d *. ((1. -. (2. /. (9. *. d)) +. (z *. sqrt (2. /. (9. *. d)))) ** 3.)

(* One supervised sampling trial.  Per-trial fault and payload seeds are
   split off the trial stream, so trials are independent replicas of the
   same schedule SHAPE (rates and intervals) — exactly how E12/E13 sample
   fault space.  [async] is the executor mode; a fresh config per trial
   keeps its mutable stats out of the cross-domain determinism story. *)
let one_trial ?async spec inst oracle policy rng =
  let faults = to_faults { spec with plan_seed = Rng.bits64 rng } in
  let async = Option.map (fun mode -> Async.make ~mode ()) async in
  let r =
    Local_sampler.sample_resilient oracle ~policy ~faults ?async inst
      ~seed:(Rng.bits64 rng)
  in
  (r.Local_sampler.success, r.Local_sampler.sigma, r.Local_sampler.rounds)

let run_spec ?check ?async ?shards ?(trials = 80) spec =
  let violations = ref [] in
  let push v = violations := v :: !violations in
  (match check with Some f -> Option.iter push (f spec) | None -> ());
  let inst = workload_instance () in
  let oracle = Inference.ssm_oracle ~t:2 inst in
  let policy = Resilient.policy ~retry_budget:3 () in
  let faults = to_faults spec in
  (* Invariant: conservation at teardown.  Drive supervised ball collection
     directly on a network we hold, finish it, then account for every
     transmitted copy — pending must be zero once the network is finished
     (parked copies settle as dead letters), not just balanced mid-run. *)
  let g = Generators.cycle workload_n in
  let net =
    Network.create ~faults g
      ~inputs:(Array.make workload_n ())
      ~seed:spec.plan_seed
  in
  let exec = Option.map (fun mode -> Async.make ~mode ()) async in
  let _views, _failed, _report =
    Resilient.collect_views ?async:exec net ~policy ~radius:2
  in
  Network.finish net;
  if Network.pending_count net <> 0 then
    push
      (violation "conservation"
         "%d copies still pending after Network.finish (teardown must settle \
          every copy)"
         (Network.pending_count net));
  let sent = Network.messages net in
  let accounted =
    Network.delivered_count net + Network.pending_count net
    + Network.quarantined_count net
    + Network.dead_letter_count net
  in
  if sent <> accounted then
    push
      (violation "conservation"
         "sent %d <> delivered %d + pending %d + quarantined %d + dead %d" sent
         (Network.delivered_count net)
         (Network.pending_count net)
         (Network.quarantined_count net)
         (Network.dead_letter_count net));
  (* Trial batch, used by the remaining invariants.  Domain count 1 here;
     the determinism invariant reruns the same batch on 2 domains and
     demands bit-identical results. *)
  let batch_seed = Int64.logxor spec.plan_seed 0x5DEECE66DL in
  let batch ?async ~domains () =
    Par.run_trials ~domains ~n:trials ~seed:batch_seed
      (one_trial ?async spec inst oracle policy)
  in
  let results = batch ?async ~domains:1 () in
  (* Invariant: domain-count invariance (verdicts, outputs and round
     charges must not depend on scheduling).  Skipped under [shards]:
     the OCaml runtime permanently refuses [Unix.fork] in any process
     that ever created a domain, and the sharded invariants below need
     fork.  Sharding replaces in-process domain parallelism, and
     shard-identity plays the same scheduling-invariance role there. *)
  (if shards = None then
     let results2 = batch ?async ~domains:2 () in
     if results <> results2 then
       push
         (violation "domain-determinism"
            "trial batch differs between --domains 1 and --domains 2"));
  (* Invariant: sync-vs-async identity.  The synchronizer-mode executor
     must reproduce the synchronous runtime bit-for-bit — outputs, success
     verdicts and round charges — under EVERY schedule, whatever delay
     law, skew or reordering the spec carries. *)
  let sync_results =
    match async with None -> results | Some _ -> batch ~domains:1 ()
  in
  let synchro_results = batch ~async:Async.Synchronizer ~domains:1 () in
  if sync_results <> synchro_results then
    push
      (violation "sync-async-identity"
         "synchronizer-mode executor diverged from the synchronous runtime");
  (* Invariant: Las Vegas samplers never lie — every success lies in the
     support of the exact joint distribution. *)
  let exact = Lazy.force exact_joint in
  Array.iteri
    (fun i (ok, sigma, _) ->
      if ok && not (List.mem_assoc sigma exact) then
        push
          (violation "las-vegas" "trial %d: success outside exact support [%s]"
             i
             (String.concat ";" (Array.to_list (Array.map string_of_int sigma)))))
    results;
  (* Invariant: exactness on successes.  Faults may depress availability
     but conditioned on success the output is exactly mu — chi-square GOF
     at significance 0.001, skipped when successes are too few for the
     expected cell counts to be meaningful. *)
  let emp = Empirical.create () in
  Array.iter (fun (ok, sigma, _) -> if ok then Empirical.add emp sigma) results;
  let support = List.length exact in
  if Empirical.total emp >= 5 * support then begin
    let stat = Empirical.chi_square emp exact in
    let critical = chi_square_critical ~df:(support - 1) in
    if not (stat <= critical) then
      push
        (violation "gof"
           "chi-square %.2f > critical %.2f on %d successes (df %d)" stat
           critical (Empirical.total emp) (support - 1))
  end;
  (* Sharded invariants (opt-in via --shards; the sharded transport is
     synchronous-only, so they are skipped under --async).  Runs stay on
     one domain: Exec forks worker processes, and fork is only safe while
     no sibling domains are live. *)
  (match (shards, async) with
  | Some k, None ->
      let sh_trials = min trials 20 in
      let run_sharded ?(kills = []) () =
        Exec.reset_phase_counter ();
        Exec.install (Exec.config ~shards:k ~kills ());
        Fun.protect ~finally:Exec.uninstall (fun () ->
            Par.run_trials ~domains:1 ~n:sh_trials ~seed:batch_seed
              (one_trial spec inst oracle policy))
      in
      (* Invariant: shard-identity.  The sharded transport must reproduce
         the in-process executor bit-for-bit — outputs, verdicts, round
         charges — under every schedule and shard count. *)
      let unsharded =
        Par.run_trials ~domains:1 ~n:sh_trials ~seed:batch_seed
          (one_trial spec inst oracle policy)
      in
      let sharded = run_sharded () in
      if sharded <> unsharded then
        push
          (violation "shard-identity"
             "--shards %d trial batch diverged from the in-process executor"
             k);
      (* Invariant: kill-recovery.  kill -9 a worker mid-phase (round 0 of
         the first faulty phase — before its first checkpoint), twice: the
         supervisor's restart-and-replay must land on the same verdicts as
         the undisturbed sharded run, both times. *)
      let kills =
        [ { Exec.k_shard = 0; k_phase = 0; k_round = 0; k_incarnation = 0;
            k_hang = false } ]
      in
      let killed1 = run_sharded ~kills () in
      let killed2 = run_sharded ~kills () in
      if killed1 <> sharded then
        push
          (violation "kill-recovery"
             "--shards %d batch with a seeded kill -9 diverged from the \
              undisturbed sharded run"
             k);
      if killed2 <> killed1 then
        push
          (violation "kill-recovery"
             "--shards %d two identical seeded kill -9 runs disagreed with \
              each other"
             k)
  | _ -> ());
  List.rev !violations

(* Zero-fault bit-identity: the supervised sampler under [Faults.none]
   must produce exactly the unsupervised sampler's output (the pristine
   executor runs verbatim, and attempt 0's payload seed is the first
   split of the master stream). *)
let zero_fault_identity ?async ~seed () =
  let inst = workload_instance () in
  let oracle = Inference.ssm_oracle ~t:2 inst in
  let async = Option.map (fun mode -> Async.make ~mode ()) async in
  let resilient =
    Local_sampler.sample_resilient oracle ~faults:Faults.none ?async inst ~seed
  in
  let payload_seed = Rng.bits64 (Rng.create seed) in
  let plain = Local_sampler.sample oracle inst ~seed:payload_seed in
  if resilient.Local_sampler.sigma <> plain.Local_sampler.sigma then
    Some
      (violation "zero-fault"
         "supervised sampler under Faults.none diverged from the plain sampler")
  else None

(* --- shrinking -------------------------------------------------------- *)

let remove_nth i l = List.filteri (fun j _ -> j <> i) l

(* Candidate one-step simplifications, most structural first.  Rates are
   zeroed outright rather than halved: a minimal reproducer should name
   the fault DIMENSIONS that matter, not a fine-tuned magnitude. *)
let shrink_candidates s =
  List.concat
    [
      List.mapi (fun i _ -> { s with partitions = remove_nth i s.partitions }) s.partitions;
      List.mapi (fun i _ -> { s with bursts = remove_nth i s.bursts }) s.bursts;
      (if s.crash > 0. then [ { s with crash = 0.; recovery = 0. } ] else []);
      (if s.recovery > 0. then [ { s with recovery = 0. } ] else []);
      (if s.corrupt > 0. then [ { s with corrupt = 0. } ] else []);
      (if s.delay > 0. then [ { s with delay = 0.; max_delay = 1 } ] else []);
      (if s.duplicate > 0. then [ { s with duplicate = 0. } ] else []);
      (if s.drop > 0. then [ { s with drop = 0. } ] else []);
      (if s.skew > 0. then [ { s with skew = 0. } ] else []);
      (if s.reorder > 0. then [ { s with reorder = 0. } ] else []);
      (if s.law <> Faults.Uniform then [ { s with law = Faults.Uniform } ]
       else []);
      (if s.max_delay > 1 then [ { s with max_delay = 1 } ] else []);
      (if s.recovery_delay > 1 then [ { s with recovery_delay = 1 } ] else []);
    ]

(* Greedy minimization: repeatedly take the first one-step simplification
   that still violates some invariant, until none does.  Deterministic,
   and every accepted step strictly shrinks the schedule, so it
   terminates. *)
let shrink ?check ?async ?shards ?trials s0 =
  let still_fails c = run_spec ?check ?async ?shards ?trials c <> [] in
  let rec go s =
    match List.find_opt still_fails (shrink_candidates s) with
    | Some c -> go c
    | None -> s
  in
  go s0

(* --- top level -------------------------------------------------------- *)

type failure = {
  index : int;  (** Which generated schedule failed (0-based). *)
  f_spec : spec;
  f_violations : violation list;
  f_shrunk : spec;
  f_shrunk_violations : violation list;
}

type summary = {
  seed : int64;
  schedules : int;
  trials : int;
  overrides : overrides;
  zero_fault : violation option;
  failures : failure list;
}

let run ?check ?(overrides = no_overrides) ?(schedules = 10) ?(trials = 80)
    ~seed () =
  (* Validate the mode name before any work: the CLI funnels --async
     through the same constructor as the API. *)
  let async = Option.map Async.mode_of_string overrides.o_async in
  Option.iter (fun m -> ignore (Async.make ~mode:m ())) async;
  (match overrides.o_shards with
  | Some k when k < 1 ->
      invalid_arg "Chaos.run: --shards must be >= 1"
  | Some _ when overrides.o_async <> None ->
      invalid_arg "Chaos.run: --shards is synchronous-only (drop --async)"
  | _ -> ());
  let shards = overrides.o_shards in
  let rng = Rng.create seed in
  let zero_fault = zero_fault_identity ?async ~seed () in
  let failures = ref [] in
  for index = 0 to schedules - 1 do
    let s = apply_overrides overrides (gen rng) in
    match run_spec ?check ?async ?shards ~trials s with
    | [] -> ()
    | f_violations ->
        let f_shrunk = shrink ?check ?async ?shards ~trials s in
        let f_shrunk_violations = run_spec ?check ?async ?shards ~trials f_shrunk in
        failures :=
          { index; f_spec = s; f_violations; f_shrunk; f_shrunk_violations }
          :: !failures
  done;
  {
    seed;
    schedules;
    trials;
    overrides;
    zero_fault;
    failures = List.rev !failures;
  }

let ok summary = summary.zero_fault = None && summary.failures = []

(* The override flags, rendered exactly as `locsample chaos` accepts them —
   the replay line must round-trip through parse_reproducer AND through the
   real CLI. *)
let override_flags o =
  let b = Buffer.create 64 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  Option.iter (p " --async %s") o.o_async;
  Option.iter (p " --max-delay %d") o.o_max_delay;
  Option.iter (p " --corrupt-rate %g") o.o_corrupt;
  Option.iter (p " --fault-profile %s") o.o_profile;
  List.iter (fun (a, u, k) -> p " --partition %d:%d:%d" a u k) o.o_partitions;
  Option.iter (p " --shards %d") o.o_shards;
  Buffer.contents b

let reproducer summary =
  let b = Buffer.create 256 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  p "chaos: seed=%Ld schedules=%d trials=%d\n" summary.seed summary.schedules
    summary.trials;
  (match summary.zero_fault with
  | Some v -> p "zero-fault identity VIOLATED: %s\n" v.detail
  | None -> ());
  List.iter
    (fun f ->
      p "schedule %d FAILED: %s\n" f.index (describe f.f_spec);
      List.iter (fun v -> p "  %s: %s\n" v.invariant v.detail) f.f_violations;
      p "  shrunk to: %s\n" (describe f.f_shrunk);
      List.iter
        (fun v -> p "  (shrunk) %s: %s\n" v.invariant v.detail)
        f.f_shrunk_violations)
    summary.failures;
  if ok summary then p "all invariants held\n";
  p "replay: locsample chaos --seed %Ld --schedules %d --chaos-trials %d%s\n"
    summary.seed summary.schedules summary.trials
    (override_flags summary.overrides);
  Buffer.contents b

let parse_reproducer text =
  let prefix = "replay: locsample chaos" in
  let is_replay l =
    String.length l >= String.length prefix
    && String.sub l 0 (String.length prefix) = prefix
  in
  match List.find_opt is_replay (String.split_on_char '\n' text) with
  | None -> None
  | Some line -> (
      let toks =
        List.filter (fun s -> s <> "") (String.split_on_char ' ' line)
      in
      let partition_of v =
        match String.split_on_char ':' v with
        | [ a; u; k ] -> (int_of_string a, int_of_string u, int_of_string k)
        | _ -> failwith "partition wants FROM:UNTIL:PARTS"
      in
      let rec go seed schedules trials o = function
        | [] -> (seed, schedules, trials, o)
        | "--seed" :: v :: rest ->
            go (Int64.of_string v) schedules trials o rest
        | "--schedules" :: v :: rest ->
            go seed (int_of_string v) trials o rest
        | ("--chaos-trials" | "--trials") :: v :: rest ->
            go seed schedules (int_of_string v) o rest
        | "--async" :: v :: rest ->
            go seed schedules trials { o with o_async = Some v } rest
        | "--max-delay" :: v :: rest ->
            go seed schedules trials
              { o with o_max_delay = Some (int_of_string v) }
              rest
        | "--corrupt-rate" :: v :: rest ->
            go seed schedules trials
              { o with o_corrupt = Some (float_of_string v) }
              rest
        | "--fault-profile" :: v :: rest ->
            go seed schedules trials { o with o_profile = Some v } rest
        | "--partition" :: v :: rest ->
            go seed schedules trials
              { o with o_partitions = o.o_partitions @ [ partition_of v ] }
              rest
        | "--shards" :: v :: rest ->
            go seed schedules trials
              { o with o_shards = Some (int_of_string v) }
              rest
        | _ :: rest -> go seed schedules trials o rest
      in
      try Some (go 0L 10 80 no_overrides toks) with _ -> None)
