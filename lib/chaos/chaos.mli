(** Chaos-testing harness for the LOCAL runtime.

    Generates random fault schedules from a seed, runs the supervised
    sampler workload under each, checks an invariant suite that must hold
    under {e every} schedule, and greedily shrinks failing schedules to
    minimal reproducers.

    {b The invariant suite}, per schedule:

    - {e conservation} (at teardown): after {!Ls_local.Network.finish}
      every transmitted copy is accounted for with nothing pending —
      [messages = delivered + 0 + quarantined + dead letters];
    - {e domain-determinism}: the trial batch is bit-identical at 1 and 2
      domains (verdicts, outputs, round charges);
    - {e sync-async-identity}: the synchronizer-mode event-driven executor
      ({!Ls_local.Async}) reproduces the synchronous runtime bit-for-bit
      under the schedule's delay law, clock skew and reordering;
    - {e las-vegas}: every success lies in the support of the exact joint
      — faults may cost availability, never correctness (under adaptive
      timeouts too: a misfired timeout may cost a retry, never exactness);
    - {e gof}: conditioned on success the output is exactly [mu]
      (chi-square at significance 0.001, skipped when successes are too
      few for meaningful expected cell counts).

    Once per run, {e zero-fault}: the supervised sampler under
    {!Ls_local.Faults.none} is bit-identical to the unsupervised one.

    {b Determinism.}  The whole run — generation, trials, verdicts,
    shrinking — is a pure function of [(seed, schedules, trials)], so the
    one line printed by {!reproducer} replays a failure exactly. *)

type spec = {
  plan_seed : int64;
  drop : float;
  duplicate : float;
  delay : float;
  max_delay : int;
  crash : float;
  recovery : float;
  recovery_delay : int;
  corrupt : float;
  partitions : (int * int * int) list;
  bursts : (int * int * float) list;
  law : Ls_local.Faults.law;
  skew : float;
  reorder : float;
}
(** A fault schedule in shrinkable form: the arguments of
    {!Ls_local.Faults.make}, as data.  The last three are the timing
    dimensions only the asynchronous executor consults. *)

val quiet : int64 -> spec
(** The zero-fault schedule with the given plan seed (the shrinker's
    bottom element; useful for building targeted specs in tests). *)

val to_faults : spec -> Ls_local.Faults.t
(** Validated plan (funnels through [Faults.make]). *)

val describe : spec -> string

val gen : Ls_rng.Rng.t -> spec
(** Draw a random schedule: moderate i.i.d. rates plus 0–2 partition
    intervals and 0–2 bursts, every fault dimension — timing included —
    exercised with positive probability. *)

type overrides = {
  o_async : string option;
      (** Executor mode name ({!Ls_local.Async.mode_of_string});
          [None] = synchronous. *)
  o_max_delay : int option;
  o_corrupt : float option;
  o_profile : string option;
  o_partitions : (int * int * int) list;  (** [[]] = keep generated ones. *)
  o_shards : int option;
      (** Run the sharded invariants ({e shard-identity} and
          {e kill-recovery}) at this {!Ls_shard.Exec} worker count.
          Synchronous-only; [None] skips them. *)
}
(** The `locsample chaos` flag surface, as data: dimensions forced onto
    every generated schedule (explicit values override the profile's
    fields, mirroring the sample command's precedence).  Carried by the
    {!summary} so {!reproducer}'s replay line reproduces them. *)

val no_overrides : overrides

val apply_overrides : overrides -> spec -> spec

type violation = { invariant : string; detail : string }

val run_spec :
  ?check:(spec -> violation option) ->
  ?async:Ls_local.Async.mode ->
  ?shards:int ->
  ?trials:int ->
  spec ->
  violation list
(** Run the workload under one schedule and return every invariant
    violation (empty = schedule passed).  [check] injects an extra
    caller-supplied invariant — the hook the shrinker tests (and the CI
    self-test) use to plant a seeded failure.  [async] floods the trial
    batch over the event-driven executor in the given mode (the
    sync-vs-async identity invariant is checked either way).  [shards]
    additionally checks {e shard-identity} (the {!Ls_shard.Exec}
    transport reproduces the in-process executor bit-for-bit on a
    reduced batch) and {e kill-recovery} (a worker [kill -9]ed before
    its first checkpoint recovers to the same verdicts, twice); ignored
    under [async].  [shards] also skips {e domain-determinism}: the
    runtime permanently refuses [Unix.fork] in a process that ever
    created a domain, so sharded runs stay on one domain throughout
    (shard-identity plays the same scheduling-invariance role).
    Default [trials] is 80. *)

val zero_fault_identity :
  ?async:Ls_local.Async.mode -> seed:int64 -> unit -> violation option
(** The once-per-run bit-identity check (see module doc). *)

val shrink :
  ?check:(spec -> violation option) ->
  ?async:Ls_local.Async.mode ->
  ?shards:int ->
  ?trials:int ->
  spec ->
  spec
(** Greedy minimization of a failing schedule: repeatedly apply the first
    one-step simplification (drop an interval, zero a rate, collapse a
    bound) that still violates some invariant.  Returns its fixed point —
    a minimal reproducer under this candidate set.  On a passing schedule
    it returns the schedule unchanged. *)

type failure = {
  index : int;  (** Which generated schedule failed (0-based). *)
  f_spec : spec;
  f_violations : violation list;
  f_shrunk : spec;
  f_shrunk_violations : violation list;
}

type summary = {
  seed : int64;
  schedules : int;
  trials : int;
  overrides : overrides;
  zero_fault : violation option;
  failures : failure list;
}

val run :
  ?check:(spec -> violation option) ->
  ?overrides:overrides ->
  ?schedules:int ->
  ?trials:int ->
  seed:int64 ->
  unit ->
  summary
(** The full harness: zero-fault identity, then [schedules] generated
    schedules (default 10) of [trials] trials each — with [overrides]
    applied to each — shrinking every failure.  Raises [Invalid_argument]
    on an invalid [o_async] mode name or [o_profile] preset, on
    [o_shards < 1], or on [o_shards] combined with [o_async] (the
    sharded transport is synchronous-only) — the CLI's rejection
    paths. *)

val ok : summary -> bool

val reproducer : summary -> string
(** Human-readable run report — violations and shrunk reproducers on
    failure, ["all invariants held"] otherwise — ending in the exact CLI
    line that replays the run, override flags included. *)

val parse_reproducer : string -> (int64 * int * int * overrides) option
(** Parse a {!reproducer} report (or any text containing its replay line)
    back into [(seed, schedules, trials, overrides)] — the round-trip
    guarantee that the printed one-liner really replays the run. *)
