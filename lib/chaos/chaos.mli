(** Chaos-testing harness for the LOCAL runtime.

    Generates random fault schedules from a seed, runs the supervised
    sampler workload under each, checks an invariant suite that must hold
    under {e every} schedule, and greedily shrinks failing schedules to
    minimal reproducers.

    {b The invariant suite}, per schedule:

    - {e conservation}: every transmitted copy is accounted for —
      [messages = delivered + pending + quarantined + dead letters]
      ({!Ls_local.Network});
    - {e domain-determinism}: the trial batch is bit-identical at 1 and 2
      domains (verdicts, outputs, round charges);
    - {e las-vegas}: every success lies in the support of the exact joint
      — faults may cost availability, never correctness;
    - {e gof}: conditioned on success the output is exactly [mu]
      (chi-square at significance 0.001, skipped when successes are too
      few for meaningful expected cell counts).

    Once per run, {e zero-fault}: the supervised sampler under
    {!Ls_local.Faults.none} is bit-identical to the unsupervised one.

    {b Determinism.}  The whole run — generation, trials, verdicts,
    shrinking — is a pure function of [(seed, schedules, trials)], so the
    one line printed by {!reproducer} replays a failure exactly. *)

type spec = {
  plan_seed : int64;
  drop : float;
  duplicate : float;
  delay : float;
  max_delay : int;
  crash : float;
  recovery : float;
  recovery_delay : int;
  corrupt : float;
  partitions : (int * int * int) list;
  bursts : (int * int * float) list;
}
(** A fault schedule in shrinkable form: the arguments of
    {!Ls_local.Faults.make}, as data. *)

val quiet : int64 -> spec
(** The zero-fault schedule with the given plan seed (the shrinker's
    bottom element; useful for building targeted specs in tests). *)

val to_faults : spec -> Ls_local.Faults.t
(** Validated plan (funnels through [Faults.make]). *)

val describe : spec -> string

val gen : Ls_rng.Rng.t -> spec
(** Draw a random schedule: moderate i.i.d. rates plus 0–2 partition
    intervals and 0–2 bursts, every fault dimension exercised with
    positive probability. *)

type violation = { invariant : string; detail : string }

val run_spec :
  ?check:(spec -> violation option) -> ?trials:int -> spec -> violation list
(** Run the workload under one schedule and return every invariant
    violation (empty = schedule passed).  [check] injects an extra
    caller-supplied invariant — the hook the shrinker tests (and the CI
    self-test) use to plant a seeded failure.  Default [trials] is 80. *)

val zero_fault_identity : seed:int64 -> violation option
(** The once-per-run bit-identity check (see module doc). *)

val shrink :
  ?check:(spec -> violation option) -> ?trials:int -> spec -> spec
(** Greedy minimization of a failing schedule: repeatedly apply the first
    one-step simplification (drop an interval, zero a rate, collapse a
    bound) that still violates some invariant.  Returns its fixed point —
    a minimal reproducer under this candidate set.  On a passing schedule
    it returns the schedule unchanged. *)

type failure = {
  index : int;  (** Which generated schedule failed (0-based). *)
  f_spec : spec;
  f_violations : violation list;
  f_shrunk : spec;
  f_shrunk_violations : violation list;
}

type summary = {
  seed : int64;
  schedules : int;
  trials : int;
  zero_fault : violation option;
  failures : failure list;
}

val run :
  ?check:(spec -> violation option) ->
  ?schedules:int ->
  ?trials:int ->
  seed:int64 ->
  unit ->
  summary
(** The full harness: zero-fault identity, then [schedules] generated
    schedules (default 10) of [trials] trials each, shrinking every
    failure. *)

val ok : summary -> bool

val reproducer : summary -> string
(** Human-readable run report — violations and shrunk reproducers on
    failure, ["all invariants held"] otherwise — ending in the exact CLI
    line that replays the run. *)
