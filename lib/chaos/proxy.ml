(* A deterministic socket chaos proxy for the serving protocol.

   Sits between Client and Server as a frame-aware forwarder: inbound
   bytes are re-framed with Frame.decode_prefix, and every complete
   frame draws its fate — pass, corrupt one byte, truncate mid-frame,
   reset the connection, duplicate, or delay — from a hash of
   (spec seed, connection serial, direction, frame index).  Nothing is
   drawn from wall time or a stateful rng, so against a sequential
   deterministic client the same seed replays the same fault schedule:
   connection serials follow accept order, which the client's own
   (deterministic) reconnect behaviour fixes.

   The proxy damages byte streams, never semantics: it is the fault
   model for the serve chaos invariants (daemon stays up, rids never
   cross-match, well-formed responses byte-identical to a proxy-free
   run).  If a stream stops parsing as frames (a corrupted length can
   desynchronize the framing), the proxy degrades to transparent
   passthrough for that direction rather than stalling. *)

module Frame = Ls_shard.Frame
module Supervisor = Ls_shard.Supervisor
module Server = Ls_serve.Server

type spec = {
  seed : int64;
  corrupt : float;  (* flip one byte of the encoded frame *)
  truncate : float;  (* forward a prefix, then drop the connection *)
  reset : float;  (* drop the connection, forwarding nothing *)
  duplicate : float;  (* forward the frame twice *)
  delay : float;  (* sleep delay_ms before forwarding *)
  delay_ms : int;
}

let quiet seed =
  {
    seed;
    corrupt = 0.;
    truncate = 0.;
    reset = 0.;
    duplicate = 0.;
    delay = 0.;
    delay_ms = 0;
  }

let describe s =
  Printf.sprintf
    "seed=%Ld corrupt=%.3f truncate=%.3f reset=%.3f duplicate=%.3f \
     delay=%.3f/%dms"
    s.seed s.corrupt s.truncate s.reset s.duplicate s.delay s.delay_ms

(* --- deterministic draws ----------------------------------------------- *)

(* One uniform draw per (connection, direction, frame, dimension):
   digest64 is a SplitMix fold, plenty for fault scheduling. *)
let draw spec ~conn ~dir ~frame ~dim =
  let h =
    Frame.digest64
      (Printf.sprintf "%Lx|%d|%d|%d|%s" spec.seed conn dir frame dim)
  in
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.

type action =
  | Pass
  | Corrupt of int * int  (* byte offset, xor mask *)
  | Truncate
  | Reset
  | Duplicate
  | Delay

let decide spec ~conn ~dir ~frame ~len =
  let d dim = draw spec ~conn ~dir ~frame ~dim in
  if d "reset" < spec.reset then Reset
  else if d "truncate" < spec.truncate then Truncate
  else if d "corrupt" < spec.corrupt then
    let pos = int_of_float (d "pos" *. float_of_int len) in
    let mask = 1 + int_of_float (d "mask" *. 254.) in
    Corrupt (min pos (len - 1), mask)
  else if d "duplicate" < spec.duplicate then Duplicate
  else if d "delay" < spec.delay then Delay
  else Pass

(* --- plumbing ---------------------------------------------------------- *)

let connect_to = function
  | Server.Unix_path path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd
  | Server.Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      (try Unix.connect fd (Unix.ADDR_INET (inet, port))
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd

let listen_on = function
  | Server.Unix_path path ->
      (match Unix.lstat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> (
          try Unix.unlink path with _ -> ())
      | _ -> ()
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Server.Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      Unix.bind fd (Unix.ADDR_INET (inet, port));
      Unix.listen fd 64;
      fd

(* One proxied connection: [dir] 0 is client→server, 1 is server→client. *)
type side = {
  mutable buf : string;
  mutable frames : int;  (* frames forwarded on this side so far *)
  mutable raw : bool;  (* framing lost: degrade to passthrough *)
}

type session = {
  sid : int;
  cfd : Unix.file_descr;
  sfd : Unix.file_descr;
  c2s : side;
  s2c : side;
  mutable live : bool;
}

let close_session s =
  if s.live then begin
    s.live <- false;
    (try Unix.close s.cfd with Unix.Unix_error _ -> ());
    try Unix.close s.sfd with Unix.Unix_error _ -> ()
  end

let write_all fd bytes =
  try Frame.write_string fd bytes
  with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()

let corrupt_bytes bytes pos mask =
  let b = Bytes.of_string bytes in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor mask));
  Bytes.to_string b

let pump spec scratch sess ~dir =
  let src, dst = if dir = 0 then (sess.cfd, sess.sfd) else (sess.sfd, sess.cfd) in
  let side = if dir = 0 then sess.c2s else sess.s2c in
  match Unix.read src scratch 0 (Bytes.length scratch) with
  | 0 -> close_session sess
  | k ->
      side.buf <- side.buf ^ Bytes.sub_string scratch 0 k;
      if side.raw then begin
        write_all dst side.buf;
        side.buf <- ""
      end
      else begin
        let continue = ref true in
        while !continue && sess.live do
          match Frame.decode_prefix side.buf with
          | Ok None -> continue := false
          | Error _ ->
              (* Resynchronizing on a broken stream is impossible;
                 become a wire. *)
              side.raw <- true;
              write_all dst side.buf;
              side.buf <- "";
              continue := false
          | Ok (Some (_f, used)) -> (
              let bytes = String.sub side.buf 0 used in
              side.buf <-
                String.sub side.buf used (String.length side.buf - used);
              let frame = side.frames in
              side.frames <- side.frames + 1;
              match decide spec ~conn:sess.sid ~dir ~frame ~len:used with
              | Pass -> write_all dst bytes
              | Delay ->
                  Supervisor.sleep_ms spec.delay_ms;
                  write_all dst bytes
              | Duplicate ->
                  write_all dst bytes;
                  write_all dst bytes
              | Corrupt (pos, mask) ->
                  write_all dst (corrupt_bytes bytes pos mask)
              | Truncate ->
                  write_all dst (String.sub bytes 0 (used / 2));
                  close_session sess
              | Reset -> close_session sess)
        done
      end
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      close_session sess

let run spec ~listen ~upstream ?on_ready () =
  let stop = ref false in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true))
   with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let lfd = listen_on listen in
  (match on_ready with Some f -> f () | None -> ());
  let sessions = ref [] in
  let next_sid = ref 0 in
  let scratch = Bytes.create (1 lsl 16) in
  let accept_one () =
    match Unix.accept lfd with
    | cfd, _ -> (
        match connect_to upstream with
        | sfd ->
            let sid = !next_sid in
            incr next_sid;
            sessions :=
              {
                sid;
                cfd;
                sfd;
                c2s = { buf = ""; frames = 0; raw = false };
                s2c = { buf = ""; frames = 0; raw = false };
                live = true;
              }
              :: !sessions
        | exception Unix.Unix_error _ ->
            (* Upstream refused (e.g. worker restarting): the client sees
               an immediate close and retries. *)
            (try Unix.close cfd with Unix.Unix_error _ -> ()))
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception
        Unix.Unix_error
          ((Unix.ECONNABORTED | Unix.EMFILE | Unix.ENFILE | Unix.EAGAIN), _, _)
      ->
        Supervisor.sleep_ms 10
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter close_session !sessions;
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      match listen with
      | Server.Unix_path path -> ( try Unix.unlink path with _ -> ())
      | Server.Tcp _ -> ())
    (fun () ->
      while not !stop do
        sessions := List.filter (fun s -> s.live) !sessions;
        let fds =
          lfd
          :: List.concat_map (fun s -> [ s.cfd; s.sfd ]) !sessions
        in
        match Unix.select fds [] [] 0.25 with
        | readable, _, _ ->
            if List.memq lfd readable then accept_one ();
            List.iter
              (fun s ->
                if s.live && List.memq s.cfd readable then
                  pump spec scratch s ~dir:0;
                if s.live && List.memq s.sfd readable then
                  pump spec scratch s ~dir:1)
              !sessions
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done)
