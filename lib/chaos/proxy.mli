(** Deterministic socket chaos proxy for the serving protocol.

    A frame-aware forwarder between {!Ls_serve.Client} and
    {!Ls_serve.Server}: every complete frame crossing it, in either
    direction, draws its fate — pass, one-byte corruption, truncation
    mid-frame, connection reset, duplication, or delay — from a hash of
    [(seed, connection serial, direction, frame index)].  No wall-clock
    or stateful randomness: against a sequential deterministic client
    the same seed replays the same fault schedule.  A direction whose
    byte stream stops parsing as frames degrades to transparent
    passthrough rather than stalling.

    The fault model the serve chaos invariants run under
    (see {!Serve_chaos}): byte-level damage only — the proxy never
    invents well-formed frames, so any well-formed response reaching
    the client was produced by the daemon. *)

type spec = {
  seed : int64;
  corrupt : float;  (** Per-frame probability: flip one byte. *)
  truncate : float;  (** Forward a prefix, then drop the connection. *)
  reset : float;  (** Drop the connection, forwarding nothing. *)
  duplicate : float;  (** Forward the frame twice. *)
  delay : float;  (** Sleep [delay_ms] before forwarding. *)
  delay_ms : int;
}

val quiet : int64 -> spec
(** All rates zero: a transparent proxy (the shrinker's bottom element,
    and the transparency invariant's schedule). *)

val describe : spec -> string

val run :
  spec ->
  listen:Ls_serve.Server.address ->
  upstream:Ls_serve.Server.address ->
  ?on_ready:(unit -> unit) ->
  unit ->
  unit
(** Accept on [listen], forward to [upstream], applying the spec's
    faults per frame, until SIGTERM.  Runs a single-threaded select
    loop; a delayed frame briefly stalls the whole proxy (the fault
    model is adversarial, not fair).  Closes everything it opened and
    unlinks its unix listen socket on exit. *)

(**/**)

type action =
  | Pass
  | Corrupt of int * int
  | Truncate
  | Reset
  | Duplicate
  | Delay

val decide : spec -> conn:int -> dir:int -> frame:int -> len:int -> action
(** The per-frame draw, exposed for determinism tests. *)

(**/**)
