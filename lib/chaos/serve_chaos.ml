(* Chaos harness for the serving daemon: drive a deterministic request
   burst through the {!Proxy} fault injector against a live forked
   daemon, and check the serve invariants under every schedule:

   - daemon-crash: the daemon survives the burst and exits 0 on SIGTERM
     (byte-level damage may cost connections, never the process);
   - rid-integrity: no well-formed response is ever matched to the
     wrong request — everything the client accepts is the awaited rid
     or a byte-identical duplicate of an already-answered one;
   - byte-identity: every accepted response is byte-identical to the
     proxy-free run of the same burst (the determinism contract:
     response bodies are a pure function of request bytes);
   - liveness: a bounded resend loop completes the burst (the fault
     rates are capped well below saturation);
   - transparency (once per run): under the all-zero schedule the
     proxied transcript has no violations at all.

   Failing schedules shrink greedily by zeroing whole fault dimensions,
   mirroring Chaos: a minimal reproducer names the faults that matter,
   not a fine-tuned magnitude.

   One subtlety fixed by the protocol, exploited here: the frame digest
   covers the payload only, so a corrupted header can reach the daemon
   as a valid frame and draw a [Bad_request] reply under an arbitrary
   rid.  The harness generates only valid requests, so the client
   treats ANY [Bad_request] as a corruption artifact and resends —
   whereas a wrong-rid reply with a non-error body has no innocent
   explanation and is a rid-integrity violation. *)

module Rng = Ls_rng.Rng
module Supervisor = Ls_shard.Supervisor
module Protocol = Ls_serve.Protocol
module Server = Ls_serve.Server
module Client = Ls_serve.Client
module Par = Ls_par.Par

type violation = { invariant : string; detail : string }

let violation invariant detail = { invariant; detail }

(* --- workload ---------------------------------------------------------- *)

(* The same shape as `locsample query --requests N`: a deterministic
   mixed burst over small instances with a shared seed pool.  Every
   graph has >= 12 vertices and every Infer vertex is < 8, so no
   generated request can legitimately draw Bad_request — which is what
   lets the client blame every Bad_request on the proxy.  Deadlines stay
   0: expiry depends on queue wall time, which chaos delays would turn
   into baseline-vs-proxied divergence. *)
let gen_requests ~seed ~n =
  let rng = Rng.create seed in
  let graphs = [| "cycle:16"; "path:12"; "grid:3x4"; "tree:2x3" |] in
  let models = [| "hardcore:0.8"; "ising:0.3"; "coloring:5" |] in
  let seed_pool = Array.init 4 (fun _ -> Rng.bits64 rng) in
  let pick arr = arr.(Rng.int rng (Array.length arr)) in
  Array.init n (fun i ->
      let draw = Rng.int rng 10 in
      let op =
        if draw < 6 then Protocol.Sample
        else if draw < 8 then Protocol.Infer
        else Protocol.Count
      in
      {
        Protocol.id = i;
        op;
        seed = pick seed_pool;
        graph = pick graphs;
        model = pick models;
        t = 1;
        engine = "ball";
        trials = (match op with Protocol.Sample -> 1 + Rng.int rng 4 | _ -> 1);
        vertex = Rng.int rng 8;
        deadline_ms = 0;
      })

(* --- schedule generation ----------------------------------------------- *)

(* One schedule = socket damage (through the proxy) + syscall faults
   (through the Sysio hook, installed inside the daemon).  The two
   dimensions are independent seeds off the same generator stream. *)
type schedule = { net : Proxy.spec; sys : Sysfault.spec }

let quiet_schedule seed = { net = Proxy.quiet seed; sys = Sysfault.quiet seed }

let describe_schedule sch =
  Printf.sprintf "%s sysfault[%s]" (Proxy.describe sch.net)
    (Sysfault.describe sch.sys)

(* Rates capped well below saturation so the bounded resend loop always
   terminates on a correct daemon: per attempt the pass probability
   stays comfortably above a half, and every reconnect draws fresh
   fates under a new connection serial. *)
let gen_net rng =
  {
    Proxy.seed = Rng.bits64 rng;
    corrupt = 0.12 *. Rng.float rng;
    truncate = 0.08 *. Rng.float rng;
    reset = 0.08 *. Rng.float rng;
    duplicate = 0.15 *. Rng.float rng;
    delay = 0.25 *. Rng.float rng;
    delay_ms = 1 + Rng.int rng 10;
  }

(* Syscall-fault rates: disk faults can run hot (they cost snapshots,
   never answers), transparent faults (short writes, EINTR) and accept
   shedding stay at half so the loop keeps moving.  Fork faults stay
   zero here — this harness runs the daemon unsupervised, so no fork
   site is ever consulted; the fork dimension is exercised by the
   supervisor unit tests.  The bounded ops budget silences the schedule
   mid-burst, making the recovery half of the degraded story (exits
   paired with enters, health back to ok) deterministic. *)
let gen_sys rng =
  {
    Sysfault.seed = Rng.bits64 rng;
    write_fail = 0.9 *. Rng.float rng;
    rename_fail = 0.9 *. Rng.float rng;
    open_fail = 0.5 *. Rng.float rng;
    short_write = 0.5 *. Rng.float rng;
    eintr = 0.5 *. Rng.float rng;
    accept_fail = 0.5 *. Rng.float rng;
    fork_fail = 0.;
    ops_budget = 48 + Rng.int rng 64;
  }

(* Both dimensions are always drawn, so the net schedules are identical
   whether or not the sysfault dimension is enabled. *)
let gen ?(sysfault = true) rng =
  let net = gen_net rng in
  let sys = gen_sys rng in
  { net; sys = (if sysfault then sys else Sysfault.quiet sys.Sysfault.seed) }

(* --- forked processes -------------------------------------------------- *)

let path_counter = ref 0

let fresh_path tag =
  incr path_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "locsample-svchaos-%d-%d-%s.sock" (Unix.getpid ())
       !path_counter tag)

let fork_child body =
  flush stdout;
  flush stderr;
  Par.quiesce ();
  match Unix.fork () with
  | 0 ->
      (try
         body ();
         Unix._exit 0
       with _ -> Unix._exit 3)
  | pid -> pid

(* The daemon child: optionally with a file trace (so the parent can
   check degraded enter/exit pairing from the JSONL), a sysfault
   schedule installed before the loop starts, and a state dir with an
   aggressive snapshot cadence (so disk-fault sites actually get
   consulted during a short burst).  [Trace.close] runs before [_exit]
   — fork_child's [_exit] skips at_exit handlers by design. *)
let fork_daemon ?sys ?trace_path ?state_dir ~address () =
  fork_child (fun () ->
      let t =
        Option.map (fun p -> Ls_obs.Trace.make ~path:p ()) trace_path
      in
      Option.iter Ls_obs.Trace.install t;
      (match sys with
      | Some s when not (Sysfault.is_quiet s) -> Sysfault.install s
      | _ -> ());
      let cfg =
        match state_dir with
        | Some dir ->
            Server.config ~address ~queue_bound:64 ~batch_max:8 ~state_dir:dir
              ~snapshot_every:2 ()
        | None ->
            {
              (Server.config ~address ~queue_bound:64 ~batch_max:8 ()) with
              Server.state_dir = None;
            }
      in
      ignore (Server.run ~cfg ());
      Option.iter Ls_obs.Trace.close t)

let fork_proxy spec ~listen ~upstream =
  fork_child (fun () -> Proxy.run spec ~listen ~upstream ())

let status_name = function
  | Unix.WEXITED n -> Printf.sprintf "exit %d" n
  | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s

(* Reap with a grace period; [None] = still running (or already reaped). *)
let wait_exit ~grace_ms pid =
  let rec go left =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if left <= 0 then None
        else begin
          Supervisor.sleep_ms 20;
          go (left - 20)
        end
    | _, st -> Some st
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go left
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> None
  in
  go grace_ms

let kill_quiet pid signal =
  try Unix.kill pid signal with Unix.Unix_error _ -> ()

let unlink_quiet path = try Unix.unlink path with Unix.Unix_error _ -> ()

let fresh_dir tag =
  incr path_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "locsample-svchaos-%d-%d-%s" (Unix.getpid ())
         !path_counter tag)
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error _ -> ());
  d

let remove_dir_quiet d =
  (try
     Array.iter
       (fun f -> unlink_quiet (Filename.concat d f))
       (Sys.readdir d)
   with Sys_error _ -> ());
  try Unix.rmdir d with Unix.Unix_error _ -> ()

let read_file_opt p =
  match open_in_bin p with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let len = in_channel_length ic in
          Some (really_input_string ic len))

let count_substring hay needle =
  let nl = String.length needle and hl = String.length hay in
  let c = ref 0 in
  for i = 0 to hl - nl do
    if String.sub hay i nl = needle then incr c
  done;
  !c

(* --- one schedule ------------------------------------------------------ *)

(* Canonical bytes for comparing responses: the pure codec over the
   response as received.  Bit-identical floats are part of the
   determinism contract, so string equality is exactly the claim. *)
let enc rid body = Protocol.encode_response { Protocol.rid; body }

exception Abort

let run_spec ?check ~requests ~baseline (sch : schedule) =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let n = Array.length requests in
  let srv_path = fresh_path "srv" and pxy_path = fresh_path "pxy" in
  let srv = Server.Unix_path srv_path and pxy = Server.Unix_path pxy_path in
  (* The sysfault dimension needs a state dir (to give disk-fault sites
     something to hit) and a daemon-side trace file (the degraded
     enter/exit pairing witness). *)
  let sys_on = not (Sysfault.is_quiet sch.sys) in
  let state_dir = if sys_on then Some (fresh_dir "state") else None in
  let trace_path =
    Option.map (fun d -> Filename.concat d "trace.jsonl") state_dir
  in
  let dpid =
    fork_daemon ~sys:sch.sys ?trace_path ?state_dir ~address:srv ()
  in
  let ppid = fork_proxy sch.net ~listen:pxy ~upstream:srv in
  let violations = ref [] in
  let add v = violations := !violations @ [ v ] in
  Fun.protect
    ~finally:(fun () ->
      kill_quiet ppid Sys.sigkill;
      ignore (wait_exit ~grace_ms:2000 ppid);
      kill_quiet dpid Sys.sigkill;
      ignore (wait_exit ~grace_ms:2000 dpid);
      unlink_quiet srv_path;
      unlink_quiet pxy_path;
      Option.iter remove_dir_quiet state_dir)
    (fun () ->
      let answered = Array.make n None in
      let conn = ref None in
      let drop () =
        match !conn with
        | Some c ->
            (try Client.close c with Unix.Unix_error _ -> ());
            conn := None
        | None -> ()
      in
      let connect () =
        match !conn with
        | Some c -> Ok c
        | None -> (
            match Client.connect_retry ~attempts:200 ~delay_ms:5 pxy with
            | Ok c ->
                conn := Some c;
                Ok c
            | Error _ as e -> e)
      in
      let max_attempts = 100 in
      (* The robust sequential client: send request [i], read until its
         response arrives, treating link damage (read errors, EOF,
         Bad_request artifacts) as resend triggers.  Duplicates of
         already-answered rids must match the recorded bytes. *)
      (try
         for i = 0 to n - 1 do
           let req = requests.(i) in
           let rec attempt k =
             if k > max_attempts then begin
               add
                 (violation "liveness"
                    (Printf.sprintf
                       "request %d unanswered after %d attempts under %s" i
                       max_attempts (describe_schedule sch)));
               raise Abort
             end;
             match connect () with
             | Error msg ->
                 add
                   (violation "liveness"
                      (Printf.sprintf "request %d: %s" i msg));
                 raise Abort
             | Ok c -> (
                 match Client.send c req with
                 | () -> await c k
                 | exception Unix.Unix_error _ ->
                     drop ();
                     attempt (k + 1))
           and await c k =
             match Client.recv c with
             | Error _ ->
                 drop ();
                 attempt (k + 1)
             | Ok resp -> (
                 match resp.Protocol.body with
                 | Protocol.Error_r { code = Protocol.Bad_request; _ } ->
                     (* Only a header-corrupted request frame can draw
                        this (the burst is all-valid): resend. *)
                     attempt (k + 1)
                 | body ->
                     let rid = resp.Protocol.rid in
                     if rid = i then answered.(i) <- Some (enc i body)
                     else if rid >= 0 && rid < i then begin
                       match answered.(rid) with
                       | Some bytes when String.equal bytes (enc rid body) ->
                           await c k (* duplicate of an answered request *)
                       | _ ->
                           add
                             (violation "rid-integrity"
                                (Printf.sprintf
                                   "response for rid %d (awaiting %d) does \
                                    not duplicate its recorded answer"
                                   rid i));
                           raise Abort
                     end
                     else begin
                       add
                         (violation "rid-integrity"
                            (Printf.sprintf
                               "response carries rid %d while awaiting %d" rid
                               i));
                       raise Abort
                     end)
           in
           attempt 1
         done
       with Abort -> ());
      drop ();
      if !violations = [] then
        Array.iteri
          (fun i recorded ->
            match recorded with
            | Some bytes when not (String.equal bytes baseline.(i)) ->
                add
                  (violation "byte-identity"
                     (Printf.sprintf
                        "response %d differs from the proxy-free run" i))
            | _ -> ())
          answered;
      (* The daemon must have survived the burst, and still honour a
         graceful drain. *)
      (match Unix.waitpid [ Unix.WNOHANG ] dpid with
      | 0, _ -> (
          kill_quiet dpid Sys.sigterm;
          match wait_exit ~grace_ms:10_000 dpid with
          | Some (Unix.WEXITED 0) -> ()
          | Some st ->
              add
                (violation "daemon-crash"
                   (Printf.sprintf "daemon answered SIGTERM with %s"
                      (status_name st)))
          | None ->
              add
                (violation "daemon-crash"
                   "daemon did not exit within 10 s of SIGTERM"))
      | _, st ->
          add
            (violation "daemon-crash"
               (Printf.sprintf "daemon died during the burst (%s)"
                  (status_name st)))
      | exception Unix.Unix_error _ -> ());
      (* Degraded enter/exit pairing, read from the daemon's own trace:
         every enter must have its exit by clean shutdown (the server
         closes its brackets at drain).  Only judged when the run is
         otherwise clean — a crashed daemon leaves a truncated trace,
         and that is already reported as daemon-crash. *)
      (if !violations = [] then
         match trace_path with
         | None -> ()
         | Some p -> (
             match read_file_opt p with
             | None ->
                 add
                   (violation "degraded-pairing"
                      "daemon trace file missing after a clean run")
             | Some text ->
                 let enters =
                   count_substring text "\"ev\":\"degraded_enter\""
                 in
                 let exits =
                   count_substring text "\"ev\":\"degraded_exit\""
                 in
                 if enters <> exits then
                   add
                     (violation "degraded-pairing"
                        (Printf.sprintf
                           "%d degraded enter(s) vs %d exit(s) in the daemon \
                            trace"
                           enters exits))));
      (match check with
      | Some f -> ( match f sch with Some v -> add v | None -> ())
      | None -> ());
      !violations)

(* --- baseline ---------------------------------------------------------- *)

(* The proxy-free transcript the byte-identity invariant compares
   against.  Any failure here is a broken environment or workload, not
   a chaos finding — raise rather than report. *)
let baseline_run requests =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let srv_path = fresh_path "base" in
  let srv = Server.Unix_path srv_path in
  let dpid = fork_daemon ~address:srv () in
  Fun.protect
    ~finally:(fun () ->
      kill_quiet dpid Sys.sigkill;
      ignore (wait_exit ~grace_ms:2000 dpid);
      unlink_quiet srv_path)
    (fun () ->
      let c =
        match Client.connect_retry ~attempts:200 ~delay_ms:5 srv with
        | Ok c -> c
        | Error msg -> failwith ("serve-chaos baseline: " ^ msg)
      in
      let bodies =
        Array.map
          (fun req ->
            match Client.call c req with
            | Error msg -> failwith ("serve-chaos baseline: " ^ msg)
            | Ok { Protocol.body = Protocol.Error_r { message; _ }; _ } ->
                failwith ("serve-chaos baseline: daemon error: " ^ message)
            | Ok resp -> enc req.Protocol.id resp.Protocol.body)
          requests
      in
      Client.close c;
      kill_quiet dpid Sys.sigterm;
      (match wait_exit ~grace_ms:10_000 dpid with
      | Some (Unix.WEXITED 0) -> ()
      | Some st ->
          failwith ("serve-chaos baseline: daemon " ^ status_name st)
      | None -> failwith "serve-chaos baseline: daemon hung on SIGTERM");
      bodies)

(* --- shrinking --------------------------------------------------------- *)

(* Zero one fault dimension at a time, as Chaos does: the minimal
   reproducer names the dimensions that matter — socket and syscall
   dimensions shrink through the same greedy fixpoint. *)
let shrink_candidates (sch : schedule) =
  let net n = { sch with net = n } in
  let sys s = { sch with sys = s } in
  let p = sch.net and q = sch.sys in
  List.filter
    (fun c -> c <> sch)
    [
      net { p with Proxy.reset = 0. };
      net { p with Proxy.truncate = 0. };
      net { p with Proxy.corrupt = 0. };
      net { p with Proxy.duplicate = 0. };
      net { p with Proxy.delay = 0.; delay_ms = 0 };
      sys { q with Sysfault.write_fail = 0. };
      sys { q with Sysfault.rename_fail = 0. };
      sys { q with Sysfault.open_fail = 0. };
      sys { q with Sysfault.short_write = 0. };
      sys { q with Sysfault.eintr = 0. };
      sys { q with Sysfault.accept_fail = 0. };
      sys { q with Sysfault.fork_fail = 0. };
    ]

let shrink ?check ~requests ~baseline s0 =
  let still_fails c = run_spec ?check ~requests ~baseline c <> [] in
  let rec go s =
    match List.find_opt still_fails (shrink_candidates s) with
    | Some c -> go c
    | None -> s
  in
  go s0

(* --- top level --------------------------------------------------------- *)

type failure = {
  index : int;
  f_spec : schedule;
  f_violations : violation list;
  f_shrunk : schedule;
  f_shrunk_violations : violation list;
}

type summary = {
  seed : int64;
  schedules : int;
  requests : int;
  sysfault : bool;
  zero_fault : violation option;
  failures : failure list;
}

let run ?check ?(schedules = 5) ?(requests = 40) ?(sysfault = true) ~seed () =
  if schedules < 1 then invalid_arg "Serve_chaos.run: schedules must be >= 1";
  if requests < 1 then invalid_arg "Serve_chaos.run: requests must be >= 1";
  let reqs = gen_requests ~seed ~n:requests in
  let baseline = baseline_run reqs in
  (* Transparency first, without the caller's check: a planted failure
     should be found by a generated schedule, not blamed on the quiet
     proxy. *)
  let zero_fault =
    match run_spec ~requests:reqs ~baseline (quiet_schedule seed) with
    | [] -> None
    | v :: _ -> Some v
  in
  let rng = Rng.create seed in
  let failures = ref [] in
  for index = 0 to schedules - 1 do
    let s = gen ~sysfault rng in
    match run_spec ?check ~requests:reqs ~baseline s with
    | [] -> ()
    | f_violations ->
        let f_shrunk = shrink ?check ~requests:reqs ~baseline s in
        let f_shrunk_violations =
          run_spec ?check ~requests:reqs ~baseline f_shrunk
        in
        failures :=
          !failures
          @ [ { index; f_spec = s; f_violations; f_shrunk; f_shrunk_violations } ]
  done;
  { seed; schedules; requests; sysfault; zero_fault; failures = !failures }

let ok summary = summary.zero_fault = None && summary.failures = []

let reproducer summary =
  let b = Buffer.create 256 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  p "serve-chaos: seed=%Ld schedules=%d requests=%d sysfault=%b\n" summary.seed
    summary.schedules summary.requests summary.sysfault;
  (match summary.zero_fault with
  | Some v -> p "transparency VIOLATED: %s: %s\n" v.invariant v.detail
  | None -> ());
  List.iter
    (fun f ->
      p "schedule %d FAILED: %s\n" f.index (describe_schedule f.f_spec);
      List.iter (fun v -> p "  %s: %s\n" v.invariant v.detail) f.f_violations;
      p "  shrunk to: %s\n" (describe_schedule f.f_shrunk);
      List.iter
        (fun v -> p "  (shrunk) %s: %s\n" v.invariant v.detail)
        f.f_shrunk_violations)
    summary.failures;
  if ok summary then p "all invariants held\n";
  p "replay: locsample serve-chaos --seed %Ld --schedules %d --requests %d%s\n"
    summary.seed summary.schedules summary.requests
    (if summary.sysfault then "" else " --no-sysfault");
  Buffer.contents b

let parse_reproducer text =
  let prefix = "replay: locsample serve-chaos" in
  let is_replay l =
    String.length l >= String.length prefix
    && String.sub l 0 (String.length prefix) = prefix
  in
  match List.find_opt is_replay (String.split_on_char '\n' text) with
  | None -> None
  | Some line -> (
      let toks =
        List.filter (fun s -> s <> "") (String.split_on_char ' ' line)
      in
      let rec go seed schedules requests sysfault = function
        | [] -> (seed, schedules, requests, sysfault)
        | "--seed" :: v :: rest ->
            go (Int64.of_string v) schedules requests sysfault rest
        | "--schedules" :: v :: rest ->
            go seed (int_of_string v) requests sysfault rest
        | "--requests" :: v :: rest ->
            go seed schedules (int_of_string v) sysfault rest
        | "--no-sysfault" :: rest -> go seed schedules requests false rest
        | _ :: rest -> go seed schedules requests sysfault rest
      in
      try Some (go 0L 5 40 true toks) with Failure _ -> None)
