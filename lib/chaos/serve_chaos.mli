(** Chaos harness for the serving daemon.

    Drives a deterministic request burst through the {!Proxy} fault
    injector against a live forked daemon — with a {!Sysfault} syscall
    schedule installed inside the daemon — and checks the serve
    invariants under every generated schedule:

    - {b daemon-crash}: the daemon survives the burst and exits 0 on
      SIGTERM — byte-level damage and resource faults may cost
      connections or snapshots, never the process;
    - {b rid-integrity}: no well-formed response is matched to the
      wrong request (everything accepted is the awaited rid or a
      byte-identical duplicate of an already-answered one);
    - {b byte-identity}: every accepted response is byte-identical to
      a proxy-free, fault-free run of the same burst;
    - {b liveness}: a bounded resend loop completes the burst;
    - {b degraded-pairing}: in the daemon's own trace, every
      [degraded_enter] has its [degraded_exit] by clean shutdown
      (checked whenever the sysfault dimension is live);
    - {b transparency} (once per run): the all-zero schedule yields no
      violations.

    Everything derives from the harness seed — schedule generation, the
    workload, the proxy's per-frame fault draws and the syscall
    verdicts — so a failure printed with its seed replays exactly.
    Failing schedules shrink by zeroing whole fault dimensions (socket
    and syscall alike) to a minimal reproducer, and {!reproducer} ends
    in a [locsample serve-chaos] line that {!parse_reproducer} (and the
    real CLI) round-trips.

    The harness forks daemons and proxies, so like the sharded suites it
    must run before anything creates a domain ({!Ls_par.Par.quiesce} is
    called before each fork), and it ignores SIGPIPE in the calling
    process — chaos resets make EPIPE on send a normal event. *)

type violation = { invariant : string; detail : string }

type schedule = { net : Proxy.spec; sys : Sysfault.spec }
(** One chaos schedule: socket damage through the proxy plus syscall
    faults through the {!Ls_shard.Sysio} hook inside the daemon. *)

val quiet_schedule : int64 -> schedule
val describe_schedule : schedule -> string

val gen_requests : seed:int64 -> n:int -> Ls_serve.Protocol.request array
(** The deterministic burst: the same mixed sample/infer/count shape as
    [locsample query], over instances chosen so that no generated
    request can legitimately draw [Bad_request] (which lets the chaos
    client blame every [Bad_request] on proxy corruption — the frame
    digest covers the payload only, so a corrupted header can reach the
    daemon as a valid frame) and with all deadlines 0 (expiry depends on
    wall time, which chaos delays would turn into false
    byte-identity failures). *)

val gen_net : Ls_rng.Rng.t -> Proxy.spec
(** One random socket schedule, rates capped well below saturation so
    the bounded resend loop terminates on a correct daemon. *)

val gen_sys : Ls_rng.Rng.t -> Sysfault.spec
(** One random syscall schedule: disk faults run hot (they cost
    snapshots, never answers), transparent and accept faults stay at
    half, fork faults stay zero (the harness daemon never forks), and
    a bounded ops budget makes recovery deterministic. *)

val gen : ?sysfault:bool -> Ls_rng.Rng.t -> schedule
(** Both dimensions off one generator stream; [~sysfault:false]
    (default [true]) zeroes the syscall half without perturbing the
    socket draws. *)

val run_spec :
  ?check:(schedule -> violation option) ->
  requests:Ls_serve.Protocol.request array ->
  baseline:string array ->
  schedule ->
  violation list
(** Run the burst under one schedule and return every violation (empty
    = passed).  [baseline] is the fault-free transcript from
    {!baseline_run}; [check] injects an extra caller-supplied invariant
    — the hook the shrinker tests use to plant a seeded failure.  When
    the sysfault half is non-quiet the daemon runs with a state dir, an
    aggressive snapshot cadence and a file trace, and the
    degraded-pairing invariant is judged from that trace. *)

val baseline_run : Ls_serve.Protocol.request array -> string array
(** The fault-free transcript: one encoded response per request, the
    byte-identity reference.  Raises [Failure] if the daemon cannot
    serve the burst cleanly — that is a broken environment, not a chaos
    finding. *)

val shrink :
  ?check:(schedule -> violation option) ->
  requests:Ls_serve.Protocol.request array ->
  baseline:string array ->
  schedule ->
  schedule
(** Greedily zero fault dimensions while the schedule still fails;
    fixed point = minimal reproducer. *)

type failure = {
  index : int;  (** Which generated schedule failed (0-based). *)
  f_spec : schedule;
  f_violations : violation list;
  f_shrunk : schedule;
  f_shrunk_violations : violation list;
}

type summary = {
  seed : int64;
  schedules : int;
  requests : int;
  sysfault : bool;  (** Was the syscall dimension enabled? *)
  zero_fault : violation option;
      (** Transparency check under the all-zero schedule (run without
          [check], so planted failures surface as schedule failures). *)
  failures : failure list;
}

val run :
  ?check:(schedule -> violation option) ->
  ?schedules:int ->
  ?requests:int ->
  ?sysfault:bool ->
  seed:int64 ->
  unit ->
  summary
(** Baseline, transparency, then [schedules] generated schedules
    (defaults 5 × 40 requests, sysfault dimension on), shrinking each
    failure.  Raises [Failure] only if the baseline itself cannot
    run. *)

val ok : summary -> bool

val reproducer : summary -> string
(** Human-readable report ending in an exact
    [locsample serve-chaos --seed … --schedules … --requests …]
    (plus [--no-sysfault] when the dimension was off) replay line. *)

val parse_reproducer : string -> (int64 * int * int * bool) option
(** Recover [(seed, schedules, requests, sysfault)] from a
    {!reproducer} report — the round-trip the CLI's replay path and its
    tests rely on. *)
