(* Deterministic syscall fault injection: the plan behind the
   {!Ls_shard.Sysio} hook.

   Every consultation draws its verdict from a hash of
   (seed, operation, site, per-site count, dimension) — the same trick
   the message-fault layer plays with (round, src, dst, copy) and the
   socket proxy with (connection, direction, frame).  Nothing is drawn
   from wall time or a stateful rng, so installing the same spec and
   resetting the counts replays the same fault schedule bit for bit.

   Site discrimination keeps injected faults inside their blast radius:
   ENOSPC targets only disk sites ("ckpt.*", "pidfile.*"), so a serve
   response written to a socket can at worst be delayed by a transparent
   short write or EINTR — never failed — and the byte-identity invariant
   of the serve chaos suite stays checkable under injection.

   [ops_budget] bounds faults to the first N consultations of the
   process (0 = unlimited): after the budget, every verdict is Pass, so
   a schedule deterministically clears and recovery — degraded exits,
   health returning to ok — can be asserted, not just hoped for. *)

module Frame = Ls_shard.Frame
module Sysio = Ls_shard.Sysio

type spec = {
  seed : int64;
  write_fail : float;  (* ENOSPC on disk writes *)
  rename_fail : float;  (* ENOSPC on disk renames *)
  open_fail : float;  (* ENOSPC on disk opens *)
  short_write : float;  (* short writes (any write site; transparent) *)
  eintr : float;  (* synthetic EINTR (any retried site; transparent) *)
  accept_fail : float;  (* EMFILE/ENFILE on accept *)
  fork_fail : float;  (* EAGAIN on fork *)
  ops_budget : int;  (* consultations before the schedule goes quiet; 0 = never *)
}

let quiet seed =
  {
    seed;
    write_fail = 0.;
    rename_fail = 0.;
    open_fail = 0.;
    short_write = 0.;
    eintr = 0.;
    accept_fail = 0.;
    fork_fail = 0.;
    ops_budget = 0;
  }

let is_quiet s =
  s.write_fail = 0. && s.rename_fail = 0. && s.open_fail = 0.
  && s.short_write = 0. && s.eintr = 0. && s.accept_fail = 0.
  && s.fork_fail = 0.

(* One canonical string form, both directions: what --sysfault and
   LOCSAMPLE_SYSFAULT parse is exactly what reproducers print. *)
let to_string s =
  Printf.sprintf
    "seed=%Ld,write=%g,rename=%g,open=%g,short=%g,eintr=%g,accept=%g,fork=%g,budget=%d"
    s.seed s.write_fail s.rename_fail s.open_fail s.short_write s.eintr
    s.accept_fail s.fork_fail s.ops_budget

let describe = to_string

let of_string str =
  let ( let* ) = Result.bind in
  let rate v =
    match float_of_string_opt v with
    | Some f when f >= 0. && f <= 1. -> Ok f
    | _ -> Error (Printf.sprintf "rate %S: expected a float in [0, 1]" v)
  in
  let fields = String.split_on_char ',' (String.trim str) in
  List.fold_left
    (fun acc field ->
      let* s = acc in
      match String.index_opt field '=' with
      | None when String.trim field = "" -> Ok s
      | None -> Error (Printf.sprintf "sysfault field %S: expected KEY=VALUE" field)
      | Some i -> (
          let k = String.trim (String.sub field 0 i) in
          let v =
            String.trim
              (String.sub field (i + 1) (String.length field - i - 1))
          in
          match k with
          | "seed" -> (
              match Int64.of_string_opt v with
              | Some seed -> Ok { s with seed }
              | None -> Error (Printf.sprintf "sysfault seed %S: expected an integer" v))
          | "write" ->
              let* r = rate v in
              Ok { s with write_fail = r }
          | "rename" ->
              let* r = rate v in
              Ok { s with rename_fail = r }
          | "open" ->
              let* r = rate v in
              Ok { s with open_fail = r }
          | "short" ->
              let* r = rate v in
              Ok { s with short_write = r }
          | "eintr" ->
              let* r = rate v in
              Ok { s with eintr = r }
          | "accept" ->
              let* r = rate v in
              Ok { s with accept_fail = r }
          | "fork" ->
              let* r = rate v in
              Ok { s with fork_fail = r }
          | "budget" -> (
              match int_of_string_opt v with
              | Some b when b >= 0 -> Ok { s with ops_budget = b }
              | _ ->
                  Error
                    (Printf.sprintf "sysfault budget %S: expected an integer >= 0" v))
          | _ ->
              Error
                (Printf.sprintf
                   "sysfault key %S: expected seed, write, rename, open, \
                    short, eintr, accept, fork or budget"
                   k)))
    (Ok (quiet 1L)) fields

(* --- deterministic verdicts -------------------------------------------- *)

let draw spec ~op ~site ~count ~dim =
  let h =
    Frame.digest64
      (Printf.sprintf "%Lx|%s|%s|%d|%s" spec.seed (Sysio.op_name op) site
         count dim)
  in
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.

let disk_site site =
  String.starts_with ~prefix:"ckpt." site
  || String.starts_with ~prefix:"pidfile." site

(* The pure verdict function, exposed for the replay test.  [total] is
   the process-wide consultation index (the budget clock); [count] the
   per-(op, site) index (the hash coordinate). *)
let decide spec ~total ~op ~site ~count =
  if spec.ops_budget > 0 && total >= spec.ops_budget then Sysio.Pass
  else
    let d dim = draw spec ~op ~site ~count ~dim in
    match op with
    | Sysio.Write ->
        if disk_site site && d "enospc" < spec.write_fail then
          Sysio.Fail Unix.ENOSPC
        else if d "eintr" < spec.eintr then Sysio.Intr
        else if d "short" < spec.short_write then
          Sysio.Short (1 + int_of_float (d "shortlen" *. 64.))
        else Sysio.Pass
    | Sysio.Rename ->
        if disk_site site && d "enospc" < spec.rename_fail then
          Sysio.Fail Unix.ENOSPC
        else if d "eintr" < spec.eintr then Sysio.Intr
        else Sysio.Pass
    | Sysio.Open ->
        if disk_site site && d "enospc" < spec.open_fail then
          Sysio.Fail Unix.ENOSPC
        else if d "eintr" < spec.eintr then Sysio.Intr
        else Sysio.Pass
    | Sysio.Close -> if d "eintr" < spec.eintr then Sysio.Intr else Sysio.Pass
    | Sysio.Accept ->
        if d "exhaust" < spec.accept_fail then
          Sysio.Fail (if d "which" < 0.5 then Unix.EMFILE else Unix.ENFILE)
        else if d "eintr" < spec.eintr then Sysio.Intr
        else Sysio.Pass
    | Sysio.Fork ->
        if d "eagain" < spec.fork_fail then Sysio.Fail Unix.EAGAIN
        else Sysio.Pass

(* --- installation ------------------------------------------------------ *)

let log_m = Mutex.create ()
let log : string list ref = ref []
let total = ref 0
let installed : spec option ref = ref None

let verdict_name = function
  | Sysio.Pass -> "pass"
  | Sysio.Fail e -> (
      match e with
      | Unix.ENOSPC -> "enospc"
      | Unix.EMFILE -> "emfile"
      | Unix.ENFILE -> "enfile"
      | Unix.EAGAIN -> "eagain"
      | e -> Unix.error_message e)
  | Sysio.Short k -> Printf.sprintf "short:%d" k
  | Sysio.Intr -> "eintr"

let install spec =
  Sysio.reset_counts ();
  Mutex.lock log_m;
  log := [];
  total := 0;
  Mutex.unlock log_m;
  installed := Some spec;
  Sysio.set_hook
    (Some
       (fun ~op ~site ~count ->
         Mutex.lock log_m;
         let t = !total in
         incr total;
         Mutex.unlock log_m;
         let v = decide spec ~total:t ~op ~site ~count in
         (match v with
         | Sysio.Pass -> ()
         | v ->
             Mutex.lock log_m;
             log :=
               Printf.sprintf "%s|%s|%d|%s" (Sysio.op_name op) site count
                 (verdict_name v)
               :: !log;
             Mutex.unlock log_m);
         v))

let uninstall () =
  Sysio.set_hook None;
  installed := None

let current () = !installed
let injected () = List.rev !log

(* --- environment ------------------------------------------------------- *)

let env_var = "LOCSAMPLE_SYSFAULT"

let env_check () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> Ok ()
  | Some s -> (
      match of_string s with
      | Ok _ -> Ok ()
      | Error msg -> Error (Printf.sprintf "%s: %s" env_var msg))

let install_from_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> ()
  | Some s -> (
      match of_string s with
      | Ok spec when not (is_quiet spec) -> install spec
      | Ok _ -> ()
      | Error msg -> invalid_arg (Printf.sprintf "%s: %s" env_var msg))
