(** Deterministic syscall fault injection.

    The plan behind the {!Ls_shard.Sysio} hook: each consultation's
    verdict is a pure hash of (seed, operation, site, per-site count,
    dimension), so installing the same spec and resetting the counts
    replays the same schedule bit for bit — the property the replay
    test asserts over the injected-fault log.

    Blast radius is bounded by site: [ENOSPC] fires only at disk sites
    (["ckpt.*"], ["pidfile.*"]); socket writes see at most transparent
    short writes and EINTR, so responses stay byte-identical under
    injection.  [ops_budget] silences the schedule after its first N
    consultations (0 = never), making recovery deterministic. *)

type spec = {
  seed : int64;
  write_fail : float;  (** ENOSPC probability on disk writes. *)
  rename_fail : float;  (** ENOSPC probability on disk renames. *)
  open_fail : float;  (** ENOSPC probability on disk opens. *)
  short_write : float;  (** Short-write probability (any write site). *)
  eintr : float;  (** Synthetic-EINTR probability (any retried site). *)
  accept_fail : float;  (** EMFILE/ENFILE probability on accept. *)
  fork_fail : float;  (** EAGAIN probability on fork. *)
  ops_budget : int;
      (** Consultations before the schedule goes quiet; 0 = never. *)
}

val quiet : int64 -> spec
(** All rates zero: bit-identical to no hook at all. *)

val is_quiet : spec -> bool

val to_string : spec -> string
(** Canonical ["seed=7,write=0.5,...,budget=64"] form — exactly what
    {!of_string}, [--sysfault] and [LOCSAMPLE_SYSFAULT] parse, and what
    reproducer lines print. *)

val of_string : string -> (spec, string) result
(** Parse the {!to_string} form.  Unknown keys, rates outside [0, 1]
    and negative budgets are named errors; omitted keys default to
    {!quiet}[ 1L]. *)

val describe : spec -> string

val disk_site : string -> bool
(** Is this site a disk path (eligible for ENOSPC)? *)

val decide :
  spec ->
  total:int ->
  op:Ls_shard.Sysio.op ->
  site:string ->
  count:int ->
  Ls_shard.Sysio.outcome
(** The pure verdict function ([total] is the process-wide consultation
    index driving the budget; [count] the per-(op, site) hash
    coordinate) — exposed for the replay test. *)

val install : spec -> unit
(** Reset the {!Ls_shard.Sysio} counts, the budget clock and the
    injected-fault log, then install the hook.  Inherited across fork:
    a supervised worker keeps its parent's schedule (and the counter
    state at fork time). *)

val uninstall : unit -> unit

val current : unit -> spec option

val injected : unit -> string list
(** The non-Pass verdicts applied since {!install}, oldest first, as
    ["op|site|count|verdict"] lines — the replay bit-identity witness. *)

val env_var : string
(** ["LOCSAMPLE_SYSFAULT"]. *)

val env_check : unit -> (unit, string) result
(** Validate [LOCSAMPLE_SYSFAULT] at CLI startup (unset or empty is
    fine). *)

val install_from_env : unit -> unit
(** {!install} the [LOCSAMPLE_SYSFAULT] schedule if the variable is set,
    non-empty and not quiet.  Raises [Invalid_argument] on a malformed
    value (callers run {!env_check} first). *)
