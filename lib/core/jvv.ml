module Gibbs = Ls_gibbs
module Config = Gibbs.Config
module Graph = Ls_graph.Graph
module Dist = Ls_dist.Dist
module Rng = Ls_rng.Rng
module Scheduler = Ls_local.Scheduler

type result = {
  y : int array;
  ground : int array;
  failed : bool array;
  success : bool;
  clamped : int;
  acceptance_product : float;
}

let theory_epsilon inst =
  let n = float_of_int (Instance.n inst) in
  1. /. (n *. n *. n)

(* Pass 1/2 share their shape: extend the pinning vertex by vertex, choosing
   each value by [choose] from the approximate marginal. *)
let chain_pass (oracle : Inference.oracle) inst ~order ~choose =
  let current = ref inst in
  Array.iter
    (fun v ->
      if not (Instance.is_pinned !current v) then begin
        let mu_hat = oracle.Inference.infer !current v in
        current := Instance.pin !current v (choose v mu_hat)
      end)
    order;
  Array.copy !current.Instance.pinned

(* Prefix pinning tau ∧ sigma^{j-1}: the instance pinning plus sigma's values
   on the first j-1 order positions.  [support] restricts which vertices the
   prefix may mention — the certified-locality run passes the gathered
   radius; by the oracle's radius contract the answers are unchanged. *)
let prefix_instance ?(support = fun _ -> true) inst ~order ~upto sigma =
  let pinned = Array.copy inst.Instance.pinned in
  for j = 0 to upto - 1 do
    let v = order.(j) in
    if support v && pinned.(v) = Config.unassigned then pinned.(v) <- sigma.(v)
  done;
  Instance.create inst.Instance.spec ~pinned

(* mu_hat^tau(sigma) restricted to the order positions in [positions]:
   the partial chain-rule product Π_j mu_hat^{sigma^{j-1}}_{v_j}(sigma_{v_j}).
   Positions at pinned vertices contribute factor 1. *)
let windowed_chain_product ?support (oracle : Inference.oracle) inst ~order
    ~positions sigma =
  List.fold_left
    (fun acc j ->
      let v = order.(j) in
      if Instance.is_pinned inst v then acc
      else begin
        let inst_j = prefix_instance ?support inst ~order ~upto:j sigma in
        let mu_hat = oracle.Inference.infer inst_j v in
        acc *. Dist.prob mu_hat sigma.(v)
      end)
    1. positions

exception Found_patch of int array

(* Find sigma_i: equal to sigma_prev outside B_t(v_i), equal to Y on
   processed vertices and tau on pinned ones inside, globally feasible.
   Returns None when no such configuration exists (Claim 4.6 says it does
   when the oracle error is small; a None is a certifiable local failure). *)
let find_patch inst ~ball ~frozen ~sigma_prev =
  let spec = inst.Instance.spec in
  let n = Instance.n inst in
  let in_ball = Array.make n false in
  Array.iter (fun u -> in_ball.(u) <- true) ball;
  (* Closure: the ball plus every vertex sharing a factor with it, so that
     positivity over the closure certifies global feasibility given that
     sigma_prev is feasible. *)
  let in_closure = Array.copy in_ball in
  Array.iter
    (fun f ->
      if Array.exists (fun u -> in_ball.(u)) f.Gibbs.Spec.scope then
        Array.iter (fun u -> in_closure.(u) <- true) f.Gibbs.Spec.scope)
    (Gibbs.Spec.factors spec);
  let tau = Config.empty n in
  for u = 0 to n - 1 do
    if in_closure.(u) then
      if not in_ball.(u) then tau.(u) <- sigma_prev.(u)
      else
        match frozen u with Some c -> tau.(u) <- c | None -> ()
  done;
  match
    Gibbs.Enumerate.fold_completions spec
      ~member:(fun u -> in_closure.(u))
      tau ~init:()
      ~f:(fun () sigma w ->
        if w > 0. then raise (Found_patch (Array.copy sigma)))
  with
  | () -> None
  | exception Found_patch sigma ->
      let patched = Array.copy sigma_prev in
      Array.iter (fun u -> patched.(u) <- sigma.(u)) ball;
      Some patched

(* w(sigma_i)/w(sigma_prev), over the factors whose scope meets the ball
   (eq. 12) — all other factors are evaluated identically. *)
let weight_ratio inst ~ball sigma_i sigma_prev =
  let spec = inst.Instance.spec in
  let n = Instance.n inst in
  let in_ball = Array.make n false in
  Array.iter (fun u -> in_ball.(u) <- true) ball;
  let num = ref 1. and den = ref 1. in
  Array.iteri
    (fun idx f ->
      if Array.exists (fun u -> in_ball.(u)) f.Gibbs.Spec.scope then begin
        (match Gibbs.Spec.factor_value spec idx sigma_i with
        | Some x -> num := !num *. x
        | None -> assert false);
        match Gibbs.Spec.factor_value spec idx sigma_prev with
        | Some x -> den := !den *. x
        | None -> assert false
      end)
    (Gibbs.Spec.factors spec);
  if !den <= 0. then infinity else !num /. !den

type acceptance = {
  qs : (int * float) list;  (** [(vertex, q_{v_i})] for the free vertices. *)
  patch_failed : int list;  (** Vertices where no interpolation patch exists. *)
  clamps : int;
}

let clamp_tolerance = 1e-9

let acceptances (oracle : Inference.oracle) ~epsilon ?(adaptive = false) inst
    ~order ~ground ~y =
  let n = Instance.n inst in
  let g = Instance.graph inst in
  let t = oracle.Inference.radius in
  let position = Array.make n 0 in
  Array.iteri (fun j v -> position.(v) <- j) order;
  let qs = ref [] in
  let patch_failed = ref [] in
  let clamps = ref 0 in
  let sigma_prev = ref (Array.copy ground) in
  Array.iteri
    (fun i v ->
      if not (Instance.is_pinned inst v) then begin
        let ball = Graph.ball g v t in
        let frozen u =
          if Instance.is_pinned inst u then Some inst.Instance.pinned.(u)
          else if position.(u) <= i then Some y.(u)
          else None
        in
        match find_patch inst ~ball ~frozen ~sigma_prev:!sigma_prev with
        | None -> patch_failed := v :: !patch_failed
        | Some sigma_i ->
            (* Acceptance probability q_{v_i}, eq. (9) via the window of
               eq. (11): only order positions within distance 2t of v_i can
               have differing prefix marginals. *)
            let window = Graph.ball g v (2 * t) in
            let positions =
              List.sort compare
                (Array.to_list (Array.map (fun u -> position.(u)) window))
            in
            let p_prev =
              windowed_chain_product oracle inst ~order ~positions !sigma_prev
            in
            let p_i = windowed_chain_product oracle inst ~order ~positions sigma_i in
            if not (p_prev > 0.) || not (p_i > 0.) then
              patch_failed := v :: !patch_failed
            else begin
              (* The slack only needs to dominate the mu-hat ratio's
                 deviation from 1; the paper's bound uses all n sites, the
                 adaptive variant only the window that actually enters the
                 ratio (a sigma-independent quantity, so exactness is
                 unaffected — ablated in the benches). *)
              let sites =
                if adaptive then Array.length window else n
              in
              let slack = exp (-3. *. float_of_int sites *. epsilon) in
              let q = p_prev /. p_i *. weight_ratio inst ~ball sigma_i !sigma_prev *. slack in
              let q =
                if q > 1. +. clamp_tolerance then begin
                  incr clamps;
                  1.
                end
                else Float.min q 1.
              in
              qs := (v, q) :: !qs;
              sigma_prev := sigma_i
            end
      end)
    order;
  ( { qs = List.rev !qs; patch_failed = List.rev !patch_failed; clamps = !clamps },
    !sigma_prev )

let run (oracle : Inference.oracle) ~epsilon ?adaptive inst ~order ~rng =
  let n = Instance.n inst in
  let failed = Array.make n false in
  (* Pass 1: the ground state. *)
  let ground = chain_pass oracle inst ~order ~choose:(fun _ mu -> Dist.argmax mu) in
  (* Pass 2: the chain-rule sample Y. *)
  let y = chain_pass oracle inst ~order ~choose:(fun _ mu -> Dist.sample rng mu) in
  (* Pass 3: interpolate sigma_0 -> Y with local patches and acceptance. *)
  let acc, final = acceptances oracle ~epsilon ?adaptive inst ~order ~ground ~y in
  List.iter (fun v -> failed.(v) <- true) acc.patch_failed;
  let acceptance_product = ref 1. in
  List.iter
    (fun (v, q) ->
      acceptance_product := !acceptance_product *. q;
      if not (Rng.bernoulli rng q) then failed.(v) <- true)
    acc.qs;
  let success = Array.for_all not failed in
  (* Sanity: the interpolation must have arrived at Y. *)
  if success && final <> y then failwith "Jvv.run: interpolation did not reach Y";
  {
    y;
    ground;
    failed;
    success;
    clamped = acc.clamps;
    acceptance_product = !acceptance_product;
  }

type exact_output = {
  conditional : (int array * float) list;
      (** The exact law of [Y] conditioned on success. *)
  success_probability : float;
  total_clamps : int;
}

let output_distribution (oracle : Inference.oracle) ~epsilon ?adaptive inst
    ~order =
  let ground = chain_pass oracle inst ~order ~choose:(fun _ mu -> Dist.argmax mu) in
  let mu_hat = Sequential_sampler.output_distribution oracle inst ~order in
  let total_clamps = ref 0 in
  let weighted =
    List.map
      (fun (sigma, p) ->
        let acc, _ = acceptances oracle ~epsilon ?adaptive inst ~order ~ground ~y:sigma in
        total_clamps := !total_clamps + acc.clamps;
        let accept =
          if acc.patch_failed <> [] then 0.
          else List.fold_left (fun a (_, q) -> a *. q) 1. acc.qs
        in
        (sigma, p *. accept))
      mu_hat
  in
  let success_probability = List.fold_left (fun a (_, w) -> a +. w) 0. weighted in
  let conditional =
    if success_probability > 0. then
      List.filter_map
        (fun (sigma, w) ->
          if w > 0. then Some (sigma, w /. success_probability) else None)
        weighted
    else []
  in
  { conditional; success_probability; total_clamps = !total_clamps }

(* ------------------------------------------------------------------ *)
(* Certified-locality execution: the same three passes, but every state
   access goes through the locality-enforcing SLOCAL runtime, so a
   completed run has PROVED the localities (t, t, 3t+l) claimed in the
   paper (Claims 4.6/4.7), rather than having them asserted. *)

module Slocal = Ls_local.Slocal

type node_state = { ground : int; y : int; cur : int }

type certified = {
  result : result;
  pass_localities : int list;  (** Measured per pass: [t; t; 0; 3t+l]. *)
  certified_locality : int;  (** The Lemma 4.4 single-pass bound. *)
}

let run_certified (oracle : Inference.oracle) ~epsilon ?(adaptive = false) inst
    ~order ~seed =
  let n = Instance.n inst in
  let g = Instance.graph inst in
  let spec = inst.Instance.spec in
  let t = oracle.Inference.radius in
  let ell = Instance.locality inst in
  let big_r = (3 * t) + ell in
  let position = Array.make n 0 in
  Array.iteri (fun j v -> position.(v) <- j) order;
  let init v =
    let c =
      if Instance.is_pinned inst v then inst.Instance.pinned.(v)
      else Config.unassigned
    in
    { ground = c; y = c; cur = Config.unassigned }
  in
  let rt = Slocal.create g ~seed ~init in
  (* A chain pass through the runtime: read the relevant field of every
     node within radius t, rebuild the prefix instance, infer, choose. *)
  let chain_pass_certified ~field ~store ~choose =
    Slocal.run_pass rt ~order ~radius:t (fun ctx ->
        let v = Slocal.center ctx in
        if not (Instance.is_pinned inst v) then begin
          let pinned = Array.copy inst.Instance.pinned in
          for u = 0 to n - 1 do
            if Slocal.dist ctx u <= t then begin
              let c = field (Slocal.read ctx u) in
              if c <> Config.unassigned && pinned.(u) = Config.unassigned then
                pinned.(u) <- c
            end
          done;
          let inst' = Instance.create spec ~pinned in
          let mu_hat = oracle.Inference.infer inst' v in
          let c = choose ctx mu_hat in
          Slocal.write ctx v (store (Slocal.read ctx v) c)
        end)
  in
  (* Pass 1: ground state. *)
  chain_pass_certified
    ~field:(fun s -> s.ground)
    ~store:(fun s c -> { s with ground = c })
    ~choose:(fun _ mu -> Dist.argmax mu);
  (* Pass 2: the sample Y, drawn from each node's own stream. *)
  chain_pass_certified
    ~field:(fun s -> s.y)
    ~store:(fun s c -> { s with y = c })
    ~choose:(fun ctx mu -> Dist.sample (Slocal.rng ctx) mu);
  (* Pass 2b (radius 0): initialize the interpolation at the ground state. *)
  Slocal.run_pass rt ~order ~radius:0 (fun ctx ->
      let v = Slocal.center ctx in
      let s = Slocal.read ctx v in
      Slocal.write ctx v { s with cur = s.ground });
  (* Pass 3: local patches and rejection, radius 3t + l. *)
  let failed = Array.make n false in
  let clamps = ref 0 in
  let acceptance_product = ref 1. in
  Slocal.run_pass rt ~order ~radius:big_r (fun ctx ->
      let v = Slocal.center ctx in
      if not (Instance.is_pinned inst v) then begin
        let i = position.(v) in
        let visible u = Slocal.dist ctx u <= big_r in
        (* Local views of the interpolation state and of Y. *)
        let sigma_prev = Config.empty n in
        let y_local = Config.empty n in
        for u = 0 to n - 1 do
          if visible u then begin
            let s = Slocal.read ctx u in
            sigma_prev.(u) <- s.cur;
            y_local.(u) <- s.y
          end
        done;
        let ball = Graph.ball g v t in
        let frozen u =
          if Instance.is_pinned inst u then Some inst.Instance.pinned.(u)
          else if position.(u) <= i then Some y_local.(u)
          else None
        in
        match find_patch inst ~ball ~frozen ~sigma_prev with
        | None -> failed.(v) <- true
        | Some sigma_i ->
            let window = Graph.ball g v (2 * t) in
            let positions =
              List.sort compare
                (Array.to_list (Array.map (fun u -> position.(u)) window))
            in
            let p_prev =
              windowed_chain_product ~support:visible oracle inst ~order
                ~positions sigma_prev
            in
            let p_i =
              windowed_chain_product ~support:visible oracle inst ~order
                ~positions sigma_i
            in
            if not (p_prev > 0.) || not (p_i > 0.) then failed.(v) <- true
            else begin
              let sites = if adaptive then Array.length window else n in
              let slack = exp (-3. *. float_of_int sites *. epsilon) in
              let q =
                p_prev /. p_i *. weight_ratio inst ~ball sigma_i sigma_prev *. slack
              in
              let q =
                if q > 1. +. clamp_tolerance then begin
                  incr clamps;
                  1.
                end
                else Float.min q 1.
              in
              acceptance_product := !acceptance_product *. q;
              if not (Rng.bernoulli (Slocal.rng ctx) q) then failed.(v) <- true;
              (* Commit the patch — writes stay within the t-ball. *)
              Array.iter
                (fun u ->
                  let s = Slocal.read ctx u in
                  Slocal.write ctx u { s with cur = sigma_i.(u) })
                ball
            end
      end);
  let states = Slocal.states rt in
  let y = Array.map (fun s -> s.y) states in
  let ground = Array.map (fun s -> s.ground) states in
  let success = Array.for_all not failed in
  if success && Array.exists (fun s -> s.cur <> s.y) states then
    failwith "Jvv.run_certified: interpolation did not reach Y";
  {
    result =
      {
        y;
        ground;
        failed;
        success;
        clamped = !clamps;
        acceptance_product = !acceptance_product;
      };
    pass_localities = Slocal.pass_localities rt;
    certified_locality = Slocal.single_pass_locality rt;
  }

let jvv_locality (oracle : Inference.oracle) inst =
  (* Lemma 4.4: passes of locality t, t, 3t+ℓ collapse to a single pass of
     locality r1 + 2(r2 + r3). *)
  let t = oracle.Inference.radius in
  let ell = Instance.locality inst in
  t + (2 * (t + (3 * t) + ell))

let finish_local stats (result : result) =
  let failed =
    Array.mapi (fun v f -> f || stats.Scheduler.failed.(v)) result.failed
  in
  ({ result with failed; success = Array.for_all not failed }, stats)

let run_local (oracle : Inference.oracle) ~epsilon ?trace inst ~seed =
  let streams = Rng.streams seed 2 in
  let out = ref None in
  let run ~order = out := Some (run oracle ~epsilon inst ~order ~rng:streams.(1)) in
  let stats =
    Scheduler.compile ~graph:(Instance.graph inst)
      ~locality:(jvv_locality oracle inst) ~rng:streams.(0) ?trace ~run ()
  in
  finish_local stats (Option.get !out)

module Network = Ls_local.Network
module Faults = Ls_local.Faults
module Resilient = Ls_local.Resilient
module Async = Ls_local.Async

type supervised = {
  sresult : result;
  sstats : Scheduler.stats;
  resilience : Resilient.report;
  total_rounds : int;
}

let count_failed failed =
  Array.fold_left (fun a f -> if f then a + 1 else a) 0 failed

let run_local_resilient (oracle : Inference.oracle) ~epsilon
    ?(policy = Resilient.default) ?(faults = Faults.none) ?trace ?async inst
    ~seed =
  let g = Instance.graph inst in
  let n = Instance.n inst in
  (* Ball collection for JVV happens per pass: radii t, t, 3t + l
     (Claims 4.6/4.7) — each pass floods its own radius, and a node whose
     flooded view misses part of that pass's ball cannot evaluate its
     marginal or acceptance ratio, so it fails.  Flooding a pass for
     exactly its radius leaves no slack rounds, which is what makes
     message loss bite (a single 9t+2l flood on a small graph would be
     epidemically redundant and hide the drops). *)
  let net = Network.create ~faults ?trace g ~inputs:(Array.make n ()) ~seed in
  let t = oracle.Inference.radius in
  let ell = Instance.locality inst in
  let pass_radii = [ t; t; (3 * t) + ell ] in
  let master = Rng.create seed in
  let best = ref None in
  let sampler_rounds = ref 0 in
  let keep (r, s) =
    match !best with
    | Some (b, _) when count_failed b.failed <= count_failed r.failed -> ()
    | _ -> best := Some (r, s)
  in
  let run_attempt ~attempt:_ =
    let payload_seed = Rng.bits64 master in
    let comm_failed = Array.make n false in
    List.iter
      (fun radius ->
        let views =
          match async with
          | None -> Network.flood_views net ~radius
          | Some cfg -> Async.flood_views cfg net ~radius
        in
        for v = 0 to n - 1 do
          if
            Network.crashed net v
            || not (Network.view_is_complete net views.(v))
          then comm_failed.(v) <- true
        done)
      pass_radii;
    let result, stats = run_local oracle ~epsilon ?trace inst ~seed:payload_seed in
    sampler_rounds := !sampler_rounds + stats.Scheduler.rounds;
    let failed = Array.mapi (fun v f -> f || comm_failed.(v)) result.failed in
    let n_failed = count_failed failed in
    let result = { result with failed; success = n_failed = 0 } in
    keep (result, stats);
    if n_failed = 0 then Ok (result, stats)
    else begin
      (* Same classification as [Local_sampler.sample_resilient]: when
         every failed node is crash-stopped for good, retries are futile. *)
      let all_permanent = ref true in
      Array.iteri
        (fun v f ->
          if f && not (Network.permanently_crashed net v) then
            all_permanent := false)
        failed;
      let why =
        Printf.sprintf "%d node(s) failed (crash, stalled view, or rejection)"
          n_failed
      in
      Error
        (if !all_permanent then Resilient.Permanent why
         else Resilient.Transient why)
    end
  in
  let ok, report =
    Resilient.run_classified ?trace ~label:"jvv_resilient" policy
      ~charge:(Network.charge net) run_attempt
  in
  let sresult, sstats = match ok with Some rs -> rs | None -> Option.get !best in
  (* Teardown accounting: no further phase will collect parked copies. *)
  Network.finish net;
  {
    sresult;
    sstats;
    resilience = report;
    total_rounds = !sampler_rounds + Network.rounds net;
  }

let run_local_certified (oracle : Inference.oracle) ~epsilon inst ~seed =
  (* Composition of the two guarantees: the payload certifies its pass
     localities against the SLOCAL runtime, and the scheduler's same-color
     clusters are more than [locality] apart, so the simulated parallel
     execution is sound end to end. *)
  let streams = Rng.streams seed 2 in
  let payload_seed =
    Int64.of_int (Ls_rng.Rng.int streams.(1) 0x3FFFFFFF)
  in
  let out = ref None in
  let run ~order =
    out := Some (run_certified oracle ~epsilon inst ~order ~seed:payload_seed)
  in
  let stats =
    Scheduler.compile ~graph:(Instance.graph inst)
      ~locality:(jvv_locality oracle inst) ~rng:streams.(0) ~run ()
  in
  let certified = Option.get !out in
  let result, stats = finish_local stats certified.result in
  ({ certified with result }, stats)
