(** The distributed Jerrum–Valiant–Vazirani sampler (§4.2, Theorem 4.2).

    Exact sampling from approximate inference via {e local rejection
    sampling}.  Three passes over an adversarial order [π = v₁ … v_n]:

    + {b Ground state}: build a feasible [σ₀ ⊇ τ] by pinning each vertex to
      any value of positive approximate marginal.
    + {b Chain-rule sample}: draw [Y ⊇ τ] vertex by vertex from the
      approximate marginals; its law is [μ̂^τ] with
      [μ̂^τ(σ)/μ^τ(σ) ∈ \[e^{−nε}, e^{nε}\]] (Claim 4.5).
    + {b Local rejection}: interpolate [σ₀ → Y] through configurations
      [σ_i] that agree with [Y] on processed vertices and differ from
      [σ_{i−1}] only inside [B_t(v_i)] (existence: Claim 4.6).  Each free
      vertex computes
      [q_{v_i} = (μ̂^τ(σ_{i−1}) w(σ_i)) / (μ̂^τ(σ_i) w(σ_{i−1})) · e^{−3nε}]
      — computable within radius [3t + ℓ] because the [μ̂] ratio telescopes
      to a window [B_{2t}(v_i)] (eq. 11) and the weight ratio to factors
      meeting [B_t(v_i)] (eq. 12) — and {e succeeds} with probability
      [q_{v_i}].

    Conditioned on every node succeeding, the product of acceptance
    probabilities telescopes so that [Pr(Y = σ ∧ success) ∝ w(σ)]: the
    output is {e exactly} [μ^τ] (Lemma 4.8), with success probability
    [≥ e^{−5n²ε}] — i.e. [1 − O(1/n)] at the paper's error budget
    [ε = 1/n³].

    [ε] is the per-site multiplicative error bound of the oracle; when the
    true error exceeds it, some [q_{v_i}] may exceed 1 and get clamped —
    the [clamped] counter reports exactness erosion instead of hiding it. *)

type result = {
  y : int array;  (** The sample [Y]. *)
  ground : int array;  (** The ground state [σ₀]. *)
  failed : bool array;  (** [F'_v]: local rejection (or patch-search failure). *)
  success : bool;  (** No local failure. *)
  clamped : int;  (** Number of [q_{v_i} > 1] events (0 in healthy runs). *)
  acceptance_product : float;  (** [Π q_{v_i}] actually realized. *)
}

val run :
  Inference.oracle ->
  epsilon:float ->
  ?adaptive:bool ->
  Instance.t ->
  order:int array ->
  rng:Ls_rng.Rng.t ->
  result
(** The three-pass SLOCAL algorithm on an explicit order.  [adaptive]
    (default false) replaces the paper's per-vertex slack [e^{−3nε}] by
    [e^{−3|B_{2t}(v_i)|ε}] — the window that actually enters the ratio of
    eq. (11).  The window size does not depend on [Y], so exactness is
    untouched while the success probability improves from [e^{−O(n²ε)}] to
    [e^{−O(Σ|W_i|ε)}]; this design choice is ablated in the benches. *)

type exact_output = {
  conditional : (int array * float) list;
      (** The exact law of [Y] conditioned on success. *)
  success_probability : float;
  total_clamps : int;
}

val output_distribution :
  Inference.oracle ->
  epsilon:float ->
  ?adaptive:bool ->
  Instance.t ->
  order:int array ->
  exact_output
(** The {e symbolic} law of the sampler: enumerate every possible [Y],
    replay the deterministic third pass on it, and aggregate
    [Pr(Y = σ ∧ success) = μ̂(σ)·Π q_{v_i}(σ)].  With zero clamps the
    conditional must equal [μ^τ] {e exactly} (Lemma 4.8) — the test suite
    checks this to 1e-9, a far sharper validation than any Monte Carlo run.
    Exponential in the free-vertex count; tiny instances only. *)

type certified = {
  result : result;
  pass_localities : int list;
      (** Measured locality of each pass: [t; t; 0; 3t+ℓ]. *)
  certified_locality : int;
      (** The Lemma 4.4 single-pass bound [r₁ + 2·Σ r_i = 9t + 2ℓ]. *)
}

val run_certified :
  Inference.oracle ->
  epsilon:float ->
  ?adaptive:bool ->
  Instance.t ->
  order:int array ->
  seed:int64 ->
  certified
(** The three passes executed on the locality-{e enforcing} SLOCAL runtime:
    every state read/write is checked against the declared pass radius
    (t, t, 3t+ℓ — Claims 4.6/4.7), every node draws from its own stream,
    and the chain-rule prefixes are rebuilt from the gathered radius only
    (sound by the oracle's radius contract).  A completed run has therefore
    {e certified} the paper's locality claims, not merely assumed them. *)

val run_local :
  Inference.oracle ->
  epsilon:float ->
  ?trace:Ls_obs.Trace.t ->
  Instance.t ->
  seed:int64 ->
  result * Ls_local.Scheduler.stats
(** Compiled to LOCAL via Lemma 3.1 with single-pass locality
    [r₁ + 2(r₂ + r₃) = 9t + 2ℓ] (Lemma 4.4); decomposition failures [F'']
    are OR-ed into [failed]. *)

type supervised = {
  sresult : result;  (** Best attempt; [failed] includes communication failures. *)
  sstats : Ls_local.Scheduler.stats;  (** Scheduler stats of that attempt. *)
  resilience : Ls_local.Resilient.report;
  total_rounds : int;
      (** Every attempt's scheduler rounds + all flooding + all backoff. *)
}

val run_local_resilient :
  Inference.oracle ->
  epsilon:float ->
  ?policy:Ls_local.Resilient.policy ->
  ?faults:Ls_local.Faults.t ->
  ?trace:Ls_obs.Trace.t ->
  ?async:Ls_local.Async.t ->
  Instance.t ->
  seed:int64 ->
  supervised
(** {!run_local} supervised on a faulty network: each attempt floods the
    three pass radii [t, t, 3t+ℓ] (Claims 4.6/4.7) over a network carrying
    [faults] — a node that crashed or whose flooded view misses part of
    some pass's ball is a communication failure, OR-ed into [failed] —
    and failed attempts retry per [policy] with exponential backoff,
    everything charged to [total_rounds].  Each pass floods for exactly
    its radius, leaving no slack rounds, so message loss genuinely
    endangers the deadline.  Budget exhaustion returns the best partial
    result with a degraded [resilience] report.
    Conditional exactness survives faults: communication failures are
    independent of the payload's randomness (the fault plan has its own
    seed), so conditioned on success the output law is still exactly
    [μ^τ].  [async] floods over the event-driven executor, exactly as in
    {!Local_sampler.sample_resilient}; the network is finished before
    returning. *)

val run_local_certified :
  Inference.oracle ->
  epsilon:float ->
  Instance.t ->
  seed:int64 ->
  certified * Ls_local.Scheduler.stats
(** {!run_local} with the certified payload: the SLOCAL passes enforce
    their radii while the scheduler's ordering and round accounting wrap
    them — the end-to-end composition of Lemma 3.1 with Claims 4.6/4.7. *)

val theory_epsilon : Instance.t -> float
(** The paper's error budget [1/n³]. *)
