module Rng = Ls_rng.Rng
module Dist = Ls_dist.Dist
module Scheduler = Ls_local.Scheduler
module Network = Ls_local.Network
module Faults = Ls_local.Faults
module Resilient = Ls_local.Resilient
module Async = Ls_local.Async

type result = {
  sigma : int array;
  failed : bool array;
  success : bool;
  rounds : int;
  stats : Scheduler.stats;
  resilience : Resilient.report option;
}

(* Randomness discipline shared by [plan] / [sample_planned] / [sample]:
   [Rng.streams seed (n+1)] is pure per (seed, index), stream 0 drives the
   decomposition and streams 1..n drive the nodes — so failures are
   independent of the payload output, as Lemma 3.1 requires, and a plan
   compiled once for [seed] composes with the node streams re-derived from
   the same [seed] to reproduce [sample] bit for bit. *)

let plan (oracle : Inference.oracle) inst ~seed =
  let n = Instance.n inst in
  let streams = Rng.streams seed (n + 1) in
  Scheduler.compile_plan ~graph:(Instance.graph inst)
    ~locality:oracle.Inference.radius ~rng:streams.(0) ()

let sample_planned (oracle : Inference.oracle) ~plan ?trace inst ~seed =
  let n = Instance.n inst in
  let streams = Rng.streams seed (n + 1) in
  let node_rng v = streams.(v + 1) in
  let sigma = ref [||] in
  let run ~order =
    let current = ref inst in
    Array.iter
      (fun v ->
        if not (Instance.is_pinned !current v) then begin
          let mu_hat = oracle.Inference.infer !current v in
          let c = Dist.sample (node_rng v) mu_hat in
          current := Instance.pin !current v c
        end)
      order;
    sigma := Array.copy !current.Instance.pinned
  in
  let stats = Scheduler.run_plan plan ?trace ~run () in
  {
    sigma = !sigma;
    failed = stats.Scheduler.failed;
    success = stats.Scheduler.failures = 0;
    rounds = stats.Scheduler.rounds;
    stats;
    resilience = None;
  }

let sample (oracle : Inference.oracle) ?trace inst ~seed =
  let plan = plan oracle inst ~seed in
  sample_planned oracle ~plan ?trace inst ~seed

let count_failed failed =
  Array.fold_left (fun a f -> if f then a + 1 else a) 0 failed

let sample_resilient (oracle : Inference.oracle)
    ?(policy = Resilient.default) ?(faults = Faults.none) ?trace ?async inst
    ~seed =
  let g = Instance.graph inst in
  let n = Instance.n inst in
  (* The physical network carrying the fault plan.  Each attempt first runs
     genuine ball collection over it at the oracle radius: drops, delays and
     crashes hit the sampler through the same message-passing layer the
     flood-vs-gather tests validate, and a node whose flooded view misses
     part of its true ball cannot evaluate its marginal — it is a
     communication failure, OR-ed into the Las Vegas failure flags. *)
  let net = Network.create ~faults ?trace g ~inputs:(Array.make n ()) ~seed in
  let radius = oracle.Inference.radius in
  let master = Rng.create seed in
  let best = ref None in
  let sampler_rounds = ref 0 in
  let keep r =
    match !best with
    | Some b when count_failed b.failed <= count_failed r.failed -> ()
    | _ -> best := Some r
  in
  let run_attempt ~attempt:_ =
    (* Fresh payload randomness per attempt, deterministically derived:
       attempts are sequential, so the draw order is reproducible. *)
    let payload_seed = Rng.bits64 master in
    let views =
      match async with
      | None -> Network.flood_views net ~radius
      | Some cfg -> Async.flood_views cfg net ~radius
    in
    let comm_failed =
      Array.init n (fun v ->
          Network.crashed net v
          || not (Network.view_is_complete net views.(v)))
    in
    let r = sample oracle ?trace inst ~seed:payload_seed in
    sampler_rounds := !sampler_rounds + r.rounds;
    let failed = Array.mapi (fun v f -> f || comm_failed.(v)) r.failed in
    let n_failed = count_failed failed in
    let r = { r with failed; success = n_failed = 0 } in
    keep r;
    if n_failed = 0 then Ok r
    else begin
      (* Classification: when every failed node has crash-stopped for
         good, no retry can ever succeed — stop spending budget.  Any
         salvageable failure (stalled view, oversized cluster, a node
         inside its recovery interval) is worth retrying. *)
      let all_permanent = ref true in
      Array.iteri
        (fun v f ->
          if f && not (Network.permanently_crashed net v) then
            all_permanent := false)
        failed;
      let all_permanent = !all_permanent in
      let why =
        Printf.sprintf "%d node(s) failed (crash, stalled view, or cluster)"
          n_failed
      in
      Error
        (if all_permanent then Resilient.Permanent why
         else Resilient.Transient why)
    end
  in
  let ok, report =
    Resilient.run_classified ?trace ~label:"sample_resilient" policy
      ~charge:(Network.charge net) run_attempt
  in
  let r = match ok with Some r -> r | None -> Option.get !best in
  (* Teardown: the network runs no further phases, so copies still parked
     across a phase boundary settle as dead letters — conservation holds
     with pending = 0 when the supervisor hands the result back. *)
  Network.finish net;
  (* Honest meter: every attempt's scheduler rounds, every flood, every
     backoff round — nothing is charged to a discarded attempt for free. *)
  {
    r with
    rounds = !sampler_rounds + Network.rounds net;
    resilience = Some report;
  }
