(** Approximate sampling in the LOCAL model (Theorem 3.2).

    The chain-rule SLOCAL sampler compiled through the network-decomposition
    scheduler of Lemma 3.1: the realized ordering [π] comes from the
    Linial–Saks decomposition of [G^{r+1}] ([r] = oracle radius), every node
    draws from its own random stream, and nodes the truncated decomposition
    failed to cluster report [F_v = 1].  Conditioned on no failure the
    output follows exactly the SLOCAL sampler's distribution [μ̂_{I,π}],
    whose total-variation distance to [μ^τ] is at most [n] times the
    oracle's per-site error.

    Round complexity (charged, not just claimed):
    [O(r log² n)] — decomposition plus [Σ_colors 2(R_c (r+1) + r)]. *)

type result = {
  sigma : int array;  (** The sample (defined even at failed nodes). *)
  failed : bool array;  (** [F_v]: decomposition and communication failures. *)
  success : bool;  (** No node failed. *)
  rounds : int;  (** LOCAL rounds charged. *)
  stats : Ls_local.Scheduler.stats;
  resilience : Ls_local.Resilient.report option;
      (** Supervision report of {!sample_resilient}; [None] for {!sample}. *)
}

val sample :
  Inference.oracle ->
  ?trace:Ls_obs.Trace.t ->
  Instance.t ->
  seed:int64 ->
  result
(** One LOCAL execution: fresh decomposition randomness and fresh per-node
    sampling streams, both derived from [seed] but independent of each
    other.  Decomposition stats are emitted to [trace] (or the ambient
    sink, see {!Ls_obs.Trace}).  Equivalent to
    [sample_planned oracle ~plan:(plan oracle inst ~seed) inst ~seed]. *)

val plan : Inference.oracle -> Instance.t -> seed:int64 -> Ls_local.Scheduler.plan
(** The compilation half of {!sample} alone: the decomposition and the
    realized ordering, driven by stream 0 of [seed]'s split — no payload
    runs, nothing is traced.  The plan is a pure function of
    (oracle radius, instance graph, seed), so the serving engine caches it
    keyed on the canonical request hash. *)

val sample_planned :
  Inference.oracle ->
  plan:Ls_local.Scheduler.plan ->
  ?trace:Ls_obs.Trace.t ->
  Instance.t ->
  seed:int64 ->
  result
(** The execution half of {!sample} against a (possibly cached) plan:
    re-derives the node streams 1..n from [seed] and runs the chain-rule
    payload on the plan's ordering.  [sample_planned ~plan:(plan o i ~seed)]
    is bit-identical to [sample] — streams are pure per (seed, index), so
    splitting the call in two consumes the same draws in the same order. *)

val sample_resilient :
  Inference.oracle ->
  ?policy:Ls_local.Resilient.policy ->
  ?faults:Ls_local.Faults.t ->
  ?trace:Ls_obs.Trace.t ->
  ?async:Ls_local.Async.t ->
  Instance.t ->
  seed:int64 ->
  result
(** {!sample} supervised on a faulty network.  Each attempt floods every
    node's radius-[t] ball over a {!Ls_local.Network} carrying [faults];
    nodes that crashed or whose flooded view is incomplete are communication
    failures, OR-ed into [failed].  Failed attempts are retried per
    [policy] with exponential backoff (charged to [rounds], along with
    every attempt's scheduler and flooding rounds); when the budget runs
    out the best partial sample is returned with [resilience] marked
    degraded — graceful degradation, not an exception.  Under
    [Faults.none] the attempt succeeds immediately and the output law is
    that of {!sample}.

    [async] floods over the event-driven executor ({!Ls_local.Async})
    instead of the synchronous one: in synchronizer mode the execution is
    bit-identical; in adaptive mode a misfired timeout surfaces as an
    incomplete view — one more transient communication failure to retry,
    never a wrong answer, so the Las Vegas guarantee is preserved.  The
    network is {!Ls_local.Network.finish}ed before returning, so the
    conservation identity holds with no pending copies at teardown. *)
