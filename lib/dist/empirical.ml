module Key = struct
  type t = int array

  let equal = ( = )
  let hash = Hashtbl.hash
end

module Tbl = Hashtbl.Make (Key)

type t = { counts : int Tbl.t; mutable total : int }

let create () = { counts = Tbl.create 64; total = 0 }

let add e sigma =
  let sigma = Array.copy sigma in
  let c = try Tbl.find e.counts sigma with Not_found -> 0 in
  Tbl.replace e.counts sigma (c + 1);
  e.total <- e.total + 1

let total e = e.total

let count e sigma = try Tbl.find e.counts sigma with Not_found -> 0

let freq e sigma =
  if e.total = 0 then 0. else float_of_int (count e sigma) /. float_of_int e.total

let add_all e sigmas = Array.iter (add e) sigmas

let collect ?domains ~n ~seed sample =
  let e = create () in
  add_all e (Ls_par.Par.run_trials ?domains ~n ~seed sample);
  e

let distinct e = Tbl.length e.counts

let marginal e ~v ~q =
  let counts = Array.make q 0. in
  Tbl.iter
    (fun sigma c -> counts.(sigma.(v)) <- counts.(sigma.(v)) +. float_of_int c)
    e.counts;
  let total = float_of_int (max e.total 1) in
  Array.map (fun c -> c /. total) counts

let iter e f = Tbl.iter f e.counts

let tv_against e exact =
  let n = float_of_int (max e.total 1) in
  let acc = ref 0. in
  let seen = Tbl.create 64 in
  List.iter
    (fun (sigma, p) ->
      Tbl.replace seen sigma ();
      let f = float_of_int (count e sigma) /. n in
      acc := !acc +. Float.abs (f -. p))
    exact;
  (* Mass outside the exact support. *)
  Tbl.iter
    (fun sigma c ->
      if not (Tbl.mem seen sigma) then acc := !acc +. (float_of_int c /. n))
    e.counts;
  0.5 *. !acc

let chi_square e exact =
  let n = float_of_int e.total in
  let acc = ref 0. in
  let seen = Tbl.create 64 in
  List.iter
    (fun (sigma, p) ->
      Tbl.replace seen sigma ();
      let expected = n *. p in
      let observed = float_of_int (count e sigma) in
      if expected > 0. then
        acc := !acc +. (((observed -. expected) ** 2.) /. expected)
      else if observed > 0. then acc := infinity)
    exact;
  Tbl.iter
    (fun sigma c -> if not (Tbl.mem seen sigma) && c > 0 then acc := infinity)
    e.counts;
  !acc
