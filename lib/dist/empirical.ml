module Key = struct
  type t = int array

  let equal = ( = )
  let hash = Hashtbl.hash
end

module Tbl = Hashtbl.Make (Key)

type t = { counts : int Tbl.t; mutable total : int }

let create () = { counts = Tbl.create 64; total = 0 }

let add e sigma =
  let sigma = Array.copy sigma in
  let c = try Tbl.find e.counts sigma with Not_found -> 0 in
  Tbl.replace e.counts sigma (c + 1);
  e.total <- e.total + 1

let total e = e.total

let count e sigma = try Tbl.find e.counts sigma with Not_found -> 0

let freq e sigma =
  if e.total = 0 then 0. else float_of_int (count e sigma) /. float_of_int e.total

let add_all e sigmas = Array.iter (add e) sigmas

let collect ?domains ~n ~seed sample =
  let e = create () in
  add_all e (Ls_par.Par.run_trials ?domains ~n ~seed sample);
  e

let merge a b =
  let m = create () in
  let feed e =
    Tbl.iter
      (fun sigma c ->
        let prev = try Tbl.find m.counts sigma with Not_found -> 0 in
        Tbl.replace m.counts sigma (prev + c))
      e.counts
  in
  feed a;
  feed b;
  m.total <- a.total + b.total;
  m

let collect_streaming ?domains ?chunk ~n ~seed sample =
  Ls_par.Par.fold_trials ?domains ?chunk ~n ~seed ~init:create
    ~add:(fun e sigma -> add e sigma)
    ~merge sample

let distinct e = Tbl.length e.counts

let marginal e ~v ~q =
  let counts = Array.make q 0. in
  Tbl.iter
    (fun sigma c -> counts.(sigma.(v)) <- counts.(sigma.(v)) +. float_of_int c)
    e.counts;
  let total = float_of_int (max e.total 1) in
  Array.map (fun c -> c /. total) counts

let iter e f = Tbl.iter f e.counts

let tv_against e exact =
  let n = float_of_int (max e.total 1) in
  let acc = ref 0. in
  let seen = Tbl.create 64 in
  List.iter
    (fun (sigma, p) ->
      Tbl.replace seen sigma ();
      let f = float_of_int (count e sigma) /. n in
      acc := !acc +. Float.abs (f -. p))
    exact;
  (* Mass outside the exact support. *)
  Tbl.iter
    (fun sigma c ->
      if not (Tbl.mem seen sigma) then acc := !acc +. (float_of_int c /. n))
    e.counts;
  0.5 *. !acc

module Sketched = struct
  module Cms = Ls_sketch.Cms
  module Bottomk = Ls_sketch.Bottomk
  module Codec = Ls_sketch.Codec
  module Splitmix = Ls_rng.Splitmix

  type t = { cms : Cms.t; bk : Bottomk.t }

  let create ?(width = 1024) ?(depth = 4) ?(k = 256) ~seed () =
    { cms = Cms.create ~width ~depth ~seed; bk = Bottomk.create ~k ~seed }

  let add t sigma =
    Cms.add t.cms sigma;
    Bottomk.add t.bk sigma

  let total t = Cms.total t.cms
  let count t sigma = Cms.count t.cms sigma

  let freq t sigma =
    let n = total t in
    if n = 0 then 0. else float_of_int (count t sigma) /. float_of_int n

  let distinct_estimate t = Bottomk.distinct t.bk
  let epsilon t = Cms.epsilon t.cms
  let delta t = Cms.delta t.cms
  let cms t = t.cms
  let bottomk t = t.bk

  let merge a b =
    { cms = Cms.merge a.cms b.cms; bk = Bottomk.merge a.bk b.bk }

  (* Unlike {!tv_against} on exact multisets, this only sums over the
     given support list: a sketch cannot enumerate off-support keys, so
     any off-support mass is invisible here (and CMS overestimates make
     this an upper-biased per-point error, not a true TV distance). *)
  let tv_against t exact =
    let n = float_of_int (max (total t) 1) in
    let acc = ref 0. in
    List.iter
      (fun (sigma, p) ->
        let f = float_of_int (count t sigma) /. n in
        acc := !acc +. Float.abs (f -. p))
      exact;
    0.5 *. !acc

  (* The sketch hash seed is derived from the sampling seed through an
     independent tag, so sketch cells never correlate with the sampler's
     own randomness. *)
  let derive_seed seed = Splitmix.mix64 (Int64.logxor seed 0x534b4554434831L)

  let collect ?domains ?(chunk = 65536) ?width ?depth ?k ~n ~seed sample =
    let hseed = derive_seed seed in
    Ls_par.Par.fold_trials ?domains ~chunk ~n ~seed
      ~init:(fun () -> create ?width ?depth ?k ~seed:hseed ())
      ~add:(fun t sigma -> add t sigma)
      ~merge sample

  let magic = "EMPS"

  let serialize t =
    let c = Cms.to_string t.cms and b = Bottomk.to_string t.bk in
    let buf = Buffer.create (String.length c + String.length b + 24) in
    Buffer.add_string buf magic;
    Codec.add_int buf (String.length c);
    Buffer.add_string buf c;
    Codec.add_int buf (String.length b);
    Buffer.add_string buf b;
    Buffer.contents buf

  let decode s =
    try
      let cur = ref 0 in
      Codec.check_magic s cur magic;
      let take () =
        let len = Codec.get_int s cur in
        if len < 0 || len > Codec.remaining s cur then
          invalid_arg "Sketched.deserialize: truncated section";
        let part = String.sub s !cur len in
        cur := !cur + len;
        part
      in
      let cms = Cms.of_string (take ()) in
      let bk = Bottomk.of_string (take ()) in
      if !cur <> String.length s then
        invalid_arg "Sketched.deserialize: trailing bytes";
      Ok { cms; bk }
    with Invalid_argument msg -> Error msg

  let deserialize s =
    match decode s with Ok t -> t | Error msg -> invalid_arg msg

  let digest t = Codec.digest (serialize t)
end

let chi_square e exact =
  let n = float_of_int e.total in
  let acc = ref 0. in
  let seen = Tbl.create 64 in
  List.iter
    (fun (sigma, p) ->
      Tbl.replace seen sigma ();
      let expected = n *. p in
      let observed = float_of_int (count e sigma) in
      if expected > 0. then
        acc := !acc +. (((observed -. expected) ** 2.) /. expected)
      else if observed > 0. then acc := infinity)
    exact;
  Tbl.iter
    (fun sigma c -> if not (Tbl.mem seen sigma) && c > 0 then acc := infinity)
    e.counts;
  !acc
