(** Empirical distributions over configurations.

    Used to validate samplers: accumulate the configurations a sampler
    outputs, then compare the resulting empirical distribution with the exact
    target distribution (computed by brute-force enumeration on small
    instances). *)

type t
(** A multiset of configurations [σ ∈ Σ^V], represented as [int array]s. *)

val create : unit -> t

val add : t -> int array -> unit
(** Record one sample.  The array is copied. *)

val total : t -> int
(** Number of samples recorded. *)

val count : t -> int array -> int
(** Occurrences of one configuration. *)

val freq : t -> int array -> float
(** [count / total] (0 when empty). *)

val add_all : t -> int array array -> unit
(** Record a batch of samples, in array order. *)

val collect :
  ?domains:int -> n:int -> seed:int64 -> (Ls_rng.Rng.t -> int array) -> t
(** [collect ~n ~seed sample] draws [n] configurations in parallel with
    {!Ls_par.Par.run_trials} (one seed-split stream per trial) and
    accumulates them in trial order — the resulting multiset, and even
    the internal insertion order, are independent of the domain count. *)

val merge : t -> t -> t
(** Multiset sum: [count (merge a b) σ = count a σ + count b σ].
    Commutative and associative with [create ()] as identity. *)

val collect_streaming :
  ?domains:int ->
  ?chunk:int ->
  n:int ->
  seed:int64 ->
  (Ls_rng.Rng.t -> int array) ->
  t
(** Like {!collect} but via {!Ls_par.Par.fold_trials}: trials are
    accumulated into per-chunk multisets (default chunk 4096) that are
    merged in chunk order, so the [n]-element configuration array is
    never materialized.  Produces the same multiset as {!collect} for
    the same [(n, seed, sample)], at every domain count and chunk
    size. *)

val distinct : t -> int
(** Number of distinct configurations seen. *)

val marginal : t -> v:int -> q:int -> float array
(** Empirical frequencies of the values [0..q-1] at vertex [v]. *)

val iter : t -> (int array -> int -> unit) -> unit

val tv_against : t -> (int array * float) list -> float
(** [tv_against e exact] is the total variation distance between the
    empirical distribution and the exact distribution given as a support
    list [(σ, μ(σ))].  Mass the sampler put on configurations outside the
    support list is counted in full (such mass certifies a bug). *)

val chi_square : t -> (int array * float) list -> float
(** Pearson χ² statistic of the empirical counts against expected counts
    [total · μ(σ)]; cells with expected count 0 contribute [infinity] when
    observed, 0 otherwise. *)

(** Sketch-backed empirical distribution: a {!Ls_sketch.Cms} (point
    frequencies, never underestimating, ε–δ overestimate bound) paired
    with a {!Ls_sketch.Bottomk} (distinct-count estimate) under one
    shared hash seed.  Memory is [O(width·depth + k)] — independent of
    how many samples stream through — and {!Sketched.merge} inherits
    both components' commutative-monoid structure, so
    {!Sketched.collect} serializes byte-identically at every domain
    count and chunk size. *)
module Sketched : sig
  type t

  val create : ?width:int -> ?depth:int -> ?k:int -> seed:int64 -> unit -> t
  (** Empty sketch pair (defaults: width 1024, depth 4, k 256) — the
      identity of {!merge} for its parameter family.  Raises
      [Invalid_argument] on non-positive dimensions. *)

  val add : t -> int array -> unit
  (** Record one sample into both sketches. *)

  val total : t -> int
  (** Samples recorded (the [N] of the ε–δ bound). *)

  val count : t -> int array -> int
  (** CMS point estimate: true count ≤ estimate ≤ true count + ε·N with
      probability ≥ 1 − δ. *)

  val freq : t -> int array -> float
  (** [count / total] (0 when empty). *)

  val distinct_estimate : t -> float
  (** Bottom-k distinct-configuration estimate (exact below [k]). *)

  val epsilon : t -> float
  val delta : t -> float

  val cms : t -> Ls_sketch.Cms.t
  val bottomk : t -> Ls_sketch.Bottomk.t

  val merge : t -> t -> t
  (** Component-wise merge.  Raises [Invalid_argument] unless both
      sides share all sketch parameters and the seed. *)

  val tv_against : t -> (int array * float) list -> float
  (** Sketched analogue of {!Empirical.tv_against}, summing {e only}
      over the given support list: a sketch cannot enumerate keys, so
      off-support sampler mass is invisible here, and CMS overestimates
      bias each per-point term upward.  Use it as a drift indicator
      against the exact-histogram TV, not as a true TV distance. *)

  val collect :
    ?domains:int ->
    ?chunk:int ->
    ?width:int ->
    ?depth:int ->
    ?k:int ->
    n:int ->
    seed:int64 ->
    (Ls_rng.Rng.t -> int array) ->
    t
  (** Streaming collection via {!Ls_par.Par.fold_trials} (default chunk
      65536): per-chunk sketch pairs are merged in chunk order in
      [O(width·depth + k)] memory per chunk.  The sketch hash seed is
      derived from [seed] by an independent SplitMix64 tag, so the same
      sampling seed always yields the same hash family.  The result —
      including its {!serialize} bytes — is invariant under the domain
      count and the chunk size. *)

  val serialize : t -> string
  (** Canonical bytes (magic ["EMPS"], length-prefixed CMS then
      bottom-k sections).  Equal sketch states serialize equally — the
      E15 determinism diff compares exactly this. *)

  val deserialize : string -> t
  (** Inverse of {!serialize}; raises [Invalid_argument] on malformed
      input. *)

  val decode : string -> (t, string) result
  (** Non-raising {!deserialize}: malformed input — bad magic, a section
      length exceeding the bytes that remain, corruption inside either
      sketch section, trailing bytes — returns [Error] with the named
      reason, never raises, and never allocates from an unvalidated
      length prefix. *)

  val digest : t -> string
  (** 16-hex fingerprint of {!serialize}. *)
end
