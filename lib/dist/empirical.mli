(** Empirical distributions over configurations.

    Used to validate samplers: accumulate the configurations a sampler
    outputs, then compare the resulting empirical distribution with the exact
    target distribution (computed by brute-force enumeration on small
    instances). *)

type t
(** A multiset of configurations [σ ∈ Σ^V], represented as [int array]s. *)

val create : unit -> t

val add : t -> int array -> unit
(** Record one sample.  The array is copied. *)

val total : t -> int
(** Number of samples recorded. *)

val count : t -> int array -> int
(** Occurrences of one configuration. *)

val freq : t -> int array -> float
(** [count / total] (0 when empty). *)

val add_all : t -> int array array -> unit
(** Record a batch of samples, in array order. *)

val collect :
  ?domains:int -> n:int -> seed:int64 -> (Ls_rng.Rng.t -> int array) -> t
(** [collect ~n ~seed sample] draws [n] configurations in parallel with
    {!Ls_par.Par.run_trials} (one seed-split stream per trial) and
    accumulates them in trial order — the resulting multiset, and even
    the internal insertion order, are independent of the domain count. *)

val distinct : t -> int
(** Number of distinct configurations seen. *)

val marginal : t -> v:int -> q:int -> float array
(** Empirical frequencies of the values [0..q-1] at vertex [v]. *)

val iter : t -> (int array -> int -> unit) -> unit

val tv_against : t -> (int array * float) list -> float
(** [tv_against e exact] is the total variation distance between the
    empirical distribution and the exact distribution given as a support
    list [(σ, μ(σ))].  Mass the sampler put on configurations outside the
    support list is counted in full (such mass certifies a bug). *)

val chi_square : t -> (int array * float) list -> float
(** Pearson χ² statistic of the empirical counts against expected counts
    [total · μ(σ)]; cells with expected count 0 contribute [infinity] when
    observed, 0 otherwise. *)
