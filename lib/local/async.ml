(* The event-driven executor.  Runs the same per-node programs as
   Network.run_broadcast over a priority queue of timestamped events
   instead of a global round loop.

   Two modes:

   - Synchronizer: an alpha-synchronizer.  Every payload copy is acked at
     the link layer; a node that has every round-r copy acked declares
     itself safe and broadcasts Safe(r) to its neighbors; a node closes
     its round-r inbox slot (the local round barrier) once it is
     self-safe and has Safe(r) from every neighbor alive at round r.
     Ack causality then guarantees no copy due in slot r can arrive
     after the barrier, so slot contents — and hence states, meters and
     the payload trace — are bit-identical to the synchronous executor
     under arbitrary delay laws and clock skew.

   - Adaptive (bounded delay): no acks or barriers.  A node tracks a
     per-neighbor EWMA of observed latencies and arms a timeout per
     unresolved neighbor; a timeout sends a retransmit request (nack),
     backs off exponentially with deterministic jitter, and gives up
     after a bounded number of attempts.  A misfired timeout therefore
     costs only completeness — the node proceeds with a subset inbox,
     which view_is_complete detects and Resilient classifies as a
     transient failure — never soundness: merges only ever see truthful
     payloads, so Las Vegas outputs stay exact.

   Determinism: virtual time is simulated.  Fault verdicts fix WHICH
   logical slot a copy lands in (send round + verdict delay, exactly as
   in the synchronous executor); the timing laws (link latency, clock
   skew, control-plane latency, timeout jitter) are themselves
   deterministic draws from the fault plan's seed and only decide the
   ORDER in which events are processed.  Heap ties break on insertion
   sequence.  The whole execution is a pure function of the seeds.

   Trace fidelity: payload fault events are buffered during execution
   and flushed at phase end in the synchronous emission order (per
   round: partition transitions, per-node crash bookkeeping, per-sender
   fates in adjacency order), so the payload trace stream stays
   byte-identical in synchronizer mode.  Control-plane events (acks,
   barriers, timeouts, skew) go only to the config's dedicated control
   sink and can never perturb the payload stream. *)

module Graph = Ls_graph.Graph
module Trace = Ls_obs.Trace
module Metrics = Ls_obs.Metrics
module I = Network.Internal

type mode = Synchronizer | Adaptive

let mode_name = function Synchronizer -> "synchronizer" | Adaptive -> "adaptive"

let mode_of_string s =
  match String.lowercase_ascii s with
  | "synchronizer" | "sync" | "alpha" -> Synchronizer
  | "adaptive" | "bounded" | "bounded-delay" -> Adaptive
  | s ->
      invalid_arg
        (Printf.sprintf "--async: unknown mode %S (expected synchronizer|adaptive)" s)

type t = {
  mode : mode;
  timeout_base : float;  (* initial EWMA latency estimate *)
  ewma_alpha : float;
  timeout_factor : float;
  backoff : float;
  jitter : float;
  max_retransmits : int;
  control_trace : Trace.t option;
  mutable skew_reported : bool;
  mutable s_phases : int;
  mutable s_makespan : float;
  mutable s_control_msgs : int;
  mutable s_acks : int;
  mutable s_barriers : int;
  mutable s_timeouts : int;
  mutable s_retransmits : int;
  mutable s_gave_up : int;
  mutable s_late : int;
}

type stats = {
  phases : int;
  makespan : float;
  control_msgs : int;
  acks : int;
  barriers : int;
  timeouts : int;
  retransmits : int;
  gave_up : int;
  late : int;
}

let make ?(mode = Synchronizer) ?(timeout_base = 3.0) ?(ewma_alpha = 0.2)
    ?(timeout_factor = 2.0) ?(backoff = 2.0) ?(jitter = 0.5)
    ?(max_retransmits = 2) ?control_trace () =
  if timeout_base <= 0. then invalid_arg "Async.make: timeout_base must be positive";
  if not (ewma_alpha > 0. && ewma_alpha <= 1.) then
    invalid_arg "Async.make: ewma_alpha must lie in (0, 1]";
  if timeout_factor < 1. then invalid_arg "Async.make: timeout_factor must be >= 1";
  if backoff < 1. then invalid_arg "Async.make: backoff must be >= 1";
  if jitter < 0. then invalid_arg "Async.make: negative jitter";
  if max_retransmits < 0 then invalid_arg "Async.make: negative max_retransmits";
  {
    mode;
    timeout_base;
    ewma_alpha;
    timeout_factor;
    backoff;
    jitter;
    max_retransmits;
    control_trace;
    skew_reported = false;
    s_phases = 0;
    s_makespan = 0.;
    s_control_msgs = 0;
    s_acks = 0;
    s_barriers = 0;
    s_timeouts = 0;
    s_retransmits = 0;
    s_gave_up = 0;
    s_late = 0;
  }

let mode cfg = cfg.mode

let stats cfg =
  {
    phases = cfg.s_phases;
    makespan = cfg.s_makespan;
    control_msgs = cfg.s_control_msgs;
    acks = cfg.s_acks;
    barriers = cfg.s_barriers;
    timeouts = cfg.s_timeouts;
    retransmits = cfg.s_retransmits;
    gave_up = cfg.s_gave_up;
    late = cfg.s_late;
  }

let reset_stats cfg =
  cfg.s_phases <- 0;
  cfg.s_makespan <- 0.;
  cfg.s_control_msgs <- 0;
  cfg.s_acks <- 0;
  cfg.s_barriers <- 0;
  cfg.s_timeouts <- 0;
  cfg.s_retransmits <- 0;
  cfg.s_gave_up <- 0;
  cfg.s_late <- 0

(* Event kinds.  [r] is always the phase-relative round of the protocol
   step the event belongs to; delivery slots are phase-relative too. *)
type 'm event =
  | Deliver of { slot : int; sent : int; src : int; dst : int; copy : int; msg : 'm }
  | Ack_arrive of { sender : int; r : int; from_ : int; copy : int }
  | Safe_arrive of { node : int; r : int }
  | Timeout_fire of { node : int; pos : int; r : int; attempt : int }
  | Nack_arrive of { sender : int; from_ : int; r : int; attempt : int }

(* Binary min-heap keyed by (virtual time, insertion sequence): the
   sequence number makes simultaneous events pop in creation order, so
   the simulation is deterministic. *)
type 'm heap = {
  mutable arr : (float * int * 'm event) array;
  mutable len : int;
  mutable seq : int;
}

let heap_make () = { arr = [||]; len = 0; seq = 0 }
let heap_less (t1, s1, _) (t2, s2, _) = t1 < t2 || (t1 = t2 && s1 < s2)

let heap_push h time ev =
  let it = (time, h.seq, ev) in
  h.seq <- h.seq + 1;
  if h.len = Array.length h.arr then begin
    let a = Array.make (max 16 (2 * h.len)) it in
    Array.blit h.arr 0 a 0 h.len;
    h.arr <- a
  end;
  h.arr.(h.len) <- it;
  h.len <- h.len + 1;
  let i = ref (h.len - 1) in
  while !i > 0 && heap_less h.arr.(!i) h.arr.((!i - 1) / 2) do
    let p = (!i - 1) / 2 in
    let tmp = h.arr.(p) in
    h.arr.(p) <- h.arr.(!i);
    h.arr.(!i) <- tmp;
    i := p
  done

let heap_pop h =
  if h.len = 0 then None
  else begin
    let top = h.arr.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.arr.(0) <- h.arr.(h.len);
      let i = ref 0 in
      let stop = ref false in
      while not !stop do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < h.len && heap_less h.arr.(l) h.arr.(!m) then m := l;
        if r < h.len && heap_less h.arr.(r) h.arr.(!m) then m := r;
        if !m = !i then stop := true
        else begin
          let tmp = h.arr.(!m) in
          h.arr.(!m) <- h.arr.(!i);
          h.arr.(!i) <- tmp;
          i := !m
        end
      done
    end;
    Some top
  end

let run_broadcast cfg net ~rounds ?size ?corrupt ?digest ?ckpt ?carry
    ?(label = "broadcast") ?trace ~init ~emit ~merge () =
  if rounds < 0 then invalid_arg "Async.run_broadcast: negative rounds";
  let g = Network.graph net in
  let n = Graph.n g in
  let fp = Network.faults net in
  let tr = I.sink net trace in
  let ctl = cfg.control_trace in
  let metrics = Metrics.enabled () in
  let bits0 = Network.bits net and msgs0 = Network.messages net in
  let base = Network.clock net in
  (match tr with
  | Some s -> Trace.emit s (Trace.Phase_start { label; clock = base })
  | None -> ());
  let crash_at = I.crash_at net and recover_at = I.recover_at net in
  let alive_at abs v = Linksem.alive ~crash_at ~recover_at ~abs v in
  let nbrs = Array.init n (fun v -> Graph.neighbors g v) in
  let pos_tbl =
    Array.init n (fun v ->
        let h = Hashtbl.create ((2 * Array.length nbrs.(v)) + 1) in
        Array.iteri (fun i u -> Hashtbl.replace h u i) nbrs.(v);
        h)
  in
  let pos_of v u = Hashtbl.find pos_tbl.(v) u in
  let skew = Array.init n (fun v -> Faults.node_skew fp ~node:v) in
  (match ctl with
  | Some s when not cfg.skew_reported ->
      cfg.skew_reported <- true;
      for v = 0 to n - 1 do
        Trace.emit s
          (Trace.Skew { node = v; permille = int_of_float ((skew.(v) *. 1000.) +. 0.5) })
      done
  | _ -> ());
  let states = Array.init n init in
  let catchup = ref 0 in
  let q = heap_make () in
  (* Per-node, per-slot inbox halves, kept with their (sent, src, copy)
     ordering keys and sorted at close per the Linksem slot contract. *)
  let parked = Array.init n (fun _ -> Array.make rounds []) in
  let fresh = Array.init n (fun _ -> Array.make rounds []) in
  let closed = Array.init n (fun _ -> Array.make rounds false) in
  let round_ = Array.make n 0 in
  let entered = Array.init n (fun _ -> Array.make rounds 0.) in
  let out_msg = Array.init n (fun _ -> Array.make rounds None) in
  (* Synchronizer bookkeeping. *)
  let outstanding = Array.init n (fun _ -> Array.make rounds 0) in
  let self_safe = Array.init n (fun _ -> Array.make rounds false) in
  let safe_cnt = Array.init n (fun _ -> Array.make rounds 0) in
  (* Adaptive bookkeeping (per neighbor position; gave_up is per current
     round, reset at round entry). *)
  let deg v = Array.length nbrs.(v) in
  let ewma = Array.init n (fun v -> Array.make (deg v) cfg.timeout_base) in
  (* received.(v).(pos).(r): v has seen neighbor pos's round-r message.
     Resolution is strictly per round — a neighbor's round-(r+1) traffic
     must NOT resolve a dropped round-r copy, or the loss would be masked
     instead of detected, and the record would silently skip this node's
     next emission. *)
  let received = Array.init n (fun v -> Array.init (deg v) (fun _ -> Array.make rounds false)) in
  let gave_up = Array.init n (fun v -> Array.make (deg v) false) in
  (* Payload fault events are buffered per round and flushed at phase end
     in the synchronous emission order; adaptive retransmissions get
     their own buffer, emitted after the round's regular fates. *)
  let fate_log = Array.make rounds [] in
  let retrans_log = Array.make rounds [] in
  let bump_control k =
    cfg.s_control_msgs <- cfg.s_control_msgs + k;
    if metrics then Metrics.record_control k
  in
  (* Carry-in: previously parked copies of this phase's message type land
     directly in their slot's parked half (the ordering keys travel with
     them; Linksem.compare_parked fixes the merge order at close). *)
  (match carry with
  | None -> ()
  | Some c ->
      let mine, rest =
        List.partition
          (fun (p : I.packet) -> Option.is_some (I.project c p.I.payload))
          (I.pending net)
      in
      let future = ref rest in
      List.iter
        (fun (p : I.packet) ->
          let slot = max 0 (p.I.arrive - base) in
          if slot < rounds then
            match I.project c p.I.payload with
            | Some m ->
                parked.(p.I.p_dst).(slot) <-
                  ((p.I.sent, p.I.p_src, p.I.p_copy), m) :: parked.(p.I.p_dst).(slot)
            | None -> assert false
          else future := p :: !future)
        mine;
      I.set_pending net !future);
  let alive_nbr_count v r =
    let abs = base + r in
    Array.fold_left (fun acc u -> if alive_at abs u then acc + 1 else acc) 0 nbrs.(v)
  in
  let resolved v pos r =
    let abs = base + r in
    gave_up.(v).(pos)
    || received.(v).(pos).(r)
    || not (alive_at abs nbrs.(v).(pos))
  in
  let timeout_delay v pos ~abs ~u ~attempt =
    (cfg.timeout_factor *. ewma.(v).(pos) *. (cfg.backoff ** float_of_int attempt))
    +. (cfg.jitter *. Faults.timeout_jitter fp ~round:abs ~src:v ~dst:u ~attempt)
  in
  (* Self-safety: every round-r copy this node scheduled has been acked.
     Alive nodes then broadcast Safe(r); a down node's flag still flips
     (it scheduled nothing) but it stays silent, and nobody waits for it
     — barriers only require safes from neighbors alive at round r. *)
  let maybe_self_safe v r tcur =
    if (not self_safe.(v).(r)) && outstanding.(v).(r) = 0 then begin
      self_safe.(v).(r) <- true;
      let abs = base + r in
      if alive_at abs v then
        Array.iter
          (fun u ->
            bump_control 1;
            heap_push q
              (tcur +. Faults.control_latency fp ~round:abs ~src:v ~dst:u ~kind:8)
              (Safe_arrive { node = u; r }))
          nbrs.(v)
    end
  in
  let rec start_round v r tcur =
    round_.(v) <- r;
    if r < rounds then begin
      entered.(v).(r) <- tcur;
      let abs = base + r in
      (* Crash bookkeeping, state effects only — the matching trace events
         replay at flush time in the synchronous order. *)
      if crash_at.(v) = abs then (
        match ckpt with
        | Some c -> I.set_ckpt net v (Some (I.inject c states.(v)))
        | None -> ());
      if recover_at.(v) = abs then begin
        (match ckpt with
        | Some c -> (
            match I.ckpt net v with
            | Some u -> (
                match I.project c u with
                | Some st ->
                    states.(v) <- st;
                    I.set_ckpt net v None
                | None -> ())
            | None -> ())
        | None -> ());
        catchup := max !catchup (abs - crash_at.(v))
      end;
      let alive_v = alive_at abs v in
      if alive_v then begin
        let msg = emit v states.(v) in
        out_msg.(v).(r) <- Some msg;
        Array.iteri
          (fun pos u ->
            let f = Linksem.fate fp ~round:abs ~src:v ~dst:u ?corrupt ?digest msg in
            fate_log.(r) <- (v, pos, u, f) :: fate_log.(r);
            List.iter
              (fun (c : _ Linksem.copy) ->
                (match size with
                | Some sz -> I.add_bits net (sz c.Linksem.c_msg)
                | None -> ());
                I.add_msgs net 1;
                if c.Linksem.c_quarantined then I.add_quarantined net 1
                else begin
                  let slot = r + c.Linksem.c_delay in
                  if slot < rounds then begin
                    if cfg.mode = Synchronizer then
                      outstanding.(v).(r) <- outstanding.(v).(r) + 1;
                    let lat =
                      Faults.link_latency fp ~round:abs ~src:v ~dst:u
                        ~copy:c.Linksem.c_index
                    in
                    if metrics then Metrics.record_latency lat;
                    heap_push q (tcur +. lat)
                      (Deliver
                         {
                           slot;
                           sent = abs;
                           src = v;
                           dst = u;
                           copy = c.Linksem.c_index;
                           msg = c.Linksem.c_msg;
                         })
                  end
                  else
                    match carry with
                    | Some cr ->
                        I.set_pending net
                          ({
                             I.sent = abs;
                             arrive = base + slot;
                             p_src = v;
                             p_dst = u;
                             p_copy = c.Linksem.c_index;
                             payload = I.inject cr c.Linksem.c_msg;
                           }
                          :: I.pending net)
                    | None ->
                        I.add_dead_letters net 1;
                        if metrics then Metrics.record_dead_letters 1
                end)
              f.Linksem.f_copies)
          nbrs.(v)
      end;
      match cfg.mode with
      | Synchronizer ->
          maybe_self_safe v r tcur;
          check_barrier v r tcur
      | Adaptive ->
          if alive_v then begin
            Array.iteri
              (fun pos u ->
                gave_up.(v).(pos) <- false;
                if not (resolved v pos r) then
                  heap_push q
                    (tcur +. timeout_delay v pos ~abs ~u ~attempt:0)
                    (Timeout_fire { node = v; pos; r; attempt = 0 }))
              nbrs.(v);
            check_close v r tcur
          end
          else
            (* A dead node does no protocol work: its slot closes at once
               and anything addressed to it becomes a (late) dead letter. *)
            close_slot v r tcur
    end
  and close_slot v r tcur =
    if not closed.(v).(r) then begin
      closed.(v).(r) <- true;
      cfg.s_barriers <- cfg.s_barriers + 1;
      if metrics then Metrics.record_barrier ();
      let abs = base + r in
      (match ctl with
      | Some s -> Trace.emit s (Trace.Barrier { node = v; round = abs })
      | None -> ());
      let pk = List.sort (fun (a, _) (b, _) -> Linksem.compare_parked a b) parked.(v).(r) in
      let fr = List.sort (fun (a, _) (b, _) -> Linksem.compare_fresh a b) fresh.(v).(r) in
      let inbox = List.map snd pk @ List.map snd fr in
      let k = List.length inbox in
      if alive_at abs v then begin
        I.add_delivered net k;
        states.(v) <- merge v states.(v) inbox
      end
      else if k > 0 then begin
        I.add_dead_letters net k;
        if metrics then Metrics.record_dead_letters k
      end;
      parked.(v).(r) <- [];
      fresh.(v).(r) <- [];
      (* Local processing cost: one round of this node's (skewed) clock. *)
      start_round v (r + 1) (tcur +. skew.(v))
    end
  and check_barrier v r tcur =
    if
      cfg.mode = Synchronizer && r < rounds && round_.(v) = r
      && (not closed.(v).(r))
      && self_safe.(v).(r)
      && safe_cnt.(v).(r) >= alive_nbr_count v r
    then close_slot v r tcur
  and check_close v r tcur =
    if cfg.mode = Adaptive && r < rounds && round_.(v) = r && not closed.(v).(r)
    then begin
      let all = ref true in
      for pos = 0 to deg v - 1 do
        if not (resolved v pos r) then all := false
      done;
      if !all then close_slot v r tcur
    end
  in
  for v = 0 to n - 1 do
    start_round v 0 0.
  done;
  let tmax = ref 0. in
  let running = ref true in
  while !running do
    match heap_pop q with
    | None -> running := false
    | Some (t, _, ev) -> (
        if t > !tmax then tmax := t;
        match ev with
        | Deliver { slot; sent; src; dst; copy; msg } -> (
            (match cfg.mode with
            | Synchronizer ->
                (* Link-layer ack, unconditional: it acknowledges the copy,
                   not the receiving node's health. *)
                bump_control 1;
                heap_push q
                  (t +. Faults.control_latency fp ~round:sent ~src:dst ~dst:src ~kind:copy)
                  (Ack_arrive { sender = src; r = sent - base; from_ = dst; copy })
            | Adaptive ->
                let pos = pos_of dst src in
                let sr = sent - base in
                if sr >= 0 && sr < rounds then begin
                  received.(dst).(pos).(sr) <- true;
                  if sr <= round_.(dst) then begin
                    let sample = t -. entered.(dst).(sr) in
                    ewma.(dst).(pos) <-
                      (cfg.ewma_alpha *. sample)
                      +. ((1. -. cfg.ewma_alpha) *. ewma.(dst).(pos))
                  end
                end);
            if closed.(dst).(slot) then begin
              (* Late: the slot already closed (adaptive give-up or a dead
                 receiver).  Honest loss — never a wrong merge. *)
              I.add_dead_letters net 1;
              cfg.s_late <- cfg.s_late + 1;
              if metrics then begin
                Metrics.record_dead_letters 1;
                Metrics.record_late_letters 1
              end
            end
            else begin
              fresh.(dst).(slot) <- ((sent, src, copy), msg) :: fresh.(dst).(slot);
              if cfg.mode = Adaptive then check_close dst round_.(dst) t
            end)
        | Ack_arrive { sender; r; from_; copy } ->
            cfg.s_acks <- cfg.s_acks + 1;
            if metrics then Metrics.record_ack ();
            (match ctl with
            | Some s ->
                Trace.emit s (Trace.Ack { round = base + r; src = sender; dst = from_; copy })
            | None -> ());
            outstanding.(sender).(r) <- outstanding.(sender).(r) - 1;
            maybe_self_safe sender r t;
            check_barrier sender r t
        | Safe_arrive { node; r } ->
            safe_cnt.(node).(r) <- safe_cnt.(node).(r) + 1;
            check_barrier node r t
        | Timeout_fire { node = v; pos; r; attempt } ->
            if round_.(v) = r && (not closed.(v).(r)) && not (resolved v pos r)
            then begin
              if attempt >= cfg.max_retransmits then begin
                gave_up.(v).(pos) <- true;
                cfg.s_gave_up <- cfg.s_gave_up + 1;
                check_close v r t
              end
              else begin
                let u = nbrs.(v).(pos) in
                let abs = base + r in
                cfg.s_timeouts <- cfg.s_timeouts + 1;
                if metrics then Metrics.record_timeout ();
                (match ctl with
                | Some s ->
                    Trace.emit s (Trace.Timeout { node = v; nbr = u; round = abs; attempt })
                | None -> ());
                bump_control 1;
                heap_push q
                  (t +. Faults.control_latency fp ~round:abs ~src:v ~dst:u ~kind:(16 + attempt))
                  (Nack_arrive { sender = u; from_ = v; r; attempt });
                heap_push q
                  (t +. timeout_delay v pos ~abs ~u ~attempt:(attempt + 1))
                  (Timeout_fire { node = v; pos; r; attempt = attempt + 1 })
              end
            end
        | Nack_arrive { sender = u; from_ = v; r; attempt } -> (
            (* Retransmit request, honored when the sender actually emitted
               in round r (it was alive then) and the requester has not
               already moved on.  The retransmission is a fresh wire
               transmission: billed like one, subject to its own
               drop/partition verdict, and due in the original slot. *)
            if round_.(v) = r && not closed.(v).(r) then
              match out_msg.(u).(r) with
              | Some msg ->
                  let abs = base + r in
                  if not (Faults.retransmit_dropped fp ~round:abs ~src:u ~dst:v ~attempt)
                  then begin
                    (match size with
                    | Some sz -> I.add_bits net (sz msg)
                    | None -> ());
                    I.add_msgs net 1;
                    cfg.s_retransmits <- cfg.s_retransmits + 1;
                    retrans_log.(r) <- (u, v, attempt) :: retrans_log.(r);
                    let lat =
                      Faults.link_latency fp ~round:abs ~src:u ~dst:v ~copy:(16 + attempt)
                    in
                    if metrics then Metrics.record_latency lat;
                    heap_push q (t +. lat)
                      (Deliver
                         { slot = r; sent = abs; src = u; dst = v; copy = 16 + attempt; msg })
                  end
              | None -> ()))
  done;
  for v = 0 to n - 1 do
    if round_.(v) < rounds then
      failwith "Ls_local.Async: executor deadlocked (internal invariant broken)"
  done;
  (* Flush: replay the phase's payload-side events in the synchronous
     executor's order.  State transitions owned by the trace pass in the
     synchronous code (partition_active, crash_seen) are applied here. *)
  for r = 0 to rounds - 1 do
    let abs = base + r in
    if fp.Faults.partitions <> [] then begin
      match (Faults.partition_parts fp ~round:abs, I.partition_active net) with
      | Some (idx, parts), active when active <> Some idx ->
          if active <> None then begin
            (match tr with
            | Some s -> Trace.emit s (Trace.Heal { round = abs })
            | None -> ());
            if metrics then Metrics.record_heal ()
          end;
          I.set_partition_active net (Some idx);
          (match tr with
          | Some s -> Trace.emit s (Trace.Partition { round = abs; parts })
          | None -> ());
          if metrics then Metrics.record_partition ()
      | None, Some _ ->
          I.set_partition_active net None;
          (match tr with
          | Some s -> Trace.emit s (Trace.Heal { round = abs })
          | None -> ());
          if metrics then Metrics.record_heal ()
      | _ -> ()
    end;
    for v = 0 to n - 1 do
      if crash_at.(v) = abs then begin
        (match tr with
        | Some s -> Trace.emit s (Trace.Checkpoint { node = v; round = abs })
        | None -> ());
        if metrics then Metrics.record_checkpoint ()
      end;
      if (not (I.crash_seen net v)) && crash_at.(v) <= abs then begin
        I.set_crash_seen net v;
        (match tr with
        | Some s -> Trace.emit s (Trace.Crash { node = v; round = crash_at.(v) })
        | None -> ());
        if metrics then Metrics.record_crash ()
      end;
      if recover_at.(v) = abs then begin
        let missed = abs - crash_at.(v) in
        (match tr with
        | Some s -> Trace.emit s (Trace.Restore { node = v; round = abs; missed })
        | None -> ());
        if metrics then Metrics.record_restore ()
      end
    done;
    List.iter
      (fun (v, _pos, u, f) -> Linksem.record ?trace:tr ~metrics ~round:abs ~src:v ~dst:u f)
      (List.sort
         (fun (v1, p1, _, _) (v2, p2, _, _) -> compare (v1, p1) (v2, p2))
         fate_log.(r));
    List.iter
      (fun (src, dst, attempt) ->
        (match tr with
        | Some s -> Trace.emit s (Trace.Retransmit { round = abs; src; dst; attempt })
        | None -> ());
        if metrics then Metrics.record_retransmit ())
      (List.rev retrans_log.(r))
  done;
  (* Executor-agnostic round charging: every node completes exactly
     [rounds] barriers, so the charge is the max over nodes of completed
     barriers — [rounds] — plus catch-up, identical to the synchronous
     dispatcher.  Virtual time never enters the rounds meter. *)
  I.advance_clock net rounds;
  Network.charge net (rounds + !catchup);
  (match tr with
  | Some s ->
      Trace.emit s
        (Trace.Phase_end
           {
             label;
             clock = Network.clock net;
             rounds = rounds + !catchup;
             bits = Network.bits net - bits0;
             messages = Network.messages net - msgs0;
           })
  | None -> ());
  if metrics then
    Metrics.record_phase ~rounds:(rounds + !catchup)
      ~bits:(Network.bits net - bits0)
      ~messages:(Network.messages net - msgs0);
  cfg.s_phases <- cfg.s_phases + 1;
  cfg.s_makespan <- cfg.s_makespan +. !tmax;
  states

let flood_views cfg ?trace net ~radius =
  I.flood_views_via net ~radius
    ~run:(fun ~rounds ~size ~corrupt ~digest ~ckpt ~carry ~label ~init ~emit ~merge ->
      run_broadcast cfg net ~rounds ~size ~corrupt ~digest ~ckpt ~carry ~label
        ?trace ~init ~emit ~merge ())
