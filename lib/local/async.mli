(** The event-driven executor: the same per-node programs as
    {!Network.run_broadcast}, run over a priority queue of timestamped
    message events instead of a global round loop.

    Virtual time is simulated, and deterministically so: link latencies,
    clock skew, control-plane latencies and timeout jitter are all pure
    draws from the network's {!Faults} plan, and heap ties break on
    insertion order — the whole execution is a pure function of the
    seeds, whatever the timing law.  Crucially, the fault plan's delay
    verdicts fix {e which} logical slot a copy lands in exactly as in the
    synchronous executor; latency only decides the order in which events
    are processed.

    {b Synchronizer mode} implements an alpha-synchronizer: per-copy
    link-layer acks, per-round Safe broadcasts, and a local round barrier
    that closes a node's inbox slot only when every neighbor alive at
    that round has declared it safe.  Ack causality guarantees no copy
    due in a slot arrives after its barrier, so node states, meters and
    the payload trace are {e bit-identical} to the synchronous runtime
    under arbitrary fair delays and skew.

    {b Adaptive mode} drops the barriers and instead arms per-neighbor
    timeouts from an EWMA latency estimate, with jittered exponential
    backoff and a capped number of retransmit requests.  A timeout that
    fires too early costs only completeness (the node proceeds with a
    subset inbox, detected by {!Network.view_is_complete} and surfaced
    through {!Resilient} as a transient failure) — never soundness:
    merges only ever see truthful payloads, so Las Vegas outputs stay
    exact.  Copies arriving after their slot closed become dead letters
    (the [late] statistic), keeping the conservation identity
    [messages = delivered + pending + quarantined + dead] executor-
    independent.

    Control-plane traffic (acks, safes, nacks) is metered separately —
    see {!stats} and the [control_msgs] metric — and its trace events go
    only to the dedicated control sink, so the payload trace stream
    cannot be perturbed by the protocol machinery. *)

type mode =
  | Synchronizer  (** Alpha-synchronizer: bit-identical to the sync runtime. *)
  | Adaptive  (** EWMA timeouts + retransmits: Las Vegas-sound, may degrade. *)

val mode_name : mode -> string

val mode_of_string : string -> mode
(** Accepts "synchronizer"|"sync"|"alpha" and "adaptive"|"bounded"|
    "bounded-delay" (case-insensitive); raises [Invalid_argument]
    otherwise. *)

type t
(** An executor configuration with accumulated statistics.  Reusable
    across phases and networks; per-node clock skews are reported to the
    control sink once per configuration. *)

type stats = {
  phases : int;  (** Broadcast phases executed. *)
  makespan : float;  (** Total virtual time across phases. *)
  control_msgs : int;  (** Acks + safes + nacks sent (not in [messages]). *)
  acks : int;  (** Link-layer acks processed (synchronizer mode). *)
  barriers : int;  (** Round barriers / slot closes, over all nodes. *)
  timeouts : int;  (** Timeouts that fired and requested a retransmit. *)
  retransmits : int;  (** Retransmissions that hit the wire. *)
  gave_up : int;  (** (node, neighbor, round) resolutions by give-up. *)
  late : int;  (** Copies arriving after their slot closed (dead letters). *)
}

val make :
  ?mode:mode ->
  ?timeout_base:float ->
  ?ewma_alpha:float ->
  ?timeout_factor:float ->
  ?backoff:float ->
  ?jitter:float ->
  ?max_retransmits:int ->
  ?control_trace:Ls_obs.Trace.t ->
  unit ->
  t
(** Defaults: synchronizer mode, [timeout_base = 3.0] (the initial EWMA
    latency estimate, in virtual time units where a fault-free link
    averages 1.0), [ewma_alpha = 0.2], [timeout_factor = 2.0],
    [backoff = 2.0], [jitter = 0.5], [max_retransmits = 2], no control
    sink.  Raises [Invalid_argument] on out-of-range values. *)

val mode : t -> mode
val stats : t -> stats
val reset_stats : t -> unit

val run_broadcast :
  t ->
  'input Network.t ->
  rounds:int ->
  ?size:('m -> int) ->
  ?corrupt:(round:int -> src:int -> dst:int -> 'm -> 'm) ->
  ?digest:('m -> int) ->
  ?ckpt:'s Network.carrier ->
  ?carry:'m Network.carrier ->
  ?label:string ->
  ?trace:Ls_obs.Trace.t ->
  init:(int -> 's) ->
  emit:(int -> 's -> 'm) ->
  merge:(int -> 's -> 'm list -> 's) ->
  unit ->
  's array
(** Drop-in equivalent of {!Network.run_broadcast} on the event-driven
    engine: same fault pipeline (via {!Linksem}), same carry/checkpoint
    semantics, same metering and phase trace bookends, and the same
    round charge ([rounds] plus catch-up — every node completes exactly
    [rounds] barriers, so the max over nodes of completed barriers is
    the phase length; virtual time never enters the rounds meter).
    In synchronizer mode the returned states are bit-identical to the
    synchronous executor's.

    Determinism requires what the synchronous executor also requires of
    callbacks: [init]/[emit]/[merge] must touch only per-node state (or
    per-node RNG streams) — a callback reading shared mutable state
    would observe executor-dependent interleavings. *)

val flood_views :
  t -> ?trace:Ls_obs.Trace.t -> 'i Network.t -> radius:int -> 'i Network.view array
(** {!Network.flood_views} over this executor: the flood
    record/digest/corrupt/BFS pipeline runs unchanged, only the
    message-passing engine differs.  In synchronizer mode the views are
    bit-identical to the synchronous flood's; in adaptive mode they may
    be incomplete (give-ups), which {!Network.view_is_complete}
    detects. *)
