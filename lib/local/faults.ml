(* Deterministic, seed-derived fault plans for the LOCAL runtime.

   Every verdict (drop / duplicate / delay / corrupt a message, crash a
   node) is a pure function of (plan seed, coordinates) — never of a
   stream position — so a fault pattern is reproducible from its seed
   alone and independent of the iteration order, the domain count, and
   how many unrelated decisions were made before it. *)

let gamma = 0x9E3779B97F4A7C15L

let mix = Ls_rng.Splitmix.mix64

type t = {
  seed : int64;
  drop : float;
  duplicate : float;
  delay : float;
  max_delay : int;
  crash : float;
  crash_horizon : int;
  corrupt : float;
}

let none =
  {
    seed = 0L;
    drop = 0.;
    duplicate = 0.;
    delay = 0.;
    max_delay = 1;
    crash = 0.;
    crash_horizon = 64;
    corrupt = 0.;
  }

let is_none t =
  t.drop = 0. && t.duplicate = 0. && t.delay = 0. && t.crash = 0.
  && t.corrupt = 0.

let check_rate name x =
  if not (x >= 0. && x <= 1.) then
    invalid_arg
      (Printf.sprintf "Faults.make: %s must be a probability in [0,1], got %g"
         name x)

let make ?(seed = 1L) ?(drop = 0.) ?(duplicate = 0.) ?(delay = 0.)
    ?(max_delay = 1) ?(crash = 0.) ?(crash_horizon = 64) ?(corrupt = 0.) () =
  check_rate "drop (--fault-rate)" drop;
  check_rate "duplicate" duplicate;
  check_rate "delay" delay;
  check_rate "crash (--crash-rate)" crash;
  check_rate "corrupt" corrupt;
  if max_delay < 1 then
    invalid_arg
      (Printf.sprintf "Faults.make: max_delay must be >= 1, got %d" max_delay);
  if crash_horizon < 1 then
    invalid_arg
      (Printf.sprintf "Faults.make: crash_horizon must be >= 1, got %d"
         crash_horizon);
  { seed; drop; duplicate; delay; max_delay; crash; crash_horizon; corrupt }

(* Coordinate-indexed uniform variate: chain the bijective finalizer over
   the coordinates, each offset by the SplitMix golden gamma so that
   nearby coordinates land in distant states. *)
let u01 t ~salt ~round ~a ~b =
  let feed h x = mix (Int64.add h (Int64.mul (Int64.of_int x) gamma)) in
  let h = mix (Int64.add t.seed (Int64.mul (Int64.of_int salt) gamma)) in
  let h = feed (feed (feed h round) a) b in
  Int64.to_float (Int64.shift_right_logical h 11) *. 0x1.0p-53

(* Salts keep the verdict families independent of each other. *)
let salt_drop = 1
let salt_duplicate = 2
let salt_delay_coin = 3
let salt_delay_len = 4
let salt_crash_coin = 5
let salt_crash_round = 6
let salt_corrupt = 7

let dropped t ~round ~src ~dst =
  t.drop > 0. && u01 t ~salt:salt_drop ~round ~a:src ~b:dst < t.drop

let copies t ~round ~src ~dst =
  if dropped t ~round ~src ~dst then 0
  else if
    t.duplicate > 0.
    && u01 t ~salt:salt_duplicate ~round ~a:src ~b:dst < t.duplicate
  then 2
  else 1

let delay_of t ~round ~src ~dst ~copy =
  if t.delay > 0. && u01 t ~salt:salt_delay_coin ~round ~a:src ~b:(dst + copy) < t.delay
  then
    1
    + int_of_float
        (u01 t ~salt:salt_delay_len ~round ~a:src ~b:(dst + copy)
        *. float_of_int t.max_delay)
  else 0

(* The [dst + copy - 1] offset gives each duplicate copy its own verdict
   while keeping copy 1 at the historical [~b:dst] coordinate, so every
   single-copy verdict is unchanged. *)
let corrupted t ~round ~src ~dst ~copy =
  t.corrupt > 0.
  && u01 t ~salt:salt_corrupt ~round ~a:src ~b:(dst + copy - 1) < t.corrupt

let crash_round t ~node =
  if t.crash > 0. && u01 t ~salt:salt_crash_coin ~round:0 ~a:node ~b:0 < t.crash
  then
    Some
      (int_of_float
         (u01 t ~salt:salt_crash_round ~round:0 ~a:node ~b:0
         *. float_of_int t.crash_horizon))
  else None

let describe t =
  if is_none t then "no faults"
  else
    Printf.sprintf
      "faults(seed=%Ld drop=%g dup=%g delay=%g(max %d) crash=%g(by round %d) \
       corrupt=%g)"
      t.seed t.drop t.duplicate t.delay t.max_delay t.crash t.crash_horizon
      t.corrupt
