(* Deterministic, seed-derived fault plans for the LOCAL runtime.

   Every verdict (drop / duplicate / delay / corrupt a message, crash a
   node, cut an edge during a partition) is a pure function of (plan seed,
   coordinates) — never of a stream position — so a fault pattern is
   reproducible from its seed alone and independent of the iteration
   order, the domain count, and how many unrelated decisions were made
   before it.  Schedules (partition intervals, fault bursts, crash
   recovery) obey the same rule: membership of a node in a partition side
   is a hash of (seed, interval index, node), never of execution state. *)

let gamma = 0x9E3779B97F4A7C15L

let mix = Ls_rng.Splitmix.mix64

type partition = {
  p_from : int;  (* first absolute round the cut is in force *)
  p_until : int;  (* first absolute round after the heal *)
  p_parts : int;  (* number of components the graph is cut into *)
}

type burst = {
  b_from : int;
  b_until : int;
  b_drop : float;  (* elevated drop rate while the burst is active *)
}

(* Latency law for the asynchronous executor's virtual link delays.  All
   three are normalized to mean 1.0 virtual time unit, so switching laws
   changes the SHAPE of delay tails, never the average load. *)
type law = Uniform | Exponential | Heavy

type t = {
  seed : int64;
  drop : float;
  duplicate : float;
  delay : float;
  max_delay : int;
  crash : float;
  crash_horizon : int;
  recovery : float;
  recovery_delay : int;
  corrupt : float;
  partitions : partition list;
  bursts : burst list;
  law : law;  (* virtual link-latency law (async executor only) *)
  skew : float;  (* max extra per-node clock-rate factor, >= 0 *)
  reorder : float;  (* probability of a latency spike forcing reordering *)
}

let none =
  {
    seed = 0L;
    drop = 0.;
    duplicate = 0.;
    delay = 0.;
    max_delay = 1;
    crash = 0.;
    crash_horizon = 64;
    recovery = 0.;
    recovery_delay = 4;
    corrupt = 0.;
    partitions = [];
    bursts = [];
    law = Uniform;
    skew = 0.;
    reorder = 0.;
  }

(* Timing knobs (law, skew, reorder) deliberately do NOT make a plan
   faulty: they shape the asynchronous executor's virtual time, never a
   verdict, so a timing-only plan still runs the pristine path. *)
let is_none t =
  t.drop = 0. && t.duplicate = 0. && t.delay = 0. && t.crash = 0.
  && t.corrupt = 0. && t.partitions = [] && t.bursts = []

let check_rate name x =
  if not (x >= 0. && x <= 1.) then
    invalid_arg
      (Printf.sprintf "Faults.make: %s must be a probability in [0,1], got %g"
         name x)

let law_name = function
  | Uniform -> "uniform"
  | Exponential -> "exp"
  | Heavy -> "heavy"

let law_of_string = function
  | "uniform" -> Uniform
  | "exp" | "exponential" -> Exponential
  | "heavy" | "pareto" -> Heavy
  | other ->
      invalid_arg
        (Printf.sprintf
           "Faults.law_of_string: unknown latency law %S (--delay-law takes \
            uniform|exp|heavy)"
           other)

let make ?(seed = 1L) ?(drop = 0.) ?(duplicate = 0.) ?(delay = 0.)
    ?(max_delay = 1) ?(crash = 0.) ?(crash_horizon = 64) ?(recovery = 0.)
    ?(recovery_delay = 4) ?(corrupt = 0.) ?(partitions = []) ?(bursts = [])
    ?(law = Uniform) ?(skew = 0.) ?(reorder = 0.) () =
  check_rate "drop (--fault-rate)" drop;
  check_rate "duplicate" duplicate;
  check_rate "delay" delay;
  check_rate "crash (--crash-rate)" crash;
  check_rate "recovery" recovery;
  check_rate "corrupt (--corrupt-rate)" corrupt;
  check_rate "reorder" reorder;
  if not (skew >= 0.) then
    invalid_arg
      (Printf.sprintf "Faults.make: skew (--skew) must be >= 0, got %g" skew);
  if max_delay < 1 then
    invalid_arg
      (Printf.sprintf "Faults.make: max_delay (--max-delay) must be >= 1, got %d"
         max_delay);
  if crash_horizon < 1 then
    invalid_arg
      (Printf.sprintf "Faults.make: crash_horizon must be >= 1, got %d"
         crash_horizon);
  if recovery_delay < 1 then
    invalid_arg
      (Printf.sprintf "Faults.make: recovery_delay must be >= 1, got %d"
         recovery_delay);
  let partitions =
    List.map
      (fun (a, b, parts) ->
        if a < 0 || b <= a then
          invalid_arg
            (Printf.sprintf
               "Faults.make: partition interval [%d,%d) must satisfy 0 <= from \
                < until"
               a b);
        if parts < 2 then
          invalid_arg
            (Printf.sprintf "Faults.make: partition parts must be >= 2, got %d"
               parts);
        { p_from = a; p_until = b; p_parts = parts })
      partitions
  in
  let bursts =
    List.map
      (fun (a, b, rate) ->
        if a < 0 || b <= a then
          invalid_arg
            (Printf.sprintf
               "Faults.make: burst interval [%d,%d) must satisfy 0 <= from < \
                until"
               a b);
        check_rate "burst drop" rate;
        { b_from = a; b_until = b; b_drop = rate })
      bursts
  in
  {
    seed;
    drop;
    duplicate;
    delay;
    max_delay;
    crash;
    crash_horizon;
    recovery;
    recovery_delay;
    corrupt;
    partitions;
    bursts;
    law;
    skew;
    reorder;
  }

(* Coordinate-indexed uniform variate: chain the bijective finalizer over
   the coordinates, each offset by the SplitMix golden gamma so that
   nearby coordinates land in distant states. *)
let u01 t ~salt ~round ~a ~b =
  let feed h x = mix (Int64.add h (Int64.mul (Int64.of_int x) gamma)) in
  let h = mix (Int64.add t.seed (Int64.mul (Int64.of_int salt) gamma)) in
  let h = feed (feed (feed h round) a) b in
  Int64.to_float (Int64.shift_right_logical h 11) *. 0x1.0p-53

(* Salts keep the verdict families independent of each other. *)
let salt_drop = 1
let salt_duplicate = 2
let salt_delay_coin = 3
let salt_delay_len = 4
let salt_crash_coin = 5
let salt_crash_round = 6
let salt_corrupt = 7
let salt_partition_side = 8
let salt_burst = 9
let salt_recover_coin = 10
let salt_recover_len = 11
let salt_latency = 12
let salt_skew = 13
let salt_reorder = 14
let salt_jitter = 15
let salt_retransmit = 16
let salt_control = 17

(* Which side of partition interval [idx] node [v] lands on: a pure hash
   of (seed, interval index, node), so sides never depend on when or how
   often the schedule is consulted. *)
let partition_side t ~index ~node ~parts =
  int_of_float
    (u01 t ~salt:salt_partition_side ~round:index ~a:node ~b:0
    *. float_of_int parts)

let partition_parts t ~round =
  let rec go idx = function
    | [] -> None
    | p :: rest ->
        if round >= p.p_from && round < p.p_until then Some (idx, p.p_parts)
        else go (idx + 1) rest
  in
  go 0 t.partitions

let partitioned t ~round ~src ~dst =
  match partition_parts t ~round with
  | None -> false
  | Some (index, parts) ->
      partition_side t ~index ~node:src ~parts
      <> partition_side t ~index ~node:dst ~parts

let burst_rate t ~round =
  List.fold_left
    (fun acc b ->
      if round >= b.b_from && round < b.b_until then Float.max acc b.b_drop
      else acc)
    0. t.bursts

let dropped t ~round ~src ~dst =
  partitioned t ~round ~src ~dst
  || (t.drop > 0. && u01 t ~salt:salt_drop ~round ~a:src ~b:dst < t.drop)
  ||
  let b = burst_rate t ~round in
  b > 0. && u01 t ~salt:salt_burst ~round ~a:src ~b:dst < b

let copies t ~round ~src ~dst =
  if dropped t ~round ~src ~dst then 0
  else if
    t.duplicate > 0.
    && u01 t ~salt:salt_duplicate ~round ~a:src ~b:dst < t.duplicate
  then 2
  else 1

let delay_of t ~round ~src ~dst ~copy =
  if t.delay > 0. && u01 t ~salt:salt_delay_coin ~round ~a:src ~b:(dst + copy) < t.delay
  then
    1
    + int_of_float
        (u01 t ~salt:salt_delay_len ~round ~a:src ~b:(dst + copy)
        *. float_of_int t.max_delay)
  else 0

(* The [dst + copy - 1] offset gives each duplicate copy its own verdict
   while keeping copy 1 at the historical [~b:dst] coordinate, so every
   single-copy verdict is unchanged. *)
let corrupted t ~round ~src ~dst ~copy =
  t.corrupt > 0.
  && u01 t ~salt:salt_corrupt ~round ~a:src ~b:(dst + copy - 1) < t.corrupt

let crash_round t ~node =
  if t.crash > 0. && u01 t ~salt:salt_crash_coin ~round:0 ~a:node ~b:0 < t.crash
  then
    Some
      (int_of_float
         (u01 t ~salt:salt_crash_round ~round:0 ~a:node ~b:0
         *. float_of_int t.crash_horizon))
  else None

let crash_interval t ~node =
  match crash_round t ~node with
  | None -> None
  | Some c ->
      let recover =
        if
          t.recovery > 0.
          && u01 t ~salt:salt_recover_coin ~round:0 ~a:node ~b:0 < t.recovery
        then
          Some
            (c + 1
            + int_of_float
                (u01 t ~salt:salt_recover_len ~round:0 ~a:node ~b:0
                *. float_of_int t.recovery_delay))
        else None
      in
      Some (c, recover)

(* --- virtual-time draws (async executor) ------------------------------ *)

(* Latency of a transmitted copy in virtual time units, mean 1.0 under
   every law.  Only the asynchronous executor consults these: they order
   events on its virtual clock and never touch a fault verdict, so the
   logical outcome under the synchronizer is law-invariant. *)
let link_latency t ~round ~src ~dst ~copy =
  let u = u01 t ~salt:salt_latency ~round ~a:src ~b:(dst + (copy lsl 16)) in
  let base =
    match t.law with
    | Uniform -> 0.5 +. u
    | Exponential -> -.log (1. -. u)
    | Heavy ->
        (* Pareto(x_m = 0.5, alpha = 2): mean 1.0, heavy right tail. *)
        0.5 /. sqrt (1. -. u)
  in
  let spiked =
    t.reorder > 0.
    && u01 t ~salt:salt_reorder ~round ~a:src ~b:(dst + (copy lsl 16))
       < t.reorder
  in
  if spiked then base *. 4. else base

(* Control-plane traffic (acks, safes, nacks) is small and fast: a short
   uniform latency, keyed by its own salt so payload and control draws
   never collide.  [kind] separates the control message families. *)
let control_latency t ~round ~src ~dst ~kind =
  0.1
  +. (0.2 *. u01 t ~salt:salt_control ~round ~a:src ~b:(dst + (kind lsl 16)))

(* Per-node clock-rate factor in [1, 1 + skew]: how much virtual time one
   local round costs the node. *)
let node_skew t ~node =
  1. +. (t.skew *. u01 t ~salt:salt_skew ~round:0 ~a:node ~b:0)

let timeout_jitter t ~round ~src ~dst ~attempt =
  u01 t ~salt:salt_jitter ~round ~a:src ~b:(dst + (attempt lsl 16))

(* A retransmitted copy is a fresh link-layer trial: it fails through an
   active partition (the link is cut) or with the plan's base drop rate,
   under a verdict of its own. *)
let retransmit_dropped t ~round ~src ~dst ~attempt =
  partitioned t ~round ~src ~dst
  || t.drop > 0.
     && u01 t ~salt:salt_retransmit ~round ~a:src ~b:(dst + (attempt lsl 16))
        < t.drop

(* Same shape, fresh verdict stream: how per-trial sweeps replicate one
   schedule independently. *)
let reseed t ~seed = { t with seed }

(* Every nonzero (or non-default, for the bounds that only matter next to
   a rate) field appears exactly once, so a plan's one-line summary never
   hides part of the schedule. *)
let describe t =
  if is_none t && t.law = Uniform && t.skew = 0. && t.reorder = 0. then
    "no faults"
  else begin
    let buf = Buffer.create 64 in
    let add fmt = Printf.ksprintf (fun s ->
        if Buffer.length buf > 0 then Buffer.add_char buf ' ';
        Buffer.add_string buf s) fmt
    in
    add "seed=%Ld" t.seed;
    if t.drop > 0. then add "drop=%g" t.drop;
    if t.duplicate > 0. then add "dup=%g" t.duplicate;
    if t.delay > 0. then add "delay=%g(max %d)" t.delay t.max_delay
    else if t.max_delay <> 1 then add "max_delay=%d" t.max_delay;
    if t.crash > 0. then begin
      add "crash=%g(by round %d)" t.crash t.crash_horizon;
      if t.recovery > 0. then
        add "recovery=%g(within %d)" t.recovery t.recovery_delay
    end;
    if t.corrupt > 0. then add "corrupt=%g" t.corrupt;
    List.iter
      (fun p -> add "partition[%d,%d)x%d" p.p_from p.p_until p.p_parts)
      t.partitions;
    List.iter (fun b -> add "burst[%d,%d)@%g" b.b_from b.b_until b.b_drop) t.bursts;
    if t.law <> Uniform then add "law=%s" (law_name t.law);
    if t.skew > 0. then add "skew=%g" t.skew;
    if t.reorder > 0. then add "reorder=%g" t.reorder;
    Printf.sprintf "faults(%s)" (Buffer.contents buf)
  end

(* --- profile presets -------------------------------------------------- *)

type preset = {
  pr_drop : float;
  pr_duplicate : float;
  pr_delay : float;
  pr_max_delay : int;
  pr_crash : float;
  pr_recovery : float;
  pr_recovery_delay : int;
  pr_corrupt : float;
  pr_partitions : (int * int * int) list;
  pr_bursts : (int * int * float) list;
}

let zero_preset =
  {
    pr_drop = 0.;
    pr_duplicate = 0.;
    pr_delay = 0.;
    pr_max_delay = 1;
    pr_crash = 0.;
    pr_recovery = 0.;
    pr_recovery_delay = 4;
    pr_corrupt = 0.;
    pr_partitions = [];
    pr_bursts = [];
  }

let preset = function
  | "lossy" -> { zero_preset with pr_drop = 0.1 }
  | "flaky" ->
      {
        zero_preset with
        pr_drop = 0.05;
        pr_duplicate = 0.05;
        pr_delay = 0.3;
        pr_max_delay = 2;
        pr_crash = 0.05;
        pr_recovery = 1.;
        pr_recovery_delay = 4;
        pr_corrupt = 0.02;
      }
  | "partitioned" ->
      {
        zero_preset with
        pr_drop = 0.02;
        pr_partitions = [ (2, 6, 2) ];
        pr_bursts = [ (8, 10, 0.5) ];
      }
  | other ->
      invalid_arg
        (Printf.sprintf
           "Faults.preset: unknown profile %S (--fault-profile takes \
            lossy|flaky|partitioned)"
           other)
