(** Deterministic fault plans for the LOCAL runtime.

    A plan describes an adverse network: per-edge message drop, duplication
    and delay distributions, per-node crash-stop at a sampled round, and an
    optional payload-corruption rate (the corrupting {e function} is
    supplied by the caller of {!Network.run_broadcast}, since payloads are
    polymorphic).  Every verdict is a {b pure function of the plan seed and
    its coordinates} (round, edge endpoints, copy index) — not of a stream
    position — so a fault pattern is bit-reproducible from its seed,
    independent of iteration order and of the {!Ls_par} domain count, and
    two executions over the same network diverge only through the
    monotonically advancing fault clock (see {!Network.clock}).

    The zero-fault plan {!none} is special-cased by the runtime: execution
    under it is {e bit-identical} to the fault-free code path. *)

type t = private {
  seed : int64;
  drop : float;  (** Per-(round, directed edge) message loss probability. *)
  duplicate : float;  (** Probability a surviving message is sent twice. *)
  delay : float;  (** Probability a copy is delayed by 1..[max_delay] rounds. *)
  max_delay : int;
  crash : float;  (** Per-node probability of crash-stop. *)
  crash_horizon : int;
      (** Crash rounds are sampled uniformly from [0, crash_horizon). *)
  corrupt : float;  (** Per-(round, edge) payload-corruption probability. *)
}

val none : t
(** The zero-fault plan: perfectly reliable network, nobody crashes. *)

val is_none : t -> bool

val make :
  ?seed:int64 ->
  ?drop:float ->
  ?duplicate:float ->
  ?delay:float ->
  ?max_delay:int ->
  ?crash:float ->
  ?crash_horizon:int ->
  ?corrupt:float ->
  unit ->
  t
(** Build a validated plan.  All rates must lie in [\[0,1]] and
    [max_delay], [crash_horizon] must be ≥ 1, else [Invalid_argument]
    naming the offending parameter (the CLI flags [--fault-rate] and
    [--crash-rate] funnel through this check). *)

(** {1 Verdicts}

    [round] is the network's absolute fault clock, so retried phases draw
    fresh verdicts while remaining deterministic. *)

val dropped : t -> round:int -> src:int -> dst:int -> bool

val copies : t -> round:int -> src:int -> dst:int -> int
(** 0 (dropped), 1, or 2 (duplicated). *)

val delay_of : t -> round:int -> src:int -> dst:int -> copy:int -> int
(** Extra rounds before copy [copy] arrives: 0, or 1..[max_delay]. *)

val corrupted : t -> round:int -> src:int -> dst:int -> copy:int -> bool
(** Per-copy, like {!delay_of}: duplicated copies draw independent
    corruption verdicts ([copy] is 1-based; the [copy = 1] verdict
    coincides with the historical per-edge one). *)

val crash_round : t -> node:int -> int option
(** The absolute round at which [node] crash-stops, if it ever does.  A
    crashed node neither sends nor receives from that round on; its state
    is frozen. *)

val describe : t -> string
(** One-line human-readable summary, e.g. for experiment headers. *)
