(** Deterministic fault plans for the LOCAL runtime.

    A plan describes an adverse network: per-edge message drop, duplication
    and delay distributions, per-node crash faults, and an optional
    payload-corruption rate (the corrupting {e function} is supplied by the
    caller of {!Network.run_broadcast}, since payloads are polymorphic).
    Beyond the i.i.d. rates a plan can carry {e schedules} — correlated
    fault shapes over absolute-round intervals:

    - {b partition intervals}: during [[a, b)] the vertex set is hashed
      into [parts] sides and every cross-side message is cut; at round [b]
      the partition heals;
    - {b fault bursts}: during [[a, b)] an elevated drop rate applies on
      top of the base rate;
    - {b crash recovery}: a crashed node may come back at a sampled later
      round (crash-{e recovery} instead of crash-{e stop}); the runtime
      restores its last checkpoint when it does (see {!Network}).

    Every verdict is a {b pure function of the plan seed and its
    coordinates} (round, edge endpoints, copy index, partition-interval
    index) — not of a stream position — so a fault pattern is
    bit-reproducible from its seed, independent of iteration order and of
    the {!Ls_par} domain count, and two executions over the same network
    diverge only through the monotonically advancing fault clock (see
    {!Network.clock}).

    The zero-fault plan {!none} is special-cased by the runtime: execution
    under it is {e bit-identical} to the fault-free code path. *)

type partition = private { p_from : int; p_until : int; p_parts : int }
(** The cut is in force for absolute rounds [[p_from, p_until)]. *)

type burst = private { b_from : int; b_until : int; b_drop : float }

type law = Uniform | Exponential | Heavy
(** Virtual link-latency law for the asynchronous executor
    ({!Ls_local.Async}): uniform on [[0.5, 1.5)], exponential of mean 1,
    or Pareto([x_m] = 0.5, [alpha] = 2) — all normalized to mean 1.0
    virtual time unit, so laws change delay {e tails}, not average load.
    Timing knobs never touch a fault verdict: the synchronous executor
    ignores them entirely, and the synchronizer-mode async executor
    produces bit-identical logical results under every law. *)

type t = private {
  seed : int64;
  drop : float;  (** Per-(round, directed edge) message loss probability. *)
  duplicate : float;  (** Probability a surviving message is sent twice. *)
  delay : float;  (** Probability a copy is delayed by 1..[max_delay] rounds. *)
  max_delay : int;
  crash : float;  (** Per-node probability of crashing. *)
  crash_horizon : int;
      (** Crash rounds are sampled uniformly from [0, crash_horizon). *)
  recovery : float;
      (** Probability a crashed node recovers (else it is crash-stop). *)
  recovery_delay : int;
      (** A recovering node returns 1..[recovery_delay] rounds after its
          crash. *)
  corrupt : float;  (** Per-(round, edge, copy) payload-corruption probability. *)
  partitions : partition list;
  bursts : burst list;
  law : law;
  skew : float;
      (** Max extra per-node clock-rate factor (a node's local round costs
          [1 .. 1 + skew] virtual time units); ≥ 0, async executor only. *)
  reorder : float;
      (** Probability a copy's virtual latency spikes 4×, forcing event
          reordering on the async executor's clock. *)
}

val none : t
(** The zero-fault plan: perfectly reliable network, nobody crashes. *)

val is_none : t -> bool

val make :
  ?seed:int64 ->
  ?drop:float ->
  ?duplicate:float ->
  ?delay:float ->
  ?max_delay:int ->
  ?crash:float ->
  ?crash_horizon:int ->
  ?recovery:float ->
  ?recovery_delay:int ->
  ?corrupt:float ->
  ?partitions:(int * int * int) list ->
  ?bursts:(int * int * float) list ->
  ?law:law ->
  ?skew:float ->
  ?reorder:float ->
  unit ->
  t
(** Build a validated plan.  All rates must lie in [\[0,1]]; [max_delay],
    [crash_horizon] and [recovery_delay] must be ≥ 1; partition intervals
    [(from, until, parts)] need [0 <= from < until] and [parts >= 2];
    burst intervals [(from, until, rate)] need [0 <= from < until] and a
    rate in [\[0,1]] — else [Invalid_argument] naming the offending
    parameter (the CLI flags [--fault-rate], [--crash-rate],
    [--max-delay] and [--corrupt-rate] funnel through this check). *)

(** {1 Verdicts}

    [round] is the network's absolute fault clock, so retried phases draw
    fresh verdicts while remaining deterministic. *)

val dropped : t -> round:int -> src:int -> dst:int -> bool
(** Base rate, active bursts, and partition cuts, combined: a message is
    dropped if any of the three fires. *)

val copies : t -> round:int -> src:int -> dst:int -> int
(** 0 (dropped), 1, or 2 (duplicated). *)

val delay_of : t -> round:int -> src:int -> dst:int -> copy:int -> int
(** Extra rounds before copy [copy] arrives: 0, or 1..[max_delay]. *)

val corrupted : t -> round:int -> src:int -> dst:int -> copy:int -> bool
(** Per-copy, like {!delay_of}: duplicated copies draw independent
    corruption verdicts ([copy] is 1-based; the [copy = 1] verdict
    coincides with the historical per-edge one). *)

val crash_round : t -> node:int -> int option
(** The absolute round at which [node] crashes, if it ever does.  A
    crashed node neither sends nor receives until it recovers (if the
    plan grants it a recovery — see {!crash_interval}); its state is
    frozen meanwhile. *)

val crash_interval : t -> node:int -> (int * int option) option
(** [Some (c, r)]: the node crashes at absolute round [c] and recovers at
    round [r] (restoring its last checkpoint), or never if [r = None]
    (crash-stop).  Recovery rounds are strictly after the crash. *)

(** {1 Schedules} *)

val partition_parts : t -> round:int -> (int * int) option
(** [(interval index, parts)] of the partition in force at [round], if
    any.  Intervals are consulted in declaration order; the first match
    wins. *)

val partition_side : t -> index:int -> node:int -> parts:int -> int
(** Which of the [parts] sides [node] lands on during partition interval
    [index] — a pure hash of (seed, index, node). *)

val partitioned : t -> round:int -> src:int -> dst:int -> bool
(** Is the directed edge cut by an active partition at [round]? *)

val burst_rate : t -> round:int -> float
(** The elevated drop rate in force at [round] (0 outside bursts; the max
    over overlapping bursts). *)

(** {1 Virtual-time draws}

    Consulted only by the asynchronous executor ({!Ls_local.Async}).
    Like every verdict they are pure functions of (seed, coordinates), so
    an async schedule replays exactly; unlike the verdicts above they
    shape {e when} events happen on the virtual clock, never {e what}
    happens — which is why timing-only plans still count as {!is_none}. *)

val law_name : law -> string
val law_of_string : string -> law
(** ["uniform"] | ["exp"]/["exponential"] | ["heavy"]/["pareto"]; raises
    [Invalid_argument] naming the [--delay-law] flag otherwise. *)

val link_latency : t -> round:int -> src:int -> dst:int -> copy:int -> float
(** Virtual transit time of copy [copy], drawn from the plan's [law]
    (mean 1.0), multiplied by 4 when the [reorder] spike verdict fires. *)

val control_latency : t -> round:int -> src:int -> dst:int -> kind:int -> float
(** Transit time of a control message (ack/safe/nack — distinguished by
    [kind]): uniform on [[0.1, 0.3)], its own salt. *)

val node_skew : t -> node:int -> float
(** The node's clock-rate factor in [[1, 1 + skew]]: virtual time one of
    its local rounds costs. *)

val timeout_jitter : t -> round:int -> src:int -> dst:int -> attempt:int -> float
(** Uniform [[0, 1)] jitter folded into adaptive-timeout deadlines so
    synchronized timeout storms decorrelate deterministically. *)

val retransmit_dropped : t -> round:int -> src:int -> dst:int -> attempt:int -> bool
(** Does retransmission [attempt] of the round-[round] copy fail?  A fresh
    link-layer verdict: cut by an active partition, or lost with the
    plan's base drop rate. *)

val reseed : t -> seed:int64 -> t
(** The same plan shape (rates, bounds, schedules) under a fresh seed —
    an independent replica of the schedule, used by per-trial sweeps. *)

val describe : t -> string
(** One-line human-readable summary, e.g. for experiment headers.
    Mentions {e every} nonzero field — including corrupt, max_delay,
    recovery, and every scheduled interval. *)

(** {1 Profile presets}

    The CLI's [--fault-profile] shorthand: named parameter bundles that
    callers merge with their explicit flags and feed through {!make} (so
    validation is identical either way). *)

type preset = {
  pr_drop : float;
  pr_duplicate : float;
  pr_delay : float;
  pr_max_delay : int;
  pr_crash : float;
  pr_recovery : float;
  pr_recovery_delay : int;
  pr_corrupt : float;
  pr_partitions : (int * int * int) list;
  pr_bursts : (int * int * float) list;
}

val zero_preset : preset
(** All rates zero — the merge identity. *)

val preset : string -> preset
(** ["lossy"] (pure message loss), ["flaky"] (loss + duplication + delay +
    crash-recovery + corruption), ["partitioned"] (partition interval +
    burst over light loss).  Raises [Invalid_argument] naming the flag on
    any other string. *)
