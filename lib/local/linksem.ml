(* Shared link-layer semantics: the per-copy fate of one directed
   (round, edge) message under a fault plan, factored out of the
   synchronous executor so the asynchronous one consumes the exact same
   core.  Safe to share because every verdict is a pure function of
   (seed, coordinates): computing a fate in a different execution order
   cannot change it. *)

module Trace = Ls_obs.Trace
module Metrics = Ls_obs.Metrics

type 'm copy = {
  c_index : int;  (* 1-based copy index within the transmission *)
  c_delay : int;  (* verdict delay in logical rounds *)
  c_msg : 'm;  (* payload, possibly corrupted *)
  c_corrupted : bool;
  c_quarantined : bool;  (* corrupted and caught by the digest *)
}

type 'm fate = {
  f_raw : int;  (* raw verdict copy count: 0 dropped, 2 duplicated *)
  f_copies : 'm copy list;  (* ascending copy index *)
}

let fate fp ~round ~src ~dst ?corrupt ?digest msg =
  let raw = Faults.copies fp ~round ~src ~dst in
  let copies =
    List.init raw (fun i ->
        let copy = i + 1 in
        let d = Faults.delay_of fp ~round ~src ~dst ~copy in
        let corrupted_now =
          match corrupt with
          | Some _ -> Faults.corrupted fp ~round ~src ~dst ~copy
          | None -> false
        in
        let m =
          match corrupt with
          | Some f when corrupted_now -> f ~round ~src ~dst msg
          | _ -> msg
        in
        (* Integrity check at the receiver: a digest that no longer matches
           the original's exposes the corruption; equal digests (a genuine
           collision, or no digest at all) let the copy through silently. *)
        let quarantined_now =
          corrupted_now
          && match digest with Some dg -> dg m <> dg msg | None -> false
        in
        {
          c_index = copy;
          c_delay = d;
          c_msg = m;
          c_corrupted = corrupted_now;
          c_quarantined = quarantined_now;
        })
  in
  { f_raw = raw; f_copies = copies }

(* The fate's fault events in the synchronous executor's historical
   order: the drop/duplicate event first, then per copy its delay,
   corrupt and quarantine events.  Pure construction, shared by
   in-process reporting ({!record}) and by {!Ls_shard} workers, who ship
   the list across a process boundary for the parent to replay — one
   source of truth keeps the trace streams byte-identical. *)
let events_of_fate ~round ~src ~dst f =
  let head =
    if f.f_raw = 0 then [ Trace.Fault_drop { round; src; dst } ]
    else if f.f_raw > 1 then
      [ Trace.Fault_duplicate { round; src; dst; copies = f.f_raw } ]
    else []
  in
  let per_copy c =
    (if c.c_delay > 0 then
       [ Trace.Fault_delay { round; src; dst; copy = c.c_index; delay = c.c_delay } ]
     else [])
    @ (if c.c_corrupted then
         [ Trace.Fault_corrupt { round; src; dst; copy = c.c_index } ]
       else [])
    @
    if c.c_quarantined then
      [ Trace.Quarantine { round; src; dst; copy = c.c_index } ]
    else []
  in
  head @ List.concat_map per_copy f.f_copies

(* The metric bump matching each fault event — the mapping {!record} uses,
   exposed so a parent process replaying shipped events bumps exactly the
   counters the in-process path would have. *)
let record_event_metrics = function
  | Trace.Fault_drop _ -> Metrics.record_drop ()
  | Trace.Fault_duplicate _ -> Metrics.record_duplicate ()
  | Trace.Fault_delay _ -> Metrics.record_delay ()
  | Trace.Fault_corrupt _ -> Metrics.record_corruption ()
  | Trace.Quarantine _ -> Metrics.record_quarantine ()
  | _ -> ()

let record ?trace ~metrics ~round ~src ~dst f =
  match (trace, metrics) with
  | None, false -> ()
  | _ ->
      List.iter
        (fun ev ->
          (match trace with Some s -> Trace.emit s ev | None -> ());
          if metrics then record_event_metrics ev)
        (events_of_fate ~round ~src ~dst f)

(* A node is down for the half-open interval [crash_at, recover_at). *)
let alive ~crash_at ~recover_at ~abs v =
  abs < crash_at.(v) || abs >= recover_at.(v)

(* Inbox slot ordering, shared by both executors.  Fresh copies of a slot
   are merged in ascending (send round, sender id, copy index); copies
   carried in from an earlier phase are merged BEFORE the fresh ones, in
   descending key order (the fold-then-reverse of the original delivery
   loop — a historical accident, but one the bit-identity contract now
   pins down). *)
let compare_fresh (s1, v1, c1) (s2, v2, c2) = compare (s1, v1, c1) (s2, v2, c2)
let compare_parked a b = compare_fresh b a
