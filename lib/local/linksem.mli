(** Shared link-layer semantics for the two executors.

    One directed (round, edge) transmission under a {!Faults} plan has a
    {e fate}: a raw copy count (0 = dropped, 2 = duplicated) and, per
    surviving copy, a delay, a possibly corrupted payload, and a
    quarantine flag.  {!Network}'s synchronous executor and
    {!Async}'s event-driven one both compute fates here and report them
    through {!record}, so fault verdicts, meter bumps and the payload
    trace stream cannot drift apart between executors.  Sharing is sound
    because verdicts are pure functions of (seed, coordinates) — the
    execution order in which fates are computed is irrelevant. *)

type 'm copy = {
  c_index : int;  (** 1-based copy index within the transmission. *)
  c_delay : int;  (** Extra logical rounds before the copy is due. *)
  c_msg : 'm;  (** Payload, after the [corrupt] hook if its verdict fired. *)
  c_corrupted : bool;
  c_quarantined : bool;
      (** Corrupted {e and} caught by the digest: billed, never delivered. *)
}

type 'm fate = { f_raw : int; f_copies : 'm copy list }

val fate :
  Faults.t ->
  round:int ->
  src:int ->
  dst:int ->
  ?corrupt:(round:int -> src:int -> dst:int -> 'm -> 'm) ->
  ?digest:('m -> int) ->
  'm ->
  'm fate
(** The fate of [msg] sent from [src] to [dst] at absolute round [round]:
    drop/duplicate verdict, then per copy the delay, corruption (via the
    caller's [corrupt] hook) and quarantine ([digest] mismatch) verdicts —
    exactly the pipeline {!Network.run_broadcast} applies. *)

val events_of_fate :
  round:int -> src:int -> dst:int -> 'm fate -> Ls_obs.Trace.event list
(** The fate's fault events in the synchronous executor's order:
    drop/duplicate first, then per copy delay, corrupt, quarantine.  Pure
    construction — {!record} emits exactly this list, and {!Ls_shard}
    workers ship it across the process boundary for the parent to replay,
    so sharded and in-process trace streams cannot drift. *)

val record_event_metrics : Ls_obs.Trace.event -> unit
(** Bump the metric counter matching one fault event (drop, duplicate,
    delay, corrupt, quarantine; other events are ignored) — the mapping
    {!record} applies, exposed for replaying shipped events. *)

val record :
  ?trace:Ls_obs.Trace.t ->
  metrics:bool ->
  round:int ->
  src:int ->
  dst:int ->
  'm fate ->
  unit
(** Emit the fate's fault events and metric bumps in the synchronous
    executor's order: drop/duplicate first, then per copy delay, corrupt,
    quarantine.  Both executors report through here — the byte-identity
    of their payload traces depends on it. *)

val alive : crash_at:int array -> recover_at:int array -> abs:int -> int -> bool
(** Is the node up at absolute round [abs]?  Down for the half-open
    interval [[crash_at, recover_at)]. *)

(** {1 Slot ordering}

    Comparators over [(send round, sender id, copy index)] keys fixing the
    deterministic merge order of an inbox slot: parked carry-in copies
    first in {e descending} key order, then fresh copies in {e ascending}
    order.  The descending leg reproduces the synchronous executor's
    historical cons-then-reverse delivery; the bit-identity contract
    between executors pins it down. *)

val compare_fresh : int * int * int -> int * int * int -> int
val compare_parked : int * int * int -> int * int * int -> int
