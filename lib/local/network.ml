module Graph = Ls_graph.Graph
module Rng = Ls_rng.Rng

type 'input t = {
  graph : Graph.t;
  inputs : 'input array;
  rngs : Rng.t array;
  mutable rounds : int;
  mutable bits : int;
  faults : Faults.t;
  crash_at : int array;  (* absolute round of crash-stop; max_int = never *)
  mutable clock : int;  (* absolute broadcast rounds elapsed; never reset *)
}

let create ?(faults = Faults.none) graph ~inputs ~seed =
  if Array.length inputs <> Graph.n graph then
    invalid_arg "Network.create: one input per vertex required";
  {
    graph;
    inputs;
    rngs = Rng.streams seed (Graph.n graph);
    rounds = 0;
    bits = 0;
    faults;
    crash_at =
      Array.init (Graph.n graph) (fun v ->
          match Faults.crash_round faults ~node:v with
          | Some r -> r
          | None -> max_int);
    clock = 0;
  }

let graph t = t.graph
let input t v = t.inputs.(v)
let rng t v = t.rngs.(v)
let rounds t = t.rounds
let faults t = t.faults
let clock t = t.clock
let crashed t v = t.crash_at.(v) <= t.clock

let charge t r =
  if r < 0 then invalid_arg "Network.charge: negative rounds";
  t.rounds <- t.rounds + r

let reset_rounds t = t.rounds <- 0

let bits t = t.bits

let reset_bits t = t.bits <- 0

type 'input view = {
  center : int;
  radius : int;
  vertices : int array;
  subgraph : Graph.t;
  local_of_orig : (int, int) Hashtbl.t;
  view_inputs : 'input array;
  center_local : int;
  dist_center : int array;
}

let view_of_ball t ~v ~radius ~ball ~dist =
  let subgraph, vertices = Graph.induced t.graph ball in
  let local_of_orig = Hashtbl.create (2 * Array.length vertices) in
  Array.iteri (fun i o -> Hashtbl.replace local_of_orig o i) vertices;
  {
    center = v;
    radius;
    vertices;
    subgraph;
    local_of_orig;
    view_inputs = Array.map (fun o -> t.inputs.(o)) vertices;
    center_local = Hashtbl.find local_of_orig v;
    dist_center = Array.map (fun o -> dist.(o)) vertices;
  }

let gather t ~v ~radius =
  if radius < 0 then invalid_arg "Network.gather: negative radius";
  let dist = Graph.bfs_distances t.graph v in
  let ball = Graph.ball t.graph v radius in
  view_of_ball t ~v ~radius ~ball ~dist

let in_view view orig = Hashtbl.mem view.local_of_orig orig

let local view orig = Hashtbl.find view.local_of_orig orig

let view_is_complete t view =
  (* Flooded knowledge is always a subset of the true ball (messages carry
     only true records), so cardinality equality is completeness. *)
  Array.length view.vertices = Array.length (Graph.ball t.graph view.center view.radius)

(* The fault-free synchronous executor — kept verbatim as its own function
   so the zero-fault plan is bit-identical to the pre-fault runtime. *)
let run_broadcast_pristine t ~rounds ?size ~init ~emit ~merge () =
  let n = Graph.n t.graph in
  let states = Array.init n init in
  for _round = 1 to rounds do
    (* All sends use this round's pre-merge states: synchronous semantics. *)
    let outgoing = Array.mapi (fun v s -> emit v s) states in
    (match size with
    | None -> ()
    | Some size ->
        for v = 0 to n - 1 do
          t.bits <- t.bits + (Graph.degree t.graph v * size outgoing.(v))
        done);
    for v = 0 to n - 1 do
      let inbox =
        Array.to_list (Array.map (fun u -> outgoing.(u)) (Graph.neighbors t.graph v))
      in
      states.(v) <- merge v states.(v) inbox
    done
  done;
  states

(* The faulty executor: every directed (round, edge) message is subjected
   to the plan's drop/duplicate/delay/corrupt verdicts, crashed nodes
   freeze, and delayed copies are parked in per-arrival-round inboxes.
   Inbox order is deterministic: (send round, sender id, copy index). *)
let run_broadcast_faulty t ~rounds ?size ?corrupt ~init ~emit ~merge () =
  let n = Graph.n t.graph in
  let fp = t.faults in
  let states = Array.init n init in
  let max_delay = if fp.Faults.delay > 0. then fp.Faults.max_delay else 0 in
  let inboxes = Array.init (rounds + max_delay) (fun _ -> Array.make n []) in
  for round = 0 to rounds - 1 do
    let abs = t.clock + round in
    let alive v = t.crash_at.(v) > abs in
    let outgoing =
      Array.mapi (fun v s -> if alive v then Some (emit v s) else None) states
    in
    for v = 0 to n - 1 do
      match outgoing.(v) with
      | None -> ()
      | Some msg ->
          Array.iter
            (fun u ->
              let copies = Faults.copies fp ~round:abs ~src:v ~dst:u in
              for copy = 1 to copies do
                let d = Faults.delay_of fp ~round:abs ~src:v ~dst:u ~copy in
                let msg =
                  match corrupt with
                  | Some f when Faults.corrupted fp ~round:abs ~src:v ~dst:u ->
                      f ~round:abs ~src:v ~dst:u msg
                  | _ -> msg
                in
                (* Bits are metered per transmitted copy: dropped messages
                   never hit the wire, duplicates pay twice. *)
                (match size with
                | Some size -> t.bits <- t.bits + size msg
                | None -> ());
                let slot = round + d in
                if slot < Array.length inboxes then
                  inboxes.(slot).(u) <- msg :: inboxes.(slot).(u)
              done)
            (Graph.neighbors t.graph v)
    done;
    for v = 0 to n - 1 do
      if alive v then
        states.(v) <- merge v states.(v) (List.rev inboxes.(round).(v))
    done
  done;
  states

let run_broadcast t ~rounds ?size ?corrupt ~init ~emit ~merge () =
  let states =
    if Faults.is_none t.faults then
      run_broadcast_pristine t ~rounds ?size ~init ~emit ~merge ()
    else run_broadcast_faulty t ~rounds ?size ?corrupt ~init ~emit ~merge ()
  in
  t.clock <- t.clock + rounds;
  charge t rounds;
  states

(* Flooding state: everything a node has learned — for each known original
   vertex, its input and its full neighbor list. *)
module Imap = Map.Make (Int)

let flood_views t ~radius =
  let n = Graph.n t.graph in
  let record v = (t.inputs.(v), Array.to_list (Graph.neighbors t.graph v)) in
  (* Message size: 64 bits per id (the vertex and each of its neighbors);
     inputs are not counted, being of caller-chosen type. *)
  let size m =
    Imap.fold (fun _ (_, nbrs) acc -> acc + (64 * (1 + List.length nbrs))) m 0
  in
  let states =
    run_broadcast t ~rounds:radius ~size
      ~init:(fun v -> Imap.singleton v (record v))
      ~emit:(fun _ s -> s)
      ~merge:(fun _ s inbox ->
        List.fold_left
          (fun acc m -> Imap.union (fun _ a _ -> Some a) acc m)
          s inbox)
      ()
  in
  Array.init n (fun v ->
      let known = states.(v) in
      (* Distances from the flooded adjacency data only. *)
      let ids = Array.of_list (List.map fst (Imap.bindings known)) in
      let dist = Hashtbl.create (2 * Array.length ids) in
      let queue = Queue.create () in
      Hashtbl.replace dist v 0;
      Queue.add v queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        let d = Hashtbl.find dist u in
        if d < radius then
          match Imap.find_opt u known with
          | None -> ()
          | Some (_, nbrs) ->
              List.iter
                (fun w ->
                  if Imap.mem w known && not (Hashtbl.mem dist w) then begin
                    Hashtbl.replace dist w (d + 1);
                    Queue.add w queue
                  end)
                nbrs
      done;
      (* The ball is exactly the vertices reached within [radius]; flooding
         may also have leaked ids at distance radius+... no: a record takes
         dist(u,v) rounds to arrive, so everything known is within radius.
         Under faults the reachable set can be a strict subset of the true
         ball (dropped or late records): the view is then partial, which
         {!view_is_complete} detects. *)
      let ball =
        Array.of_list
          (List.filter (fun u -> Hashtbl.mem dist u) (List.map fst (Imap.bindings known)))
      in
      let dist_arr = Array.make n max_int in
      Hashtbl.iter (fun u d -> dist_arr.(u) <- d) dist;
      view_of_ball t ~v ~radius ~ball ~dist:dist_arr)
