module Graph = Ls_graph.Graph
module Rng = Ls_rng.Rng
module Trace = Ls_obs.Trace
module Metrics = Ls_obs.Metrics

(* Universal payloads: a delayed copy whose arrival round falls past the
   end of its broadcast phase is parked on the network, keyed by absolute
   clock round, and re-delivered to a later phase carrying the same
   message type.  The type is witnessed by the carrier that parked it. *)
type univ = ..

type 'm carrier = { inj : 'm -> univ; prj : univ -> 'm option }

let carrier (type m) () : m carrier =
  let module M = struct
    type univ += C of m
  end in
  {
    inj = (fun x -> M.C x);
    prj = (function M.C x -> Some x | _ -> None);
  }

type packet = {
  sent : int;  (* absolute round the copy was transmitted *)
  arrive : int;  (* absolute round the copy is due *)
  p_src : int;
  p_dst : int;
  p_copy : int;
  payload : univ;
}

(* Flooding state: everything a node has learned — for each known original
   vertex, its input and its full neighbor list. *)
module Imap = Map.Make (Int)

type 'i flood_msg = ('i * int list) Imap.t

type 'input t = {
  graph : Graph.t;
  inputs : 'input array;
  rngs : Rng.t array;
  mutable rounds : int;
  mutable bits : int;
  mutable msgs : int;  (* transmitted copies, metered like bits *)
  faults : Faults.t;
  crash_at : int array;  (* absolute round of the crash; max_int = never *)
  recover_at : int array;  (* absolute recovery round; max_int = crash-stop *)
  crash_seen : bool array;  (* crash already reported to trace/metrics *)
  ckpt_store : univ option array;  (* last checkpoint, per node *)
  mutable quarantined : int;  (* corrupted copies caught by a digest *)
  mutable dead_letters : int;  (* undeliverable copies (dead receiver, …) *)
  mutable delivered : int;  (* copies handed to a live node's merge *)
  mutable partition_active : int option;  (* interval index in force *)
  mutable clock : int;  (* absolute broadcast rounds elapsed; never reset *)
  mutable pending : packet list;  (* delayed copies awaiting a later phase *)
  mutable flood_carry : 'input flood_msg carrier option;
  trace : Trace.t option;
}

let create ?(faults = Faults.none) ?trace graph ~inputs ~seed =
  if Array.length inputs <> Graph.n graph then
    invalid_arg "Network.create: one input per vertex required";
  let n = Graph.n graph in
  let crash_at = Array.make n max_int in
  let recover_at = Array.make n max_int in
  for v = 0 to n - 1 do
    match Faults.crash_interval faults ~node:v with
    | Some (c, r) ->
        crash_at.(v) <- c;
        recover_at.(v) <- Option.value r ~default:max_int
    | None -> ()
  done;
  {
    graph;
    inputs;
    rngs = Rng.streams seed n;
    rounds = 0;
    bits = 0;
    msgs = 0;
    faults;
    crash_at;
    recover_at;
    crash_seen = Array.make n false;
    ckpt_store = Array.make n None;
    quarantined = 0;
    dead_letters = 0;
    delivered = 0;
    partition_active = None;
    clock = 0;
    pending = [];
    flood_carry = None;
    trace;
  }

let graph t = t.graph
let input t v = t.inputs.(v)
let rng t v = t.rngs.(v)
let rounds t = t.rounds
let faults t = t.faults
let clock t = t.clock

(* A node is down for the half-open interval [crash_at, recover_at). *)
let crashed t v = t.crash_at.(v) <= t.clock && t.clock < t.recover_at.(v)
let permanently_crashed t v = t.crash_at.(v) <= t.clock && t.recover_at.(v) = max_int
let quarantined_count t = t.quarantined
let dead_letter_count t = t.dead_letters
let delivered_count t = t.delivered

let charge t r =
  if r < 0 then invalid_arg "Network.charge: negative rounds";
  t.rounds <- t.rounds + r

let reset_rounds t = t.rounds <- 0

let bits t = t.bits

let reset_bits t = t.bits <- 0

let messages t = t.msgs

let pending_count t = List.length t.pending

(* Teardown accounting: a network being finished has no later phase for
   its parked copies to reach, so they migrate to dead letters — the
   conservation identity [messages = delivered + pending + quarantined +
   dead] then holds at teardown with pending = 0.  Idempotent. *)
let finish t =
  match t.pending with
  | [] -> ()
  | ps ->
      let k = List.length ps in
      t.pending <- [];
      t.dead_letters <- t.dead_letters + k;
      if Metrics.enabled () then Metrics.record_dead_letters k

(* Explicit sink wins, then the network's own, then the ambient one. *)
let sink t trace =
  match trace with
  | Some _ -> trace
  | None -> ( match t.trace with Some _ -> t.trace | None -> Trace.ambient ())

type 'input view = {
  center : int;
  radius : int;
  vertices : int array;
  subgraph : Graph.t;
  local_of_orig : (int, int) Hashtbl.t;
  view_inputs : 'input array;
  center_local : int;
  dist_center : int array;
}

let view_of_ball t ~v ~radius ~ball ~dist =
  let subgraph, vertices = Graph.induced t.graph ball in
  let local_of_orig = Hashtbl.create (2 * Array.length vertices) in
  Array.iteri (fun i o -> Hashtbl.replace local_of_orig o i) vertices;
  {
    center = v;
    radius;
    vertices;
    subgraph;
    local_of_orig;
    view_inputs = Array.map (fun o -> t.inputs.(o)) vertices;
    center_local = Hashtbl.find local_of_orig v;
    dist_center = Array.map (fun o -> dist.(o)) vertices;
  }

let gather t ~v ~radius =
  if radius < 0 then invalid_arg "Network.gather: negative radius";
  let dist = Graph.bfs_distances t.graph v in
  let ball = Graph.ball t.graph v radius in
  view_of_ball t ~v ~radius ~ball ~dist

let in_view view orig = Hashtbl.mem view.local_of_orig orig

let local view orig = Hashtbl.find view.local_of_orig orig

let view_is_complete t view =
  (* Flooded knowledge is always a subset of the true ball (messages carry
     only true records), so cardinality equality is completeness. *)
  Array.length view.vertices = Array.length (Graph.ball t.graph view.center view.radius)

let merge_views t a b =
  if a.center <> b.center || a.radius <> b.radius then
    invalid_arg "Network.merge_views: views differ in center or radius";
  let n = Graph.n t.graph in
  let dist = Array.make n max_int in
  let add view =
    Array.iteri
      (fun i o -> dist.(o) <- min dist.(o) view.dist_center.(i))
      view.vertices
  in
  add a;
  add b;
  let union = ref [] in
  let count = ref 0 in
  for o = n - 1 downto 0 do
    if dist.(o) < max_int then begin
      union := o :: !union;
      incr count
    end
  done;
  (* Subset fast paths: the union adds nothing over one operand (distance
     estimates may still differ — both are upper bounds, membership is
     what completeness is judged on). *)
  if !count = Array.length a.vertices then a
  else if !count = Array.length b.vertices then b
  else view_of_ball t ~v:a.center ~radius:a.radius ~ball:(Array.of_list !union) ~dist

(* The fault-free synchronous executor — kept verbatim as its own function
   so the zero-fault plan is bit-identical to the pre-fault runtime. *)
let run_broadcast_pristine t ~rounds ?size ~init ~emit ~merge () =
  let n = Graph.n t.graph in
  let states = Array.init n init in
  for _round = 1 to rounds do
    (* All sends use this round's pre-merge states: synchronous semantics. *)
    let outgoing = Array.mapi (fun v s -> emit v s) states in
    (match size with
    | None -> ()
    | Some size ->
        for v = 0 to n - 1 do
          t.bits <- t.bits + (Graph.degree t.graph v * size outgoing.(v))
        done);
    for v = 0 to n - 1 do
      let inbox =
        Array.to_list (Array.map (fun u -> outgoing.(u)) (Graph.neighbors t.graph v))
      in
      states.(v) <- merge v states.(v) inbox
    done
  done;
  states

(* The faulty executor: every directed (round, edge) message is subjected
   to the plan's drop/duplicate/delay/corrupt verdicts, crashed nodes
   freeze, and delayed copies are parked in per-arrival-round inboxes.
   Inbox order is deterministic: (send round, sender id, copy index).
   A copy whose arrival round falls past the phase end is parked on
   [t.pending] (keyed by absolute round) when the caller supplied a
   [carry] witness, and delivered at the start of a later phase of the
   same message type; without a witness it is counted as a dead letter
   (its bits stay billed — it did hit the wire).

   Crash-recovery: a node is down for [crash_at, recover_at).  At its
   crash round the runtime snapshots its state into the network's
   checkpoint store (when the phase supplied a [ckpt] witness); at its
   recovery round the snapshot is restored and the rounds the node was
   dark are reported as catch-up (the max over concurrently recovering
   nodes is returned and charged by the dispatcher).

   Integrity: when both [corrupt] and [digest] are given, a corrupted
   copy whose digest no longer matches the original's is quarantined —
   billed but never delivered, surfacing as a drop to the caller.  A
   corruption the digest misses is delivered silently, as a real
   collision would be. *)
let run_broadcast_faulty t ~rounds ?size ?corrupt ?digest ?ckpt ?carry
    ~trace:tr ~init ~emit ~merge () =
  let n = Graph.n t.graph in
  let fp = t.faults in
  let metrics = Metrics.enabled () in
  let states = Array.init n init in
  let inboxes = Array.init rounds (fun _ -> Array.make n []) in
  let base = t.clock in
  let catchup = ref 0 in
  (match carry with
  | None -> ()
  | Some c ->
      (* Deliver previously parked copies of this phase's message type.
         Order inside a slot follows (send round, sender id, copy index),
         ahead of this phase's fresh messages. *)
      let mine, rest =
        List.partition (fun p -> Option.is_some (c.prj p.payload)) t.pending
      in
      let future = ref rest in
      List.iter
        (fun p ->
          let slot = max 0 (p.arrive - base) in
          if slot < rounds then
            match c.prj p.payload with
            | Some m -> inboxes.(slot).(p.p_dst) <- m :: inboxes.(slot).(p.p_dst)
            | None -> assert false
          else future := p :: !future)
        (List.sort
           (fun a b ->
             compare (b.sent, b.p_src, b.p_copy) (a.sent, a.p_src, a.p_copy))
           mine);
      t.pending <- !future);
  for round = 0 to rounds - 1 do
    let abs = base + round in
    let alive v = Linksem.alive ~crash_at:t.crash_at ~recover_at:t.recover_at ~abs v in
    (* Partition boundary events: emitted when the interval in force at
       this absolute round differs from the one at the previous round. *)
    if fp.Faults.partitions <> [] then begin
      match (Faults.partition_parts fp ~round:abs, t.partition_active) with
      | Some (idx, parts), active when active <> Some idx ->
          if active <> None then begin
            (match tr with
            | Some s -> Trace.emit s (Trace.Heal { round = abs })
            | None -> ());
            if metrics then Metrics.record_heal ()
          end;
          t.partition_active <- Some idx;
          (match tr with
          | Some s -> Trace.emit s (Trace.Partition { round = abs; parts })
          | None -> ());
          if metrics then Metrics.record_partition ()
      | None, Some _ ->
          t.partition_active <- None;
          (match tr with
          | Some s -> Trace.emit s (Trace.Heal { round = abs })
          | None -> ());
          if metrics then Metrics.record_heal ()
      | _ -> ()
    end;
    (* Crash/recovery bookkeeping runs unconditionally: checkpoints and
       restores mutate state, only their events are trace/metrics-gated. *)
    for v = 0 to n - 1 do
      if t.crash_at.(v) = abs then begin
        (match ckpt with
        | Some c -> t.ckpt_store.(v) <- Some (c.inj states.(v))
        | None -> ());
        (match tr with
        | Some s -> Trace.emit s (Trace.Checkpoint { node = v; round = abs })
        | None -> ());
        if metrics then Metrics.record_checkpoint ()
      end;
      if (not t.crash_seen.(v)) && t.crash_at.(v) <= abs then begin
        t.crash_seen.(v) <- true;
        (match tr with
        | Some s -> Trace.emit s (Trace.Crash { node = v; round = t.crash_at.(v) })
        | None -> ());
        if metrics then Metrics.record_crash ()
      end;
      if t.recover_at.(v) = abs then begin
        (match ckpt with
        | Some c -> (
            match t.ckpt_store.(v) with
            | Some u -> (
                match c.prj u with
                | Some st ->
                    states.(v) <- st;
                    t.ckpt_store.(v) <- None
                | None -> ())
            | None -> ())
        | None -> ());
        let missed = abs - t.crash_at.(v) in
        catchup := max !catchup missed;
        (match tr with
        | Some s -> Trace.emit s (Trace.Restore { node = v; round = abs; missed })
        | None -> ());
        if metrics then Metrics.record_restore ()
      end
    done;
    let outgoing =
      Array.mapi (fun v s -> if alive v then Some (emit v s) else None) states
    in
    for v = 0 to n - 1 do
      match outgoing.(v) with
      | None -> ()
      | Some msg ->
          Array.iter
            (fun u ->
              let f = Linksem.fate fp ~round:abs ~src:v ~dst:u ?corrupt ?digest msg in
              Linksem.record ?trace:tr ~metrics ~round:abs ~src:v ~dst:u f;
              List.iter
                (fun (c : _ Linksem.copy) ->
                  (* Bits are metered per transmitted copy: dropped messages
                     never hit the wire, duplicates pay twice, and quarantined
                     copies stay billed — they did hit the wire. *)
                  (match size with
                  | Some size -> t.bits <- t.bits + size c.Linksem.c_msg
                  | None -> ());
                  t.msgs <- t.msgs + 1;
                  if c.Linksem.c_quarantined then
                    t.quarantined <- t.quarantined + 1
                  else begin
                    let slot = round + c.Linksem.c_delay in
                    if slot < rounds then
                      inboxes.(slot).(u) <- c.Linksem.c_msg :: inboxes.(slot).(u)
                    else
                      match carry with
                      | Some cr ->
                          t.pending <-
                            {
                              sent = abs;
                              arrive = base + slot;
                              p_src = v;
                              p_dst = u;
                              p_copy = c.Linksem.c_index;
                              payload = cr.inj c.Linksem.c_msg;
                            }
                            :: t.pending
                      | None ->
                          (* No carrier to park on: lost in transit. *)
                          t.dead_letters <- t.dead_letters + 1;
                          if metrics then Metrics.record_dead_letters 1
                  end)
                f.Linksem.f_copies)
            (Graph.neighbors t.graph v)
    done;
    for v = 0 to n - 1 do
      let inbox = inboxes.(round).(v) in
      if alive v then begin
        t.delivered <- t.delivered + List.length inbox;
        states.(v) <- merge v states.(v) (List.rev inbox)
      end
      else begin
        (* Copies arriving at a down node are dead letters, so
           sent = delivered + pending + quarantined + dead stays exact. *)
        let k = List.length inbox in
        if k > 0 then begin
          t.dead_letters <- t.dead_letters + k;
          if metrics then Metrics.record_dead_letters k
        end
      end
    done
  done;
  (states, !catchup)

(* Pluggable faulty-path executor: {!Ls_shard.Exec} installs a transport
   that runs the phase across worker processes.  The hook replaces only
   the interior of the faulty path — the wrapper below keeps phase
   events, clock advance, round charging and phase metrics, so a
   transport is responsible for exactly what [run_broadcast_faulty] does:
   mutate the network's meters/pending/checkpoint state (via
   {!Internal}), emit interior fault events to [trace], and return the
   final states with the catch-up round count.

   The field is a polymorphic record so one installed transport serves
   every (input, message, state) instantiation.  Process-global (an
   atomic), matching the ambient trace sink's scoping. *)
type transport = {
  exec :
    'i 'm 's.
    'i t ->
    rounds:int ->
    size:('m -> int) option ->
    corrupt:(round:int -> src:int -> dst:int -> 'm -> 'm) option ->
    digest:('m -> int) option ->
    ckpt:'s carrier option ->
    carry:'m carrier option ->
    trace:Trace.t option ->
    init:(int -> 's) ->
    emit:(int -> 's -> 'm) ->
    merge:(int -> 's -> 'm list -> 's) ->
    's array * int;
}

let transport_cell : transport option Atomic.t = Atomic.make None
let set_transport tp = Atomic.set transport_cell tp
let transport () = Atomic.get transport_cell

let run_broadcast t ~rounds ?size ?corrupt ?digest ?ckpt ?carry
    ?(label = "broadcast") ?trace ~init ~emit ~merge () =
  let tr = sink t trace in
  let metrics = Metrics.enabled () in
  let bits0 = t.bits and msgs0 = t.msgs in
  (match tr with
  | Some s -> Trace.emit s (Trace.Phase_start { label; clock = t.clock })
  | None -> ());
  let states, catchup =
    if Faults.is_none t.faults then begin
      let states = run_broadcast_pristine t ~rounds ?size ~init ~emit ~merge () in
      (* Fault-free rounds transmit one copy per directed edge, and every
         copy reaches its merge — conservation holds with zero loss. *)
      t.msgs <- t.msgs + (rounds * 2 * Graph.m t.graph);
      t.delivered <- t.delivered + (rounds * 2 * Graph.m t.graph);
      (states, 0)
    end
    else
      match transport () with
      | Some tp ->
          tp.exec t ~rounds ~size ~corrupt ~digest ~ckpt ~carry ~trace:tr
            ~init ~emit ~merge
      | None ->
          run_broadcast_faulty t ~rounds ?size ?corrupt ?digest ?ckpt ?carry
            ~trace:tr ~init ~emit ~merge ()
  in
  (* The clock counts broadcast rounds only (fault verdict coordinates);
     catch-up replay by recovering nodes is charged to the rounds meter on
     top — the phase honestly costs its length plus the longest replay. *)
  t.clock <- t.clock + rounds;
  charge t (rounds + catchup);
  (match tr with
  | Some s ->
      Trace.emit s
        (Trace.Phase_end
           {
             label;
             clock = t.clock;
             rounds = rounds + catchup;
             bits = t.bits - bits0;
             messages = t.msgs - msgs0;
           })
  | None -> ());
  if metrics then
    Metrics.record_phase ~rounds:(rounds + catchup) ~bits:(t.bits - bits0)
      ~messages:(t.msgs - msgs0);
  states

(* All flood phases over one network share a carrier, so a copy delayed
   past one flood's end is delivered to the next flood on this network. *)
let flood_carrier t =
  match t.flood_carry with
  | Some c -> c
  | None ->
      let c = carrier () in
      t.flood_carry <- Some c;
      c

(* Order-sensitive digest of a flood message's adjacency data (vertex ids
   and neighbor lists; inputs are caller-typed and our corruption model
   only garbles adjacency).  Imap.fold visits keys in sorted order, so the
   digest is deterministic. *)
let flood_digest m =
  let mix h x = h lxor (x + 0x9e3779b9 + (h lsl 6) + (h lsr 2)) in
  Imap.fold
    (fun v (_, nbrs) h -> List.fold_left mix (mix (mix h v) (List.length nbrs)) nbrs)
    m 0

(* Deterministic garbling: splice a phantom (negative, hence impossible)
   neighbor id into the sender's own record. *)
let flood_corrupt ~round ~src ~dst:_ m =
  match Imap.find_opt src m with
  | Some (inp, nbrs) -> Imap.add src (inp, (-(round + 1)) :: nbrs) m
  | None -> m

(* Flood logic parameterized over the broadcast runner, so the
   asynchronous executor reuses the record/digest/corrupt/BFS pipeline
   verbatim: only the message-passing engine underneath differs. *)
let flood_views_with ~run t ~radius =
  let n = Graph.n t.graph in
  let record v = (t.inputs.(v), Array.to_list (Graph.neighbors t.graph v)) in
  (* Message size: 64 bits per id (the vertex and each of its neighbors);
     inputs are not counted, being of caller-chosen type. *)
  let size m =
    Imap.fold (fun _ (_, nbrs) acc -> acc + (64 * (1 + List.length nbrs))) m 0
  in
  (* Flood state and message types coincide, so the shared flood carrier
     doubles as the checkpoint witness: a node that crashes mid-flood and
     recovers resumes from everything it had learned. *)
  let states =
    run ~rounds:radius ~size ~corrupt:flood_corrupt ~digest:flood_digest
      ~ckpt:(flood_carrier t) ~carry:(flood_carrier t)
      ~label:(Printf.sprintf "flood(radius=%d)" radius)
      ~init:(fun v -> Imap.singleton v (record v))
      ~emit:(fun _ s -> s)
      ~merge:(fun _ s inbox ->
        List.fold_left
          (fun acc m -> Imap.union (fun _ a _ -> Some a) acc m)
          s inbox)
  in
  Array.init n (fun v ->
      let known = states.(v) in
      (* Distances from the flooded adjacency data only. *)
      let ids = Array.of_list (List.map fst (Imap.bindings known)) in
      let dist = Hashtbl.create (2 * Array.length ids) in
      let queue = Queue.create () in
      Hashtbl.replace dist v 0;
      Queue.add v queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        let d = Hashtbl.find dist u in
        if d < radius then
          match Imap.find_opt u known with
          | None -> ()
          | Some (_, nbrs) ->
              List.iter
                (fun w ->
                  if Imap.mem w known && not (Hashtbl.mem dist w) then begin
                    Hashtbl.replace dist w (d + 1);
                    Queue.add w queue
                  end)
                nbrs
      done;
      (* The ball is exactly the vertices reached within [radius]; flooding
         may also have leaked ids at distance radius+... no: a record takes
         dist(u,v) rounds to arrive, so everything known is within radius.
         Under faults the reachable set can be a strict subset of the true
         ball (dropped or late records): the view is then partial, which
         {!view_is_complete} detects. *)
      let ball =
        Array.of_list
          (List.filter (fun u -> Hashtbl.mem dist u) (List.map fst (Imap.bindings known)))
      in
      let dist_arr = Array.make n max_int in
      Hashtbl.iter (fun u d -> dist_arr.(u) <- d) dist;
      view_of_ball t ~v ~radius ~ball ~dist:dist_arr)

let flood_views ?trace t ~radius =
  flood_views_with t ~radius
    ~run:(fun ~rounds ~size ~corrupt ~digest ~ckpt ~carry ~label ~init ~emit
              ~merge ->
      run_broadcast t ~rounds ~size ~corrupt ~digest ~ckpt ~carry ~label
        ?trace ~init ~emit ~merge ())

(* Accessors for the sibling executor (Ls_local.Async) only: hidden from
   the documented surface, not from the module system. *)
module Internal = struct
  type nonrec packet = packet = {
    sent : int;
    arrive : int;
    p_src : int;
    p_dst : int;
    p_copy : int;
    payload : univ;
  }

  type nonrec 'i flood_msg = 'i flood_msg

  let inject c m = c.inj m
  let project c u = c.prj u
  let pending t = t.pending
  let set_pending t ps = t.pending <- ps
  let crash_at t = t.crash_at
  let recover_at t = t.recover_at
  let crash_seen t v = t.crash_seen.(v)
  let set_crash_seen t v = t.crash_seen.(v) <- true
  let ckpt t v = t.ckpt_store.(v)
  let set_ckpt t v u = t.ckpt_store.(v) <- u
  let partition_active t = t.partition_active
  let set_partition_active t a = t.partition_active <- a
  let add_bits t k = t.bits <- t.bits + k
  let add_msgs t k = t.msgs <- t.msgs + k
  let add_quarantined t k = t.quarantined <- t.quarantined + k
  let add_dead_letters t k = t.dead_letters <- t.dead_letters + k
  let add_delivered t k = t.delivered <- t.delivered + k
  let advance_clock t r = t.clock <- t.clock + r
  let sink = sink
  let flood_views_via = flood_views_with
end
