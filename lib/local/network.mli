(** The LOCAL model runtime.

    A network is a graph whose nodes each own a unique id, a private input,
    and an independent random stream (exactly the initial knowledge granted
    by the LOCAL model, §2).  Algorithms access the network through
    {!gather}: in [t] communication rounds a node learns precisely its
    radius-[t] ball — topology, inputs, ids — which is the information-
    theoretic characterization of the model.  The runtime meters cost in
    rounds: {!charge} accumulates the cost of a parallel step (all nodes
    acting at once cost the maximum radius used, not the sum).

    For fidelity, {!run_broadcast} executes genuine synchronous message
    passing; {!flood_views} implements ball-collection on top of it, and the
    test suite checks it reconstructs the same views as {!gather}.

    {b Fault injection.}  A network can carry a {!Faults} plan: messages on
    the {!run_broadcast} path are then dropped, duplicated, delayed or
    corrupted per the plan's deterministic verdicts, partition intervals
    cut the graph into sides, and nodes crash at their sampled rounds —
    either forever (crash-stop) or for a bounded interval
    (crash-{e recovery}): the runtime snapshots a crashing node's phase
    state into a per-node checkpoint store and restores it at the
    recovery round, charging the rounds the node was dark as catch-up.
    Verdicts are keyed by the network's monotonically advancing {!clock},
    so a retried phase faces fresh faults while the whole execution stays
    a pure function of the seeds.  The zero-fault plan runs the pre-fault
    executor verbatim — bit-identical behaviour.  {!gather} is
    fault-oblivious by design: it is the information-theoretic primitive,
    whereas faults model the physical message-passing realization.

    {b Integrity.}  When a phase supplies both a [corrupt] hook and a
    [digest], corrupted copies whose digest no longer matches are
    {e quarantined}: billed (they hit the wire) but never delivered, so
    corruption surfaces to the supervision layer as extra loss rather
    than as silently wrong payloads.  Every transmitted copy is accounted
    for: [messages = delivered + pending + quarantined + dead letters]. *)

type 'input t

val create :
  ?faults:Faults.t ->
  ?trace:Ls_obs.Trace.t ->
  Ls_graph.Graph.t ->
  inputs:'input array ->
  seed:int64 ->
  'input t
(** One input per vertex; node [v]'s random stream is derived from [seed]
    and [v].  [faults] (default {!Faults.none}) fixes the fault plan for
    the network's lifetime; crash rounds are sampled at creation.
    [trace] attaches an event sink to every broadcast phase (see
    {!Ls_obs.Trace}); when omitted, phases fall back to the ambient sink. *)

val graph : _ t -> Ls_graph.Graph.t
val input : 'i t -> int -> 'i
val rng : _ t -> int -> Ls_rng.Rng.t
(** Node [v]'s private stream (the same object on every call). *)

(** {1 Fault state} *)

val faults : _ t -> Faults.t

val clock : _ t -> int
(** Absolute broadcast rounds executed so far.  Unlike {!rounds} it is
    never reset: fault verdicts are keyed by it, so repeated phases draw
    fresh (but deterministic) faults. *)

val crashed : _ t -> int -> bool
(** Is node [v] down at the current {!clock}?  A node is down for the
    half-open interval [[crash_at, recover_at)]; under crash-{e stop}
    (no recovery granted) the interval never ends. *)

val permanently_crashed : _ t -> int -> bool
(** Has node [v] crashed with no recovery scheduled?  Implies {!crashed};
    the distinction is what {!Resilient} spends its retry budget on —
    permanent failures cannot be waited out. *)

val quarantined_count : _ t -> int
(** Corrupted copies caught by an integrity digest so far (billed, never
    delivered). *)

val dead_letter_count : _ t -> int
(** Copies that could not be delivered: they arrived at a down node, or
    fell past their phase's end with no [carry] witness to park on. *)

val delivered_count : _ t -> int
(** Copies handed to a live node's [merge].  Together with
    {!pending_count}, {!quarantined_count} and {!dead_letter_count} this
    accounts for every transmitted copy ({!messages}) — the conservation
    invariant the chaos harness checks. *)

(** {1 Round accounting} *)

val rounds : _ t -> int
(** Total rounds charged so far. *)

val charge : _ t -> int -> unit
(** Charge the cost of one parallel phase in which every node communicated
    up to the given radius. *)

val reset_rounds : _ t -> unit

val bits : _ t -> int
(** Total message bits sent so far over all {!run_broadcast} calls whose
    [size] callback was provided.  The paper leaves CONGEST-style bounded
    messages as an open problem (§6); this meter quantifies how far the
    simulated algorithms are from that regime.  Under a fault plan the
    meter counts transmitted copies: dropped messages never hit the wire,
    duplicates pay twice. *)

val reset_bits : _ t -> unit
(** Zero the bit meter (e.g. between fault trials sharing one process, so
    stale counts don't accumulate).  {!clock} is deliberately not
    resettable. *)

val messages : _ t -> int
(** Transmitted message copies over all {!run_broadcast} calls: one per
    directed edge per fault-free round; under faults, dropped messages
    count zero and duplicates count twice (same rule as {!bits}). *)

val pending_count : _ t -> int
(** Delayed copies currently parked across a phase boundary, awaiting a
    later {!run_broadcast} of their message type (see [carry]). *)

val finish : _ t -> unit
(** End-of-simulation accounting: copies still parked when the network is
    finished (no later phase will ever collect them — e.g. a node never
    recovered, or the workload simply ended) migrate to dead letters, so
    [messages = delivered + pending + quarantined + dead letters] holds at
    teardown with [pending = 0].  Idempotent; call it before reading final
    meters from a network that will run no further phases. *)

(** {1 Local views} *)

type 'input view = {
  center : int;  (** Original id of the gathering node. *)
  radius : int;
  vertices : int array;  (** Original ids of [B_radius(center)], sorted. *)
  subgraph : Ls_graph.Graph.t;  (** Induced subgraph on local ids. *)
  local_of_orig : (int, int) Hashtbl.t;
  view_inputs : 'input array;  (** Indexed by local id. *)
  center_local : int;
  dist_center : int array;  (** Graph distance from center, by local id. *)
}

val gather : 'i t -> v:int -> radius:int -> 'i view
(** The view of node [v] after [radius] rounds.  Does {e not} charge
    rounds — callers charge once per parallel phase via {!charge}. *)

val in_view : _ view -> int -> bool
(** Is an original vertex id inside the view? *)

val local : _ view -> int -> int
(** Local id of an original vertex; raises [Not_found] outside the view. *)

val view_is_complete : 'i t -> 'i view -> bool
(** Does the view cover the {e true} radius-[t] ball of its center?
    Always true for {!gather}; a {!flood_views} view under faults may be a
    strict subset — the detectable signature of stalled ball-collection
    that {!Resilient} supervises. *)

val merge_views : 'i t -> 'i view -> 'i view -> 'i view
(** Union of two partial views of the same center and radius: the merged
    view covers every vertex either operand knew (distance labels take the
    pointwise minimum of the two estimates).  Raises [Invalid_argument] if
    centers or radii differ.  This is the accumulation step of
    {!Resilient.collect_views} — knowledge from distinct flood attempts
    composes instead of the larger attempt shadowing the smaller. *)

(** {1 Genuine synchronous message passing} *)

type univ
(** Universal payload wrapper for cross-phase message parking. *)

type 'm carrier
(** A type witness embedding ['m] into {!univ} and back. *)

val carrier : unit -> 'm carrier
(** A fresh witness.  Phases sharing one carrier exchange their delayed
    leftovers; distinct carriers are mutually opaque. *)

val run_broadcast :
  'i t ->
  rounds:int ->
  ?size:('m -> int) ->
  ?corrupt:(round:int -> src:int -> dst:int -> 'm -> 'm) ->
  ?digest:('m -> int) ->
  ?ckpt:'s carrier ->
  ?carry:'m carrier ->
  ?label:string ->
  ?trace:Ls_obs.Trace.t ->
  init:(int -> 's) ->
  emit:(int -> 's -> 'm) ->
  merge:(int -> 's -> 'm list -> 's) ->
  unit ->
  's array
(** Execute [rounds] synchronous rounds: each round, every node [v]
    broadcasts [emit v state] to all neighbors, then folds the received
    messages with [merge].  Charges [rounds] rounds; when [size] is given,
    message bit counts are metered (see {!bits}).

    Under the network's fault plan, each directed (round, edge) message is
    subjected to the plan's verdicts: it may be dropped, duplicated,
    delayed (parked until its absolute arrival round), or — when the
    plan's corrupt rate fires {e and} the caller supplied [corrupt] —
    rewritten by that hook (corruption verdicts are per copy: duplicates
    draw independently).  When [digest] is also given, a rewritten copy
    whose digest differs from the original's is quarantined instead of
    delivered (billed, traced, counted — see {!quarantined_count}); a
    corruption the digest misses — a genuine collision — is delivered
    silently.  Down nodes neither emit nor merge; their states freeze,
    and copies arriving at them become dead letters.  Inbox order is
    deterministic: (send round, sender id, copy index).  Under the
    zero-fault plan the pre-fault executor runs verbatim (bit-identical
    inbox order and metering).

    Crash-recovery: when the plan grants a node a recovery round, the
    node's state is snapshotted at its crash round (if [ckpt], a witness
    for the {e state} type ['s], is given) and restored at its recovery
    round; the rounds it was dark are charged as catch-up on top of the
    phase length ({!clock} advances by [rounds] only — it keys fault
    verdicts, not cost).  Without [ckpt] the node restarts from its
    current phase state (whatever [init] gave it).  A checkpoint taken in
    one phase is restored in a later phase only if that phase's [ckpt]
    carrier can project it ({!flood_views} phases all share one carrier).

    A delayed copy due {e after} the phase ends is not lost when [carry]
    is given: it is parked keyed by its absolute round and delivered, in
    deterministic order ahead of fresh traffic, at the start of the next
    [run_broadcast] sharing the same carrier (already-due copies arrive in
    the first round).  Without [carry] such copies count as dead letters
    (their bits stay billed — they did hit the wire).

    [label] names the phase in trace events; [trace] overrides the
    network's sink for this phase. *)

(** {1 Pluggable transport}

    {!Ls_shard.Exec} installs a transport to run faulty broadcast phases
    across worker OS processes.  The hook replaces only the {e interior}
    of the faulty path: the {!run_broadcast} wrapper still emits
    phase-boundary events, advances the clock, charges rounds and records
    phase metrics.  A transport must therefore do exactly what the
    in-process faulty executor does — mutate the network's meters,
    pending copies and checkpoint store (via [Internal]), emit interior
    fault events to the given sink, and return final states plus the
    catch-up round count.  The zero-fault path never consults the
    transport: pristine runs stay bit-identical to the pre-fault
    runtime no matter what is installed. *)

type transport = {
  exec :
    'i 'm 's.
    'i t ->
    rounds:int ->
    size:('m -> int) option ->
    corrupt:(round:int -> src:int -> dst:int -> 'm -> 'm) option ->
    digest:('m -> int) option ->
    ckpt:'s carrier option ->
    carry:'m carrier option ->
    trace:Ls_obs.Trace.t option ->
    init:(int -> 's) ->
    emit:(int -> 's -> 'm) ->
    merge:(int -> 's -> 'm list -> 's) ->
    's array * int;
}
(** One polymorphic executor serving every (input, message, state)
    instantiation — the arguments are {!run_broadcast}'s, with the
    options made explicit and the trace already resolved to the phase
    sink. *)

val set_transport : transport option -> unit
(** Install ([Some]) or remove ([None]) the process-global transport.
    Workers forked by a transport must clear it immediately after the
    fork, or their own broadcast phases would recurse into it. *)

val transport : unit -> transport option

(**/**)

(** Plumbing for the sibling event-driven executor {!Async} — the one
    module entitled to a network's internals.  Not part of the documented
    surface; everything here preserves the invariants the public API
    states (conservation, clock monotonicity, checkpoint ownership). *)
module Internal : sig
  type packet = {
    sent : int;  (** Absolute round the copy was transmitted. *)
    arrive : int;  (** Absolute round the copy is due. *)
    p_src : int;
    p_dst : int;
    p_copy : int;
    payload : univ;
  }

  type 'i flood_msg

  val inject : 'm carrier -> 'm -> univ
  val project : 'm carrier -> univ -> 'm option
  val pending : _ t -> packet list
  val set_pending : _ t -> packet list -> unit
  val crash_at : _ t -> int array
  val recover_at : _ t -> int array
  val crash_seen : _ t -> int -> bool
  val set_crash_seen : _ t -> int -> unit
  val ckpt : _ t -> int -> univ option
  val set_ckpt : _ t -> int -> univ option -> unit
  val partition_active : _ t -> int option
  val set_partition_active : _ t -> int option -> unit
  val add_bits : _ t -> int -> unit
  val add_msgs : _ t -> int -> unit
  val add_quarantined : _ t -> int -> unit
  val add_dead_letters : _ t -> int -> unit
  val add_delivered : _ t -> int -> unit
  val advance_clock : _ t -> int -> unit

  val sink : _ t -> Ls_obs.Trace.t option -> Ls_obs.Trace.t option
  (** Explicit sink wins, then the network's own, then the ambient one. *)

  val flood_views_via :
    run:
      (rounds:int ->
      size:('i flood_msg -> int) ->
      corrupt:(round:int -> src:int -> dst:int -> 'i flood_msg -> 'i flood_msg) ->
      digest:('i flood_msg -> int) ->
      ckpt:'i flood_msg carrier ->
      carry:'i flood_msg carrier ->
      label:string ->
      init:(int -> 'i flood_msg) ->
      emit:(int -> 'i flood_msg -> 'i flood_msg) ->
      merge:(int -> 'i flood_msg -> 'i flood_msg list -> 'i flood_msg) ->
      'i flood_msg array) ->
    'i t ->
    radius:int ->
    'i view array
  (** {!flood_views} with the broadcast engine abstracted out: the flood
      record/digest/corrupt/BFS pipeline runs unchanged over whichever
      executor [run] supplies. *)
end

(**/**)

val flood_views : ?trace:Ls_obs.Trace.t -> 'i t -> radius:int -> 'i view array
(** Build every node's radius-[t] view using only {!run_broadcast} — the
    executable proof that [gather] grants no more information than [t]
    rounds of real communication.  Under faults, views may be partial
    (see {!view_is_complete}).  All floods over one network share a
    carrier, so copies delayed past one flood's end reach the next; the
    same carrier doubles as the checkpoint witness, so a node that
    crashes mid-flood and recovers resumes from what it had learned.
    Flood messages carry an adjacency digest, so the plan's corrupt rate
    garbles real payloads end-to-end and the corruption is quarantined
    rather than poisoning views (a quarantined record is just a missed
    record: the view stays truthful, possibly incomplete). *)
