(* Bounded retry with exponential backoff for Las Vegas phases running on
   a faulty network, plus stalled-ball-collection supervision.

   The supervisor never hides cost: every backoff round is charged to the
   caller's round meter, and every retry re-runs the supervised phase on
   the live network (whose fault clock has advanced, so the retry faces
   fresh — but deterministic — fault verdicts).  When the budget runs out
   the caller gets a structured degradation report instead of an
   exception: graceful degradation is a result, not a crash. *)

module Graph = Ls_graph.Graph

type policy = {
  retry_budget : int;
  backoff_base : int;
  backoff_factor : int;
}

let policy ?(retry_budget = 3) ?(backoff_base = 1) ?(backoff_factor = 2) () =
  if retry_budget < 0 then
    invalid_arg
      (Printf.sprintf
         "Resilient.policy: retry_budget (--retry-budget) must be >= 0, got %d"
         retry_budget);
  if backoff_base < 1 then
    invalid_arg
      (Printf.sprintf "Resilient.policy: backoff_base must be >= 1, got %d"
         backoff_base);
  if backoff_factor < 1 then
    invalid_arg
      (Printf.sprintf "Resilient.policy: backoff_factor must be >= 1, got %d"
         backoff_factor);
  { retry_budget; backoff_base; backoff_factor }

let default = policy ()

type report = {
  attempts : int;
  backoff_rounds : int;
  degraded : bool;
  reasons : string list;
}

let clean = { attempts = 1; backoff_rounds = 0; degraded = false; reasons = [] }

let describe r =
  if not r.degraded then
    Printf.sprintf "ok after %d attempt(s), %d backoff round(s)" r.attempts
      r.backoff_rounds
  else
    Printf.sprintf "degraded after %d attempt(s), %d backoff round(s): %s"
      r.attempts r.backoff_rounds
      (String.concat "; " r.reasons)

let run pol ?(charge = fun _ -> ()) f =
  let reasons = ref [] in
  let backoff = ref 0 in
  let rec go attempt delay =
    match f ~attempt with
    | Ok x ->
        ( Some x,
          {
            attempts = attempt + 1;
            backoff_rounds = !backoff;
            degraded = false;
            reasons = List.rev !reasons;
          } )
    | Error why ->
        reasons := Printf.sprintf "attempt %d: %s" (attempt + 1) why :: !reasons;
        if attempt >= pol.retry_budget then
          ( None,
            {
              attempts = attempt + 1;
              backoff_rounds = !backoff;
              degraded = true;
              reasons = List.rev !reasons;
            } )
        else begin
          (* Exponential backoff, honestly charged to the round meter. *)
          charge delay;
          backoff := !backoff + delay;
          go (attempt + 1) (delay * pol.backoff_factor)
        end
  in
  go 0 pol.backoff_base

let collect_views net ~policy:pol ~radius =
  let n = Graph.n (Network.graph net) in
  let better a b =
    if
      Array.length b.Network.vertices > Array.length a.Network.vertices
    then b
    else a
  in
  let best = Network.flood_views net ~radius in
  let stalled () =
    (* Crashed nodes are permanent failures, not stalls: no retry can help
       them, so they never justify burning budget. *)
    let count = ref 0 in
    for v = 0 to n - 1 do
      if (not (Network.crashed net v)) && not (Network.view_is_complete net best.(v))
      then incr count
    done;
    !count
  in
  let reasons = ref [] in
  let backoff = ref 0 in
  let attempts = ref 1 in
  let delay = ref pol.backoff_base in
  let retries = ref 0 in
  while stalled () > 0 && !retries < pol.retry_budget do
    reasons :=
      Printf.sprintf "attempt %d: %d node(s) stalled on ball collection"
        !attempts (stalled ())
      :: !reasons;
    Network.charge net !delay;
    backoff := !backoff + !delay;
    delay := !delay * pol.backoff_factor;
    incr retries;
    incr attempts;
    (* Re-flood on the live network: the fault clock has advanced, so this
       attempt draws fresh verdicts.  Keep each node's best view so far —
       flooded knowledge only grows across attempts. *)
    let again = Network.flood_views net ~radius in
    Array.iteri (fun v w -> best.(v) <- better best.(v) w) again
  done;
  let failed =
    Array.init n (fun v ->
        Network.crashed net v || not (Network.view_is_complete net best.(v)))
  in
  let n_failed = Array.fold_left (fun a f -> if f then a + 1 else a) 0 failed in
  if n_failed > 0 then
    reasons :=
      Printf.sprintf
        "budget exhausted with %d node(s) failed (crashed or stalled)" n_failed
      :: !reasons;
  let report =
    {
      attempts = !attempts;
      backoff_rounds = !backoff;
      degraded = n_failed > 0;
      reasons = List.rev !reasons;
    }
  in
  (best, failed, report)
