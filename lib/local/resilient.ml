(* Bounded retry with exponential backoff for Las Vegas phases running on
   a faulty network, plus stalled-ball-collection supervision.

   The supervisor never hides cost: every backoff round is charged to the
   caller's round meter, and every retry re-runs the supervised phase on
   the live network (whose fault clock has advanced, so the retry faces
   fresh — but deterministic — fault verdicts).  When the budget runs out
   the caller gets a structured degradation report instead of an
   exception: graceful degradation is a result, not a crash. *)

module Graph = Ls_graph.Graph
module Trace = Ls_obs.Trace
module Metrics = Ls_obs.Metrics

type policy = {
  retry_budget : int;
  backoff_base : int;
  backoff_factor : int;
}

let policy ?(retry_budget = 3) ?(backoff_base = 1) ?(backoff_factor = 2) () =
  if retry_budget < 0 then
    invalid_arg
      (Printf.sprintf
         "Resilient.policy: retry_budget (--retry-budget) must be >= 0, got %d"
         retry_budget);
  if backoff_base < 1 then
    invalid_arg
      (Printf.sprintf "Resilient.policy: backoff_base must be >= 1, got %d"
         backoff_base);
  if backoff_factor < 1 then
    invalid_arg
      (Printf.sprintf "Resilient.policy: backoff_factor must be >= 1, got %d"
         backoff_factor);
  { retry_budget; backoff_base; backoff_factor }

let default = policy ()

type report = {
  attempts : int;
  backoff_rounds : int;
  degraded : bool;
  reasons : string list;
}

let clean = { attempts = 1; backoff_rounds = 0; degraded = false; reasons = [] }

let describe r =
  if not r.degraded then
    Printf.sprintf "ok after %d attempt(s), %d backoff round(s)" r.attempts
      r.backoff_rounds
  else
    Printf.sprintf "degraded after %d attempt(s), %d backoff round(s): %s"
      r.attempts r.backoff_rounds
      (String.concat "; " r.reasons)

type failure = Transient of string | Permanent of string

let failure_reason = function Transient w | Permanent w -> w

let run_classified ?trace ?(label = "resilient") pol ?(charge = fun _ -> ()) f =
  let tr = Trace.resolve trace in
  let metrics () = Metrics.enabled () in
  let emit_attempt attempt ok detail =
    (match tr with
    | Some s -> Trace.emit s (Trace.Attempt { label; attempt; ok; detail })
    | None -> ());
    if metrics () then Metrics.record_attempt ~retry:(attempt > 0)
  in
  let reasons = ref [] in
  let backoff = ref 0 in
  let rec go attempt delay =
    match f ~attempt with
    | Ok x ->
        emit_attempt attempt true "";
        ( Some x,
          {
            attempts = attempt + 1;
            backoff_rounds = !backoff;
            degraded = false;
            reasons = List.rev !reasons;
          } )
    | Error fl ->
        let why = failure_reason fl in
        let permanent = match fl with Permanent _ -> true | Transient _ -> false in
        emit_attempt attempt false why;
        reasons := Printf.sprintf "attempt %d: %s" (attempt + 1) why :: !reasons;
        (* A permanent failure cannot be waited out: stop immediately and
           keep the remaining budget (and its backoff rounds) unspent. *)
        if permanent || attempt >= pol.retry_budget then begin
          let detail =
            if permanent then Printf.sprintf "permanent: %s" why else why
          in
          (match tr with
          | Some s ->
              Trace.emit s
                (Trace.Degraded { label; attempts = attempt + 1; detail })
          | None -> ());
          if metrics () then Metrics.record_degraded ();
          ( None,
            {
              attempts = attempt + 1;
              backoff_rounds = !backoff;
              degraded = true;
              reasons = List.rev !reasons;
            } )
        end
        else begin
          (* Exponential backoff, honestly charged to the round meter. *)
          (match tr with
          | Some s ->
              Trace.emit s
                (Trace.Backoff { label; attempt = attempt + 1; rounds = delay })
          | None -> ());
          if metrics () then Metrics.record_backoff ~rounds:delay;
          charge delay;
          backoff := !backoff + delay;
          go (attempt + 1) (delay * pol.backoff_factor)
        end
  in
  go 0 pol.backoff_base

let run ?trace ?label pol ?charge f =
  run_classified ?trace ?label pol ?charge (fun ~attempt ->
      match f ~attempt with Ok x -> Ok x | Error why -> Error (Transient why))

let collect_views ?trace ?async ?(label = "collect_views") net ~policy:pol
    ~radius =
  let tr = Trace.resolve trace in
  let metrics = Metrics.enabled () in
  let n = Graph.n (Network.graph net) in
  (* Under the adaptive executor a misfired timeout surfaces here as an
     incomplete view — a transient failure like any other stall, waited
     out with backoff and re-flooded, never a wrong answer.  The stall
     reason records the executor's give-ups so degradation reports name
     the true culprit. *)
  let flood_note = ref "" in
  let flood () =
    match async with
    | None -> Network.flood_views ?trace net ~radius
    | Some cfg ->
        let s0 = Async.stats cfg in
        let vs = Async.flood_views cfg ?trace net ~radius in
        let s1 = Async.stats cfg in
        let dg = s1.Async.gave_up - s0.Async.gave_up
        and dl = s1.Async.late - s0.Async.late in
        flood_note :=
          if dg > 0 || dl > 0 then
            Printf.sprintf " (async: %d timeout give-up(s), %d late cop%s)" dg
              dl
              (if dl = 1 then "y" else "ies")
          else "";
        vs
  in
  let best = flood () in
  let stalled () =
    (* Only permanently crashed nodes are hopeless: no retry can help them,
       so they never justify burning budget.  A node that is down but has a
       recovery scheduled is a transient failure — waiting (backoff) and
       re-flooding can still complete its view. *)
    let count = ref 0 in
    for v = 0 to n - 1 do
      if
        (not (Network.permanently_crashed net v))
        && not (Network.view_is_complete net best.(v))
      then incr count
    done;
    !count
  in
  let emit_attempt attempt stalled_count =
    (match tr with
    | Some s ->
        Trace.emit s
          (Trace.Attempt
             {
               label;
               attempt;
               ok = stalled_count = 0;
               detail = Printf.sprintf "%d node(s) stalled" stalled_count;
             })
    | None -> ());
    if metrics then Metrics.record_attempt ~retry:(attempt > 0)
  in
  let reasons = ref [] in
  let backoff = ref 0 in
  let attempts = ref 1 in
  let delay = ref pol.backoff_base in
  let retries = ref 0 in
  (* One stall census per iteration: it both gates the loop and feeds the
     report (the old code recounted inside the body). *)
  let stalled_now = ref (stalled ()) in
  emit_attempt 0 !stalled_now;
  while !stalled_now > 0 && !retries < pol.retry_budget do
    reasons :=
      Printf.sprintf "attempt %d: %d node(s) stalled on ball collection%s"
        !attempts !stalled_now !flood_note
      :: !reasons;
    (match tr with
    | Some s ->
        Trace.emit s (Trace.Backoff { label; attempt = !attempts; rounds = !delay })
    | None -> ());
    if metrics then Metrics.record_backoff ~rounds:!delay;
    Network.charge net !delay;
    backoff := !backoff + !delay;
    delay := !delay * pol.backoff_factor;
    incr retries;
    incr attempts;
    (* Re-flood on the live network: the fault clock has advanced, so this
       attempt draws fresh verdicts.  Union-merge each node's flooded
       knowledge across attempts: two incomparable partial views compose
       instead of the larger one shadowing the smaller. *)
    let again = flood () in
    Array.iteri (fun v w -> best.(v) <- Network.merge_views net best.(v) w) again;
    stalled_now := stalled ();
    emit_attempt (!attempts - 1) !stalled_now
  done;
  let failed =
    Array.init n (fun v ->
        Network.crashed net v || not (Network.view_is_complete net best.(v)))
  in
  let n_failed = Array.fold_left (fun a f -> if f then a + 1 else a) 0 failed in
  if n_failed > 0 then begin
    reasons :=
      Printf.sprintf
        "budget exhausted with %d node(s) failed (crashed or stalled)" n_failed
      :: !reasons;
    (match tr with
    | Some s ->
        Trace.emit s
          (Trace.Degraded
             {
               label;
               attempts = !attempts;
               detail = Printf.sprintf "%d node(s) failed" n_failed;
             })
    | None -> ());
    if metrics then Metrics.record_degraded ()
  end;
  let report =
    {
      attempts = !attempts;
      backoff_rounds = !backoff;
      degraded = n_failed > 0;
      reasons = List.rev !reasons;
    }
  in
  (best, failed, report)
