(** Bounded retry + exponential backoff supervision of Las Vegas phases.

    The samplers in this repository are Las Vegas: they may fail (a
    Linial–Saks cluster too large, a JVV rejection run out of budget) but
    never lie.  On a faulty network ({!Faults}) a new failure mode appears
    — messages lost, nodes crashed — and this module supervises it: retry
    a failed phase a bounded number of times with exponentially growing
    backoff, charge every backoff round honestly to the round meter, and
    when the budget is exhausted return a {e partial} result plus a
    structured {!report} instead of raising.  Determinism is preserved:
    retries rerun on the live network whose fault {!Network.clock} has
    advanced, so each attempt faces fresh but seed-reproducible faults. *)

type policy = {
  retry_budget : int;  (** Max retries after the first attempt (≥ 0). *)
  backoff_base : int;  (** Rounds of backoff before the first retry (≥ 1). *)
  backoff_factor : int;  (** Geometric growth of the backoff (≥ 1). *)
}

val policy :
  ?retry_budget:int -> ?backoff_base:int -> ?backoff_factor:int -> unit -> policy
(** Validated constructor (defaults: budget 3, base 1, factor 2); raises
    [Invalid_argument] naming the offending parameter — the CLI flag
    [--retry-budget] funnels through this check. *)

val default : policy

type report = {
  attempts : int;  (** Attempts actually executed (≥ 1). *)
  backoff_rounds : int;  (** Total backoff charged to the round meter. *)
  degraded : bool;  (** Budget exhausted before full success? *)
  reasons : string list;  (** One line per failed attempt. *)
}

val clean : report
(** The trivial report of an unsupervised (fault-free) run. *)

val describe : report -> string

type failure =
  | Transient of string
      (** Might succeed on retry: lost messages, a stalled flood, a node
          that is down but scheduled to recover.  Spends retry budget. *)
  | Permanent of string
      (** Cannot be waited out: every relevant node crash-stopped, or the
          phase is structurally impossible.  The supervisor stops
          immediately and keeps the remaining budget unspent. *)

val failure_reason : failure -> string

val run :
  ?trace:Ls_obs.Trace.t ->
  ?label:string ->
  policy ->
  ?charge:(int -> unit) ->
  (attempt:int -> ('a, string) result) ->
  'a option * report
(** [run pol ~charge f] calls [f ~attempt:0], retrying on [Error] up to
    [pol.retry_budget] times with backoff [base], [base*factor], ...
    rounds charged through [charge] before each retry.  Returns the first
    [Ok] (with a non-degraded report) or [None] with a degraded report
    listing every failure reason.  Each attempt, backoff and degradation
    is emitted to [trace] (or the ambient sink) under [label].  Every
    [Error] is treated as {!Transient}; use {!run_classified} when the
    phase can tell permanent failures apart. *)

val run_classified :
  ?trace:Ls_obs.Trace.t ->
  ?label:string ->
  policy ->
  ?charge:(int -> unit) ->
  (attempt:int -> ('a, failure) result) ->
  'a option * report
(** Like {!run}, but the phase classifies its failures.  A {!Permanent}
    failure degrades immediately — no backoff is charged and no further
    attempt is made (retrying against a crash-stopped node only burns
    rounds); the [Degraded] trace event's detail is prefixed with
    ["permanent: "].  {!Transient} failures behave exactly as [Error]
    does under {!run}. *)

val collect_views :
  ?trace:Ls_obs.Trace.t ->
  ?async:Async.t ->
  ?label:string ->
  'i Network.t ->
  policy:policy ->
  radius:int ->
  'i Network.view array * bool array * report
(** Ball collection with stalled-view supervision: flood, detect nodes
    whose view misses part of their true ball ({!Network.view_is_complete}),
    and re-flood with backoff while any {e salvageable} node is stalled
    and budget remains.  Only {e permanently} crashed nodes
    ({!Network.permanently_crashed}) are hopeless and never burn retry
    budget; a node inside its crash-recovery interval is a transient
    failure — backoff plus re-flooding can complete its view after it
    restores its checkpoint.  Flooded knowledge is {e union-merged} across
    attempts ({!Network.merge_views}), so incomparable partial views
    compose.  Returns [(views, failed, report)]: [failed.(v)] is set iff
    [v] crashed or its final view is still incomplete; [report.degraded]
    iff any node failed.

    [async] floods over the event-driven executor instead of the
    synchronous one.  Under {!Async.Adaptive} a misfired timeout costs
    only completeness, so it lands here as an ordinary stall — a
    {e transient} failure to wait out and retry, never a wrong answer;
    the stall reasons then record the executor's give-up and late-copy
    counts. *)
