(** Bounded retry + exponential backoff supervision of Las Vegas phases.

    The samplers in this repository are Las Vegas: they may fail (a
    Linial–Saks cluster too large, a JVV rejection run out of budget) but
    never lie.  On a faulty network ({!Faults}) a new failure mode appears
    — messages lost, nodes crashed — and this module supervises it: retry
    a failed phase a bounded number of times with exponentially growing
    backoff, charge every backoff round honestly to the round meter, and
    when the budget is exhausted return a {e partial} result plus a
    structured {!report} instead of raising.  Determinism is preserved:
    retries rerun on the live network whose fault {!Network.clock} has
    advanced, so each attempt faces fresh but seed-reproducible faults. *)

type policy = {
  retry_budget : int;  (** Max retries after the first attempt (≥ 0). *)
  backoff_base : int;  (** Rounds of backoff before the first retry (≥ 1). *)
  backoff_factor : int;  (** Geometric growth of the backoff (≥ 1). *)
}

val policy :
  ?retry_budget:int -> ?backoff_base:int -> ?backoff_factor:int -> unit -> policy
(** Validated constructor (defaults: budget 3, base 1, factor 2); raises
    [Invalid_argument] naming the offending parameter — the CLI flag
    [--retry-budget] funnels through this check. *)

val default : policy

type report = {
  attempts : int;  (** Attempts actually executed (≥ 1). *)
  backoff_rounds : int;  (** Total backoff charged to the round meter. *)
  degraded : bool;  (** Budget exhausted before full success? *)
  reasons : string list;  (** One line per failed attempt. *)
}

val clean : report
(** The trivial report of an unsupervised (fault-free) run. *)

val describe : report -> string

val run :
  ?trace:Ls_obs.Trace.t ->
  ?label:string ->
  policy ->
  ?charge:(int -> unit) ->
  (attempt:int -> ('a, string) result) ->
  'a option * report
(** [run pol ~charge f] calls [f ~attempt:0], retrying on [Error] up to
    [pol.retry_budget] times with backoff [base], [base*factor], ...
    rounds charged through [charge] before each retry.  Returns the first
    [Ok] (with a non-degraded report) or [None] with a degraded report
    listing every failure reason.  Each attempt, backoff and degradation
    is emitted to [trace] (or the ambient sink) under [label]. *)

val collect_views :
  ?trace:Ls_obs.Trace.t ->
  ?label:string ->
  'i Network.t ->
  policy:policy ->
  radius:int ->
  'i Network.view array * bool array * report
(** Ball collection with stalled-view supervision: flood, detect nodes
    whose view misses part of their true ball ({!Network.view_is_complete}),
    and re-flood with backoff while any {e alive} node is stalled and
    budget remains.  Crashed nodes are permanent failures — they never
    burn retry budget.  Flooded knowledge is {e union-merged} across
    attempts ({!Network.merge_views}), so incomparable partial views
    compose.  Returns [(views, failed, report)]: [failed.(v)] is set iff
    [v] crashed or its final view is still incomplete; [report.degraded]
    iff any node failed. *)
