module Graph = Ls_graph.Graph

let src = Logs.Src.create "locsample.scheduler" ~doc:"SLOCAL-to-LOCAL compiler (Lemma 3.1)"

module Log = (val Logs.src_log src : Logs.LOG)

type stats = {
  rounds : int;
  decomposition_rounds : int;
  colors : int;
  clusters : int;
  max_cluster_radius : int;
  failures : int;
  order : int array;
  failed : bool array;
}

type plan = {
  p_locality : int;
  p_order : int array;
  p_failed : bool array;
  p_rounds : int;
  p_decomposition_rounds : int;
  p_colors : int;
  p_clusters : int;
  p_max_cluster_radius : int;
  p_failures : int;
}

(* The expensive, cacheable half: power graph, Linial–Saks decomposition,
   the realized global ordering, and the round bill.  A plan is a pure
   function of (graph, locality, the rng's draw sequence, caps) and holds
   no reference to the graph or the decomposition, so it can sit in an
   LRU cache for as long as the keying seed stays meaningful. *)
let compile_plan ~graph ~locality ~rng ?radius_cap ?phase_cap () =
  let power = Graph.power graph (locality + 1) in
  let d = Decomposition.linial_saks ?radius_cap ?phase_cap power rng in
  (* Global order: colors in increasing order; within a color, clusters in
     index order; within a cluster, members by distance from the center
     (BFS order), ties by id — any fixed rule yields a valid adversarial
     ordering pi. *)
  let order = ref [] in
  let by_color = Array.make d.Decomposition.num_colors [] in
  Array.iteri
    (fun idx cl ->
      by_color.(cl.Decomposition.color) <- idx :: by_color.(cl.Decomposition.color))
    d.Decomposition.clusters;
  Array.iteri
    (fun _color idxs ->
      List.iter
        (fun idx ->
          let cl = d.Decomposition.clusters.(idx) in
          let dist = Graph.bfs_distances power cl.Decomposition.center in
          let members = Array.copy cl.Decomposition.members in
          Array.sort
            (fun a b -> compare (dist.(a), a) (dist.(b), b))
            members;
          Array.iter (fun v -> order := v :: !order) members)
        (List.rev idxs))
    by_color;
  let failed_vertices = ref [] in
  Array.iteri
    (fun v is_failed -> if is_failed then failed_vertices := v :: !failed_vertices)
    d.Decomposition.failed;
  let order =
    Array.of_list (List.rev_append !order (List.rev !failed_vertices))
  in
  (* Round accounting (documented in the interface). *)
  let decomposition_rounds =
    d.Decomposition.phase_cap * d.Decomposition.radius_cap * (locality + 1)
  in
  let sim_rounds = ref 0 in
  for c = 0 to d.Decomposition.num_colors - 1 do
    let r_c = Decomposition.max_radius_of_color d c in
    sim_rounds := !sim_rounds + (2 * ((r_c * (locality + 1)) + locality))
  done;
  let max_cluster_radius =
    Array.fold_left
      (fun acc cl -> max acc cl.Decomposition.radius)
      0 d.Decomposition.clusters
  in
  let failures =
    Array.fold_left
      (fun acc f -> if f then acc + 1 else acc)
      0 d.Decomposition.failed
  in
  {
    p_locality = locality;
    p_order = order;
    p_failed = Array.copy d.Decomposition.failed;
    p_rounds = decomposition_rounds + !sim_rounds;
    p_decomposition_rounds = decomposition_rounds;
    p_colors = d.Decomposition.num_colors;
    p_clusters = Array.length d.Decomposition.clusters;
    p_max_cluster_radius = max_cluster_radius;
    p_failures = failures;
  }

(* Execute a payload on a (possibly cached) plan.  Emission order matches
   the historical [compile]: payload first, then the debug line, the
   Decomposition trace event and the metrics bump — so a cache hit is
   observationally identical to a fresh compilation, trace included. *)
let run_plan plan ?trace ~run () =
  run ~order:plan.p_order;
  Log.debug (fun m ->
      m "compile: locality=%d colors=%d clusters=%d rounds=%d (decomposition %d)"
        plan.p_locality plan.p_colors plan.p_clusters plan.p_rounds
        plan.p_decomposition_rounds);
  (match Ls_obs.Trace.resolve trace with
  | Some s ->
      Ls_obs.Trace.emit s
        (Ls_obs.Trace.Decomposition
           {
             locality = plan.p_locality;
             colors = plan.p_colors;
             clusters = plan.p_clusters;
             failures = plan.p_failures;
             max_cluster_radius = plan.p_max_cluster_radius;
             rounds = plan.p_rounds;
             decomposition_rounds = plan.p_decomposition_rounds;
           })
  | None -> ());
  if Ls_obs.Metrics.enabled () then
    Ls_obs.Metrics.record_decomposition ~failures:plan.p_failures;
  {
    rounds = plan.p_rounds;
    decomposition_rounds = plan.p_decomposition_rounds;
    colors = plan.p_colors;
    clusters = plan.p_clusters;
    max_cluster_radius = plan.p_max_cluster_radius;
    failures = plan.p_failures;
    order = plan.p_order;
    failed = plan.p_failed;
  }

let compile ~graph ~locality ~rng ?radius_cap ?phase_cap ?trace ~run () =
  let plan = compile_plan ~graph ~locality ~rng ?radius_cap ?phase_cap () in
  run_plan plan ?trace ~run ()
