module Graph = Ls_graph.Graph

let src = Logs.Src.create "locsample.scheduler" ~doc:"SLOCAL-to-LOCAL compiler (Lemma 3.1)"

module Log = (val Logs.src_log src : Logs.LOG)

type stats = {
  rounds : int;
  decomposition_rounds : int;
  colors : int;
  clusters : int;
  max_cluster_radius : int;
  failures : int;
  order : int array;
  failed : bool array;
}

let compile ~graph ~locality ~rng ?radius_cap ?phase_cap ?trace ~run () =
  let power = Graph.power graph (locality + 1) in
  let d = Decomposition.linial_saks ?radius_cap ?phase_cap power rng in
  (* Global order: colors in increasing order; within a color, clusters in
     index order; within a cluster, members by distance from the center
     (BFS order), ties by id — any fixed rule yields a valid adversarial
     ordering pi. *)
  let order = ref [] in
  let by_color = Array.make d.Decomposition.num_colors [] in
  Array.iteri
    (fun idx cl ->
      by_color.(cl.Decomposition.color) <- idx :: by_color.(cl.Decomposition.color))
    d.Decomposition.clusters;
  Array.iteri
    (fun _color idxs ->
      List.iter
        (fun idx ->
          let cl = d.Decomposition.clusters.(idx) in
          let dist = Graph.bfs_distances power cl.Decomposition.center in
          let members = Array.copy cl.Decomposition.members in
          Array.sort
            (fun a b -> compare (dist.(a), a) (dist.(b), b))
            members;
          Array.iter (fun v -> order := v :: !order) members)
        (List.rev idxs))
    by_color;
  let failed_vertices = ref [] in
  Array.iteri
    (fun v is_failed -> if is_failed then failed_vertices := v :: !failed_vertices)
    d.Decomposition.failed;
  let order =
    Array.of_list (List.rev_append !order (List.rev !failed_vertices))
  in
  run ~order;
  (* Round accounting (documented in the interface). *)
  let decomposition_rounds =
    d.Decomposition.phase_cap * d.Decomposition.radius_cap * (locality + 1)
  in
  let sim_rounds = ref 0 in
  for c = 0 to d.Decomposition.num_colors - 1 do
    let r_c = Decomposition.max_radius_of_color d c in
    sim_rounds := !sim_rounds + (2 * ((r_c * (locality + 1)) + locality))
  done;
  let max_cluster_radius =
    Array.fold_left
      (fun acc cl -> max acc cl.Decomposition.radius)
      0 d.Decomposition.clusters
  in
  Log.debug (fun m ->
      m "compile: locality=%d colors=%d clusters=%d rounds=%d (decomposition %d)"
        locality d.Decomposition.num_colors
        (Array.length d.Decomposition.clusters)
        (decomposition_rounds + !sim_rounds)
        decomposition_rounds);
  let failures =
    Array.fold_left
      (fun acc f -> if f then acc + 1 else acc)
      0 d.Decomposition.failed
  in
  (match Ls_obs.Trace.resolve trace with
  | Some s ->
      Ls_obs.Trace.emit s
        (Ls_obs.Trace.Decomposition
           {
             locality;
             colors = d.Decomposition.num_colors;
             clusters = Array.length d.Decomposition.clusters;
             failures;
             max_cluster_radius;
             rounds = decomposition_rounds + !sim_rounds;
             decomposition_rounds;
           })
  | None -> ());
  if Ls_obs.Metrics.enabled () then Ls_obs.Metrics.record_decomposition ~failures;
  {
    rounds = decomposition_rounds + !sim_rounds;
    decomposition_rounds;
    colors = d.Decomposition.num_colors;
    clusters = Array.length d.Decomposition.clusters;
    max_cluster_radius;
    failures;
    order;
    failed = Array.copy d.Decomposition.failed;
  }
