(** The SLOCAL → LOCAL compiler (Lemma 3.1, after Ghaffari–Kuhn–Maus).

    Given an SLOCAL algorithm with locality [r], compute a Linial–Saks
    decomposition of the power graph [G^{r+1}] and process color classes
    sequentially; within a color class all clusters run in parallel (they
    are [> r]-separated in [G], so concurrent steps cannot interact), and
    within a cluster the nodes are processed sequentially by the cluster
    center.  The resulting global order [π] is (color, cluster, BFS-from-
    center position); the payload runs exactly as the sequential algorithm
    would on [π], so conditioned on no failure the output distribution is
    [μ̂_{I,π}] — the property Lemma 3.1 needs.

    Failures: vertices left unclustered by the truncated decomposition get
    [F''_v = 1].  The decomposition uses its own random stream, independent
    of the payload's node streams, so [F''] is independent of the payload
    output, again as in Lemma 3.1.

    Round accounting, charged to the network: color class [c] costs
    [2·(R_c·(r+1) + r)] rounds — the center collects the states in its
    cluster plus the radius-[r] halo ([R_c] hops in [G^{r+1}], each worth
    [r+1] rounds in [G], plus [r]), computes, and ships results back — plus
    the decomposition itself, charged [phase_cap · radius_cap · (r+1)]
    rounds (each phase is one candidate election of depth [radius_cap] in
    [G^{r+1}]). *)

type stats = {
  rounds : int;  (** Total LOCAL rounds charged (decomposition + simulation). *)
  decomposition_rounds : int;
  colors : int;
  clusters : int;
  max_cluster_radius : int;  (** In power-graph hops. *)
  failures : int;  (** Number of [F''_v = 1] vertices. *)
  order : int array;  (** The realized global ordering [π] (failed vertices appended last). *)
  failed : bool array;
}

val compile :
  graph:Ls_graph.Graph.t ->
  locality:int ->
  rng:Ls_rng.Rng.t ->
  ?radius_cap:int ->
  ?phase_cap:int ->
  ?trace:Ls_obs.Trace.t ->
  run:(order:int array -> unit) ->
  unit ->
  stats
(** [compile ~graph ~locality ~rng ~run ()] builds the schedule and invokes
    [run ~order] once with the realized ordering; the caller's closure
    executes its SLOCAL payload on that order.  Failed vertices appear at
    the end of [order] so the payload still produces a total output (their
    outputs are discarded by the failure flags, as in the paper's model
    where failures only gate the conditional guarantee).  The realized
    decomposition stats are emitted to [trace] (or the ambient sink). *)
