(** The SLOCAL → LOCAL compiler (Lemma 3.1, after Ghaffari–Kuhn–Maus).

    Given an SLOCAL algorithm with locality [r], compute a Linial–Saks
    decomposition of the power graph [G^{r+1}] and process color classes
    sequentially; within a color class all clusters run in parallel (they
    are [> r]-separated in [G], so concurrent steps cannot interact), and
    within a cluster the nodes are processed sequentially by the cluster
    center.  The resulting global order [π] is (color, cluster, BFS-from-
    center position); the payload runs exactly as the sequential algorithm
    would on [π], so conditioned on no failure the output distribution is
    [μ̂_{I,π}] — the property Lemma 3.1 needs.

    Failures: vertices left unclustered by the truncated decomposition get
    [F''_v = 1].  The decomposition uses its own random stream, independent
    of the payload's node streams, so [F''] is independent of the payload
    output, again as in Lemma 3.1.

    Round accounting, charged to the network: color class [c] costs
    [2·(R_c·(r+1) + r)] rounds — the center collects the states in its
    cluster plus the radius-[r] halo ([R_c] hops in [G^{r+1}], each worth
    [r+1] rounds in [G], plus [r]), computes, and ships results back — plus
    the decomposition itself, charged [phase_cap · radius_cap · (r+1)]
    rounds (each phase is one candidate election of depth [radius_cap] in
    [G^{r+1}]). *)

type stats = {
  rounds : int;  (** Total LOCAL rounds charged (decomposition + simulation). *)
  decomposition_rounds : int;
  colors : int;
  clusters : int;
  max_cluster_radius : int;  (** In power-graph hops. *)
  failures : int;  (** Number of [F''_v = 1] vertices. *)
  order : int array;  (** The realized global ordering [π] (failed vertices appended last). *)
  failed : bool array;
}

type plan = {
  p_locality : int;
  p_order : int array;
      (** The realized global ordering [π] (failed vertices appended last). *)
  p_failed : bool array;
  p_rounds : int;
  p_decomposition_rounds : int;
  p_colors : int;
  p_clusters : int;
  p_max_cluster_radius : int;
  p_failures : int;
}
(** A compiled schedule: the expensive half of {!compile} — power graph,
    Linial–Saks decomposition, realized ordering, round bill — detached
    from any payload.  A plan is a pure function of
    [(graph, locality, rng draw sequence, caps)] and holds no reference to
    the graph, so it can be cached and replayed against many payloads
    (the serving engine keys an LRU of plans on the canonical request
    hash). *)

val compile_plan :
  graph:Ls_graph.Graph.t ->
  locality:int ->
  rng:Ls_rng.Rng.t ->
  ?radius_cap:int ->
  ?phase_cap:int ->
  unit ->
  plan
(** Build the schedule only; no payload runs, nothing is traced.  Consumes
    exactly the same draws from [rng] as {!compile} does. *)

val run_plan : plan -> ?trace:Ls_obs.Trace.t -> run:(order:int array -> unit) -> unit -> stats
(** Execute a payload against a (possibly cached) plan: invokes
    [run ~order] once, then emits the Decomposition trace event and
    metrics, exactly as {!compile} would — a cache hit is observationally
    identical to a fresh compilation. *)

val compile :
  graph:Ls_graph.Graph.t ->
  locality:int ->
  rng:Ls_rng.Rng.t ->
  ?radius_cap:int ->
  ?phase_cap:int ->
  ?trace:Ls_obs.Trace.t ->
  run:(order:int array -> unit) ->
  unit ->
  stats
(** [compile ~graph ~locality ~rng ~run ()] builds the schedule and invokes
    [run ~order] once with the realized ordering; the caller's closure
    executes its SLOCAL payload on that order.  Failed vertices appear at
    the end of [order] so the payload still produces a total output (their
    outputs are discarded by the failure flags, as in the paper's model
    where failures only gate the conditional guarantee).  The realized
    decomposition stats are emitted to [trace] (or the ambient sink).
    Equivalent to [run_plan (compile_plan ...) ~trace ~run ()]. *)
