(* Process-global degraded-mode registry: the state machine's spine.

   A subsystem ("snapshot", "accept", "checkpoint", "fork") enters a
   degraded mode when a resource fault forces it to shed work, and
   exits when the operation succeeds again.  The registry keeps the
   current set, and makes every {e transition} observable: an enter
   emits {!Trace.Degraded_enter} + bumps [degraded_enters], an exit
   emits {!Trace.Degraded_exit} + bumps [degraded_exits].  Re-entering
   an already-degraded subsystem only refreshes the reason — no event,
   no double-count — so at any clean shutdown enters = exits, the
   pairing invariant the chaos suite checks from the trace.

   The registry is what the serve [Health] protocol frame and
   [locsample health] report. *)

let m = Mutex.create ()
let tbl : (string, string) Hashtbl.t = Hashtbl.create 8

type status = Healthy | Degraded of (string * string) list

let set_degraded ~subsystem ~reason =
  Mutex.lock m;
  let fresh = not (Hashtbl.mem tbl subsystem) in
  Hashtbl.replace tbl subsystem reason;
  Mutex.unlock m;
  if fresh then begin
    Trace.to_ambient (Trace.Degraded_enter { subsystem; reason });
    Metrics.record_degraded_enter ()
  end

let clear ~subsystem =
  Mutex.lock m;
  let had = Hashtbl.mem tbl subsystem in
  Hashtbl.remove tbl subsystem;
  Mutex.unlock m;
  if had then begin
    Trace.to_ambient (Trace.Degraded_exit { subsystem });
    Metrics.record_degraded_exit ()
  end

(* Sorted for deterministic wire payloads and [describe] strings. *)
let degraded () =
  Mutex.lock m;
  let l = Hashtbl.fold (fun s r acc -> (s, r) :: acc) tbl [] in
  Mutex.unlock m;
  List.sort compare l

let status () =
  match degraded () with [] -> Healthy | l -> Degraded l

let is_degraded () =
  Mutex.lock m;
  let d = Hashtbl.length tbl > 0 in
  Mutex.unlock m;
  d

let clear_all () =
  List.iter (fun (subsystem, _) -> clear ~subsystem) (degraded ())

let reset () =
  Mutex.lock m;
  Hashtbl.reset tbl;
  Mutex.unlock m

let describe () =
  match degraded () with
  | [] -> "ok"
  | l ->
      Printf.sprintf "degraded(%s)"
        (String.concat ";"
           (List.map (fun (s, r) -> Printf.sprintf "%s=%s" s r) l))
