(** Process-global degraded-mode registry.

    Subsystems ("snapshot", "accept", "checkpoint", "fork") register
    here when a resource fault forces them to shed work, and clear
    themselves when the operation succeeds again.  Transitions are
    observable — enter emits {!Trace.Degraded_enter} and bumps the
    [degraded_enters] metric, exit emits {!Trace.Degraded_exit} and
    bumps [degraded_exits]; refreshing an already-degraded subsystem
    is silent, so enters and exits pair one-to-one.  The registry is
    what the serve [Health] frame and [locsample health] report. *)

type status = Healthy | Degraded of (string * string) list
    (** [(subsystem, reason)] pairs, sorted by subsystem. *)

val set_degraded : subsystem:string -> reason:string -> unit
(** Enter (or refresh) a degraded mode.  Emits the trace event and
    metric only on the [ok -> degraded] transition. *)

val clear : subsystem:string -> unit
(** Exit the subsystem's degraded mode; silent if it was not degraded. *)

val clear_all : unit -> unit
(** {!clear} every degraded subsystem — called on graceful shutdown so
    every enter has its paired, traced exit. *)

val status : unit -> status
val is_degraded : unit -> bool

val degraded : unit -> (string * string) list
(** Current [(subsystem, reason)] pairs, sorted by subsystem. *)

val describe : unit -> string
(** ["ok"] or ["degraded(sub=reason;...)"] — the CLI rendering. *)

val reset : unit -> unit
(** Forget everything {e without} emitting exits: process startup and
    test isolation, never a recovery path. *)
