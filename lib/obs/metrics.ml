(* Global counters, enabled-flag guarded.  Sums are order-independent, so
   every field except [per_domain] is invariant under the domain count. *)

type snapshot = {
  phases : int;
  rounds : int;
  bits : int;
  messages : int;
  drops : int;
  duplicates : int;
  delays : int;
  corruptions : int;
  crashes : int;
  partitions : int;
  heals : int;
  checkpoints : int;
  restores : int;
  quarantines : int;
  dead_letters : int;
  attempts : int;
  retries : int;
  backoff_rounds : int;
  degradations : int;
  decompositions : int;
  decomposition_failures : int;
  batches : int;
  items : int;
  max_queue : int;
  per_domain : int array;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let phases = Atomic.make 0
let rounds = Atomic.make 0
let bits = Atomic.make 0
let messages = Atomic.make 0
let drops = Atomic.make 0
let duplicates = Atomic.make 0
let delays = Atomic.make 0
let corruptions = Atomic.make 0
let crashes = Atomic.make 0
let partitions = Atomic.make 0
let heals = Atomic.make 0
let checkpoints = Atomic.make 0
let restores = Atomic.make 0
let quarantines = Atomic.make 0
let dead_letters = Atomic.make 0
let attempts = Atomic.make 0
let retries = Atomic.make 0
let backoff_rounds = Atomic.make 0
let degradations = Atomic.make 0
let decompositions = Atomic.make 0
let decomposition_failures = Atomic.make 0
let batches = Atomic.make 0
let items = Atomic.make 0
let max_queue = Atomic.make 0
let per_domain_lock = Mutex.create ()
let per_domain = ref [||]

let add c k = if enabled () then ignore (Atomic.fetch_and_add c k)
let bump c = add c 1

let record_phase ~rounds:r ~bits:b ~messages:m =
  if enabled () then begin
    bump phases;
    add rounds r;
    add bits b;
    add messages m
  end

let record_drop () = bump drops
let record_duplicate () = bump duplicates
let record_delay () = bump delays
let record_corruption () = bump corruptions
let record_crash () = bump crashes
let record_partition () = bump partitions
let record_heal () = bump heals
let record_checkpoint () = bump checkpoints
let record_restore () = bump restores
let record_quarantine () = bump quarantines
let record_dead_letters k = add dead_letters k

let record_attempt ~retry =
  if enabled () then begin
    bump attempts;
    if retry then bump retries
  end

let record_backoff ~rounds:r = add backoff_rounds r
let record_degraded () = bump degradations

let record_decomposition ~failures =
  if enabled () then begin
    bump decompositions;
    add decomposition_failures failures
  end

let rec raise_max c k =
  let cur = Atomic.get c in
  if k > cur && not (Atomic.compare_and_set c cur k) then raise_max c k

let record_batch ~items:n ~per_worker =
  if enabled () then begin
    bump batches;
    add items n;
    raise_max max_queue n;
    Mutex.lock per_domain_lock;
    let need = Array.length per_worker in
    if Array.length !per_domain < need then begin
      let grown = Array.make need 0 in
      Array.blit !per_domain 0 grown 0 (Array.length !per_domain);
      per_domain := grown
    end;
    Array.iteri (fun i k -> !per_domain.(i) <- !per_domain.(i) + k) per_worker;
    Mutex.unlock per_domain_lock
  end

let snapshot () =
  Mutex.lock per_domain_lock;
  let pd = Array.copy !per_domain in
  Mutex.unlock per_domain_lock;
  {
    phases = Atomic.get phases;
    rounds = Atomic.get rounds;
    bits = Atomic.get bits;
    messages = Atomic.get messages;
    drops = Atomic.get drops;
    duplicates = Atomic.get duplicates;
    delays = Atomic.get delays;
    corruptions = Atomic.get corruptions;
    crashes = Atomic.get crashes;
    partitions = Atomic.get partitions;
    heals = Atomic.get heals;
    checkpoints = Atomic.get checkpoints;
    restores = Atomic.get restores;
    quarantines = Atomic.get quarantines;
    dead_letters = Atomic.get dead_letters;
    attempts = Atomic.get attempts;
    retries = Atomic.get retries;
    backoff_rounds = Atomic.get backoff_rounds;
    degradations = Atomic.get degradations;
    decompositions = Atomic.get decompositions;
    decomposition_failures = Atomic.get decomposition_failures;
    batches = Atomic.get batches;
    items = Atomic.get items;
    max_queue = Atomic.get max_queue;
    per_domain = pd;
  }

let reset () =
  List.iter
    (fun c -> Atomic.set c 0)
    [
      phases;
      rounds;
      bits;
      messages;
      drops;
      duplicates;
      delays;
      corruptions;
      crashes;
      partitions;
      heals;
      checkpoints;
      restores;
      quarantines;
      dead_letters;
      attempts;
      retries;
      backoff_rounds;
      degradations;
      decompositions;
      decomposition_failures;
      batches;
      items;
      max_queue;
    ];
  Mutex.lock per_domain_lock;
  per_domain := [||];
  Mutex.unlock per_domain_lock

let print oc s =
  let p fmt = Printf.fprintf oc fmt in
  p "metrics:\n";
  p "  phases %d  rounds %d  bits %d  messages %d\n" s.phases s.rounds s.bits
    s.messages;
  p "  faults: drop %d  duplicate %d  delay %d  corrupt %d  crash %d\n" s.drops
    s.duplicates s.delays s.corruptions s.crashes;
  p
    "  recovery: partitions %d  heals %d  checkpoints %d  restores %d  \
     quarantines %d  dead_letters %d\n"
    s.partitions s.heals s.checkpoints s.restores s.quarantines s.dead_letters;
  p "  supervision: attempts %d  retries %d  backoff_rounds %d  degraded %d\n"
    s.attempts s.retries s.backoff_rounds s.degradations;
  p "  decompositions %d (failures %d)\n" s.decompositions
    s.decomposition_failures;
  p "  pool: batches %d  items %d  max_queue %d  per_domain [%s]\n" s.batches
    s.items s.max_queue
    (String.concat "; " (Array.to_list (Array.map string_of_int s.per_domain)))
