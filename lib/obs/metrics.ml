(* Global counters, enabled-flag guarded.  Sums are order-independent, so
   every field except [per_domain] is invariant under the domain count. *)

type snapshot = {
  phases : int;
  rounds : int;
  bits : int;
  messages : int;
  drops : int;
  duplicates : int;
  delays : int;
  corruptions : int;
  crashes : int;
  partitions : int;
  heals : int;
  checkpoints : int;
  restores : int;
  quarantines : int;
  dead_letters : int;
  attempts : int;
  retries : int;
  backoff_rounds : int;
  degradations : int;
  decompositions : int;
  decomposition_failures : int;
  timeouts : int;
  retransmits : int;
  acks : int;
  barriers : int;
  control_msgs : int;
  late_letters : int;
  sketch_adds : int;
  sketch_merges : int;
  sketch_evictions : int;
  shard_spawns : int;
  shard_restarts : int;
  shard_probes : int;
  serve_requests : int;
  serve_batches : int;
  serve_coalesced : int;
  serve_cache_hits : int;
  serve_cache_misses : int;
  serve_cache_evictions : int;
  serve_rejections : int;
  serve_expired : int;
  serve_snapshot_hits : int;
  serve_drains : int;
  serve_restarts : int;
  sysfaults : int;
  degraded_enters : int;
  degraded_exits : int;
  fork_retries : int;
  ckpt_skips : int;
  serve_snapshot_failures : int;
  serve_shed : int;
  latency_hist : int array;
  batches : int;
  items : int;
  max_queue : int;
  per_domain : int array;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let phases = Atomic.make 0
let rounds = Atomic.make 0
let bits = Atomic.make 0
let messages = Atomic.make 0
let drops = Atomic.make 0
let duplicates = Atomic.make 0
let delays = Atomic.make 0
let corruptions = Atomic.make 0
let crashes = Atomic.make 0
let partitions = Atomic.make 0
let heals = Atomic.make 0
let checkpoints = Atomic.make 0
let restores = Atomic.make 0
let quarantines = Atomic.make 0
let dead_letters = Atomic.make 0
let attempts = Atomic.make 0
let retries = Atomic.make 0
let backoff_rounds = Atomic.make 0
let degradations = Atomic.make 0
let decompositions = Atomic.make 0
let decomposition_failures = Atomic.make 0
let timeouts = Atomic.make 0
let retransmits = Atomic.make 0
let acks = Atomic.make 0
let barriers = Atomic.make 0
let control_msgs = Atomic.make 0
let late_letters = Atomic.make 0
let sketch_adds = Atomic.make 0
let sketch_merges = Atomic.make 0
let sketch_evictions = Atomic.make 0
let shard_spawns = Atomic.make 0
let shard_restarts = Atomic.make 0
let shard_probes = Atomic.make 0
let serve_requests = Atomic.make 0
let serve_batches = Atomic.make 0
let serve_coalesced = Atomic.make 0
let serve_cache_hits = Atomic.make 0
let serve_cache_misses = Atomic.make 0
let serve_cache_evictions = Atomic.make 0
let serve_rejections = Atomic.make 0
let serve_expired = Atomic.make 0
let serve_snapshot_hits = Atomic.make 0
let serve_drains = Atomic.make 0
let serve_restarts = Atomic.make 0
let sysfaults = Atomic.make 0
let degraded_enters = Atomic.make 0
let degraded_exits = Atomic.make 0
let fork_retries = Atomic.make 0
let ckpt_skips = Atomic.make 0
let serve_snapshot_failures = Atomic.make 0
let serve_shed = Atomic.make 0

(* Virtual-latency histogram: exponential buckets doubling from 0.25
   virtual time units; the last bucket is open-ended. *)
let latency_bounds =
  [| 0.25; 0.5; 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256. |]

let latency_buckets = Array.length latency_bounds + 1
let latency_hist = Array.init latency_buckets (fun _ -> Atomic.make 0)

(* The pool-utilization group is updated, read and reset as ONE unit under
   [pool_lock]: a batch recorded while a snapshot or reset runs either
   lands entirely before it or entirely after, so derived invariants
   (items = sum of per_domain; items consistent with batches) never
   observe a torn update.  These were separate atomics once — a snapshot
   taken mid-[record_batch] could see the new [batches] with the old
   [per_domain]. *)
let pool_lock = Mutex.create ()
let batches = ref 0
let items = ref 0
let max_queue = ref 0
let per_domain = ref [||]

let add c k = if enabled () then ignore (Atomic.fetch_and_add c k)
let bump c = add c 1

let record_phase ~rounds:r ~bits:b ~messages:m =
  if enabled () then begin
    bump phases;
    add rounds r;
    add bits b;
    add messages m
  end

let record_drop () = bump drops
let record_duplicate () = bump duplicates
let record_delay () = bump delays
let record_corruption () = bump corruptions
let record_crash () = bump crashes
let record_partition () = bump partitions
let record_heal () = bump heals
let record_checkpoint () = bump checkpoints
let record_restore () = bump restores
let record_quarantine () = bump quarantines
let record_dead_letters k = add dead_letters k

let record_attempt ~retry =
  if enabled () then begin
    bump attempts;
    if retry then bump retries
  end

let record_backoff ~rounds:r = add backoff_rounds r
let record_degraded () = bump degradations

let record_decomposition ~failures =
  if enabled () then begin
    bump decompositions;
    add decomposition_failures failures
  end

let record_timeout () = bump timeouts
let record_retransmit () = bump retransmits
let record_ack () = bump acks
let record_barrier () = bump barriers
let record_control k = add control_msgs k
let record_late_letters k = add late_letters k
let record_sketch_add () = bump sketch_adds
let record_sketch_merge () = bump sketch_merges
let record_sketch_eviction () = bump sketch_evictions
let record_shard_spawn () = bump shard_spawns
let record_shard_restart () = bump shard_restarts
let record_shard_probe () = bump shard_probes

let record_serve_batch ~requests ~coalesced =
  if enabled () then begin
    add serve_requests requests;
    bump serve_batches;
    add serve_coalesced coalesced
  end

let record_serve_cache ~hit =
  if hit then bump serve_cache_hits else bump serve_cache_misses

let record_serve_cache_eviction () = bump serve_cache_evictions
let record_serve_rejection () = bump serve_rejections
let record_serve_expiry () = bump serve_expired
let record_serve_snapshot_hit () = bump serve_snapshot_hits
let record_serve_drain () = bump serve_drains
let record_serve_restart () = bump serve_restarts
let record_sysfault () = bump sysfaults
let record_degraded_enter () = bump degraded_enters
let record_degraded_exit () = bump degraded_exits
let record_fork_retry () = bump fork_retries
let record_ckpt_skip () = bump ckpt_skips
let record_serve_snapshot_failure () = bump serve_snapshot_failures
let record_serve_shed () = bump serve_shed

let latency_bucket l =
  let rec go i =
    if i >= Array.length latency_bounds then Array.length latency_bounds
    else if l < latency_bounds.(i) then i
    else go (i + 1)
  in
  go 0

let record_latency l = if enabled () then bump latency_hist.(latency_bucket l)

let record_batch ~items:n ~per_worker =
  if enabled () then begin
    Mutex.lock pool_lock;
    incr batches;
    items := !items + n;
    if n > !max_queue then max_queue := n;
    let need = Array.length per_worker in
    if Array.length !per_domain < need then begin
      let grown = Array.make need 0 in
      Array.blit !per_domain 0 grown 0 (Array.length !per_domain);
      per_domain := grown
    end;
    Array.iteri (fun i k -> !per_domain.(i) <- !per_domain.(i) + k) per_worker;
    Mutex.unlock pool_lock
  end

let snapshot () =
  Mutex.lock pool_lock;
  let b = !batches and it = !items and mq = !max_queue in
  let pd = Array.copy !per_domain in
  Mutex.unlock pool_lock;
  {
    phases = Atomic.get phases;
    rounds = Atomic.get rounds;
    bits = Atomic.get bits;
    messages = Atomic.get messages;
    drops = Atomic.get drops;
    duplicates = Atomic.get duplicates;
    delays = Atomic.get delays;
    corruptions = Atomic.get corruptions;
    crashes = Atomic.get crashes;
    partitions = Atomic.get partitions;
    heals = Atomic.get heals;
    checkpoints = Atomic.get checkpoints;
    restores = Atomic.get restores;
    quarantines = Atomic.get quarantines;
    dead_letters = Atomic.get dead_letters;
    attempts = Atomic.get attempts;
    retries = Atomic.get retries;
    backoff_rounds = Atomic.get backoff_rounds;
    degradations = Atomic.get degradations;
    decompositions = Atomic.get decompositions;
    decomposition_failures = Atomic.get decomposition_failures;
    timeouts = Atomic.get timeouts;
    retransmits = Atomic.get retransmits;
    acks = Atomic.get acks;
    barriers = Atomic.get barriers;
    control_msgs = Atomic.get control_msgs;
    late_letters = Atomic.get late_letters;
    sketch_adds = Atomic.get sketch_adds;
    sketch_merges = Atomic.get sketch_merges;
    sketch_evictions = Atomic.get sketch_evictions;
    shard_spawns = Atomic.get shard_spawns;
    shard_restarts = Atomic.get shard_restarts;
    shard_probes = Atomic.get shard_probes;
    serve_requests = Atomic.get serve_requests;
    serve_batches = Atomic.get serve_batches;
    serve_coalesced = Atomic.get serve_coalesced;
    serve_cache_hits = Atomic.get serve_cache_hits;
    serve_cache_misses = Atomic.get serve_cache_misses;
    serve_cache_evictions = Atomic.get serve_cache_evictions;
    serve_rejections = Atomic.get serve_rejections;
    serve_expired = Atomic.get serve_expired;
    serve_snapshot_hits = Atomic.get serve_snapshot_hits;
    serve_drains = Atomic.get serve_drains;
    serve_restarts = Atomic.get serve_restarts;
    sysfaults = Atomic.get sysfaults;
    degraded_enters = Atomic.get degraded_enters;
    degraded_exits = Atomic.get degraded_exits;
    fork_retries = Atomic.get fork_retries;
    ckpt_skips = Atomic.get ckpt_skips;
    serve_snapshot_failures = Atomic.get serve_snapshot_failures;
    serve_shed = Atomic.get serve_shed;
    latency_hist = Array.map Atomic.get latency_hist;
    batches = b;
    items = it;
    max_queue = mq;
    per_domain = pd;
  }

let reset () =
  List.iter
    (fun c -> Atomic.set c 0)
    [
      phases;
      rounds;
      bits;
      messages;
      drops;
      duplicates;
      delays;
      corruptions;
      crashes;
      partitions;
      heals;
      checkpoints;
      restores;
      quarantines;
      dead_letters;
      attempts;
      retries;
      backoff_rounds;
      degradations;
      decompositions;
      decomposition_failures;
      timeouts;
      retransmits;
      acks;
      barriers;
      control_msgs;
      late_letters;
      sketch_adds;
      sketch_merges;
      sketch_evictions;
      shard_spawns;
      shard_restarts;
      shard_probes;
      serve_requests;
      serve_batches;
      serve_coalesced;
      serve_cache_hits;
      serve_cache_misses;
      serve_cache_evictions;
      serve_rejections;
      serve_expired;
      serve_snapshot_hits;
      serve_drains;
      serve_restarts;
      sysfaults;
      degraded_enters;
      degraded_exits;
      fork_retries;
      ckpt_skips;
      serve_snapshot_failures;
      serve_shed;
    ];
  Array.iter (fun c -> Atomic.set c 0) latency_hist;
  Mutex.lock pool_lock;
  batches := 0;
  items := 0;
  max_queue := 0;
  per_domain := [||];
  Mutex.unlock pool_lock

let empty =
  {
    phases = 0;
    rounds = 0;
    bits = 0;
    messages = 0;
    drops = 0;
    duplicates = 0;
    delays = 0;
    corruptions = 0;
    crashes = 0;
    partitions = 0;
    heals = 0;
    checkpoints = 0;
    restores = 0;
    quarantines = 0;
    dead_letters = 0;
    attempts = 0;
    retries = 0;
    backoff_rounds = 0;
    degradations = 0;
    decompositions = 0;
    decomposition_failures = 0;
    timeouts = 0;
    retransmits = 0;
    acks = 0;
    barriers = 0;
    control_msgs = 0;
    late_letters = 0;
    sketch_adds = 0;
    sketch_merges = 0;
    sketch_evictions = 0;
    shard_spawns = 0;
    shard_restarts = 0;
    shard_probes = 0;
    serve_requests = 0;
    serve_batches = 0;
    serve_coalesced = 0;
    serve_cache_hits = 0;
    serve_cache_misses = 0;
    serve_cache_evictions = 0;
    serve_rejections = 0;
    serve_expired = 0;
    serve_snapshot_hits = 0;
    serve_drains = 0;
    serve_restarts = 0;
    sysfaults = 0;
    degraded_enters = 0;
    degraded_exits = 0;
    fork_retries = 0;
    ckpt_skips = 0;
    serve_snapshot_failures = 0;
    serve_shed = 0;
    latency_hist = [||];
    batches = 0;
    items = 0;
    max_queue = 0;
    per_domain = [||];
  }

(* Merge a worker process's counter delta into this process's counters —
   the shard runtime resets in the (forked) worker, snapshots at its end,
   ships the snapshot, and the parent absorbs it here.  Every field is a
   sum except [max_queue] (a max); [per_domain] adds index-wise. *)
let absorb (d : snapshot) =
  if enabled () then begin
    add phases d.phases;
    add rounds d.rounds;
    add bits d.bits;
    add messages d.messages;
    add drops d.drops;
    add duplicates d.duplicates;
    add delays d.delays;
    add corruptions d.corruptions;
    add crashes d.crashes;
    add partitions d.partitions;
    add heals d.heals;
    add checkpoints d.checkpoints;
    add restores d.restores;
    add quarantines d.quarantines;
    add dead_letters d.dead_letters;
    add attempts d.attempts;
    add retries d.retries;
    add backoff_rounds d.backoff_rounds;
    add degradations d.degradations;
    add decompositions d.decompositions;
    add decomposition_failures d.decomposition_failures;
    add timeouts d.timeouts;
    add retransmits d.retransmits;
    add acks d.acks;
    add barriers d.barriers;
    add control_msgs d.control_msgs;
    add late_letters d.late_letters;
    add sketch_adds d.sketch_adds;
    add sketch_merges d.sketch_merges;
    add sketch_evictions d.sketch_evictions;
    add shard_spawns d.shard_spawns;
    add shard_restarts d.shard_restarts;
    add shard_probes d.shard_probes;
    add serve_requests d.serve_requests;
    add serve_batches d.serve_batches;
    add serve_coalesced d.serve_coalesced;
    add serve_cache_hits d.serve_cache_hits;
    add serve_cache_misses d.serve_cache_misses;
    add serve_cache_evictions d.serve_cache_evictions;
    add serve_rejections d.serve_rejections;
    add serve_expired d.serve_expired;
    add serve_snapshot_hits d.serve_snapshot_hits;
    add serve_drains d.serve_drains;
    add serve_restarts d.serve_restarts;
    add sysfaults d.sysfaults;
    add degraded_enters d.degraded_enters;
    add degraded_exits d.degraded_exits;
    add fork_retries d.fork_retries;
    add ckpt_skips d.ckpt_skips;
    add serve_snapshot_failures d.serve_snapshot_failures;
    add serve_shed d.serve_shed;
    Array.iteri (fun i k -> add latency_hist.(i) k) d.latency_hist;
    Mutex.lock pool_lock;
    batches := !batches + d.batches;
    items := !items + d.items;
    if d.max_queue > !max_queue then max_queue := d.max_queue;
    let need = Array.length d.per_domain in
    if Array.length !per_domain < need then begin
      let grown = Array.make need 0 in
      Array.blit !per_domain 0 grown 0 (Array.length !per_domain);
      per_domain := grown
    end;
    Array.iteri (fun i k -> !per_domain.(i) <- !per_domain.(i) + k) d.per_domain;
    Mutex.unlock pool_lock
  end

let print oc s =
  let p fmt = Printf.fprintf oc fmt in
  p "metrics:\n";
  p "  phases %d  rounds %d  bits %d  messages %d\n" s.phases s.rounds s.bits
    s.messages;
  p "  faults: drop %d  duplicate %d  delay %d  corrupt %d  crash %d\n" s.drops
    s.duplicates s.delays s.corruptions s.crashes;
  p
    "  recovery: partitions %d  heals %d  checkpoints %d  restores %d  \
     quarantines %d  dead_letters %d\n"
    s.partitions s.heals s.checkpoints s.restores s.quarantines s.dead_letters;
  p "  supervision: attempts %d  retries %d  backoff_rounds %d  degraded %d\n"
    s.attempts s.retries s.backoff_rounds s.degradations;
  p "  decompositions %d (failures %d)\n" s.decompositions
    s.decomposition_failures;
  if
    s.timeouts > 0 || s.retransmits > 0 || s.acks > 0 || s.barriers > 0
    || s.control_msgs > 0 || s.late_letters > 0
  then
    p
      "  async: timeouts %d  retransmits %d  acks %d  barriers %d  \
       control_msgs %d  late_letters %d\n"
      s.timeouts s.retransmits s.acks s.barriers s.control_msgs s.late_letters;
  if s.sketch_adds > 0 || s.sketch_merges > 0 || s.sketch_evictions > 0 then
    p "  sketch: adds %d  merges %d  evictions %d\n" s.sketch_adds
      s.sketch_merges s.sketch_evictions;
  if s.shard_spawns > 0 || s.shard_restarts > 0 then
    p "  shards: spawns %d  restarts %d  probes %d\n" s.shard_spawns
      s.shard_restarts s.shard_probes;
  if s.serve_requests > 0 || s.serve_rejections > 0 then
    p
      "  serve: requests %d  batches %d  coalesced %d  cache %d/%d \
       (evictions %d)  rejected %d\n"
      s.serve_requests s.serve_batches s.serve_coalesced s.serve_cache_hits
      (s.serve_cache_hits + s.serve_cache_misses)
      s.serve_cache_evictions s.serve_rejections;
  if
    s.serve_expired > 0 || s.serve_snapshot_hits > 0 || s.serve_drains > 0
    || s.serve_restarts > 0
  then
    p
      "  serve-robustness: expired %d  snapshot_hits %d  drains %d  \
       restarts %d\n"
      s.serve_expired s.serve_snapshot_hits s.serve_drains s.serve_restarts;
  if
    s.sysfaults > 0 || s.degraded_enters > 0 || s.fork_retries > 0
    || s.ckpt_skips > 0 || s.serve_snapshot_failures > 0 || s.serve_shed > 0
  then
    p
      "  resource-faults: injected %d  degraded %d/%d  fork_retries %d  \
       ckpt_skips %d  snapshot_failures %d  shed %d\n"
      s.sysfaults s.degraded_enters s.degraded_exits s.fork_retries
      s.ckpt_skips s.serve_snapshot_failures s.serve_shed;
  if Array.exists (fun k -> k > 0) s.latency_hist then begin
    p "  latency:";
    Array.iteri
      (fun i k ->
        if k > 0 then
          if i < Array.length latency_bounds then
            p " <%g:%d" latency_bounds.(i) k
          else p " >=%g:%d" latency_bounds.(Array.length latency_bounds - 1) k)
      s.latency_hist;
    p "\n"
  end;
  p "  pool: batches %d  items %d  max_queue %d  per_domain [%s]\n" s.batches
    s.items s.max_queue
    (String.concat "; " (Array.to_list (Array.map string_of_int s.per_domain)))
