(** Process-global counters for the LOCAL runtime.

    Where {!Trace} records the {e sequence} of events, this module keeps
    cheap aggregate counters: phases/rounds/bits/messages, applied fault
    verdicts, supervision attempts and backoff, decompositions, and
    {!Ls_par} pool utilization (batches, items, per-domain item counts,
    max queue depth).  All counters are atomics or mutex-guarded sums, so
    totals are domain-count invariant — only the [per_domain] split
    depends on scheduling.

    Recording is off by default; every producer guards on {!enabled}, so a
    disabled run pays one atomic read per phase, nothing per message. *)

type snapshot = {
  phases : int;
  rounds : int;  (** Rounds charged by traced broadcast phases. *)
  bits : int;
  messages : int;  (** Transmitted copies (duplicates pay twice). *)
  drops : int;
  duplicates : int;
  delays : int;
  corruptions : int;
  crashes : int;
  partitions : int;  (** Partition intervals that came into force. *)
  heals : int;  (** Partition intervals that ended. *)
  checkpoints : int;  (** Node states snapshotted at crash time. *)
  restores : int;  (** Recovering nodes that restored a checkpoint. *)
  quarantines : int;  (** Corrupted copies detected by an integrity digest. *)
  dead_letters : int;  (** Copies that arrived at a crashed receiver. *)
  attempts : int;  (** Supervised attempts, including the first of each run. *)
  retries : int;
  backoff_rounds : int;
  degradations : int;
  decompositions : int;
  decomposition_failures : int;
  timeouts : int;  (** Adaptive-mode async deadlines that fired. *)
  retransmits : int;  (** Payload copies re-sent after a nack. *)
  acks : int;  (** Synchronizer-mode per-copy acknowledgements. *)
  barriers : int;  (** Local round barriers completed. *)
  control_msgs : int;
      (** Control-plane messages (acks, safes, nacks) — metered separately
          from [messages], which counts payload copies only, so the
          conservation invariant is executor-independent. *)
  late_letters : int;
      (** Copies arriving after their slot closed (adaptive mode); a
          subset of [dead_letters]. *)
  sketch_adds : int;  (** Items recorded into {!Ls_sketch} sketches. *)
  sketch_merges : int;  (** Sketch merge operations (CMS and bottom-k). *)
  sketch_evictions : int;
      (** Bottom-k keys displaced after admission — a saturation signal. *)
  shard_spawns : int;  (** Worker processes forked by {!Ls_shard}. *)
  shard_restarts : int;
      (** Workers re-forked after a death ([kill -9], crash, hang). *)
  shard_probes : int;
      (** Supervisor liveness probes fired on heartbeat silence.  Wall-
          clock driven, so scheduling-dependent like [per_domain]. *)
  serve_requests : int;  (** Requests admitted by the {!Ls_serve} engine. *)
  serve_batches : int;  (** Engine batch executions. *)
  serve_coalesced : int;
      (** Requests that shared a compiled instance with an earlier request
          in the same batch (same-model coalescing). *)
  serve_cache_hits : int;  (** Instance/plan LRU hits. *)
  serve_cache_misses : int;
  serve_cache_evictions : int;
  serve_rejections : int;
      (** Requests rejected [Overloaded] by admission control.  Timing-
          dependent, so {e not} covered by the determinism contract. *)
  serve_expired : int;
      (** Requests answered [Expired]: their deadline elapsed in the
          admission queue.  Timing-dependent, like rejections. *)
  serve_snapshot_hits : int;
      (** Cache hits on entries restored from a warm-start snapshot. *)
  serve_drains : int;  (** Graceful drains completed (SIGTERM path). *)
  serve_restarts : int;
      (** Supervised worker respawns after a death or hang. *)
  sysfaults : int;
      (** Syscall faults injected through the {!Ls_shard.Sysio} hook
          (ENOSPC, EMFILE, EAGAIN, short writes, synthetic EINTR). *)
  degraded_enters : int;
      (** Subsystems that entered a degraded mode ({!Health}). *)
  degraded_exits : int;
      (** Subsystems that recovered to ok.  At a clean daemon exit,
          enters = exits — the pairing invariant the chaos suite checks. *)
  fork_retries : int;
      (** [fork] attempts retried after [EAGAIN] (consume backoff, not
          restart budget). *)
  ckpt_skips : int;
      (** Checkpoint writes skipped after a disk fault — the shard
          continued checkpoint-free on its last good checkpoint. *)
  serve_snapshot_failures : int;
      (** Serve cache-snapshot writes that failed (circuit-breaks
          snapshotting with capped retry-after). *)
  serve_shed : int;
      (** Accept-backoff windows entered after [EMFILE]/[ENFILE]: new
          connections wait in the backlog while existing ones are
          served. *)
  latency_hist : int array;
      (** Virtual link-latency histogram over {!latency_bounds} buckets
          (last bucket open-ended). *)
  batches : int;  (** Parallel fan-outs executed by {!Ls_par}. *)
  items : int;  (** Work items across all batches. *)
  max_queue : int;  (** Largest batch installed (initial queue depth). *)
  per_domain : int array;
      (** Items executed per domain index (0 = the submitting domain).
          The only scheduling-dependent field. *)
}

val enabled : unit -> bool
val set_enabled : bool -> unit

(** {1 Recording} (no-ops while disabled) *)

val record_phase : rounds:int -> bits:int -> messages:int -> unit
val record_drop : unit -> unit
val record_duplicate : unit -> unit
val record_delay : unit -> unit
val record_corruption : unit -> unit
val record_crash : unit -> unit
val record_partition : unit -> unit
val record_heal : unit -> unit
val record_checkpoint : unit -> unit
val record_restore : unit -> unit
val record_quarantine : unit -> unit
val record_dead_letters : int -> unit
val record_attempt : retry:bool -> unit
val record_backoff : rounds:int -> unit
val record_degraded : unit -> unit
val record_decomposition : failures:int -> unit
val record_timeout : unit -> unit
val record_retransmit : unit -> unit
val record_ack : unit -> unit
val record_barrier : unit -> unit
val record_control : int -> unit
val record_late_letters : int -> unit
val record_sketch_add : unit -> unit
val record_sketch_merge : unit -> unit
val record_sketch_eviction : unit -> unit
val record_shard_spawn : unit -> unit
val record_shard_restart : unit -> unit
val record_shard_probe : unit -> unit

val record_serve_batch : requests:int -> coalesced:int -> unit
(** One engine batch: [requests] admitted requests executed together, of
    which [coalesced] shared a compiled instance with an earlier one. *)

val record_serve_cache : hit:bool -> unit
val record_serve_cache_eviction : unit -> unit
val record_serve_rejection : unit -> unit
val record_serve_expiry : unit -> unit
val record_serve_snapshot_hit : unit -> unit
val record_serve_drain : unit -> unit
val record_serve_restart : unit -> unit
val record_sysfault : unit -> unit
val record_degraded_enter : unit -> unit
val record_degraded_exit : unit -> unit
val record_fork_retry : unit -> unit
val record_ckpt_skip : unit -> unit
val record_serve_snapshot_failure : unit -> unit
val record_serve_shed : unit -> unit

val latency_bounds : float array
(** Upper bounds of the latency histogram buckets (exponential, doubling
    from 0.25 virtual time units); one extra open-ended bucket follows. *)

val record_latency : float -> unit
(** Bucket a virtual link latency into {!snapshot.latency_hist}. *)

val record_batch : items:int -> per_worker:int array -> unit
(** Record one {!Ls_par} fan-out.  The whole pool-utilization group
    (batches, items, max_queue, per_domain) is updated atomically with
    respect to {!snapshot} and {!reset}: a reader never observes the
    batch count without its per-domain split. *)

(** {1 Reading} *)

val snapshot : unit -> snapshot
val reset : unit -> unit

val empty : snapshot
(** The all-zero snapshot ([latency_hist] and [per_domain] empty) — the
    identity of {!absorb}, and a base for record updates when building a
    delta by hand. *)

val absorb : snapshot -> unit
(** Merge a snapshot into the live counters: every field adds, except
    [max_queue] (pointwise max) and [per_domain]/[latency_hist] (index-
    wise add).  This is how {!Ls_shard} folds a worker process's counter
    delta — the worker {!reset}s its (forked, private) copy, runs,
    {!snapshot}s, and ships the result to the parent.  No-op while
    disabled. *)

val print : out_channel -> snapshot -> unit
(** Human-readable summary table (the [--metrics] output). *)
