(* Event sink: ring buffer + optional JSONL writer.

   Determinism: event payloads carry only seed-derived coordinates, never
   wall-clock data (the JSONL "ts" field is the one exception and is
   always first on the line so consumers can strip it).  Parallel
   producers are made deterministic by task-scoped capture: Ls_par runs
   each trial body under [capture] and [replay]s the recordings in trial
   index order, so the written stream never depends on the domain count
   or on how trials interleaved. *)

type event =
  | Phase_start of { label : string; clock : int }
  | Phase_end of {
      label : string;
      clock : int;
      rounds : int;
      bits : int;
      messages : int;
    }
  | Fault_drop of { round : int; src : int; dst : int }
  | Fault_duplicate of { round : int; src : int; dst : int; copies : int }
  | Fault_delay of { round : int; src : int; dst : int; copy : int; delay : int }
  | Fault_corrupt of { round : int; src : int; dst : int; copy : int }
  | Crash of { node : int; round : int }
  | Partition of { round : int; parts : int }
  | Heal of { round : int }
  | Checkpoint of { node : int; round : int }
  | Restore of { node : int; round : int; missed : int }
  | Quarantine of { round : int; src : int; dst : int; copy : int }
  | Timeout of { node : int; nbr : int; round : int; attempt : int }
  | Ack of { round : int; src : int; dst : int; copy : int }
  | Barrier of { node : int; round : int }
  | Retransmit of { round : int; src : int; dst : int; attempt : int }
  | Skew of { node : int; permille : int }
  | Attempt of { label : string; attempt : int; ok : bool; detail : string }
  | Backoff of { label : string; attempt : int; rounds : int }
  | Degraded of { label : string; attempts : int; detail : string }
  | Decomposition of {
      locality : int;
      colors : int;
      clusters : int;
      failures : int;
      max_cluster_radius : int;
      rounds : int;
      decomposition_rounds : int;
    }
  | Batch of { items : int }
  | Shard_spawn of { shard : int; incarnation : int }
  | Shard_restart of { shard : int; incarnation : int; restored_round : int }
  | Serve_batch of { requests : int; coalesced : int; cache_hits : int }
  | Degraded_enter of { subsystem : string; reason : string }
  | Degraded_exit of { subsystem : string }
  | Mark of { label : string }

type t = {
  capacity : int;
  ring : event option array;
  mutable head : int;  (* next write slot *)
  mutable count : int;  (* events ever emitted *)
  mutable out : out_channel option;
  m : Mutex.t;
}

let make ?(capacity = 65536) ?path () =
  if capacity < 1 then invalid_arg "Trace.make: capacity must be >= 1";
  {
    capacity;
    ring = Array.make capacity None;
    head = 0;
    count = 0;
    out = Option.map open_out path;
    m = Mutex.create ();
  }

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* "ts" is deliberately the first field of every line: strip it with
   [sed -E 's/"ts":[0-9.eE+-]+,//'] and the remainder is deterministic. *)
let json_of_event ~ts ev =
  let p = Printf.sprintf in
  let body =
    match ev with
    | Phase_start { label; clock } ->
        p {|"ev":"phase_start","label":"%s","clock":%d|} (json_escape label)
          clock
    | Phase_end { label; clock; rounds; bits; messages } ->
        p
          {|"ev":"phase_end","label":"%s","clock":%d,"rounds":%d,"bits":%d,"messages":%d|}
          (json_escape label) clock rounds bits messages
    | Fault_drop { round; src; dst } ->
        p {|"ev":"drop","round":%d,"src":%d,"dst":%d|} round src dst
    | Fault_duplicate { round; src; dst; copies } ->
        p {|"ev":"duplicate","round":%d,"src":%d,"dst":%d,"copies":%d|} round
          src dst copies
    | Fault_delay { round; src; dst; copy; delay } ->
        p {|"ev":"delay","round":%d,"src":%d,"dst":%d,"copy":%d,"delay":%d|}
          round src dst copy delay
    | Fault_corrupt { round; src; dst; copy } ->
        p {|"ev":"corrupt","round":%d,"src":%d,"dst":%d,"copy":%d|} round src
          dst copy
    | Crash { node; round } -> p {|"ev":"crash","node":%d,"round":%d|} node round
    | Partition { round; parts } ->
        p {|"ev":"partition","round":%d,"parts":%d|} round parts
    | Heal { round } -> p {|"ev":"heal","round":%d|} round
    | Checkpoint { node; round } ->
        p {|"ev":"checkpoint","node":%d,"round":%d|} node round
    | Restore { node; round; missed } ->
        p {|"ev":"restore","node":%d,"round":%d,"missed":%d|} node round missed
    | Quarantine { round; src; dst; copy } ->
        p {|"ev":"quarantine","round":%d,"src":%d,"dst":%d,"copy":%d|} round src
          dst copy
    | Timeout { node; nbr; round; attempt } ->
        p {|"ev":"timeout","node":%d,"nbr":%d,"round":%d,"attempt":%d|} node nbr
          round attempt
    | Ack { round; src; dst; copy } ->
        p {|"ev":"ack","round":%d,"src":%d,"dst":%d,"copy":%d|} round src dst
          copy
    | Barrier { node; round } ->
        p {|"ev":"barrier","node":%d,"round":%d|} node round
    | Retransmit { round; src; dst; attempt } ->
        p {|"ev":"retransmit","round":%d,"src":%d,"dst":%d,"attempt":%d|} round
          src dst attempt
    | Skew { node; permille } ->
        p {|"ev":"skew","node":%d,"permille":%d|} node permille
    | Attempt { label; attempt; ok; detail } ->
        p {|"ev":"attempt","label":"%s","attempt":%d,"ok":%b,"detail":"%s"|}
          (json_escape label) attempt ok (json_escape detail)
    | Backoff { label; attempt; rounds } ->
        p {|"ev":"backoff","label":"%s","attempt":%d,"rounds":%d|}
          (json_escape label) attempt rounds
    | Degraded { label; attempts; detail } ->
        p {|"ev":"degraded","label":"%s","attempts":%d,"detail":"%s"|}
          (json_escape label) attempts (json_escape detail)
    | Decomposition
        {
          locality;
          colors;
          clusters;
          failures;
          max_cluster_radius;
          rounds;
          decomposition_rounds;
        } ->
        p
          {|"ev":"decomposition","locality":%d,"colors":%d,"clusters":%d,"failures":%d,"max_cluster_radius":%d,"rounds":%d,"decomposition_rounds":%d|}
          locality colors clusters failures max_cluster_radius rounds
          decomposition_rounds
    | Batch { items } -> p {|"ev":"batch","items":%d|} items
    | Shard_spawn { shard; incarnation } ->
        p {|"ev":"shard_spawn","shard":%d,"incarnation":%d|} shard incarnation
    | Shard_restart { shard; incarnation; restored_round } ->
        p
          {|"ev":"shard_restart","shard":%d,"incarnation":%d,"restored_round":%d|}
          shard incarnation restored_round
    | Serve_batch { requests; coalesced; cache_hits } ->
        p {|"ev":"serve_batch","requests":%d,"coalesced":%d,"cache_hits":%d|}
          requests coalesced cache_hits
    | Degraded_enter { subsystem; reason } ->
        p {|"ev":"degraded_enter","subsystem":"%s","reason":"%s"|}
          (json_escape subsystem) (json_escape reason)
    | Degraded_exit { subsystem } ->
        p {|"ev":"degraded_exit","subsystem":"%s"|} (json_escape subsystem)
    | Mark { label } -> p {|"ev":"mark","label":"%s"|} (json_escape label)
  in
  p {|{"ts":%.6f,%s}|} ts body

let write t ~ts ev =
  Mutex.lock t.m;
  t.ring.(t.head) <- Some ev;
  t.head <- (t.head + 1) mod t.capacity;
  t.count <- t.count + 1;
  (match t.out with
  | Some oc ->
      output_string oc (json_of_event ~ts ev);
      output_char oc '\n'
  | None -> ());
  Mutex.unlock t.m

(* Capture scope: a per-domain buffer that intercepts every emit made on
   this domain, whatever its target sink. *)
type recording = (t * float * event) list

let empty_recording : recording = []

let scope : recording ref option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let emit t ev =
  let ts = Unix.gettimeofday () in
  match Domain.DLS.get scope with
  | Some buf -> buf := (t, ts, ev) :: !buf
  | None -> write t ~ts ev

let events t =
  Mutex.lock t.m;
  let retained = min t.count t.capacity in
  let start =
    if t.count <= t.capacity then 0 else t.head (* oldest surviving slot *)
  in
  let out =
    List.init retained (fun i ->
        match t.ring.((start + i) mod t.capacity) with
        | Some ev -> ev
        | None -> assert false)
  in
  Mutex.unlock t.m;
  out

let total t = t.count

let close t =
  Mutex.lock t.m;
  (match t.out with
  | Some oc ->
      close_out oc;
      t.out <- None
  | None -> ());
  Mutex.unlock t.m

let ambient_sink : t option Atomic.t = Atomic.make None
let install t = Atomic.set ambient_sink (Some t)
let uninstall () = Atomic.set ambient_sink None
let ambient () = Atomic.get ambient_sink
let resolve explicit = match explicit with Some _ -> explicit | None -> ambient ()
let to_ambient ev = match ambient () with Some t -> emit t ev | None -> ()

let buffering_needed () =
  Option.is_some (ambient ()) || Option.is_some (Domain.DLS.get scope)

let capture f =
  let prev = Domain.DLS.get scope in
  let buf = ref [] in
  Domain.DLS.set scope (Some buf);
  let r =
    Fun.protect ~finally:(fun () -> Domain.DLS.set scope prev) (fun () -> f ())
  in
  (r, List.rev !buf)

(* Events alone, in emission order: what a worker process ships to its
   parent (sinks hold channels and mutexes, so a recording itself cannot
   cross a process boundary — only its event payloads can). *)
let events_of_recording (r : recording) = List.map (fun (_, _, ev) -> ev) r

let replay recording =
  List.iter
    (fun (t, ts, ev) ->
      match Domain.DLS.get scope with
      | Some buf -> buf := (t, ts, ev) :: !buf
      | None -> write t ~ts ev)
    recording
