(** Structured tracing for the LOCAL runtime.

    A {!t} is an event sink: a bounded in-memory ring buffer (for tests and
    interactive inspection) plus an optional JSONL writer (one event per
    line, for offline diffing).  Producers — {!Network}, {!Resilient},
    {!Scheduler}, {!Ls_par} — emit typed {!event}s keyed by {e absolute}
    coordinates (fault-clock round, edge endpoints, copy index), never by
    wall-clock position, so two runs of the same seeded workload produce
    the same event payloads.

    {b Determinism contract.}  The event {e stream} is a pure function of
    the workload's seeds: byte-identical (timestamps stripped) across
    domain counts and across machines.  Inside a {!Ls_par} batch, events
    are buffered per trial index and flushed in index order after the
    batch, so the interleaving of parallel trials never leaks into the
    trace.  Only the ["ts"] field of a JSONL line is nondeterministic;
    strip it before diffing (it is always the first field).

    {b Zero cost when disabled.}  Every producer guards on its resolved
    sink being [None]; with no sink installed and none passed explicitly,
    no event value is ever allocated and the hot paths run their pre-trace
    code verbatim. *)

type event =
  | Phase_start of { label : string; clock : int }
  | Phase_end of {
      label : string;
      clock : int;
      rounds : int;
      bits : int;
      messages : int;
    }  (** Deltas of the phase just ended, plus the clock after it. *)
  | Fault_drop of { round : int; src : int; dst : int }
  | Fault_duplicate of { round : int; src : int; dst : int; copies : int }
  | Fault_delay of { round : int; src : int; dst : int; copy : int; delay : int }
  | Fault_corrupt of { round : int; src : int; dst : int; copy : int }
  | Crash of { node : int; round : int }
      (** Emitted once per node, when its crash round is first reached. *)
  | Partition of { round : int; parts : int }
      (** A partition interval came into force at [round], cutting the
          graph into [parts] sides. *)
  | Heal of { round : int }  (** The active partition interval ended. *)
  | Checkpoint of { node : int; round : int }
      (** The node's state was snapshotted as it crashed. *)
  | Restore of { node : int; round : int; missed : int }
      (** A recovering node restored its last checkpoint; it was dark for
          [missed] rounds (the catch-up cost charged to the phase). *)
  | Quarantine of { round : int; src : int; dst : int; copy : int }
      (** An integrity digest exposed a corrupted copy: detected and
          discarded instead of delivered (surfaces as a drop to the
          supervision layer). *)
  | Timeout of { node : int; nbr : int; round : int; attempt : int }
      (** Adaptive-mode async executor: [node]'s deadline for hearing from
          [nbr] about round [round] expired ([attempt]-th firing). *)
  | Ack of { round : int; src : int; dst : int; copy : int }
      (** Synchronizer mode: [dst] acknowledged copy [copy] of the
          round-[round] message from [src] (control plane; emitted only to
          the control sink, never the payload trace). *)
  | Barrier of { node : int; round : int }
      (** The node completed its local round barrier: all alive neighbors
          declared round [round] safe and its own copies were acked. *)
  | Retransmit of { round : int; src : int; dst : int; attempt : int }
      (** Adaptive mode: [src] re-sent its round-[round] payload to [dst]
          after a nack ([attempt]-th retransmission; metered like a fresh
          transmission). *)
  | Skew of { node : int; permille : int }
      (** The node's sampled clock-rate factor, in permille (1000 = no
          skew), reported once per async execution to the control sink. *)
  | Attempt of { label : string; attempt : int; ok : bool; detail : string }
  | Backoff of { label : string; attempt : int; rounds : int }
  | Degraded of { label : string; attempts : int; detail : string }
  | Decomposition of {
      locality : int;
      colors : int;
      clusters : int;
      failures : int;
      max_cluster_radius : int;
      rounds : int;
      decomposition_rounds : int;
    }
  | Batch of { items : int }  (** One {!Ls_par} fan-out completed. *)
  | Shard_spawn of { shard : int; incarnation : int }
      (** A sharded-execution worker process was forked (incarnation 0 at
          launch; higher after supervisor restarts).  Payloads are
          deterministic coordinates — never pids or timings. *)
  | Shard_restart of { shard : int; incarnation : int; restored_round : int }
      (** The supervisor re-forked a dead worker; [restored_round] is the
          last round its checkpoint covered (-1 = started fresh). *)
  | Serve_batch of { requests : int; coalesced : int; cache_hits : int }
      (** One {!Ls_serve} engine batch: admitted requests executed
          together, how many shared a compiled instance, and how many
          cache lookups hit.  All three are pure functions of the request
          stream, never of timing. *)
  | Degraded_enter of { subsystem : string; reason : string }
      (** A subsystem (snapshot, accept, checkpoint, fork) entered a
          degraded mode ({!Health.set_degraded}); [reason] names the
          triggering fault.  Always paired with a later
          {!Degraded_exit} for the same subsystem before a clean exit. *)
  | Degraded_exit of { subsystem : string }
      (** The subsystem recovered to ok ({!Health.clear}). *)
  | Mark of { label : string }  (** Free-form deterministic marker. *)

type t

val make : ?capacity:int -> ?path:string -> unit -> t
(** A sink retaining the last [capacity] (default 65536) events in memory
    and, when [path] is given, appending every event to that file as JSONL.
    Close with {!close}. *)

val emit : t -> event -> unit
(** Thread-safe.  Inside a {!capture} scope the event is buffered instead
    of written (see the determinism contract above). *)

val events : t -> event list
(** Retained events, oldest first (at most [capacity]). *)

val total : t -> int
(** Events ever emitted, including those evicted from the ring. *)

val close : t -> unit
(** Flush and close the JSONL channel, if any.  The ring stays readable. *)

(** {1 Ambient sink}

    CLI surfaces ([--trace FILE]) install one process-global sink;
    producers whose [?trace] argument is omitted fall back to it. *)

val install : t -> unit
val uninstall : unit -> unit
val ambient : unit -> t option

val resolve : t option -> t option
(** [resolve explicit] is the producers' lookup rule: the explicit sink if
    given, else the ambient one. *)

val to_ambient : event -> unit
(** Emit to the ambient sink, if installed (respects capture scopes). *)

(** {1 Deterministic parallel capture}

    {!Ls_par.Par} wraps each trial body in {!capture} and {!replay}s the
    recordings in trial-index order, making the trace independent of how
    trials interleaved across domains. *)

type recording

val empty_recording : recording

val buffering_needed : unit -> bool
(** Is any sink reachable here (ambient installed, or already inside a
    capture scope)?  When false, parallel runners skip capture entirely. *)

val capture : (unit -> 'a) -> 'a * recording
(** Run the thunk with all {!emit}s (to any sink) buffered; return them.
    Scopes nest: a {!replay} inside an enclosing scope re-buffers. *)

val events_of_recording : recording -> event list
(** The captured events in emission order, detached from their sinks —
    the only part of a recording that can cross a process boundary.
    {!Ls_shard} workers ship these; the parent re-emits them to its own
    ambient sink, which collapses per-event sink targeting (one sink is
    all the CLI ever installs). *)

val replay : recording -> unit
