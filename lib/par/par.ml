module Rng = Ls_rng.Rng

type timing = { wall : float; per_trial : float array; domains : int }

let default_domains () =
  (* A set-but-empty variable counts as unset, matching the other
     LOCSAMPLE_* env accessors (`LOCSAMPLE_DOMAINS= locsample ...` must
     not differ from leaving it out). *)
  match Sys.getenv_opt "LOCSAMPLE_DOMAINS" with
  | None | Some "" -> Domain.recommended_domain_count ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some k when k >= 1 -> k
      | _ ->
          invalid_arg
            (Printf.sprintf "LOCSAMPLE_DOMAINS=%S: expected an integer >= 1" s))

let env_check () =
  match Sys.getenv_opt "LOCSAMPLE_DOMAINS" with
  | None | Some "" -> Ok ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some k when k >= 1 -> Ok ()
      | _ ->
          Error
            (Printf.sprintf "LOCSAMPLE_DOMAINS=%S: expected an integer >= 1" s))

let override = Atomic.make None

let domains () =
  match Atomic.get override with Some k -> k | None -> default_domains ()

let set_domains k =
  if k < 1 then invalid_arg "Par.set_domains: domain count must be >= 1";
  Atomic.set override (Some k)

(* The process-global pool, (re)created lazily whenever the requested
   size changes, and torn down at exit so the runtime can join all
   domains cleanly.  Callers hold a refcount on the slot they acquired:
   a concurrent [set_domains] retires the slot but its pool is only shut
   down once the last holder releases it, so a pool can never be torn
   down under a caller mid-[Pool.run]. *)
type slot = { pool : Pool.t; mutable refs : int; mutable retired : bool }

let global_lock = Mutex.create ()
let global : slot option ref = ref None

let acquire () =
  Mutex.lock global_lock;
  let want = domains () in
  let to_kill = ref None in
  let s =
    match !global with
    | Some s when (not s.retired) && Pool.size s.pool = want ->
        s.refs <- s.refs + 1;
        s
    | prev ->
        (match prev with
        | Some s ->
            s.retired <- true;
            if s.refs = 0 then to_kill := Some s.pool
        | None -> ());
        let s = { pool = Pool.create want; refs = 1; retired = false } in
        global := Some s;
        s
  in
  Mutex.unlock global_lock;
  (match !to_kill with Some p -> Pool.shutdown p | None -> ());
  s

let release s =
  Mutex.lock global_lock;
  s.refs <- s.refs - 1;
  let dead = s.retired && s.refs = 0 in
  Mutex.unlock global_lock;
  if dead then Pool.shutdown s.pool

(* Join the global pool's domains when idle — required before Unix.fork
   (the runtime refuses to fork alongside live sibling domains).  A pool
   mid-batch can only be retired; it dies on release. *)
let quiesce () =
  Mutex.lock global_lock;
  let p =
    match !global with
    | Some s when s.refs = 0 ->
        global := None;
        Some s.pool
    | Some s ->
        s.retired <- true;
        None
    | None -> None
  in
  Mutex.unlock global_lock;
  match p with Some p -> Pool.shutdown p | None -> ()

let () =
  at_exit (fun () ->
      Mutex.lock global_lock;
      let p =
        match !global with
        | Some s ->
            s.retired <- true;
            Some s.pool
        | None -> None
      in
      global := None;
      Mutex.unlock global_lock;
      match p with Some p -> Pool.shutdown p | None -> ())

let with_pool ?domains f =
  match domains with
  | None ->
      let s = acquire () in
      Fun.protect ~finally:(fun () -> release s) (fun () -> f s.pool)
  | Some k ->
      let p = Pool.create k in
      Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

module Trace = Ls_obs.Trace

let collect ?domains n body =
  let out = Array.make n None in
  let used = ref 1 in
  with_pool ?domains (fun pool ->
      used := Pool.size pool;
      if Trace.buffering_needed () then begin
        (* Deterministic tracing: buffer each trial's events and flush in
           trial-index order, so the trace stream never depends on how
           trials interleaved across domains. *)
        let recs = Array.make n Trace.empty_recording in
        Pool.run pool ~n (fun i ->
            let r, evs = Trace.capture (fun () -> body i) in
            out.(i) <- Some r;
            recs.(i) <- evs);
        Array.iter Trace.replay recs;
        Trace.to_ambient (Trace.Batch { items = n })
      end
      else Pool.run pool ~n (fun i -> out.(i) <- Some (body i)));
  (Array.map (function Some x -> x | None -> assert false) out, !used)

let run_trials ?domains ~n ~seed f =
  if n < 0 then invalid_arg "Par.run_trials: n must be non-negative";
  let rngs = Rng.streams seed n in
  fst (collect ?domains n (fun i -> f rngs.(i)))

let fold_trials ?domains ?(chunk = 4096) ~n ~seed ~init ~add ~merge f =
  if n < 0 then invalid_arg "Par.fold_trials: n must be non-negative";
  if chunk < 1 then invalid_arg "Par.fold_trials: chunk must be >= 1";
  let rngs = Rng.streams seed n in
  (* Chunk boundaries are fixed by [chunk] alone — never by the domain
     count — and the final fold walks chunks in index order, so the
     result is a pure function of (n, seed, chunk, f) provided
     [add]/[merge] form the advertised commutative monoid. *)
  let chunks = (n + chunk - 1) / chunk in
  let accs, _ =
    collect ?domains chunks (fun c ->
        let acc = init () in
        let hi = min n ((c + 1) * chunk) in
        for i = c * chunk to hi - 1 do
          add acc (f rngs.(i))
        done;
        acc)
  in
  Array.fold_left merge (init ()) accs

let run_trials_timed ?domains ~n ~seed f =
  if n < 0 then invalid_arg "Par.run_trials_timed: n must be non-negative";
  let rngs = Rng.streams seed n in
  let per_trial = Array.make n 0. in
  let t0 = Unix.gettimeofday () in
  let results, used =
    collect ?domains n (fun i ->
        let s = Unix.gettimeofday () in
        let r = f rngs.(i) in
        per_trial.(i) <- Unix.gettimeofday () -. s;
        r)
  in
  (results, { wall = Unix.gettimeofday () -. t0; per_trial; domains = used })

let map ?domains f xs =
  fst (collect ?domains (Array.length xs) (fun i -> f xs.(i)))

let map_list ?domains f xs = Array.to_list (map ?domains f (Array.of_list xs))

let map_seeded ?domains ~seed f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let rngs = Rng.streams seed n in
  Array.to_list (fst (collect ?domains n (fun i -> f arr.(i) rngs.(i))))

let map_reduce ?domains ~map:fm ~reduce init xs =
  Array.fold_left reduce init (map ?domains fm xs)
