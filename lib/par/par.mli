(** Deterministic domain-parallel trial execution.

    Every experiment in this repository estimates a theorem's prediction
    from independent Monte-Carlo trials.  This module fans those trials
    out over a small pool of OCaml 5 domains while keeping the results
    {b bit-for-bit identical} for every domain count and every schedule.

    {2 Determinism contract}

    [run_trials ~n ~seed f] derives [n] SplitMix64 streams by seed
    splitting ({!Ls_rng.Rng.streams}): stream [i] is a pure function of
    [(seed, i)], never of which domain runs trial [i] or in what order.
    Trial [i] computes [f stream_i] and writes slot [i] of the result
    array.  As long as [f] draws randomness only from its argument and
    touches no shared mutable state, the output array is a pure function
    of [(n, seed, f)] — so [LOCSAMPLE_DOMAINS=1] and [LOCSAMPLE_DOMAINS=8]
    print identical tables, and a failing trial can be replayed alone
    from [(seed, i)].

    {2 Choosing the domain count}

    The default comes from the [LOCSAMPLE_DOMAINS] environment variable
    when set, else [Domain.recommended_domain_count ()] (the number of
    cores).  More domains than cores buys nothing; fewer helps when the
    machine is shared.  [--domains] flags in [bench/main.exe] and
    [bin/locsample.exe] call {!set_domains}.  One global pool is reused
    across calls and torn down at exit; the per-call [?domains] override
    spins up (and tears down) an ephemeral pool, which is what the
    invariance tests use. *)

type timing = {
  wall : float;  (** Wall-clock seconds for the whole batch. *)
  per_trial : float array;  (** Wall-clock seconds of each trial, by index. *)
  domains : int;  (** Domains actually used for the batch. *)
}
(** Timings are measurements, not outputs: they vary run to run and are
    {e not} covered by the determinism contract. *)

val default_domains : unit -> int
(** [LOCSAMPLE_DOMAINS] when set (must parse as an int ≥ 1, else
    [Invalid_argument]), otherwise [Domain.recommended_domain_count ()]. *)

val env_check : unit -> (unit, string) result
(** Validate [LOCSAMPLE_DOMAINS] without touching the pool.  CLIs call
    this at startup so a malformed value (e.g. [LOCSAMPLE_DOMAINS=abc])
    surfaces as a named error on their exit-2 path instead of an
    [Invalid_argument] backtrace escaping from the first parallel call
    deep inside a subcommand. *)

val domains : unit -> int
(** The current effective domain count: {!set_domains} override when
    present, else {!default_domains}. *)

val set_domains : int -> unit
(** Override the domain count for the process-global pool (CLI flags call
    this).  Must be ≥ 1.  Takes effect on the next parallel call. *)

val quiesce : unit -> unit
(** Shut down the process-global pool and join its domains if it is
    idle (retire it otherwise).  Required before [Unix.fork]: the OCaml
    runtime refuses to fork while sibling domains are live.  The next
    parallel call transparently builds a fresh pool. *)

val run_trials : ?domains:int -> n:int -> seed:int64 -> (Ls_rng.Rng.t -> 'a) -> 'a array
(** [run_trials ~n ~seed f] is [[| f s_0; ...; f s_{n-1} |]] for the [n]
    seed-split streams of [seed], computed in parallel under the
    determinism contract above. *)

val fold_trials :
  ?domains:int ->
  ?chunk:int ->
  n:int ->
  seed:int64 ->
  init:(unit -> 'acc) ->
  add:('acc -> 'a -> unit) ->
  merge:('acc -> 'acc -> 'acc) ->
  (Ls_rng.Rng.t -> 'a) ->
  'acc
(** Chunked bounded-memory trial reduction: trial [i] still computes
    [f s_i] from its seed-split stream, but results are accumulated into
    one ['acc] per chunk of [chunk] consecutive trials (default 4096)
    and the per-chunk accumulators are folded with [merge], in chunk
    order, starting from a fresh [init ()].  Peak memory is
    [O(chunks · |acc|)] instead of [O(n · |result|)].

    Determinism: chunk boundaries derive from [chunk] alone — {e never}
    from the domain count — each chunk accumulates its trials in index
    order, and the final fold is sequential in chunk order, so the
    result is a pure function of [(n, seed, chunk, f)] when [add] and
    [merge] respect the accumulator's merge monoid (as
    {!Ls_sketch.Cms} / {!Ls_sketch.Bottomk} do).  With such a monoid
    the result is also [chunk]-invariant; accumulators that merely
    tolerate an arbitrary but fixed order (float sums) remain
    deterministic at fixed [chunk].  Raises [Invalid_argument] if
    [n < 0] or [chunk < 1]. *)

val run_trials_timed :
  ?domains:int -> n:int -> seed:int64 -> (Ls_rng.Rng.t -> 'a) -> 'a array * timing
(** {!run_trials} plus per-trial and whole-batch wall-clock capture. *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map] (element order preserved).  [f] must be a pure
    function of its argument for the determinism contract to hold. *)

val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map] (element order preserved). *)

val map_seeded :
  ?domains:int -> seed:int64 -> ('a -> Ls_rng.Rng.t -> 'b) -> 'a list -> 'b list
(** Parallel [List.map] for randomized per-item work: item [i] receives
    the [i]-th seed-split stream of [seed], exactly as in
    {!run_trials}. *)

val map_reduce :
  ?domains:int -> map:('a -> 'b) -> reduce:('b -> 'b -> 'b) -> 'b -> 'a array -> 'b
(** [map_reduce ~map ~reduce init xs] maps in parallel, then folds the
    mapped array {e sequentially in index order} — so non-associative
    reductions (e.g. float sums) are still deterministic. *)
