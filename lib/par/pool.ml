(* Each batch carries its own counters so that a worker still draining an
   old batch can never steal indices from a newer one. *)
type batch = {
  body : int -> unit;  (* never raises: Pool.run wraps with a catcher *)
  limit : int;
  next : int Atomic.t;
  completed : int Atomic.t;
  per_worker : int Atomic.t array;  (* items executed, by worker index *)
}

type t = {
  size : int;
  mutable workers : unit Domain.t array;
  m : Mutex.t;
  work : Condition.t;  (* signalled when a new batch is installed *)
  finished : Condition.t;  (* signalled when a batch's last index completes *)
  mutable current : batch option;
  mutable epoch : int;
  mutable stopped : bool;
}

(* True on any domain currently executing batch bodies; nested [run]
   calls fall back to a sequential loop instead of deadlocking. *)
let in_batch = Domain.DLS.new_key (fun () -> false)

let drain t ~me b =
  let rec loop () =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < b.limit then begin
      b.body i;
      ignore (Atomic.fetch_and_add b.per_worker.(me) 1);
      if 1 + Atomic.fetch_and_add b.completed 1 = b.limit then begin
        Mutex.lock t.m;
        Condition.broadcast t.finished;
        Mutex.unlock t.m
      end;
      loop ()
    end
  in
  loop ()

let rec worker t ~me seen =
  Mutex.lock t.m;
  while (not t.stopped) && t.epoch = seen do
    Condition.wait t.work t.m
  done;
  let stopped = t.stopped in
  let seen = t.epoch in
  let batch = t.current in
  Mutex.unlock t.m;
  if not stopped then begin
    (match batch with Some b -> drain t ~me b | None -> ());
    worker t ~me seen
  end

let create size =
  if size < 1 then invalid_arg "Pool.create: size must be >= 1";
  let t =
    {
      size;
      workers = [||];
      m = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      current = None;
      epoch = 0;
      stopped = false;
    }
  in
  if size > 1 then
    t.workers <-
      Array.init (size - 1) (fun i ->
          Domain.spawn (fun () ->
              Domain.DLS.set in_batch true;
              worker t ~me:(i + 1) 0));
  t

let size t = t.size

let sequentially n body =
  for i = 0 to n - 1 do
    body i
  done

let record ~items ~per_worker =
  if Ls_obs.Metrics.enabled () then
    Ls_obs.Metrics.record_batch ~items ~per_worker

let run t ~n body =
  if n <= 0 then ()
  else if t.size = 1 || n = 1 || Domain.DLS.get in_batch then begin
    if t.stopped then invalid_arg "Pool.run: pool is shut down";
    sequentially n body;
    record ~items:n ~per_worker:[| n |]
  end
  else begin
    let errors = Array.make n None in
    let guarded i = try body i with e -> errors.(i) <- Some e in
    let b =
      {
        body = guarded;
        limit = n;
        next = Atomic.make 0;
        completed = Atomic.make 0;
        per_worker = Array.init t.size (fun _ -> Atomic.make 0);
      }
    in
    Mutex.lock t.m;
    if t.stopped then begin
      Mutex.unlock t.m;
      invalid_arg "Pool.run: pool is shut down"
    end;
    (match t.current with
    | Some _ ->
        Mutex.unlock t.m;
        invalid_arg "Pool.run: concurrent batches on one pool"
    | None -> ());
    t.current <- Some b;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.m;
    Domain.DLS.set in_batch true;
    drain t ~me:0 b;
    Domain.DLS.set in_batch false;
    Mutex.lock t.m;
    while Atomic.get b.completed < n do
      Condition.wait t.finished t.m
    done;
    t.current <- None;
    Mutex.unlock t.m;
    record ~items:n ~per_worker:(Array.map Atomic.get b.per_worker);
    Array.iter (function Some e -> raise e | None -> ()) errors
  end

let shutdown t =
  Mutex.lock t.m;
  if t.stopped then Mutex.unlock t.m
  else begin
    t.stopped <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.m;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end
