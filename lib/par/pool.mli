(** A small pool of worker domains for deterministic fan-out.

    The pool owns [size - 1] spawned domains; the caller of {!run}
    participates as the [size]-th worker, so a pool of size 1 spawns
    nothing and degenerates to a plain sequential loop.  Work is handed
    out as batches of integer indices claimed through a shared atomic
    counter (dynamic load balancing), which makes the {e assignment} of
    indices to domains scheduling-dependent — determinism is recovered one
    layer up ({!Par}) by making each index's work a pure function of the
    index. *)

type t

val create : int -> t
(** [create size] spawns [size - 1] worker domains.  [size] must be at
    least 1.  Keep pools few and small: the OCaml runtime caps the total
    number of live domains (128), and oversubscribing cores buys
    nothing. *)

val size : t -> int
(** Total parallelism of the pool, counting the calling domain. *)

val run : t -> n:int -> (int -> unit) -> unit
(** [run pool ~n body] evaluates [body i] exactly once for every
    [i ∈ 0..n-1], distributing indices over the pool's domains, and
    returns when all are done.  Exceptions raised by [body] are caught
    per index; after the batch, the exception of the {e smallest} failing
    index is re-raised in the caller (so failure behaviour is as
    deterministic as the bodies themselves).

    Calling [run] from inside a [body] (same pool or another) is safe:
    the nested batch detects it is already on a worker domain and runs
    sequentially in-place, preserving both progress and determinism. *)

val shutdown : t -> unit
(** Stop and join the workers.  Idempotent.  Using the pool afterwards
    raises [Invalid_argument]. *)
