type t = Splitmix.t

let create seed = Splitmix.create seed

let of_int seed = create (Int64.of_int seed)

let split = Splitmix.split

let copy = Splitmix.copy

let streams seed n =
  let master = create seed in
  Array.init n (fun _ -> split master)

let bits64 = Splitmix.next_int64

let float = Splitmix.float

let int = Splitmix.int

let bool = Splitmix.bool

let bernoulli r p = float r < p

let geometric r p =
  if not (p > 0. && p <= 1.) then invalid_arg "Rng.geometric: p out of (0,1]";
  if p >= 1. then 0
  else
    (* Inversion: floor(ln U / ln(1-p)) is Geometric(p) on {0,1,...}. *)
    let u = 1. -. float r in
    int_of_float (Float.floor (log u /. log (1. -. p)))

let exponential r rate =
  if not (rate > 0.) then invalid_arg "Rng.exponential: rate must be positive";
  -.log (1. -. float r) /. rate

let discrete r w =
  let total = Array.fold_left ( +. ) 0. w in
  if not (total > 0.) then invalid_arg "Rng.discrete: weights sum to zero";
  let x = float r *. total in
  let n = Array.length w in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if x < acc then i else scan (i + 1) acc
  in
  scan 0 0.

let shuffle r a =
  for i = Array.length a - 1 downto 1 do
    let j = int r (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation r n =
  let a = Array.init n (fun i -> i) in
  shuffle r a;
  a
