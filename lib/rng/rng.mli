(** Random sources for the simulated LOCAL network.

    A [Rng.t] wraps a splittable SplitMix64 stream and adds the sampling
    primitives the algorithms in this repository need.  [streams seed n]
    derives [n] mutually independent per-node streams — the "arbitrarily long
    random bit string sampled independently at [v]" that the LOCAL model
    grants every node. *)

type t

val create : int64 -> t
(** Fresh source from a master seed. *)

val of_int : int -> t
(** Convenience: seed from an OCaml [int]. *)

val split : t -> t
(** Independent child stream (see {!Splitmix.split}). *)

val copy : t -> t

val streams : int64 -> int -> t array
(** [streams seed n] is an array of [n] independent sources derived
    deterministically from [seed]; element [v] belongs to node [v]. *)

val bits64 : t -> int64
(** Next raw 64-bit output — e.g. to derive a seed for a [~seed:int64]
    API from a trial's stream. *)

val float : t -> float
(** Uniform in [\[0,1)]. *)

val int : t -> int -> int
(** [int r bound]: uniform in [\[0, bound)], unbiased. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli r p] is [true] with probability [p]. *)

val geometric : t -> float -> int
(** [geometric r p] counts the failures before the first success of a
    Bernoulli([p]) sequence; support [{0, 1, 2, ...}].  Requires
    [0 < p <= 1]. *)

val exponential : t -> float -> float
(** [exponential r rate] samples Exp([rate]). *)

val discrete : t -> float array -> int
(** [discrete r w] samples index [i] with probability [w.(i) / sum w].
    Weights must be non-negative with a positive sum. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation r n] is a uniform permutation of [0..n-1]. *)
