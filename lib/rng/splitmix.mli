(** SplitMix64: a fast, splittable pseudo-random number generator.

    This is the generator of Steele, Lea and Flood ("Fast splittable
    pseudorandom number generators", OOPSLA 2014).  It is the substrate for
    the per-node independent random bit strings that the LOCAL model hands to
    every processor: [split] deterministically derives an independent stream
    from a parent stream, so a network of [n] nodes seeded from one master
    seed reproducibly owns [n] decorrelated generators. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator from a 64-bit seed. *)

val mix64 : int64 -> int64
(** The stateless SplitMix64 finalizer (Stafford's MurmurHash3 variant 13):
    a bijective avalanche mix of one 64-bit word.  Exposed for modules that
    need {e coordinate-indexed} randomness — a decision that is a pure
    function of [(seed, coordinates)] rather than of a stream position, e.g.
    the per-(round, edge) verdicts of {!Ls_local.Faults}. *)

val copy : t -> t
(** [copy g] is an independent clone that will replay [g]'s future output. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of [g]'s subsequent output. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val bits62 : t -> int
(** Next 62-bit non-negative OCaml [int]. *)

val float : t -> float
(** Uniform float in [\[0, 1)], using 53 bits of randomness. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  [bound] must be positive;
    rejection sampling removes modulo bias. *)

val bool : t -> bool
(** Fair coin. *)
