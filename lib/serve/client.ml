(* Minimal blocking client over the frame protocol.  Pipelining is the
   caller's affair: [send] and [recv] are independent, so a client can
   push K requests before reading any response (the overload test does
   exactly this). *)

module Frame = Ls_shard.Frame
module Supervisor = Ls_shard.Supervisor

type t = { fd : Unix.file_descr }

exception Unknown_host of string

let connect_fd addr =
  match addr with
  | Server.Unix_path path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e -> (try Unix.close fd with _ -> ()); raise e);
      fd
  | Server.Tcp (host, port) ->
      (* Resolve BEFORE opening the socket: gethostbyname signals an
         unknown host with Not_found, which is both descriptor-leak bait
         and invisible to a Unix_error-only handler — name it. *)
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match (Unix.gethostbyname host).Unix.h_addr_list with
          | [||] -> raise (Unknown_host host)
          | addrs -> addrs.(0)
          | exception Not_found -> raise (Unknown_host host))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (inet, port))
       with e -> (try Unix.close fd with _ -> ()); raise e);
      fd

let connect addr = { fd = connect_fd addr }

(* Daemon startup is asynchronous from the client's point of view; retry
   the connect over a bounded window (EINTR-safe sleeps) with capped
   exponential backoff: quick early probes, no 100ms stall when the
   daemon is already up, bounded pressure when it is not. *)
let connect_retry ?(attempts = 50) ?(delay_ms = 10) ?(max_delay_ms = 400) addr =
  let named attempt msg =
    Error
      (Printf.sprintf "connect %s after %d attempt(s): %s"
         (Server.address_to_string addr) attempt msg)
  in
  let rec go n delay =
    let attempt = attempts - n + 1 in
    match connect addr with
    | c -> Ok c
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when n > 1 ->
        Supervisor.sleep_ms delay;
        go (n - 1) (min max_delay_ms (2 * delay))
    | exception Unix.Unix_error (e, _, _) ->
        named attempt (Unix.error_message e)
    | exception Unknown_host host ->
        named attempt (Printf.sprintf "unknown host %S" host)
  in
  go attempts (max 1 delay_ms)

let send t req = Protocol.write_request t.fd req

let recv t =
  match Protocol.read_response t.fd with
  | Ok r -> Ok r
  | Error Frame.Closed -> Error "server closed the connection"
  | Error Frame.Truncated -> Error "server died mid-response"
  | Error (Frame.Malformed msg) -> Error msg
  (* A hard reset (the peer kill -9ed mid-response) surfaces from read(2)
     as ECONNRESET, not EOF — same contract as the named errors above:
     recv returns a result, it never leaks Unix_error. *)
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "connection failed: %s" (Unix.error_message e))

let call t req =
  send t req;
  match recv t with
  | Error _ as e -> e
  | Ok resp ->
      if resp.Protocol.rid <> req.Protocol.id then
        Error
          (Printf.sprintf "response id %d does not match request id %d"
             resp.Protocol.rid req.Protocol.id)
      else Ok resp

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
