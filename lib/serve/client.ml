(* Minimal blocking client over the frame protocol.  Pipelining is the
   caller's affair: [send] and [recv] are independent, so a client can
   push K requests before reading any response (the overload test does
   exactly this). *)

module Frame = Ls_shard.Frame
module Supervisor = Ls_shard.Supervisor

type t = { fd : Unix.file_descr }

let connect_fd addr =
  match addr with
  | Server.Unix_path path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e -> (try Unix.close fd with _ -> ()); raise e);
      fd
  | Server.Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      (try Unix.connect fd (Unix.ADDR_INET (inet, port))
       with e -> (try Unix.close fd with _ -> ()); raise e);
      fd

let connect addr = { fd = connect_fd addr }

(* Daemon startup is asynchronous from the client's point of view; retry
   the connect over a bounded window (EINTR-safe sleeps). *)
let connect_retry ?(attempts = 50) ?(delay_ms = 100) addr =
  let rec go n =
    match connect addr with
    | c -> Ok c
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when n > 1 ->
        Supervisor.sleep_ms delay_ms;
        go (n - 1)
    | exception Unix.Unix_error (e, _, _) ->
        Error (Printf.sprintf "connect %s: %s" (Server.address_to_string addr)
                 (Unix.error_message e))
  in
  go attempts

let send t req = Protocol.write_request t.fd req

let recv t =
  match Protocol.read_response t.fd with
  | Ok r -> Ok r
  | Error Frame.Closed -> Error "server closed the connection"
  | Error Frame.Truncated -> Error "server died mid-response"
  | Error (Frame.Malformed msg) -> Error msg

let call t req =
  send t req;
  match recv t with
  | Error _ as e -> e
  | Ok resp ->
      if resp.Protocol.rid <> req.Protocol.id then
        Error
          (Printf.sprintf "response id %d does not match request id %d"
             resp.Protocol.rid req.Protocol.id)
      else Ok resp

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
