(** Blocking client for the serving daemon.

    [send]/[recv] are independent so callers can pipeline: push K
    requests, then read K responses — the server answers a connection's
    requests in arrival order.  {!call} is the sequential convenience. *)

type t

exception Unknown_host of string
(** A TCP hostname that does not resolve (DNS [Not_found] or an empty
    address list), raised by {!connect} before any descriptor is
    opened. *)

val connect : Server.address -> t
(** Raises [Unix.Unix_error] or {!Unknown_host} on failure (see
    {!connect_retry}). *)

val connect_retry :
  ?attempts:int ->
  ?delay_ms:int ->
  ?max_delay_ms:int ->
  Server.address ->
  (t, string) result
(** Retry over daemon startup: ECONNREFUSED/ENOENT retries with capped
    exponential backoff over EINTR-safe sleeps (defaults: 50 attempts,
    10 ms doubling to a 400 ms cap).  Other errors — including an
    unknown hostname — are named [Error]s carrying the attempt count,
    never exceptions. *)

val send : t -> Protocol.request -> unit
(** May raise [Unix.Unix_error] (e.g. EPIPE on a dead daemon) — callers
    that survive restarts catch it and reconnect. *)

val recv : t -> (Protocol.response, string) result
(** Never raises: EOF, truncation, malformed frames and socket-level
    failures (ECONNRESET from a kill -9ed peer) are all named
    [Error]s. *)

val call : t -> Protocol.request -> (Protocol.response, string) result
(** [send] then [recv], checking the correlation id. *)

val close : t -> unit
