(** Blocking client for the serving daemon.

    [send]/[recv] are independent so callers can pipeline: push K
    requests, then read K responses — the server answers a connection's
    requests in arrival order.  {!call} is the sequential convenience. *)

type t

val connect : Server.address -> t
(** Raises [Unix.Unix_error] on failure (see {!connect_retry}). *)

val connect_retry :
  ?attempts:int -> ?delay_ms:int -> Server.address -> (t, string) result
(** Retry over daemon startup: ECONNREFUSED/ENOENT retries with an
    EINTR-safe sleep (default 50 × 100 ms); other errors are named. *)

val send : t -> Protocol.request -> unit
val recv : t -> (Protocol.response, string) result

val call : t -> Protocol.request -> (Protocol.response, string) result
(** [send] then [recv], checking the correlation id. *)

val close : t -> unit
