(* The serving engine: the stable API split out of the CLI harness.

   Spec parsing (graph, model, oracle) lives here with Result types — the
   CLI converts an [Error] to its exit-2 path, the daemon to an [Error_r]
   response; both reject exactly the same values with the same words.

   A batch executes in deterministic stages:
   1. group requests by compiled-instance key, building or cache-loading
      each distinct key once, sequentially (so hit/miss counts are a pure
      function of the request stream);
   2. derive per-trial sample seeds sequentially (the same seed-split
      shape as the CLI's sample_many, so `locsample sample` and a serve
      request with the same seed draw the same trials);
   3. compile missing plans in parallel over the Ls_par pool (Par.map is
      order-preserving), then insert them in key order;
   4. run all sample trials of all requests in ONE Par.map — this is the
      batching win: k coalesced requests for the same model share one
      fan-out and the compiled instance;
   5. assemble bodies sequentially in request order.

   Stages 1, 2, 3-insert and 5 touch the caches and counters from the
   submitting thread only (the Lru is single-owner by design); stages 3
   and 4 are pure per-item computations, so the response bodies are a
   pure function of the request bytes at any domain count. *)

module Graph = Ls_graph.Graph
module Generators = Ls_graph.Generators
module Dist = Ls_dist.Dist
module Empirical = Ls_dist.Empirical
module Rng = Ls_rng.Rng
module Par = Ls_par.Par
module Models = Ls_gibbs.Models
module Matching = Ls_gibbs.Matching
module Metrics = Ls_obs.Metrics
module Trace = Ls_obs.Trace
module Health = Ls_obs.Health
module Codec = Ls_sketch.Codec
open Ls_core

(* --- spec parsing (Result-typed; the CLI front-end wraps these) ------- *)

let int_field name s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s expects an integer, got %S" name s)

let float_field name s =
  match float_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s expects a number, got %S" name s)

let parse_graph rng spec =
  let ( let* ) = Result.bind in
  let dims name dims k =
    match String.split_on_char 'x' dims with
    | [ a; b ] ->
        let* a = int_field name a in
        let* b = int_field name b in
        k a b
    | _ -> Error name
  in
  match String.split_on_char ':' spec with
  | [ "cycle"; n ] ->
      let* n = int_field "cycle" n in
      Ok (Generators.cycle n)
  | [ "path"; n ] ->
      let* n = int_field "path" n in
      Ok (Generators.path n)
  | [ "tree-rand"; n ] ->
      let* n = int_field "tree-rand" n in
      Ok (Generators.random_tree rng n)
  | [ "grid"; d ] -> dims "grid wants ROWSxCOLS" d (fun r c -> Ok (Generators.grid r c))
  | [ "tree"; d ] ->
      dims "tree wants BRANCHINGxDEPTH" d (fun b depth ->
          Ok (Generators.complete_tree ~branching:b ~depth))
  | [ "regular"; d ] ->
      dims "regular wants NxDEGREE" d (fun n deg ->
          Ok (Generators.random_regular rng ~n ~d:deg))
  | _ -> Error (Printf.sprintf "cannot parse graph %S" spec)

type model = {
  spec : Ls_gibbs.Spec.t;
  describe : string;
  render : int array -> string;
}

let parse_model g spec =
  let ( let* ) = Result.bind in
  let render_binary sigma =
    String.concat "" (List.map string_of_int (Array.to_list sigma))
  in
  let render_csv sigma =
    String.concat "," (List.map string_of_int (Array.to_list sigma))
  in
  match String.split_on_char ':' spec with
  | [ "hardcore"; l ] ->
      let* lambda = float_field "hardcore" l in
      Ok
        {
          spec = Models.hardcore g ~lambda;
          describe = Printf.sprintf "hardcore(lambda=%g)" lambda;
          render = render_binary;
        }
  | [ "ising"; b ] | [ "ising"; b; _ ] ->
      let* beta = float_field "ising" b in
      let* field =
        match String.split_on_char ':' spec with
        | [ _; _; f ] -> float_field "ising field" f
        | _ -> Ok 1.
      in
      Ok
        {
          spec = Models.ising g ~beta ~field;
          describe = Printf.sprintf "ising(beta=%g, field=%g)" beta field;
          render = render_binary;
        }
  | [ "potts"; q; b ] ->
      let* q = int_field "potts" q in
      let* beta = float_field "potts" b in
      Ok
        {
          spec = Models.potts g ~q ~beta;
          describe = Printf.sprintf "potts(q=%d, beta=%g)" q beta;
          render = render_csv;
        }
  | [ "coloring"; q ] ->
      let* q = int_field "coloring" q in
      Ok
        {
          spec = Models.coloring g ~q;
          describe = Printf.sprintf "coloring(q=%d)" q;
          render = render_csv;
        }
  | [ "matching"; l ] ->
      let* lambda = float_field "matching" l in
      let m = Matching.make g ~lambda in
      Ok
        {
          spec = m.Matching.spec;
          describe =
            Printf.sprintf "matching(lambda=%g) [on the line graph]" lambda;
          render =
            (fun sigma ->
              String.concat " "
                (List.map
                   (fun (u, v) -> Printf.sprintf "%d-%d" u v)
                   (Matching.matching_of_config m sigma)));
        }
  | _ -> Error (Printf.sprintf "cannot parse model %S" spec)

let make_oracle ~engine ~t inst =
  match engine with
  | "ball" -> Ok (Inference.ssm_oracle ~t inst)
  | "saw" -> Ok (Inference.saw_oracle ~depth:t inst)
  | other -> Error (Printf.sprintf "unknown engine %S (ball|saw)" other)

(* --- compiled instances ----------------------------------------------- *)

type compiled = {
  c_graph : Graph.t;
  c_model : model;
  c_inst : Instance.t;
  c_oracle : Inference.oracle;
  c_spec : Protocol.request;
      (* Normalized rebuild spec (graph/model/t/engine/seed only): oracles
         hold closures, so snapshots persist the spec and recompile. *)
}

(* Graph families that consume randomness during construction: their
   instance (and therefore its cache key) depends on the request seed.
   Deterministic families share one cache entry across all seeds. *)
let seed_sensitive spec =
  let has_prefix p = String.length spec >= String.length p
                     && String.sub spec 0 (String.length p) = p in
  has_prefix "tree-rand:" || has_prefix "regular:"

let instance_key (r : Protocol.request) =
  (* Length-prefixing each variable component keeps the key injective
     even if a future spec syntax admits '|'. *)
  let base =
    Printf.sprintf "%d:%s|%d:%s|%d|%d:%s"
      (String.length r.Protocol.graph) r.Protocol.graph
      (String.length r.Protocol.model) r.Protocol.model
      r.Protocol.t
      (String.length r.Protocol.engine) r.Protocol.engine
  in
  if seed_sensitive r.Protocol.graph then
    Printf.sprintf "%s|%Lx" base r.Protocol.seed
  else base

(* The slice of a request a compiled instance actually depends on — two
   requests with the same instance_key normalize to the same spec, and a
   snapshot entry rebuilds from it bit-identically. *)
let normalize_spec (r : Protocol.request) =
  {
    Protocol.id = 0;
    op = Protocol.Sample;
    seed = (if seed_sensitive r.Protocol.graph then r.Protocol.seed else 0L);
    graph = r.Protocol.graph;
    model = r.Protocol.model;
    t = r.Protocol.t;
    engine = r.Protocol.engine;
    trials = 1;
    vertex = 0;
    deadline_ms = 0;
  }

let build_compiled ~max_vertices (r : Protocol.request) =
  let ( let* ) = Result.bind in
  (* Same derivation as the CLI's make_instance: the graph rng is seeded
     by the request seed directly. *)
  let rng = Rng.create r.Protocol.seed in
  let* c_graph = parse_graph rng r.Protocol.graph in
  if Graph.n c_graph > max_vertices then
    Error
      (Printf.sprintf "graph has %d vertices, over the per-request cap of %d"
         (Graph.n c_graph) max_vertices)
  else
    let* c_model = parse_model c_graph r.Protocol.model in
    let c_inst = Instance.unpinned c_model.spec in
    let* c_oracle = make_oracle ~engine:r.Protocol.engine ~t:r.Protocol.t c_inst in
    Ok { c_graph; c_model; c_inst; c_oracle; c_spec = normalize_spec r }

(* --- the engine ------------------------------------------------------- *)

type error = Bad_request of string | Overloaded | Internal of string

let error_body = function
  | Bad_request m -> Protocol.Error_r { code = Protocol.Bad_request; message = m }
  | Overloaded ->
      Protocol.Error_r { code = Protocol.Overloaded; message = "queue full" }
  | Internal m -> Protocol.Error_r { code = Protocol.Internal; message = m }

type t = {
  instances : compiled Lru.t;
  plans : Ls_local.Scheduler.plan Lru.t;
  max_vertices : int;
  mutable requests : int;
  mutable batches : int;
  mutable coalesced : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  (* Admission outcomes, owned by the server's accept loop. *)
  mutable rejected : int;
  mutable expired : int;
  mutable max_queue : int;
  (* Warm-start bookkeeping: keys restored from a snapshot, and the hits
     they have absorbed since boot. *)
  restored : (string, unit) Hashtbl.t;
  mutable snapshot_hits : int;
  (* Worker incarnation under supervision; 0 when never restarted. *)
  mutable restarts : int;
}

let create ?(instance_cache = 64) ?(plan_cache = 1024) ?(max_vertices = 100_000)
    () =
  {
    instances = Lru.create ~capacity:instance_cache;
    plans = Lru.create ~capacity:plan_cache;
    max_vertices;
    requests = 0;
    batches = 0;
    coalesced = 0;
    cache_hits = 0;
    cache_misses = 0;
    rejected = 0;
    expired = 0;
    max_queue = 0;
    restored = Hashtbl.create 64;
    snapshot_hits = 0;
    restarts = 0;
  }

let note_rejection t =
  t.rejected <- t.rejected + 1;
  Metrics.record_serve_rejection ()

let note_expiry t =
  t.expired <- t.expired + 1;
  Metrics.record_serve_expiry ()

let set_restarts t n = t.restarts <- n
let note_queue_depth t depth = if depth > t.max_queue then t.max_queue <- depth

let stats t =
  {
    Protocol.st_requests = t.requests;
    st_batches = t.batches;
    st_coalesced = t.coalesced;
    st_cache_hits = t.cache_hits;
    st_cache_misses = t.cache_misses;
    st_evictions = Lru.evictions t.instances + Lru.evictions t.plans;
    st_rejected = t.rejected;
    st_expired = t.expired;
    st_snapshot_hits = t.snapshot_hits;
    st_restarts = t.restarts;
    st_max_queue = t.max_queue;
    st_domains = Par.domains ();
  }

let cache_lookup t lru key =
  match Lru.find lru key with
  | Some v ->
      t.cache_hits <- t.cache_hits + 1;
      Metrics.record_serve_cache ~hit:true;
      if Hashtbl.mem t.restored key then begin
        t.snapshot_hits <- t.snapshot_hits + 1;
        Metrics.record_serve_snapshot_hit ()
      end;
      Some v
  | None ->
      t.cache_misses <- t.cache_misses + 1;
      Metrics.record_serve_cache ~hit:false;
      None

let cache_insert _t lru key v =
  let before = Lru.evictions lru in
  Lru.add lru key v;
  for _ = 1 to Lru.evictions lru - before do
    Metrics.record_serve_cache_eviction ()
  done

(* Per-trial sample seeds: the same split shape as the CLI's non-faulty
   sample_many run_one (stream i of the request seed, one bits64 draw). *)
let trial_seeds seed trials =
  let rngs = Rng.streams seed trials in
  Array.map Rng.bits64 rngs

let plan_key ikey sseed = Printf.sprintf "%s|p%Lx" ikey sseed

let run_batch t ?domains ?trace (requests : Protocol.request list) :
    (Protocol.body, error) result list =
  let n_requests = List.length requests in
  t.requests <- t.requests + n_requests;
  t.batches <- t.batches + 1;
  let hits0 = t.cache_hits in
  (* Stage 1: one compiled instance per distinct key, first-occurrence
     order.  Requests whose build fails carry their error forward. *)
  let built : (string, (compiled, error) result) Hashtbl.t = Hashtbl.create 16 in
  let coalesced = ref 0 in
  let resolved =
    List.map
      (fun (r : Protocol.request) ->
        match r.Protocol.op with
        | Protocol.Stats | Protocol.Health -> (r, Ok None)
        | _ -> (
            let key = instance_key r in
            match Hashtbl.find_opt built key with
            | Some (Ok c) ->
                incr coalesced;
                (r, Ok (Some (key, c)))
            | Some (Error e) -> (r, Error e)
            | None -> (
                match cache_lookup t t.instances key with
                | Some c ->
                    Hashtbl.replace built key (Ok c);
                    (r, Ok (Some (key, c)))
                | None -> (
                    match build_compiled ~max_vertices:t.max_vertices r with
                    | Ok c ->
                        cache_insert t t.instances key c;
                        Hashtbl.replace built key (Ok c);
                        (r, Ok (Some (key, c)))
                    | Error msg ->
                        let e = Bad_request msg in
                        Hashtbl.replace built key (Error e);
                        (r, Error e)))))
      requests
  in
  t.coalesced <- t.coalesced + !coalesced;
  (* Stage 2: per-trial seeds for every admissible Sample request.  Jobs
     carry their batch position: request ids are client-chosen and may
     collide across the connections batched together, so nothing
     downstream keys on them. *)
  let sample_jobs =
    List.filter_map
      (fun (pos, ((r : Protocol.request), res)) ->
        match (r.Protocol.op, res) with
        | Protocol.Sample, Ok (Some (key, c)) ->
            Some (pos, r, key, c, trial_seeds r.Protocol.seed r.Protocol.trials)
        | _ -> None)
      (List.mapi (fun pos rr -> (pos, rr)) resolved)
  in
  (* Stage 3: plans.  Sequential lookups (deterministic hit counts), one
     parallel Par.map over the misses, insertions in deduped key order. *)
  let plan_table : (string, Ls_local.Scheduler.plan) Hashtbl.t =
    Hashtbl.create 64
  in
  let missing = ref [] (* (pkey, compiled, sseed), reverse order *) in
  let pending : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (_pos, _r, ikey, c, sseeds) ->
      Array.iter
        (fun sseed ->
          let pkey = plan_key ikey sseed in
          if not (Hashtbl.mem plan_table pkey || Hashtbl.mem pending pkey)
          then
            match cache_lookup t t.plans pkey with
            | Some p -> Hashtbl.replace plan_table pkey p
            | None ->
                (* Reserve so a duplicate trial seed in this batch
                   compiles once; filled after the parallel map. *)
                Hashtbl.replace pending pkey ();
                missing := (pkey, c, sseed) :: !missing)
        sseeds)
    sample_jobs;
  let missing = Array.of_list (List.rev !missing) in
  let compiled_plans =
    Par.map ?domains
      (fun (_pkey, c, sseed) ->
        Local_sampler.plan c.c_oracle c.c_inst ~seed:sseed)
      missing
  in
  Array.iteri
    (fun i (pkey, _c, _sseed) ->
      Hashtbl.replace plan_table pkey compiled_plans.(i);
      cache_insert t t.plans pkey compiled_plans.(i))
    missing;
  (* Stage 4: every trial of every sample request in one fan-out. *)
  let all_trials =
    Array.concat
      (List.map
         (fun (_pos, _r, ikey, c, sseeds) ->
           Array.map
             (fun sseed ->
               (c, Hashtbl.find plan_table (plan_key ikey sseed), sseed))
             sseeds)
         sample_jobs)
  in
  let trial_results =
    Par.map ?domains
      (fun (c, plan, sseed) ->
        let r = Local_sampler.sample_planned c.c_oracle ~plan c.c_inst ~seed:sseed in
        (r.Local_sampler.success, r.Local_sampler.sigma))
      all_trials
  in
  (* Stage 5: assemble bodies in request order. *)
  let cursor = ref 0 in
  let take k =
    let out = Array.sub trial_results !cursor k in
    cursor := !cursor + k;
    out
  in
  let sample_bodies : Protocol.body option array = Array.make n_requests None in
  List.iter
    (fun (pos, (r : Protocol.request), _ikey, _c, sseeds) ->
      let results = take (Array.length sseeds) in
      let emp = Empirical.create () in
      Array.iter (fun (ok, y) -> if ok then Empirical.add emp y) results;
      let first =
        match Array.find_opt fst results with
        | Some (_, y) -> y
        | None -> [||]
      in
      sample_bodies.(pos) <-
        Some
          (Protocol.Sample_r
             {
               trials = r.Protocol.trials;
               successes = Empirical.total emp;
               distinct = Empirical.distinct emp;
               first;
             }))
    sample_jobs;
  let bodies =
    List.mapi
      (fun pos ((r : Protocol.request), res) ->
        match res with
        | Error e -> Error e
        | Ok None -> (
            match r.Protocol.op with
            | Protocol.Health ->
                Ok (Protocol.Health_r { reasons = Health.degraded () })
            | _ -> Ok (Protocol.Stats_r (stats t)))
        | Ok (Some (_key, c)) -> (
            match r.Protocol.op with
            | Protocol.Sample -> (
                match sample_bodies.(pos) with
                | Some b -> Ok b
                | None -> Error (Internal "sample body missing for batch slot"))
            | Protocol.Infer ->
                if r.Protocol.vertex >= Graph.n c.c_graph then
                  Error
                    (Bad_request
                       (Printf.sprintf "vertex %d out of range (graph has %d)"
                          r.Protocol.vertex (Graph.n c.c_graph)))
                else
                  let d = c.c_oracle.Inference.infer c.c_inst r.Protocol.vertex in
                  Ok (Protocol.Infer_r { probs = Array.copy (d :> float array) })
            | Protocol.Count ->
                let order = Array.init (Instance.n c.c_inst) (fun i -> i) in
                let log_z =
                  Reductions.estimate_log_partition c.c_oracle c.c_inst ~order
                in
                Ok (Protocol.Count_r { log_z })
            | Protocol.Stats -> Ok (Protocol.Stats_r (stats t))
            | Protocol.Health ->
                Ok (Protocol.Health_r { reasons = Health.degraded () })))
      resolved
  in
  Metrics.record_serve_batch ~requests:n_requests ~coalesced:!coalesced;
  (match Trace.resolve trace with
  | Some s ->
      Trace.emit s
        (Trace.Serve_batch
           {
             requests = n_requests;
             coalesced = !coalesced;
             cache_hits = t.cache_hits - hits0;
           })
  | None -> ());
  bodies

let submit_batch t ?domains ?trace requests =
  try run_batch t ?domains ?trace requests
  with exn ->
    (* A payload exception must not kill the daemon: the whole batch
       reports Internal (per-request isolation would hide which request
       poisoned the shared fan-out). *)
    let e = Internal (Printexc.to_string exn) in
    List.map (fun _ -> Error e) requests

let submit t ?domains ?trace request =
  match submit_batch t ?domains ?trace [ request ] with
  | [ r ] -> r
  | _ -> Error (Internal "submit: batch arity mismatch")

(* --- warm-start snapshots ---------------------------------------------- *)

(* The caches serialized as pure data: plans field by field, compiled
   instances as their normalized rebuild spec (recompiled on restore).
   The payload is wrapped in a Ckpt envelope by the server, which
   contributes atomicity and a digest; the bounds here only keep a
   corrupt-but-digest-valid payload from sizing absurd allocations. *)

let snapshot_magic = "LSSV"
let snapshot_version = 1
let max_snapshot_key = 4096
let max_snapshot_entries = 1 lsl 20

let add_string buf s =
  Codec.add_int buf (String.length s);
  Buffer.add_string buf s

let read_string s cur ~cap =
  let ( let* ) = Result.bind in
  let* len = Codec.read_int s cur in
  if len < 0 || len > cap then
    Error (Printf.sprintf "Engine: snapshot string length %d outside [0, %d]" len cap)
  else if len > Codec.remaining s cur then
    Error "Engine: snapshot string exceeds bytes present"
  else begin
    let v = String.sub s !cur len in
    cur := !cur + len;
    Ok v
  end

let read_count s cur ~what =
  Result.bind (Codec.read_int s cur) (fun n ->
      if n < 0 || n > max_snapshot_entries then
        Error (Printf.sprintf "Engine: snapshot %s count %d out of range" what n)
      else if n > Codec.remaining s cur then
        Error (Printf.sprintf "Engine: snapshot %s count exceeds bytes present" what)
      else Ok n)

let add_plan buf (p : Ls_local.Scheduler.plan) =
  Codec.add_int buf p.Ls_local.Scheduler.p_locality;
  Codec.add_int buf (Array.length p.p_order);
  Array.iter (fun v -> Codec.add_int buf v) p.p_order;
  Codec.add_int buf (Array.length p.p_failed);
  Array.iter (fun b -> Codec.add_int buf (if b then 1 else 0)) p.p_failed;
  Codec.add_int buf p.p_rounds;
  Codec.add_int buf p.p_decomposition_rounds;
  Codec.add_int buf p.p_colors;
  Codec.add_int buf p.p_clusters;
  Codec.add_int buf p.p_max_cluster_radius;
  Codec.add_int buf p.p_failures

let read_plan s cur =
  let ( let* ) = Result.bind in
  let read_array ~of_int =
    let* len = read_count s cur ~what:"plan array" in
    let out = Array.make (max len 1) (of_int 0) in
    let rec go i =
      if i = len then Ok (Array.sub out 0 len)
      else
        let* v = Codec.read_int s cur in
        out.(i) <- of_int v;
        go (i + 1)
    in
    go 0
  in
  let* p_locality = Codec.read_int s cur in
  let* p_order = read_array ~of_int:Fun.id in
  let* p_failed = read_array ~of_int:(fun v -> v <> 0) in
  let* p_rounds = Codec.read_int s cur in
  let* p_decomposition_rounds = Codec.read_int s cur in
  let* p_colors = Codec.read_int s cur in
  let* p_clusters = Codec.read_int s cur in
  let* p_max_cluster_radius = Codec.read_int s cur in
  let* p_failures = Codec.read_int s cur in
  Ok
    {
      Ls_local.Scheduler.p_locality;
      p_order;
      p_failed;
      p_rounds;
      p_decomposition_rounds;
      p_colors;
      p_clusters;
      p_max_cluster_radius;
      p_failures;
    }

let snapshot t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf snapshot_magic;
  Codec.add_int buf snapshot_version;
  let instances = Lru.to_list t.instances in
  Codec.add_int buf (List.length instances);
  List.iter
    (fun (key, c) ->
      add_string buf key;
      add_string buf c.c_spec.Protocol.graph;
      add_string buf c.c_spec.Protocol.model;
      Codec.add_int buf c.c_spec.Protocol.t;
      add_string buf c.c_spec.Protocol.engine;
      Codec.add_i64 buf c.c_spec.Protocol.seed)
    instances;
  let plans = Lru.to_list t.plans in
  Codec.add_int buf (List.length plans);
  List.iter
    (fun (key, p) ->
      add_string buf key;
      add_plan buf p)
    plans;
  Buffer.contents buf

let restore t s =
  let ( let* ) = Result.bind in
  let cur = ref 0 in
  let* () = Codec.read_magic s cur snapshot_magic in
  let* v = Codec.read_int s cur in
  if v <> snapshot_version then Error "Engine: unknown snapshot version"
  else begin
    let restored = ref 0 in
    let mark key =
      Hashtbl.replace t.restored key ();
      incr restored
    in
    let* n_inst = read_count s cur ~what:"instance" in
    let rec load_inst i =
      if i = n_inst then Ok ()
      else
        let* key = read_string s cur ~cap:max_snapshot_key in
        let* graph = read_string s cur ~cap:Protocol.max_spec_len in
        let* model = read_string s cur ~cap:Protocol.max_spec_len in
        let* tt = Codec.read_int s cur in
        let* engine = read_string s cur ~cap:Protocol.max_spec_len in
        let* seed = Codec.read_i64 s cur in
        let spec =
          {
            Protocol.id = 0;
            op = Protocol.Sample;
            seed;
            graph;
            model;
            t = tt;
            engine;
            trials = 1;
            vertex = 0;
            deadline_ms = 0;
          }
        in
        (* An entry the current config refuses to rebuild (e.g. a smaller
           max_vertices) is dropped, not fatal: warm-start is best-effort. *)
        (match build_compiled ~max_vertices:t.max_vertices spec with
        | Ok c ->
            Lru.add t.instances key c;
            mark key
        | Error _ -> ());
        load_inst (i + 1)
    in
    let* () = load_inst 0 in
    let* n_plans = read_count s cur ~what:"plan" in
    let rec load_plan i =
      if i = n_plans then Ok ()
      else
        let* key = read_string s cur ~cap:max_snapshot_key in
        let* p = read_plan s cur in
        Lru.add t.plans key p;
        mark key;
        load_plan (i + 1)
    in
    let* () = load_plan 0 in
    if Codec.remaining s cur <> 0 then
      Error "Engine: trailing bytes after snapshot"
    else Ok !restored
  end
