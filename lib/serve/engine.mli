(** The serving engine: request execution split out of the CLI harness.

    Spec parsing is Result-typed so the CLI (exit-2 path) and the daemon
    ([Error_r] response) reject exactly the same values with the same
    words.  {!submit_batch} multiplexes a batch of admitted requests onto
    the {!Ls_par} domain pool: same-model requests coalesce onto one
    compiled instance, all sample trials of the whole batch share one
    parallel fan-out, and compiled instances and Linial–Saks plans are
    LRU-cached keyed by the canonical (graph, model, params[, seed])
    string — see {!Lru}.

    Determinism: cache lookups, seed derivation and body assembly run
    sequentially on the submitting thread; the parallel stages are pure
    per-item maps over order-preserving {!Ls_par.Par.map}.  The bodies
    returned (and their hit/miss accounting) are a pure function of the
    request stream at any domain count.  A [Sample] request with seed [s]
    draws exactly the trials that [locsample sample --seed s --trials k]
    draws. *)

type model = {
  spec : Ls_gibbs.Spec.t;
  describe : string;
  render : int array -> string;
}

val parse_graph : Ls_rng.Rng.t -> string -> (Ls_graph.Graph.t, string) result
(** ["cycle:N"], ["path:N"], ["grid:RxC"], ["tree:BxD"], ["regular:NxD"],
    ["tree-rand:N"]; the rng feeds only the random families. *)

val parse_model : Ls_graph.Graph.t -> string -> (model, string) result
(** ["hardcore:L"], ["ising:B[:F]"], ["potts:Q:B"], ["coloring:Q"],
    ["matching:L"]. *)

val make_oracle :
  engine:string ->
  t:int ->
  Ls_core.Instance.t ->
  (Ls_core.Inference.oracle, string) result
(** ["ball"] (Theorem 5.1) or ["saw"] (Weitz). *)

type error = Bad_request of string | Overloaded | Internal of string

val error_body : error -> Protocol.body
(** The [Error_r] a server sends for an engine (or admission) error. *)

type t

val create :
  ?instance_cache:int ->
  ?plan_cache:int ->
  ?max_vertices:int ->
  unit ->
  t
(** Defaults: 64 compiled instances, 1024 plans, 100k vertex cap per
    request graph. *)

val submit :
  t ->
  ?domains:int ->
  ?trace:Ls_obs.Trace.t ->
  Protocol.request ->
  (Protocol.body, error) result
(** One request — a singleton {!submit_batch}. *)

val submit_batch :
  t ->
  ?domains:int ->
  ?trace:Ls_obs.Trace.t ->
  Protocol.request list ->
  (Protocol.body, error) result list
(** Execute a batch; one result per request, in request order.  Never
    raises: a payload exception surfaces as [Error (Internal _)] for the
    whole batch.  Emits a {!Ls_obs.Trace.Serve_batch} event and the serve
    metrics counters per batch. *)

val stats : t -> Protocol.stats
(** Cumulative engine counters (plus the admission counters maintained by
    the server via {!note_rejection}/{!note_queue_depth}). *)

val note_rejection : t -> unit
(** The server records each [Overloaded] admission verdict here. *)

val note_expiry : t -> unit
(** The server records each [Expired] admission verdict here. *)

val set_restarts : t -> int -> unit
(** The supervised worker's incarnation number, surfaced in {!stats}. *)

val note_queue_depth : t -> int -> unit
(** The server reports its queue depth after each enqueue; {!stats}
    exposes the high-water mark. *)

(** {1 Warm-start snapshots} *)

val snapshot : t -> string
(** Serialize both LRU caches as pure data: plans field by field,
    compiled instances as the normalized spec that rebuilds them.  The
    result carries its own magic/version but no digest — the server
    wraps it in a {!Ls_shard.Ckpt} envelope for atomicity and
    self-validation on disk. *)

val restore : t -> string -> (int, string) result
(** Load a {!snapshot} payload into the engine's caches, recompiling
    each instance from its stored spec.  Returns the number of entries
    restored.  Entries the current configuration refuses to rebuild
    (e.g. a smaller [max_vertices]) are skipped, never fatal; a
    malformed payload is a named [Error] and the caches may hold a
    prefix of its entries (the caller treats this as a cold start).
    Subsequent cache hits on restored keys count as snapshot hits in
    {!stats} and {!Ls_obs.Metrics}. *)

(**/**)

val instance_key : Protocol.request -> string
val seed_sensitive : string -> bool
(** Canonical cache keying, exposed for tests. *)

(**/**)
