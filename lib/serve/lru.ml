(* Bounded string-keyed LRU.

   Recency is a monotone generation counter stamped on every find/add;
   eviction scans for the minimum stamp.  The scan is O(capacity), which
   is fine at serving cache sizes (tens to hundreds of entries holding
   multi-kilobyte compiled plans — the values dwarf the bookkeeping).
   Single-owner discipline: the engine touches its caches only from the
   submitting thread, so there is no lock here by design. *)

type 'a entry = { mutable stamp : int; value : 'a }

type 'a t = {
  capacity : int;
  table : (string, 'a entry) Hashtbl.t;
  mutable clock : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  { capacity; table = Hashtbl.create (2 * capacity); clock = 0; evictions = 0 }

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some e ->
      e.stamp <- tick t;
      Some e.value

let evict_oldest t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, stamp) when stamp <= e.stamp -> ()
      | _ -> victim := Some (k, e.stamp))
    t.table;
  match !victim with
  | Some (k, _) ->
      Hashtbl.remove t.table k;
      t.evictions <- t.evictions + 1
  | None -> ()

let add t key value =
  (match Hashtbl.find_opt t.table key with
  | Some _ -> Hashtbl.remove t.table key
  | None -> if Hashtbl.length t.table >= t.capacity then evict_oldest t);
  Hashtbl.replace t.table key { stamp = tick t; value }

let length t = Hashtbl.length t.table
let evictions t = t.evictions
let capacity t = t.capacity

let to_list t =
  Hashtbl.fold (fun k e acc -> (e.stamp, k, e.value) :: acc) t.table []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  |> List.map (fun (_, k, v) -> (k, v))
