(** Bounded string-keyed LRU cache for compiled instances and plans.

    Not thread-safe by design: the engine is the single owner and touches
    its caches only from the submitting thread, keeping hit/miss/eviction
    counts a pure function of the request stream (the determinism the
    serve CI job byte-checks). *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] if [capacity < 1]. *)

val find : 'a t -> string -> 'a option
(** Refreshes the entry's recency on hit. *)

val add : 'a t -> string -> 'a -> unit
(** Insert (or refresh) a binding, evicting the least-recently-used
    entry when at capacity. *)

val length : 'a t -> int
val capacity : 'a t -> int

val evictions : 'a t -> int
(** Total evictions since creation. *)

val to_list : 'a t -> (string * 'a) list
(** All bindings, least-recently-used first — re-{!add}ing them in order
    into an empty cache reconstructs the recency order (and evicts the
    oldest first if the new capacity is smaller).  The snapshot layer
    serializes caches through this. *)
