(* Wire protocol for the serving daemon.

   Framing is delegated to Ls_shard.Frame (magic, kind byte, length
   prefix validated before allocation, payload digest, EINTR-safe IO);
   this module owns the payload layer: a request or response body behind
   its own 4-byte magic, every field length-checked against the bytes
   actually present before any allocation is sized by it.  The codec is
   pure — encode/decode never touch a descriptor — so the fuzz suite can
   hammer it exactly like the Frame codec: mutated bytes produce named
   [Error]s, never exceptions. *)

module Frame = Ls_shard.Frame
module Codec = Ls_sketch.Codec

let kind_request = 0x51 (* 'Q' *)
let kind_response = 0x52 (* 'R' *)
let request_magic = "LSRQ"
let response_magic = "LSRS"

(* Hard caps: every variable-length field is bounded, so a hostile peer
   cannot make the daemon allocate more than a few MB per frame. *)
let max_spec_len = 256
let max_trials = 1_000_000
let max_t = 1_000_000
let max_vector = 1_000_000
let max_deadline_ms = 86_400_000

type op = Sample | Infer | Count | Stats | Health

let op_name = function
  | Sample -> "sample"
  | Infer -> "infer"
  | Count -> "count"
  | Stats -> "stats"
  | Health -> "health"

let op_tag = function
  | Sample -> 0
  | Infer -> 1
  | Count -> 2
  | Stats -> 3
  | Health -> 4

let op_of_tag = function
  | 0 -> Ok Sample
  | 1 -> Ok Infer
  | 2 -> Ok Count
  | 3 -> Ok Stats
  | 4 -> Ok Health
  | n -> Error (Printf.sprintf "Protocol: unknown op tag %d" n)

type request = {
  id : int;
  op : op;
  seed : int64;
  graph : string;
  model : string;
  t : int;
  engine : string;
  trials : int;
  vertex : int;
  deadline_ms : int;
}

type err_code = Bad_request | Overloaded | Unsupported | Internal | Expired

let err_name = function
  | Bad_request -> "bad_request"
  | Overloaded -> "overloaded"
  | Unsupported -> "unsupported"
  | Internal -> "internal"
  | Expired -> "expired"

let err_tag = function
  | Bad_request -> 0
  | Overloaded -> 1
  | Unsupported -> 2
  | Internal -> 3
  | Expired -> 4

let err_of_tag = function
  | 0 -> Ok Bad_request
  | 1 -> Ok Overloaded
  | 2 -> Ok Unsupported
  | 3 -> Ok Internal
  | 4 -> Ok Expired
  | n -> Error (Printf.sprintf "Protocol: unknown error code %d" n)

type stats = {
  st_requests : int;
  st_batches : int;
  st_coalesced : int;
  st_cache_hits : int;
  st_cache_misses : int;
  st_evictions : int;
  st_rejected : int;
  st_expired : int;
  st_snapshot_hits : int;
  st_restarts : int;
  st_max_queue : int;
  st_domains : int;
}

type body =
  | Sample_r of {
      trials : int;
      successes : int;
      distinct : int;
      first : int array;
    }
  | Infer_r of { probs : float array }
  | Count_r of { log_z : float }
  | Stats_r of stats
  | Health_r of { reasons : (string * string) list }
      (* (subsystem, reason) pairs, sorted; [] = ok *)
  | Error_r of { code : err_code; message : string }

type response = { rid : int; body : body }

(* --- validation ------------------------------------------------------- *)

let check_spec name s =
  let len = String.length s in
  if len = 0 then Error (Printf.sprintf "Protocol: empty %s spec" name)
  else if len > max_spec_len then
    Error
      (Printf.sprintf "Protocol: %s spec of %d bytes exceeds the %d-byte cap"
         name len max_spec_len)
  else Ok ()

let validate_request r =
  let ( let* ) = Result.bind in
  let* () = check_spec "graph" r.graph in
  let* () = check_spec "model" r.model in
  let* () = check_spec "engine" r.engine in
  if r.id < 0 then Error "Protocol: negative request id"
  else if r.t < 0 || r.t > max_t then
    Error (Printf.sprintf "Protocol: t=%d outside [0, %d]" r.t max_t)
  else if r.trials < 1 || r.trials > max_trials then
    Error
      (Printf.sprintf "Protocol: trials=%d outside [1, %d]" r.trials max_trials)
  else if r.vertex < 0 then Error "Protocol: negative vertex"
  else if r.deadline_ms < 0 || r.deadline_ms > max_deadline_ms then
    Error
      (Printf.sprintf "Protocol: deadline_ms=%d outside [0, %d]" r.deadline_ms
         max_deadline_ms)
  else Ok ()

(* --- payload codec ---------------------------------------------------- *)

let add_string buf s =
  Codec.add_int buf (String.length s);
  Buffer.add_string buf s

let read_string s cur ~cap =
  let ( let* ) = Result.bind in
  let* len = Codec.read_int s cur in
  if len < 0 || len > cap then
    Error (Printf.sprintf "Protocol: string length %d outside [0, %d]" len cap)
  else if len > Codec.remaining s cur then
    Error "Protocol: string length exceeds the bytes present"
  else begin
    let v = String.sub s !cur len in
    cur := !cur + len;
    Ok v
  end

let request_payload r =
  let buf = Buffer.create 64 in
  Buffer.add_string buf request_magic;
  Codec.add_int buf r.id;
  Codec.add_int buf (op_tag r.op);
  Codec.add_i64 buf r.seed;
  Codec.add_int buf r.t;
  Codec.add_int buf r.trials;
  Codec.add_int buf r.vertex;
  Codec.add_int buf r.deadline_ms;
  add_string buf r.graph;
  add_string buf r.model;
  add_string buf r.engine;
  Buffer.contents buf

let request_of_payload s =
  let ( let* ) = Result.bind in
  let cur = ref 0 in
  let* () = Codec.read_magic s cur request_magic in
  let* id = Codec.read_int s cur in
  let* tag = Codec.read_int s cur in
  let* op = op_of_tag tag in
  let* seed = Codec.read_i64 s cur in
  let* t = Codec.read_int s cur in
  let* trials = Codec.read_int s cur in
  let* vertex = Codec.read_int s cur in
  let* deadline_ms = Codec.read_int s cur in
  let* graph = read_string s cur ~cap:max_spec_len in
  let* model = read_string s cur ~cap:max_spec_len in
  let* engine = read_string s cur ~cap:max_spec_len in
  if Codec.remaining s cur <> 0 then
    Error "Protocol: trailing bytes after request"
  else
    let r =
      { id; op; seed; graph; model; t; engine; trials; vertex; deadline_ms }
    in
    let* () = validate_request r in
    Ok r

let read_int_array s cur =
  let ( let* ) = Result.bind in
  let* len = Codec.read_int s cur in
  if len < 0 || len > max_vector then
    Error (Printf.sprintf "Protocol: vector length %d outside [0, %d]" len max_vector)
  else if len * 8 > Codec.remaining s cur then
    Error "Protocol: vector length exceeds the bytes present"
  else begin
    let out = Array.make (max len 1) 0 in
    let rec go i =
      if i = len then Ok (Array.sub out 0 len)
      else
        let* v = Codec.read_int s cur in
        out.(i) <- v;
        go (i + 1)
    in
    go 0
  end

let response_payload { rid; body } =
  let buf = Buffer.create 64 in
  Buffer.add_string buf response_magic;
  Codec.add_int buf rid;
  (match body with
  | Sample_r { trials; successes; distinct; first } ->
      Codec.add_int buf 0;
      Codec.add_int buf trials;
      Codec.add_int buf successes;
      Codec.add_int buf distinct;
      Codec.add_int buf (Array.length first);
      Array.iter (fun v -> Codec.add_int buf v) first
  | Infer_r { probs } ->
      Codec.add_int buf 1;
      Codec.add_int buf (Array.length probs);
      Array.iter (fun p -> Codec.add_i64 buf (Int64.bits_of_float p)) probs
  | Count_r { log_z } ->
      Codec.add_int buf 2;
      Codec.add_i64 buf (Int64.bits_of_float log_z)
  | Stats_r st ->
      Codec.add_int buf 3;
      List.iter
        (fun v -> Codec.add_int buf v)
        [
          st.st_requests;
          st.st_batches;
          st.st_coalesced;
          st.st_cache_hits;
          st.st_cache_misses;
          st.st_evictions;
          st.st_rejected;
          st.st_expired;
          st.st_snapshot_hits;
          st.st_restarts;
          st.st_max_queue;
          st.st_domains;
        ]
  | Health_r { reasons } ->
      Codec.add_int buf 5;
      Codec.add_int buf (List.length reasons);
      List.iter
        (fun (sub, reason) ->
          add_string buf sub;
          add_string buf reason)
        reasons
  | Error_r { code; message } ->
      Codec.add_int buf 4;
      Codec.add_int buf (err_tag code);
      add_string buf message);
  Buffer.contents buf

let response_of_payload s =
  let ( let* ) = Result.bind in
  let cur = ref 0 in
  let* () = Codec.read_magic s cur response_magic in
  let* rid = Codec.read_int s cur in
  let* tag = Codec.read_int s cur in
  let* body =
    match tag with
    | 0 ->
        let* trials = Codec.read_int s cur in
        let* successes = Codec.read_int s cur in
        let* distinct = Codec.read_int s cur in
        let* first = read_int_array s cur in
        if trials < 0 || successes < 0 || successes > trials || distinct < 0
        then Error "Protocol: inconsistent sample response counts"
        else Ok (Sample_r { trials; successes; distinct; first })
    | 1 ->
        let* len = Codec.read_int s cur in
        if len < 0 || len > max_vector then
          Error
            (Printf.sprintf "Protocol: vector length %d outside [0, %d]" len
               max_vector)
        else if len * 8 > Codec.remaining s cur then
          Error "Protocol: vector length exceeds the bytes present"
        else begin
          let out = Array.make (max len 1) 0. in
          let rec go i =
            if i = len then Ok (Infer_r { probs = Array.sub out 0 len })
            else
              let* bits = Codec.read_i64 s cur in
              out.(i) <- Int64.float_of_bits bits;
              go (i + 1)
          in
          go 0
        end
    | 2 ->
        let* bits = Codec.read_i64 s cur in
        Ok (Count_r { log_z = Int64.float_of_bits bits })
    | 3 ->
        let field () = Codec.read_int s cur in
        let* st_requests = field () in
        let* st_batches = field () in
        let* st_coalesced = field () in
        let* st_cache_hits = field () in
        let* st_cache_misses = field () in
        let* st_evictions = field () in
        let* st_rejected = field () in
        let* st_expired = field () in
        let* st_snapshot_hits = field () in
        let* st_restarts = field () in
        let* st_max_queue = field () in
        let* st_domains = field () in
        Ok
          (Stats_r
             {
               st_requests;
               st_batches;
               st_coalesced;
               st_cache_hits;
               st_cache_misses;
               st_evictions;
               st_rejected;
               st_expired;
               st_snapshot_hits;
               st_restarts;
               st_max_queue;
               st_domains;
             })
    | 4 ->
        let* code_tag = Codec.read_int s cur in
        let* code = err_of_tag code_tag in
        let* message = read_string s cur ~cap:4096 in
        Ok (Error_r { code; message })
    | 5 ->
        let* n = Codec.read_int s cur in
        if n < 0 || n > 64 then
          Error
            (Printf.sprintf "Protocol: health entry count %d outside [0, 64]" n)
        else
          let rec go i acc =
            if i = n then Ok (Health_r { reasons = List.rev acc })
            else
              let* sub = read_string s cur ~cap:64 in
              let* reason = read_string s cur ~cap:512 in
              go (i + 1) ((sub, reason) :: acc)
          in
          go 0 []
    | n -> Error (Printf.sprintf "Protocol: unknown response tag %d" n)
  in
  if Codec.remaining s cur <> 0 then
    Error "Protocol: trailing bytes after response"
  else Ok { rid; body }

(* --- frame layer ------------------------------------------------------ *)

let request_frame r =
  { Frame.kind = kind_request; a = r.id; b = 0; c = 0; payload = request_payload r }

let response_frame resp =
  {
    Frame.kind = kind_response;
    a = resp.rid;
    b = 0;
    c = 0;
    payload = response_payload resp;
  }

let request_of_frame (f : Frame.t) =
  if f.Frame.kind <> kind_request then
    Error (Printf.sprintf "Protocol: expected request kind, got 0x%02x" f.Frame.kind)
  else
    Result.bind (request_of_payload f.Frame.payload) (fun r ->
        if r.id <> f.Frame.a then
          Error "Protocol: frame/payload request id mismatch"
        else Ok r)

let response_of_frame (f : Frame.t) =
  if f.Frame.kind <> kind_response then
    Error
      (Printf.sprintf "Protocol: expected response kind, got 0x%02x" f.Frame.kind)
  else
    Result.bind (response_of_payload f.Frame.payload) (fun r ->
        if r.rid <> f.Frame.a then
          Error "Protocol: frame/payload response id mismatch"
        else Ok r)

(* Pure end-to-end codecs over raw bytes: the fuzz surface. *)

let encode_request r = Frame.encode (request_frame r)
let encode_response r = Frame.encode (response_frame r)

let decode_request_bytes s = Result.bind (Frame.decode s) request_of_frame
let decode_response_bytes s = Result.bind (Frame.decode s) response_of_frame

(* --- socket IO -------------------------------------------------------- *)

let write_request fd r = Frame.write_fd fd (request_frame r)
let write_response fd r = Frame.write_fd fd (response_frame r)

let read_request fd =
  match Frame.read_fd fd with
  | Error _ as e -> e
  | Ok f -> (
      match request_of_frame f with
      | Ok r -> Ok r
      | Error msg -> Error (Frame.Malformed msg))

let read_response fd =
  match Frame.read_fd fd with
  | Error _ as e -> e
  | Ok f -> (
      match response_of_frame f with
      | Ok r -> Ok r
      | Error msg -> Error (Frame.Malformed msg))
