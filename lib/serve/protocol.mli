(** Wire protocol for the serving daemon.

    One request or response per {!Ls_shard.Frame} (which contributes the
    outer magic, length validation, payload digest and EINTR-safe IO);
    this module defines the payload layer behind its own 4-byte magic.
    The codec is pure and total: {!decode_request_bytes} /
    {!decode_response_bytes} map arbitrary bytes to a value or a named
    [Error], never an exception, and no allocation is sized by a length
    field that has not been validated against both a hard cap and the
    bytes actually present — the same discipline the Frame fuzz suite
    enforces, and the serve fuzz suite re-checks end to end.

    Determinism contract: a request carries its [seed]; the daemon's
    response body is a pure function of the request payload (admission
    verdicts aside), so the same request bytes produce the same response
    bytes at any domain count. *)

type op =
  | Sample  (** [trials] chain-rule samples; returns counts + first sample. *)
  | Infer  (** Marginal at [vertex]; returns the distribution. *)
  | Count  (** ln Z by self-reduction; returns one float. *)
  | Stats  (** Engine counters; like {!Health}, the reply is not
               request-deterministic (it reads server state). *)
  | Health
      (** The daemon's degraded-mode registry ({!Ls_obs.Health});
          answered by the server loop without queueing, so a degraded
          daemon still reports its own degradation promptly. *)

val op_name : op -> string

type request = {
  id : int;  (** Correlation id, echoed in the response ([>= 0]). *)
  op : op;
  seed : int64;  (** All randomness derives from this. *)
  graph : string;  (** Graph spec, e.g. ["cycle:64"] (≤ {!max_spec_len}). *)
  model : string;  (** Model spec, e.g. ["hardcore:1.0"]. *)
  t : int;  (** Oracle radius / SAW depth. *)
  engine : string;  (** ["ball"] or ["saw"]. *)
  trials : int;  (** Sample trials ([1 .. max_trials]); 1 for other ops. *)
  vertex : int;  (** Infer target ([>= 0]); ignored by other ops. *)
  deadline_ms : int;
      (** Maximum queue wait in milliseconds before the daemon answers
          {!Expired} instead of executing; [0] means no deadline
          ([0 .. max_deadline_ms]). *)
}

type err_code =
  | Bad_request
  | Overloaded
  | Unsupported
  | Internal
  | Expired
      (** The request out-waited its [deadline_ms] in the admission queue
          and was answered without executing. *)

val err_name : err_code -> string

type stats = {
  st_requests : int;
  st_batches : int;
  st_coalesced : int;
  st_cache_hits : int;
  st_cache_misses : int;
  st_evictions : int;
  st_rejected : int;
  st_expired : int;  (** Requests answered {!Expired} without executing. *)
  st_snapshot_hits : int;
      (** Cache hits on entries restored from a warm-start snapshot. *)
  st_restarts : int;
      (** Worker incarnation under [--supervised]; 0 = never restarted. *)
  st_max_queue : int;
  st_domains : int;
}

type body =
  | Sample_r of {
      trials : int;
      successes : int;
      distinct : int;  (** Distinct successful configurations. *)
      first : int array;  (** First successful configuration ([[||]] if none). *)
    }
  | Infer_r of { probs : float array }
  | Count_r of { log_z : float }
  | Stats_r of stats
  | Health_r of { reasons : (string * string) list }
      (** [(subsystem, reason)] pairs, sorted by subsystem; [[]] = ok. *)
  | Error_r of { code : err_code; message : string }

type response = { rid : int; body : body }

val max_spec_len : int
val max_trials : int
val max_t : int
val max_deadline_ms : int

val validate_request : request -> (unit, string) result
(** The bounds {!decode_request_bytes} enforces, applied to an in-memory
    request — clients call it before encoding. *)

(** {1 Pure codec} — the fuzz surface *)

val encode_request : request -> string
val encode_response : response -> string
val decode_request_bytes : string -> (request, string) result
val decode_response_bytes : string -> (response, string) result

(** {1 Frame-level} (for callers that already hold a decoded frame) *)

val kind_request : int
val kind_response : int
val request_of_frame : Ls_shard.Frame.t -> (request, string) result
val response_of_frame : Ls_shard.Frame.t -> (response, string) result
val request_frame : request -> Ls_shard.Frame.t
val response_frame : response -> Ls_shard.Frame.t

(** {1 Socket IO} (EINTR-safe, via {!Ls_shard.Frame}) *)

val write_request : Unix.file_descr -> request -> unit
val write_response : Unix.file_descr -> response -> unit
val read_request : Unix.file_descr -> (request, Ls_shard.Frame.read_error) result
val read_response : Unix.file_descr -> (response, Ls_shard.Frame.read_error) result
