(* The serving daemon: a single-threaded accept/select loop in front of
   the batching engine.

   Concurrency model: the loop thread owns every socket and the engine;
   parallelism lives inside Engine.submit_batch (the Ls_par domain pool).
   Admission control is a bounded FIFO — a frame arriving while the queue
   holds [queue_bound] requests is answered [Overloaded] immediately and
   never enqueued.  Backpressure is structural: while a batch executes,
   the loop is not reading sockets, so clients that pipeline past the
   queue bound accumulate bytes in the kernel buffer and eventually block
   on write.

   Hostile-peer bounds: inbound bytes are decoded incrementally from a
   per-connection buffer, so a peer that sends half a frame and stalls
   parks at most [max_request_frame] bytes and never blocks the loop;
   responses are written under SO_SNDTIMEO, so a peer that stops reading
   is dropped after [send_timeout_s] rather than wedging every other
   connection.  Daemon memory stays bounded by [queue_bound + batch_max]
   requests plus [max_request_frame + read_chunk] bytes per connection. *)

module Frame = Ls_shard.Frame
module Supervisor = Ls_shard.Supervisor
module Ckpt = Ls_shard.Ckpt
module Sysio = Ls_shard.Sysio
module Metrics = Ls_obs.Metrics
module Health = Ls_obs.Health

let src = Logs.Src.create "locsample.serve" ~doc:"sampling-as-a-service daemon"

module Log = (val Logs.src_log src : Logs.LOG)

type address = Unix_path of string | Tcp of string * int

let address_to_string = function
  | Unix_path p -> Printf.sprintf "unix:%s" p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let parse_address s =
  let tcp host port =
    match int_of_string_opt port with
    | Some p when p >= 1 && p <= 65535 -> Ok (Tcp (host, p))
    | _ -> Error (Printf.sprintf "tcp port %S: expected an integer in [1, 65535]" port)
  in
  match String.split_on_char ':' s with
  | [ "tcp"; host; port ] -> tcp host port
  | [ "tcp"; port ] -> tcp "127.0.0.1" port
  | "unix" :: rest when rest <> [] -> Ok (Unix_path (String.concat ":" rest))
  | _ when s <> "" -> Ok (Unix_path s)
  | _ -> Error "empty listen address"

(* --- environment ------------------------------------------------------ *)

let env_int_check name ~min =
  match Sys.getenv_opt name with
  | None | Some "" -> Ok ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some k when k >= min -> Ok ()
      | _ ->
          Error
            (Printf.sprintf "%s=%S: expected an integer >= %d" name s min))

let env_float_check name =
  match Sys.getenv_opt name with
  | None | Some "" -> Ok ()
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some f when f > 0. -> Ok ()
      | _ -> Error (Printf.sprintf "%s=%S: expected a number > 0" name s))

let env_check () =
  let ( let* ) = Result.bind in
  let* () =
    match Sys.getenv_opt "LOCSAMPLE_SERVE_SOCKET" with
    | None | Some "" -> Ok ()
    | Some s -> (
        match parse_address s with
        | Ok _ -> Ok ()
        | Error msg -> Error (Printf.sprintf "LOCSAMPLE_SERVE_SOCKET: %s" msg))
  in
  let* () = env_int_check "LOCSAMPLE_SERVE_QUEUE" ~min:1 in
  let* () = env_int_check "LOCSAMPLE_SERVE_CACHE" ~min:1 in
  let* () = env_float_check "LOCSAMPLE_SERVE_SEND_TIMEOUT" in
  match Sys.getenv_opt "LOCSAMPLE_SERVE_STATE" with
  | None | Some "" -> Ok ()
  | Some d ->
      (* Same discipline as LOCSAMPLE_SHARD_DIR: the dir is created on
         first snapshot, but a path that exists and is not a directory
         would fail deep inside the first cache write. *)
      if Sys.file_exists d && not (Sys.is_directory d) then
        Error
          (Printf.sprintf "LOCSAMPLE_SERVE_STATE=%S: exists but is not a directory" d)
      else Ok ()

(* Same validation as [env_check], so library callers that skip the
   CLI's startup check get a raised error rather than a silently
   ignored setting. *)
let env_int name ~default =
  match env_int_check name ~min:1 with
  | Error msg -> invalid_arg msg
  | Ok () -> (
      match Sys.getenv_opt name with
      | None | Some "" -> default
      | Some s -> int_of_string (String.trim s))

let default_address () =
  match Sys.getenv_opt "LOCSAMPLE_SERVE_SOCKET" with
  | Some s when s <> "" -> (
      match parse_address s with Ok a -> a | Error _ -> Unix_path s)
  | _ ->
      Unix_path
        (Filename.concat (Filename.get_temp_dir_name ()) "locsample-serve.sock")

let default_queue () = env_int "LOCSAMPLE_SERVE_QUEUE" ~default:64
let default_cache () = env_int "LOCSAMPLE_SERVE_CACHE" ~default:64

let default_send_timeout () =
  match env_float_check "LOCSAMPLE_SERVE_SEND_TIMEOUT" with
  | Error msg -> invalid_arg msg
  | Ok () -> (
      match Sys.getenv_opt "LOCSAMPLE_SERVE_SEND_TIMEOUT" with
      | None | Some "" -> 10.
      | Some s -> float_of_string (String.trim s))

let default_state_dir () =
  match Sys.getenv_opt "LOCSAMPLE_SERVE_STATE" with
  | Some d when d <> "" -> Some d
  | _ -> None

(* --- configuration ---------------------------------------------------- *)

type config = {
  address : address;
  queue_bound : int;
  batch_max : int;
  instance_cache : int;
  plan_cache : int;
  max_vertices : int;
  max_requests : int option;
  send_timeout : float;
  state_dir : string option;
  snapshot_every : int;
}

let config ?address ?queue_bound ?(batch_max = 32) ?instance_cache
    ?(plan_cache = 1024) ?(max_vertices = 100_000) ?max_requests ?send_timeout
    ?state_dir ?(snapshot_every = 8) () =
  let address = match address with Some a -> a | None -> default_address () in
  let queue_bound =
    match queue_bound with Some q -> q | None -> default_queue ()
  in
  let instance_cache =
    match instance_cache with Some c -> c | None -> default_cache ()
  in
  let send_timeout =
    match send_timeout with Some s -> s | None -> default_send_timeout ()
  in
  let state_dir =
    match state_dir with Some d -> Some d | None -> default_state_dir ()
  in
  if queue_bound < 1 then invalid_arg "Server.config: queue bound must be >= 1";
  if batch_max < 1 then invalid_arg "Server.config: batch max must be >= 1";
  if send_timeout <= 0. then
    invalid_arg "Server.config: send timeout must be > 0";
  if snapshot_every < 1 then
    invalid_arg "Server.config: snapshot interval must be >= 1";
  {
    address;
    queue_bound;
    batch_max;
    instance_cache;
    plan_cache;
    max_vertices;
    max_requests;
    send_timeout;
    state_dir;
    snapshot_every;
  }

(* --- the loop --------------------------------------------------------- *)

(* A request frame is a few hundred bytes (Protocol caps every spec);
   64 KiB leaves room without letting a hostile length claim park the
   1 GiB Frame.max_payload per connection. *)
let max_request_frame = 1 lsl 16

(* Most bytes pulled off a connection per select round. *)
let read_chunk = 1 lsl 16

type conn = {
  id : int;  (* Accept order: the round-robin scheduling key. *)
  fd : Unix.file_descr;
  mutable alive : bool;
  (* Bytes received but not yet forming a complete frame. *)
  mutable pending : string;
  (* This connection's admitted requests, stamped with arrival time.
     Bounded by [queue_bound] per connection: admission is per-client,
     so one flooding peer fills its own queue and sees Overloaded while
     everyone else's requests are still admitted. *)
  queue : (Protocol.request * float) Queue.t;
}

let close_conn c =
  if c.alive then begin
    c.alive <- false;
    c.pending <- "";
    (* Requests admitted on a dead connection can never be answered;
       executing them would only burn batch slots. *)
    Queue.clear c.queue;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let send_response c resp =
  if c.alive then
    try Protocol.write_response c.fd resp with
    | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> close_conn c
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _)
      ->
        (* SO_SNDTIMEO expired mid-frame: the peer stopped reading. *)
        close_conn c

let listen_on = function
  | Unix_path path ->
      (* A stale socket file from a dead daemon would make bind fail;
         remove it only if it is a socket (never a user's regular file). *)
      (match Unix.lstat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> (try Unix.unlink path with _ -> ())
      | _ -> ()
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      Unix.bind fd (Unix.ADDR_INET (inet, port));
      Unix.listen fd 64;
      fd

(* --- warm-start snapshots ---------------------------------------------- *)

(* The engine's cache snapshot rides the shard layer's Ckpt envelope:
   tmp+rename atomicity, magic/version/digest self-validation, any
   invalidity read as absence.  A fixed run id tags the file as a serve
   snapshot; the Ckpt round field records the batch count that wrote it. *)
let snapshot_run_id = 0x4c53_5356L (* "LSSV" *)
let snapshot_file dir = Filename.concat dir "serve-cache.snap"

let save_snapshot ~dir engine ~batches =
  try
    Ckpt.save_path ~path:(snapshot_file dir)
      { Ckpt.run_id = snapshot_run_id; shard = 0; phase = 1; round = batches }
      (Engine.snapshot engine);
    true
  with Unix.Unix_error _ | Sys_error _ ->
    (* Persistence is best-effort: a full disk must not kill serving.
       The caller owns the circuit breaker; this layer just reports. *)
    Metrics.record_serve_snapshot_failure ();
    Log.warn (fun m -> m "cache snapshot write to %s failed" dir);
    false

let load_snapshot ~dir engine =
  match Ckpt.load_path ~path:(snapshot_file dir) with
  | Some (meta, payload) when Int64.equal meta.Ckpt.run_id snapshot_run_id -> (
      match Engine.restore engine payload with
      | Ok n -> n
      | Error reason ->
          Log.warn (fun m -> m "cache snapshot rejected: %s" reason);
          0)
  | _ -> 0

let stop_flag = ref false

let install_signals () =
  let stop _ = stop_flag := true in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle stop)
   with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle stop)
   with Invalid_argument _ | Sys_error _ -> ());
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let run ?(cfg = config ()) ?trace ?on_ready ?listen_fd ?(incarnation = 0)
    ?heartbeat () =
  stop_flag := false;
  install_signals ();
  (* A fresh loop starts healthy: a restarted worker must not inherit
     the degraded marks of the incarnation it replaced. *)
  Health.reset ();
  let engine =
    Engine.create ~instance_cache:cfg.instance_cache ~plan_cache:cfg.plan_cache
      ~max_vertices:cfg.max_vertices ()
  in
  Engine.set_restarts engine incarnation;
  (match cfg.state_dir with
  | Some dir ->
      let restored = load_snapshot ~dir engine in
      if restored > 0 then
        Log.info (fun m -> m "warm start: %d cache entries restored" restored)
  | None -> ());
  (* Under supervision the parent owns the listener (so a killed worker
     restarts without dropping the socket); standalone we open it here
     and tear it down in the finally. *)
  let owns_listener = listen_fd = None in
  let listen_fd =
    match listen_fd with Some fd -> fd | None -> listen_on cfg.address
  in
  Log.info (fun m -> m "listening on %s" (address_to_string cfg.address));
  (match on_ready with Some f -> f () | None -> ());
  let beat () = match heartbeat with Some f -> f () | None -> () in
  let conns : conn list ref = ref [] in
  let next_conn_id = ref 0 in
  let total_queued () =
    List.fold_left (fun acc c -> acc + Queue.length c.queue) 0 !conns
  in
  let answered = ref 0 in
  let budget_left () =
    match cfg.max_requests with None -> true | Some k -> !answered < k
  in
  let reply c resp =
    send_response c resp;
    incr answered
  in
  (* One inbound frame: admission verdict or a named protocol error.
     Admission is per-connection — the verdict depends only on this
     connection's own arrival order, so a flooding client cannot push
     anyone else over the bound. *)
  let handle_frame c (f : Frame.t) =
    match Protocol.request_of_frame f with
    | Error msg ->
        reply c
          {
            Protocol.rid = max f.Frame.a 0;
            body =
              Protocol.Error_r { code = Protocol.Bad_request; message = msg };
          }
    | Ok req when req.Protocol.op = Protocol.Health ->
        (* Answered by the loop itself, before admission: a daemon that
           is shedding or backed up still reports its own degradation
           promptly, without spending a queue slot or a batch slot. *)
        reply c
          {
            Protocol.rid = req.Protocol.id;
            body = Protocol.Health_r { reasons = Health.degraded () };
          }
    | Ok req ->
        if Queue.length c.queue >= cfg.queue_bound then begin
          Engine.note_rejection engine;
          reply c
            { Protocol.rid = req.Protocol.id; body = Engine.error_body Engine.Overloaded }
        end
        else begin
          Queue.add (req, Unix.gettimeofday ()) c.queue;
          Engine.note_queue_depth engine (total_queued ())
        end
  in
  (* Decode every complete frame accumulated on the connection; a
     trailing partial frame stays in [pending] until more bytes arrive
     (the loop never blocks waiting for them). *)
  let rec decode_pending c =
    if c.alive then
      match
        Frame.decode_prefix ~max_frame_payload:max_request_frame c.pending
      with
      | Ok None -> ()
      | Ok (Some (f, used)) ->
          c.pending <-
            String.sub c.pending used (String.length c.pending - used);
          handle_frame c f;
          decode_pending c
      | Error reason ->
          (* Framing is broken — no request boundary to resynchronize
             on, so answer nothing and drop the connection. *)
          Log.debug (fun m -> m "dropping connection: %s" reason);
          close_conn c
  in
  (* Drain every byte already buffered on the connection, so a
     pipelining client can outrun the queue bound and observe Overloaded
     rather than being serialized one frame per select round.  Each read
     takes only what the kernel already holds: select says the first
     byte is there, and read on a readable socket returns the available
     bytes without waiting for the count requested. *)
  let scratch = Bytes.create read_chunk in
  let rec drain c =
    if c.alive then
      match Unix.select [ c.fd ] [] [] 0. with
      | [ _ ], _, _ -> (
          match Unix.read c.fd scratch 0 read_chunk with
          | 0 ->
              (* EOF: any partial frame in [pending] is abandoned. *)
              close_conn c
          | k ->
              c.pending <- c.pending ^ Bytes.sub_string scratch 0 k;
              decode_pending c;
              drain c
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain c
          | exception
              Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
              close_conn c)
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  (* Descriptor exhaustion (EMFILE/ENFILE, or EAGAIN) on accept sheds
     new connections instead of blocking the loop: the listener leaves
     the select set for a doubling backoff window (new peers park in the
     kernel backlog) while existing connections keep being served.  The
     first successful accept clears the degraded mark and resets the
     backoff. *)
  let accept_paused_until = ref 0. in
  let accept_backoff_ms = ref 10 in
  let accept_degraded = ref false in
  let accepting now = now >= !accept_paused_until in
  let accept_new () =
    match Sysio.accept ~site:"server.accept" listen_fd with
    | fd, _ ->
        if !accept_degraded then begin
          accept_degraded := false;
          accept_backoff_ms := 10;
          Health.clear ~subsystem:"accept"
        end;
        (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO cfg.send_timeout
         with Unix.Unix_error _ | Invalid_argument _ -> ());
        let id = !next_conn_id in
        incr next_conn_id;
        conns :=
          { id; fd; alive = true; pending = ""; queue = Queue.create () }
          :: !conns
    | exception
        Unix.Unix_error (((Unix.EMFILE | Unix.ENFILE | Unix.EAGAIN) as e), _, _)
      ->
        let name =
          match e with
          | Unix.EMFILE -> "EMFILE"
          | Unix.ENFILE -> "ENFILE"
          | _ -> "EAGAIN"
        in
        Metrics.record_serve_shed ();
        accept_degraded := true;
        Health.set_degraded ~subsystem:"accept"
          ~reason:(name ^ ": shedding new connections");
        accept_paused_until :=
          Unix.gettimeofday () +. (float_of_int !accept_backoff_ms /. 1000.);
        accept_backoff_ms := min 500 (!accept_backoff_ms * 2)
    | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) ->
        (* The peer hung up between select and accept: their loss, not a
           resource fault — the next select round carries on. *)
        ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  (* Batch formation: deficit round-robin with a one-request quantum over
     connections in accept order, the starting connection rotating per
     batch.  Expired requests are answered at pop time without consuming
     a batch slot.  Deterministic given each connection's arrival order:
     within one connection, requests are still answered in FIFO order. *)
  let rr = ref 0 in
  let collect_batch now =
    let live =
      List.sort (fun a b -> compare a.id b.id)
        (List.filter (fun c -> c.alive && not (Queue.is_empty c.queue)) !conns)
    in
    let arr = Array.of_list live in
    let n = Array.length arr in
    let batch = ref [] in
    let count = ref 0 in
    if n > 0 then begin
      let start = !rr mod n in
      incr rr;
      let progress = ref true in
      while !count < cfg.batch_max && !progress do
        progress := false;
        for i = 0 to n - 1 do
          let c = arr.((start + i) mod n) in
          if !count < cfg.batch_max && c.alive then begin
            let rec pop () =
              match Queue.take_opt c.queue with
              | None -> ()
              | Some (req, t0) ->
                  let d = req.Protocol.deadline_ms in
                  if d > 0 && (now -. t0) *. 1000. > float_of_int d then begin
                    Engine.note_expiry engine;
                    reply c
                      {
                        Protocol.rid = req.Protocol.id;
                        body =
                          Protocol.Error_r
                            {
                              code = Protocol.Expired;
                              message =
                                Printf.sprintf
                                  "deadline of %d ms elapsed in queue" d;
                            };
                      };
                    pop ()
                  end
                  else begin
                    batch := (req, c) :: !batch;
                    incr count;
                    progress := true
                  end
            in
            pop ()
          end
        done
      done
    end;
    List.rev !batch
  in
  (* Snapshot circuit breaker: a failed write (disk full, say) marks the
     "snapshot" subsystem degraded and pushes the next attempt out by
     min(64, 2^failures) extra batches, so a persistently full disk
     costs a capped retry cadence instead of one doomed write per
     interval.  Serving continues on the last good snapshot throughout;
     the first successful write closes the breaker. *)
  let batches_since_snapshot = ref 0 in
  let snapshot_failures = ref 0 in
  let do_snapshot dir =
    if save_snapshot ~dir engine ~batches:(Engine.stats engine).Protocol.st_batches
    then begin
      if !snapshot_failures > 0 then Health.clear ~subsystem:"snapshot";
      snapshot_failures := 0
    end
    else begin
      snapshot_failures := !snapshot_failures + 1;
      Health.set_degraded ~subsystem:"snapshot"
        ~reason:
          (Printf.sprintf "snapshot write failed (%d consecutive)"
             !snapshot_failures)
    end
  in
  let snapshot_due () =
    let extra =
      if !snapshot_failures = 0 then 0
      else min 64 (1 lsl min 6 !snapshot_failures)
    in
    !batches_since_snapshot >= cfg.snapshot_every + extra
  in
  let maybe_snapshot () =
    match cfg.state_dir with
    | Some dir when snapshot_due () ->
        batches_since_snapshot := 0;
        do_snapshot dir
    | _ -> ()
  in
  let run_batches () =
    let continue = ref true in
    while !continue do
      match collect_batch (Unix.gettimeofday ()) with
      | [] -> continue := false
      | batch ->
          let bodies =
            Engine.submit_batch engine ?trace (List.map fst batch)
          in
          List.iter2
            (fun (req, c) body ->
              let body =
                match body with Ok b -> b | Error e -> Engine.error_body e
              in
              reply c { Protocol.rid = req.Protocol.id; body })
            batch bodies;
          incr batches_since_snapshot;
          maybe_snapshot ();
          beat ()
    done
  in
  let rec loop () =
    if (not !stop_flag) && budget_left () then begin
      beat ();
      conns := List.filter (fun c -> c.alive) !conns;
      let fds =
        (if accepting (Unix.gettimeofday ()) then [ listen_fd ] else [])
        @ List.map (fun c -> c.fd) !conns
      in
      (match Unix.select fds [] [] 0.5 with
      | readable, _, _ ->
          if List.memq listen_fd readable then accept_new ();
          List.iter
            (fun c -> if List.memq c.fd readable then drain c)
            !conns
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      run_batches ();
      loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter close_conn !conns;
      if owns_listener then begin
        (try Unix.close listen_fd with Unix.Unix_error _ -> ());
        match cfg.address with
        | Unix_path path -> ( try Unix.unlink path with _ -> ())
        | Tcp _ -> ()
      end)
    (fun () ->
      loop ();
      (* Graceful drain: stop accepting and reading, answer everything
         already admitted, then persist the caches.  [loop] runs
         [run_batches] after its last select round, so the queues are
         normally already empty here — this is the structural guarantee
         for the SIGTERM-mid-batch case. *)
      run_batches ();
      (match cfg.state_dir with
      | Some dir -> do_snapshot dir
      | None -> ());
      (* Exit-time pairing: every degraded enter gets its exit event,
         even when the fault never cleared in time — a clean shutdown
         always closes its own trace brackets. *)
      Health.clear_all ();
      if !stop_flag then begin
        Metrics.record_serve_drain ();
        Log.info (fun m -> m "drained: all admitted requests answered")
      end);
  Engine.stats engine

(* --- supervised mode --------------------------------------------------- *)

(* Control-channel frames from worker to supervisor.  Any frame resets
   the silence clock (frames double as heartbeats, as in Ls_shard);
   [kind_done] additionally carries the final stats as a Stats_r
   response payload and marks a graceful exit. *)
let kind_heartbeat = 0x48 (* 'H' *)
let kind_done = 0x44 (* 'D' *)

(* Select-loop rounds are 0.5 s and a batch beats once per execution, so
   2 s of silence (the shard default) would SIGKILL a worker mid-way
   through a perfectly healthy large batch; give serving a longer leash. *)
let default_supervision =
  { Supervisor.default_policy with Supervisor.hang_timeout_ms = 5000 }

let write_pid_file path pid =
  let tmp = path ^ ".tmp" in
  try
    let oc = open_out tmp in
    output_string oc (string_of_int pid ^ "\n");
    close_out oc;
    Sysio.rename ~site:"pidfile.rename" tmp path
  with Sys_error _ | Unix.Unix_error _ ->
    (try Sys.remove tmp with Sys_error _ -> ());
    Log.warn (fun m -> m "cannot write pid file %s" path)

let zero_stats ~restarts =
  {
    Protocol.st_requests = 0;
    st_batches = 0;
    st_coalesced = 0;
    st_cache_hits = 0;
    st_cache_misses = 0;
    st_evictions = 0;
    st_rejected = 0;
    st_expired = 0;
    st_snapshot_hits = 0;
    st_restarts = restarts;
    st_max_queue = 0;
    st_domains = 0;
  }

let run_supervised ?(cfg = config ()) ?(policy = default_supervision) ?trace
    ?on_ready ?worker_pid_file () =
  stop_flag := false;
  install_signals ();
  (* The parent owns the listener for the whole supervised lifetime:
     clients connected during a worker's death park in the accept
     backlog and are picked up by the replacement. *)
  let listen_fd = listen_on cfg.address in
  Log.info (fun m ->
      m "supervising on %s (budget %d)" (address_to_string cfg.address)
        policy.Supervisor.restart_budget);
  (match on_ready with Some f -> f () | None -> ());
  (* The worker forks; any Ls_par domain would make fork refuse. *)
  Ls_par.Par.quiesce ();
  let incarnation = ref 0 in
  let budget = ref policy.Supervisor.restart_budget in
  let backoff = ref policy.Supervisor.backoff_base_ms in
  let final = ref None in
  let term_sent = ref false in
  let spawn () =
    let parent_end, child_end =
      Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
    in
    flush stdout;
    flush stderr;
    let fork () =
      (* EAGAIN burns the retry helper's own attempt budget (with
         backoff), never the restart budget: a fork that could not
         happen is not a worker death. *)
      try Supervisor.fork_with_retry ~site:"serve.fork" ()
      with e ->
        (try Unix.close parent_end with Unix.Unix_error _ -> ());
        (try Unix.close child_end with Unix.Unix_error _ -> ());
        raise e
    in
    match fork () with
    | 0 ->
        (try Unix.close parent_end with Unix.Unix_error _ -> ());
        let beat () =
          try
            Frame.write_fd child_end
              {
                Frame.kind = kind_heartbeat;
                a = !incarnation;
                b = 0;
                c = 0;
                payload = "";
              }
          with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
            (* The supervisor is gone: drain what we have and exit. *)
            stop_flag := true
        in
        let stats =
          run ~cfg ?trace ~listen_fd ~incarnation:!incarnation ~heartbeat:beat
            ()
        in
        (try
           Frame.write_fd child_end
             {
               Frame.kind = kind_done;
               a = !incarnation;
               b = 0;
               c = 0;
               payload =
                 Protocol.encode_response
                   { Protocol.rid = 0; body = Protocol.Stats_r stats };
             }
         with Unix.Unix_error _ -> ());
        (try Unix.close child_end with Unix.Unix_error _ -> ());
        Unix._exit 0
    | pid ->
        (try Unix.close child_end with Unix.Unix_error _ -> ());
        (match worker_pid_file with
        | Some path -> write_pid_file path pid
        | None -> ());
        Log.info (fun m -> m "worker %d spawned (incarnation %d)" pid !incarnation);
        (pid, parent_end)
  in
  let reap pid =
    try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
  in
  (* Watch one worker until it finishes (done frame) or dies/hangs. *)
  let monitor pid parent_end =
    let rec go last_heard probes =
      if !stop_flag && not !term_sent then begin
        term_sent := true;
        try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ()
      end;
      match Unix.select [ parent_end ] [] [] 0.2 with
      | [ _ ], _, _ -> (
          match Frame.read_fd parent_end with
          | Ok f when f.Frame.kind = kind_done ->
              (match Protocol.decode_response_bytes f.Frame.payload with
              | Ok { Protocol.body = Protocol.Stats_r st; _ } ->
                  final := Some st
              | Ok _ | Error _ -> ());
              reap pid;
              `Done
          | Ok _ -> go (Unix.gettimeofday ()) 0
          | Error _ ->
              (* EOF or a torn frame: the worker is dead. *)
              reap pid;
              `Died)
      | _ ->
          let now = Unix.gettimeofday () in
          if
            (now -. last_heard) *. 1000.
            > float_of_int policy.Supervisor.hang_timeout_ms
          then
            if probes + 1 >= policy.Supervisor.hang_probes then begin
              Log.warn (fun m -> m "worker %d hung; killing" pid);
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              reap pid;
              `Died
            end
            else go now (probes + 1)
          else go last_heard probes
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go last_heard probes
    in
    let outcome = go (Unix.gettimeofday ()) 0 in
    (try Unix.close parent_end with Unix.Unix_error _ -> ());
    outcome
  in
  let rec supervise () =
    let pid, parent_end = spawn () in
    match monitor pid parent_end with
    | `Done -> ()
    | `Died ->
        if !stop_flag then
          (* Drain was requested and the worker died before finishing:
             nothing left to answer its queue with — exit without the
             final stats rather than respawn just to stop again. *)
          Log.warn (fun m -> m "worker died during drain")
        else if !budget = 0 then
          raise
            (Supervisor.Failed
               ( Supervisor.Transient,
                 Printf.sprintf
                   "serve worker exhausted its restart budget after %d respawns"
                   !incarnation ))
        else begin
          decr budget;
          Supervisor.sleep_ms !backoff;
          backoff := !backoff * policy.Supervisor.backoff_factor;
          incr incarnation;
          term_sent := false;
          Metrics.record_serve_restart ();
          Log.warn (fun m ->
              m "worker died; restarting (incarnation %d, %d restarts left)"
                !incarnation !budget);
          supervise ()
        end
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (match cfg.address with
      | Unix_path path -> ( try Unix.unlink path with _ -> ())
      | Tcp _ -> ());
      match worker_pid_file with
      | Some path ->
          (try Sys.remove path with Sys_error _ -> ());
          (try Sys.remove (path ^ ".tmp") with Sys_error _ -> ())
      | None -> ())
    supervise;
  match !final with
  | Some st -> st
  | None -> zero_stats ~restarts:!incarnation
