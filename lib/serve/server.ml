(* The serving daemon: a single-threaded accept/select loop in front of
   the batching engine.

   Concurrency model: the loop thread owns every socket and the engine;
   parallelism lives inside Engine.submit_batch (the Ls_par domain pool).
   Admission control is a bounded FIFO — a frame arriving while the queue
   holds [queue_bound] requests is answered [Overloaded] immediately and
   never enqueued.  Backpressure is structural: while a batch executes,
   the loop is not reading sockets, so clients that pipeline past the
   queue bound accumulate bytes in the kernel buffer and eventually block
   on write.

   Hostile-peer bounds: inbound bytes are decoded incrementally from a
   per-connection buffer, so a peer that sends half a frame and stalls
   parks at most [max_request_frame] bytes and never blocks the loop;
   responses are written under SO_SNDTIMEO, so a peer that stops reading
   is dropped after [send_timeout_s] rather than wedging every other
   connection.  Daemon memory stays bounded by [queue_bound + batch_max]
   requests plus [max_request_frame + read_chunk] bytes per connection. *)

module Frame = Ls_shard.Frame
module Supervisor = Ls_shard.Supervisor

let src = Logs.Src.create "locsample.serve" ~doc:"sampling-as-a-service daemon"

module Log = (val Logs.src_log src : Logs.LOG)

type address = Unix_path of string | Tcp of string * int

let address_to_string = function
  | Unix_path p -> Printf.sprintf "unix:%s" p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let parse_address s =
  let tcp host port =
    match int_of_string_opt port with
    | Some p when p >= 1 && p <= 65535 -> Ok (Tcp (host, p))
    | _ -> Error (Printf.sprintf "tcp port %S: expected an integer in [1, 65535]" port)
  in
  match String.split_on_char ':' s with
  | [ "tcp"; host; port ] -> tcp host port
  | [ "tcp"; port ] -> tcp "127.0.0.1" port
  | "unix" :: rest when rest <> [] -> Ok (Unix_path (String.concat ":" rest))
  | _ when s <> "" -> Ok (Unix_path s)
  | _ -> Error "empty listen address"

(* --- environment ------------------------------------------------------ *)

let env_int_check name ~min =
  match Sys.getenv_opt name with
  | None | Some "" -> Ok ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some k when k >= min -> Ok ()
      | _ ->
          Error
            (Printf.sprintf "%s=%S: expected an integer >= %d" name s min))

let env_check () =
  let ( let* ) = Result.bind in
  let* () =
    match Sys.getenv_opt "LOCSAMPLE_SERVE_SOCKET" with
    | None | Some "" -> Ok ()
    | Some s -> (
        match parse_address s with
        | Ok _ -> Ok ()
        | Error msg -> Error (Printf.sprintf "LOCSAMPLE_SERVE_SOCKET: %s" msg))
  in
  let* () = env_int_check "LOCSAMPLE_SERVE_QUEUE" ~min:1 in
  env_int_check "LOCSAMPLE_SERVE_CACHE" ~min:1

(* Same validation as [env_check], so library callers that skip the
   CLI's startup check get a raised error rather than a silently
   ignored setting. *)
let env_int name ~default =
  match env_int_check name ~min:1 with
  | Error msg -> invalid_arg msg
  | Ok () -> (
      match Sys.getenv_opt name with
      | None | Some "" -> default
      | Some s -> int_of_string (String.trim s))

let default_address () =
  match Sys.getenv_opt "LOCSAMPLE_SERVE_SOCKET" with
  | Some s when s <> "" -> (
      match parse_address s with Ok a -> a | Error _ -> Unix_path s)
  | _ ->
      Unix_path
        (Filename.concat (Filename.get_temp_dir_name ()) "locsample-serve.sock")

let default_queue () = env_int "LOCSAMPLE_SERVE_QUEUE" ~default:64
let default_cache () = env_int "LOCSAMPLE_SERVE_CACHE" ~default:64

(* --- configuration ---------------------------------------------------- *)

type config = {
  address : address;
  queue_bound : int;
  batch_max : int;
  instance_cache : int;
  plan_cache : int;
  max_vertices : int;
  max_requests : int option;
}

let config ?address ?queue_bound ?(batch_max = 32) ?instance_cache
    ?(plan_cache = 1024) ?(max_vertices = 100_000) ?max_requests () =
  let address = match address with Some a -> a | None -> default_address () in
  let queue_bound =
    match queue_bound with Some q -> q | None -> default_queue ()
  in
  let instance_cache =
    match instance_cache with Some c -> c | None -> default_cache ()
  in
  if queue_bound < 1 then invalid_arg "Server.config: queue bound must be >= 1";
  if batch_max < 1 then invalid_arg "Server.config: batch max must be >= 1";
  {
    address;
    queue_bound;
    batch_max;
    instance_cache;
    plan_cache;
    max_vertices;
    max_requests;
  }

(* --- the loop --------------------------------------------------------- *)

(* A request frame is a few hundred bytes (Protocol caps every spec);
   64 KiB leaves room without letting a hostile length claim park the
   1 GiB Frame.max_payload per connection. *)
let max_request_frame = 1 lsl 16

(* Most bytes pulled off a connection per select round. *)
let read_chunk = 1 lsl 16

(* A peer that keeps a write blocked this long has stopped reading its
   responses; dropping it is the only way to keep the loop live for
   everyone else. *)
let send_timeout_s = 10.

type conn = {
  fd : Unix.file_descr;
  mutable alive : bool;
  (* Bytes received but not yet forming a complete frame. *)
  mutable pending : string;
}

let close_conn c =
  if c.alive then begin
    c.alive <- false;
    c.pending <- "";
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let send_response c resp =
  if c.alive then
    try Protocol.write_response c.fd resp with
    | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> close_conn c
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _)
      ->
        (* SO_SNDTIMEO expired mid-frame: the peer stopped reading. *)
        close_conn c

let listen_on = function
  | Unix_path path ->
      (* A stale socket file from a dead daemon would make bind fail;
         remove it only if it is a socket (never a user's regular file). *)
      (match Unix.lstat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> (try Unix.unlink path with _ -> ())
      | _ -> ()
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      Unix.bind fd (Unix.ADDR_INET (inet, port));
      Unix.listen fd 64;
      fd

let stop_flag = ref false

let install_signals () =
  let stop _ = stop_flag := true in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle stop)
   with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle stop)
   with Invalid_argument _ | Sys_error _ -> ());
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let run ?(cfg = config ()) ?trace ?on_ready () =
  stop_flag := false;
  install_signals ();
  let engine =
    Engine.create ~instance_cache:cfg.instance_cache ~plan_cache:cfg.plan_cache
      ~max_vertices:cfg.max_vertices ()
  in
  let listen_fd = listen_on cfg.address in
  Log.info (fun m -> m "listening on %s" (address_to_string cfg.address));
  (match on_ready with Some f -> f () | None -> ());
  let conns : conn list ref = ref [] in
  let queue : (Protocol.request * conn) Queue.t = Queue.create () in
  let answered = ref 0 in
  let budget_left () =
    match cfg.max_requests with None -> true | Some k -> !answered < k
  in
  let reply c resp =
    send_response c resp;
    incr answered
  in
  (* One inbound frame: admission verdict or a named protocol error. *)
  let handle_frame c (f : Frame.t) =
    match Protocol.request_of_frame f with
    | Error msg ->
        reply c
          {
            Protocol.rid = max f.Frame.a 0;
            body =
              Protocol.Error_r { code = Protocol.Bad_request; message = msg };
          }
    | Ok req ->
        if Queue.length queue >= cfg.queue_bound then begin
          Engine.note_rejection engine;
          reply c
            { Protocol.rid = req.Protocol.id; body = Engine.error_body Engine.Overloaded }
        end
        else begin
          Queue.add (req, c) queue;
          Engine.note_queue_depth engine (Queue.length queue)
        end
  in
  (* Decode every complete frame accumulated on the connection; a
     trailing partial frame stays in [pending] until more bytes arrive
     (the loop never blocks waiting for them). *)
  let rec decode_pending c =
    if c.alive then
      match
        Frame.decode_prefix ~max_frame_payload:max_request_frame c.pending
      with
      | Ok None -> ()
      | Ok (Some (f, used)) ->
          c.pending <-
            String.sub c.pending used (String.length c.pending - used);
          handle_frame c f;
          decode_pending c
      | Error reason ->
          (* Framing is broken — no request boundary to resynchronize
             on, so answer nothing and drop the connection. *)
          Log.debug (fun m -> m "dropping connection: %s" reason);
          close_conn c
  in
  (* Drain every byte already buffered on the connection, so a
     pipelining client can outrun the queue bound and observe Overloaded
     rather than being serialized one frame per select round.  Each read
     takes only what the kernel already holds: select says the first
     byte is there, and read on a readable socket returns the available
     bytes without waiting for the count requested. *)
  let scratch = Bytes.create read_chunk in
  let rec drain c =
    if c.alive then
      match Unix.select [ c.fd ] [] [] 0. with
      | [ _ ], _, _ -> (
          match Unix.read c.fd scratch 0 read_chunk with
          | 0 ->
              (* EOF: any partial frame in [pending] is abandoned. *)
              close_conn c
          | k ->
              c.pending <- c.pending ^ Bytes.sub_string scratch 0 k;
              decode_pending c;
              drain c
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain c
          | exception
              Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
              close_conn c)
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  let accept_new () =
    match Unix.accept listen_fd with
    | fd, _ ->
        (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO send_timeout_s
         with Unix.Unix_error _ | Invalid_argument _ -> ());
        conns := { fd; alive = true; pending = "" } :: !conns
    | exception
        Unix.Unix_error
          ((Unix.ECONNABORTED | Unix.EMFILE | Unix.ENFILE | Unix.EAGAIN), _, _)
      ->
        (* Transient accept failure: the EINTR-safe backoff shared with
           the shard supervisor, then retry on the next select round. *)
        Supervisor.sleep_ms 10
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  let run_batches () =
    while not (Queue.is_empty queue) do
      let k = min cfg.batch_max (Queue.length queue) in
      let batch = List.init k (fun _ -> Queue.pop queue) in
      let bodies =
        Engine.submit_batch engine ?trace (List.map fst batch)
      in
      List.iter2
        (fun (req, c) body ->
          let body =
            match body with Ok b -> b | Error e -> Engine.error_body e
          in
          reply c { Protocol.rid = req.Protocol.id; body })
        batch bodies
    done
  in
  let rec loop () =
    if (not !stop_flag) && budget_left () then begin
      conns := List.filter (fun c -> c.alive) !conns;
      let fds = listen_fd :: List.map (fun c -> c.fd) !conns in
      (match Unix.select fds [] [] 0.5 with
      | readable, _, _ ->
          if List.memq listen_fd readable then accept_new ();
          List.iter
            (fun c -> if List.memq c.fd readable then drain c)
            !conns
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      run_batches ();
      loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter close_conn !conns;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      match cfg.address with
      | Unix_path path -> ( try Unix.unlink path with _ -> ())
      | Tcp _ -> ())
    loop;
  Engine.stats engine
