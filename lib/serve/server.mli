(** The serving daemon: accept/select loop, admission control, batching,
    supervision and warm-start persistence.

    Single-threaded by design — the loop thread owns every socket and the
    engine; parallelism lives inside {!Engine.submit_batch} on the
    {!Ls_par} domain pool.  Admission is per-connection: each client owns
    a bounded FIFO of [queue_bound] requests, so a flooding peer fills
    its own queue and sees [Overloaded] while everyone else's requests
    are still admitted (the verdict is deterministic given each
    connection's arrival order).  Batches form by deficit round-robin
    with a one-request quantum over connections in accept order, and a
    request whose [deadline_ms] elapsed in the queue is answered
    [Expired] without executing.  Backpressure is structural: during
    batch execution no socket is read, so daemon memory stays bounded by
    connections × [queue_bound] + [batch_max] requests plus a small
    per-connection inbound buffer.  Inbound frames are decoded
    incrementally, so a peer that stalls mid-frame never blocks the
    loop; responses are written under a configurable send timeout, so a
    peer that stops reading is dropped rather than wedging other
    connections.

    Responses on one connection are written in the arrival order of their
    requests; response bodies are a pure function of the request bytes
    (admission verdicts and [Stats] aside), so transcripts byte-diff
    clean across domain counts, restarts and chaos schedules.

    Crash tolerance: {!run_supervised} forks the loop as a worker under
    the {!Ls_shard.Supervisor} restart-budget/backoff/hang-probe
    discipline with the listener held by the parent, and [state_dir]
    persists the engine caches through a {!Ls_shard.Ckpt}-style
    self-validating tmp+rename snapshot (written on drain and every
    [snapshot_every] batches, reloaded on boot; torn or corrupt files
    read as absence).  SIGTERM triggers a graceful drain: stop
    accepting, answer every admitted request, snapshot, exit 0. *)

type address = Unix_path of string | Tcp of string * int

val parse_address : string -> (address, string) result
(** ["unix:PATH"], ["tcp:HOST:PORT"], ["tcp:PORT"] (localhost), or a bare
    path (unix). *)

val address_to_string : address -> string

val env_check : unit -> (unit, string) result
(** Validate [LOCSAMPLE_SERVE_SOCKET] (must parse as an address),
    [LOCSAMPLE_SERVE_QUEUE] and [LOCSAMPLE_SERVE_CACHE] (integers ≥ 1),
    [LOCSAMPLE_SERVE_SEND_TIMEOUT] (a number > 0) and
    [LOCSAMPLE_SERVE_STATE] (must not name an existing non-directory).
    Called from the CLI's startup validation alongside
    {!Ls_par.Par.env_check}. *)

val default_address : unit -> address
(** [LOCSAMPLE_SERVE_SOCKET] when set, else a fixed socket under the
    system temp dir. *)

val default_queue : unit -> int
(** [LOCSAMPLE_SERVE_QUEUE] when set, else 64.  Raises
    [Invalid_argument] on a malformed or non-positive value — the same
    values {!env_check} rejects (the CLI reports them via that check
    first; library callers are not silently defaulted). *)

val default_cache : unit -> int
(** [LOCSAMPLE_SERVE_CACHE] when set, else 64.  Raises
    [Invalid_argument] exactly as {!default_queue} does. *)

val default_send_timeout : unit -> float
(** [LOCSAMPLE_SERVE_SEND_TIMEOUT] when set, else 10 s.  Raises
    [Invalid_argument] exactly as {!default_queue} does. *)

val default_state_dir : unit -> string option
(** [LOCSAMPLE_SERVE_STATE] when set and non-empty; [None] disables
    cache persistence. *)

type config = {
  address : address;
  queue_bound : int;  (** Admission bound on {e each connection's} queue. *)
  batch_max : int;  (** Most requests per engine batch. *)
  instance_cache : int;
  plan_cache : int;
  max_vertices : int;  (** Per-request graph size cap. *)
  max_requests : int option;
      (** Stop after answering this many requests — deterministic
          termination for tests and the CI smoke job. *)
  send_timeout : float;
      (** SO_SNDTIMEO on client sockets: a peer that keeps a response
          write blocked this long is dropped. *)
  state_dir : string option;
      (** Where cache snapshots live; [None] disables persistence. *)
  snapshot_every : int;  (** Snapshot cadence, in executed batches. *)
}

val config :
  ?address:address ->
  ?queue_bound:int ->
  ?batch_max:int ->
  ?instance_cache:int ->
  ?plan_cache:int ->
  ?max_vertices:int ->
  ?max_requests:int ->
  ?send_timeout:float ->
  ?state_dir:string ->
  ?snapshot_every:int ->
  unit ->
  config
(** Defaults from the environment accessors above; [batch_max] 32,
    [snapshot_every] 8.  Raises [Invalid_argument] on non-positive
    bounds. *)

val run :
  ?cfg:config ->
  ?trace:Ls_obs.Trace.t ->
  ?on_ready:(unit -> unit) ->
  ?listen_fd:Unix.file_descr ->
  ?incarnation:int ->
  ?heartbeat:(unit -> unit) ->
  unit ->
  Protocol.stats
(** Serve until SIGTERM/SIGINT or the [max_requests] budget is spent;
    [on_ready] fires once the socket is listening.  On SIGTERM the loop
    drains: every admitted request is answered before the final snapshot
    and return.  Always closes every descriptor it opened — when
    [listen_fd] is supplied (supervised mode) the caller owns the
    listener and the socket path.  [incarnation] seeds the [st_restarts]
    stat; [heartbeat] is invoked once per select round and per executed
    batch (the supervised worker's liveness signal).  Returns the final
    engine counters. *)

val default_supervision : Ls_shard.Supervisor.policy
(** {!Ls_shard.Supervisor.default_policy} with a 5 s hang timeout
    (select rounds are 0.5 s; large healthy batches beat slower than
    shard workers do). *)

val run_supervised :
  ?cfg:config ->
  ?policy:Ls_shard.Supervisor.policy ->
  ?trace:Ls_obs.Trace.t ->
  ?on_ready:(unit -> unit) ->
  ?worker_pid_file:string ->
  unit ->
  Protocol.stats
(** Fork the select loop as a worker and supervise it: the parent holds
    the listening socket (so a killed worker restarts without dropping
    it — clients in the accept backlog are picked up by the
    replacement), watches heartbeat frames, SIGKILLs a worker silent
    past the policy's hang probes, and respawns after death with
    exponential backoff until the restart budget is spent (then raises
    {!Ls_shard.Supervisor.Failed}[ (Transient, _)]).  Each incarnation
    warm-starts from the latest cache snapshot when [state_dir] is set.
    SIGTERM/SIGINT are forwarded to the worker, which drains, snapshots
    and reports its final stats back; those stats are returned.
    [worker_pid_file] publishes the current worker's pid (atomic
    tmp+rename rewrite on every spawn) so tests and CI can aim kill -9.
    Must be called before any domain is created ({!Ls_par.Par.quiesce}
    is invoked, but a live domain elsewhere makes fork refuse). *)
