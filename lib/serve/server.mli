(** The serving daemon: accept/select loop, admission control, batching.

    Single-threaded by design — the loop thread owns every socket and the
    engine; parallelism lives inside {!Engine.submit_batch} on the
    {!Ls_par} domain pool.  Admission is a bounded FIFO: a request
    arriving on a full queue is answered [Overloaded] immediately.
    Backpressure is structural: during batch execution no socket is read,
    so daemon memory stays bounded by [queue_bound + batch_max] requests
    plus a small per-connection inbound buffer.  Inbound frames are
    decoded incrementally, so a peer that stalls mid-frame never blocks
    the loop; responses are written under a send timeout, so a peer that
    stops reading is dropped rather than wedging other connections.

    Responses on one connection are written in the arrival order of their
    requests; response bodies are a pure function of the request bytes
    (admission verdicts and [Stats] aside), so transcripts byte-diff
    clean across domain counts. *)

type address = Unix_path of string | Tcp of string * int

val parse_address : string -> (address, string) result
(** ["unix:PATH"], ["tcp:HOST:PORT"], ["tcp:PORT"] (localhost), or a bare
    path (unix). *)

val address_to_string : address -> string

val env_check : unit -> (unit, string) result
(** Validate [LOCSAMPLE_SERVE_SOCKET] (must parse as an address),
    [LOCSAMPLE_SERVE_QUEUE] and [LOCSAMPLE_SERVE_CACHE] (integers ≥ 1).
    Called from the CLI's startup validation alongside
    {!Ls_par.Par.env_check}. *)

val default_address : unit -> address
(** [LOCSAMPLE_SERVE_SOCKET] when set, else a fixed socket under the
    system temp dir. *)

val default_queue : unit -> int
(** [LOCSAMPLE_SERVE_QUEUE] when set, else 64.  Raises
    [Invalid_argument] on a malformed or non-positive value — the same
    values {!env_check} rejects (the CLI reports them via that check
    first; library callers are not silently defaulted). *)

val default_cache : unit -> int
(** [LOCSAMPLE_SERVE_CACHE] when set, else 64.  Raises
    [Invalid_argument] exactly as {!default_queue} does. *)

type config = {
  address : address;
  queue_bound : int;  (** Admission bound on the request queue. *)
  batch_max : int;  (** Most requests per engine batch. *)
  instance_cache : int;
  plan_cache : int;
  max_vertices : int;  (** Per-request graph size cap. *)
  max_requests : int option;
      (** Stop after answering this many requests — deterministic
          termination for tests and the CI smoke job. *)
}

val config :
  ?address:address ->
  ?queue_bound:int ->
  ?batch_max:int ->
  ?instance_cache:int ->
  ?plan_cache:int ->
  ?max_vertices:int ->
  ?max_requests:int ->
  unit ->
  config
(** Defaults from the environment accessors above; [batch_max] 32.
    Raises [Invalid_argument] on non-positive bounds. *)

val run :
  ?cfg:config ->
  ?trace:Ls_obs.Trace.t ->
  ?on_ready:(unit -> unit) ->
  unit ->
  Protocol.stats
(** Serve until SIGTERM/SIGINT or the [max_requests] budget is spent;
    [on_ready] fires once the socket is listening.  Always closes every
    descriptor it opened (and unlinks its unix socket); returns the final
    engine counters. *)
