(* Per-shard checkpoint files: the durable half of kill -9 recovery.

   A worker writes its phase state after every completed round; a
   restarted incarnation loads the newest valid checkpoint and replays
   from the round after it.  Two properties carry the whole recovery
   story:

   - {b Atomicity.}  The file is written to a [.tmp] sibling and
     [Unix.rename]d into place, so a reader never observes a torn
     checkpoint: it sees the previous complete one or the new complete
     one, even if the writer is SIGKILLed mid-write.

   - {b Self-validation.}  The format carries a magic, a version, the
     run id, the (shard, phase, round) coordinates and a payload digest;
     {!load} treats {e any} invalidity — wrong run, wrong shard, torn
     tail, digest mismatch — as absence.  A stale or corrupt file can
     delay recovery (the worker replays from scratch), never corrupt it. *)

module Codec = Ls_sketch.Codec

let magic = "LSCK"
let version = 1

type meta = { run_id : int64; shard : int; phase : int; round : int }

let default_dir () =
  match Sys.getenv_opt "LOCSAMPLE_SHARD_DIR" with
  | Some d when d <> "" -> d
  | _ -> Filename.concat (Filename.get_temp_dir_name ()) "locsample-shard-ckpt"

let env_check () =
  match Sys.getenv_opt "LOCSAMPLE_SHARD_DIR" with
  | None | Some "" -> Ok ()
  | Some d ->
      (* The dir need not exist yet (ensure_dir creates it), but a path
         that exists and is not a directory would make every checkpoint
         write fail with an unhelpful Unix_error much later. *)
      if Sys.file_exists d && not (Sys.is_directory d) then
        Error
          (Printf.sprintf "LOCSAMPLE_SHARD_DIR=%S: exists but is not a directory"
             d)
      else Ok ()

let path ~dir ~run_id ~shard =
  Filename.concat dir (Printf.sprintf "shard-%016Lx-%d.ckpt" run_id shard)

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let encode meta payload =
  let buf = Buffer.create (String.length payload + 64) in
  Buffer.add_string buf magic;
  Codec.add_int buf version;
  Codec.add_i64 buf meta.run_id;
  Codec.add_int buf meta.shard;
  Codec.add_int buf meta.phase;
  Codec.add_int buf meta.round;
  Codec.add_int buf (String.length payload);
  Codec.add_i64 buf (Frame.digest64 payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

let decode s =
  let ( let* ) = Result.bind in
  let cur = ref 0 in
  let* () = Codec.read_magic s cur magic in
  let* v = Codec.read_int s cur in
  if v <> version then Error "Ckpt: unknown version"
  else
    let* run_id = Codec.read_i64 s cur in
    let* shard = Codec.read_int s cur in
    let* phase = Codec.read_int s cur in
    let* round = Codec.read_int s cur in
    let* len = Codec.read_int s cur in
    let* dg = Codec.read_i64 s cur in
    if len < 0 || len > Codec.remaining s cur then
      Error "Ckpt: payload length exceeds bytes present"
    else begin
      let payload = String.sub s !cur len in
      cur := !cur + len;
      if !cur <> String.length s then Error "Ckpt: trailing bytes"
      else if not (Int64.equal (Frame.digest64 payload) dg) then
        Error "Ckpt: payload digest mismatch"
      else Ok ({ run_id; shard; phase; round }, payload)
    end

(* All IO goes through {!Sysio} (fault-injectable, EINTR-retried rename
   and close), and any failure unlinks the [.tmp] sibling before
   re-raising: a full disk costs this checkpoint, never a leaked temp
   file next to the last good one. *)
let save_path ~path:final meta payload =
  ensure_dir (Filename.dirname final);
  let tmp = final ^ ".tmp" in
  let fd =
    Sysio.openfile ~site:"ckpt.open" tmp
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
      0o644
  in
  try
    Fun.protect
      ~finally:(fun () ->
        try Sysio.close ~site:"ckpt.close" fd
        with Unix.Unix_error _ -> ())
      (fun () -> Frame.write_string ~site:"ckpt.write" fd (encode meta payload));
    Sysio.rename ~site:"ckpt.rename" tmp final
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let save ~dir meta payload =
  save_path ~path:(path ~dir ~run_id:meta.run_id ~shard:meta.shard) meta payload

(* Checkpoint-free continuation: durability is an optimization of
   recovery time, not a correctness requirement, so a checkpoint that
   cannot be written (disk full, quota) is skipped — the last good one
   stays in place and a crash simply replays more rounds.  The skip is
   observable: the [ckpt_skips] metric bumps and the "checkpoint"
   subsystem goes degraded (the {!Ls_obs.Trace.Degraded_enter} event is
   the traced warning); the next successful save clears it. *)
let save_best_effort ~dir meta payload =
  try
    save ~dir meta payload;
    Ls_obs.Health.clear ~subsystem:"checkpoint"
  with
  | Unix.Unix_error (e, _, _) ->
      Ls_obs.Metrics.record_ckpt_skip ();
      Ls_obs.Health.set_degraded ~subsystem:"checkpoint"
        ~reason:("checkpoint write failed: " ^ Unix.error_message e)
  | Sys_error msg ->
      Ls_obs.Metrics.record_ckpt_skip ();
      Ls_obs.Health.set_degraded ~subsystem:"checkpoint"
        ~reason:("checkpoint write failed: " ^ msg)

let read_file p =
  match open_in_bin p with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let len = in_channel_length ic in
          Some (really_input_string ic len))

let load_path ~path:p =
  match read_file p with
  | None -> None
  | Some s -> ( match decode s with Error _ -> None | Ok mp -> Some mp)

let load ~dir ~run_id ~shard =
  match load_path ~path:(path ~dir ~run_id ~shard) with
  | Some (meta, payload)
    when Int64.equal meta.run_id run_id && meta.shard = shard ->
      Some (meta, payload)
  | _ -> None

let remove ~dir ~run_id ~shard =
  let p = path ~dir ~run_id ~shard in
  (try Sys.remove p with Sys_error _ -> ());
  try Sys.remove (p ^ ".tmp") with Sys_error _ -> ()
