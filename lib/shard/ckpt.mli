(** Per-shard checkpoint files for kill -9 recovery.

    Written atomically (temp file + [rename]), so a reader observes the
    previous complete checkpoint or the new one — never a torn mix, even
    when the writer is SIGKILLed mid-write.  The format is
    self-validating (magic, version, run id, coordinates, payload
    digest); {!load} treats any invalidity as absence, so corruption can
    cost a replay from scratch but never poison recovery. *)

type meta = { run_id : int64; shard : int; phase : int; round : int }

val default_dir : unit -> string
(** [$LOCSAMPLE_SHARD_DIR] when set and non-empty, else a fixed
    subdirectory of the system temp dir. *)

val env_check : unit -> (unit, string) result
(** Validate [$LOCSAMPLE_SHARD_DIR] at CLI startup: a set, non-empty
    value that exists but is not a directory is a named error (it would
    otherwise fail deep inside the first checkpoint write). *)

val path : dir:string -> run_id:int64 -> shard:int -> string

val save : dir:string -> meta -> string -> unit
(** Atomic write (creates [dir] if missing).  Any failure unlinks the
    [.tmp] sibling before re-raising, so the previous checkpoint is
    never flanked by a leaked temp file. *)

val save_best_effort : dir:string -> meta -> string -> unit
(** {!save}, but a write failure ([Unix_error] or [Sys_error]) is
    absorbed instead of raised: the last good checkpoint stays in
    place and execution continues checkpoint-free — a crash now replays
    more rounds, nothing else.  Skips bump the [ckpt_skips] metric and
    mark the ["checkpoint"] subsystem degraded in {!Ls_obs.Health};
    the next successful save clears the mark. *)

val load : dir:string -> run_id:int64 -> shard:int -> (meta * string) option
(** The shard's checkpoint, if present {e and} valid {e and} belonging
    to this [run_id]. *)

val remove : dir:string -> run_id:int64 -> shard:int -> unit
(** Best-effort removal of the checkpoint and any temp sibling. *)

val save_path : path:string -> meta -> string -> unit
(** {!save} to an explicit file path (creates the parent directory if
    missing) — the same atomic tmp+rename discipline keyed by the
    caller's own naming scheme (the serve cache snapshot uses this). *)

val load_path : path:string -> (meta * string) option
(** {!load} from an explicit file path; no run_id/shard cross-check —
    callers validate the returned [meta] themselves. *)

(**/**)

val encode : meta -> string -> string
val decode : string -> (meta * string, string) result
(** Pure codec, exposed for torn-file and fuzz tests. *)

(**/**)
