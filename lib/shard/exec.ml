(* Sharded execution of faulty broadcast phases across worker OS
   processes — the transport {!Ls_local.Network.set_transport} runs.

   {b Architecture.}  The phase forks one worker per shard {e inside}
   the transport call, so the phase's [init]/[emit]/[merge] closures,
   the fault plan and the carried-in state are all in scope in every
   child via fork — nothing is configured over the wire.  Each worker
   owns a contiguous vertex block ({!Router.range}) and simulates only
   its own vertices; cross-shard copies travel through the parent in a
   per-round batch/deliver barrier, which preserves synchronous
   semantics exactly (a copy with delay 0 still arrives in its send
   round).

   {b Why this is bit-identical to the in-process executor.}  Every
   fault verdict is a pure function of (seed, round, src, dst, copy), so
   workers recompute fates independently and agree with what the
   single-process run would have computed.  Delivery order inside an
   inbox slot is fixed by the {!Ls_local.Linksem} comparators — parked
   carry-ins descending, fresh copies ascending (send, src, copy) — so
   it does not depend on message arrival interleaving.  Fault events are
   shipped back keyed by (round, src, neighbor index) and replayed by
   the parent in exactly the in-process emission order, interleaved with
   the partition/crash/checkpoint/restore bookkeeping events the parent
   reconstructs locally (it owns the crash tables).  Meters are summed
   counter deltas.  The one intentional difference: shard lifecycle
   events (spawn/restart) appear in the trace, which single-process runs
   never emit — CI strips them alongside timestamps when diffing.

   {b Kill -9 recovery.}  After every completed round a worker writes an
   atomic checkpoint ({!Ckpt}).  When a worker dies, the supervisor
   re-forks it; the new incarnation restores the checkpoint and replays
   from the next round, re-sending batches the parent may already have.
   The parent keeps all received batches, so a duplicate is checked
   against the original (same verdict coordinates — the determinism
   check) and answered with the same stored deliveries; healthy shards,
   blocked at the barrier, never observe the crash.  Kill specs let the
   CLI and chaos harness inject real [kill -9] (or a hang) at an exact
   (shard, phase, round, incarnation) coordinate. *)

module Network = Ls_local.Network
module Linksem = Ls_local.Linksem
module Faults = Ls_local.Faults
module Graph = Ls_graph.Graph
module Trace = Ls_obs.Trace
module Metrics = Ls_obs.Metrics
module Splitmix = Ls_rng.Splitmix

(* {1 Kill specs} *)

type kill_spec = {
  k_shard : int;
  k_phase : int;
  k_round : int;
  k_incarnation : int;
  k_hang : bool;
}

let parse_kill_specs s =
  let parse_one part =
    let fields = String.split_on_char ':' (String.trim part) in
    let fields, hang =
      match List.rev fields with
      | "hang" :: rest -> (List.rev rest, true)
      | _ -> (fields, false)
    in
    match List.map int_of_string_opt fields with
    | [ Some sh; Some ph; Some r ] ->
        Ok { k_shard = sh; k_phase = ph; k_round = r; k_incarnation = 0; k_hang = hang }
    | [ Some sh; Some ph; Some r; Some inc ] ->
        Ok { k_shard = sh; k_phase = ph; k_round = r; k_incarnation = inc; k_hang = hang }
    | _ ->
        Error
          (Printf.sprintf
             "bad kill spec %S (expected SHARD:PHASE:ROUND[:INCARNATION][:hang])"
             part)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: ps -> ( match parse_one p with Ok k -> go (k :: acc) ps | Error _ as e -> e)
  in
  go []
    (List.filter
       (fun p -> String.trim p <> "")
       (String.split_on_char ',' s))

let kill_matches kills ~shard ~phase ~round ~incarnation =
  List.find_opt
    (fun k ->
      k.k_shard = shard && k.k_phase = phase && k.k_round = round
      && k.k_incarnation = incarnation)
    kills

(* A matched kill really is SIGKILL to self — the recovery story is
   exercised against the genuine article, not a simulated exit. *)
let fire_kill k =
  if k.k_hang then
    while true do
      Unix.sleep 3600
    done;
  Unix.kill (Unix.getpid ()) Sys.sigkill;
  (* Unreachable; SIGKILL cannot be handled. *)
  Unix._exit 127

(* {1 Configuration} *)

type config = {
  shards : int;
  kills : kill_spec list;
  dir : string;
  policy : Supervisor.policy;
  ckpt_every : int;
}

let config ?(kills = []) ?dir ?(policy = Supervisor.default_policy)
    ?(ckpt_every = 1) ~shards () =
  if shards < 1 then invalid_arg "Exec.config: shards must be >= 1";
  if ckpt_every < 1 then invalid_arg "Exec.config: ckpt_every must be >= 1";
  {
    shards;
    kills;
    dir = (match dir with Some d -> d | None -> Ckpt.default_dir ());
    policy;
    ckpt_every;
  }

(* Phases are numbered process-globally, in execution order: the
   coordinate kill specs and checkpoints are keyed by. *)
let phase_counter = Atomic.make 0
let reset_phase_counter () = Atomic.set phase_counter 0

(* {1 Wire protocol} *)

let k_batch = 1 (* worker -> parent: a = round, payload = cross entries *)
let k_deliver = 2 (* parent -> worker: a = round, payload = entries for it *)
let k_done = 3 (* worker -> parent: payload = marshaled summary *)

type 's ckpt_change = Unchanged | Cleared | Set of 's

(* End-of-phase result for one shard.  States and parked payloads are
   raw ['m]/['s] values: both ends are forked copies of one binary, so
   [Marshal] round-trips them (with [Closures] — phase states are
   caller-typed and may capture functions). *)
type ('m, 's) summary = {
  sm_states : 's array;  (* owned block, index v - lo *)
  sm_bits : int;
  sm_msgs : int;
  sm_quar : int;
  sm_dead : int;
  sm_delivered : int;
  sm_parked : (int * int * int * int * int * 'm) list;
      (* sent, arrive, src, dst, copy, payload *)
  sm_ckpt : 's ckpt_change array;  (* per owned vertex *)
  sm_events : ((int * int * int) * Trace.event list) list;
      (* (abs round, src, neighbor index) -> that fate's events,
         chronological *)
}

(* Worker recovery state, the checkpoint payload: everything a fresh
   incarnation needs to resume after round [ws_round]. *)
type ('m, 's) wstate = {
  ws_round : int;  (* last fully completed round *)
  ws_states : 's array;
  ws_inbox : (int * int * int * 'm) list array array;
      (* [slot].(v - lo) -> fresh copies (sent, src, copy, payload) *)
  ws_store : 's option array;  (* local checkpoint store, per owned *)
  ws_bits : int;
  ws_msgs : int;
  ws_quar : int;
  ws_dead : int;
  ws_delivered : int;
  ws_parked : (int * int * int * int * int * 'm) list;
  ws_events : ((int * int * int) * Trace.event list) list;  (* reversed *)
}

let marshal v = Marshal.to_string v [ Marshal.Closures ]
let unmarshal s : 'a = Marshal.from_string s 0

let read_frame fd =
  match Frame.read_fd fd with
  | Ok f -> f
  | Error Frame.Closed -> failwith "shard worker: parent channel closed"
  | Error Frame.Truncated -> failwith "shard worker: parent channel truncated"
  | Error (Frame.Malformed m) -> failwith ("shard worker: " ^ m)

(* {1 The transport} *)

let run_phase cfg (t : 'i Network.t) ~rounds ~(size : ('m -> int) option)
    ~(corrupt : (round:int -> src:int -> dst:int -> 'm -> 'm) option)
    ~(digest : ('m -> int) option) ~(ckpt : 's Network.carrier option)
    ~(carry : 'm Network.carrier option) ~(trace : Trace.t option) ~init
    ~emit ~merge : 's array * int =
  let g = Network.graph t in
  let n = Graph.n g in
  let fp = Network.faults t in
  let base = Network.clock t in
  let shards = max 1 (min cfg.shards (max 1 n)) in
  let phase = Atomic.fetch_and_add phase_counter 1 in
  let run_id =
    Splitmix.mix64
      (Int64.logxor
         (Int64.of_int ((phase * 1_000_003) + base))
         (Int64.of_int (Unix.getpid ())))
  in
  let crash_at = Network.Internal.crash_at t in
  let recover_at = Network.Internal.recover_at t in
  let alive abs v = Linksem.alive ~crash_at ~recover_at ~abs v in
  let ship_events = trace <> None || Metrics.enabled () in
  (* Carried-in copies of this phase's message type, projected before the
     fork so workers see plain ['m] values; copies still due past this
     phase stay parked on the network. *)
  let carried, rest_pending =
    match carry with
    | None -> ([], Network.Internal.pending t)
    | Some c ->
        let mine, rest =
          List.partition
            (fun (p : Network.Internal.packet) ->
              Option.is_some (Network.Internal.project c p.payload))
            (Network.Internal.pending t)
        in
        let now, later =
          List.partition (fun (p : Network.Internal.packet) ->
              max 0 (p.arrive - base) < rounds)
            mine
        in
        ( List.map
            (fun (p : Network.Internal.packet) ->
              match Network.Internal.project c p.payload with
              | Some m ->
                  (max 0 (p.arrive - base), p.sent, p.p_src, p.p_dst, p.p_copy, m)
              | None -> assert false)
            now,
          rest @ later )
  in
  (* Checkpoints carried in from earlier phases, projected pre-fork. *)
  let store0 =
    Array.init n (fun v ->
        match ckpt with
        | None -> None
        | Some c -> Option.bind (Network.Internal.ckpt t v) (Network.Internal.project c))
  in
  (* {2 Worker body} *)
  let body ~shard ~incarnation fd =
    (* Workers meter by hand and ship deltas; their (forked, private)
       atomic counters must stay silent. *)
    Metrics.set_enabled false;
    let lo, hi = Router.range ~shards ~n shard in
    let nv = hi - lo in
    let owned v = v >= lo && v < hi in
    (* Parked carry-ins for owned vertices, grouped by slot, sorted in
       the descending delivery order (recomputed identically by every
       incarnation — static data, never checkpointed). *)
    let parked_in = Array.make_matrix rounds (max nv 1) [] in
    List.iter
      (fun (slot, sent, src, dst, copy, m) ->
        if owned dst then
          parked_in.(slot).(dst - lo) <-
            (sent, src, copy, m) :: parked_in.(slot).(dst - lo))
      carried;
    Array.iter
      (fun row ->
        Array.iteri
          (fun i l ->
            row.(i) <-
              List.sort
                (fun (s1, v1, c1, _) (s2, v2, c2, _) ->
                  Linksem.compare_parked (s1, v1, c1) (s2, v2, c2))
                l)
          row)
      parked_in;
    let fresh_state () =
      {
        ws_round = -1;
        ws_states = Array.init nv (fun i -> init (lo + i));
        ws_inbox = Array.make_matrix rounds (max nv 1) [];
        ws_store = Array.init nv (fun i -> store0.(lo + i));
        ws_bits = 0;
        ws_msgs = 0;
        ws_quar = 0;
        ws_dead = 0;
        ws_delivered = 0;
        ws_parked = [];
        ws_events = [];
      }
    in
    let ws =
      if incarnation = 0 then fresh_state ()
      else
        match Ckpt.load ~dir:cfg.dir ~run_id ~shard with
        | Some (meta, payload) when meta.Ckpt.phase = phase ->
            (unmarshal payload : ('m, 's) wstate)
        | _ -> fresh_state ()
    in
    let states = ws.ws_states in
    let inbox = ws.ws_inbox in
    let store = ws.ws_store in
    let bits = ref ws.ws_bits
    and msgs = ref ws.ws_msgs
    and quar = ref ws.ws_quar
    and dead = ref ws.ws_dead
    and delivered = ref ws.ws_delivered in
    let parked = ref ws.ws_parked in
    let events = ref ws.ws_events in
    for round = ws.ws_round + 1 to rounds - 1 do
      (match kill_matches cfg.kills ~shard ~phase ~round ~incarnation with
      | Some k -> fire_kill k
      | None -> ());
      let abs = base + round in
      (* Bookkeeping for owned vertices: snapshot at the crash round,
         restore at the recovery round.  Events are the parent's job —
         it owns the crash tables and replays them in global order. *)
      for i = 0 to nv - 1 do
        let v = lo + i in
        if crash_at.(v) = abs && ckpt <> None then store.(i) <- Some states.(i);
        if recover_at.(v) = abs && ckpt <> None then
          match store.(i) with
          | Some st ->
              states.(i) <- st;
              store.(i) <- None
          | None -> ()
      done;
      (* Emission: fates for every directed edge out of an owned, alive
         vertex.  Same-shard copies go straight to the local inbox;
         cross-shard copies are marshaled into the round's batch. *)
      let cross = ref [] in
      for i = 0 to nv - 1 do
        let v = lo + i in
        if alive abs v then begin
          let msg = emit v states.(i) in
          Array.iteri
            (fun nbr_idx u ->
              let f =
                Linksem.fate fp ~round:abs ~src:v ~dst:u ?corrupt ?digest msg
              in
              if ship_events then begin
                match Linksem.events_of_fate ~round:abs ~src:v ~dst:u f with
                | [] -> ()
                | evs -> events := ((abs, v, nbr_idx), evs) :: !events
              end;
              List.iter
                (fun (c : _ Linksem.copy) ->
                  (match size with
                  | Some sz -> bits := !bits + sz c.Linksem.c_msg
                  | None -> ());
                  incr msgs;
                  if c.Linksem.c_quarantined then incr quar
                  else begin
                    let slot = round + c.Linksem.c_delay in
                    if slot < rounds then begin
                      if owned u then
                        inbox.(slot).(u - lo) <-
                          (abs, v, c.Linksem.c_index, c.Linksem.c_msg)
                          :: inbox.(slot).(u - lo)
                      else
                        cross :=
                          {
                            Router.e_slot = slot;
                            e_sent = abs;
                            e_src = v;
                            e_dst = u;
                            e_copy = c.Linksem.c_index;
                            e_bytes = marshal c.Linksem.c_msg;
                          }
                          :: !cross
                    end
                    else
                      match carry with
                      | Some _ ->
                          parked :=
                            (abs, base + slot, v, u, c.Linksem.c_index,
                             c.Linksem.c_msg)
                            :: !parked
                      | None -> incr dead
                  end)
                f.Linksem.f_copies)
            (Graph.neighbors g v)
        end
      done;
      (* Barrier: batch out, deliveries in.  The parent echoes entries
         from every other shard sent this round (any future slot). *)
      let buf = Buffer.create 256 in
      Router.encode_entries buf (List.rev !cross);
      Frame.write_fd fd
        { Frame.kind = k_batch; a = round; b = shard; c = 0;
          payload = Buffer.contents buf };
      let dfr = read_frame fd in
      if dfr.Frame.kind <> k_deliver || dfr.Frame.a <> round then
        failwith "shard worker: protocol desync";
      (match Router.decode_entries dfr.Frame.payload (ref 0) with
      | Error e -> failwith ("shard worker: " ^ e)
      | Ok entries ->
          List.iter
            (fun (e : Router.entry) ->
              inbox.(e.Router.e_slot).(e.Router.e_dst - lo) <-
                (e.Router.e_sent, e.Router.e_src, e.Router.e_copy,
                 (unmarshal e.Router.e_bytes : 'm))
                :: inbox.(e.Router.e_slot).(e.Router.e_dst - lo))
            entries);
      (* Delivery: parked carry-ins first (descending), then fresh copies
         ascending (send, src, copy) — the Linksem slot order. *)
      for i = 0 to nv - 1 do
        let v = lo + i in
        let fresh =
          List.sort
            (fun (s1, v1, c1, _) (s2, v2, c2, _) ->
              Linksem.compare_fresh (s1, v1, c1) (s2, v2, c2))
            inbox.(round).(i)
        in
        let full =
          List.map (fun (_, _, _, m) -> m) parked_in.(round).(i)
          @ List.map (fun (_, _, _, m) -> m) fresh
        in
        inbox.(round).(i) <- [];
        let k = List.length full in
        if alive abs v then begin
          delivered := !delivered + k;
          states.(i) <- merge v states.(i) full
        end
        else dead := !dead + k
      done;
      if (round + 1) mod cfg.ckpt_every = 0 then
        Ckpt.save_best_effort ~dir:cfg.dir
          { Ckpt.run_id; shard; phase; round }
          (marshal
             {
               ws_round = round;
               ws_states = states;
               ws_inbox = inbox;
               ws_store = store;
               ws_bits = !bits;
               ws_msgs = !msgs;
               ws_quar = !quar;
               ws_dead = !dead;
               ws_delivered = !delivered;
               ws_parked = !parked;
               ws_events = !events;
             })
    done;
    let summary =
      {
        sm_states = states;
        sm_bits = !bits;
        sm_msgs = !msgs;
        sm_quar = !quar;
        sm_dead = !dead;
        sm_delivered = !delivered;
        sm_parked = List.rev !parked;
        sm_ckpt =
          Array.init nv (fun i ->
              match (store0.(lo + i), store.(i)) with
              | None, None -> Unchanged
              | Some a, Some b when a == b -> Unchanged
              | _, None -> Cleared
              | _, Some s -> Set s);
        sm_events = List.rev !events;
      }
    in
    Frame.write_fd fd
      { Frame.kind = k_done; a = rounds; b = shard; c = 0;
        payload = marshal summary }
  in
  (* {2 Parent protocol} *)
  let batches = Array.make_matrix rounds shards None in
  let deliveries = Array.make rounds None in
  let delivered_to = Array.make_matrix rounds shards false in
  let summaries : ('m, 's) summary option array = Array.make shards None in
  let entry_keys payload =
    match Router.decode_entries payload (ref 0) with
    | Error e -> Error e
    | Ok es ->
        Ok
          (List.map
             (fun (e : Router.entry) ->
               (e.Router.e_slot, e.Router.e_sent, e.Router.e_src,
                e.Router.e_dst, e.Router.e_copy))
             es)
  in
  let compile_deliveries round =
    match deliveries.(round) with
    | Some d -> d
    | None ->
        let per_shard = Array.make shards [] in
        for s = 0 to shards - 1 do
          match batches.(round).(s) with
          | None -> assert false
          | Some payload -> (
              match Router.decode_entries payload (ref 0) with
              | Error e ->
                  raise
                    (Supervisor.Failed
                       (Supervisor.Permanent, "shard batch malformed: " ^ e))
              | Ok es ->
                  List.iter
                    (fun (e : Router.entry) ->
                      let owner = Router.owner ~shards ~n e.Router.e_dst in
                      per_shard.(owner) <- e :: per_shard.(owner))
                    es)
        done;
        let d =
          Array.map (fun l -> List.sort Router.compare_entry l) per_shard
        in
        deliveries.(round) <- Some d;
        d
  in
  let try_deliver ctx round =
    if Array.for_all Option.is_some batches.(round) then begin
      let d = compile_deliveries round in
      for s = 0 to shards - 1 do
        if not delivered_to.(round).(s) then begin
          delivered_to.(round).(s) <- true;
          let buf = Buffer.create 256 in
          Router.encode_entries buf d.(s);
          ctx.Supervisor.send ~shard:s
            { Frame.kind = k_deliver; a = round; b = 0; c = 0;
              payload = Buffer.contents buf }
        end
      done
    end
  in
  let on_frame ctx ~shard (f : Frame.t) =
    if f.Frame.kind = k_batch then begin
      let round = f.Frame.a in
      if round < 0 || round >= rounds then
        raise
          (Supervisor.Failed (Supervisor.Permanent, "shard batch round out of range"));
      (match batches.(round).(shard) with
      | None -> batches.(round).(shard) <- Some f.Frame.payload
      | Some prev ->
          (* A restarted incarnation replaying history: its recomputed
             batch must carry the same verdict coordinates — determinism
             check.  (Payload bytes may differ in Marshal sharing, so the
             comparison is on keys.) *)
          if entry_keys prev <> entry_keys f.Frame.payload then
            raise
              (Supervisor.Failed
                 ( Supervisor.Permanent,
                   Printf.sprintf
                     "shard %d round %d: replayed batch diverged from the \
                      original (nondeterministic worker)"
                     shard round ));
          (* Answer the replay from the stored history. *)
          delivered_to.(round).(shard) <- false);
      try_deliver ctx round
    end
    else if f.Frame.kind = k_done then begin
      summaries.(shard) <- Some (unmarshal f.Frame.payload : ('m, 's) summary);
      ctx.Supervisor.mark_done ~shard
    end
    else
      raise
        (Supervisor.Failed (Supervisor.Permanent, "unexpected frame kind from worker"))
  in
  let restored_round ~shard =
    match Ckpt.load ~dir:cfg.dir ~run_id ~shard with
    | Some (meta, _) when meta.Ckpt.phase = phase -> meta.Ckpt.round
    | _ -> -1
  in
  Supervisor.run ~policy:cfg.policy ?trace ~restored_round ~shards ~body
    ~on_frame ();
  (* Success: the checkpoints have served their purpose.  On failure they
     are deliberately left behind — they are the post-mortem (and the CI
     artifact) for the run that died. *)
  for s = 0 to shards - 1 do
    Ckpt.remove ~dir:cfg.dir ~run_id ~shard:s
  done;
  (* {2 Integration} *)
  let metrics = Metrics.enabled () in
  let summaries =
    Array.map (function Some s -> s | None -> assert false) summaries
  in
  (* Fault events by phase-relative round, merged across shards in the
     in-process emission order: (src, neighbor index), stable within. *)
  let evs_by_round = Array.make rounds [] in
  Array.iter
    (fun sm ->
      List.iter
        (fun (((abs, _, _) as key), evs) ->
          let r = abs - base in
          evs_by_round.(r) <- (key, evs) :: evs_by_round.(r))
        sm.sm_events)
    summaries;
  let emit_ev ev =
    (match trace with Some s -> Trace.emit s ev | None -> ());
    if metrics then Linksem.record_event_metrics ev
  in
  (* Replay the per-round global event order, updating the same network
     bookkeeping the in-process executor would have: partition boundary
     first, then crash/checkpoint/restore per vertex ascending, then the
     workers' fault events.  Catch-up is recomputed here — it is a pure
     function of the crash tables. *)
  let catchup = ref 0 in
  for round = 0 to rounds - 1 do
    let abs = base + round in
    if fp.Faults.partitions <> [] then begin
      match (Faults.partition_parts fp ~round:abs, Network.Internal.partition_active t) with
      | Some (idx, parts), active when active <> Some idx ->
          if active <> None then begin
            (match trace with
            | Some s -> Trace.emit s (Trace.Heal { round = abs })
            | None -> ());
            if metrics then Metrics.record_heal ()
          end;
          Network.Internal.set_partition_active t (Some idx);
          (match trace with
          | Some s -> Trace.emit s (Trace.Partition { round = abs; parts })
          | None -> ());
          if metrics then Metrics.record_partition ()
      | None, Some _ ->
          Network.Internal.set_partition_active t None;
          (match trace with
          | Some s -> Trace.emit s (Trace.Heal { round = abs })
          | None -> ());
          if metrics then Metrics.record_heal ()
      | _ -> ()
    end;
    for v = 0 to n - 1 do
      if crash_at.(v) = abs then begin
        (match trace with
        | Some s -> Trace.emit s (Trace.Checkpoint { node = v; round = abs })
        | None -> ());
        if metrics then Metrics.record_checkpoint ()
      end;
      if (not (Network.Internal.crash_seen t v)) && crash_at.(v) <= abs then begin
        Network.Internal.set_crash_seen t v;
        (match trace with
        | Some s -> Trace.emit s (Trace.Crash { node = v; round = crash_at.(v) })
        | None -> ());
        if metrics then Metrics.record_crash ()
      end;
      if recover_at.(v) = abs then begin
        let missed = abs - crash_at.(v) in
        catchup := max !catchup missed;
        (match trace with
        | Some s -> Trace.emit s (Trace.Restore { node = v; round = abs; missed })
        | None -> ());
        if metrics then Metrics.record_restore ()
      end
    done;
    List.iter
      (fun (_, evs) -> List.iter emit_ev evs)
      (List.stable_sort
         (fun ((_, s1, i1), _) ((_, s2, i2), _) -> compare (s1, i1) (s2, i2))
         (List.rev evs_by_round.(round)))
  done;
  (* Meters, checkpoint store, parked copies, final states.  Shard
     blocks are contiguous and ascending, so the final state array is
     their concatenation — [init] is never re-run in the parent. *)
  let states =
    Array.concat (Array.to_list (Array.map (fun sm -> sm.sm_states) summaries))
  in
  Network.Internal.set_pending t rest_pending;
  Array.iteri
    (fun s sm ->
      let lo, _ = Router.range ~shards ~n s in
      Network.Internal.add_bits t sm.sm_bits;
      Network.Internal.add_msgs t sm.sm_msgs;
      Network.Internal.add_quarantined t sm.sm_quar;
      Network.Internal.add_delivered t sm.sm_delivered;
      if sm.sm_dead > 0 then begin
        Network.Internal.add_dead_letters t sm.sm_dead;
        if metrics then Metrics.record_dead_letters sm.sm_dead
      end;
      (match ckpt with
      | None -> ()
      | Some c ->
          Array.iteri
            (fun i change ->
              match change with
              | Unchanged -> ()
              | Cleared -> Network.Internal.set_ckpt t (lo + i) None
              | Set st ->
                  Network.Internal.set_ckpt t (lo + i)
                    (Some (Network.Internal.inject c st)))
            sm.sm_ckpt);
      match carry with
      | None -> ()
      | Some cr ->
          List.iter
            (fun (sent, arrive, src, dst, copy, m) ->
              Network.Internal.set_pending t
                ({
                   Network.Internal.sent;
                   arrive;
                   p_src = src;
                   p_dst = dst;
                   p_copy = copy;
                   payload = Network.Internal.inject cr m;
                 }
                :: Network.Internal.pending t))
            sm.sm_parked)
    summaries;
  (states, !catchup)

let install cfg =
  Network.set_transport
    (Some
       {
         Network.exec =
           (fun t ~rounds ~size ~corrupt ~digest ~ckpt ~carry ~trace ~init
                ~emit ~merge ->
             run_phase cfg t ~rounds ~size ~corrupt ~digest ~ckpt ~carry
               ~trace ~init ~emit ~merge);
       })

let uninstall () = Network.set_transport None
let installed () = Network.transport () <> None
