(** Sharded multi-process execution of faulty broadcast phases.

    [install] plugs a transport into {!Ls_local.Network.set_transport}
    that runs each faulty phase across [shards] worker OS processes
    forked inside the phase call (so the phase's closures, fault plan
    and carried state are in scope in every child).  Workers own
    contiguous vertex blocks ({!Router.range}); cross-shard copies
    travel through the parent in a per-round batch/deliver barrier that
    preserves synchronous semantics exactly.

    Because fault verdicts are pure in (seed, round, src, dst, copy)
    and delivery order within an inbox slot is fixed by the
    {!Ls_local.Linksem} comparators, a sharded run is bit-identical to
    the in-process executor — same states, meters and trace events (the
    only addition being shard lifecycle events, which CI strips when
    diffing).  The zero-fault pristine path never consults the
    transport, so fault-free runs are untouched by construction.

    Fault tolerance: workers checkpoint atomically after every round
    ({!Ckpt}); a worker killed with [SIGKILL] (for real — see
    {!kill_spec}) is re-forked by the {!Supervisor}, restores its
    checkpoint, replays forward, and the parent answers replayed
    batches from stored history after checking they carry the same
    verdict coordinates.  Healthy shards, blocked at the round barrier,
    never observe the crash.  Checkpoint files are removed when a phase
    completes and left behind when it fails — they are the post-mortem
    artifact. *)

(** {1 Kill injection} *)

type kill_spec = {
  k_shard : int;
  k_phase : int;  (** Process-global phase index, in execution order. *)
  k_round : int;  (** Phase-relative round; fires at the round start. *)
  k_incarnation : int;  (** Which incarnation dies (0 = the original). *)
  k_hang : bool;  (** Hang instead of dying: sleep until SIGKILLed. *)
}

val parse_kill_specs : string -> (kill_spec list, string) result
(** Parse a comma-separated list of [SHARD:PHASE:ROUND[:INCARNATION][:hang]]
    specs (the [--shard-kill] syntax).  Empty segments are skipped; an
    empty string is [Ok []]. *)

val kill_matches :
  kill_spec list ->
  shard:int ->
  phase:int ->
  round:int ->
  incarnation:int ->
  kill_spec option

val fire_kill : kill_spec -> 'a
(** Execute a matched spec in the current process: [kill -9] self, or
    sleep forever for a hang spec.  Does not return. *)

(** {1 Configuration} *)

type config = {
  shards : int;
  kills : kill_spec list;
  dir : string;  (** Checkpoint directory. *)
  policy : Supervisor.policy;
  ckpt_every : int;  (** Checkpoint every k completed rounds. *)
}

val config :
  ?kills:kill_spec list ->
  ?dir:string ->
  ?policy:Supervisor.policy ->
  ?ckpt_every:int ->
  shards:int ->
  unit ->
  config
(** Defaults: no kills, {!Ckpt.default_dir}, {!Supervisor.default_policy},
    checkpoint every round.  Raises [Invalid_argument] on [shards < 1]
    or [ckpt_every < 1]. *)

val install : config -> unit
(** Install the sharded transport process-globally.  Subsequent faulty
    {!Ls_local.Network.run_broadcast} phases run sharded; phase indices
    (for kill specs) count from the last {!reset_phase_counter}. *)

val uninstall : unit -> unit
val installed : unit -> bool

val reset_phase_counter : unit -> unit
(** Phase indices are process-global so kill specs address phases by
    execution order; tests reset between runs to keep specs stable. *)

(**/**)

(* The bare transport body, for tests that want to drive one phase
   without installing process-global state. *)
val run_phase :
  config ->
  'i Ls_local.Network.t ->
  rounds:int ->
  size:('m -> int) option ->
  corrupt:(round:int -> src:int -> dst:int -> 'm -> 'm) option ->
  digest:('m -> int) option ->
  ckpt:'s Ls_local.Network.carrier option ->
  carry:'m Ls_local.Network.carrier option ->
  trace:Ls_obs.Trace.t option ->
  init:(int -> 's) ->
  emit:(int -> 's -> 'm) ->
  merge:(int -> 's -> 'm list -> 's) ->
  's array * int

(**/**)
