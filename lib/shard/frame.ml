(* Length-prefixed binary frames: the only thing that crosses a
   parent/worker socketpair.  The codec is split in two layers so the
   dangerous half is pure and fuzzable: [encode]/[decode] work on
   strings and never touch a file descriptor, while [write_fd]/[read_fd]
   add EINTR-safe full-read/full-write IO on top.

   Wire layout (all integers little-endian 64-bit, via the sketch codec):

     "LSF1" | kind | a | b | c | payload length | payload digest | payload

   The header carries three generic integer fields so protocol layers
   (Exec, Sweep) can tag frames without inventing per-kind headers, and
   the payload digest so a corrupted or truncated stream surfaces as a
   named [Error] — never as a silently wrong payload handed to
   [Marshal].  The payload length is validated against [max_payload]
   {e before} any allocation: a crafted 60-byte header cannot make the
   reader allocate gigabytes. *)

module Codec = Ls_sketch.Codec
module Splitmix = Ls_rng.Splitmix

type t = { kind : int; a : int; b : int; c : int; payload : string }

let magic = "LSF1"

(* Generous for a broadcast batch, absurd for anything legitimate past
   that — the point is an upper bound that exists, not a tight one. *)
let max_payload = 1 lsl 30

let digest64 s =
  let h = ref 0x4c534631L in
  String.iter
    (fun ch -> h := Splitmix.mix64 (Int64.logxor !h (Int64.of_int (Char.code ch))))
    s;
  !h

let header_bytes = String.length magic + (6 * 8)

let encode f =
  if String.length f.payload > max_payload then
    invalid_arg "Frame.encode: payload exceeds max_payload";
  let buf = Buffer.create (header_bytes + String.length f.payload) in
  Buffer.add_string buf magic;
  Codec.add_int buf f.kind;
  Codec.add_int buf f.a;
  Codec.add_int buf f.b;
  Codec.add_int buf f.c;
  Codec.add_int buf (String.length f.payload);
  Codec.add_i64 buf (digest64 f.payload);
  Buffer.add_string buf f.payload;
  Buffer.contents buf

(* Decode exactly one frame spanning the whole string.  Every failure is
   a named [Error]; no allocation is sized by the length field until it
   has been checked against both [max_payload] and the bytes present. *)
let decode s =
  let ( let* ) = Result.bind in
  let cur = ref 0 in
  let* () = Codec.read_magic s cur magic in
  let* kind = Codec.read_int s cur in
  let* a = Codec.read_int s cur in
  let* b = Codec.read_int s cur in
  let* c = Codec.read_int s cur in
  let* len = Codec.read_int s cur in
  let* dg = Codec.read_i64 s cur in
  if len < 0 then Error "Frame: negative payload length"
  else if len > max_payload then Error "Frame: payload length exceeds maximum"
  else if len > Codec.remaining s cur then
    Error "Frame: payload length exceeds bytes present"
  else begin
    let payload = String.sub s !cur len in
    cur := !cur + len;
    if !cur <> String.length s then Error "Frame: trailing bytes after payload"
    else if not (Int64.equal (digest64 payload) dg) then
      Error "Frame: payload digest mismatch"
    else Ok { kind; a; b; c; payload }
  end

(* Decode one frame from the front of [s], for callers that accumulate
   bytes from a non-blocking stream.  [Ok None] means the bytes so far
   are a valid proper prefix — read more.  [Ok (Some (f, used))] decoded
   a frame spanning the first [used] bytes.  [Error] names a malformed
   header or digest: the stream has no frame boundary left to
   resynchronize on.  [max_frame_payload] lets a server cap hostile
   length claims below the generous default. *)
let decode_prefix ?(max_frame_payload = max_payload) s =
  let avail = String.length s in
  if avail < header_bytes then Ok None
  else begin
    let ( let* ) = Result.bind in
    let parsed =
      let cur = ref 0 in
      let* () = Codec.read_magic s cur magic in
      let* kind = Codec.read_int s cur in
      let* a = Codec.read_int s cur in
      let* b = Codec.read_int s cur in
      let* c = Codec.read_int s cur in
      let* len = Codec.read_int s cur in
      let* dg = Codec.read_i64 s cur in
      Ok (kind, a, b, c, len, dg)
    in
    match parsed with
    | Error e -> Error e
    | Ok (kind, a, b, c, len, dg) ->
        if len < 0 then Error "Frame: negative payload length"
        else if len > max_frame_payload then
          Error "Frame: payload length exceeds maximum"
        else if avail < header_bytes + len then Ok None
        else begin
          let payload = String.sub s header_bytes len in
          if not (Int64.equal (digest64 payload) dg) then
            Error "Frame: payload digest mismatch"
          else Ok (Some ({ kind; a; b; c; payload }, header_bytes + len))
        end
  end

(* {1 File-descriptor IO}

   All loops retry EINTR and handle short reads/writes: a frame streamed
   one byte at a time (or interrupted by a signal mid-syscall) must
   arrive intact.  These helpers are also what the checkpoint writer
   uses, so there is exactly one partial-IO implementation to get
   right. *)

let rec write_all ?(site = "frame.write") fd buf off len =
  if len > 0 then begin
    let k =
      try Sysio.write ~site fd buf off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all ~site fd buf (off + k) (len - k)
  end

let write_string ?site fd s =
  write_all ?site fd (Bytes.unsafe_of_string s) 0 (String.length s)

(* Read exactly [len] bytes unless EOF strikes first; returns the count
   actually read (< [len] only at EOF). *)
let read_exact fd buf off len =
  let rec go off len got =
    if len = 0 then got
    else
      match Unix.read fd buf off len with
      | 0 -> got
      | k -> go (off + k) (len - k) (got + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len got
  in
  go off len 0

type read_error =
  | Closed  (** Clean EOF at a frame boundary: the peer finished. *)
  | Truncated  (** EOF in the middle of a frame: the peer died mid-write. *)
  | Malformed of string  (** Header or digest invalid — named reason. *)

let write_fd fd f = write_string fd (encode f)

let read_fd fd =
  let hdr = Bytes.create header_bytes in
  let got = read_exact fd hdr 0 header_bytes in
  if got = 0 then Error Closed
  else if got < header_bytes then Error Truncated
  else begin
    let s = Bytes.unsafe_to_string hdr in
    let ( let* ) = Result.bind in
    let parsed =
      let cur = ref 0 in
      let* () = Codec.read_magic s cur magic in
      let* kind = Codec.read_int s cur in
      let* a = Codec.read_int s cur in
      let* b = Codec.read_int s cur in
      let* c = Codec.read_int s cur in
      let* len = Codec.read_int s cur in
      let* dg = Codec.read_i64 s cur in
      Ok (kind, a, b, c, len, dg)
    in
    match parsed with
    | Error e -> Error (Malformed e)
    | Ok (kind, a, b, c, len, dg) ->
        if len < 0 then Error (Malformed "Frame: negative payload length")
        else if len > max_payload then
          Error (Malformed "Frame: payload length exceeds maximum")
        else begin
          let pay = Bytes.create len in
          let got = read_exact fd pay 0 len in
          if got < len then Error Truncated
          else begin
            let payload = Bytes.unsafe_to_string pay in
            if not (Int64.equal (digest64 payload) dg) then
              Error (Malformed "Frame: payload digest mismatch")
            else Ok { kind; a; b; c; payload }
          end
        end
  end
