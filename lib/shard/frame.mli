(** Length-prefixed binary frames for parent/worker socketpairs.

    Layout: ["LSF1"] magic, a [kind] byte for the protocol layer, three
    generic integer fields [a]/[b]/[c], the payload length, a payload
    digest, then the payload.  The pure codec ({!encode}/{!decode}) is
    what the fuzz tests hammer; {!write_fd}/{!read_fd} add EINTR-safe
    full-read/full-write IO.  A length prefix is validated against
    {!max_payload} {e and} the bytes actually present before any
    allocation is sized by it, and the digest turns stream corruption
    into a named [Error] instead of garbage handed to [Marshal]. *)

type t = { kind : int; a : int; b : int; c : int; payload : string }

val max_payload : int

val encode : t -> string
(** Raises [Invalid_argument] only if the payload exceeds
    {!max_payload}. *)

val decode : string -> (t, string) result
(** Decode exactly one frame spanning the whole string; every failure
    mode — bad magic, truncation, negative or oversized length, trailing
    bytes, digest mismatch — is a named [Error]. *)

val decode_prefix :
  ?max_frame_payload:int -> string -> ((t * int) option, string) result
(** Decode one frame from the front of a byte accumulation: [Ok None]
    when the bytes are a valid proper prefix (read more), [Ok (Some (f,
    used))] when a frame spans the first [used] bytes, and a named
    [Error] when the header or digest is malformed (no frame boundary
    left to resynchronize on).  [max_frame_payload] (default
    {!max_payload}) caps the accepted length claim, bounding what a
    hostile peer can make the caller buffer. *)

val digest64 : string -> int64
(** The payload digest (a SplitMix64 fold), exposed for tests. *)

val write_fd : Unix.file_descr -> t -> unit
(** Write one frame, retrying EINTR and short writes until complete. *)

type read_error =
  | Closed  (** Clean EOF at a frame boundary: the peer finished. *)
  | Truncated  (** EOF mid-frame: the peer died mid-write. *)
  | Malformed of string  (** Header or digest invalid — named reason. *)

val read_fd : Unix.file_descr -> (t, read_error) result
(** Read one frame, retrying EINTR and short reads; blocks until a full
    frame, EOF, or a malformed header. *)

(**/**)

(** Shared partial-IO loops, reused by the checkpoint writer.  [site]
    (default ["frame.write"]) names the call site for the {!Sysio}
    fault hook; disk writers pass their own so write faults can target
    files without touching sockets. *)

val write_string : ?site:string -> Unix.file_descr -> string -> unit
val read_exact : Unix.file_descr -> bytes -> int -> int -> int

(**/**)
